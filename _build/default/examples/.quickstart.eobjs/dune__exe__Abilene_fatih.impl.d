examples/abilene_fatih.ml: Core Flow List Net Netsim Ping Printf Router String Topology
