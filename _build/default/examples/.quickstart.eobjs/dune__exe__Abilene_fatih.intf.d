examples/abilene_fatih.mli:
