examples/byzantine_broadcast.ml: Consensus Core Crypto_sim List Printf
