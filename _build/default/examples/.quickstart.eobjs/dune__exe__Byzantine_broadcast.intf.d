examples/byzantine_broadcast.mli:
