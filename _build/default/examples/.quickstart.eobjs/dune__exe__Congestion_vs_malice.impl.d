examples/congestion_vs_malice.ml: Core List Net Netsim Printf Router Tcp Topology
