examples/congestion_vs_malice.mli:
