examples/locate_attacker.ml: Core Flow List Net Netsim Printf Router String Topology
