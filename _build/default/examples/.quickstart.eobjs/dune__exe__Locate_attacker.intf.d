examples/locate_attacker.mli:
