examples/quickstart.ml: Core List Pik2 Printf Rounds Spec String Topology
