examples/quickstart.mli:
