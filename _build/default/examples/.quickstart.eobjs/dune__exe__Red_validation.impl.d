examples/red_validation.ml: Core List Net Netsim Printf Red Router String Tcp Topology
