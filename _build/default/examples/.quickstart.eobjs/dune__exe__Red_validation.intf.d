examples/red_validation.mli:
