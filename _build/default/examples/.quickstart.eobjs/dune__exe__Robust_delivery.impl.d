examples/robust_delivery.ml: Core List Net Netsim Printf Router Sim String Topology
