examples/robust_delivery.mli:
