examples/set_reconciliation.ml: Array Crypto_sim Int64 List Printf Setrecon String
