examples/watchers_flaw.ml: Core List Printf Topology Watchers
