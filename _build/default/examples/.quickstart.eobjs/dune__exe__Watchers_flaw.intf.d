examples/watchers_flaw.mli:
