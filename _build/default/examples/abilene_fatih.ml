(* Fatih on the Abilene backbone (the Fig 5.7 scenario, condensed).

   Kansas City is compromised at t = 60 s and drops 20% of its transit
   traffic.  Fatih validates every 3-path-segment per 5 s round, detects
   the segments around Kansas City, and the response engine excises them
   after the OSPF delay/hold timers — New York <-> Sunnyvale traffic
   shifts from the 25 ms northern path to the 28 ms southern one.

   Run with:  dune exec examples/abilene_fatih.exe *)

open Netsim
module Ab = Topology.Abilene

let () =
  let g = Ab.graph () in
  let net = Net.create ~seed:1 ~jitter_bound:100e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;

  let fatih = Core.Fatih.deploy ~net ~rt () in

  (* Coast-to-coast traffic crossing Kansas City, plus probes. *)
  List.iter
    (fun (a, b) ->
      ignore
        (Flow.cbr net ~src:(Ab.id a) ~dst:(Ab.id b) ~rate_pps:120.0 ~size:600 ~start:0.0
           ~stop:120.0))
    [ (Ab.New_york, Ab.Sunnyvale); (Ab.Sunnyvale, Ab.New_york);
      (Ab.Chicago, Ab.Los_angeles); (Ab.Los_angeles, Ab.Chicago) ];
  let ping =
    Ping.start net ~src:(Ab.id Ab.New_york) ~dst:(Ab.id Ab.Sunnyvale) ~interval:1.0
      ~start:1.0 ~stop:118.0 ()
  in

  Router.set_behavior
    (Net.router net (Ab.id Ab.Kansas_city))
    (Core.Adversary.after 60.0 (Core.Adversary.drop_fraction ~seed:9 0.2));

  Net.run ~until:120.0 net;

  print_endline "Timeline:";
  Printf.printf "  %6.1f s  Kansas City compromised (drops 20%% of transit)\n" 60.0;
  List.iter
    (fun (d : Core.Fatih.detection) ->
      Printf.printf "  %6.1f s  detected <%s> (%d of %d packets missing)\n"
        d.Core.Fatih.time
        (String.concat "-" (List.map Ab.name d.Core.Fatih.segment))
        d.Core.Fatih.missing d.Core.Fatih.sent)
    (Core.Fatih.detections fatih);
  List.iter
    (fun (u : Core.Response.event) ->
      Printf.printf "  %6.1f s  routing updated, %d segments excised\n"
        u.Core.Response.time
        (List.length u.Core.Response.forbidden))
    (Core.Response.updates (Core.Fatih.response fatih));

  let rtts = Ping.samples ping in
  let mean lo hi =
    let xs = List.filter_map (fun (t, r) -> if t >= lo && t < hi then Some r else None) rtts in
    if xs = [] then nan else List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  Printf.printf "NY <-> Sunnyvale RTT: %.1f ms before, %.1f ms after rerouting\n"
    (mean 10.0 60.0 *. 1000.0)
    (mean 90.0 118.0 *. 1000.0)
