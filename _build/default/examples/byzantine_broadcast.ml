(* Signed Byzantine broadcast (Dolev-Strong) — the consensus primitive
   Protocol Π2's summary exchange stands on (§5.1).

   Five routers agree on a traffic-summary digest announced by one of
   them.  Three runs: an honest sender; a sender that stays silent; and
   a sender that equivocates (signs different digests to different
   routers) — in every case all correct routers decide the same value in
   f+1 rounds.

   Run with:  dune exec examples/byzantine_broadcast.exe *)

open Core

let keyring = Crypto_sim.Keyring.create ~n:5 ()

let show label behavior =
  let outcome =
    Consensus.broadcast ~keyring ~parties:5 ~f:1 ~sender:0 ~value:0x5157L ~behavior
  in
  Printf.printf "%s (%d rounds):\n" label outcome.Consensus.rounds_used;
  List.iter
    (fun (p, v) -> Printf.printf "  router %d decides %Lx\n" p v)
    outcome.Consensus.decisions

let () =
  show "honest sender" (fun _ -> Consensus.Correct);
  show "silent sender" (fun p -> if p = 0 then Consensus.Silent else Consensus.Correct);
  show "equivocating sender"
    (fun p -> if p = 0 then Consensus.Equivocate (0xAAAAL, 0xBBBBL) else Consensus.Correct);
  Printf.printf
    "(a decision of %Lx is the agreed default: the sender provably equivocated)\n"
    Consensus.default_value
