(* Protocol χ: telling malicious packet drops from congestion.

   Three sources share a bottleneck; the TCP traffic itself overflows the
   output queue, producing hundreds of legitimate congestion drops.  At
   t = 20 s the bottleneck router is compromised and starts dropping 20%
   of one victim flow's packets.  χ replays the queue from the
   neighbours' traffic information: congestion drops happen with a full
   predicted queue (low confidence of malice), the attack's drops happen
   with headroom (confidence ~1).

   Run with:  dune exec examples/congestion_vs_malice.exe *)

open Netsim
module G = Topology.Graph

let () =
  let g = G.create ~n:5 in
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 1 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 2 3;
  G.add_duplex g ~bw:1.25e6 ~delay:0.005 3 4;
  let net = Net.create ~seed:5 ~jitter_bound:200e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;

  let config = { Core.Chi.default_config with Core.Chi.tau = 2.0 } in
  let chi = Core.Chi.deploy ~net ~rt ~router:3 ~next:4 ~config () in

  ignore (Tcp.connect net ~src:0 ~dst:4 ());
  ignore (Tcp.connect net ~src:1 ~dst:4 ());
  let victim = Tcp.connect net ~src:2 ~dst:4 () in

  Router.set_behavior (Net.router net 3)
    (Core.Adversary.after 20.0
       (Core.Adversary.on_flows [ Tcp.flow_id victim ]
          (Core.Adversary.drop_fraction ~seed:3 0.2)));

  Net.run ~until:40.0 net;

  Printf.printf "%6s %9s %8s %12s %10s %s\n" "t(s)" "arrivals" "losses" "congestive"
    "c_single" "verdict";
  List.iter
    (fun (r : Core.Chi.report) ->
      if not r.Core.Chi.learning then
        Printf.printf "%6.0f %9d %8d %12d %10.3f %s\n" r.Core.Chi.end_time
          r.Core.Chi.arrivals
          (List.length r.Core.Chi.losses)
          r.Core.Chi.predicted_congestive r.Core.Chi.c_single_max
          (if r.Core.Chi.alarm then "ALARM: malicious losses"
           else if r.Core.Chi.losses <> [] then "congestion only"
           else ""))
    (Core.Chi.reports chi)
