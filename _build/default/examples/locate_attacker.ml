(* Network-wide localization: Protocol χ on every interface.

   Deploy a χ monitor on every output queue of a ring network (the
   per-interface architecture of Fig 2.3), compromise one router, and
   watch the fleet point at exactly the compromised interfaces.

   Run with:  dune exec examples/locate_attacker.exe *)

open Netsim

let () =
  let g = Topology.Generate.ring ~n:5 in
  let net = Net.create ~seed:9 ~jitter_bound:150e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;

  let config = { Core.Chi.default_config with Core.Chi.tau = 1.0; learning_rounds = 3 } in
  let fleet = Core.Chi_fleet.deploy ~net ~rt ~config () in
  Printf.printf "monitoring %d queues\n" (List.length (Core.Chi_fleet.monitors fleet));

  List.iter
    (fun (src, dst) ->
      ignore (Flow.cbr net ~src ~dst ~rate_pps:80.0 ~size:500 ~start:0.0 ~stop:40.0))
    [ (0, 2); (2, 0); (1, 3); (3, 1); (4, 2); (0, 3) ];

  Router.set_behavior (Net.router net 1)
    (Core.Adversary.after 15.0 (Core.Adversary.drop_fraction ~seed:4 0.4));
  print_endline "router 1 compromised at t = 15 s (drops 40% of transit)";

  Net.run ~until:40.0 net;

  (match Core.Chi_fleet.suspects fleet with
  | [] -> print_endline "no interface suspected"
  | suspects ->
      List.iter
        (fun (s : Core.Chi_fleet.suspect) ->
          Printf.printf
            "suspected interface <%d -> %d>: first alarm %.1f s, %d alarming rounds\n"
            s.Core.Chi_fleet.router s.Core.Chi_fleet.next s.Core.Chi_fleet.first_alarm
            s.Core.Chi_fleet.alarm_rounds)
        suspects);
  Printf.printf "suspected routers: [%s]\n"
    (String.concat "; " (List.map string_of_int (Core.Chi_fleet.suspected_routers fleet)))
