(* Quickstart: detect a compromised router with Protocol Πk+2.

   A five-router line network; router 2 is compromised and silently
   drops half of the transit packets it should forward.  Every monitored
   3-path-segment is validated by its terminal routers each round; the
   segments containing the compromised router fail traffic validation.

   Run with:  dune exec examples/quickstart.exe *)

open Core

let () =
  (* 0 - 1 - 2 - 3 - 4 *)
  let graph = Topology.Generate.line ~n:5 in
  let rt = Topology.Routing.compute graph in

  (* The adversary: router 2 drops 50% of transit packets and reports
     truthfully (a traffic-faulty, protocol-correct compromise). *)
  let adversary = Rounds.dropper ~fraction:0.5 ~seed:42 [ 2 ] in

  (* One synchronous validation round of Protocol Πk+2 with
     AdjacentFault(1): only segment ends collect summaries. *)
  let suspected = Pik2.detect_round ~rt ~k:1 ~adversary ~round:0 () in

  print_endline "Suspected path-segments:";
  List.iter
    (fun seg ->
      Printf.printf "  <%s>\n" (String.concat ", " (List.map string_of_int seg)))
    suspected;

  (* Check the detector's formal properties against ground truth. *)
  let suspicions =
    List.concat_map
      (fun seg ->
        List.map
          (fun by -> { Spec.segment = seg; round = 0; by })
          (Rounds.correct_routers graph ~faulty:[ 2 ]))
      suspected
  in
  (match Spec.accurate ~faulty:(fun r -> r = 2) ~a:3 suspicions with
  | Ok () -> print_endline "Accuracy: every suspicion contains the compromised router."
  | Error e -> Printf.printf "Accuracy violated: %s\n" e);
  match
    Spec.complete ~graph ~faulty:(fun r -> r = 2) ~traffic_faulty:[ 2 ]
      ~correct_routers:(Rounds.correct_routers graph ~faulty:[ 2 ])
      suspicions
  with
  | Ok () -> print_endline "Completeness: every correct router suspects the attacker."
  | Error e -> Printf.printf "Completeness violated: %s\n" e
