(* Protocol χ under RED: validating a non-deterministic queue.

   RED drops packets probabilistically, so a validator cannot predict
   individual drops — but it can replay RED's deterministic EWMA from
   the neighbours' traffic information and judge whether the observed
   drops are statistically explainable.  Here the compromised router
   hides its drops "inside" RED by only dropping when the average queue
   is high; the per-flow cumulative test still isolates the victim.

   Run with:  dune exec examples/red_validation.exe *)

open Netsim
module G = Topology.Graph

let () =
  let g = G.create ~n:5 in
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 1 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 2 3;
  G.add_duplex g ~bw:1.25e6 ~delay:0.005 3 4;
  let params = Red.default_params in
  let net = Net.create ~seed:5 ~queue:(Net.Red params) ~jitter_bound:200e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;

  let chi = Core.Chi_red.deploy ~net ~rt ~router:3 ~next:4 ~params () in

  ignore (Tcp.connect net ~src:0 ~dst:4 ());
  ignore (Tcp.connect net ~src:1 ~dst:4 ());
  let victim = Tcp.connect net ~src:2 ~dst:4 () in

  Router.set_behavior (Net.router net 3)
    (Core.Adversary.after 20.0
       (Core.Adversary.on_flows [ Tcp.flow_id victim ]
          (Core.Adversary.drop_when_red_avg_above 40000.0)));

  Net.run ~until:80.0 net;

  Printf.printf "%6s %8s %10s %12s %s\n" "t(s)" "losses" "E[red]" "tail" "verdict";
  List.iter
    (fun (r : Core.Chi_red.report) ->
      if (not r.Core.Chi_red.learning) && (r.Core.Chi_red.losses <> [] || r.Core.Chi_red.alarm)
      then
        Printf.printf "%6.0f %8d %10.1f %12.2e %s\n" r.Core.Chi_red.end_time
          (List.length r.Core.Chi_red.losses)
          r.Core.Chi_red.expected_red_drops r.Core.Chi_red.tail_probability
          (if r.Core.Chi_red.alarm then
             Printf.sprintf "ALARM (victim flows: %s)"
               (String.concat ","
                  (List.map string_of_int r.Core.Chi_red.suspect_flows))
           else ""))
    (Core.Chi_red.reports chi)
