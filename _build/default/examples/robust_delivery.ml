(* Perlman's Byzantine-robust delivery (§3.7): tolerate without
   detecting.

   On a six-router ring there are two vertex-disjoint paths between
   routers 0 and 3.  Sending every message as two copies (f = 1), one
   per path, guarantees delivery even while a router on one path
   silently destroys everything — at double the bandwidth, and without
   ever learning who the attacker is.  That trade-off is exactly why the
   dissertation pursues detection instead.

   Run with:  dune exec examples/robust_delivery.exe *)

open Netsim

let () =
  let g = Topology.Generate.ring ~n:6 in
  let net = Net.create ~seed:2 ~jitter_bound:0.0 g in
  Net.use_routing net (Topology.Routing.compute g);

  let p = Core.Perlman_live.create ~net ~src:0 ~dst:3 ~f:1 in
  List.iteri
    (fun i path ->
      Printf.printf "path %d: %s\n" i
        (String.concat " -> " (List.map string_of_int path)))
    (Core.Perlman_live.paths p);

  (* Router 1 destroys every transit packet. *)
  Router.set_behavior (Net.router net 1) Core.Adversary.drop_all;
  print_endline "router 1 compromised: drops all transit traffic";

  let sim = Net.sim net in
  for i = 0 to 49 do
    Sim.schedule sim ~delay:(0.05 *. float_of_int i) (fun () ->
        Core.Perlman_live.send p ~size:600)
  done;
  Net.run net;

  Printf.printf "logical messages sent:      %d\n" (Core.Perlman_live.sent p);
  Printf.printf "copies on the wire:         %d\n" (2 * Core.Perlman_live.sent p);
  Printf.printf "copies that arrived:        %d\n" (Core.Perlman_live.copies_received p);
  Printf.printf "logical messages delivered: %d\n" (Core.Perlman_live.delivered p)
