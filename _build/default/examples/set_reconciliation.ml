(* Appendix A: reconciling fingerprint sets with O(difference) traffic.

   Two routers at the ends of a monitored path-segment each hold the set
   of packet fingerprints they observed during a round.  Instead of
   shipping the whole sets, each evaluates its set's characteristic
   polynomial at a handful of agreed field points; interpolating the
   ratio recovers exactly the missing fingerprints.

   Run with:  dune exec examples/set_reconciliation.exe *)

let () =
  (* 10,000 shared fingerprints; the downstream router misses three
     (dropped packets) and saw one the upstream never sent (fabricated). *)
  let upstream =
    Array.init 10_000 (fun i ->
        Setrecon.Reconcile.element_of_fingerprint
          (Crypto_sim.Fnv.hash_int64 (Int64.of_int i)))
  in
  let dropped = [ upstream.(17); upstream.(4242); upstream.(9999) ] in
  let fabricated = Setrecon.Reconcile.element_of_fingerprint 0xbadf00dL in
  let downstream =
    Array.append
      (Array.of_list
         (List.filter (fun e -> not (List.mem e dropped)) (Array.to_list upstream)))
      [| fabricated |]
  in
  match Setrecon.Reconcile.diff ~a:upstream ~b:downstream () with
  | None -> print_endline "reconciliation failed (difference bound exceeded)"
  | Some r ->
      Printf.printf "sets of %d / %d fingerprints reconciled with %d transmitted evaluations\n"
        (Array.length upstream) (Array.length downstream) r.Setrecon.Reconcile.evals_used;
      Printf.printf "dropped en route (%d): %s\n"
        (List.length r.Setrecon.Reconcile.a_minus_b)
        (String.concat ", " (List.map string_of_int r.Setrecon.Reconcile.a_minus_b));
      Printf.printf "fabricated (%d): %s\n"
        (List.length r.Setrecon.Reconcile.b_minus_a)
        (String.concat ", " (List.map string_of_int r.Setrecon.Reconcile.b_minus_a));
      Printf.printf "correct: %b\n"
        (List.sort compare r.Setrecon.Reconcile.a_minus_b = List.sort compare dropped
        && r.Setrecon.Reconcile.b_minus_a = [ fabricated ])
