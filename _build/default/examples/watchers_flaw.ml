(* The WATCHERS consorting-routers flaw (§3.1) and its fix.

   On the path a-b-c-d-e, router c drops all transit packets and inflates
   its "sent to d" counters; its accomplice d keeps honest counters but
   never accuses anyone.  The flooded snapshots show the c-d link
   counters disagreeing — but original WATCHERS leaves that to c and d
   themselves ("they will detect each other"), and both stay silent.
   The improved protocol has the bystanders detect the link when the
   expected accusation never arrives.

   Run with:  dune exec examples/watchers_flaw.exe *)

open Core

let show label detections =
  Printf.printf "%s\n" label;
  if detections = [] then print_endline "  (nothing detected)"
  else
    List.iter
      (fun d ->
        match d with
        | Watchers.Bad_link (x, y) -> Printf.printf "  bad link <%d,%d>\n" x y
        | Watchers.Bad_router r -> Printf.printf "  bad router %d\n" r)
      detections

let () =
  let rt = Topology.Routing.compute (Topology.Generate.line ~n:6) in
  (* c (= router 2) drops only the traffic it forwards toward d (= 3). *)
  let drops r ~next = r = 2 && next = 3 in

  (* Scenario 1: honest counters.  Conservation of flow exposes c. *)
  let honest = Watchers.collect ~rt ~drops ~lies:(fun _ -> `Honest) () in
  show "Honest dropper (CoF test catches it):" (Watchers.detect honest);

  (* Scenario 2: the consorting pair.  c lies, d stays silent. *)
  let lies r = if r = 2 then `Inflate_sent 3 else if r = 3 then `Silent else `Honest in
  let consorting = Watchers.collect ~rt ~drops ~lies () in
  show "\nConsorting pair, original WATCHERS (the flaw):"
    (Watchers.detect ~improved:false consorting);
  show "\nConsorting pair, improved protocol (bystander timeout):"
    (Watchers.detect ~improved:true consorting)
