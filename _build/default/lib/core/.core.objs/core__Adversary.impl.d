lib/core/adversary.ml: Crypto_sim Int64 List Netsim Packet Router
