lib/core/adversary.mli: Netsim
