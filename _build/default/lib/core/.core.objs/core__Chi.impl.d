lib/core/chi.ml: Crypto_sim Float Hashtbl List Mrstats Netsim Option Qmon
