lib/core/chi.mli: Crypto_sim Netsim Topology
