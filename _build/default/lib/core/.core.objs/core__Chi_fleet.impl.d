lib/core/chi_fleet.ml: Chi Hashtbl List Netsim Response Topology
