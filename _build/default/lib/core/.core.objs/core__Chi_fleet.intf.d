lib/core/chi_fleet.mli: Chi Netsim Response Topology
