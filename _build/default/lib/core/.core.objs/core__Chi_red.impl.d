lib/core/chi_red.ml: Array Crypto_sim Hashtbl List Mrstats Netsim Qmon Topology
