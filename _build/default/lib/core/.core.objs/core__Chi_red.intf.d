lib/core/chi_red.mli: Crypto_sim Netsim Topology
