lib/core/congestion_models.ml: Float Mrstats
