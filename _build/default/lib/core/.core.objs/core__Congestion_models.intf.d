lib/core/congestion_models.mli:
