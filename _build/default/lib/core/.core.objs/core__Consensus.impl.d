lib/core/consensus.ml: Array Crypto_sim Fun Int64 List
