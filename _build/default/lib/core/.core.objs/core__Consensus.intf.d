lib/core/consensus.mli: Crypto_sim
