lib/core/fatih.ml: Array Crypto_sim Hashtbl List Netsim Option Response Setrecon Summary Topology Validation
