lib/core/fatih.mli: Crypto_sim Netsim Response Summary Topology Validation
