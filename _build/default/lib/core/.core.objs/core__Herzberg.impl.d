lib/core/herzberg.ml: List Printf
