lib/core/herzberg.mli:
