lib/core/netflow.ml: Hashtbl Netsim Option
