lib/core/netflow.mli: Netsim
