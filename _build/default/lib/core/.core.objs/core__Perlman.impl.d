lib/core/perlman.ml: Array Fun List Printf Queue Topology
