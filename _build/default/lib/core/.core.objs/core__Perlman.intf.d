lib/core/perlman.mli: Topology
