lib/core/perlman_live.ml: Hashtbl Int64 List Netsim Printf Topology
