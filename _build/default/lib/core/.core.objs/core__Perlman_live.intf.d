lib/core/perlman_live.mli: Netsim
