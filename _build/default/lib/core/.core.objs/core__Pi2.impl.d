lib/core/pi2.ml: Array Fun List Rounds Spec Topology Validation
