lib/core/pi2.mli: Rounds Spec Topology Validation
