lib/core/pi2_live.ml: Array Crypto_sim Hashtbl List Netsim Option Summary Topology Validation
