lib/core/pi2_live.mli: Crypto_sim Netsim Summary Topology Validation
