lib/core/pik2.ml: Array Crypto_sim Fun List Rounds Spec Summary Topology Validation
