lib/core/pik2.mli: Crypto_sim Rounds Spec Topology Validation
