lib/core/qmon.ml: Hashtbl List Netsim Topology
