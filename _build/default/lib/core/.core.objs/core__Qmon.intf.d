lib/core/qmon.mli: Crypto_sim Netsim Topology
