lib/core/replica.ml: Crypto_sim Float Hashtbl List Netsim Queue Topology
