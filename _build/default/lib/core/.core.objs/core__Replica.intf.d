lib/core/replica.mli: Crypto_sim Netsim Topology
