lib/core/response.ml: Float List Netsim Topology
