lib/core/response.mli: Netsim Topology
