lib/core/rounds.ml: Array Crypto_sim Fun Hashtbl Int64 List Option Summary Topology
