lib/core/rounds.mli: Summary Topology
