lib/core/sats.ml: Array Crypto_sim Hashtbl Int64 List Printf
