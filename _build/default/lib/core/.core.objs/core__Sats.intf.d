lib/core/sats.mli:
