lib/core/sectrace.ml:
