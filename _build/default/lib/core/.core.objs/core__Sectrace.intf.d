lib/core/sectrace.mli:
