lib/core/spec.ml: Hashtbl List Printf String Topology
