lib/core/spec.mli: Topology
