lib/core/state_size.ml: Array List Summary Topology Watchers
