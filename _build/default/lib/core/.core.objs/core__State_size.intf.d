lib/core/state_size.mli: Summary Topology
