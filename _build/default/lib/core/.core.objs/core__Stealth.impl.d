lib/core/stealth.ml: Crypto_sim Hashtbl Int64 Netsim
