lib/core/stealth.mli: Crypto_sim Netsim
