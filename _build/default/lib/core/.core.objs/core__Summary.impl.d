lib/core/summary.ml: Array Hashtbl Int64 List
