lib/core/summary.mli:
