lib/core/threshold.ml: List
