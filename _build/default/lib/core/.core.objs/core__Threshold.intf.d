lib/core/threshold.mli:
