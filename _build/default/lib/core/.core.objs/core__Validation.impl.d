lib/core/validation.ml: Array Float Int64 List Summary
