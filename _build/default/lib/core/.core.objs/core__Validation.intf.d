lib/core/validation.mli: Summary
