lib/core/watchers.ml: Array Hashtbl List Option Topology
