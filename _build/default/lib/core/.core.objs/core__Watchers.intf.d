lib/core/watchers.mli: Topology
