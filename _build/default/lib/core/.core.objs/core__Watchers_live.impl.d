lib/core/watchers_live.ml: Array Fun List Netflow Netsim Topology
