lib/core/watchers_live.mli: Netsim
