open Netsim

let transit_only behavior : Router.behavior =
 fun ctx pkt ->
  match ctx.Router.prev with Some _ -> behavior ctx pkt | None -> Router.Forward

let after t behavior : Router.behavior =
 fun ctx pkt -> if ctx.Router.now >= t then behavior ctx pkt else Router.Forward

let on_flows flows behavior : Router.behavior =
 fun ctx pkt ->
  if List.mem pkt.Packet.flow flows then behavior ctx pkt else Router.Forward

let drop_all = transit_only (fun _ _ -> Router.Drop)

let coin ~seed ~fraction pkt =
  let key = Crypto_sim.Siphash.key_of_ints (Int64.of_int seed) 0xadfeL in
  let h = Crypto_sim.Siphash.hash_int64s key [ Int64.of_int pkt.Packet.uid ] in
  let u = Int64.to_float (Int64.shift_right_logical h 11) /. 9.007199254740992e15 in
  u < fraction

let drop_fraction ?(seed = 1) fraction =
  transit_only (fun _ pkt -> if coin ~seed ~fraction pkt then Router.Drop else Router.Forward)

let drop_when_queue_above frac =
  transit_only (fun ctx _ ->
      if float_of_int ctx.Router.queue_occupancy
         >= frac *. float_of_int ctx.Router.queue_limit
      then Router.Drop
      else Router.Forward)

let drop_when_red_avg_above bytes =
  transit_only (fun ctx _ ->
      match ctx.Router.red_avg with
      | Some avg when avg > bytes -> Router.Drop
      | Some _ | None -> Router.Forward)

let drop_fraction_when_red_avg_above ?(seed = 1) ~fraction ~avg () =
  transit_only (fun ctx pkt ->
      match ctx.Router.red_avg with
      | Some a when a > avg && coin ~seed ~fraction pkt -> Router.Drop
      | Some _ | None -> Router.Forward)

let drop_syn =
  transit_only (fun _ pkt -> if Packet.is_syn pkt then Router.Drop else Router.Forward)

let modify_fraction ?(seed = 1) fraction =
  transit_only (fun _ pkt ->
      if coin ~seed ~fraction pkt then
        Router.Modify (Int64.logxor pkt.Packet.payload 0x6d616c6963656421L)
      else Router.Forward)

let delay_fraction ?(seed = 1) ~delay fraction =
  transit_only (fun _ pkt ->
      if coin ~seed ~fraction pkt then Router.Delay delay else Router.Forward)
