(** The attack library (§2.2.1 threats; Chapter 6 attack scenarios).

    Builders for {!Netsim.Router.behavior} values covering every
    traffic-faulty behaviour the dissertation studies.  All of them act
    on transit packets only (terminal routers are correct for their own
    traffic, §2.1.4) and are deterministic given their seed. *)

val after : float -> Netsim.Router.behavior -> Netsim.Router.behavior
(** Gate a behaviour: act honestly before the given time (the attack
    starts mid-experiment, as in Fig 5.7). *)

val on_flows : int list -> Netsim.Router.behavior -> Netsim.Router.behavior
(** Restrict a behaviour to the victim flows; everything else is
    forwarded honestly. *)

val drop_all : Netsim.Router.behavior
(** Discard every transit packet. *)

val drop_fraction : ?seed:int -> float -> Netsim.Router.behavior
(** Discard the given fraction of transit packets, chosen by a keyed
    per-packet coin (attack 1 of §6.4.2 composes this with
    {!on_flows}). *)

val drop_when_queue_above : float -> Netsim.Router.behavior
(** Discard transit packets while the target output queue is above the
    given occupancy fraction — attacks 2/3 of §6.4.2, crafted to hide
    inside plausible congestion. *)

val drop_when_red_avg_above : float -> Netsim.Router.behavior
(** Discard while the RED average queue exceeds the given byte value —
    attacks 1/2 of §6.5.3. *)

val drop_fraction_when_red_avg_above :
  ?seed:int -> fraction:float -> avg:float -> unit -> Netsim.Router.behavior
(** Probabilistic variant — attacks 3/4 of §6.5.3. *)

val drop_syn : Netsim.Router.behavior
(** Discard transit TCP SYNs — attack 4 of §6.4.2 / attack 5 of §6.5.3,
    the smallest-footprint denial of service. *)

val modify_fraction : ?seed:int -> float -> Netsim.Router.behavior
(** Overwrite the payload of the given fraction of transit packets. *)

val delay_fraction : ?seed:int -> delay:float -> float -> Netsim.Router.behavior
(** Hold the given fraction of transit packets for [delay] seconds
    (reordering/jitter attack). *)
