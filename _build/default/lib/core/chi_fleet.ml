type suspect = {
  router : int;
  next : int;
  first_alarm : float;
  alarm_rounds : int;
}

type t = {
  monitors : ((int * int) * Chi.t) list;
}

let deploy ~net ~rt ?(config = Chi.default_config) ?response () =
  let monitors =
    List.map
      (fun (l : Topology.Graph.link) ->
        let router = l.Topology.Graph.src and next = l.Topology.Graph.dst in
        ((router, next), Chi.deploy ~net ~rt ~router ~next ~config ()))
      (Topology.Graph.links (Netsim.Net.graph net))
  in
  (match response with
  | Some resp ->
      let last_update = ref neg_infinity in
      (* After each routing installation the neighbours re-derive their
         forwarding predictions from the new tables. *)
      Response.set_on_update resp (fun pol ->
          last_update := Netsim.Sim.now (Netsim.Net.sim net);
          List.iter
            (fun ((router, _), chi) ->
              Chi.set_predict chi (fun pkt ->
                  if pkt.Netsim.Packet.dst = router then None
                  else
                    Topology.Policy.next_hop pol ~prev:None ~cur:router
                      ~dst:pkt.Netsim.Packet.dst))
            monitors);
      (* Poll each monitor at its round cadence and feed fresh alarms to
         the response engine as 2-path-segments. *)
      let sim = Netsim.Net.sim net in
      let reported = Hashtbl.create 8 in
      let rec watch () =
        List.iter
          (fun ((router, next), chi) ->
            (* Ignore rounds whose window straddles a routing change:
               in-flight packets were attributed under two table
               generations (same guard as Fatih's). *)
            let fresh_alarms =
              List.filter
                (fun (r : Chi.report) ->
                  r.Chi.end_time -. config.Chi.tau > !last_update +. 1e-9
                  || r.Chi.end_time < !last_update)
                (Chi.alarms chi)
            in
            if (not (Hashtbl.mem reported (router, next))) && fresh_alarms <> [] then begin
              Hashtbl.replace reported (router, next) ();
              Response.suspect resp [ router; next ]
            end)
          monitors;
        Netsim.Sim.schedule sim ~delay:config.Chi.tau watch
      in
      Netsim.Sim.schedule sim ~delay:config.Chi.tau watch
  | None -> ());
  { monitors }

let monitors t = List.map fst t.monitors

let suspects t =
  List.filter_map
    (fun ((router, next), chi) ->
      match Chi.alarms chi with
      | [] -> None
      | alarms ->
          let first = List.hd alarms in
          Some
            { router; next; first_alarm = first.Chi.end_time;
              alarm_rounds = List.length alarms })
    t.monitors
  |> List.sort (fun a b -> compare a.first_alarm b.first_alarm)

let suspected_routers t =
  List.sort_uniq compare (List.map (fun s -> s.router) (suspects t))

let reports_for t ~router ~next = Chi.reports (List.assoc (router, next) t.monitors)
