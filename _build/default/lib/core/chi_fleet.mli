(** Network-wide Protocol χ: the per-interface traffic-validation
    architecture of Fig 2.3 deployed on every output queue.

    Each router's every output interface is validated by its neighbours;
    an alarm therefore localizes a compromised forwarding plane to a
    specific (router, interface) pair — precision 2 with strong
    completeness (§2.4.2, the ZHANG/χ row of the design space). *)

type suspect = {
  router : int;
  next : int;            (** the output interface (neighbour it feeds) *)
  first_alarm : float;
  alarm_rounds : int;
}

type t

val deploy :
  net:Netsim.Net.t ->
  rt:Topology.Routing.t ->
  ?config:Chi.config ->
  ?response:Response.t ->
  unit ->
  t
(** Install a {!Chi} monitor on every directed link of the network.
    With [response], each first alarm on a queue feeds the suspected
    2-path-segment ⟨router, next⟩ to the response engine, which excises
    the interface from the routing fabric after the OSPF timers — the
    full detect-then-route-around loop at per-interface precision. *)

val monitors : t -> (int * int) list
(** The (router, next) queues being validated. *)

val suspects : t -> suspect list
(** Interfaces with at least one alarming round, ordered by first alarm
    time. *)

val suspected_routers : t -> int list
(** Distinct routers owning a suspected interface. *)

val reports_for : t -> router:int -> next:int -> Chi.report list
(** The per-round reports of one monitor.  Raises [Not_found] for an
    unmonitored pair. *)
