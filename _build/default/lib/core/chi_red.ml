type config = {
  tau : float;
  slack : float;
  alpha : float;
  drift_margin : float;
  learning_rounds : int;
}

let default_config =
  { tau = 2.0; slack = 0.3; alpha = 1e-4; drift_margin = 6000.0; learning_rounds = 3 }

type loss = {
  fp : int64;
  size : int;
  flow : int;
  time : float;
  red_prob : float;
  avg : float;
  certain : bool;
}

type report = {
  round : int;
  start_time : float;
  end_time : float;
  arrivals : int;
  departures : int;
  losses : loss list;
  fabricated : int;
  expected_red_drops : float;
  tail_probability : float;
  cumulative_observed : int;
  cumulative_expected : float;
  cumulative_tail : float;
  suspect_flows : int list;
  alarm : bool;
  learning : bool;
}

type t = {
  qmon : Qmon.t;
  config : config;
  params : Netsim.Red.params;
  link_bw : float;
  (* replayed RED state, persistent across rounds *)
  mutable avg : float;
  mutable count : int;
  mutable occ : int;
  mutable idle_since : float option;
  mutable carry_d : Qmon.entry list;
  mutable round : int;
  mutable reports_rev : report list;
  (* Cumulative evidence since the end of learning: catches attacks whose
     per-round excess hides inside RED's own noise (Figs 6.13-6.15). *)
  mutable cum_observed : int;
  mutable cum_mu : float;
  mutable cum_var : float;
  (* Per-flow cumulative evidence: a targeted attacker concentrates the
     excess on the victim flows, where it stands out of RED's noise long
     before it shows in the aggregate. *)
  cum_flows : (int, flow_acc) Hashtbl.t;
}

and flow_acc = { mutable f_obs : int; mutable f_mu : float; mutable f_var : float }

type replay_event = Arrive of Qmon.entry | Depart of Qmon.entry

let process_round t (data : Qmon.round_data) ~horizon =
  let departed = Hashtbl.create (List.length data.Qmon.departures * 2) in
  List.iter (fun (e : Qmon.entry) -> Hashtbl.replace departed e.Qmon.fp ())
    data.Qmon.departures;
  let now_d, later_d =
    List.partition (fun (e : Qmon.entry) -> e.Qmon.time <= horizon) data.Qmon.departures
  in
  let events =
    List.merge
      (fun a b ->
        let time = function Arrive e | Depart e -> e.Qmon.time in
        compare (time a) (time b))
      (List.map (fun e -> Arrive e) data.Qmon.arrivals)
      (List.map (fun e -> Depart e)
         (List.merge Qmon.(fun a b -> compare a.time b.time) t.carry_d now_d))
  in
  t.carry_d <- later_d;
  let losses = ref [] in
  let all_probs = ref [] in (* (flow, p) per arrival *)
  List.iter
    (fun ev ->
      match ev with
      | Depart e ->
          t.occ <- max 0 (t.occ - e.Qmon.size);
          if t.occ = 0 then t.idle_since <- Some e.Qmon.time
      | Arrive e ->
          (* Replay RED's deterministic side (§6.5.2). *)
          (match t.idle_since with
          | Some since when t.occ = 0 ->
              t.avg <-
                Netsim.Red.decay_avg t.params ~avg:t.avg ~idle:(e.Qmon.time -. since)
                  ~link_bw:t.link_bw;
              t.idle_since <- None
          | _ -> ());
          t.avg <- Netsim.Red.update_avg t.params ~avg:t.avg ~occupancy:t.occ;
          let forced = t.occ + e.Qmon.size > t.params.Netsim.Red.limit_bytes in
          let pb0 = Netsim.Red.early_drop_probability t.params ~avg:t.avg ~count:0 in
          let p_red =
            if pb0 <= 0.0 then if forced then 1.0 else 0.0
            else if pb0 >= 1.0 then 1.0
            else begin
              t.count <- t.count + 1;
              let p = Netsim.Red.early_drop_probability t.params ~avg:t.avg ~count:t.count in
              if forced then 1.0 else p
            end
          in
          if pb0 <= 0.0 then t.count <- -1;
          all_probs := (e.Qmon.flow, p_red) :: !all_probs;
          if Hashtbl.mem departed e.Qmon.fp then t.occ <- t.occ + e.Qmon.size
          else begin
            t.count <- 0;
            (* RED cannot drop below min_th (other than by overflow), so
               a drop with the replayed EWMA more than the drift margin
               below min_th — and room in the replayed queue — is
               individually malicious. *)
            let certain =
              (not forced)
              && t.avg < t.params.Netsim.Red.min_th -. t.config.drift_margin
              && float_of_int (t.occ + e.Qmon.size)
                 <= float_of_int t.params.Netsim.Red.limit_bytes -. t.config.drift_margin
            in
            losses :=
              { fp = e.Qmon.fp; size = e.Qmon.size; flow = e.Qmon.flow;
                time = e.Qmon.time; red_prob = p_red; avg = t.avg; certain }
              :: !losses
          end)
    events;
  (List.rev !losses, Array.of_list (List.rev !all_probs))

let run_round t ~start_time ~end_time ~learning =
  let horizon = end_time -. t.config.slack in
  let data = Qmon.drain t.qmon ~horizon in
  let losses, probs = process_round t data ~horizon in
  let fabricated = List.length data.Qmon.fabricated in
  (* Only genuinely stochastic arrivals enter the statistic: where the
     replay says p = 1 (EWMA beyond max_th or physical overflow) a drop
     carries no information, and a replay/reality mismatch there would
     otherwise bias the expectation. *)
  let stochastic =
    List.filter (fun (_, p) -> p < 0.999) (Array.to_list probs)
  in
  let stochastic_losses = List.filter (fun l -> l.red_prob < 0.999) losses in
  let observed = List.length stochastic_losses in
  let expected_red_drops = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 stochastic in
  let probs = Array.of_list (List.map snd stochastic) in
  let tail_probability =
    Mrstats.Ztest.poisson_binomial_upper_tail ~probs ~observed
  in
  let any_certain = List.exists (fun l -> l.certain) losses in
  if not learning then begin
    t.cum_observed <- t.cum_observed + observed;
    t.cum_mu <- t.cum_mu +. expected_red_drops;
    t.cum_var <-
      t.cum_var +. Array.fold_left (fun acc p -> acc +. (p *. (1.0 -. p))) 0.0 probs;
    let acc_of flow =
      match Hashtbl.find_opt t.cum_flows flow with
      | Some a -> a
      | None ->
          let a = { f_obs = 0; f_mu = 0.0; f_var = 0.0 } in
          Hashtbl.add t.cum_flows flow a;
          a
    in
    List.iter
      (fun (flow, p) ->
        let a = acc_of flow in
        a.f_mu <- a.f_mu +. p;
        a.f_var <- a.f_var +. (p *. (1.0 -. p)))
      stochastic;
    List.iter (fun l -> let a = acc_of l.flow in a.f_obs <- a.f_obs + 1)
      stochastic_losses
  end;
  let cumulative_tail =
    if t.cum_var <= 1e-9 then 1.0
    else begin
      let z = (float_of_int t.cum_observed -. 0.5 -. t.cum_mu) /. sqrt t.cum_var in
      1.0 -. Mrstats.Erf.normal_cdf z
    end
  in
  (* The cumulative alarms additionally require a material excess so that
     a small systematic replay bias cannot accumulate into a false
     positive. *)
  let cumulative_excess =
    float_of_int t.cum_observed -. t.cum_mu > (0.01 *. t.cum_mu) +. 5.0
  in
  (* Per-flow stratified test with Bonferroni correction. *)
  let nflows = max 1 (Hashtbl.length t.cum_flows) in
  let flow_alpha = t.config.alpha /. float_of_int nflows in
  let suspect_flows =
    Hashtbl.fold
      (fun flow a acc ->
        let excess = float_of_int a.f_obs -. a.f_mu in
        if excess > (0.05 *. a.f_mu) +. 5.0 && a.f_var > 1e-9 then begin
          let z = (float_of_int a.f_obs -. 0.5 -. a.f_mu) /. sqrt a.f_var in
          if 1.0 -. Mrstats.Erf.normal_cdf z < flow_alpha then flow :: acc else acc
        end
        else acc)
      t.cum_flows []
  in
  let alarm =
    (not learning)
    && (fabricated > 0 || any_certain
       || (observed > 0 && tail_probability < t.config.alpha)
       || (cumulative_excess && cumulative_tail < t.config.alpha)
       || suspect_flows <> [])
  in
  let report =
    { round = t.round; start_time; end_time;
      arrivals = List.length data.Qmon.arrivals;
      departures = List.length data.Qmon.departures;
      losses; fabricated; expected_red_drops; tail_probability;
      cumulative_observed = t.cum_observed; cumulative_expected = t.cum_mu;
      cumulative_tail; suspect_flows; alarm; learning }
  in
  t.round <- t.round + 1;
  t.reports_rev <- report :: t.reports_rev

let deploy ~net ~rt ~router ~next ~params ?(config = default_config)
    ?(key = Crypto_sim.Siphash.key_of_string "chi-red-monitor") ?predict () =
  let predict =
    match predict with Some p -> p | None -> Qmon.predict_of_routing rt ~router
  in
  let qmon = Qmon.attach ~net ~predict ~key ~router ~next () in
  let link_bw =
    match Netsim.Net.iface net ~src:router ~dst:next with
    | Some iface -> (Netsim.Iface.link iface).Topology.Graph.bw
    | None -> invalid_arg "Chi_red.deploy: no such link"
  in
  let t =
    { qmon; config; params; link_bw; avg = 0.0; count = -1; occ = 0;
      idle_since = Some 0.0; carry_d = []; round = 0; reports_rev = [];
      cum_observed = 0; cum_mu = 0.0; cum_var = 0.0; cum_flows = Hashtbl.create 16 }
  in
  let sim = Netsim.Net.sim net in
  let rec tick start_time () =
    let end_time = Netsim.Sim.now sim in
    let learning = t.round < config.learning_rounds in
    run_round t ~start_time ~end_time ~learning;
    Netsim.Sim.schedule sim ~delay:config.tau (tick end_time)
  in
  Netsim.Sim.schedule sim ~delay:config.tau (tick 0.0);
  t

let reports t = List.rev t.reports_rev
let alarms t = List.filter (fun r -> r.alarm) (reports t)
