(** Protocol χ for RED queues (§6.5): traffic validation under
    non-deterministic queuing.

    RED drops randomly, so the validator cannot predict individual drops;
    it can, however, replay the deterministic part of RED (the EWMA and
    the uniformized drop probability, Fig 6.10) from the neighbours'
    traffic information and judge the {e set} of observed drops:

    - a drop while the replayed average queue is below min_th with room
      in the physical queue has RED-probability ~0: individually
      malicious;
    - otherwise, the probability that RED would produce at least the
      observed number of drops among the round's arrivals is a
      Poisson-binomial tail; when that tail is negligible the drops are
      collectively malicious. *)

type config = {
  tau : float;
  slack : float;
  alpha : float;          (** alarm when P(RED explains the drops) < alpha *)
  drift_margin : float;
      (** bytes of slack for replay drift: a drop is individually certain
          only when the replayed EWMA is at least this far below min_th
          and the replayed queue at least this far from the limit *)
  learning_rounds : int;  (** warm-up rounds that never alarm *)
}

val default_config : config
(** tau 2 s, slack 0.3 s, alpha 1e-4, drift margin 6000 B, 3 warm-up
    rounds. *)

type loss = {
  fp : int64;
  size : int;
  flow : int;
  time : float;
  red_prob : float;   (** replayed RED drop probability at the loss *)
  avg : float;        (** replayed EWMA at the loss *)
  certain : bool;     (** RED could not have dropped this packet *)
}

type report = {
  round : int;
  start_time : float;
  end_time : float;
  arrivals : int;
  departures : int;
  losses : loss list;
  fabricated : int;
  expected_red_drops : float;  (** sum of replayed drop probabilities *)
  tail_probability : float;    (** P(RED drops >= observed) *)
  cumulative_observed : int;   (** drops since learning ended *)
  cumulative_expected : float; (** RED expectation since learning ended *)
  cumulative_tail : float;     (** P(RED explains the whole history) *)
  suspect_flows : int list;
      (** flows whose cumulative drops exceed RED's expectation beyond the
          Bonferroni-corrected significance — targeted victims *)
  alarm : bool;
  learning : bool;
}

type t

val deploy :
  net:Netsim.Net.t ->
  rt:Topology.Routing.t ->
  router:int ->
  next:int ->
  params:Netsim.Red.params ->
  ?config:config ->
  ?key:Crypto_sim.Siphash.key ->
  ?predict:(Netsim.Packet.t -> int option) ->
  unit ->
  t
(** Install the RED validator on queue ⟨router → next⟩; [params] are the
    public RED parameters of that queue (§6.5.2 assumes they are
    announced like link bandwidths). *)

val reports : t -> report list
val alarms : t -> report list
