let check_pos name v = if v <= 0.0 then invalid_arg ("Congestion_models: non-positive " ^ name)

let sqrt_throughput ~rtt ~loss ~b ~mss =
  check_pos "rtt" rtt;
  check_pos "loss" loss;
  if b <= 0 || mss <= 0 then invalid_arg "Congestion_models: non-positive b/mss";
  float_of_int mss /. rtt *. sqrt (3.0 /. (2.0 *. float_of_int b *. loss))

let implied_loss ~rtt ~throughput ~b ~mss =
  check_pos "rtt" rtt;
  check_pos "throughput" throughput;
  if b <= 0 || mss <= 0 then invalid_arg "Congestion_models: non-positive b/mss";
  (* Invert B = (mss/RTT) sqrt(3/2bp): p = 3 mss^2 / (2 b B^2 RTT^2). *)
  let p =
    3.0 *. float_of_int mss *. float_of_int mss
    /. (2.0 *. float_of_int b *. throughput *. throughput *. rtt *. rtt)
  in
  Float.min 1.0 p

let buffer_sigma ~tp ~capacity ~buffer ~flows =
  check_pos "tp" tp;
  check_pos "capacity" capacity;
  check_pos "buffer" buffer;
  if flows <= 0 then invalid_arg "Congestion_models: non-positive flows";
  ((2.0 *. tp *. capacity) +. buffer)
  /. (3.0 *. sqrt 3.0)
  /. sqrt (float_of_int flows)

let overflow_probability ~buffer ~sigma =
  check_pos "buffer" buffer;
  check_pos "sigma" sigma;
  (1.0 -. Mrstats.Erf.erf (buffer /. 2.0 /. (sqrt 2.0 *. sigma))) /. 2.0
