(** The congestion-inference alternatives Protocol χ replaces (§6.1.2).

    Before committing to measurement-based validation, the dissertation
    evaluates (and rejects) predicting congestive loss from traffic
    models:

    - the classic square-root TCP throughput law
      B = (1/RTT) * sqrt(3 / 2bp), inverted to predict the loss rate a
      measured throughput implies;
    - Appenzeller et al.'s buffer-occupancy model for n desynchronized
      flows: Q is approximately normal with
      sigma_Q = (2 Tp C + B) / (3 sqrt 3 sqrt n), giving an overflow
      probability p = (1 - erf(B/2 / (sqrt 2 sigma_Q))) / 2.

    The experiment `mrdetect models` compares both against the
    simulator's measured behaviour, reproducing the section's conclusion
    that the predictions are too rough to arbitrate individual drops. *)

val sqrt_throughput : rtt:float -> loss:float -> b:int -> mss:int -> float
(** Predicted steady-state TCP throughput in bytes/second given the loss
    probability ([b] = packets acknowledged per ACK, usually 1).  Raises
    [Invalid_argument] for non-positive parameters. *)

val implied_loss : rtt:float -> throughput:float -> b:int -> mss:int -> float
(** The inversion: what loss probability the square-root law says a
    measured throughput corresponds to (clamped to [0, 1]). *)

val buffer_sigma : tp:float -> capacity:float -> buffer:float -> flows:int -> float
(** Appenzeller's sigma_Q (bytes): [tp] is the average two-way
    propagation delay, [capacity] the bottleneck in bytes/s, [buffer]
    the queue limit in bytes. *)

val overflow_probability : buffer:float -> sigma:float -> float
(** The model's probability that the (normal) occupancy exceeds the
    buffer. *)
