type value = int64

type behavior =
  | Correct
  | Silent
  | Equivocate of value * value

let default_value = 0x00defa17L

type outcome = {
  decisions : (int * value) list;
  rounds_used : int;
}

(* A signature chain: [signers] in signing order, where signature i
   covers (value, signers_0 .. signers_{i-1}). *)
type chain = {
  value : value;
  signers : int list;
  sigs : Crypto_sim.Keyring.signature list;
}

let words value prior = value :: List.map Int64.of_int prior

let sign keyring ~signer ~value ~prior =
  Crypto_sim.Keyring.sign_words keyring ~signer (words value prior)

let valid_chain keyring ~sender chain =
  let rec check prior signers sigs =
    match (signers, sigs) with
    | [], [] -> true
    | s :: signers, tag :: sigs ->
        Crypto_sim.Keyring.verify_words keyring ~signer:s (words chain.value prior) tag
        && check (prior @ [ s ]) signers sigs
    | _ -> false
  in
  match chain.signers with
  | first :: _ ->
      first = sender
      && List.length (List.sort_uniq compare chain.signers) = List.length chain.signers
      && check [] chain.signers chain.sigs
  | [] -> false

let extend keyring chain ~signer =
  { chain with
    signers = chain.signers @ [ signer ];
    sigs = chain.sigs @ [ sign keyring ~signer ~value:chain.value ~prior:chain.signers ] }

let broadcast ~keyring ~parties ~f ~sender ~value ~behavior =
  if parties < 2 then invalid_arg "Consensus.broadcast: need at least 2 parties";
  if f < 0 || f >= parties then invalid_arg "Consensus.broadcast: f outside [0, parties)";
  if sender < 0 || sender >= parties then invalid_arg "Consensus.broadcast: bad sender";
  let correct p = behavior p = Correct in
  let extracted = Array.make parties [] in
  let inbox = Array.make parties [] in
  let post ~to_ chain = inbox.(to_) <- chain :: inbox.(to_) in
  let everyone = List.init parties Fun.id in
  (* Round 1: the sender speaks (and, if correct, trivially holds its
     own value). *)
  (match behavior sender with
  | Correct ->
      extracted.(sender) <- [ value ];
      let c = { value; signers = []; sigs = [] } in
      let c = extend keyring c ~signer:sender in
      List.iter (fun p -> if p <> sender then post ~to_:p c) everyone
  | Silent -> ()
  | Equivocate (v1, v2) ->
      List.iter
        (fun p ->
          let v = if p mod 2 = 0 then v1 else v2 in
          let c = { value = v; signers = []; sigs = [] } in
          post ~to_:p (extend keyring c ~signer:sender))
        everyone);
  let rounds = f + 1 in
  for round = 1 to rounds do
    let deliveries = Array.map (fun l -> l) inbox in
    Array.iteri (fun p _ -> inbox.(p) <- []) inbox;
    Array.iteri
      (fun p chains ->
        if correct p then
          List.iter
            (fun chain ->
              (* Accept a chain that is properly signed, rooted at the
                 sender, has exactly [round] signatures, and does not
                 already carry our own. *)
              if
                List.length chain.signers = round
                && (not (List.mem p chain.signers))
                && valid_chain keyring ~sender chain
                && not (List.mem chain.value extracted.(p))
              then begin
                extracted.(p) <- chain.value :: extracted.(p);
                if round < rounds then begin
                  let c = extend keyring chain ~signer:p in
                  List.iter (fun q -> if q <> p then post ~to_:q c) everyone
                end
              end)
            chains)
      deliveries
  done;
  let decisions =
    List.filter_map
      (fun p ->
        if not (correct p) then None
        else begin
          match extracted.(p) with
          | [ v ] -> Some (p, v)
          | _ -> Some (p, default_value)
        end)
      everyone
  in
  { decisions; rounds_used = rounds }
