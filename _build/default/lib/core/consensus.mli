(** Byzantine broadcast with signed messages (Dolev–Strong).

    Protocol Π2 requires the routers of a path-segment to agree on each
    other's traffic summaries: "each router sends that traffic
    information to all routers in π using consensus ... digitally signed
    to prevent an attack during consensus" (§5.1).  With signatures,
    synchronous Byzantine broadcast is solvable for any number of faults
    in f+1 rounds (Dolev–Strong): the sender signs its value; each round
    a correct party relays any value carrying a chain of r distinct
    signatures, adding its own; after f+1 rounds a correct party decides
    the unique acceptable value, or a default when the (necessarily
    faulty) sender equivocated.

    Faulty parties here can equivocate, stay silent, relay selectively
    and collude — but cannot forge a correct party's signature
    ({!Crypto_sim.Keyring} enforces this structurally). *)

type value = int64
(** Broadcast payload (a summary digest in Π2's use). *)

type behavior =
  | Correct
  | Silent                      (** drops every protocol message *)
  | Equivocate of value * value (** as sender: signs two different values;
                                    as relay: behaves like [Silent] *)

val default_value : value
(** The fallback decided when the sender provably equivocated or sent
    nothing acceptable. *)

type outcome = {
  decisions : (int * value) list;  (** correct party -> decided value *)
  rounds_used : int;
}

val broadcast :
  keyring:Crypto_sim.Keyring.t ->
  parties:int ->
  f:int ->
  sender:int ->
  value:value ->
  behavior:(int -> behavior) ->
  outcome
(** Run one Dolev–Strong broadcast among parties 0..parties-1 tolerating
    [f] signature-respecting Byzantine parties.  Guarantees (checked by
    the property tests): {e agreement} — all correct parties decide the
    same value; {e validity} — if the sender is correct they decide its
    value.  Raises [Invalid_argument] on nonsensical parameters. *)
