type variant =
  | End_to_end
  | Hop_by_hop
  | Checkpointed of int

type outcome = {
  delivered : bool;
  suspected : (int * int) option;
  detection_time : int;
  messages : int;
}

let check_pos name len = function
  | Some i when i <= 0 || i >= len - 1 ->
      invalid_arg (Printf.sprintf "Herzberg.run: %s position %d outside (0, %d)" name i (len - 1))
  | Some _ | None -> ()

let checkpoints c len =
  (* Source, every c-th node, destination. *)
  let rec build i acc = if i >= len - 1 then List.rev ((len - 1) :: acc) else build (i + c) (i :: acc) in
  build 0 []

let message_complexity variant ~path_len =
  match variant with
  | End_to_end -> path_len - 1 (* one ack relayed back along the path *)
  | Hop_by_hop ->
      (* Node i's ack travels i hops back to the source. *)
      path_len * (path_len - 1) / 2
  | Checkpointed c ->
      if c < 1 then invalid_arg "Herzberg.message_complexity: c must be >= 1";
      (* Each checkpoint acks to the previous one, <= c hops away. *)
      List.fold_left
        (fun (acc, prev) cp -> (acc + (cp - prev), cp))
        (0, 0)
        (List.tl (checkpoints c path_len))
      |> fst

let worst_detection_time variant ~path_len =
  match variant with
  | End_to_end -> 2 * (path_len - 1)
  | Hop_by_hop -> 2 * (path_len - 1)
  | Checkpointed c -> 2 * min c (path_len - 1)

let run variant ~path_len ~drop_at ?(congestion_drop_at = None) () =
  if path_len < 2 then invalid_arg "Herzberg.run: path needs at least 2 nodes";
  check_pos "drop_at" path_len drop_at;
  check_pos "congestion_drop_at" path_len congestion_drop_at;
  (* The message dies at the first loss on its way — the detector cannot
     tell a malicious from a congestive one. *)
  let death =
    match (drop_at, congestion_drop_at) with
    | None, None -> None
    | Some a, None -> Some a
    | None, Some b -> Some b
    | Some a, Some b -> Some (min a b)
  in
  match death with
  | None ->
      { delivered = true; suspected = None; detection_time = 0;
        messages = message_complexity variant ~path_len }
  | Some d -> (
      match variant with
      | End_to_end ->
          (* Nested timeouts: node d-1 is the last to have held the
             message; it hears neither ack nor announcement from d and
             announces <d-1, d> once d's (smaller) timeout has provably
             passed. *)
          { delivered = false; suspected = Some (d - 1, d);
            detection_time = 2 * (path_len - 1 - (d - 1));
            messages = d - 1 (* acks relayed by nodes before the loss: none; announcement hops *) + (d - 1) }
      | Hop_by_hop ->
          (* The source received acks from 1..d-1 and times out on d at
             twice its distance. *)
          { delivered = false; suspected = Some (d - 1, d); detection_time = 2 * d;
            messages = (d - 1) * d / 2 }
      | Checkpointed c ->
          if c < 1 then invalid_arg "Herzberg.run: c must be >= 1";
          let cps = checkpoints c path_len in
          let rec span prev = function
            | cp :: rest -> if cp >= d then (prev, cp) else span cp rest
            | [] -> (prev, path_len - 1)
          in
          let lo, hi = span 0 cps in
          { delivered = false; suspected = Some (lo, hi); detection_time = 2 * (hi - lo);
            messages =
              List.fold_left
                (fun (acc, prev) cp ->
                  if cp < d then (acc + (cp - prev), cp) else (acc, prev))
                (0, 0) (List.tl cps)
              |> fst })
