(** The HERZBERG baselines (§3.3): early detection of message forwarding
    faults on a fixed path.

    Herzberg & Kutten's model: a single message travels a path of m
    processors; acknowledgments flow back from the destination and
    possibly from chosen intermediate checkpoints; each node runs a
    timeout.  The three protocols trade detection time against message
    complexity:

    - end-to-end: one ack, detection time O(m);
    - hop-by-hop: every node acks, optimal time, O(m) messages;
    - checkpointed ("optimal"): acks from sqrt-spaced checkpoints.

    These detectors watch a single packet per round, which is exactly why
    Chapter 6 faults the whole family: a benign congestion drop of the
    monitored packet is indistinguishable from an attack (exposed here by
    [congestion_drop_at]). *)

type variant =
  | End_to_end
  | Hop_by_hop
  | Checkpointed of int  (** ack every c-th node; c >= 1 *)

type outcome = {
  delivered : bool;
  suspected : (int * int) option;
      (** span (i, j) of path positions the detector suspects: a link
          (i, i+1) for end-to-end and hop-by-hop, an inter-checkpoint
          span for the checkpointed variant *)
  detection_time : int;
      (** synchronous time units (hops) until every timeout resolved *)
  messages : int;  (** total ack messages generated *)
}

val run :
  variant ->
  path_len:int ->
  drop_at:int option ->
  ?congestion_drop_at:int option ->
  unit ->
  outcome
(** Deliver one monitored message along a path of [path_len] nodes
    (indices 0 .. len-1).  [drop_at = Some i] means the router at
    position i maliciously discards it (0 < i < len-1);
    [congestion_drop_at] models a benign loss at a position — the
    detector cannot tell the difference, which the caller can observe by
    comparing outcomes.  Raises [Invalid_argument] on out-of-range
    positions. *)

val message_complexity : variant -> path_len:int -> int
(** Ack messages on a fault-free delivery. *)

val worst_detection_time : variant -> path_len:int -> int
(** Worst-case time units to localize a fault. *)
