type t = {
  recv : (int * int * int, int) Hashtbl.t;      (* (router, from, dst) *)
  sent : (int * int * int, int) Hashtbl.t;      (* (router, to, dst) *)
  originated : (int * int, int) Hashtbl.t;      (* (router, dst) *)
  consumed : (int, int) Hashtbl.t;
  transit_in : (int, int) Hashtbl.t;
  transit_out : (int, int) Hashtbl.t;
}

let get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k)
let bump tbl k = Hashtbl.replace tbl k (get tbl k + 1)

let attach ~net () =
  let t =
    { recv = Hashtbl.create 256; sent = Hashtbl.create 256;
      originated = Hashtbl.create 64; consumed = Hashtbl.create 64;
      transit_in = Hashtbl.create 64; transit_out = Hashtbl.create 64 }
  in
  Netsim.Net.subscribe_iface net (fun ev ->
      match ev.Netsim.Net.kind with
      | Netsim.Iface.Delivered pkt ->
          let v = ev.Netsim.Net.next and u = ev.Netsim.Net.router in
          let dst = pkt.Netsim.Packet.dst in
          bump t.recv (v, u, dst);
          if dst <> v then bump t.transit_in v
      | Netsim.Iface.Transmit_start pkt ->
          let u = ev.Netsim.Net.router and v = ev.Netsim.Net.next in
          let dst = pkt.Netsim.Packet.dst in
          bump t.sent (u, v, dst);
          if pkt.Netsim.Packet.src = u then bump t.originated (u, dst)
          else bump t.transit_out u
      | _ -> ());
  Netsim.Net.subscribe_router net (fun ev ->
      match ev.Netsim.Net.kind with
      | Netsim.Router.Delivered_local _ -> bump t.consumed ev.Netsim.Net.router
      | _ -> ());
  t

let received t ~router ~from_ ~dst = get t.recv (router, from_, dst)
let sent t ~router ~to_ ~dst = get t.sent (router, to_, dst)
let originated t ~router ~dst = get t.originated (router, dst)
let consumed t ~router = get t.consumed router

let conservation_deficit t ~router = get t.transit_in router - get t.transit_out router
