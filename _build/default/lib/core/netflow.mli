(** NetFlow-style per-destination traffic counters (§2.4.1).

    The dissertation notes WATCHERS' conservation-of-flow counters "might
    be extracted from existing traffic analysis tools, such as Cisco's
    NetFlow".  This module is that collector on the simulator: for a
    router r it counts, per (neighbour, destination),

    - [received r ~from ~dst]: packets delivered to r by a neighbour, and
    - [sent r ~to_ ~dst]: packets r put on the wire toward a neighbour,

    as the neighbours themselves could observe on the wire — which is the
    flooded snapshot WATCHERS validates. *)

type t

val attach : net:Netsim.Net.t -> unit -> t
(** Start counting every link event in the network (call before
    traffic starts). *)

val received : t -> router:int -> from_:int -> dst:int -> int
val sent : t -> router:int -> to_:int -> dst:int -> int

val originated : t -> router:int -> dst:int -> int
(** Packets the router itself injected, per destination. *)

val consumed : t -> router:int -> int
(** Packets delivered locally at the router. *)

val conservation_deficit : t -> router:int -> int
(** WATCHERS' per-router conservation-of-flow quantity: transit packets
    in minus transit packets out (positive = packets vanished inside the
    router).  Counts only traffic neither originated nor consumed
    there. *)
