let robust_flood g ~faulty ~src =
  if faulty src then []
  else begin
    let n = Topology.Graph.size g in
    let reached = Array.make n false in
    let q = Queue.create () in
    reached.(src) <- true;
    Queue.push src q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      (* Faulty routers may swallow the flood: only correct routers
         re-forward.  (They cannot stop the flood reaching a correct
         router connected through correct routers.) *)
      if not (faulty v) then
        List.iter
          (fun w ->
            if not reached.(w) then begin
              reached.(w) <- true;
              Queue.push w q
            end)
          (Topology.Graph.out_neighbors g v)
    done;
    List.filter
      (fun v -> reached.(v) && not (faulty v))
      (List.init n Fun.id)
    |> List.sort compare
  end

let robust_route g ~faulty ~src ~dst ~f =
  if faulty src || faulty dst then
    invalid_arg "Perlman.robust_route: terminal routers are assumed correct";
  if f < 0 then invalid_arg "Perlman.robust_route: f must be non-negative";
  let paths = Topology.Disjoint.max_disjoint_paths g ~src ~dst in
  let chosen = List.filteri (fun i _ -> i <= f) paths in
  List.find_opt
    (fun p -> List.for_all (fun v -> v = src || v = dst || not (faulty v)) p)
    chosen

type ack_outcome = {
  delivered : bool;
  acks_received : int list;
  suspected : (int * int) option;
}

let perlmand ~path_len ~drops_data_at ~drops_acks_from () =
  if path_len < 3 then invalid_arg "Perlman.perlmand: path needs an intermediate router";
  let check name = function
    | Some i when i <= 0 || i >= path_len ->
        invalid_arg (Printf.sprintf "Perlman.perlmand: %s out of range" name)
    | Some _ | None -> ()
  in
  check "drops_data_at" drops_data_at;
  check "drops_acks_from" drops_acks_from;
  let data_limit = match drops_data_at with Some d -> d | None -> path_len in
  (* Routers strictly before the drop forwarded (and ack); the
     destination acks receipt when the data arrives. *)
  let ackers =
    List.filter
      (fun i -> i < data_limit || (i = path_len - 1 && drops_data_at = None))
      (List.init (path_len - 1) (fun i -> i + 1))
  in
  let acks_received =
    match drops_acks_from with
    | None -> ackers
    | Some a -> List.filter (fun i -> i <= a) ackers
  in
  let delivered = drops_data_at = None in
  let suspected =
    if delivered && List.length acks_received = path_len - 1 then None
    else begin
      (* The source blames the link right after the last contiguous
         acknowledger. *)
      let rec last_contig k = if List.mem (k + 1) acks_received then last_contig (k + 1) else k in
      let k = last_contig 0 in
      Some (k, k + 1)
    end
  in
  { delivered; acks_received; suspected }
