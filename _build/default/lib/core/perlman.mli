(** Perlman's Byzantine-robust network layer (§3.7).

    Three pieces of her design space, each with the property the
    dissertation discusses:

    - {e robust flooding}: a packet reaches every correct router as long
      as correct routers are connected through correct routers (the good
      path condition) — faulty routers can refuse to forward but cannot
      partition the correct subgraph;
    - {e robust routing} for TotalFault(f): send a copy over f+1
      vertex-disjoint paths; at least one avoids every faulty router, so
      delivery is guaranteed without detecting anyone;
    - {e PERLMANd}, the rejected per-hop-ack detection variant: every
      intermediate router acks to the source; Fig 3.8 shows two colluding
      routers (one dropping data, one dropping the other's acks) making
      the source suspect an innocent link — the protocol is neither
      accurate nor complete, which is why Perlman discarded it. *)

val robust_flood :
  Topology.Graph.t -> faulty:(Topology.Graph.node -> bool) -> src:Topology.Graph.node ->
  Topology.Graph.node list
(** Correct routers reached when faulty routers refuse to re-flood
    (sorted; includes [src] if correct). *)

val robust_route :
  Topology.Graph.t ->
  faulty:(Topology.Graph.node -> bool) ->
  src:Topology.Graph.node ->
  dst:Topology.Graph.node ->
  f:int ->
  Topology.Graph.node list option
(** Deliver over f+1 vertex-disjoint paths: the first all-correct path,
    or [None] when every chosen path crosses a faulty router (possible
    only if more than [f] of them are faulty or connectivity < f+1).
    Terminals must be correct; raises [Invalid_argument] otherwise. *)

type ack_outcome = {
  delivered : bool;
  acks_received : int list;         (** positions that acked successfully *)
  suspected : (int * int) option;   (** the link the source blames *)
}

val perlmand :
  path_len:int ->
  drops_data_at:int option ->
  drops_acks_from:int option ->
  unit ->
  ack_outcome
(** The per-hop-ack detector on a path of the given length: position
    [drops_data_at] discards the data packet; position [drops_acks_from]
    discards acks of every node beyond it.  The source blames the link
    after the last ack it received — with the Fig 3.8 collusion this is
    an innocent link. *)
