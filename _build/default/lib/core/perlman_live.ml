type t = {
  net : Netsim.Net.t;
  src : int;
  dst : int;
  flows : int list;              (* one flow id per disjoint path *)
  path_list : int list list;
  mutable next_msg : int;
  mutable delivered_ids : (int, unit) Hashtbl.t;
  mutable copies : int;
}

let create ~net ~src ~dst ~f =
  if f < 0 then invalid_arg "Perlman_live.create: f must be non-negative";
  let g = Netsim.Net.graph net in
  let disjoint = Topology.Disjoint.max_disjoint_paths g ~src ~dst in
  if List.length disjoint < f + 1 then
    invalid_arg
      (Printf.sprintf "Perlman_live.create: only %d disjoint paths, need %d"
         (List.length disjoint) (f + 1));
  let chosen = List.filteri (fun i _ -> i <= f) disjoint in
  let sim = Netsim.Net.sim net in
  let flows =
    List.map
      (fun path ->
        let flow = Netsim.Sim.fresh_id sim in
        Netsim.Net.pin_flow_path net ~flow ~path;
        flow)
      chosen
  in
  let t =
    { net; src; dst; flows; path_list = chosen; next_msg = 0;
      delivered_ids = Hashtbl.create 64; copies = 0 }
  in
  Netsim.Net.attach_app net ~node:dst (fun pkt ->
      if List.mem pkt.Netsim.Packet.flow t.flows then begin
        t.copies <- t.copies + 1;
        (* The message id rides in the payload, identical across copies. *)
        Hashtbl.replace t.delivered_ids (Int64.to_int pkt.Netsim.Packet.payload) ()
      end);
  t

let paths t = t.path_list

let send t ~size =
  let sim = Netsim.Net.sim t.net in
  let msg = t.next_msg in
  t.next_msg <- msg + 1;
  List.iter
    (fun flow ->
      let pkt =
        Netsim.Packet.make ~sim ~src:t.src ~dst:t.dst ~flow ~size Netsim.Packet.Udp
      in
      pkt.Netsim.Packet.payload <- Int64.of_int msg;
      Netsim.Net.originate t.net pkt)
    t.flows

let sent t = t.next_msg
let delivered t = Hashtbl.length t.delivered_ids
let copies_received t = t.copies
