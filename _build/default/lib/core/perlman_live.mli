(** Perlman's Byzantine-robust data delivery on the simulator (§3.7).

    Each logical message is sent as f+1 copies over f+1 vertex-disjoint
    paths (pinned through {!Netsim.Net.pin_flow_path}); the receiver
    deduplicates by message id.  With TotalFault(f) at least one copy
    avoids every compromised router, so delivery is guaranteed without
    detecting anyone — Byzantine robustness, bought with (f+1)×
    bandwidth.  Raises at setup when the topology lacks the required
    path diversity. *)

type t

val create :
  net:Netsim.Net.t ->
  src:int ->
  dst:int ->
  f:int ->
  t
(** Establish the f+1 disjoint delivery paths.  Raises
    [Invalid_argument] when fewer than f+1 vertex-disjoint paths
    exist. *)

val paths : t -> int list list
(** The pinned paths, one per copy. *)

val send : t -> size:int -> unit
(** Send one logical message (f+1 copies on the wire). *)

val sent : t -> int
(** Logical messages sent. *)

val delivered : t -> int
(** Logical messages received (deduplicated). *)

val copies_received : t -> int
(** Raw copies that arrived (up to (f+1) x sent). *)
