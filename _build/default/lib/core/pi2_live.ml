type detection = {
  time : float;
  pair : Topology.Graph.node * Topology.Graph.node;
  segment : Topology.Graph.node list;
  missing : int;
  fabricated : int;
}

(* For a 3-segment <a, x, b>:
   - s01 is the traffic a forwarded into the segment (link a -> x);
   - s12 is the traffic x forwarded onward (link x -> b), which is also
     what b truthfully reports having received.
   The three consensus submissions are a's view of s01 and x's and b's
   views of s12; misreporting routers substitute their own. *)
type seg_state = {
  mutable s01 : Summary.t;
  mutable s12 : Summary.t;
  mutable prev_s01 : Summary.t;
  mutable prev_s12 : Summary.t;
}

type misreport = segment:Topology.Graph.node list -> pos:int -> Summary.t -> Summary.t

type t = {
  thresholds : Validation.thresholds;
  min_packets : int;
  segs : (Topology.Graph.node list, seg_state) Hashtbl.t;
  misreports : (Topology.Graph.node, misreport) Hashtbl.t;
  mutable detections_rev : detection list;
}

let detections t = List.rev t.detections_rev

let suspected_pairs t =
  List.sort_uniq compare (List.map (fun d -> d.pair) (detections t))

let set_misreport t ~router f = Hashtbl.replace t.misreports router f

let fresh () = Summary.create Summary.Content

let deploy ~net ~rt ?(tau = 5.0) ?(thresholds = Validation.lenient ())
    ?(min_packets = 20) ?(key = Crypto_sim.Siphash.key_of_string "pi2-live") () =
  let t =
    { thresholds; min_packets; segs = Hashtbl.create 256;
      misreports = Hashtbl.create 4; detections_rev = [] }
  in
  List.iter
    (fun seg ->
      if List.length seg = 3 && not (Hashtbl.mem t.segs seg) then
        Hashtbl.add t.segs seg
          { s01 = fresh (); s12 = fresh (); prev_s01 = fresh (); prev_s12 = fresh () })
    (Topology.Segments.pik2_family rt ~k:1);
  let path_cache = Hashtbl.create 256 in
  let predicted src dst =
    match Hashtbl.find_opt path_cache (src, dst) with
    | Some p -> p
    | None ->
        let p = Option.map Array.of_list (Topology.Routing.path rt ~src ~dst) in
        Hashtbl.add path_cache (src, dst) p;
        p
  in
  Netsim.Net.subscribe_iface net (fun ev ->
      match ev.Netsim.Net.kind with
      | Netsim.Iface.Delivered pkt -> (
          let u = ev.Netsim.Net.router and v = ev.Netsim.Net.next in
          match predicted pkt.Netsim.Packet.src pkt.Netsim.Packet.dst with
          | None -> ()
          | Some p ->
              let len = Array.length p in
              let fp = Netsim.Packet.fingerprint key pkt in
              let observe field seg =
                match Hashtbl.find_opt t.segs seg with
                | Some st ->
                    Summary.observe (field st) ~fp ~size:pkt.Netsim.Packet.size
                      ~time:ev.Netsim.Net.time
                | None -> ()
              in
              for i = 0 to len - 2 do
                if p.(i) = u && p.(i + 1) = v then begin
                  if i + 2 < len then observe (fun st -> st.s01) [ u; v; p.(i + 2) ];
                  if i >= 1 then observe (fun st -> st.s12) [ p.(i - 1); u; v ]
                end
              done)
      | _ -> ());
  let sim = Netsim.Net.sim net in
  let report seg ~pos ~router truth =
    match Hashtbl.find_opt t.misreports router with
    | Some f -> f ~segment:seg ~pos (Summary.copy truth)
    | None -> truth
  in
  let rec tick () =
    let now = Netsim.Sim.now sim in
    Hashtbl.iter
      (fun seg st ->
        (match seg with
        | [ a; x; b ] when Summary.packets st.s01 >= t.min_packets ->
            let r0 = report seg ~pos:0 ~router:a st.s01 in
            let r1 = report seg ~pos:1 ~router:x st.s12 in
            let r2 = report seg ~pos:2 ~router:b st.s12 in
            let judge ~pair ~sent ~received ~prev =
              let v = Validation.tv ~thresholds:t.thresholds ~sent ~received () in
              let fabricated =
                List.filter (fun fp -> not (Summary.mem prev fp)) v.Validation.fabricated
              in
              let loss_bad =
                float_of_int (List.length v.Validation.missing)
                > t.thresholds.Validation.max_loss_fraction
                  *. float_of_int (Summary.packets sent)
              in
              if loss_bad || List.length fabricated > t.thresholds.Validation.max_fabricated
              then
                t.detections_rev <-
                  { time = now; pair; segment = seg;
                    missing = List.length v.Validation.missing;
                    fabricated = List.length fabricated }
                  :: t.detections_rev
            in
            judge ~pair:(a, x) ~sent:r0 ~received:r1 ~prev:st.prev_s01;
            judge ~pair:(x, b) ~sent:r1 ~received:r2 ~prev:st.prev_s12
        | _ -> ());
        st.prev_s01 <- st.s01;
        st.prev_s12 <- st.s12;
        st.s01 <- fresh ();
        st.s12 <- fresh ())
      t.segs;
    Netsim.Sim.schedule sim ~delay:tau tick
  in
  Netsim.Sim.schedule sim ~delay:tau tick;
  t
