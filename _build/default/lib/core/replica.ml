type arrival = { fp : int64; size : int; time : float }

type t = {
  limit : int;
  bw : float;
  mutable arrivals_rev : arrival list;
  observed_out : (int64, unit) Hashtbl.t;
}

let deploy ~net ~rt ~router ~next ?(key = Crypto_sim.Siphash.key_of_string "replica") () =
  let iface =
    match Netsim.Net.iface net ~src:router ~dst:next with
    | Some i -> i
    | None -> invalid_arg "Replica.deploy: no such link"
  in
  let t =
    { limit = Netsim.Iface.queue_limit iface;
      bw = (Netsim.Iface.link iface).Topology.Graph.bw;
      arrivals_rev = [];
      observed_out = Hashtbl.create 256 }
  in
  Netsim.Net.subscribe_iface net (fun ev ->
      match ev.Netsim.Net.kind with
      | Netsim.Iface.Delivered pkt
        when ev.Netsim.Net.next = router
             && pkt.Netsim.Packet.dst <> router
             && Topology.Routing.next_hop rt router ~dst:pkt.Netsim.Packet.dst
                = Some next ->
          t.arrivals_rev <-
            { fp = Netsim.Packet.fingerprint key pkt; size = pkt.Netsim.Packet.size;
              time = ev.Netsim.Net.time }
            :: t.arrivals_rev
      | Netsim.Iface.Enqueued pkt
        when ev.Netsim.Net.router = router && ev.Netsim.Net.next = next
             && pkt.Netsim.Packet.src = router ->
          t.arrivals_rev <-
            { fp = Netsim.Packet.fingerprint key pkt; size = pkt.Netsim.Packet.size;
              time = ev.Netsim.Net.time }
            :: t.arrivals_rev
      | Netsim.Iface.Transmit_start pkt
        when ev.Netsim.Net.router = router && ev.Netsim.Net.next = next ->
          Hashtbl.replace t.observed_out (Netsim.Packet.fingerprint key pkt) ()
      | _ -> ());
  t

type report = {
  arrivals : int;
  accused : int64 list;
  predicted_congestive : int;
}

let finish t =
  (* Stable sort: simultaneous arrivals keep their observation order,
     matching the router's own event order. *)
  let arrivals =
    List.stable_sort (fun a b -> compare a.time b.time) (List.rev t.arrivals_rev)
  in
  (* Exact drop-tail FIFO replay.  The real queue frees a packet's bytes
     when its transmission STARTS, so the shadow tracks service-start
     times: start_k = max(arrival_k, finish_{k-1}). *)
  let pending = Queue.create () in
  let occ = ref 0 in
  let prev_finish = ref 0.0 in
  let accused = ref [] in
  let predicted_congestive = ref 0 in
  List.iter
    (fun a ->
      (* Remove every packet whose service has started by now. *)
      let continue = ref true in
      while !continue do
        match Queue.peek_opt pending with
        | Some (start, size) when start <= a.time ->
            ignore (Queue.pop pending);
            occ := !occ - size
        | _ -> continue := false
      done;
      if !occ + a.size > t.limit then incr predicted_congestive
      else begin
        let start = Float.max a.time !prev_finish in
        prev_finish := start +. (float_of_int a.size /. t.bw);
        occ := !occ + a.size;
        Queue.push (start, a.size) pending;
        if not (Hashtbl.mem t.observed_out a.fp) then accused := a.fp :: !accused
      end)
    arrivals;
  { arrivals = List.length arrivals; accused = List.rev !accused;
    predicted_congestive = !predicted_congestive }
