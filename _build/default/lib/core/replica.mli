(** The centralized failure detector via active replication (§2.3,
    Fig 2.1).

    The ideal detector: an identical replica r' receives exactly the
    input traffic of the monitored router r and its output is compared
    packet for packet.  Any divergence is a detection — no thresholds, no
    statistics.  The section's two caveats are reproduced by the tests:

    - {e nondeterminism}: the replica must reproduce the router's
      scheduling exactly; processing jitter it cannot see makes it
      diverge on honest traffic (false accusations as soon as the
      jitter bound is non-zero);
    - {e resource requirement}: a full replica per router — the reason
      the dissertation replaces this with distributed traffic
      validation.

    The replica models the output queue deterministically: drop-tail
    admission, exact link-rate FIFO service. *)

type report = {
  arrivals : int;
  accused : int64 list;
      (** fingerprints the replica forwarded but the router did not —
          detections under the exact-replica ideal *)
  predicted_congestive : int;
      (** drops the replica also produced (benign congestion) *)
}

type t

val deploy :
  net:Netsim.Net.t ->
  rt:Topology.Routing.t ->
  router:int ->
  next:int ->
  ?key:Crypto_sim.Siphash.key ->
  unit ->
  t
(** Shadow the queue ⟨router → next⟩.  Raises [Invalid_argument] if the
    link is absent. *)

val finish : t -> report
(** Run the replica over everything observed and compare with the
    router's actual output (call once the simulation has drained). *)
