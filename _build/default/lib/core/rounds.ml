type action = Pass | Drop | Modify

type adversary = {
  faulty : Topology.Graph.node list;
  traffic_action : router:Topology.Graph.node -> fp:int64 -> action;
  misreport :
    router:Topology.Graph.node -> pos:int -> truth:Summary.t array -> Summary.t;
  blocks_exchange : Topology.Graph.node -> bool;
}

let truthful ~router:_ ~pos ~truth = truth.(pos)

let passive faulty =
  { faulty; traffic_action = (fun ~router:_ ~fp:_ -> Pass); misreport = truthful;
    blocks_exchange = (fun _ -> false) }

let fraction_action ~seed ~fraction act faulty =
  (* Deterministic per (router, fp): hash-based coin so repeated
     observations agree. *)
  let key = Crypto_sim.Siphash.key_of_ints (Int64.of_int seed) 0x5eedL in
  fun ~router ~fp ->
    if not (List.mem router faulty) then Pass
    else begin
      let h = Crypto_sim.Siphash.hash_int64s key [ Int64.of_int router; fp ] in
      let u =
        Int64.to_float (Int64.shift_right_logical h 11) /. 9.007199254740992e15
      in
      if u < fraction then act else Pass
    end

let dropper ?(fraction = 1.0) ?(seed = 1) faulty =
  { (passive faulty) with traffic_action = fraction_action ~seed ~fraction Drop faulty }

let modifier ?(fraction = 1.0) ?(seed = 1) faulty =
  { (passive faulty) with traffic_action = fraction_action ~seed ~fraction Modify faulty }

let hider adv =
  let misreport ~router ~pos ~truth =
    if List.mem router adv.faulty && pos > 0 then truth.(pos - 1) else truth.(pos)
  in
  { adv with misreport }

type observation = {
  round : int;
  truth : (Topology.Graph.node list * Summary.t array) list;
  dropped_by : (Topology.Graph.node * int) list;
}

let modified_fp fp = Int64.logxor fp 0x4d4f444946494544L (* "MODIFIED" *)

let observe ~rt ~segments ~adversary ?(policy = Summary.Content) ?(packets_per_path = 20)
    ~round () =
  let faulty_tbl = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace faulty_tbl r ()) adversary.faulty;
  let is_faulty r = Hashtbl.mem faulty_tbl r in
  (* Index the monitored segments by their chains for window matching. *)
  let seg_tbl = Hashtbl.create (List.length segments * 2) in
  List.iter
    (fun seg ->
      if not (Hashtbl.mem seg_tbl seg) then
        Hashtbl.add seg_tbl seg
          (Array.init (List.length seg) (fun _ -> Summary.create policy)))
    segments;
  let sizes = List.sort_uniq compare (List.map List.length segments) in
  let dropped = Hashtbl.create 8 in
  let bump r =
    Hashtbl.replace dropped r (1 + Option.value ~default:0 (Hashtbl.find_opt dropped r))
  in
  let fp_counter = ref (Int64.of_int (round * 1_000_003)) in
  let fresh_fp () =
    fp_counter := Int64.add !fp_counter 1L;
    !fp_counter
  in
  let time = float_of_int round in
  let size = 1000 in
  List.iter
    (fun path ->
      let nodes = Array.of_list path in
      let len = Array.length nodes in
      if len >= 2 then begin
        let initial = List.init packets_per_path (fun _ -> fresh_fp ()) in
        (* forwarded.(i): the fingerprints router nodes.(i) passed along
           the path (for the sink: what it received). *)
        let forwarded = Array.make len [] in
        forwarded.(0) <- initial;
        for i = 1 to len - 1 do
          let arriving = forwarded.(i - 1) in
          if i = len - 1 then forwarded.(i) <- arriving (* sink consumes *)
          else begin
            let r = nodes.(i) in
            forwarded.(i) <-
              List.filter_map
                (fun fp ->
                  if not (is_faulty r) then Some fp
                  else begin
                    match adversary.traffic_action ~router:r ~fp with
                    | Pass -> Some fp
                    | Drop ->
                        bump r;
                        None
                    | Modify ->
                        bump r;
                        Some (modified_fp fp)
                  end)
                arriving
          end
        done;
        (* Accumulate into every monitored segment occurring on this path. *)
        List.iter
          (fun x ->
            if x <= len then
              for o = 0 to len - x do
                let window = Array.to_list (Array.sub nodes o x) in
                match Hashtbl.find_opt seg_tbl window with
                | None -> ()
                | Some summaries ->
                    for t = 0 to x - 1 do
                      List.iter
                        (fun fp -> Summary.observe summaries.(t) ~fp ~size ~time)
                        forwarded.(o + t)
                    done
              done)
          sizes
      end)
    (Topology.Routing.all_routed_paths rt);
  { round;
    truth = Hashtbl.fold (fun seg summaries acc -> (seg, summaries) :: acc) seg_tbl [];
    dropped_by = Hashtbl.fold (fun r n acc -> (r, n) :: acc) dropped [] }

let adjacent_fault_bound ~rt ~faulty =
  let is_faulty r = List.mem r faulty in
  let run_of_path path =
    let best = ref 0 and cur = ref 0 in
    List.iter
      (fun r ->
        if is_faulty r then begin
          incr cur;
          if !cur > !best then best := !cur
        end
        else cur := 0)
      path;
    !best
  in
  List.fold_left
    (fun acc p -> max acc (run_of_path p))
    0
    (Topology.Routing.all_routed_paths rt)

let correct_routers g ~faulty =
  List.filter (fun r -> not (List.mem r faulty))
    (List.init (Topology.Graph.size g) Fun.id)
