(** The abstract synchronous round engine for Protocol Π2 / Πk+2.

    The protocols are specified over rounds: every router collects
    info(r, π, τ) for each monitored segment, the summaries are exchanged
    (consensus for Π2, end-to-end exchange for Πk+2), and TV is
    evaluated.  This engine computes ground-truth summaries from
    synthetic per-path traffic and an adversary (traffic-faulty actions
    plus protocol-faulty misreporting), at the abstraction level at which
    the dissertation states and proves the protocols (Appendix B).  The
    packet-level, timing-accurate counterpart lives in {!Fatih}. *)

type action = Pass | Drop | Modify

type adversary = {
  faulty : Topology.Graph.node list;
      (** the compromised routers (traffic- and/or protocol-faulty) *)
  traffic_action : router:Topology.Graph.node -> fp:int64 -> action;
      (** what a compromised router does to each transit packet; must
          return [Pass] for non-faulty routers (enforced) *)
  misreport :
    router:Topology.Graph.node -> pos:int -> truth:Summary.t array -> Summary.t;
      (** what a protocol-faulty router reports as info(r, π, τ) when the
          true per-position summaries of the segment are [truth] and it
          sits at position [pos]; truthful behaviour returns
          [truth.(pos)] *)
  blocks_exchange : Topology.Graph.node -> bool;
      (** whether the router discards Πk+2 end-to-end exchanges passing
          through it *)
}

val passive : Topology.Graph.node list -> adversary
(** Compromised routers that do nothing (baseline). *)

val dropper :
  ?fraction:float -> ?seed:int -> Topology.Graph.node list -> adversary
(** Traffic-faulty adversary: each compromised router drops the given
    fraction of transit packets (default 1.0), reports truthfully. *)

val modifier : ?fraction:float -> ?seed:int -> Topology.Graph.node list -> adversary
(** Each compromised router rewrites the given fraction of transit
    packets. *)

val hider : adversary -> adversary
(** Lift a traffic-faulty adversary into one whose routers also misreport
    to conceal their drops: a compromised router at position [pos] claims
    to have forwarded exactly what its upstream neighbour sent
    ([truth.(pos - 1)]), pushing the visible discrepancy onto the
    boundary with the first correct downstream router. *)

type observation = {
  round : int;
  (* Per monitored segment, the true per-position summaries: entry i is
     what the i-th router of the segment forwarded along it. *)
  truth : (Topology.Graph.node list * Summary.t array) list;
  dropped_by : (Topology.Graph.node * int) list;
      (** packets each router dropped or modified this round *)
}

val observe :
  rt:Topology.Routing.t ->
  segments:Topology.Graph.node list list ->
  adversary:adversary ->
  ?policy:Summary.policy ->
  ?packets_per_path:int ->
  round:int ->
  unit ->
  observation
(** Build ground truth for one round: [packets_per_path] packets (default
    20) traverse every routed path; compromised routers act on transit
    packets; summaries are accumulated for every monitored segment. *)

val adjacent_fault_bound : rt:Topology.Routing.t -> faulty:Topology.Graph.node list -> int
(** The smallest k such that AdjacentFault(k) holds: the longest run of
    consecutive compromised routers over all routed paths (0 when no
    compromised router lies on any path). *)

val correct_routers :
  Topology.Graph.t -> faulty:Topology.Graph.node list -> Topology.Graph.node list
