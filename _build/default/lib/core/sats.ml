type verdict = {
  suspected : (int * int) option;
  sampled_per_router : int;
}

let pair_sampler ~seed ~fraction i j =
  let key = Crypto_sim.Siphash.key_of_string (Printf.sprintf "%s|sats|%d|%d" seed i j) in
  Crypto_sim.Sampling.create ~key ~fraction

let evading_dropper ~rate ~position =
  let key = Crypto_sim.Siphash.key_of_string "sats-dropper" in
  fun ~position:p ~fp ->
    p = position
    && begin
         let h = Crypto_sim.Siphash.hash_int64s key [ fp ] in
         let u = Int64.to_float (Int64.shift_right_logical h 11) /. 9.007199254740992e15 in
         u < rate
       end

let run ~path_len ~packets ~fraction ~drops ?(ranges_leaked = false) ?(seed = "sats") () =
  if path_len < 3 then invalid_arg "Sats.run: path needs a transit router";
  if packets <= 0 then invalid_arg "Sats.run: need traffic";
  let fps = Array.init packets (fun i -> Crypto_sim.Fnv.hash_int64 (Int64.of_int i)) in
  let samplers =
    (* One secret range per ordered pair (i, j), i < j. *)
    Array.init path_len (fun i ->
        Array.init path_len (fun j ->
            if i < j then Some (pair_sampler ~seed ~fraction i j) else None))
  in
  let sampled_by_someone fp =
    Array.exists
      (fun row ->
        Array.exists
          (function Some s -> Crypto_sim.Sampling.selects s fp | None -> false)
          row)
      samplers
  in
  (* obs.(i) = the packets reaching position i. *)
  let obs = Array.make path_len [] in
  obs.(0) <- Array.to_list fps;
  for i = 1 to path_len - 1 do
    let arriving = obs.(i - 1) in
    if i = path_len - 1 then obs.(i) <- arriving
    else
      obs.(i) <-
        List.filter
          (fun fp ->
            let evades = ranges_leaked && sampled_by_someone fp in
            evades || not (drops ~position:i ~fp))
          arriving
  done;
  let membership i =
    let h = Hashtbl.create 64 in
    List.iter (fun fp -> Hashtbl.replace h fp ()) obs.(i);
    h
  in
  let tables = Array.init path_len membership in
  (* Backend comparison: shortest inconsistent pair wins. *)
  let inconsistent i j =
    match samplers.(i).(j) with
    | None -> false
    | Some s ->
        List.exists
          (fun fp -> Crypto_sim.Sampling.selects s fp && not (Hashtbl.mem tables.(j) fp))
          obs.(i)
  in
  let suspected = ref None in
  (try
     for width = 1 to path_len - 1 do
       for i = 0 to path_len - 1 - width do
         if inconsistent i (i + width) then begin
           suspected := Some (i, i + width);
           raise Exit
         end
       done
     done
   with Exit -> ());
  let sampled_per_router =
    (* Router 0's report volume across its assigned ranges. *)
    let count = ref 0 in
    for j = 1 to path_len - 1 do
      match samplers.(0).(j) with
      | Some s ->
          List.iter (fun fp -> if Crypto_sim.Sampling.selects s fp then incr count) obs.(0)
      | None -> ()
    done;
    !count
  in
  { suspected = !suspected; sampled_per_router }
