(** Secure Split Assignment Trajectory Sampling (§3.9).

    A centralized backend assigns every pair of routers on a path a
    {e secret} hash range; each router reports the fingerprints of the
    packets falling into its assigned ranges; the backend compares the
    two reports of each pair and suspects the span between the first
    inconsistent pair.  Because the assignment is secret, a compromised
    router cannot restrict its attack to unsampled packets — dropping
    [secrecy_matters] shows the evasion that becomes possible when the
    ranges leak. *)

type verdict = {
  suspected : (int * int) option;
      (** positions bounding the first inconsistent pair *)
  sampled_per_router : int;  (** fingerprints each router reported *)
}

val run :
  path_len:int ->
  packets:int ->
  fraction:float ->
  drops:(position:int -> fp:int64 -> bool) ->
  ?ranges_leaked:bool ->
  ?seed:string ->
  unit ->
  verdict
(** Simulate one measurement interval on a path: [packets] packets enter
    at position 0; the router at each transit position may drop a packet
    ([drops ~position ~fp]); every (i, j) pair with i < j samples an
    expected [fraction] of the traffic under its own secret key.  With
    [ranges_leaked] the adversary knows every sampling decision and its
    [drops] predicate is only consulted for unsampled packets (perfect
    evasion).  Deterministic in [seed]. *)

val evading_dropper : rate:float -> position:int -> (position:int -> fp:int64 -> bool)
(** A dropper at [position] discarding roughly [rate] of the traffic
    (keyed coin per packet). *)
