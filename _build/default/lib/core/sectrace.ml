type attacker = {
  position : int;
  active : frontier:int -> bool;
}

let consistent_attacker ~position = { position; active = (fun ~frontier:_ -> true) }

let timing_attacker ~position =
  (* Behave while the prober is still validating up to (and including)
     the attacker's next hop; attack once the frontier has moved past —
     the failure then implicates the freshly-probed downstream link. *)
  { position; active = (fun ~frontier -> frontier >= position + 2) }

type result = {
  suspected : (int * int) option;
  rounds : int;
}

(* Validation of the prefix 0..frontier fails iff the attacker corrupts
   traffic this round from a position strictly inside the prefix. *)
let validation_fails attacker ~frontier =
  match attacker with
  | None -> false
  | Some a -> a.position < frontier && a.active ~frontier

let sectrace ~path_len ~attacker =
  if path_len < 2 then invalid_arg "Sectrace.sectrace: path too short";
  let rec walk frontier rounds =
    if frontier > path_len - 1 then { suspected = None; rounds }
    else if validation_fails attacker ~frontier then
      { suspected = Some (frontier - 1, frontier); rounds = rounds + 1 }
    else walk (frontier + 1) (rounds + 1)
  in
  walk 1 0

let awerbuch ~path_len ~attacker =
  if path_len < 2 then invalid_arg "Sectrace.awerbuch: path too short";
  (* Round 1: end-to-end validation. *)
  if not (validation_fails attacker ~frontier:(path_len - 1)) then
    { suspected = None; rounds = 1 }
  else begin
    let rec search lo hi rounds =
      (* Invariant: prefix 0..lo validated good, prefix 0..hi bad. *)
      if hi - lo <= 1 then { suspected = Some (lo, hi); rounds }
      else begin
        let mid = (lo + hi) / 2 in
        if validation_fails attacker ~frontier:mid then search lo mid (rounds + 1)
        else search mid hi (rounds + 1)
      end
    in
    search 0 (path_len - 1) 1
  end
