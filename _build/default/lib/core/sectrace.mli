(** Secure Traceroute and the AWERBUCH binary-search prober (§3.5, §3.6).

    Both localize a fault on a known path by validating prefixes from the
    source:

    - SecTrace walks hop by hop: validate traffic with router 1, then 2,
      ... until a validation fails; suspect the link between the last
      good prober and the first bad one.  O(m) validation rounds.
    - AWERBUCH binary-searches the path: validate with the midpoint,
      recurse into the bad half.  O(log m) rounds.

    Against a {e consistent} dropper both are accurate with precision 2.
    The §3.6 caveat (Fig 3.7) is reproduced by [timing_attacker]: a
    faulty router that only attacks once the probe frontier has moved
    past it frames an innocent downstream link. *)

type attacker = {
  position : int;  (** the faulty router's index on the path *)
  active : frontier:int -> bool;
      (** whether it corrupts traffic during a round whose validation
          reaches [frontier] *)
}

val consistent_attacker : position:int -> attacker
(** Always attacks (any frontier), from its position. *)

val timing_attacker : position:int -> attacker
(** The Fig 3.7 framing strategy: behaves until its own link has been
    validated, then attacks — the blame lands downstream. *)

type result = {
  suspected : (int * int) option;  (** path positions of the blamed link *)
  rounds : int;                    (** validation rounds used *)
}

val sectrace : path_len:int -> attacker:attacker option -> result
(** Hop-by-hop secure traceroute from position 0. *)

val awerbuch : path_len:int -> attacker:attacker option -> result
(** Binary-search probing (the attacker hook receives the midpoint being
    validated as the frontier). *)
