type suspicion = {
  segment : Topology.Graph.node list;
  round : int;
  by : Topology.Graph.node;
}

let pp_suspicion s =
  Printf.sprintf "(⟨%s⟩, round %d) by %d"
    (String.concat "," (List.map string_of_int s.segment))
    s.round s.by

let precision suspicions =
  List.fold_left (fun acc s -> max acc (List.length s.segment)) 0 suspicions

let accurate ~faulty ~a suspicions =
  let check s =
    if List.length s.segment > a then
      Error (Printf.sprintf "suspicion too long: %s" (pp_suspicion s))
    else if not (List.exists faulty s.segment) then
      Error (Printf.sprintf "suspicion of only-correct routers: %s" (pp_suspicion s))
    else Ok ()
  in
  List.fold_left
    (fun acc s -> match acc with Error _ -> acc | Ok () -> check s)
    (Ok ()) suspicions

let fault_cluster g ~faulty r =
  if not (faulty r) then []
  else begin
    let seen = Hashtbl.create 8 in
    let rec visit v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        List.iter (fun w -> if faulty w then visit w) (Topology.Graph.out_neighbors g v)
      end
    in
    visit r;
    Hashtbl.fold (fun v () acc -> v :: acc) seen []
  end

let complete ~graph ~faulty ~traffic_faulty ~correct_routers suspicions =
  let covered r c =
    let cluster = fault_cluster graph ~faulty r in
    List.exists
      (fun s -> s.by = c && List.exists (fun v -> List.mem v cluster) s.segment)
      suspicions
  in
  List.fold_left
    (fun acc r ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          List.fold_left
            (fun acc c ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  if covered r c then Ok ()
                  else
                    Error
                      (Printf.sprintf
                         "traffic-faulty router %d not covered at correct router %d" r c))
            (Ok ()) correct_routers)
    (Ok ()) traffic_faulty
