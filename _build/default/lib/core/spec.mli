(** The failure-detector specification of §4.2.2.

    Detectors report suspicions (π, τ): the belief that some router inside
    path-segment π forwarded traffic in a faulty manner during round τ.
    A detector is a-Accurate when every suspicion of a correct router has
    |π| <= a and contains a genuinely faulty router; it is a-FC-Complete
    when every traffic-faulty router is eventually covered by a suspicion
    containing a router fault-connected to it.  These checkers implement
    the definitions against ground truth for the property-based tests of
    Appendix B. *)

type suspicion = {
  segment : Topology.Graph.node list;
  round : int;
  by : Topology.Graph.node;  (** the correct router holding the suspicion *)
}

val pp_suspicion : suspicion -> string

val precision : suspicion list -> int
(** Longest suspected segment (0 when no suspicions). *)

val accurate :
  faulty:(Topology.Graph.node -> bool) -> a:int -> suspicion list -> (unit, string) result
(** Check a-Accuracy: each suspicion has length <= a and contains a
    faulty router.  [Error] carries the violating suspicion. *)

val fault_cluster :
  Topology.Graph.t -> faulty:(Topology.Graph.node -> bool) -> Topology.Graph.node ->
  Topology.Graph.node list
(** The set of faulty routers fault-connected to a faulty router r: the
    connected component of faulty routers containing r under graph
    adjacency (r itself included).  Empty if r is not faulty. *)

val complete :
  graph:Topology.Graph.t ->
  faulty:(Topology.Graph.node -> bool) ->
  traffic_faulty:Topology.Graph.node list ->
  correct_routers:Topology.Graph.node list ->
  suspicion list ->
  (unit, string) result
(** Check strong FC-Completeness: for every traffic-faulty router r and
    every correct router c, some suspicion held by c overlaps r's fault
    cluster. *)
