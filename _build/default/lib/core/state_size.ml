let word = 8

let summary_bytes ~policy ~packets_per_round =
  if packets_per_round < 0 then invalid_arg "State_size.summary_bytes: negative packets";
  let words =
    match policy with
    | Summary.Flow -> 2
    | Summary.Content -> 2 + packets_per_round
    | Summary.Order -> 2 + packets_per_round
    | Summary.Timeliness -> 2 + (2 * packets_per_round)
  in
  word * words

let per_router_bytes pr ~per_segment ~policy ~pps_per_segment ~tau =
  let packets = int_of_float (pps_per_segment *. tau) in
  Array.map
    (fun segs ->
      per_segment * List.length segs * summary_bytes ~policy ~packets_per_round:packets)
    pr

let pi2_router_bytes ~rt ~k ~policy ~pps_per_segment ~tau =
  per_router_bytes (Topology.Segments.pi2_pr rt ~k) ~per_segment:1 ~policy
    ~pps_per_segment ~tau

let pik2_router_bytes ~rt ~k ~policy ~pps_per_segment ~tau =
  per_router_bytes (Topology.Segments.pik2_pr rt ~k) ~per_segment:2 ~policy
    ~pps_per_segment ~tau

let watchers_router_bytes g =
  Array.map (fun counters -> word * counters) (Watchers.counters_per_router g)
