(** §7.2 state-size accounting.

    How much per-router memory each protocol needs for one validation
    round, as a function of the conservation policy, the traffic rate
    through the monitored region and the round length.  Pure arithmetic
    mirroring §7.1–7.2: flow keeps counters, content keeps a fingerprint
    per packet, order keeps the sequence, timeliness adds a timestamp. *)

val summary_bytes :
  policy:Summary.policy -> packets_per_round:int -> int
(** Bytes of summary state for one monitored region for one round
    (8-byte words; counters are two words). *)

val pi2_router_bytes :
  rt:Topology.Routing.t -> k:int -> policy:Summary.policy ->
  pps_per_segment:float -> tau:float -> int array
(** Per-router bytes under Π2: one summary per monitored segment, each
    fed [pps_per_segment * tau] packets. *)

val pik2_router_bytes :
  rt:Topology.Routing.t -> k:int -> policy:Summary.policy ->
  pps_per_segment:float -> tau:float -> int array
(** Per-router bytes under Πk+2 (two directions per monitored
    segment). *)

val watchers_router_bytes : Topology.Graph.t -> int array
(** WATCHERS: 7 eight-byte counters per neighbour per destination. *)
