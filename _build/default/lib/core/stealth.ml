type t = {
  mutable sent : int;
  mutable answered : int;
}

let probe_tag key uid = Crypto_sim.Siphash.hash_int64s key [ Int64.of_int uid; 0x0bL ]
let reply_tag key uid = Crypto_sim.Siphash.hash_int64s key [ Int64.of_int uid; 0xacL ]

let start ~net ~src ~dst ~flow ~key ?(interval = 0.5) ?(size = 1000) ~start ~stop () =
  let sim = Netsim.Net.sim net in
  let t = { sent = 0; answered = 0 } in
  let expected_replies = Hashtbl.create 64 in
  (* Responder: a packet of the tunnelled flow whose payload carries the
     keyed MAC of its own uid is a probe; answer with a disguised
     reply. *)
  Netsim.Net.attach_app net ~node:dst (fun pkt ->
      if pkt.Netsim.Packet.flow = flow
         && Int64.equal pkt.Netsim.Packet.payload (probe_tag key pkt.Netsim.Packet.uid)
      then begin
        let reply =
          Netsim.Packet.make ~sim ~src:dst ~dst:src ~flow ~size Netsim.Packet.Udp
        in
        reply.Netsim.Packet.payload <- reply_tag key pkt.Netsim.Packet.uid;
        Netsim.Net.originate net reply
      end);
  (* Prober side: match replies by their MACs. *)
  Netsim.Net.attach_app net ~node:src (fun pkt ->
      if pkt.Netsim.Packet.flow = flow && Hashtbl.mem expected_replies pkt.Netsim.Packet.payload
      then begin
        Hashtbl.remove expected_replies pkt.Netsim.Packet.payload;
        t.answered <- t.answered + 1
      end);
  let rec tick () =
    if Netsim.Sim.now sim <= stop then begin
      let probe = Netsim.Packet.make ~sim ~src ~dst ~flow ~size Netsim.Packet.Udp in
      probe.Netsim.Packet.payload <- probe_tag key probe.Netsim.Packet.uid;
      Hashtbl.replace expected_replies (reply_tag key probe.Netsim.Packet.uid) ();
      t.sent <- t.sent + 1;
      Netsim.Net.originate net probe;
      Netsim.Sim.schedule sim ~delay:interval tick
    end
  in
  Netsim.Sim.schedule_at sim ~time:start tick;
  t

let sent t = t.sent
let answered t = t.answered

let loss_rate t =
  if t.sent = 0 then 0.0
  else float_of_int (t.sent - t.answered) /. float_of_int t.sent

let available t ~threshold = loss_rate t <= threshold
