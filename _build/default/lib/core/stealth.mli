(** Stealth probing (§3.8): end-to-end availability checks a compromised
    router cannot selectively spare.

    Naive active probing fails against a discriminating attacker: if
    probes are recognizable (different protocol, address, or size), the
    router forwards them faithfully while dropping the data around them.
    Stealth probing tunnels the probes inside the data stream: same flow
    identifiers, same sizes, payloads that only the keyed endpoints can
    tell from data.  A router that wants to hurt the data stream
    necessarily hurts the probes, so the probe loss rate tracks the data
    loss rate.

    The detector only establishes {e gross path availability} — no
    localization (precision = path length), which is the design-space
    cost the dissertation assigns it. *)

type t

val start :
  net:Netsim.Net.t ->
  src:int ->
  dst:int ->
  flow:int ->
  key:Crypto_sim.Siphash.key ->
  ?interval:float ->
  ?size:int ->
  start:float ->
  stop:float ->
  unit ->
  t
(** Begin probing inside flow [flow] (use the victim data flow's id and
    packet size so probes are indistinguishable).  The responder at
    [dst] recognizes probes by their keyed payload MAC and answers with
    an equally disguised reply. *)

val sent : t -> int
val answered : t -> int

val loss_rate : t -> float
(** Fraction of probes not (yet) answered; read after the run settles. *)

val available : t -> threshold:float -> bool
(** The §3.8 verdict: path considered available iff the probe loss rate
    is at most [threshold]. *)
