type policy = Flow | Content | Order | Timeliness

type t = {
  policy : policy;
  mutable packets : int;
  mutable bytes : int;
  fps : (int64, unit) Hashtbl.t;            (* Content and richer *)
  mutable seq_rev : int64 list;             (* Order and richer *)
  times : (int64, float) Hashtbl.t;         (* Timeliness *)
}

let create policy =
  { policy; packets = 0; bytes = 0; fps = Hashtbl.create 64; seq_rev = [];
    times = Hashtbl.create 64 }

let policy t = t.policy

let keeps_identity t = t.policy <> Flow
let keeps_order t = match t.policy with Order | Timeliness -> true | Flow | Content -> false

let observe t ~fp ~size ~time =
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + size;
  if keeps_identity t then Hashtbl.replace t.fps fp ();
  if keeps_order t then t.seq_rev <- fp :: t.seq_rev;
  if t.policy = Timeliness then Hashtbl.replace t.times fp time

let packets t = t.packets
let bytes t = t.bytes
let mem t fp = keeps_identity t && Hashtbl.mem t.fps fp
let fingerprints t = Hashtbl.fold (fun fp () acc -> fp :: acc) t.fps []

let sequence t =
  if not (keeps_order t) then
    invalid_arg "Summary.sequence: policy keeps no ordering";
  Array.of_list (List.rev t.seq_rev)

let time_of t fp = if t.policy = Timeliness then Hashtbl.find_opt t.times fp else None

let state_words t =
  match t.policy with
  | Flow -> 2
  | Content -> 2 + Hashtbl.length t.fps
  | Order -> 2 + List.length t.seq_rev
  | Timeliness -> 2 + (2 * List.length t.seq_rev)

let copy t =
  { policy = t.policy; packets = t.packets; bytes = t.bytes;
    fps = Hashtbl.copy t.fps; seq_rev = t.seq_rev; times = Hashtbl.copy t.times }

let remove t fp =
  if keeps_identity t && Hashtbl.mem t.fps fp then begin
    Hashtbl.remove t.fps fp;
    t.packets <- t.packets - 1;
    if keeps_order t then t.seq_rev <- List.filter (fun f -> not (Int64.equal f fp)) t.seq_rev;
    Hashtbl.remove t.times fp
  end
