(** Traffic summaries (§2.4.1, §4.2.1).

    A summary is the per-router state [info(r, π, τ)] collected about the
    traffic that traversed a monitored region during a validation round.
    Each conservation-of-traffic policy needs a different amount of
    state:

    - {e flow}: packet/byte counters only (WATCHERS-style);
    - {e content}: a set of packet fingerprints — detects loss,
      fabrication and modification;
    - {e order}: the fingerprints as an ordered list — additionally
      detects reordering;
    - {e timeliness}: fingerprints with timestamps — additionally detects
      delaying. *)

type policy = Flow | Content | Order | Timeliness

type t

val create : policy -> t
val policy : t -> policy

val observe : t -> fp:int64 -> size:int -> time:float -> unit
(** Record one forwarded packet. *)

val packets : t -> int
val bytes : t -> int

val mem : t -> int64 -> bool
(** Fingerprint membership ([false] under the [Flow] policy, which keeps
    no identities). *)

val fingerprints : t -> int64 list
(** Distinct fingerprints, unordered.  Empty under [Flow]. *)

val sequence : t -> int64 array
(** Fingerprints in forwarding order.  Available under [Order] and
    [Timeliness]; raises [Invalid_argument] otherwise. *)

val time_of : t -> int64 -> float option
(** Timestamp of a fingerprint ([Timeliness] only; [None] elsewhere or if
    absent). *)

val state_words : t -> int
(** Approximate per-round state footprint in 64-bit words — the quantity
    compared across protocols in §7.2. *)

val copy : t -> t
(** Independent snapshot (misreporting adversaries mutate copies). *)

val remove : t -> int64 -> unit
(** Delete a fingerprint (used to forge under-reports in tests).
    No-op under [Flow] apart from the counters being left unchanged. *)
