type t = { loss_rate : float }

let create ~loss_rate =
  if loss_rate < 0.0 || loss_rate > 1.0 then
    invalid_arg "Threshold.create: loss_rate outside [0,1]";
  { loss_rate }

let loss_rate t = t.loss_rate

type round_verdict = { sent : int; lost : int; alarm : bool }

let judge t ~sent ~lost =
  let alarm =
    sent > 0 && float_of_int lost > t.loss_rate *. float_of_int sent
  in
  { sent; lost; alarm }

let confusion t ~rounds =
  List.fold_left
    (fun (tp, fp, fn, tn) (sent, lost, attack) ->
      let v = judge t ~sent ~lost in
      match (v.alarm, attack) with
      | true, true -> (tp + 1, fp, fn, tn)
      | true, false -> (tp, fp + 1, fn, tn)
      | false, true -> (tp, fp, fn + 1, tn)
      | false, false -> (tp, fp, fn, tn + 1))
    (0, 0, 0, 0) rounds
