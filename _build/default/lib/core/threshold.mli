(** The static-threshold loss detector (§6.1.1) — the baseline Protocol χ
    is compared against in §6.4.3.

    Per validation round the detector sees how many packets entered a
    monitored region and how many left; it raises an alarm when the loss
    rate exceeds a user-chosen threshold.  The section's point: any
    threshold large enough to absorb congestive loss lets a targeted
    attacker drop beneath it for free, and any threshold small enough to
    catch the attacker fires on every congested round. *)

type t

val create : loss_rate:float -> t
(** Alarm when losses / sent exceeds [loss_rate] in a round.  Raises
    [Invalid_argument] unless [0 <= loss_rate <= 1]. *)

val loss_rate : t -> float

type round_verdict = { sent : int; lost : int; alarm : bool }

val judge : t -> sent:int -> lost:int -> round_verdict
(** Evaluate one round (an empty round never alarms). *)

val confusion :
  t ->
  rounds:(int * int * bool) list ->
  int * int * int * int
(** [confusion t ~rounds] where each round is (sent, lost,
    attack_present) returns (true positives, false positives, false
    negatives, true negatives) — the sweep quantity of §6.4.3. *)
