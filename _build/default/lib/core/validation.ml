type thresholds = {
  max_loss_fraction : float;
  max_fabricated : int;
  max_reordered : int;
  max_delay : float;
}

let strict =
  { max_loss_fraction = 0.0; max_fabricated = 0; max_reordered = 0; max_delay = infinity }

let lenient ?(max_loss_fraction = 0.02) () = { strict with max_loss_fraction }

type verdict = {
  ok : bool;
  missing : int64 list;
  fabricated : int64 list;
  reordered : int;
  max_delay_seen : float;
}

let lcs_length a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then 0
  else begin
    (* Rolling single-row DP. *)
    let prev = Array.make (m + 1) 0 in
    let cur = Array.make (m + 1) 0 in
    for i = 1 to n do
      for j = 1 to m do
        if Int64.equal a.(i - 1) b.(j - 1) then cur.(j) <- prev.(j - 1) + 1
        else cur.(j) <- max prev.(j) cur.(j - 1)
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let tv ?(thresholds = strict) ~sent ~received () =
  if Summary.policy sent <> Summary.policy received then
    invalid_arg "Validation.tv: summaries use different policies";
  let sent_n = Summary.packets sent in
  let loss_budget = thresholds.max_loss_fraction *. float_of_int sent_n in
  match Summary.policy sent with
  | Summary.Flow ->
      (* Conservation of flow: counters only.  Missing/fabricated are
         counts without identities; we expose them as empty lists and
         decide on the counters. *)
      let missing_n = max 0 (sent_n - Summary.packets received) in
      let fabricated_n = max 0 (Summary.packets received - sent_n) in
      { ok =
          float_of_int missing_n <= loss_budget
          && fabricated_n <= thresholds.max_fabricated;
        missing = [];
        fabricated = [];
        reordered = 0;
        max_delay_seen = 0.0 }
  | Summary.Content | Summary.Order | Summary.Timeliness ->
      let missing =
        List.filter (fun fp -> not (Summary.mem received fp)) (Summary.fingerprints sent)
      in
      let fabricated =
        List.filter (fun fp -> not (Summary.mem sent fp)) (Summary.fingerprints received)
      in
      let reordered =
        if Summary.policy sent = Summary.Content then 0
        else begin
          (* Compare orderings over the common packets only: losses are
             accounted separately (§2.2.1). *)
          let keep other seq = Array.of_list (List.filter (Summary.mem other) (Array.to_list seq)) in
          let s = keep received (Summary.sequence sent) in
          let f = keep sent (Summary.sequence received) in
          Array.length s - lcs_length s f
        end
      in
      let max_delay_seen =
        if Summary.policy sent <> Summary.Timeliness then 0.0
        else
          List.fold_left
            (fun acc fp ->
              match (Summary.time_of sent fp, Summary.time_of received fp) with
              | Some t0, Some t1 -> Float.max acc (t1 -. t0)
              | _ -> acc)
            0.0 (Summary.fingerprints sent)
      in
      { ok =
          float_of_int (List.length missing) <= loss_budget
          && List.length fabricated <= thresholds.max_fabricated
          && reordered <= thresholds.max_reordered
          && max_delay_seen <= thresholds.max_delay;
        missing;
        fabricated;
        reordered;
        max_delay_seen }
