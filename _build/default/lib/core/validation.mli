(** The traffic validation predicate TV (§4.2.1, §2.4.1).

    TV(π, info(ri), info(rj)) decides whether the traffic information two
    routers collected about a monitored region is consistent.  Real
    networks lose a few packets benignly, so TV takes thresholds: a
    verdict only fails when the discrepancy exceeds them (the static
    threshold whose fundamental unsoundness Chapter 6 then demonstrates
    and Protocol χ repairs). *)

type thresholds = {
  max_loss_fraction : float;   (** tolerated missing-packet fraction *)
  max_fabricated : int;        (** tolerated unexplained arrivals *)
  max_reordered : int;         (** tolerated reordering (|S| - LCS) *)
  max_delay : float;           (** tolerated per-packet forwarding delay, s *)
}

val strict : thresholds
(** Zero tolerance on every dimension. *)

val lenient : ?max_loss_fraction:float -> unit -> thresholds
(** Zero tolerance except a loss allowance (default 2%) — the classic
    static-threshold configuration. *)

type verdict = {
  ok : bool;
  missing : int64 list;     (** sent but not received *)
  fabricated : int64 list;  (** received but never sent *)
  reordered : int;          (** positions out of order (|S| - LCS) *)
  max_delay_seen : float;   (** largest per-packet latency (Timeliness) *)
}

val tv : ?thresholds:thresholds -> sent:Summary.t -> received:Summary.t -> unit -> verdict
(** Evaluate conservation of traffic between an upstream and a downstream
    summary.  The checks applied depend on the summaries' policy (both
    must share one; raises [Invalid_argument] otherwise):
    [Flow] compares counters only, [Content] adds identity, [Order] adds
    ordering, [Timeliness] adds delay. *)

val lcs_length : int64 array -> int64 array -> int
(** Longest common subsequence length — the reordering metric of §2.2.1
    (Piratla et al.): reordering = |S| - LCS(S, F). *)
