module Key = struct
  (* (x, y, d): link x->y, destination d. *)
  type t = int * int * int
end

type counters = {
  claimed_sent : (Key.t, int) Hashtbl.t;   (* as claimed by the link source *)
  claimed_recv : (Key.t, int) Hashtbl.t;   (* as claimed by the link sink *)
  originated : (int * int, int) Hashtbl.t; (* (source, destination) *)
  silent : (int, unit) Hashtbl.t;          (* routers that never accuse *)
  links : (int * int) list;
  n : int;
}

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)
let bump tbl key v = Hashtbl.replace tbl key (get tbl key + v)

let collect ~rt ~drops ~lies ?(packets_per_path = 20) () =
  let g = Topology.Routing.graph rt in
  (* true_sent (x, y, d): packets x actually transmitted on link x->y
     toward destination d.  received_for (x, y, d): packets x received
     that it should have forwarded to y toward d — the pre-drop volume an
     inflating router claims to have sent.  Sources and sinks are correct
     for their own traffic (§2.1.4), so drops only apply on transit. *)
  let true_sent = Hashtbl.create 256 in
  let received_for = Hashtbl.create 256 in
  let originated = Hashtbl.create 64 in
  List.iter
    (fun path ->
      let nodes = Array.of_list path in
      let len = Array.length nodes in
      if len >= 2 then begin
        let d = nodes.(len - 1) in
        bump originated (nodes.(0), d) packets_per_path;
        let alive = ref packets_per_path in
        for i = 0 to len - 2 do
          let x = nodes.(i) and y = nodes.(i + 1) in
          bump received_for (x, y, d) !alive;
          if i > 0 && drops x ~next:y then alive := 0;
          bump true_sent (x, y, d) !alive
        done
      end)
    (Topology.Routing.all_routed_paths rt);
  let links =
    List.map (fun (l : Topology.Graph.link) -> (l.Topology.Graph.src, l.Topology.Graph.dst))
      (Topology.Graph.links g)
  in
  let n = Topology.Graph.size g in
  let claimed_sent = Hashtbl.create 256 and claimed_recv = Hashtbl.create 256 in
  let silent = Hashtbl.create 8 in
  for r = 0 to n - 1 do
    if lies r <> `Honest then Hashtbl.replace silent r ()
  done;
  List.iter
    (fun (x, y) ->
      for d = 0 to n - 1 do
        let truth = get true_sent (x, y, d) in
        if truth > 0 || get received_for (x, y, d) > 0 then begin
          let sent_claim =
            match lies x with
            | `Inflate_sent target when target = y -> get received_for (x, y, d)
            | `Honest | `Silent | `Inflate_sent _ | `Match_upstream _ -> truth
          in
          let recv_claim =
            match lies y with
            | `Match_upstream target when target = x -> sent_claim
            | `Honest | `Silent | `Inflate_sent _ | `Match_upstream _ -> truth
          in
          if sent_claim > 0 then Hashtbl.replace claimed_sent (x, y, d) sent_claim;
          if recv_claim > 0 then Hashtbl.replace claimed_recv (x, y, d) recv_claim
        end
      done)
    links;
  { claimed_sent; claimed_recv; originated; silent; links; n }

type detection =
  | Bad_link of Topology.Graph.node * Topology.Graph.node
  | Bad_router of Topology.Graph.node

let detect ?(improved = false) ?(threshold = 0) c =
  let out = ref [] in
  (* Validation phase: the two claims about every link must agree. *)
  List.iter
    (fun (x, y) ->
      let mismatch = ref false in
      for d = 0 to c.n - 1 do
        if get c.claimed_sent (x, y, d) <> get c.claimed_recv (x, y, d) then
          mismatch := true
      done;
      if !mismatch then begin
        let x_accuses = not (Hashtbl.mem c.silent x) in
        let y_accuses = not (Hashtbl.mem c.silent y) in
        if x_accuses || y_accuses then out := Bad_link (x, y) :: !out
        else if improved then
          (* The fix: bystanders expected an accusation from x or y and
             timed out waiting for it. *)
          out := Bad_link (x, y) :: !out
      end)
    c.links;
  (* Conservation-of-flow test per router, from the flooded claims. *)
  for y = 0 to c.n - 1 do
    let bad = ref false in
    for d = 0 to c.n - 1 do
      if d <> y then begin
        let inbound =
          List.fold_left
            (fun acc (a, b) -> if b = y then acc + get c.claimed_recv (a, y, d) else acc)
            0 c.links
          + get c.originated (y, d)
        in
        let outbound =
          List.fold_left
            (fun acc (a, b) -> if a = y then acc + get c.claimed_sent (y, b, d) else acc)
            0 c.links
        in
        if abs (inbound - outbound) > threshold then bad := true
      end
    done;
    if !bad then out := Bad_router y :: !out
  done;
  List.sort_uniq compare !out

let counters_per_router g =
  let n = Topology.Graph.size g in
  Array.map (fun deg -> 7 * deg * n) (Topology.Graph.degrees g)
