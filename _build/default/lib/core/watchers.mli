(** The WATCHERS baseline (§3.1): per-router conservation of flow.

    Each router keeps, per neighbour and per destination, counters of the
    traffic it sent to / received from that neighbour; counter snapshots
    are flooded and every router runs (1) the validation phase — do the
    two ends of each link agree? — and (2) the conservation-of-flow test —
    does traffic entering a router leave it?

    We reproduce both the protocol and its §3.1 flaw: two consorting
    faulty routers can keep their shared-link counters inconsistent and
    simply not accuse each other, which correct routers ignore ("they
    will detect each other").  The [improved] variant applies the
    dissertation's fix: a correct router that observes an inconsistent
    link and receives no accusation from its ends detects that link
    itself. *)

type counters
(** Flooded snapshot: for every directed link (x, y) and destination d,
    [sent x y d] as claimed by x and [received x y d] as claimed by y. *)

val collect :
  rt:Topology.Routing.t ->
  drops:(Topology.Graph.node -> next:Topology.Graph.node -> bool) ->
  lies:(Topology.Graph.node ->
        [ `Honest
        | `Silent  (** honest counters but never accuses anyone *)
        | `Inflate_sent of Topology.Graph.node  (** claim full forwarding to that neighbour *)
        | `Match_upstream of Topology.Graph.node (** corroborate that upstream's claim *) ]) ->
  ?packets_per_path:int ->
  unit ->
  counters
(** Simulate one interval: every routed path carries [packets_per_path]
    packets (default 20); a router discards all transit packets it would
    forward to a neighbour for which [drops router ~next] holds (the
    §3.1 scenario drops in one direction only); [lies] lets faulty
    routers misreport. *)

type detection =
  | Bad_link of Topology.Graph.node * Topology.Graph.node
      (** validation-phase disagreement on a link *)
  | Bad_router of Topology.Graph.node
      (** conservation-of-flow failure *)

val detect : ?improved:bool -> ?threshold:int -> counters -> detection list
(** Run validation + CoF over a snapshot.  With [improved = false]
    (default) links whose two ends are both willing to stay silent are
    NOT reported when neither end accuses the other — the original
    protocol's behaviour, exhibiting the flaw.  With [improved = true]
    such links are reported by the bystanders.  [threshold] is the CoF
    slack in packets (default 0). *)

val counters_per_router : Topology.Graph.t -> int array
(** The §5.1.1 state comparison: 7 counters per neighbour per destination
    for every router. *)
