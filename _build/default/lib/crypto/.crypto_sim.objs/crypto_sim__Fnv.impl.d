lib/crypto/fnv.ml: Char Int64 String
