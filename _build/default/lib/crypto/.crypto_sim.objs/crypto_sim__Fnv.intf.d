lib/crypto/fnv.mli:
