lib/crypto/keyring.ml: Int64 Printf Siphash
