lib/crypto/keyring.mli: Siphash
