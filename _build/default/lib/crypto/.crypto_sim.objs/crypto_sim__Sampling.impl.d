lib/crypto/sampling.ml: Float Int64 Siphash
