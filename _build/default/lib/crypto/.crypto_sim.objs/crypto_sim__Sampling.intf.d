lib/crypto/sampling.mli: Siphash
