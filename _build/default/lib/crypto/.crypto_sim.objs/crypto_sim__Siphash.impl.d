lib/crypto/siphash.ml: Char Fnv Int64 List String
