lib/crypto/siphash.mli:
