(** FNV-1a 64-bit hash.

    An unkeyed fingerprint used where adversarial resistance is not needed
    (hash-range packet sampling as in Trajectory Sampling / SATS, Bloom
    filter index derivation). For adversarial fingerprints use
    {!Siphash}. *)

val hash_string : string -> int64
(** FNV-1a over the bytes of a string. *)

val hash_int64 : int64 -> int64
(** FNV-1a over the 8 little-endian bytes of an int64. *)

val combine : int64 -> int64 -> int64
(** [combine acc x] folds [x] into a running FNV state [acc]; start from
    {!offset_basis}. *)

val offset_basis : int64
(** The standard FNV-1a 64-bit offset basis. *)
