type t = { n : int; seed : string }
type signature = int64

let create ?(seed = "detecting-malicious-routers") ~n () =
  if n <= 0 then invalid_arg "Keyring.create: n must be positive";
  { n; seed }

let size t = t.n

let check_id t id name =
  if id < 0 || id >= t.n then
    invalid_arg (Printf.sprintf "Keyring.%s: router id %d outside [0,%d)" name id t.n)

let pairwise t a b =
  check_id t a "pairwise";
  check_id t b "pairwise";
  let lo = min a b and hi = max a b in
  Siphash.key_of_string (Printf.sprintf "%s|pair|%d|%d" t.seed lo hi)

let monitoring_key t = Siphash.key_of_string (t.seed ^ "|monitor")

let signing_key t id =
  check_id t id "signing_key";
  Siphash.key_of_string (Printf.sprintf "%s|sign|%d" t.seed id)

let sign t ~signer msg = Siphash.hash (signing_key t signer) msg
let verify t ~signer msg tag = Int64.equal (sign t ~signer msg) tag
let sign_words t ~signer words = Siphash.hash_int64s (signing_key t signer) words
let verify_words t ~signer words tag = Int64.equal (sign_words t ~signer words) tag
let forge_attempt = 0xdeadbeefdeadbeefL
