type t = { key : Siphash.key; fraction : float; threshold : int64 }

(* The sampled range is [0, threshold) within the unsigned 64-bit space of
   a keyed re-hash of the fingerprint. *)
let make key fraction =
  let fraction = Float.max 0.0 (Float.min 1.0 fraction) in
  let threshold =
    if fraction >= 1.0 then Int64.minus_one
    else Int64.of_float (fraction *. 1.8446744073709552e19)
  in
  { key; fraction; threshold }

let create ~key ~fraction = make key fraction
let all = make (Siphash.key_of_ints 0L 0L) 1.0

let selects t fp =
  if t.fraction >= 1.0 then true
  else begin
    let h = Siphash.hash_int64s t.key [ fp ] in
    (* Unsigned comparison of h against the threshold. *)
    Int64.unsigned_compare h t.threshold < 0
  end

let fraction t = t.fraction
