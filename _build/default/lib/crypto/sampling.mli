(** Hash-range packet sampling (§2.4.1, Trajectory Sampling / SATS;
    §5.2.1 subsampling for Protocol Πk+2).

    Two routers that agree on a keyed hash function and a hash range
    observe exactly the same pseudo-random subset of packets without
    exchanging per-packet state.  Intermediate routers that do not know
    the key cannot tell which packets are monitored. *)

type t

val create : key:Siphash.key -> fraction:float -> t
(** Sampler selecting approximately [fraction] of packets
    (clamped to [0, 1]). *)

val all : t
(** Sampler that selects every packet (fraction 1). *)

val selects : t -> int64 -> bool
(** [selects t fp] decides membership of a packet fingerprint in the
    sampled range; deterministic in (key, fraction, fp). *)

val fraction : t -> float
(** The configured sampling fraction. *)
