(** SHA-256 (FIPS 180-4) and HMAC-SHA-256 (RFC 2104).

    §2.1.5 lists one-way hash functions (MD5, SHA-1) and MACs (HMAC) as
    the cryptographic toolbox of the detection protocols.  SipHash
    ({!Siphash}) is the fast per-packet fingerprint; this module provides
    the collision-resistant hash used where 64 bits are not enough — key
    derivation, summary digests for signatures, and the HMAC
    construction. *)

val digest : string -> string
(** Raw 32-byte SHA-256 digest. *)

val digest_hex : string -> string
(** Lowercase hex rendering of {!digest} (64 characters). *)

val hmac : key:string -> string -> string
(** Raw 32-byte HMAC-SHA-256 tag. *)

val hmac_hex : key:string -> string -> string

val digest64 : string -> int64
(** The first 8 digest bytes as a big-endian int64 — a convenient
    truncated form for summary digests. *)
