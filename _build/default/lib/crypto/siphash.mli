(** SipHash-2-4: a keyed 64-bit pseudo-random function.

    The dissertation's prototype computes packet fingerprints with
    UHASH/UMAC (§5.3.1, §7.1); UMAC is not available offline, so we
    substitute SipHash-2-4, which provides the same abstract guarantee the
    protocols need — a fast keyed PRF whose outputs an adversary without
    the key can neither predict nor collide. *)

type key = { k0 : int64; k1 : int64 }
(** A 128-bit key as two 64-bit halves. *)

val key_of_ints : int64 -> int64 -> key
(** Build a key from its two halves. *)

val key_of_string : string -> key
(** Derive a key from arbitrary seed material (FNV expansion); convenient
    for tests and key rings. *)

val hash : key -> string -> int64
(** SipHash-2-4 of a byte string (matches the reference test vectors). *)

val hash_int64s : key -> int64 list -> int64
(** SipHash-2-4 of the little-endian concatenation of the given words;
    used to fingerprint packet identity tuples without building strings. *)
