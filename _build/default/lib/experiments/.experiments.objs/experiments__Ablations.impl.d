lib/experiments/ablations.ml: Adversary Chi Core Crypto_sim List Netsim Pik2 Printf Rounds Scenario Topology Util
