lib/experiments/fig_confidence.ml: List Mrstats Printf Util
