lib/experiments/fig_droptail.ml: Core Scenario
