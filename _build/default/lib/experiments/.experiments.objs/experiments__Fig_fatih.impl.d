lib/experiments/fig_fatih.ml: Core Float Flow List Net Netsim Ping Printf Router String Topology Util
