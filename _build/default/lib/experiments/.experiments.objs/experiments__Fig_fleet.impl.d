lib/experiments/fig_fleet.ml: Core Flow Fun List Net Netsim Printf Random Router String Topology Util
