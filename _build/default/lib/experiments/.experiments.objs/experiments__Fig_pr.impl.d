lib/experiments/fig_pr.ml: Core List Printf Topology Util
