lib/experiments/fig_pr.mli:
