lib/experiments/fig_qerror.ml: Array Core Flow List Mrstats Net Netsim Printf Tcp Topology Util
