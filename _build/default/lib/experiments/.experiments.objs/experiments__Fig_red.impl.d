lib/experiments/fig_red.ml: Core Scenario
