lib/experiments/scenario.ml: Core Float Flow Iface List Meter Net Netsim Printf Red Router Tcp Topology Util
