lib/experiments/simulate.ml: Core Flow Iface List Net Netsim Printf Random Router String Tcp Topology Tracer
