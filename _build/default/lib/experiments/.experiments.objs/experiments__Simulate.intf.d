lib/experiments/simulate.mli:
