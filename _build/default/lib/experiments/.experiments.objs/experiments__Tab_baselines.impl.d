lib/experiments/tab_baselines.ml: Core Herzberg List Sectrace Util
