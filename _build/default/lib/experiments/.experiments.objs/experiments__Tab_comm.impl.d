lib/experiments/tab_comm.ml: Array List Random Setrecon Util
