lib/experiments/tab_latency.ml: Adversary Chi Core Fatih List Netsim Printf Scenario Threshold Topology Util
