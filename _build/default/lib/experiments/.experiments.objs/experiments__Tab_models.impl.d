lib/experiments/tab_models.ml: Array Core Iface List Mrstats Net Netsim Option Printf Sim Tcp Topology Util
