lib/experiments/tab_reconcile.ml: Array Int64 List Printf Random Setrecon Util
