lib/experiments/tab_state.ml: Array Core List Printf Topology Util
