lib/experiments/tab_threshold.ml: Core List Printf Scenario Util
