lib/experiments/tab_watchers.ml: Core Flow Iface List Net Netsim Printf Router String Topology Util
