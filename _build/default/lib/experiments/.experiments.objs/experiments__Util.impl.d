lib/experiments/util.ml: List Printf String
