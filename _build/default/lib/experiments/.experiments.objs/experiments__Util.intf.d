lib/experiments/util.mli:
