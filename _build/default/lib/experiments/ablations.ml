(* Ablations over the design choices DESIGN.md calls out:

   1. processing-jitter magnitude vs χ's calibrated sigma and detection
      quality (how much forwarding-plane noise the statistics absorb);
   2. validation round length τ vs detection latency (state vs latency);
   3. Πk+2 hash-range sampling fraction vs per-round detection
      probability and summary size (the §5.2.1 overhead knob). *)

open Core

let alarms_of run =
  List.filter (fun (r : Chi.report) -> r.Chi.alarm) run.Scenario.reports

let false_alarms_of run =
  List.filter
    (fun (r : Chi.report) -> r.Chi.end_time <= run.Scenario.attack_start)
    (alarms_of run)

let jitter_ablation () =
  Util.banner "Ablation 1: processing jitter vs chi calibration";
  Util.row [ "jitter (us)"; "alarms"; "false"; "latency (s)" ];
  List.iter
    (fun jitter_bound ->
      let run =
        Scenario.run_droptail ~jitter_bound
          ~attack:(fun victims ->
            Some (Adversary.on_flows victims (Adversary.drop_when_queue_above 0.90)))
          ()
      in
      let alarms = alarms_of run in
      let latency =
        match alarms with
        | first :: _ -> Printf.sprintf "%.1f" (first.Chi.end_time -. run.Scenario.attack_start)
        | [] -> "-"
      in
      Util.row
        [ Printf.sprintf "%.0f" (jitter_bound *. 1e6);
          string_of_int (List.length alarms);
          string_of_int (List.length (false_alarms_of run));
          latency ])
    [ 0.0; 100e-6; 300e-6; 1e-3; 3e-3 ];
  Util.kv "finding"
    "once per-packet jitter approaches the packet serialization time (~800 us here)      the error distribution grows tails the normal fit underestimates and false      alarms appear — chi depends on the paper's small-forwarding-jitter assumption"


let tau_ablation () =
  Util.banner "Ablation 2: validation round length tau vs detection latency";
  Util.row [ "tau (s)"; "alarms"; "false"; "latency (s)" ];
  List.iter
    (fun tau ->
      let run =
        Scenario.run_droptail ~tau
          ~attack:(fun victims ->
            Some (Adversary.on_flows victims (Adversary.drop_fraction ~seed:5 0.2)))
          ()
      in
      let alarms = alarms_of run in
      let latency =
        match alarms with
        | first :: _ -> Printf.sprintf "%.1f" (first.Chi.end_time -. run.Scenario.attack_start)
        | [] -> "-"
      in
      Util.row
        [ Printf.sprintf "%.1f" tau;
          string_of_int (List.length alarms);
          string_of_int (List.length (false_alarms_of run));
          latency ])
    [ 0.5; 1.0; 2.0; 5.0 ];
  Util.kv "finding"
    "sub-second rounds leave too few samples per round for the combined test      (occasional false alarm) while tau = 5 s only delays detection to the next      boundary — tau ~ 2 s balances latency and robustness"


let sampling_ablation () =
  Util.banner "Ablation 3: Pik+2 sampling fraction vs detection probability";
  let rt = Topology.Routing.compute (Topology.Generate.line ~n:6) in
  let rounds = 20 in
  Util.row [ "fraction"; "det. rounds"; "of"; "summary state" ];
  List.iter
    (fun fraction ->
      let sampling =
        if fraction >= 1.0 then None
        else
          Some
            (Crypto_sim.Sampling.create
               ~key:(Crypto_sim.Siphash.key_of_string "ablation") ~fraction)
      in
      let detected = ref 0 in
      for round = 0 to rounds - 1 do
        let adversary = Rounds.dropper ~fraction:0.05 ~seed:round [ 2 ] in
        let segs =
          Pik2.detect_round ~rt ~k:1 ~adversary ?sampling ~packets_per_path:200 ~round ()
        in
        if List.exists (List.mem 2) segs then incr detected
      done;
      Util.row
        [ Printf.sprintf "%.2f" fraction;
          string_of_int !detected;
          string_of_int rounds;
          Printf.sprintf "%.0f fps/seg" (fraction *. 200.0) ])
    [ 1.0; 0.5; 0.2; 0.05 ];
  Util.kv "finding"
    "a 5% secret hash-range sample still catches a 5% dropper in almost every      round at 1/20th the summary state — the 5.2.1 overhead knob is cheap"


let skew_ablation () =
  (* §7.3: clock desynchronization gets folded into the calibrated error,
     so it costs sensitivity rather than soundness.  One upstream
     neighbour's clock runs fast by the offset; the attacker drops the
     victims whenever the queue is 90% full. *)
  Util.banner "Ablation 4: clock skew vs chi sensitivity (queue-conditioned attack)";
  Util.row [ "skew (ms)"; "sigma (B)"; "alarms"; "false" ];
  List.iter
    (fun skew_s ->
      let g = Scenario.topology () in
      let net = Netsim.Net.create ~seed:21 ~queue:(Netsim.Net.Droptail 64000)
          ~jitter_bound:200e-6 g in
      let rt = Topology.Routing.compute g in
      Netsim.Net.use_routing net rt;
      let config = { Chi.default_config with Chi.tau = 2.0; learning_rounds = 4 } in
      let chi =
        Chi.deploy ~net ~rt ~router:3 ~next:4 ~config
          ~skew:(fun ~reporter -> if reporter = 0 then skew_s else 0.0)
          ()
      in
      ignore (Netsim.Tcp.connect net ~src:0 ~dst:4 ());
      ignore (Netsim.Tcp.connect net ~src:1 ~dst:4 ());
      let victim = Netsim.Tcp.connect net ~src:2 ~dst:4 () in
      Netsim.Router.set_behavior (Netsim.Net.router net 3)
        (Adversary.after 20.0
           (Adversary.on_flows [ Netsim.Tcp.flow_id victim ]
              (Adversary.drop_when_queue_above 0.90)));
      Netsim.Net.run ~until:60.0 net;
      let alarms = Chi.alarms chi in
      let false_alarms =
        List.filter (fun (r : Chi.report) -> r.Chi.end_time <= 20.0) alarms
      in
      let _, sigma = Chi.mu_sigma chi in
      Util.row
        [ Printf.sprintf "%.1f" (skew_s *. 1000.0);
          Printf.sprintf "%.0f" sigma;
          string_of_int (List.length alarms);
          string_of_int (List.length false_alarms) ])
    [ 0.0; 0.001; 0.005; 0.020; 0.100 ];
  Util.kv "finding"
    "skew inflates the calibrated sigma (241 B clean, tens of kB at 100 ms), which      keeps chi sound (no false alarms) but erodes its power: the near-full-queue      attack needs headroom resolution finer than sigma, so detection degrades as      skew approaches the queue drain time — NTP-grade synchronization (7.3) keeps      the protocol sharp"

let corruption_ablation () =
  (* §4.2.1: benign interface errors lose packets on the wire; to chi
     they look like drops with headroom.  Sweep the bit-error floor and
     the min_suspicious dial on an attack-free run. *)
  Util.banner "Ablation 5: link corruption vs chi false alarms (no attack)";
  Util.row [ "corrupt p"; "min_susp"; "false alarms"; "corrupted" ];
  List.iter
    (fun ber ->
      List.iter
        (fun min_suspicious ->
          let g = Scenario.topology () in
          let net = Netsim.Net.create ~seed:21 ~queue:(Netsim.Net.Droptail 64000)
              ~jitter_bound:200e-6 g in
          let rt = Topology.Routing.compute g in
          Netsim.Net.use_routing net rt;
          Netsim.Net.set_link_corruption net ~src:0 ~dst:3 ber;
          let corrupted = ref 0 in
          Netsim.Net.subscribe_iface net (fun ev ->
              match ev.Netsim.Net.kind with
              | Netsim.Iface.Drop_corrupted _ -> incr corrupted
              | _ -> ());
          let config =
            { Chi.default_config with Chi.tau = 2.0; min_suspicious } in
          let chi = Chi.deploy ~net ~rt ~router:3 ~next:4 ~config () in
          List.iter (fun src -> ignore (Netsim.Tcp.connect net ~src ~dst:4 ()))
            [ 0; 1; 2 ];
          Netsim.Net.run ~until:60.0 net;
          Util.row
            [ Printf.sprintf "%.0e" ber; string_of_int min_suspicious;
              string_of_int (List.length (Chi.alarms chi));
              string_of_int !corrupted ])
        [ 1; 3 ])
    [ 0.0; 1e-4; 1e-3 ];
  Util.kv "finding"
    "a corrupting upstream link makes honest losses look malicious (they vanish      before the queue with headroom); raising min_suspicious buys tolerance at the      price of letting a one-packet-per-round attacker hide — the paper's clean-link      assumption is load-bearing"

let run () =
  jitter_ablation ();
  tau_ablation ();
  sampling_ablation ();
  skew_ablation ();
  corruption_ablation ()
