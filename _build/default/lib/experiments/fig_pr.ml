type series = {
  k : int;
  max_pr : float;
  mean_pr : float;
  median_pr : float;
}

let topology_of = function
  | `Sprintlink -> Topology.Generate.sprintlink_like ()
  | `Ebone -> Topology.Generate.ebone_like ()

let name_of = function `Sprintlink -> "Sprintlink-like (315/972)" | `Ebone -> "EBONE-like (87/161)"

let sweep ~protocol ~topology ?(ks = [ 1; 2; 3; 4; 5; 6; 7; 8 ]) () =
  let rt = Topology.Routing.compute (topology_of topology) in
  List.map
    (fun k ->
      let pr =
        match protocol with
        | `Pi2 -> Core.Pi2.pr rt ~k
        | `Pik2 -> Core.Pik2.pr rt ~k
      in
      let max_pr, mean_pr, median_pr = Topology.Segments.pr_stats pr in
      { k; max_pr; mean_pr; median_pr })
    ks

let print_figure ~title ~protocol ~topology =
  Util.banner (Printf.sprintf "%s - %s" title (name_of topology));
  Util.row [ "k"; "max |Pr|"; "avg |Pr|"; "med |Pr|" ];
  List.iter
    (fun s ->
      Util.row
        (string_of_int s.k :: Util.fseries [ s.max_pr; s.mean_pr; s.median_pr ]))
    (sweep ~protocol ~topology ())

let run () =
  print_figure ~title:"Figure 5.2: Protocol Pi2, segments monitored per router"
    ~protocol:`Pi2 ~topology:`Sprintlink;
  print_figure ~title:"Figure 5.2 (EBONE): Protocol Pi2" ~protocol:`Pi2 ~topology:`Ebone;
  print_figure ~title:"Figure 5.4: Protocol Pik+2, segments monitored per router"
    ~protocol:`Pik2 ~topology:`Sprintlink;
  print_figure ~title:"Figure 5.4 (EBONE): Protocol Pik+2" ~protocol:`Pik2
    ~topology:`Ebone
