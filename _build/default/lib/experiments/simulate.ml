open Netsim

type topo = Line | Ring | Grid | Abilene

let topo_of_string = function
  | "line" -> Ok Line
  | "ring" -> Ok Ring
  | "grid" -> Ok Grid
  | "abilene" -> Ok Abilene
  | s -> Error (Printf.sprintf "unknown topology %S (line|ring|grid|abilene)" s)

type attack =
  | No_attack
  | Drop_all
  | Drop_fraction of float
  | Drop_syn
  | Queue_conditioned of float

let attack_of_string s ~fraction =
  match s with
  | "none" -> Ok No_attack
  | "drop-all" -> Ok Drop_all
  | "drop-fraction" -> Ok (Drop_fraction fraction)
  | "syn" -> Ok Drop_syn
  | "queue" -> Ok (Queue_conditioned fraction)
  | s -> Error (Printf.sprintf "unknown attack %S (none|drop-all|drop-fraction|syn|queue)" s)

let graph_of = function
  | Line -> Topology.Generate.line ~n:6
  | Ring -> Topology.Generate.ring ~n:8
  | Grid -> Topology.Generate.grid ~rows:3 ~cols:4
  | Abilene -> Topology.Abilene.graph ()

let behavior_of = function
  | No_attack -> None
  | Drop_all -> Some Core.Adversary.drop_all
  | Drop_fraction f -> Some (Core.Adversary.drop_fraction ~seed:9 f)
  | Drop_syn -> Some Core.Adversary.drop_syn
  | Queue_conditioned f -> Some (Core.Adversary.drop_when_queue_above f)

let run ~topo ~protocol ~attack ~attacker ~duration ~seed ~flows ?(trace = 0) () =
  let g = graph_of topo in
  let n = Topology.Graph.size g in
  if attacker < 0 || attacker >= n then
    invalid_arg (Printf.sprintf "Simulate.run: attacker %d outside [0,%d)" attacker n);
  if flows < 1 then invalid_arg "Simulate.run: need at least one flow";
  let net = Net.create ~seed ~jitter_bound:200e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  let attack_start = duration /. 3.0 in
  (* Ground truth. *)
  let malicious = ref 0 and congestion = ref 0 in
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with Router.Malicious_drop _ -> incr malicious | _ -> ());
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with Iface.Drop_congestion _ -> incr congestion | _ -> ());
  (* Traffic: CBR between pseudo-random distinct pairs that transit the
     attacker where possible. *)
  let rng = Random.State.make [| seed; 0xf10 |] in
  let pairs = ref [] in
  let guard = ref 0 in
  while List.length !pairs < flows && !guard < 1000 do
    incr guard;
    let s = Random.State.int rng n and d = Random.State.int rng n in
    if s <> d && not (List.mem (s, d) !pairs) then pairs := (s, d) :: !pairs
  done;
  List.iter
    (fun (s, d) ->
      ignore (Flow.cbr net ~src:s ~dst:d ~rate_pps:80.0 ~size:500 ~start:0.0 ~stop:duration))
    !pairs;
  Printf.printf "topology: %d routers, %d links; %d flows; attack at %.0f s\n"
    n (Topology.Graph.link_count g) (List.length !pairs) attack_start;
  (match behavior_of attack with
  | Some b ->
      Router.set_behavior (Net.router net attacker) (Core.Adversary.after attack_start b)
  | None -> ());
  let tracer =
    if trace > 0 then Some (Tracer.attach ~net ~capacity:trace ~routers:[ attacker ] ())
    else None
  in
  let dump_trace () =
    match tracer with
    | Some tr ->
        Printf.printf "last %d events at router %d:\n" trace attacker;
        List.iter (fun line -> Printf.printf "  %s\n" line) (Tracer.events tr)
    | None -> ()
  in
  match protocol with
  | `Fatih ->
      let fatih = Core.Fatih.deploy ~net ~rt () in
      Net.run ~until:duration net;
      Printf.printf "ground truth: %d malicious drops, %d congestion drops\n" !malicious
        !congestion;
      let ds = Core.Fatih.detections fatih in
      Printf.printf "fatih: %d detections\n" (List.length ds);
      List.iter
        (fun (d : Core.Fatih.detection) ->
          Printf.printf "  %.1f s  <%s>  %d/%d missing\n" d.Core.Fatih.time
            (String.concat "," (List.map string_of_int d.Core.Fatih.segment))
            d.Core.Fatih.missing d.Core.Fatih.sent)
        ds;
      List.iter
        (fun (u : Core.Response.event) ->
          Printf.printf "  %.1f s  routing update (%d segments excised)\n"
            u.Core.Response.time
            (List.length u.Core.Response.forbidden))
        (Core.Response.updates (Core.Fatih.response fatih));
      dump_trace ()
  | `Chi ->
      (* Monitor the attacker's busiest output queue; TCP through it
         creates the congestion ambiguity χ resolves. *)
      let next =
        match Topology.Graph.out_neighbors g attacker with
        | n :: _ -> n
        | [] -> invalid_arg "Simulate.run: attacker has no interface"
      in
      (* Ensure monitored-queue traffic exists: a TCP through it. *)
      let upstreams =
        List.filter (fun v -> v <> next) (Topology.Graph.out_neighbors g attacker)
      in
      (match upstreams with
      | u :: _ -> ignore (Tcp.connect net ~src:u ~dst:next ())
      | [] -> ());
      let config = { Core.Chi.default_config with Core.Chi.tau = 2.0 } in
      let chi = Core.Chi.deploy ~net ~rt ~router:attacker ~next ~config () in
      Net.run ~until:duration net;
      Printf.printf "ground truth: %d malicious drops, %d congestion drops\n" !malicious
        !congestion;
      Printf.printf "chi on queue <%d -> %d>: %d rounds, %d alarms\n" attacker next
        (List.length (Core.Chi.reports chi))
        (List.length (Core.Chi.alarms chi));
      List.iter
        (fun (r : Core.Chi.report) ->
          if r.Core.Chi.alarm then
            Printf.printf "  %.0f s  %d losses, c_single %.3f\n" r.Core.Chi.end_time
              (List.length r.Core.Chi.losses)
              r.Core.Chi.c_single_max)
        (Core.Chi.reports chi);
      dump_trace ()
