(** Free-form scenario driver behind `mrdetect simulate`: pick a
    topology, an attack and a detector, run it, and print what the
    detector concluded next to the ground truth. *)

type topo = Line | Ring | Grid | Abilene

val topo_of_string : string -> (topo, string) result

type attack = No_attack | Drop_all | Drop_fraction of float | Drop_syn | Queue_conditioned of float

val attack_of_string : string -> fraction:float -> (attack, string) result

val run :
  topo:topo ->
  protocol:[ `Chi | `Fatih ] ->
  attack:attack ->
  attacker:int ->
  duration:float ->
  seed:int ->
  flows:int ->
  ?trace:int ->
  unit ->
  unit
(** Build the network, start [flows] CBR flows between distinct random
    pairs plus TCP where the detector needs congestion, compromise
    [attacker] at one third of [duration], run, and print a summary.
    Raises [Invalid_argument] for out-of-range attacker/flows. *)
