(* The Chapter 2/3 design-space comparison, as runnable tables:

   - the Herzberg time/message trade-off (§3.3);
   - SecTrace vs AWERBUCH localization rounds (§3.5/3.6);
   - the protocol properties summary of §2.4.2 (completeness, accuracy,
     precision), each cell backed by the corresponding executable
     scenario in this repository. *)

open Core

let herzberg_tradeoff () =
  Util.banner "Baselines (3.3): Herzberg time vs message complexity";
  Util.row [ "path m"; "variant"; "msgs/pkt"; "worst time" ];
  List.iter
    (fun m ->
      List.iter
        (fun (name, v) ->
          Util.row
            [ string_of_int m; name;
              string_of_int (Herzberg.message_complexity v ~path_len:m);
              string_of_int (Herzberg.worst_detection_time v ~path_len:m) ])
        [ ("end-to-end", Herzberg.End_to_end); ("hop-by-hop", Herzberg.Hop_by_hop);
          ("checkpoint-4", Herzberg.Checkpointed 4) ])
    [ 8; 16; 32 ]

let probing_rounds () =
  Util.banner "Baselines (3.5/3.6): localization rounds, SecTrace vs AWERBUCH";
  Util.row [ "path m"; "fault at"; "sectrace"; "awerbuch" ];
  List.iter
    (fun (m, pos) ->
      let attacker = Some (Sectrace.consistent_attacker ~position:pos) in
      let st = Sectrace.sectrace ~path_len:m ~attacker in
      let aw = Sectrace.awerbuch ~path_len:m ~attacker in
      Util.row
        [ string_of_int m; string_of_int pos; string_of_int st.Sectrace.rounds;
          string_of_int aw.Sectrace.rounds ])
    [ (9, 6); (17, 12); (33, 28); (65, 50) ]

let properties () =
  Util.banner "Design space (2.4.2): properties of the detection protocols";
  Util.row [ "protocol"; "complete"; "accurate"; "precision" ];
  List.iter
    (fun (name, complete, accurate, precision) ->
      Util.row [ name; complete; accurate; precision ])
    [ ("WATCHERS", "no (flaw)", "yes", "2");
      ("WATCHERS-fixed", "strong", "yes", "2");
      ("HERZBERG", "weak", "yes*", "2");
      ("PERLMANd", "no", "no (Fig 3.8)", "2");
      ("SecTrace", "weak", "no (Fig 3.7)", "2");
      ("AWERBUCH", "weak", "yes*", "2");
      ("SATS", "weak", "yes", "pair span");
      ("Pi2", "strong", "yes", "2");
      ("Pik+2", "strong", "yes", "k+2");
      ("chi", "strong", "yes", "2") ];
  Util.kv "*" "accurate only against attackers that cannot time their drops to the probe schedule";
  Util.kv "evidence"
    "each row is exercised by test/test_baselines.ml, test/test_protocols.ml or test/test_chi.ml"

let run () =
  herzberg_tradeoff ();
  probing_rounds ();
  properties ()
