(* §7.2 / Appendix A: per-round communication of a Πk+2 summary
   exchange, by mechanism.

   The two ends of a monitored path-segment must compare fingerprint
   sets.  Shipping the set costs O(N); a Bloom filter costs a fixed
   size but only estimates; Appendix A's reconciliation costs
   O(losses).  Each row runs the actual mechanisms on synthetic rounds
   (N packets, L of them lost inside the segment). *)

let run () =
  Util.banner "Section 7.2/Appendix A: per-round summary exchange cost (64-bit words)";
  Util.row [ "packets"; "losses"; "full set"; "bloom(fix)"; "reconcile"; "recon exact" ];
  let rng = Random.State.make [| 5 |] in
  List.iter
    (fun (n, losses) ->
      let sent = Array.init n (fun i -> (i * 379) + 11) in
      let received = Array.sub sent 0 (n - losses) in
      let recon = Setrecon.Reconcile.diff ~rng ~a:sent ~b:received () in
      let recon_words, exact =
        match recon with
        | Some r ->
            (r.Setrecon.Reconcile.evals_used,
             List.length r.Setrecon.Reconcile.a_minus_b = losses)
        | None -> (0, false)
      in
      let bloom_bits = 65536 in
      Util.row
        [ string_of_int n; string_of_int losses;
          string_of_int n (* one word per fingerprint, one direction *);
          string_of_int (bloom_bits / 64);
          string_of_int recon_words;
          (if exact then "yes" else "NO") ])
    [ (1000, 0); (1000, 5); (1000, 50); (10000, 5); (10000, 50); (10000, 500) ];
  Util.kv "note"
    "bloom is constant-size but only estimates the loss count (2.4.1); \
     reconciliation recovers the exact missing fingerprints in O(losses) words, \
     which is what makes content validation affordable at line rate"
