(* Appendix A: set reconciliation cost.

   Communication (field elements per direction) as a function of the
   symmetric difference, for sets of 2000 fingerprints per side —
   demonstrating the O(|difference|) bound against the Bloom-filter
   alternative's fixed-size-but-approximate answer. *)

let run () =
  Util.banner "Appendix A: set reconciliation vs Bloom filters";
  let n = 2000 in
  let rng = Random.State.make [| 77 |] in
  Util.row [ "|A delta B|"; "evals sent"; "exact?"; "bloom est." ];
  List.iter
    (fun diff ->
      let shared = Array.init n (fun i -> (i * 211) + 5) in
      let only_a = Array.init diff (fun i -> 1_000_000 + (i * 17)) in
      let only_b = Array.init diff (fun i -> 2_000_000 + (i * 19)) in
      let a = Array.append shared only_a in
      let b = Array.append shared only_b in
      let result = Setrecon.Reconcile.diff ~rng ~max_bound:2048 ~a ~b () in
      let evals, exact =
        match result with
        | Some r ->
            ( r.Setrecon.Reconcile.evals_used,
              List.length r.Setrecon.Reconcile.a_minus_b = diff
              && List.length r.Setrecon.Reconcile.b_minus_a = diff )
        | None -> (0, false)
      in
      (* Bloom alternative: fixed 4 KiB filters. *)
      let fa = Setrecon.Bloom.create ~bits:32768 () in
      let fb = Setrecon.Bloom.create ~bits:32768 () in
      Array.iter (fun e -> Setrecon.Bloom.add fa (Int64.of_int e)) a;
      Array.iter (fun e -> Setrecon.Bloom.add fb (Int64.of_int e)) b;
      let est =
        Setrecon.Bloom.symmetric_difference_estimate ~na:(Array.length a)
          ~nb:(Array.length b) fa fb
      in
      Util.row
        [ string_of_int (2 * diff); string_of_int evals;
          (if exact then "yes" else "NO"); Printf.sprintf "%.0f" est ])
    [ 0; 1; 2; 5; 10; 25; 50; 100 ];
  Util.kv "bloom filter size" "32768 bits per side, every row";
  Util.kv "takeaway"
    "reconciliation transmits O(difference) elements and recovers the exact \
     fingerprints; Bloom filters only estimate the count"
