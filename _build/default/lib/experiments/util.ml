let banner title =
  let rule = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title rule

let row cells =
  print_endline (String.concat " " (List.map (Printf.sprintf "%12s") cells))

let kv key value = Printf.printf "  %-34s %s\n" (key ^ ":") value

let fseries ?(decimals = 1) xs =
  List.map (fun x -> Printf.sprintf "%.*f" decimals x) xs
