(** Table/figure rendering helpers shared by the experiment drivers. *)

val banner : string -> unit
(** Print a figure/table header with a rule. *)

val row : string list -> unit
(** Print a row of left-padded columns (width 12). *)

val kv : string -> string -> unit
(** Print an aligned "key: value" line. *)

val fseries : ?decimals:int -> float list -> string list
(** Format floats uniformly for {!row}. *)
