lib/netsim/flow.ml: Mrstats Net Packet Sim
