lib/netsim/flow.mli: Net
