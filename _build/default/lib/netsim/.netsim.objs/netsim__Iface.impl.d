lib/netsim/iface.ml: Packet Queue_fifo Random Red Sim Topology
