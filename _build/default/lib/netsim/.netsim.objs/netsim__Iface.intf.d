lib/netsim/iface.mli: Packet Red Sim Topology
