lib/netsim/meter.ml: Array Hashtbl Iface List Mrstats Net Option Packet Sim
