lib/netsim/meter.mli: Net
