lib/netsim/net.ml: Array Hashtbl Iface List Packet Random Red Router Sim Topology
