lib/netsim/net.mli: Iface Packet Red Router Sim Topology
