lib/netsim/packet.ml: Crypto_sim Int64 Printf Sim
