lib/netsim/packet.mli: Crypto_sim Sim
