lib/netsim/ping.ml: Hashtbl List Net Packet Sim
