lib/netsim/ping.mli: Net
