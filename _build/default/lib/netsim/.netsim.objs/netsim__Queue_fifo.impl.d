lib/netsim/queue_fifo.ml: Packet Queue
