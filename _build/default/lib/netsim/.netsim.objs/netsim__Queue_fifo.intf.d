lib/netsim/queue_fifo.mli: Packet
