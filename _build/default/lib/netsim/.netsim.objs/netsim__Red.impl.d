lib/netsim/red.ml: Float Packet Queue Random
