lib/netsim/red.mli: Packet Random
