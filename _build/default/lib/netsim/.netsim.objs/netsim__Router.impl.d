lib/netsim/router.ml: Hashtbl Iface List Option Packet Red Sim
