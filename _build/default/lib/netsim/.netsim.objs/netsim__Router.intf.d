lib/netsim/router.mli: Iface Packet Sim
