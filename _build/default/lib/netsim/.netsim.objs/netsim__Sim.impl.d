lib/netsim/sim.ml: Float Printf Prioq Random
