lib/netsim/sim.mli: Random
