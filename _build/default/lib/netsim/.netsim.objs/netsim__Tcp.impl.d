lib/netsim/tcp.ml: Float Hashtbl Net Option Packet Sim
