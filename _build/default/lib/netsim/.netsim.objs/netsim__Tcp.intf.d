lib/netsim/tcp.mli: Net
