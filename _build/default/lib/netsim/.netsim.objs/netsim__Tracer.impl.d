lib/netsim/tracer.ml: Array Iface List Net Packet Printf Router
