lib/netsim/tracer.mli: Net
