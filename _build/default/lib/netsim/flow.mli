(** Open-loop (UDP) traffic generators.

    Constant-bit-rate and Poisson sources provide the background load of
    the experiments; they do not react to loss, which makes them the
    cleanest probes of queue behaviour. *)

type t

val flow_id : t -> int
val sent : t -> int
(** Packets handed to the source router so far. *)

val cbr :
  Net.t ->
  src:int ->
  dst:int ->
  rate_pps:float ->
  size:int ->
  start:float ->
  stop:float ->
  t
(** Constant spacing [1/rate_pps]; packets of [size] bytes.  Raises
    [Invalid_argument] on non-positive rate/size or [stop < start]. *)

val poisson :
  Net.t ->
  src:int ->
  dst:int ->
  rate_pps:float ->
  size:int ->
  start:float ->
  stop:float ->
  t
(** Exponential inter-departure times with the given mean rate. *)

val delivered_counter : Net.t -> node:int -> flow:int -> (unit -> int)
(** Attach a counting sink for a flow at a node; the returned thunk reads
    the count. *)
