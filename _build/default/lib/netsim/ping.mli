(** Echo request/reply measurement (the RTT trace of Fig 5.7).

    A ping source emits a request every [interval]; the destination app
    answers with an equal-size reply; the source records per-probe round
    trip times. *)

type t

val start :
  Net.t ->
  src:int ->
  dst:int ->
  ?interval:float ->
  ?size:int ->
  start:float ->
  stop:float ->
  unit ->
  t
(** Begin probing (default interval 1 s, size 100 B). *)

val samples : t -> (float * float) list
(** [(send_time, rtt)] pairs in send order, completed probes only. *)

val sent : t -> int
val lost : t -> int
(** Probes sent and probes with no reply so far (in-flight probes count
    as lost until answered, so read after the run settles). *)
