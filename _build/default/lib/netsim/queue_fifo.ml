type t = { q : Packet.t Queue.t; limit : int; mutable bytes : int }

let create ?(limit_bytes = 64000) () =
  if limit_bytes <= 0 then invalid_arg "Queue_fifo.create: limit must be positive";
  { q = Queue.create (); limit = limit_bytes; bytes = 0 }

let limit t = t.limit
let occupancy t = t.bytes
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q

let try_enqueue t p =
  if t.bytes + p.Packet.size > t.limit then false
  else begin
    Queue.push p t.q;
    t.bytes <- t.bytes + p.Packet.size;
    true
  end

let dequeue t =
  match Queue.take_opt t.q with
  | None -> None
  | Some p ->
      t.bytes <- t.bytes - p.Packet.size;
      Some p
