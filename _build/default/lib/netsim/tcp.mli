(** TCP Reno over the simulated network.

    Chapter 6's experiments hinge on TCP's closed-loop behaviour: normal
    congestion drops are created by TCP itself filling the bottleneck
    buffer, and targeted attacks (dropping a victim's SYN, or a few of
    its data segments) collapse the victim's throughput while barely
    perturbing aggregate counters.  This is a faithful-but-compact Reno:
    slow start, congestion avoidance, fast retransmit/recovery,
    RFC 6298-style RTO estimation with exponential backoff, a 3 s initial
    SYN timeout, and a cumulative-ACK receiver with an out-of-order
    buffer. *)

type t

val connect :
  Net.t ->
  src:int ->
  dst:int ->
  ?mss:int ->
  ?total_bytes:int ->
  ?start:float ->
  ?stop:float ->
  unit ->
  t
(** Start a connection at [start] (default 0).  [mss] is the payload
    bytes per segment (default 960; 40 header bytes are added on the
    wire).  [total_bytes] bounds the transfer (default unbounded); [stop]
    stops offering new data after that time. *)

val flow_id : t -> int
val established : t -> bool
val connect_time : t -> float option
(** When the SYN-ACK arrived (attack 4 delays this by seconds). *)

val bytes_acked : t -> int
val cwnd : t -> float
(** Congestion window in bytes. *)

val retransmits : t -> int
(** Number of retransmitted segments (fast + timeout). *)

val timeouts : t -> int
(** Number of RTO firings. *)

val syn_retries : t -> int
(** SYN retransmissions (3 s, then exponential backoff). *)

val finished : t -> bool
(** All of [total_bytes] acknowledged. *)

val finish_time : t -> float option
(** When the last byte was acknowledged. *)

val goodput : t -> at:float -> float
(** Average acknowledged bytes/second from [start] to [at]. *)
