type t = {
  capacity : int;
  ring : string option array;
  mutable next : int;
  mutable total : int;
}

let record t line =
  t.ring.(t.next) <- Some line;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let wants routers flows ~router pkt =
  (routers = [] || List.mem router routers)
  && (flows = [] || List.mem pkt.Packet.flow flows)

let describe_iface = function
  | Iface.Enqueued _ -> "enqueue"
  | Iface.Drop_congestion _ -> "DROP-congestion"
  | Iface.Drop_red_early _ -> "DROP-red"
  | Iface.Drop_link_down _ -> "DROP-link-down"
  | Iface.Drop_corrupted _ -> "DROP-corrupted"
  | Iface.Transmit_start _ -> "transmit"
  | Iface.Delivered _ -> "deliver"

let iface_packet = function
  | Iface.Enqueued p | Iface.Drop_congestion p | Iface.Drop_red_early p
  | Iface.Drop_link_down p | Iface.Drop_corrupted p | Iface.Transmit_start p
  | Iface.Delivered p ->
      p

let attach ~net ?(capacity = 1000) ?(routers = []) ?(flows = []) () =
  if capacity <= 0 then invalid_arg "Tracer.attach: capacity must be positive";
  let t = { capacity; ring = Array.make capacity None; next = 0; total = 0 } in
  Net.subscribe_iface net (fun ev ->
      let pkt = iface_packet ev.Net.kind in
      if wants routers flows ~router:ev.Net.router pkt then
        record t
          (Printf.sprintf "%.4f r%d->r%d %s %s" ev.Net.time ev.Net.router ev.Net.next
             (describe_iface ev.Net.kind) (Packet.describe pkt)));
  Net.subscribe_router net (fun ev ->
      let entry kind pkt =
        if wants routers flows ~router:ev.Net.router pkt then
          record t
            (Printf.sprintf "%.4f r%d %s %s" ev.Net.time ev.Net.router kind
               (Packet.describe pkt))
      in
      match ev.Net.kind with
      | Router.Malicious_drop { pkt; _ } -> entry "MALICIOUS-drop" pkt
      | Router.Malicious_modify { pkt; _ } -> entry "MALICIOUS-modify" pkt
      | Router.Malicious_delay { pkt; delay; _ } ->
          entry (Printf.sprintf "MALICIOUS-delay(%.3fs)" delay) pkt
      | Router.Fabricated { pkt; _ } -> entry "MALICIOUS-fabricate" pkt
      | Router.Fragmented { original; fragments; _ } ->
          entry (Printf.sprintf "fragment(x%d)" fragments) original
      | Router.No_route pkt -> entry "no-route" pkt
      | Router.Ttl_expired pkt -> entry "ttl-expired" pkt
      | Router.Delivered_local pkt -> entry "local-deliver" pkt);
  t

let events t =
  let out = ref [] in
  for i = t.capacity - 1 downto 0 do
    match t.ring.((t.next + i) mod t.capacity) with
    | Some line -> out := line :: !out
    | None -> ()
  done;
  !out

let count t = t.total

let dump t oc = List.iter (fun line -> Printf.fprintf oc "%s\n" line) (events t)
