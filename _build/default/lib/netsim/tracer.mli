(** A bounded human-readable event trace (tcpdump for the simulator).

    Captures link and router events into a ring buffer with optional
    filters; dump it when debugging a scenario or teaching a protocol
    run. *)

type t

val attach :
  net:Net.t ->
  ?capacity:int ->
  ?routers:int list ->
  ?flows:int list ->
  unit ->
  t
(** Start recording (default capacity 1000 events; empty filter lists
    mean "everything").  Raises [Invalid_argument] on non-positive
    capacity. *)

val events : t -> string list
(** The retained event lines, oldest first, each like
    "12.0345 r3->r4 deliver #812 0->4 flow=2 500B udp". *)

val count : t -> int
(** Events recorded since attach (including evicted ones). *)

val dump : t -> out_channel -> unit
(** Write the retained lines to a channel. *)
