(** A mutable binary min-heap keyed by a float priority.

    Shared by the Dijkstra implementations (priority = path cost) and the
    discrete-event simulator (priority = event time).  Ties are broken by
    insertion order, which makes every consumer deterministic. *)

type 'a t

val create : unit -> 'a t
(** Empty heap. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** Insert an element. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; [None] when empty.
    Equal priorities come out in insertion order (FIFO). *)

val peek : 'a t -> (float * 'a) option
(** The minimum without removing it. *)

val clear : 'a t -> unit
