lib/setrecon/bloom.ml: Array Bytes Char Crypto_sim Float Int64
