lib/setrecon/bloom.mli:
