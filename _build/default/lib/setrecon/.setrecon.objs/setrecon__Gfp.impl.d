lib/setrecon/gfp.ml: Int64
