lib/setrecon/gfp.mli:
