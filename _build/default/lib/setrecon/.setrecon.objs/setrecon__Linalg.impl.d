lib/setrecon/linalg.ml: Array Gfp
