lib/setrecon/linalg.mli:
