lib/setrecon/poly.ml: Array Gfp List Printf Random String
