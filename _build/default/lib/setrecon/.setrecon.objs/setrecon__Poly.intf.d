lib/setrecon/poly.mli: Random
