lib/setrecon/reconcile.ml: Array Gfp Hashtbl Linalg List Poly Printf Random
