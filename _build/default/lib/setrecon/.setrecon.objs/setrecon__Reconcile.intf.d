lib/setrecon/reconcile.mli: Random
