type t = { data : Bytes.t; bits : int; hashes : int }

let create ?(hashes = 4) ~bits () =
  if bits <= 0 then invalid_arg "Bloom.create: bits must be positive";
  if hashes <= 0 then invalid_arg "Bloom.create: hashes must be positive";
  { data = Bytes.make ((bits + 7) / 8) '\000'; bits; hashes }

let bits t = t.bits
let hashes t = t.hashes

(* Double hashing: index_i = h1 + i*h2 (mod bits). *)
(* Mask to 62 bits so the conversion to a (63-bit) native int stays
   non-negative. *)
let mask62 = 0x3fffffffffffffffL

let index t fp i =
  let h1 = Int64.to_int (Int64.logand (Crypto_sim.Fnv.hash_int64 fp) mask62) in
  let h2 =
    Int64.to_int
      (Int64.logand (Crypto_sim.Fnv.hash_int64 (Int64.logxor fp 0x9e3779b97f4a7c15L)) mask62)
  in
  let step = if t.bits = 1 then 0 else (h2 mod (t.bits - 1)) + 1 in
  ((h1 mod t.bits) + (i * step)) mod t.bits

let set_bit t i = Bytes.unsafe_set t.data (i / 8)
    (Char.chr (Char.code (Bytes.unsafe_get t.data (i / 8)) lor (1 lsl (i mod 8))))

let get_bit t i = Char.code (Bytes.unsafe_get t.data (i / 8)) land (1 lsl (i mod 8)) <> 0

let add t fp =
  for i = 0 to t.hashes - 1 do
    set_bit t (index t fp i)
  done

let mem t fp =
  let rec loop i = i >= t.hashes || (get_bit t (index t fp i) && loop (i + 1)) in
  loop 0

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let popcount t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) t.data;
  !acc

let estimate_from_popcount t count =
  let m = float_of_int t.bits in
  let k = float_of_int t.hashes in
  let x = float_of_int count in
  if x >= m then infinity else -.(m /. k) *. log (1.0 -. (x /. m))

let cardinality_estimate t = estimate_from_popcount t (popcount t)

let union_estimate a b =
  if a.bits <> b.bits || a.hashes <> b.hashes then
    invalid_arg "Bloom.union_estimate: filters have different shapes";
  let count = ref 0 in
  for i = 0 to Bytes.length a.data - 1 do
    let c = Char.code (Bytes.get a.data i) lor Char.code (Bytes.get b.data i) in
    count := !count + popcount_byte (Char.chr c)
  done;
  estimate_from_popcount a !count

let symmetric_difference_estimate ~na ~nb a b =
  let union = union_estimate a b in
  Float.max 0.0 ((2.0 *. union) -. float_of_int na -. float_of_int nb)
