(** Bloom filters with set-difference estimation (§2.4.1).

    The dissertation discusses Bloom filters as the cheap-but-lossy way to
    compare fingerprint sets: constant size, but only an {e estimate} of
    the difference, sensitive to mis-parameterization.  We provide them as
    the baseline against which {!Reconcile} is benchmarked (Appendix A
    experiment). *)

type t

val create : ?hashes:int -> bits:int -> unit -> t
(** Empty filter with [bits] bits and [hashes] hash functions
    (default 4). Raises [Invalid_argument] on non-positive parameters. *)

val add : t -> int64 -> unit
(** Insert a fingerprint. *)

val mem : t -> int64 -> bool
(** Membership test: no false negatives, false positives possible. *)

val bits : t -> int
val hashes : t -> int
val popcount : t -> int
(** Number of set bits. *)

val cardinality_estimate : t -> float
(** Swamidass–Baldi estimate of the number of inserted distinct elements
    from the fill ratio. *)

val union_estimate : t -> t -> float
(** Estimated |A ∪ B| from the OR of two same-shape filters.  Raises
    [Invalid_argument] when shapes differ. *)

val symmetric_difference_estimate : na:int -> nb:int -> t -> t -> float
(** Estimated |A Δ B| = 2|A ∪ B| − |A| − |B| given the true set sizes
    [na], [nb] (counters are exchanged alongside the filters in the
    protocols). Clamped to be non-negative. *)
