let p = 0x7fffffff (* 2^31 - 1 *)

let of_int x =
  let r = x mod p in
  if r < 0 then r + p else r

let of_int64 x =
  Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int p))

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = let d = a - b in if d < 0 then d + p else d
let neg a = if a = 0 then 0 else p - a

(* Operands are < 2^31, so the product fits in a 62-bit OCaml int on
   64-bit platforms. *)
let mul a b = a * b mod p

let rec ext_gcd a b =
  if b = 0 then (a, 1, 0)
  else begin
    let g, x, y = ext_gcd b (a mod b) in
    (g, y, x - (a / b * y))
  end

let inv a =
  if a = 0 then raise Division_by_zero;
  let _, x, _ = ext_gcd a p in
  of_int x

let div a b = mul a (inv b)

let pow a e =
  if e < 0 then invalid_arg "Gfp.pow: negative exponent";
  let rec loop base e acc =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc base else acc in
      loop (mul base base) (e lsr 1) acc
    end
  in
  loop (of_int a) e 1
