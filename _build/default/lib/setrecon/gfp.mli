(** Arithmetic in the prime field GF(p) with p = 2^31 - 1.

    The substrate for the set reconciliation algorithm of Appendix A
    (Minsky–Trachtenberg characteristic-polynomial interpolation).
    Elements are represented as [int] in [0, p). *)

val p : int
(** The field modulus, the Mersenne prime 2^31 - 1. *)

val of_int : int -> int
(** Canonical representative of an arbitrary integer (handles negatives). *)

val of_int64 : int64 -> int
(** Reduce a 64-bit fingerprint into the field. *)

val add : int -> int -> int
val sub : int -> int -> int
val neg : int -> int
val mul : int -> int -> int

val inv : int -> int
(** Multiplicative inverse; raises [Division_by_zero] on 0. *)

val div : int -> int -> int
(** [div a b = mul a (inv b)]. *)

val pow : int -> int -> int
(** [pow a e] with [e >= 0], by square-and-multiply. *)
