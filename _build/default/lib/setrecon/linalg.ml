let solve m rhs =
  let rows = Array.length m in
  if rows = 0 then Some [||]
  else begin
    let cols = Array.length m.(0) in
    let a = Array.map Array.copy m in
    let b = Array.copy rhs in
    let pivot_col_of_row = Array.make rows (-1) in
    let row = ref 0 in
    let col = ref 0 in
    while !row < rows && !col < cols do
      (* Find a nonzero pivot in this column at or below [row]. *)
      let p = ref (-1) in
      (try
         for r = !row to rows - 1 do
           if a.(r).(!col) <> 0 then begin
             p := r;
             raise Exit
           end
         done
       with Exit -> ());
      if !p = -1 then incr col
      else begin
        let pr = !p in
        if pr <> !row then begin
          let tmp = a.(pr) in
          a.(pr) <- a.(!row);
          a.(!row) <- tmp;
          let tb = b.(pr) in
          b.(pr) <- b.(!row);
          b.(!row) <- tb
        end;
        let inv = Gfp.inv a.(!row).(!col) in
        for c = !col to cols - 1 do
          a.(!row).(c) <- Gfp.mul a.(!row).(c) inv
        done;
        b.(!row) <- Gfp.mul b.(!row) inv;
        for r = 0 to rows - 1 do
          if r <> !row && a.(r).(!col) <> 0 then begin
            let f = a.(r).(!col) in
            for c = !col to cols - 1 do
              a.(r).(c) <- Gfp.sub a.(r).(c) (Gfp.mul f a.(!row).(c))
            done;
            b.(r) <- Gfp.sub b.(r) (Gfp.mul f b.(!row))
          end
        done;
        pivot_col_of_row.(!row) <- !col;
        incr row;
        incr col
      end
    done;
    (* Inconsistency: a zero row with nonzero rhs. *)
    let inconsistent = ref false in
    for r = !row to rows - 1 do
      if b.(r) <> 0 then inconsistent := true
    done;
    if !inconsistent then None
    else begin
      let x = Array.make cols 0 in
      for r = 0 to !row - 1 do
        let c = pivot_col_of_row.(r) in
        (* Row is reduced: x_c = b_r - sum of free-variable terms, and free
           variables are 0, so x_c = b_r. *)
        x.(c) <- b.(r)
      done;
      Some x
    end
  end
