(** Dense linear algebra over {!Gfp} for rational-function interpolation. *)

val solve : int array array -> int array -> int array option
(** [solve m rhs] finds some [x] with [m x = rhs] by Gaussian elimination
    with partial search for nonzero pivots; free variables are set to 0.
    Returns [None] if the system is inconsistent.  [m] is an array of
    rows; neither [m] nor [rhs] is mutated. *)
