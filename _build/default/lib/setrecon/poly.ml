type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let is_zero a = Array.length a = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_coeffs cs = normalize (Array.of_list (List.map Gfp.of_int cs))
let degree a = Array.length a - 1
let leading a = if is_zero a then 0 else a.(Array.length a - 1)
let equal a b = a = b

let add a b =
  let n = max (Array.length a) (Array.length b) in
  let c = Array.make n 0 in
  for i = 0 to n - 1 do
    let ai = if i < Array.length a then a.(i) else 0 in
    let bi = if i < Array.length b then b.(i) else 0 in
    c.(i) <- Gfp.add ai bi
  done;
  normalize c

let sub a b =
  let n = max (Array.length a) (Array.length b) in
  let c = Array.make n 0 in
  for i = 0 to n - 1 do
    let ai = if i < Array.length a then a.(i) else 0 in
    let bi = if i < Array.length b then b.(i) else 0 in
    c.(i) <- Gfp.sub ai bi
  done;
  normalize c

let scale k a =
  let k = Gfp.of_int k in
  if k = 0 then zero else normalize (Array.map (fun c -> Gfp.mul k c) a)

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let c = Array.make (Array.length a + Array.length b - 1) 0 in
    Array.iteri
      (fun i ai ->
        if ai <> 0 then
          Array.iteri (fun j bj -> c.(i + j) <- Gfp.add c.(i + j) (Gfp.mul ai bj)) b)
      a;
    normalize c
  end

let divmod a b =
  if is_zero b then raise Division_by_zero;
  let db = degree b in
  let lb_inv = Gfp.inv (leading b) in
  let r = Array.copy a in
  let da = degree a in
  if da < db then (zero, normalize r)
  else begin
    let q = Array.make (da - db + 1) 0 in
    for i = da downto db do
      let coeff = Gfp.mul r.(i) lb_inv in
      if coeff <> 0 then begin
        q.(i - db) <- coeff;
        for j = 0 to db do
          r.(i - db + j) <- Gfp.sub r.(i - db + j) (Gfp.mul coeff b.(j))
        done
      end
    done;
    (normalize q, normalize r)
  end

let monic a = if is_zero a then zero else scale (Gfp.inv (leading a)) a

let rec gcd a b =
  if is_zero b then monic a
  else begin
    let _, r = divmod a b in
    gcd b r
  end

let eval a x =
  let acc = ref 0 in
  for i = Array.length a - 1 downto 0 do
    acc := Gfp.add (Gfp.mul !acc x) a.(i)
  done;
  !acc

let from_roots rs =
  List.fold_left (fun acc r -> mul acc [| Gfp.neg (Gfp.of_int r); 1 |]) one rs

let mod_ a m = snd (divmod a m)

let pow_mod b e ~modulus =
  if e < 0 then invalid_arg "Poly.pow_mod: negative exponent";
  let rec loop base e acc =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mod_ (mul acc base) modulus else acc in
      loop (mod_ (mul base base) modulus) (e lsr 1) acc
    end
  in
  loop (mod_ b modulus) e one

(* x^p mod f, then gcd(x^p - x, f): equals (monic) f iff f is a product of
   distinct linear factors. *)
let splits_into_distinct_linears f =
  let xp = pow_mod [| 0; 1 |] Gfp.p ~modulus:f in
  let g = gcd (sub xp [| 0; 1 |]) f in
  equal g (monic f)

let half = (Gfp.p - 1) / 2

let roots ?rng f =
  let rng = match rng with Some r -> r | None -> Random.State.make [| 0x5e7c |] in
  if is_zero f then None
  else if degree f = 0 then Some []
  else if not (splits_into_distinct_linears f) then None
  else begin
    (* Cantor–Zassenhaus splitting specialized to linear factors. *)
    let rec split f acc =
      match degree f with
      | 0 -> acc
      | 1 ->
          (* f = c1 x + c0, root = -c0/c1 *)
          Gfp.div (Gfp.neg f.(0)) f.(1) :: acc
      | _ ->
          let rec attempt tries =
            if tries > 200 then failwith "Poly.roots: splitting did not converge"
            else begin
              let a = Random.State.full_int rng (Gfp.p - 1) + 1 in
              (* h = (x + a)^((p-1)/2) mod f *)
              let h = pow_mod [| a; 1 |] half ~modulus:f in
              let g = gcd (sub h one) f in
              let dg = degree g in
              if dg > 0 && dg < degree f then (g, fst (divmod f g))
              else attempt (tries + 1)
            end
          in
          let g, rest = attempt 0 in
          split g (split rest acc)
    in
    Some (List.sort compare (split (monic f) []))
  end

let to_string a =
  if is_zero a then "0"
  else begin
    let terms = ref [] in
    Array.iteri
      (fun i c ->
        if c <> 0 then begin
          let s =
            match i with
            | 0 -> string_of_int c
            | 1 -> if c = 1 then "x" else Printf.sprintf "%dx" c
            | _ -> if c = 1 then Printf.sprintf "x^%d" i else Printf.sprintf "%dx^%d" c i
          in
          terms := s :: !terms
        end)
      a;
    String.concat " + " !terms
  end
