(** Dense univariate polynomials over {!Gfp}.

    Representation: [c.(i)] is the coefficient of x^i; the array carries no
    trailing zeros (the zero polynomial is the empty array).  All functions
    treat their arguments as immutable. *)

type t = int array

val zero : t
val one : t
val is_zero : t -> bool

val of_coeffs : int list -> t
(** Coefficients in increasing-degree order; normalizes trailing zeros. *)

val degree : t -> int
(** Degree; -1 for the zero polynomial. *)

val leading : t -> int
(** Leading coefficient; 0 for the zero polynomial. *)

val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r] and [degree r < degree b].
    Raises [Division_by_zero] if [b] is zero. *)

val monic : t -> t
(** Scale so the leading coefficient is 1; zero stays zero. *)

val gcd : t -> t -> t
(** Monic greatest common divisor. *)

val eval : t -> int -> int
(** Horner evaluation at a field point. *)

val from_roots : int list -> t
(** The monic characteristic polynomial prod (x - r). *)

val pow_mod : t -> int -> modulus:t -> t
(** [pow_mod b e ~modulus]: b^e mod modulus by square-and-multiply. *)

val roots : ?rng:Random.State.t -> t -> int list option
(** Find all roots of a polynomial that is expected to be a product of
    distinct linear factors (Cantor–Zassenhaus equal-degree splitting).
    Returns [None] when the polynomial does not split into
    [degree t] distinct roots — the signal that a reconciliation bound was
    wrong.  Deterministic for a given [rng] seed. *)

val to_string : t -> string
(** Debug rendering such as "x^2 + 3x + 1". *)
