let reserved = 1 lsl 20
let universe_size = Gfp.p - reserved

let element_of_fingerprint fp = Gfp.of_int64 fp mod universe_size

let check_universe name elements =
  Array.iter
    (fun e ->
      if e < 0 || e >= universe_size then
        invalid_arg
          (Printf.sprintf "Reconcile.%s: element %d outside universe [0,%d)" name e
             universe_size))
    elements

let char_evals ~elements ~points =
  Array.map
    (fun z -> Array.fold_left (fun acc e -> Gfp.mul acc (Gfp.sub z e)) 1 elements)
    points

let sample_points n = Array.init n (fun i -> Gfp.p - 1 - i)

type result = {
  a_minus_b : int list;
  b_minus_a : int list;
  evals_used : int;
  attempts : int;
}

let check_points = 8

(* Membership tables for the acceptance test. *)
let table_of elements =
  let h = Hashtbl.create (Array.length elements * 2) in
  Array.iter (fun e -> Hashtbl.replace h e ()) elements;
  h

let verify_candidate ~ha ~hb ~d roots_p roots_q =
  let sorted_distinct xs =
    let s = List.sort_uniq compare xs in
    List.length s = List.length xs
  in
  sorted_distinct roots_p && sorted_distinct roots_q
  && List.for_all (fun r -> Hashtbl.mem ha r && not (Hashtbl.mem hb r)) roots_p
  && List.for_all (fun r -> Hashtbl.mem hb r && not (Hashtbl.mem ha r)) roots_q
  && List.length roots_p - List.length roots_q = d

let attempt_with_bound rng ~bound ~a ~b ~ha ~hb =
  let d = Array.length a - Array.length b in
  let bound = max bound (abs d) in
  (* The numerator/denominator degrees must differ by exactly d and sum to
     the bound, so fix parity. *)
  let total = if (bound - d) mod 2 <> 0 then bound + 1 else bound in
  let m1 = (total + d) / 2 in
  let m2 = (total - d) / 2 in
  let npoints = total + check_points in
  let points = sample_points npoints in
  let fa = char_evals ~elements:a ~points in
  let fb = char_evals ~elements:b ~points in
  let ratio = Array.init npoints (fun i -> Gfp.div fa.(i) fb.(i)) in
  (* Unknowns: p_0..p_{m1-1}, q_0..q_{m2-1}; equation per point:
     sum p_j z^j - f sum q_j z^j = f z^m2 - z^m1. *)
  let build_row i =
    let z = points.(i) in
    let f = ratio.(i) in
    let row = Array.make (m1 + m2) 0 in
    let zj = ref 1 in
    for j = 0 to m1 - 1 do
      row.(j) <- !zj;
      zj := Gfp.mul !zj z
    done;
    let zj = ref 1 in
    for j = 0 to m2 - 1 do
      row.(m1 + j) <- Gfp.neg (Gfp.mul f !zj);
      zj := Gfp.mul !zj z
    done;
    let rhs = Gfp.sub (Gfp.mul f (Gfp.pow z m2)) (Gfp.pow z m1) in
    (row, rhs)
  in
  let rows = Array.init total build_row in
  let matrix = Array.map fst rows in
  let rhs = Array.map snd rows in
  match Linalg.solve matrix rhs with
  | None -> None
  | Some x ->
      let pcoeffs = Array.append (Array.sub x 0 m1) [| 1 |] in
      let qcoeffs = Array.append (Array.sub x m1 m2) [| 1 |] in
      let p = Poly.of_coeffs (Array.to_list pcoeffs) in
      let q = Poly.of_coeffs (Array.to_list qcoeffs) in
      let g = Poly.gcd p q in
      let p = fst (Poly.divmod p g) in
      let q = fst (Poly.divmod q g) in
      (* Check-point verification: P(z) * chi_B(z) = Q(z) * chi_A(z). *)
      let ok = ref true in
      for i = total to npoints - 1 do
        let z = points.(i) in
        let lhs = Gfp.mul (Poly.eval p z) fb.(i) in
        let rhs = Gfp.mul (Poly.eval q z) fa.(i) in
        if lhs <> rhs then ok := false
      done;
      if not !ok then None
      else begin
        match (Poly.roots ~rng p, Poly.roots ~rng q) with
        | Some rp, Some rq when verify_candidate ~ha ~hb ~d rp rq ->
            Some
              { a_minus_b = List.sort compare rp;
                b_minus_a = List.sort compare rq;
                evals_used = npoints;
                attempts = 1 }
        | _ -> None
      end

let default_rng () = Random.State.make [| 0x7ec0; 0x11e |]

let diff_with_bound ?rng ~bound ~a ~b () =
  check_universe "diff_with_bound" a;
  check_universe "diff_with_bound" b;
  let rng = match rng with Some r -> r | None -> default_rng () in
  attempt_with_bound rng ~bound ~a ~b ~ha:(table_of a) ~hb:(table_of b)

let diff ?rng ?(max_bound = 1024) ~a ~b () =
  check_universe "diff" a;
  check_universe "diff" b;
  let rng = match rng with Some r -> r | None -> default_rng () in
  let ha = table_of a and hb = table_of b in
  let rec loop bound attempts =
    if bound > max_bound then None
    else begin
      match attempt_with_bound rng ~bound ~a ~b ~ha ~hb with
      | Some r -> Some { r with attempts }
      | None -> loop (bound * 2) (attempts + 1)
    end
  in
  loop 8 1
