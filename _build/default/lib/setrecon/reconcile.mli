(** Set reconciliation via characteristic-polynomial interpolation
    (dissertation Appendix A; Minsky–Trachtenberg).

    Two routers each hold a set of packet fingerprints and want the
    symmetric difference while communicating O(|difference|) field
    elements rather than O(|set|).  Each party evaluates the
    characteristic polynomial of its set at agreed sample points; the
    ratio of the evaluations is interpolated as a rational function whose
    numerator and denominator are the characteristic polynomials of the
    two one-sided differences; factoring them yields the missing
    fingerprints.

    Element universe: elements must lie in [0, {!universe_size});
    evaluation points are drawn from the reserved range above it, so the
    characteristic polynomials never vanish at a sample point. *)

val universe_size : int
(** Largest allowed element + 1 (the field size minus a reserved band of
    evaluation points). *)

val element_of_fingerprint : int64 -> int
(** Map a 64-bit fingerprint into the element universe (reduction; a
    vanishingly unlikely collision makes two fingerprints reconcile as one
    element). *)

val char_evals : elements:int array -> points:int array -> int array
(** Evaluations of the characteristic polynomial prod (z - e) at each
    sample point — the only data a party must transmit. *)

val sample_points : int -> int array
(** The first [n] agreed evaluation points (descending from the top of
    the field). *)

type result = {
  a_minus_b : int list;  (** elements held by A and not B, sorted *)
  b_minus_a : int list;  (** elements held by B and not A, sorted *)
  evals_used : int;      (** evaluations transmitted per direction *)
  attempts : int;        (** doubling rounds until the bound sufficed *)
}

val diff_with_bound :
  ?rng:Random.State.t -> bound:int -> a:int array -> b:int array -> unit -> result option
(** Reconcile assuming the symmetric difference has at most [bound]
    elements; [None] if the bound is too small (detected by check-point
    verification and root-splitting failure). Raises [Invalid_argument]
    if some element falls outside the universe. *)

val diff :
  ?rng:Random.State.t -> ?max_bound:int -> a:int array -> b:int array -> unit -> result option
(** Reconcile with geometric bound doubling starting at 8 (default
    [max_bound] 1024). [None] if the difference exceeds [max_bound]. *)
