lib/stats/descriptive.mli:
