lib/stats/erf.ml: Array Float
