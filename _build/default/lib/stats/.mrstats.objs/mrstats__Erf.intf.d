lib/stats/erf.mli:
