lib/stats/histogram.ml: Array Buffer Erf Printf String
