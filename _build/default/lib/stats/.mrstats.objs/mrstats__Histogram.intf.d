lib/stats/histogram.mli:
