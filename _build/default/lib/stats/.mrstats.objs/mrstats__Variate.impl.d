lib/stats/variate.ml: Array Float Random
