lib/stats/variate.mli: Random
