lib/stats/welford.ml:
