lib/stats/welford.mli:
