lib/stats/ztest.ml: Array Erf
