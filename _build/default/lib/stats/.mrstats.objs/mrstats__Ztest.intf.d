lib/stats/ztest.mli:
