let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Descriptive.%s: empty sample" name)

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let central_moment xs k =
  let m = mean xs in
  let n = float_of_int (Array.length xs) in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** float_of_int k)) 0.0 xs /. n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  check_nonempty "median" xs;
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Descriptive.percentile: p outside [0,100]";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let min_max xs =
  check_nonempty "min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let skewness xs =
  if Array.length xs < 3 then 0.0
  else begin
    let m2 = central_moment xs 2 in
    if m2 <= 0.0 then 0.0 else central_moment xs 3 /. (m2 ** 1.5)
  end

let kurtosis_excess xs =
  if Array.length xs < 4 then 0.0
  else begin
    let m2 = central_moment xs 2 in
    if m2 <= 0.0 then 0.0 else (central_moment xs 4 /. (m2 *. m2)) -. 3.0
  end

let of_int_list ints = Array.of_list (List.map float_of_int ints)

let summary_row label xs =
  if Array.length xs = 0 then Printf.sprintf "%-24s (empty)" label
  else begin
    let lo, hi = min_max xs in
    Printf.sprintf "%-24s n=%-6d mean=%-10.3f std=%-10.3f min=%-10.3f med=%-10.3f max=%-10.3f"
      label (Array.length xs) (mean xs) (stddev xs) lo (median xs) hi
  end
