(** Descriptive statistics over float samples.

    Used throughout the evaluation harness: Figures 5.2/5.4 report max,
    average and median of |Pr|; Figure 6.3 reports the moments of the
    queue-prediction error. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (divides by n-1); 0. for fewer than 2 points. *)

val stddev : float array -> float
(** [sqrt (variance xs)]. *)

val median : float array -> float
(** Median (average of the two middle elements for even n). Does not
    mutate its argument. Raises [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], linear interpolation between
    order statistics. Does not mutate its argument. *)

val min_max : float array -> float * float
(** Smallest and largest element. Raises [Invalid_argument] on empty. *)

val skewness : float array -> float
(** Sample skewness (third standardized moment); 0. when degenerate. *)

val kurtosis_excess : float array -> float
(** Excess kurtosis (fourth standardized moment minus 3); 0. when
    degenerate. A normal sample has excess kurtosis near 0. *)

val of_int_list : int list -> float array
(** Convenience conversion for counting statistics. *)

val summary_row : string -> float array -> string
(** [summary_row label xs] formats "label n mean std min median max" for
    table output. *)
