(* Numerical Recipes 6.2: Chebyshev fit to erfc with fractional error
   everywhere below 1.2e-7.  Good enough for confidence values that are
   compared against thresholds like 0.95 / 0.99. *)
let erfc x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. 0.5 *. z) in
  let ans =
    t
    *. exp
         (-.z *. z -. 1.26551223
         +. t
            *. (1.00002368
               +. t
                  *. (0.37409196
                     +. t
                        *. (0.09678418
                           +. t
                              *. (-0.18628806
                                 +. t
                                    *. (0.27886807
                                       +. t
                                          *. (-1.13520398
                                             +. t
                                                *. (1.48851587
                                                   +. t
                                                      *. (-0.82215223
                                                         +. t *. 0.17087277)))))))))
  in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc x

let sqrt2 = sqrt 2.0
let sqrt2pi = sqrt (2.0 *. Float.pi)

let normal_cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  0.5 *. erfc (-.(x -. mu) /. (sigma *. sqrt2))

let normal_pdf ?(mu = 0.0) ?(sigma = 1.0) x =
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt2pi)

(* Acklam's rational approximation for the inverse normal CDF, with one
   Halley refinement step using the forward CDF above. *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Erf.normal_quantile: p must lie strictly between 0 and 1";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let p_high = 1.0 -. p_low in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
      +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= p_high then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
      +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
            *. r
         +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.(((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
           *. q
        +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
  in
  (* One step of Halley's method sharpens the tails. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt2pi *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))
