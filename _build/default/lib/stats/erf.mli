(** Error function and the standard normal distribution.

    Protocol χ's confidence tests (dissertation §6.2.1, Fig 6.2) are stated
    in terms of [erf] and the standard normal CDF; OCaml's stdlib has
    neither, so we provide double-precision approximations here. *)

val erf : float -> float
(** [erf x] is the Gauss error function, accurate to ~1.2e-7 (Numerical
    Recipes Chebyshev approximation of erfc). *)

val erfc : float -> float
(** [erfc x = 1 - erf x], computed without cancellation for large [x]. *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** [normal_cdf ~mu ~sigma x] is P(X <= x) for X ~ N(mu, sigma^2).
    Defaults: [mu = 0.], [sigma = 1.]. *)

val normal_pdf : ?mu:float -> ?sigma:float -> float -> float
(** Density of N(mu, sigma^2) at a point. *)

val normal_quantile : float -> float
(** [normal_quantile p] is the inverse standard normal CDF (Acklam's
    algorithm, relative error < 1.15e-9). Raises [Invalid_argument] unless
    [0 < p < 1]. *)
