type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable under : int;
  mutable over : int;
  width_per_bin : float;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; bins = Array.make bins 0; under = 0; over = 0;
    width_per_bin = (hi -. lo) /. float_of_int bins }

let add t x =
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width_per_bin) in
    let i = min i (Array.length t.bins - 1) in
    t.bins.(i) <- t.bins.(i) + 1
  end

let count t = t.under + t.over + Array.fold_left ( + ) 0 t.bins
let bin_counts t = Array.copy t.bins
let underflow t = t.under
let overflow t = t.over

let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. t.width_per_bin)

let bar n max_count width =
  if max_count = 0 then ""
  else String.make (n * width / max_count) '#'

let render ?(width = 50) t =
  let max_count = Array.fold_left max 1 t.bins in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i n ->
      Buffer.add_string buf
        (Printf.sprintf "%10.1f |%-*s %d\n" (bin_center t i) width
           (bar n max_count width) n))
    t.bins;
  if t.under > 0 then Buffer.add_string buf (Printf.sprintf "  underflow: %d\n" t.under);
  if t.over > 0 then Buffer.add_string buf (Printf.sprintf "  overflow:  %d\n" t.over);
  Buffer.contents buf

let render_with_normal ?(width = 50) t ~mu ~sigma =
  let total = float_of_int (count t) in
  let max_count = Array.fold_left max 1 t.bins in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i n ->
      let left = t.lo +. (float_of_int i *. t.width_per_bin) in
      let right = left +. t.width_per_bin in
      let expected =
        total *. (Erf.normal_cdf ~mu ~sigma right -. Erf.normal_cdf ~mu ~sigma left)
      in
      Buffer.add_string buf
        (Printf.sprintf "%10.1f |%-*s %5d  (normal fit %7.1f)\n" (bin_center t i)
           width (bar n max_count width) n expected))
    t.bins;
  Buffer.contents buf
