(** Fixed-bin histograms with ASCII rendering.

    Figure 6.3 of the dissertation shows that the queue-prediction error is
    normally distributed; the benchmark harness reproduces it as a textual
    histogram with a fitted normal overlay. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Histogram covering [lo, hi) with [bins] equal-width bins plus
    underflow/overflow counters. Raises [Invalid_argument] if
    [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
(** Total observations including under/overflow. *)

val bin_counts : t -> int array
(** In-range bin counts, left to right. *)

val underflow : t -> int
val overflow : t -> int

val bin_center : t -> int -> float
(** Center abscissa of bin [i]. *)

val render : ?width:int -> t -> string
(** Multi-line ASCII rendering: one row per bin with a proportional bar.
    [width] is the bar length of the fullest bin (default 50). *)

val render_with_normal : ?width:int -> t -> mu:float -> sigma:float -> string
(** Like [render] but each row also shows the count a N(mu, sigma^2) fit
    would predict for that bin, for eyeballing normality (Fig 6.3). *)
