let uniform st ~lo ~hi =
  if hi <= lo then invalid_arg "Variate.uniform: hi must exceed lo";
  lo +. Random.State.float st (hi -. lo)

let exponential st ~rate =
  if rate <= 0.0 then invalid_arg "Variate.exponential: rate must be positive";
  let u = 1.0 -. Random.State.float st 1.0 in
  -.log u /. rate

let pareto st ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Variate.pareto: parameters must be positive";
  let u = 1.0 -. Random.State.float st 1.0 in
  scale /. (u ** (1.0 /. shape))

let normal st ~mu ~sigma =
  let u1 = 1.0 -. Random.State.float st 1.0 in
  let u2 = Random.State.float st 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let poisson st ~lambda =
  if lambda < 0.0 then invalid_arg "Variate.poisson: lambda must be non-negative";
  if lambda = 0.0 then 0
  else if lambda > 60.0 then begin
    let x = normal st ~mu:lambda ~sigma:(sqrt lambda) in
    max 0 (int_of_float (Float.round x))
  end
  else begin
    let limit = exp (-.lambda) in
    let rec loop k prod =
      let prod = prod *. Random.State.float st 1.0 in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.0
  end

let bernoulli st ~p =
  let p = Float.max 0.0 (Float.min 1.0 p) in
  Random.State.float st 1.0 < p

let shuffle st a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick st a =
  if Array.length a = 0 then invalid_arg "Variate.pick: empty array";
  a.(Random.State.int st (Array.length a))
