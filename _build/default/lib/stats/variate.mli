(** Random variate generation over an explicit [Random.State.t].

    The simulator is deterministic given a seed; every source of randomness
    (traffic inter-arrivals, processing jitter, RED coin flips, synthetic
    topologies) draws from an explicit state threaded through the code. *)

val uniform : Random.State.t -> lo:float -> hi:float -> float
(** Uniform draw on [lo, hi). Requires [hi > lo]. *)

val exponential : Random.State.t -> rate:float -> float
(** Exponential with the given [rate] (mean 1/rate). Requires rate > 0. *)

val pareto : Random.State.t -> shape:float -> scale:float -> float
(** Pareto draw, the heavy-tailed flow-size distribution used for
    realistic traffic mixes. Requires shape > 0 and scale > 0. *)

val normal : Random.State.t -> mu:float -> sigma:float -> float
(** Gaussian draw via Box–Muller. *)

val poisson : Random.State.t -> lambda:float -> int
(** Poisson draw (Knuth's method for small lambda, normal approximation
    above 60). Requires lambda >= 0. *)

val bernoulli : Random.State.t -> p:float -> bool
(** True with probability [p] (clamped to [0,1]). *)

val shuffle : Random.State.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : Random.State.t -> 'a array -> 'a
(** Uniformly random element. Raises [Invalid_argument] on empty. *)
