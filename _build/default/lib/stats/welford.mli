(** Online mean/variance accumulator (Welford's algorithm).

    Protocol χ estimates the mean and standard deviation of the
    queue-prediction error during a learning period (§6.2.1); the router
    cannot buffer all samples, so the estimate is maintained online. *)

type t

val create : unit -> t
(** Fresh accumulator with no observations. *)

val add : t -> float -> unit
(** Feed one observation. *)

val count : t -> int
(** Number of observations so far. *)

val mean : t -> float
(** Running mean; 0. before any observation. *)

val variance : t -> float
(** Unbiased running variance; 0. with fewer than two observations. *)

val stddev : t -> float
(** [sqrt (variance t)]. *)

val merge : t -> t -> t
(** Combine two accumulators as if their streams were concatenated
    (parallel-axis update); neither argument is mutated. *)

val reset : t -> unit
(** Drop all state, returning to the freshly-created condition. *)
