let one_sided_upper ~sample_mean ~mu ~sigma ~n =
  if sigma <= 0.0 then invalid_arg "Ztest.one_sided_upper: sigma must be positive";
  if n < 1 then invalid_arg "Ztest.one_sided_upper: n must be at least 1";
  let z = (sample_mean -. mu) /. (sigma /. sqrt (float_of_int n)) in
  Erf.normal_cdf z

(* §6.2.1 "Combined packet losses test": hypothesis mu_error >
   qlimit - mean(qpred) - mean(ps); its confidence is the lower-tail
   probability of the corresponding standardized score. *)
let combined_loss_confidence ~qlimit ~mean_qpred ~mean_ps ~mu ~sigma ~n =
  if sigma <= 0.0 then invalid_arg "Ztest.combined_loss_confidence: sigma must be positive";
  if n < 1 then invalid_arg "Ztest.combined_loss_confidence: n must be at least 1";
  let z1 = (qlimit -. mean_qpred -. mean_ps -. mu) /. (sigma /. sqrt (float_of_int n)) in
  (* Large headroom (z1 >> 0) means congestion alone cannot explain the
     losses, so the malicious hypothesis is confident. *)
  Erf.normal_cdf z1

let poisson_binomial_upper_tail ~probs ~observed =
  if observed <= 0 then 1.0
  else begin
    let mu = Array.fold_left ( +. ) 0.0 probs in
    let var = Array.fold_left (fun acc p -> acc +. (p *. (1.0 -. p))) 0.0 probs in
    if var <= 1e-12 then begin
      (* All probabilities are 0 or 1: the count is deterministic. *)
      if float_of_int observed <= mu +. 1e-9 then 1.0 else 0.0
    end
    else begin
      let z = (float_of_int observed -. 0.5 -. mu) /. sqrt var in
      1.0 -. Erf.normal_cdf z
    end
  end
