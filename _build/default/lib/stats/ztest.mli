(** Significance tests used by Protocol χ (§6.2.1).

    The combined packet-losses test of Protocol χ is a one-sided Z-test on
    the mean of the predicted queue lengths at the drop instants; the RED
    variant (§6.5.2) tests the observed drop count of a Poisson-binomial
    set of packets against its expectation. *)

val one_sided_upper : sample_mean:float -> mu:float -> sigma:float -> n:int -> float
(** [one_sided_upper ~sample_mean ~mu ~sigma ~n] returns
    P(Z < z1) where z1 = (sample_mean - mu) / (sigma / sqrt n): the
    confidence that the sample mean genuinely exceeds [mu].  [sigma] must
    be positive and [n >= 1]. *)

val combined_loss_confidence :
  qlimit:float -> mean_qpred:float -> mean_ps:float -> mu:float -> sigma:float -> n:int -> float
(** The dissertation's combined packet-losses test (Fig. in §6.2.1):
    confidence for the hypothesis "the n packets were lost maliciously",
    i.e. that the true error mean exceeds
    [qlimit - mean_qpred - mean_ps].  Equals
    P(Z < (qlimit - mean_qpred - mean_ps - mu) / (sigma / sqrt n)). *)

val poisson_binomial_upper_tail : probs:float array -> observed:int -> float
(** [poisson_binomial_upper_tail ~probs ~observed] is the probability that
    independent Bernoulli trials with success probabilities [probs] yield
    at least [observed] successes, via the normal approximation with
    continuity correction.  Used for RED validation: if the chance of RED
    itself producing [observed] drops is tiny, the drops were malicious.
    Degenerate cases ([observed <= 0], all-zero variance) are handled
    exactly. *)
