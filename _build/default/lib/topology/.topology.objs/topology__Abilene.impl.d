lib/topology/abilene.ml: Array Graph List
