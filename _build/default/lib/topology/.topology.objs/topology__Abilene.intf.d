lib/topology/abilene.mli: Graph
