lib/topology/dijkstra.ml: Array Graph List Prioq
