lib/topology/disjoint.ml: Array Graph Hashtbl List Queue
