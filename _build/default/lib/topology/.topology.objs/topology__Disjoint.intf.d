lib/topology/disjoint.mli: Graph
