lib/topology/ecmp.ml: Array Dijkstra Graph Int64 List
