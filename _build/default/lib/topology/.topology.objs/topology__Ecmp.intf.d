lib/topology/ecmp.mli: Graph
