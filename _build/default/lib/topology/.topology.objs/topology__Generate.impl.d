lib/topology/generate.ml: Array Float Fun Graph Mrstats Random
