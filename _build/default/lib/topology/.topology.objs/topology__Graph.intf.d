lib/topology/graph.mli:
