lib/topology/policy.ml: Array Graph Hashtbl List Option Printf Prioq
