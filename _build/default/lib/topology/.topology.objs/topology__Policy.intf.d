lib/topology/policy.mli: Graph
