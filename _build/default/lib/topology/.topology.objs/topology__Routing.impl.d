lib/topology/routing.ml: Array Dijkstra Graph List
