lib/topology/segments.ml: Array Fun Graph Hashtbl List Mrstats Routing
