lib/topology/segments.mli: Graph Routing
