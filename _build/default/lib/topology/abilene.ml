type pop =
  | Seattle
  | Sunnyvale
  | Los_angeles
  | Denver
  | Kansas_city
  | Houston
  | Indianapolis
  | Atlanta
  | Chicago
  | Washington_dc
  | New_york

let pops =
  [| Seattle; Sunnyvale; Los_angeles; Denver; Kansas_city; Houston; Indianapolis;
     Atlanta; Chicago; Washington_dc; New_york |]

let id = function
  | Seattle -> 0
  | Sunnyvale -> 1
  | Los_angeles -> 2
  | Denver -> 3
  | Kansas_city -> 4
  | Houston -> 5
  | Indianapolis -> 6
  | Atlanta -> 7
  | Chicago -> 8
  | Washington_dc -> 9
  | New_york -> 10

let name n =
  match pops.(n) with
  | Seattle -> "Sea"
  | Sunnyvale -> "Sun"
  | Los_angeles -> "Los"
  | Denver -> "Den"
  | Kansas_city -> "Kan"
  | Houston -> "Hou"
  | Indianapolis -> "Ind"
  | Atlanta -> "Atl"
  | Chicago -> "Chi"
  | Washington_dc -> "Was"
  | New_york -> "New"

(* (a, b, one-way delay in ms).  Routing cost = delay, the usual
   latency-proportional OSPF metric; it makes the 25 ms Kansas City path
   the default and the 28 ms southern path the detour. *)
let duplex_links =
  [ (Seattle, Sunnyvale, 2.0);
    (Seattle, Denver, 5.0);
    (Sunnyvale, Denver, 4.0);
    (Sunnyvale, Los_angeles, 3.0);
    (Los_angeles, Houston, 8.0);
    (Denver, Kansas_city, 5.0);
    (Kansas_city, Houston, 5.0);
    (Kansas_city, Indianapolis, 5.0);
    (Houston, Atlanta, 7.0);
    (Indianapolis, Atlanta, 6.0);
    (Indianapolis, Chicago, 3.0);
    (Atlanta, Washington_dc, 5.0);
    (Chicago, New_york, 8.0);
    (New_york, Washington_dc, 5.0) ]

let graph ?(bw = 1.25e6) () =
  let g = Graph.create ~n:(Array.length pops) in
  List.iter
    (fun (a, b, ms) ->
      Graph.add_duplex g ~cost:(int_of_float ms) ~bw ~delay:(ms /. 1000.0) (id a) (id b))
    duplex_links;
  g

let primary_ny_sun =
  [ id New_york; id Chicago; id Indianapolis; id Kansas_city; id Denver; id Sunnyvale ]

let detour_ny_sun =
  [ id New_york; id Washington_dc; id Atlanta; id Houston; id Los_angeles; id Sunnyvale ]
