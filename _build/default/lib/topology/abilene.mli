(** The Abilene backbone (Fig 5.6), the topology of the Fatih experiment.

    Eleven PoPs, fourteen duplex links.  Link propagation delays are
    calibrated so that the default New York <-> Sunnyvale forwarding path
    runs through Denver / Kansas City / Indianapolis / Chicago with a
    one-way latency of 25 ms, and the post-attack detour through
    Los Angeles / Houston / Atlanta / Washington DC has 28 ms — matching
    the 50 ms -> 56 ms RTT shift of Figure 5.7. *)

type pop =
  | Seattle
  | Sunnyvale
  | Los_angeles
  | Denver
  | Kansas_city
  | Houston
  | Indianapolis
  | Atlanta
  | Chicago
  | Washington_dc
  | New_york

val pops : pop array
(** All PoPs; the array index is the node id. *)

val id : pop -> Graph.node
(** Node id of a PoP. *)

val name : Graph.node -> string
(** Human-readable PoP name ("Kan", "Sun", ... as in Fig 5.7). *)

val graph : ?bw:float -> unit -> Graph.t
(** Fresh Abilene topology.  [bw] sets every link's bandwidth
    (default 1.25e6 B/s, i.e. 10 Mb/s — scaled down from the real
    OC-192 backbone to keep simulations cheap; the protocols' behaviour
    depends on relative utilization, not absolute rate). *)

val primary_ny_sun : Graph.node list
(** The expected default New York -> Sunnyvale path. *)

val detour_ny_sun : Graph.node list
(** The expected path after Kansas City's segments are excised. *)
