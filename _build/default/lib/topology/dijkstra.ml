let unreachable = max_int

let transpose g =
  let rev = Graph.create ~n:(Graph.size g) in
  List.iter
    (fun (l : Graph.link) ->
      Graph.add_link rev ~cost:l.cost ~bw:l.bw ~delay:l.delay l.dst l.src)
    (Graph.links g);
  rev

let distances g ~src =
  let n = Graph.size g in
  if src < 0 || src >= n then invalid_arg "Dijkstra.distances: bad source";
  let dist = Array.make n unreachable in
  let settled = Array.make n false in
  let heap = Prioq.create () in
  dist.(src) <- 0;
  Prioq.push heap ~priority:0.0 src;
  let rec drain () =
    match Prioq.pop heap with
    | None -> ()
    | Some (_, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          List.iter
            (fun v ->
              let l = Graph.link_exn g u v in
              let cand = dist.(u) + l.Graph.cost in
              if cand < dist.(v) then begin
                dist.(v) <- cand;
                Prioq.push heap ~priority:(float_of_int cand) v
              end)
            (Graph.out_neighbors g u)
        end;
        drain ()
  in
  drain ();
  dist

let distances_to g ~dst = distances (transpose g) ~src:dst
