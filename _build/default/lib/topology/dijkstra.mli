(** Deterministic shortest paths.

    Forwarding in the protocols relies on every router predicting the path
    a packet will take (§4.1: routers "use a deterministic hash algorithm"
    so paths are predictable).  We obtain the same property with a
    deterministic tie-break: among equal-cost candidates the lowest node
    id wins, so every router computing over the same topology derives the
    same next hops. *)

val unreachable : int
(** Distance value for unreachable nodes ([max_int]). *)

val distances : Graph.t -> src:Graph.node -> int array
(** Least cost from [src] to every node. *)

val distances_to : Graph.t -> dst:Graph.node -> int array
(** Least cost from every node to [dst] (Dijkstra on the transposed
    graph); this is the orientation hop-by-hop forwarding needs. *)

val transpose : Graph.t -> Graph.t
(** The graph with every link reversed (attributes preserved). *)
