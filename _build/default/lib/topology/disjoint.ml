(* Unit-capacity max-flow on the node-split graph.  Node v becomes
   v_in = 2v and v_out = 2v + 1; the internal edge v_in -> v_out has
   capacity 1 (infinite for the terminals), and every link u -> v becomes
   u_out -> v_in with capacity 1. *)

let max_disjoint_paths g ~src ~dst =
  if src = dst then invalid_arg "Disjoint.max_disjoint_paths: src = dst";
  let n = Graph.size g in
  let vin v = 2 * v and vout v = (2 * v) + 1 in
  let nn = 2 * n in
  let cap = Hashtbl.create (4 * Graph.link_count g) in
  let adj = Array.make nn [] in
  let add_edge a b c =
    if not (Hashtbl.mem cap (a, b)) then begin
      Hashtbl.replace cap (a, b) (ref c);
      Hashtbl.replace cap (b, a) (ref 0);
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b)
    end
    else begin
      let r = Hashtbl.find cap (a, b) in
      r := !r + c
    end
  in
  let big = n + 1 in
  for v = 0 to n - 1 do
    let c = if v = src || v = dst then big else 1 in
    add_edge (vin v) (vout v) c
  done;
  List.iter (fun (l : Graph.link) -> add_edge (vout l.Graph.src) (vin l.Graph.dst) 1)
    (Graph.links g);
  let s = vout src and t = vin dst in
  (* Edmonds-Karp: repeatedly push one unit along a BFS shortest
     augmenting path. *)
  let rec augment () =
    let parent = Array.make nn (-1) in
    parent.(s) <- s;
    let q = Queue.create () in
    Queue.push s q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if parent.(v) = -1 && !(Hashtbl.find cap (u, v)) > 0 then begin
            parent.(v) <- u;
            if v = t then found := true else Queue.push v q
          end)
        adj.(u)
    done;
    if !found then begin
      let rec push v =
        if v <> s then begin
          let u = parent.(v) in
          decr (Hashtbl.find cap (u, v));
          incr (Hashtbl.find cap (v, u));
          push u
        end
      in
      push t;
      augment ()
    end
  in
  augment ();
  (* Flow decomposition: walk saturated link edges from src, consuming
     them so each unit of flow yields one router path. *)
  let used (a, b) =
    match Hashtbl.find_opt cap (b, a) with Some r -> !r > 0 | None -> false
  in
  let consume (a, b) = decr (Hashtbl.find cap (b, a)) in
  let next_of v =
    (* Follow flow out of v_out into some w_in. *)
    List.find_opt (fun w -> w mod 2 = 0 && used (vout v, w)) adj.(vout v)
  in
  let rec walk v acc =
    if v = dst then Some (List.rev (v :: acc))
    else begin
      match next_of v with
      | None -> None
      | Some win ->
          let w = win / 2 in
          consume (vout v, win);
          walk w (v :: acc)
    end
  in
  let rec collect acc =
    match walk src [] with Some p -> collect (p :: acc) | None -> List.rev acc
  in
  collect []

let connectivity g ~src ~dst = List.length (max_disjoint_paths g ~src ~dst)
