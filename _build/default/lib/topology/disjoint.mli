(** Vertex-disjoint paths (Perlman's Byzantine-robust routing, §3.7).

    Perlman's data-routing protocol tolerates TotalFault(f) by sending
    each packet over f+1 vertex-disjoint paths.  We compute maximal sets
    of internally-vertex-disjoint paths by unit-capacity max-flow over
    the node-split graph (Menger's theorem). *)

val max_disjoint_paths :
  Graph.t -> src:Graph.node -> dst:Graph.node -> Graph.node list list
(** A maximum-cardinality set of paths from [src] to [dst] that share no
    intermediate router.  Empty when [dst] is unreachable.  Raises
    [Invalid_argument] when [src = dst]. *)

val connectivity : Graph.t -> src:Graph.node -> dst:Graph.node -> int
(** The number of such paths (local vertex connectivity). *)
