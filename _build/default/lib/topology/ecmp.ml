type t = {
  graph : Graph.t;
  dist_to : int array array; (* dist_to.(d).(v) = least cost v -> d *)
  hash : router:int -> dst:int -> flow:int -> int;
}

(* A 64-bit avalanche mixer (splitmix64 finalizer): deterministic,
   seedless, identical on every router. *)
let default_hash ~router ~dst ~flow =
  let z = Int64.of_int ((router * 0x9e3779b9) lxor (dst * 0x85ebca6b) lxor flow) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3fffffffL)

let compute ?(hash = default_hash) graph =
  let n = Graph.size graph in
  let rev = Dijkstra.transpose graph in
  { graph; dist_to = Array.init n (fun d -> Dijkstra.distances rev ~src:d); hash }

let candidates t v ~dst =
  if v = dst then []
  else begin
    let dist = t.dist_to.(dst) in
    if dist.(v) = Dijkstra.unreachable then []
    else
      List.filter
        (fun w ->
          dist.(w) <> Dijkstra.unreachable
          && (Graph.link_exn t.graph v w).Graph.cost + dist.(w) = dist.(v))
        (Graph.out_neighbors t.graph v)
  end

let next_hop t v ~dst ~flow =
  match candidates t v ~dst with
  | [] -> None
  | cands ->
      let i = t.hash ~router:v ~dst ~flow mod List.length cands in
      Some (List.nth cands i)

let path t ~src ~dst ~flow =
  if src = dst then Some [ src ]
  else begin
    let rec follow v acc =
      if v = dst then Some (List.rev (v :: acc))
      else begin
        match next_hop t v ~dst ~flow with
        | None -> None
        | Some w -> follow w (v :: acc)
      end
    in
    follow src []
  end

let max_fanout t =
  let n = Graph.size t.graph in
  let best = ref 1 in
  for v = 0 to n - 1 do
    for d = 0 to n - 1 do
      if v <> d then best := max !best (List.length (candidates t v ~dst:d))
    done
  done;
  !best
