(** Equal-cost multipath forwarding (§7.4.1).

    Link-state networks balance load over equal-cost paths.  The
    protocols survive this because real routers pick among equal-cost
    next hops with a {e deterministic} hash of the flow identity (Cisco
    CEF, Juniper IP ASIC), so any router that knows the topology and the
    hash function can still predict a packet's path.  This module
    implements that scheme: among the neighbours on shortest paths
    toward the destination, the choice is keyed on
    (router, destination, flow). *)

type t

val compute : ?hash:(router:int -> dst:int -> flow:int -> int) -> Graph.t -> t
(** Build ECMP state.  The default [hash] is a deterministic integer
    mixer; supply your own to model a specific router vendor's scheme.
    Every router in the network must use the same function — that is
    what makes paths predictable (§4.1). *)

val candidates : t -> Graph.node -> dst:Graph.node -> Graph.node list
(** The equal-cost next hops (ascending), empty when unreachable or
    already at the destination. *)

val next_hop : t -> Graph.node -> dst:Graph.node -> flow:int -> Graph.node option
(** The hash-selected next hop for a flow. *)

val path : t -> src:Graph.node -> dst:Graph.node -> flow:int -> Graph.node list option
(** The full hop-by-hop path the flow's packets follow. *)

val max_fanout : t -> int
(** The largest number of equal-cost candidates anywhere (1 = the
    topology has no ECMP decisions at all — useful to check a test
    topology actually exercises multipath). *)
