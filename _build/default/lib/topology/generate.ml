let ispish ?(seed = 7) ~n ~duplex_links ~max_degree () =
  if n < 2 then invalid_arg "Generate.ispish: need at least 2 nodes";
  if duplex_links < n - 1 then invalid_arg "Generate.ispish: too few links to connect";
  if 2 * duplex_links > n * max_degree then
    invalid_arg "Generate.ispish: degree cap makes link count infeasible";
  let st = Random.State.make [| seed; n; duplex_links |] in
  let g = Graph.create ~n in
  let deg = Array.make n 0 in
  let added = ref 0 in
  let connect a b =
    Graph.add_duplex g a b;
    deg.(a) <- deg.(a) + 1;
    deg.(b) <- deg.(b) + 1;
    incr added
  in
  (* Preferential target selection among nodes [0, limit) excluding
     [self], respecting the degree cap and existing links. *)
  let pick_target self limit =
    let total = ref 0 in
    for v = 0 to limit - 1 do
      if v <> self && deg.(v) < max_degree && Graph.link g self v = None then
        total := !total + deg.(v) + 1
    done;
    if !total = 0 then None
    else begin
      let ticket = Random.State.int st !total in
      let acc = ref 0 in
      let chosen = ref None in
      (try
         for v = 0 to limit - 1 do
           if v <> self && deg.(v) < max_degree && Graph.link g self v = None then begin
             acc := !acc + deg.(v) + 1;
             if ticket < !acc then begin
               chosen := Some v;
               raise Exit
             end
           end
         done
       with Exit -> ());
      !chosen
    end
  in
  (* Growth phase: node i attaches to enough earlier nodes to spread the
     link budget evenly (fractional accumulator hits the target exactly). *)
  let budget = float_of_int duplex_links in
  let carry = ref 0.0 in
  for i = 1 to n - 1 do
    let share = budget /. float_of_int (n - 1) in
    carry := !carry +. share;
    let want = max 1 (int_of_float !carry) in
    carry := !carry -. float_of_int want;
    let attach = min want i in
    let made = ref 0 in
    while !made < attach && !added < duplex_links do
      match pick_target i i with
      | Some v ->
          connect i v;
          incr made
      | None -> made := attach (* saturated: stop trying *)
    done;
    (* Guarantee connectivity even when the preferential pick saturates. *)
    if Graph.out_degree g i = 0 then begin
      let v = Random.State.int st i in
      connect i v
    end
  done;
  (* Top-up phase: add remaining links between preferential pairs. *)
  let guard = ref 0 in
  while !added < duplex_links && !guard < duplex_links * 50 do
    incr guard;
    let a = Random.State.int st n in
    if deg.(a) < max_degree then begin
      match pick_target a n with Some b -> connect a b | None -> ()
    end
  done;
  if !added < duplex_links then
    invalid_arg "Generate.ispish: could not place all links under the degree cap";
  g

let sprintlink_like ?(seed = 315) () =
  ispish ~seed ~n:315 ~duplex_links:972 ~max_degree:45 ()

let ebone_like ?(seed = 87) () = ispish ~seed ~n:87 ~duplex_links:161 ~max_degree:11 ()

let waxman ?(seed = 11) ~n ?(alpha = 0.6) ?(beta = 0.35) () =
  if n < 2 then invalid_arg "Generate.waxman: need at least 2 nodes";
  let st = Random.State.make [| seed; n; 0x3a |] in
  let xs = Array.init n (fun _ -> Random.State.float st 1.0) in
  let ys = Array.init n (fun _ -> Random.State.float st 1.0) in
  let g = Graph.create ~n in
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  (* Connectivity backbone: a random chain. *)
  let order = Array.init n Fun.id in
  Mrstats.Variate.shuffle st order;
  for i = 0 to n - 2 do
    Graph.add_duplex g order.(i) order.(i + 1)
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Graph.link g i j = None then begin
        let p = alpha *. exp (-.dist i j /. (beta *. sqrt 2.0)) in
        if Random.State.float st 1.0 < p then Graph.add_duplex g i j
      end
    done
  done;
  g

let line ~n =
  let g = Graph.create ~n in
  for i = 0 to n - 2 do
    Graph.add_duplex g i (i + 1)
  done;
  g

let ring ~n =
  if n < 3 then invalid_arg "Generate.ring: need at least 3 nodes";
  let g = line ~n in
  Graph.add_duplex g (n - 1) 0;
  g

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generate.grid: empty grid";
  let g = Graph.create ~n:(rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_duplex g (id r c) (id r (c + 1));
      if r + 1 < rows then Graph.add_duplex g (id r c) (id (r + 1) c)
    done
  done;
  g
