(** Synthetic ISP-like topologies (substitute for the Rocketfuel data).

    Figures 5.2 and 5.4 were measured on the Rocketfuel maps of Sprintlink
    (315 routers, 972 duplex links, mean degree 6.17, max 45) and EBONE
    (87 routers, 161 links, mean degree 3.70, max 11).  Those measured
    maps are not available offline; the figures measure a purely
    graph-structural quantity, so we generate degree-calibrated
    preferential-attachment graphs with the same node count, link count
    and degree profile (see DESIGN.md). *)

val ispish :
  ?seed:int -> n:int -> duplex_links:int -> max_degree:int -> unit -> Graph.t
(** A connected graph with [n] nodes and exactly [duplex_links] duplex
    links (2x directed links), grown by preferential attachment with a
    degree cap.  Deterministic for a given [seed].  Raises
    [Invalid_argument] if the parameters are infeasible
    ([duplex_links < n - 1] or [duplex_links > n * max_degree / 2]). *)

val sprintlink_like : ?seed:int -> unit -> Graph.t
(** 315 nodes / 972 duplex links / degree cap 45 — the Sprintlink shape. *)

val ebone_like : ?seed:int -> unit -> Graph.t
(** 87 nodes / 161 duplex links / degree cap 11 — the EBONE shape. *)

val waxman :
  ?seed:int -> n:int -> ?alpha:float -> ?beta:float -> unit -> Graph.t
(** Waxman random geometric graph: nodes on the unit square, link
    probability alpha * exp(-d / (beta * sqrt 2)); connected by
    construction (a random spanning chain is added first).  The classic
    internet-topology alternative to preferential attachment, used for
    generator diversity in property tests. *)

val line : n:int -> Graph.t
(** A duplex chain 0 - 1 - ... - n-1; the fixed-path setting used by
    single-path protocols and many unit tests. *)

val ring : n:int -> Graph.t
(** A duplex cycle; the smallest topology with path diversity. *)

val grid : rows:int -> cols:int -> Graph.t
(** A duplex mesh with rows*cols nodes; rich path diversity for
    property tests. *)
