type node = int

type link = { src : node; dst : node; cost : int; bw : float; delay : float }

type t = { n : int; adj : (node, link) Hashtbl.t array }

let create ~n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; adj = Array.init n (fun _ -> Hashtbl.create 4) }

let size t = t.n

let check_node t v name =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Graph.%s: node %d outside [0,%d)" name v t.n)

let add_link t ?(cost = 1) ?(bw = 1.25e6) ?(delay = 0.001) src dst =
  check_node t src "add_link";
  check_node t dst "add_link";
  if src = dst then invalid_arg "Graph.add_link: self-loop";
  if cost <= 0 then invalid_arg "Graph.add_link: cost must be positive";
  Hashtbl.replace t.adj.(src) dst { src; dst; cost; bw; delay }

let add_duplex t ?cost ?bw ?delay a b =
  add_link t ?cost ?bw ?delay a b;
  add_link t ?cost ?bw ?delay b a

let link t src dst =
  if src < 0 || src >= t.n then None else Hashtbl.find_opt t.adj.(src) dst

let link_exn t src dst =
  match link t src dst with Some l -> l | None -> raise Not_found

let out_neighbors t v =
  check_node t v "out_neighbors";
  Hashtbl.fold (fun dst _ acc -> dst :: acc) t.adj.(v) [] |> List.sort compare

let links t =
  Array.to_list t.adj
  |> List.concat_map (fun h -> Hashtbl.fold (fun _ l acc -> l :: acc) h [])

let link_count t = Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 t.adj

let duplex_link_count t =
  let count = ref 0 in
  Array.iteri
    (fun src h ->
      Hashtbl.iter (fun dst _ -> if src < dst && link t dst src <> None then incr count) h)
    t.adj;
  !count

let out_degree t v =
  check_node t v "out_degree";
  Hashtbl.length t.adj.(v)

let degrees t = Array.map Hashtbl.length t.adj

let reachable_from t start =
  let seen = Array.make t.n false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Hashtbl.iter (fun dst _ -> visit dst) t.adj.(v)
    end
  in
  if t.n > 0 then visit start;
  seen

let is_connected t =
  if t.n <= 1 then true
  else begin
    let fwd = reachable_from t 0 in
    (* Reverse reachability: build the transposed adjacency once. *)
    let rev = create ~n:t.n in
    List.iter (fun l -> add_link rev ~cost:l.cost ~bw:l.bw ~delay:l.delay l.dst l.src) (links t);
    let bwd = reachable_from rev 0 in
    Array.for_all Fun.id fwd && Array.for_all Fun.id bwd
  end

let copy t = { n = t.n; adj = Array.map Hashtbl.copy t.adj }

let remove_link t src dst =
  check_node t src "remove_link";
  Hashtbl.remove t.adj.(src) dst

let fold_links t ~init ~f = List.fold_left f init (links t)
