(** Network graphs: routers interconnected by directional point-to-point
    links (dissertation §4.1).

    Nodes are dense integer ids [0 .. n-1].  Links are directed and carry
    the attributes the simulator and the protocols need: a routing cost,
    a bandwidth and a propagation delay.  Wired duplex links are added as
    two directed links. *)

type node = int

type link = {
  src : node;
  dst : node;
  cost : int;        (** link-state routing metric, must be positive *)
  bw : float;        (** bandwidth in bytes/second *)
  delay : float;     (** propagation delay in seconds *)
}

type t

val create : n:int -> t
(** Graph over nodes [0 .. n-1] with no links. *)

val size : t -> int
(** Number of nodes. *)

val add_link : t -> ?cost:int -> ?bw:float -> ?delay:float -> node -> node -> unit
(** Add the directed link [src -> dst].  Defaults: cost 1, bandwidth
    1.25e6 B/s (10 Mb/s), delay 1 ms.  Replaces an existing link between
    the same pair.  Raises [Invalid_argument] on self-loops, out-of-range
    nodes or non-positive cost. *)

val add_duplex : t -> ?cost:int -> ?bw:float -> ?delay:float -> node -> node -> unit
(** Add both directions with identical attributes. *)

val link : t -> node -> node -> link option
(** The link [src -> dst] if present. *)

val link_exn : t -> node -> node -> link
(** Like {!link} but raises [Not_found]. *)

val out_neighbors : t -> node -> node list
(** Successors of a node, in ascending id order (deterministic routing
    tie-breaks depend on this order). *)

val links : t -> link list
(** Every directed link. *)

val link_count : t -> int
(** Number of directed links. *)

val duplex_link_count : t -> int
(** Number of node pairs connected in both directions. *)

val out_degree : t -> node -> int

val degrees : t -> int array
(** Out-degree of every node. *)

val is_connected : t -> bool
(** Whether every node reaches every other (directed reachability from
    node 0 and to node 0). Vacuously true for n <= 1. *)

val copy : t -> t
(** Independent deep copy. *)

val remove_link : t -> node -> node -> unit
(** Remove the directed link if present (used by response engines and
    link-failure tests). *)

val fold_links : t -> init:'a -> f:('a -> link -> 'a) -> 'a
