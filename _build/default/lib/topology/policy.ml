module Transition = struct
  type t = int * int * int

  let equal (a, b, c) (x, y, z) = a = x && b = y && c = z
  let hash (a, b, c) = Hashtbl.hash (a, b, c)
end

module Tset = Hashtbl.Make (Transition)

type t = {
  work : Graph.t; (* topology with length-2 segments removed *)
  banned : unit Tset.t;
  (* dist_cache.(dst) lazily holds distTo.(u * n + v): least cost from v
     to dst given the previous hop was u. *)
  dist_cache : int array option array;
}

let validate_segment g seg =
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Graph.link g a b = None then
          invalid_arg
            (Printf.sprintf "Policy.compute: segment hop %d->%d is not a link" a b);
        check rest
    | [ _ ] | [] -> ()
  in
  if List.length seg < 2 then invalid_arg "Policy.compute: segment shorter than 2";
  check seg

let rec triples = function
  | a :: (b :: c :: _ as rest) -> (a, b, c) :: triples rest
  | _ -> []

let compute g ~forbidden =
  List.iter (validate_segment g) forbidden;
  let work = Graph.copy g in
  let banned = Tset.create 16 in
  List.iter
    (fun seg ->
      match seg with
      | [ a; b ] -> Graph.remove_link work a b
      | _ -> List.iter (fun tr -> Tset.replace banned tr ()) (triples seg))
    forbidden;
  { work; banned; dist_cache = Array.make (Graph.size g) None }

let infinity_cost = max_int

(* Backward Dijkstra over (prev, cur) states toward [dst]. *)
let state_distances t dst =
  match t.dist_cache.(dst) with
  | Some d -> d
  | None ->
      let n = Graph.size t.work in
      let dist = Array.make (n * n) infinity_cost in
      let heap = Prioq.create () in
      (* Entry states: arriving at dst over any existing link. *)
      List.iter
        (fun (l : Graph.link) ->
          if l.Graph.dst = dst then begin
            dist.((l.Graph.src * n) + dst) <- 0;
            Prioq.push heap ~priority:0.0 ((l.Graph.src * n) + dst)
          end)
        (Graph.links t.work);
      let rec drain () =
        match Prioq.pop heap with
        | None -> ()
        | Some (prio, state) ->
            if int_of_float prio = dist.(state) then begin
              let v = state / n and w = state mod n in
              (* Relax predecessor states (u, v) for links u -> v where the
                 transition u -> v -> w is allowed. *)
              List.iter
                (fun (l : Graph.link) ->
                  if l.Graph.dst = v then begin
                    let u = l.Graph.src in
                    if not (Tset.mem t.banned (u, v, w)) then begin
                      let hop = (Graph.link_exn t.work v w).Graph.cost in
                      let cand = hop + dist.(state) in
                      let pstate = (u * n) + v in
                      if cand < dist.(pstate) then begin
                        dist.(pstate) <- cand;
                        Prioq.push heap ~priority:(float_of_int cand) pstate
                      end
                    end
                  end)
                (Graph.links t.work)
            end;
            drain ()
      in
      drain ();
      t.dist_cache.(dst) <- Some dist;
      dist

let next_hop t ~prev ~cur ~dst =
  let n = Graph.size t.work in
  if cur < 0 || cur >= n || dst < 0 || dst >= n then invalid_arg "Policy.next_hop: bad node";
  if cur = dst then None
  else begin
    let dist = state_distances t dst in
    let score w =
      let allowed =
        match prev with Some p -> not (Tset.mem t.banned (p, cur, w)) | None -> true
      in
      if not allowed then None
      else begin
        let tail = if w = dst then 0 else dist.((cur * n) + w) in
        if tail = infinity_cost then None
        else Some ((Graph.link_exn t.work cur w).Graph.cost + tail)
      end
    in
    let best =
      List.fold_left
        (fun acc w ->
          match score w with
          | None -> acc
          | Some c -> (
              match acc with Some (c0, _) when c0 <= c -> acc | _ -> Some (c, w)))
        None
        (Graph.out_neighbors t.work cur)
    in
    Option.map snd best
  end

let path t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let rec follow prev cur acc =
      if cur = dst then Some (List.rev (cur :: acc))
      else begin
        match next_hop t ~prev ~cur ~dst with
        | None -> None
        | Some w -> follow (Some cur) w (cur :: acc)
      end
    in
    follow None src []
  end

let forbidden_transitions t = Tset.fold (fun tr () acc -> tr :: acc) t.banned []

let is_forbidden_path t chain =
  let rec bad_link = function
    | a :: (b :: _ as rest) -> Graph.link t.work a b = None || bad_link rest
    | [ _ ] | [] -> false
  in
  bad_link chain || List.exists (Tset.mem t.banned) (triples chain)
