(** Policy routing that excises suspected path-segments (§2.4.3, §5.3.1).

    Fatih's response removes a suspected path-segment from the routing
    fabric without removing its routers: "routers update their forwarding
    tables such that no traffic traverses along the suspected path-segment
    anymore", distinguishing flows by where they came from.  We model this
    exactly for segments of length 2 (link removal) and 3 (forbidden
    transitions, the k = 1 case Fatih implements); longer suspected
    segments are handled conservatively by forbidding every interior
    3-window, which excises a superset of the suspected segment.

    Forwarding decisions depend on (previous hop, current router,
    destination) — the simulator-level equivalent of Fatih's
    source-address policy routing. *)

type t

val compute : Graph.t -> forbidden:Graph.node list list -> t
(** Build policy routing state for a topology with a set of forbidden
    path-segments.  Segments must have length >= 2 and consist of
    adjacent routers of the graph; length-2 segments remove the link.
    Raises [Invalid_argument] on malformed segments. *)

val next_hop :
  t -> prev:Graph.node option -> cur:Graph.node -> dst:Graph.node -> Graph.node option
(** Deterministic next hop given where the packet came from ([None] for
    locally originated traffic); [None] when the destination is
    unreachable under the policy or [cur = dst]. *)

val path : t -> src:Graph.node -> dst:Graph.node -> Graph.node list option
(** Forwarding chain under the policy ([Some [src]] when [src = dst]). *)

val forbidden_transitions : t -> (Graph.node * Graph.node * Graph.node) list
(** The effective set of banned 3-windows after normalization (for
    inspection and tests). *)

val is_forbidden_path : t -> Graph.node list -> bool
(** Whether a chain traverses a banned window or removed link. *)
