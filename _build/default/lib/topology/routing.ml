type t = {
  graph : Graph.t;
  (* dist_to.(d).(v) = least cost from v to d. *)
  dist_to : int array array;
}

let compute graph =
  let n = Graph.size graph in
  let rev = Dijkstra.transpose graph in
  let dist_to = Array.init n (fun d -> Dijkstra.distances rev ~src:d) in
  { graph; dist_to }

let graph t = t.graph

let next_hop t v ~dst =
  let n = Graph.size t.graph in
  if v < 0 || v >= n || dst < 0 || dst >= n then invalid_arg "Routing.next_hop: bad node";
  if v = dst then None
  else begin
    let dist = t.dist_to.(dst) in
    if dist.(v) = Dijkstra.unreachable then None
    else
      (* Neighbors are in ascending order, so the first optimal one is the
         deterministic choice shared by all routers. *)
      List.find_opt
        (fun w ->
          dist.(w) <> Dijkstra.unreachable
          && (Graph.link_exn t.graph v w).Graph.cost + dist.(w) = dist.(v))
        (Graph.out_neighbors t.graph v)
  end

let cost t src dst =
  let d = t.dist_to.(dst).(src) in
  if d = Dijkstra.unreachable then None else Some d

let path t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let rec follow v acc =
      if v = dst then Some (List.rev (v :: acc))
      else begin
        match next_hop t v ~dst with
        | None -> None
        | Some w -> follow w (v :: acc)
      end
    in
    follow src []
  end

let path_delay t chain =
  let rec loop = function
    | a :: (b :: _ as rest) -> (Graph.link_exn t.graph a b).Graph.delay +. loop rest
    | [ _ ] | [] -> 0.0
  in
  loop chain

let all_routed_paths t =
  let n = Graph.size t.graph in
  let acc = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then begin
        match path t ~src ~dst with
        | Some p -> acc := p :: !acc
        | None -> ()
      end
    done
  done;
  !acc
