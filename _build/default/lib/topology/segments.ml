type segment = Graph.node list

let windows xs x =
  if x <= 0 then invalid_arg "Segments.windows: non-positive width";
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n < x then []
  else List.init (n - x + 1) (fun i -> Array.to_list (Array.sub arr i x))

(* Segments are interned into a hash table keyed by the chain itself to
   count each distinct segment once even though it occurs on many routed
   paths. *)
let distinct segs =
  let tbl = Hashtbl.create 4096 in
  List.iter (fun s -> if not (Hashtbl.mem tbl s) then Hashtbl.add tbl s ()) segs;
  tbl

let pi2_raw_segments rt ~k =
  if k < 1 then invalid_arg "Segments.pi2_family: k must be >= 1";
  let x = k + 2 in
  List.concat_map
    (fun p ->
      let len = List.length p in
      if len >= x then windows p x
      else if len >= 3 then [ p ] (* whole short path: both ends terminal *)
      else [])
    (Routing.all_routed_paths rt)

let pik2_raw_segments rt ~k =
  if k < 1 then invalid_arg "Segments.pik2_family: k must be >= 1";
  let paths = Routing.all_routed_paths rt in
  List.concat_map
    (fun p ->
      List.concat_map (fun x -> windows p x)
        (List.init k (fun i -> i + 3)) (* x = 3 .. k+2 *))
    paths

let keys tbl = Hashtbl.fold (fun s () acc -> s :: acc) tbl []

let pi2_family rt ~k = keys (distinct (pi2_raw_segments rt ~k))
let pik2_family rt ~k = keys (distinct (pik2_raw_segments rt ~k))

let group_by_router ~n ~members family =
  let pr = Array.make n [] in
  List.iter
    (fun seg -> List.iter (fun r -> pr.(r) <- seg :: pr.(r)) (members seg))
    family;
  pr

let pi2_pr rt ~k =
  let n = Graph.size (Routing.graph rt) in
  group_by_router ~n ~members:Fun.id (pi2_family rt ~k)

let ends seg =
  match seg with
  | [] | [ _ ] -> []
  | first :: rest ->
      let last = List.nth rest (List.length rest - 1) in
      if first = last then [ first ] else [ first; last ]

let pik2_pr rt ~k =
  let n = Graph.size (Routing.graph rt) in
  group_by_router ~n ~members:ends (pik2_family rt ~k)

let pr_stats pr =
  let counts = Array.map (fun segs -> float_of_int (List.length segs)) pr in
  if Array.length counts = 0 then (0.0, 0.0, 0.0)
  else begin
    let _, max_v = Mrstats.Descriptive.min_max counts in
    (max_v, Mrstats.Descriptive.mean counts, Mrstats.Descriptive.median counts)
  end
