(** Path-segment enumeration (§4.1, §5.1, §5.2).

    An x-path-segment is a sequence of x consecutive routers that is a
    subsequence of a routed path.  Under AdjacentFault(k):

    - Protocol Π2 has each router monitor every (k+2)-segment it belongs
      to, plus every whole routed path shorter than k+2 (both ends
      terminal) that contains it;
    - Protocol Πk+2 has each router monitor every x-segment,
      3 <= x <= k+2, of which it is an end.

    These functions compute the distinct segment families and the |Pr|
    statistics of Figures 5.2 and 5.4. *)

type segment = Graph.node list
(** A path-segment as its router chain (length >= 2). *)

val windows : 'a list -> int -> 'a list list
(** All contiguous sublists of the given length, left to right. *)

val pi2_family : Routing.t -> k:int -> segment list
(** The distinct segments monitored under Protocol Π2 with
    AdjacentFault(k), over all routed paths.  Raises [Invalid_argument]
    if [k < 1]. *)

val pik2_family : Routing.t -> k:int -> segment list
(** The distinct segments monitored under Protocol Πk+2 (all x-segments,
    3 <= x <= k+2, of routed paths). *)

val pi2_pr : Routing.t -> k:int -> segment list array
(** [pi2_pr rt ~k].(r) is Pr for router r under Π2: the distinct
    monitored segments containing r. *)

val pik2_pr : Routing.t -> k:int -> segment list array
(** Pr for router r under Πk+2: the distinct monitored segments having r
    as one of their two ends. *)

val pr_stats : segment list array -> float * float * float
(** (max, mean, median) of per-router |Pr| — the three series plotted in
    Figures 5.2 and 5.4. *)
