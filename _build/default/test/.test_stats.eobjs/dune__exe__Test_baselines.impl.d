test/test_baselines.ml: Alcotest Congestion_models Core Herzberg List Perlman Printf Sats Sectrace Topology
