test/test_chi.ml: Adversary Alcotest Chi Chi_red Core Crypto_sim Fatih Float Flow List Net Netsim Packet Pi2_live Printf Qmon Red Replica Response Router Sim Summary Tcp Threshold Topology Validation
