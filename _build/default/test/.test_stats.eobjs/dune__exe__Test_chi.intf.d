test/test_chi.mli:
