test/test_consensus.ml: Adversary Alcotest Chi Chi_fleet Consensus Core Crypto_sim Float Flow Hashtbl Int64 List Meter Net Netsim Option Printf QCheck QCheck_alcotest Random Router Topology
