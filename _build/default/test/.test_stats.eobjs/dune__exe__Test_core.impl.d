test/test_core.ml: Alcotest Array Core Int64 List Printf Spec Summary Threshold Topology Validation Watchers
