test/test_crypto.ml: Alcotest Bytes Char Crypto_sim Float Fnv Int64 Keyring List Printf QCheck QCheck_alcotest Sampling Sha256 Siphash String
