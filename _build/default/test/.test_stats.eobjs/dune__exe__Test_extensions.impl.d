test/test_extensions.ml: Adversary Alcotest Array Chi Core Crypto_sim Flow Fun Hashtbl Iface Int64 List Net Netsim Option Packet Ping Printf Qmon Router Sim Stealth Tcp Topology
