test/test_live_baselines.ml: Adversary Alcotest Array Core Flow Iface List Net Netflow Netsim Packet Perlman_live Router Sim State_size Summary Topology Watchers_live
