test/test_live_baselines.mli:
