test/test_netsim.ml: Alcotest Core Float Flow Iface List Net Netsim Packet Ping Printf Queue_fifo Random Red Router Sim String Tcp Topology Tracer
