test/test_props.ml: Alcotest Array Core Crypto_sim Flow Fun Gen Int64 List Meter Net Netsim Packet Prioq QCheck QCheck_alcotest Queue_fifo Random Red Router Setrecon Sim Tcp Topology
