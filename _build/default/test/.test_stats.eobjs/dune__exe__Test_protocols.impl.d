test/test_protocols.ml: Alcotest Array Core Crypto_sim List Pi2 Pik2 Printf QCheck QCheck_alcotest Rounds Spec Summary Topology Watchers
