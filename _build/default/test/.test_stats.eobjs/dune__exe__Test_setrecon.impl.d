test/test_setrecon.ml: Alcotest Array Bloom Float Gen Gfp Int Int64 Linalg List Poly Printf QCheck QCheck_alcotest Random Reconcile Set Setrecon
