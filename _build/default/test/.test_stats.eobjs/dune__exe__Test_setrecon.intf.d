test/test_setrecon.mli:
