test/test_stats.ml: Alcotest Array Descriptive Erf Float Fun Gen Histogram List Mrstats Printf QCheck QCheck_alcotest Random String Variate Welford Ztest
