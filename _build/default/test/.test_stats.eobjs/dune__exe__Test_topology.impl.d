test/test_topology.ml: Abilene Alcotest Array Dijkstra Disjoint Fun Generate Graph List Policy Printf QCheck QCheck_alcotest Routing Segments Topology
