(* Tests for the Chapter 3 literature baselines (HERZBERG, PERLMAN,
   SecTrace/AWERBUCH, SATS) and the §6.1.2 congestion models. *)

open Core
module Gen = Topology.Generate

(* --- Herzberg --- *)

let test_herzberg_delivery () =
  let o = Herzberg.run Herzberg.End_to_end ~path_len:6 ~drop_at:None () in
  Alcotest.(check bool) "delivered" true o.Herzberg.delivered;
  Alcotest.(check bool) "no suspicion" true (o.Herzberg.suspected = None)

let test_herzberg_localizes () =
  List.iter
    (fun variant ->
      let o = Herzberg.run variant ~path_len:8 ~drop_at:(Some 4) () in
      Alcotest.(check bool) "not delivered" false o.Herzberg.delivered;
      match o.Herzberg.suspected with
      | Some (lo, hi) ->
          Alcotest.(check bool) "fault inside span" true (lo <= 4 && 4 <= hi)
      | None -> Alcotest.fail "should suspect")
    [ Herzberg.End_to_end; Herzberg.Hop_by_hop; Herzberg.Checkpointed 3 ]

let test_herzberg_link_precision () =
  let o = Herzberg.run Herzberg.Hop_by_hop ~path_len:8 ~drop_at:(Some 4) () in
  Alcotest.(check (option (pair int int))) "exact link" (Some (3, 4)) o.Herzberg.suspected

let test_herzberg_tradeoff () =
  (* The §3.3 trade-off: hop-by-hop pays O(m^2) messages for optimal
     time; end-to-end pays O(m) time for O(m) messages; checkpoints sit
     in between. *)
  let m = 20 in
  let e2e = Herzberg.message_complexity Herzberg.End_to_end ~path_len:m in
  let hbh = Herzberg.message_complexity Herzberg.Hop_by_hop ~path_len:m in
  let ckp = Herzberg.message_complexity (Herzberg.Checkpointed 4) ~path_len:m in
  Alcotest.(check bool) "messages ordered" true (e2e <= ckp && ckp < hbh);
  let t_e2e = Herzberg.worst_detection_time Herzberg.End_to_end ~path_len:m in
  let t_ckp = Herzberg.worst_detection_time (Herzberg.Checkpointed 4) ~path_len:m in
  Alcotest.(check bool) "time ordered" true (t_ckp < t_e2e)

let test_herzberg_congestion_ambiguity () =
  (* A benign congestive loss of the monitored packet produces exactly
     the same suspicion as an attack at the same hop — the §6.1.1
     critique of single-packet monitors. *)
  let attack = Herzberg.run Herzberg.Hop_by_hop ~path_len:8 ~drop_at:(Some 4) () in
  let benign =
    Herzberg.run Herzberg.Hop_by_hop ~path_len:8 ~drop_at:None
      ~congestion_drop_at:(Some 4) ()
  in
  Alcotest.(check bool) "indistinguishable" true
    (attack.Herzberg.suspected = benign.Herzberg.suspected)

let test_herzberg_validation () =
  Alcotest.(check bool) "bad position rejected" true
    (try
       ignore (Herzberg.run Herzberg.End_to_end ~path_len:5 ~drop_at:(Some 0) ());
       false
     with Invalid_argument _ -> true)

(* --- Perlman --- *)

let test_robust_flood_reaches_correct () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  (* Router 4 (center) faulty: the ring of correct routers stays
     connected, so everyone correct is reached. *)
  let reached = Perlman.robust_flood g ~faulty:(fun r -> r = 4) ~src:0 in
  Alcotest.(check (list int)) "all correct reached" [ 0; 1; 2; 3; 5; 6; 7; 8 ] reached

let test_robust_flood_partition () =
  (* On a line, a faulty middle router partitions the correct routers:
     the far side is unreachable (the good-path condition fails, §2.1.3). *)
  let g = Gen.line ~n:5 in
  let reached = Perlman.robust_flood g ~faulty:(fun r -> r = 2) ~src:0 in
  Alcotest.(check (list int)) "near side only" [ 0; 1 ] reached

let test_robust_route_tolerates_f () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  (* Corner to corner has 2 disjoint paths; f = 1 tolerates one faulty
     interior router. *)
  match Perlman.robust_route g ~faulty:(fun r -> r = 1) ~src:0 ~dst:8 ~f:1 with
  | Some p ->
      Alcotest.(check bool) "avoids the faulty router" false (List.mem 1 p)
  | None -> Alcotest.fail "a clean path exists"

let test_robust_route_overwhelmed () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  (* Corner 0's only neighbours are 1 and 3; both faulty beats f = 1. *)
  Alcotest.(check bool) "both disjoint paths dirty" true
    (Perlman.robust_route g ~faulty:(fun r -> r = 1 || r = 3) ~src:0 ~dst:8 ~f:1 = None)

let test_perlmand_clean () =
  let o = Perlman.perlmand ~path_len:6 ~drops_data_at:None ~drops_acks_from:None () in
  Alcotest.(check bool) "delivered" true o.Perlman.delivered;
  Alcotest.(check bool) "no suspicion" true (o.Perlman.suspected = None);
  Alcotest.(check int) "all acks" 5 (List.length o.Perlman.acks_received)

let test_perlmand_collusion_frames_innocents () =
  (* Fig 3.8: positions a=0 b=1 c=2 d=3 e=4 f=5; e drops the data, b
     drops acks from beyond c.  The source blames <c, d> — two correct
     routers. *)
  let o = Perlman.perlmand ~path_len:6 ~drops_data_at:(Some 4) ~drops_acks_from:(Some 2) () in
  Alcotest.(check bool) "not delivered" false o.Perlman.delivered;
  Alcotest.(check (option (pair int int))) "innocent link blamed" (Some (2, 3))
    o.Perlman.suspected;
  (* Neither suspected router (2 or 3) is faulty (1 and 4 are): the
     protocol is inaccurate, which is why Perlman rejected it. *)
  let faulty = [ 1; 4 ] in
  (match o.Perlman.suspected with
  | Some (x, y) ->
      Alcotest.(check bool) "accuracy violated" false
        (List.mem x faulty || List.mem y faulty)
  | None -> Alcotest.fail "expected suspicion")

let test_perlmand_honest_dropper_found () =
  let o = Perlman.perlmand ~path_len:6 ~drops_data_at:(Some 3) ~drops_acks_from:None () in
  Alcotest.(check (option (pair int int))) "dropper's link" (Some (2, 3)) o.Perlman.suspected

(* --- SecTrace / Awerbuch --- *)

let test_sectrace_consistent () =
  let attacker = Some (Sectrace.consistent_attacker ~position:4) in
  let r = Sectrace.sectrace ~path_len:9 ~attacker in
  Alcotest.(check (option (pair int int))) "link found" (Some (4, 5)) r.Sectrace.suspected;
  Alcotest.(check int) "linear rounds" 5 r.Sectrace.rounds

let test_sectrace_clean () =
  let r = Sectrace.sectrace ~path_len:9 ~attacker:None in
  Alcotest.(check bool) "silent" true (r.Sectrace.suspected = None);
  Alcotest.(check int) "walked the path" 8 r.Sectrace.rounds

let test_sectrace_framing () =
  (* Fig 3.7: the timing attacker at position 2 gets <3, 4> blamed. *)
  let attacker = Some (Sectrace.timing_attacker ~position:2) in
  let r = Sectrace.sectrace ~path_len:9 ~attacker in
  (match r.Sectrace.suspected with
  | Some (x, y) ->
      Alcotest.(check bool) "attacker not in blamed pair" false (x = 2 || y = 2)
  | None -> Alcotest.fail "a failure is observed");
  Alcotest.(check (option (pair int int))) "downstream pair framed" (Some (3, 4))
    r.Sectrace.suspected

let test_awerbuch_logarithmic () =
  let attacker = Some (Sectrace.consistent_attacker ~position:9) in
  let r = Sectrace.awerbuch ~path_len:33 ~attacker in
  (match r.Sectrace.suspected with
  | Some (lo, hi) ->
      Alcotest.(check int) "precision 2" 1 (hi - lo);
      Alcotest.(check bool) "contains the attacker boundary" true (lo = 9 || hi = 9 || lo = 8)
  | None -> Alcotest.fail "should localize");
  Alcotest.(check bool)
    (Printf.sprintf "log rounds (%d)" r.Sectrace.rounds)
    true
    (r.Sectrace.rounds <= 7)

let test_awerbuch_vs_sectrace_rounds () =
  let attacker p = Some (Sectrace.consistent_attacker ~position:p) in
  let st = Sectrace.sectrace ~path_len:65 ~attacker:(attacker 60) in
  let aw = Sectrace.awerbuch ~path_len:65 ~attacker:(attacker 60) in
  Alcotest.(check bool)
    (Printf.sprintf "binary search faster (%d vs %d)" aw.Sectrace.rounds st.Sectrace.rounds)
    true
    (aw.Sectrace.rounds < st.Sectrace.rounds)

let test_awerbuch_clean () =
  let r = Sectrace.awerbuch ~path_len:17 ~attacker:None in
  Alcotest.(check bool) "silent" true (r.Sectrace.suspected = None);
  Alcotest.(check int) "one round" 1 r.Sectrace.rounds

(* --- SATS --- *)

let nobody ~position:_ ~fp:_ = false

let test_sats_clean () =
  let v = Sats.run ~path_len:5 ~packets:500 ~fraction:0.2 ~drops:nobody () in
  Alcotest.(check bool) "no suspicion" true (v.Sats.suspected = None);
  Alcotest.(check bool) "sampling happened" true (v.Sats.sampled_per_router > 0)

let test_sats_detects_dropper () =
  let drops = Sats.evading_dropper ~rate:0.3 ~position:2 in
  let v = Sats.run ~path_len:5 ~packets:500 ~fraction:0.2 ~drops () in
  match v.Sats.suspected with
  | Some (lo, hi) -> Alcotest.(check bool) "span brackets dropper" true (lo < 3 && hi >= 2 && lo <= 2)
  | None -> Alcotest.fail "dropper must be seen in some secret range"

let test_sats_precision_adjacent () =
  (* With a hefty sampling fraction the adjacent pair around the dropper
     is inconsistent, giving precision 2. *)
  let drops = Sats.evading_dropper ~rate:0.5 ~position:2 in
  let v = Sats.run ~path_len:5 ~packets:2000 ~fraction:0.5 ~drops () in
  Alcotest.(check (option (pair int int))) "adjacent pair" (Some (1, 2)) v.Sats.suspected

let test_sats_leak_allows_evasion () =
  (* When the assignment leaks, the attacker drops only unsampled packets
     and is never seen. *)
  let drops = Sats.evading_dropper ~rate:0.5 ~position:2 in
  let v = Sats.run ~path_len:5 ~packets:500 ~fraction:0.2 ~drops ~ranges_leaked:true () in
  Alcotest.(check bool) "evaded" true (v.Sats.suspected = None)

(* --- Congestion models --- *)

let test_sqrt_law_shapes () =
  let b1 = Congestion_models.sqrt_throughput ~rtt:0.1 ~loss:0.01 ~b:1 ~mss:1000 in
  let b2 = Congestion_models.sqrt_throughput ~rtt:0.1 ~loss:0.04 ~b:1 ~mss:1000 in
  (* Quadrupled loss halves throughput. *)
  Alcotest.(check (float 1e-6)) "sqrt scaling" 2.0 (b1 /. b2);
  let b3 = Congestion_models.sqrt_throughput ~rtt:0.2 ~loss:0.01 ~b:1 ~mss:1000 in
  Alcotest.(check (float 1e-6)) "rtt scaling" 2.0 (b1 /. b3)

let test_sqrt_law_roundtrip () =
  let rtt = 0.08 and loss = 0.02 in
  let thr = Congestion_models.sqrt_throughput ~rtt ~loss ~b:1 ~mss:960 in
  Alcotest.(check (float 1e-9)) "roundtrip"
    loss
    (Congestion_models.implied_loss ~rtt ~throughput:thr ~b:1 ~mss:960)

let test_buffer_model_shapes () =
  let s16 = Congestion_models.buffer_sigma ~tp:0.05 ~capacity:1.25e6 ~buffer:64000.0 ~flows:16 in
  let s64 = Congestion_models.buffer_sigma ~tp:0.05 ~capacity:1.25e6 ~buffer:64000.0 ~flows:64 in
  (* sigma shrinks as 1/sqrt n. *)
  Alcotest.(check (float 1e-6)) "1/sqrt n" 2.0 (s16 /. s64);
  let p_small = Congestion_models.overflow_probability ~buffer:64000.0 ~sigma:s64 in
  let p_big = Congestion_models.overflow_probability ~buffer:64000.0 ~sigma:s16 in
  Alcotest.(check bool) "more flows, fewer overflows" true (p_small < p_big);
  Alcotest.(check bool) "probabilities" true (p_small >= 0.0 && p_big <= 1.0)

let test_models_validation () =
  Alcotest.(check bool) "bad rtt" true
    (try
       ignore (Congestion_models.sqrt_throughput ~rtt:0.0 ~loss:0.1 ~b:1 ~mss:1000);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "baselines"
    [ ( "herzberg",
        [ Alcotest.test_case "delivery" `Quick test_herzberg_delivery;
          Alcotest.test_case "localizes" `Quick test_herzberg_localizes;
          Alcotest.test_case "link precision" `Quick test_herzberg_link_precision;
          Alcotest.test_case "tradeoff" `Quick test_herzberg_tradeoff;
          Alcotest.test_case "congestion ambiguity" `Quick test_herzberg_congestion_ambiguity;
          Alcotest.test_case "validation" `Quick test_herzberg_validation ] );
      ( "perlman",
        [ Alcotest.test_case "flood reaches correct" `Quick test_robust_flood_reaches_correct;
          Alcotest.test_case "flood partition" `Quick test_robust_flood_partition;
          Alcotest.test_case "robust route" `Quick test_robust_route_tolerates_f;
          Alcotest.test_case "overwhelmed" `Quick test_robust_route_overwhelmed;
          Alcotest.test_case "perlmand clean" `Quick test_perlmand_clean;
          Alcotest.test_case "collusion frames innocents" `Quick
            test_perlmand_collusion_frames_innocents;
          Alcotest.test_case "honest dropper" `Quick test_perlmand_honest_dropper_found ] );
      ( "sectrace",
        [ Alcotest.test_case "consistent attacker" `Quick test_sectrace_consistent;
          Alcotest.test_case "clean" `Quick test_sectrace_clean;
          Alcotest.test_case "framing" `Quick test_sectrace_framing;
          Alcotest.test_case "awerbuch log rounds" `Quick test_awerbuch_logarithmic;
          Alcotest.test_case "awerbuch vs sectrace" `Quick test_awerbuch_vs_sectrace_rounds;
          Alcotest.test_case "awerbuch clean" `Quick test_awerbuch_clean ] );
      ( "sats",
        [ Alcotest.test_case "clean" `Quick test_sats_clean;
          Alcotest.test_case "detects dropper" `Quick test_sats_detects_dropper;
          Alcotest.test_case "adjacent precision" `Quick test_sats_precision_adjacent;
          Alcotest.test_case "leak evasion" `Quick test_sats_leak_allows_evasion ] );
      ( "congestion-models",
        [ Alcotest.test_case "sqrt shapes" `Quick test_sqrt_law_shapes;
          Alcotest.test_case "sqrt roundtrip" `Quick test_sqrt_law_roundtrip;
          Alcotest.test_case "buffer shapes" `Quick test_buffer_model_shapes;
          Alcotest.test_case "validation" `Quick test_models_validation ] ) ]
