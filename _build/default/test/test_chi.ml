(* Tests for Protocol χ (drop-tail and RED), the queue monitor, the
   response engine and the Fatih system — the Appendix C properties at
   packet level. *)

open Core
open Netsim
module G = Topology.Graph
module Rt = Topology.Routing

(* The Fig 6.4 simple topology: three source routers feed r (=3), whose
   output queue toward rd (=4) is the validated bottleneck. *)
let simple_topology ?(bottleneck_bw = 1.25e6) () =
  let g = G.create ~n:5 in
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 1 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 2 3;
  G.add_duplex g ~bw:bottleneck_bw ~delay:0.005 3 4;
  g

let chi_config =
  { Chi.default_config with Chi.tau = 1.0; learning_rounds = 4 }

let setup ?(queue = Net.Droptail 64000) ?(seed = 11) () =
  let g = simple_topology () in
  let net = Net.create ~seed ~queue ~jitter_bound:200e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  (net, rt)

let run_chi ?(behavior = Router.honest) ?(duration = 40.0) ?(make_traffic = fun _ -> ())
    () =
  let net, rt = setup () in
  let chi = Chi.deploy ~net ~rt ~router:3 ~next:4 ~config:chi_config () in
  (* Long-lived TCPs from every source create genuine congestion. *)
  let conns = List.map (fun src -> Tcp.connect net ~src ~dst:4 ()) [ 0; 1; 2 ] in
  make_traffic net;
  Router.set_behavior (Net.router net 3) behavior;
  Net.run ~until:duration net;
  (chi, conns, net)

(* --- Qmon --- *)

let test_qmon_sees_all_traffic () =
  let net, rt = setup () in
  let key = Crypto_sim.Siphash.key_of_string "t" in
  let qmon =
    Qmon.attach ~net ~predict:(Qmon.predict_of_routing rt ~router:3) ~key ~router:3
      ~next:4 ()
  in
  let f = Flow.cbr net ~src:0 ~dst:4 ~rate_pps:100.0 ~size:1000 ~start:0.0 ~stop:1.0 in
  Net.run net;
  let data = Qmon.drain qmon ~horizon:10.0 in
  Alcotest.(check int) "all arrivals seen" (Flow.sent f) (List.length data.Qmon.arrivals);
  Alcotest.(check int) "all departures seen" (Flow.sent f) (List.length data.Qmon.departures);
  Alcotest.(check int) "no fabrication" 0 (List.length data.Qmon.fabricated)

let test_qmon_ignores_other_directions () =
  let net, rt = setup () in
  let key = Crypto_sim.Siphash.key_of_string "t" in
  let qmon =
    Qmon.attach ~net ~predict:(Qmon.predict_of_routing rt ~router:3) ~key ~router:3
      ~next:4 ()
  in
  (* Traffic 4 -> 0 transits r in the reverse direction: not Q's. *)
  ignore (Flow.cbr net ~src:4 ~dst:0 ~rate_pps:50.0 ~size:500 ~start:0.0 ~stop:1.0);
  Net.run net;
  let data = Qmon.drain qmon ~horizon:10.0 in
  Alcotest.(check int) "no arrivals" 0 (List.length data.Qmon.arrivals)

let test_qmon_horizon_buffers () =
  let net, rt = setup () in
  let key = Crypto_sim.Siphash.key_of_string "t" in
  let qmon =
    Qmon.attach ~net ~predict:(Qmon.predict_of_routing rt ~router:3) ~key ~router:3
      ~next:4 ()
  in
  let f = Flow.cbr net ~src:0 ~dst:4 ~rate_pps:10.0 ~size:500 ~start:0.0 ~stop:2.0 in
  Net.run net;
  let early = Qmon.drain qmon ~horizon:1.0 in
  let late = Qmon.drain qmon ~horizon:10.0 in
  Alcotest.(check bool) "split" true
    (List.length early.Qmon.arrivals > 0 && List.length late.Qmon.arrivals > 0);
  Alcotest.(check int) "nothing lost" (Flow.sent f)
    (List.length early.Qmon.arrivals + List.length late.Qmon.arrivals)

let test_qmon_detects_fabrication () =
  let net, rt = setup () in
  let key = Crypto_sim.Siphash.key_of_string "t" in
  let qmon =
    Qmon.attach ~net ~predict:(Qmon.predict_of_routing rt ~router:3) ~key ~router:3
      ~next:4 ()
  in
  let sim = Net.sim net in
  Sim.schedule sim ~delay:0.5 (fun () ->
      let bogus = Packet.make ~sim ~src:0 ~dst:4 ~flow:99 ~size:400 Packet.Udp in
      Router.fabricate (Net.router net 3) ~next:4 bogus);
  Net.run net;
  let data = Qmon.drain qmon ~horizon:10.0 in
  Alcotest.(check int) "fabricated flagged" 1 (List.length data.Qmon.fabricated)

(* --- Protocol χ, drop-tail --- *)

let test_chi_no_attack_no_alarm () =
  let chi, _, _ = run_chi () in
  let post = List.filter (fun r -> not r.Chi.learning) (Chi.reports chi) in
  Alcotest.(check bool) "rounds ran" true (List.length post > 20);
  (* TCP caused real congestion losses... *)
  let total_losses = List.fold_left (fun acc r -> acc + List.length r.Chi.losses) 0 post in
  Alcotest.(check bool) (Printf.sprintf "congestion present (%d)" total_losses) true
    (total_losses > 10);
  (* ...yet no round is blamed on malice. *)
  Alcotest.(check int) "no false alarm" 0 (List.length (Chi.alarms chi))

let test_chi_calibration () =
  let chi, _, _ = run_chi () in
  let mu, sigma = Chi.mu_sigma chi in
  Alcotest.(check bool) (Printf.sprintf "mu %.1f small" mu) true (Float.abs mu < 5000.0);
  Alcotest.(check bool) (Printf.sprintf "sigma %.1f sane" sigma) true
    (sigma >= 40.0 && sigma < 20000.0)

let test_chi_attack1_fraction_drops () =
  (* Attack 1: drop 20% of selected flows. *)
  let victim_behavior net =
    ignore net;
    Adversary.after 10.0 (Adversary.drop_fraction ~seed:5 0.2)
  in
  let chi, _, _ = run_chi ~behavior:(victim_behavior ()) () in
  let alarms = Chi.alarms chi in
  Alcotest.(check bool)
    (Printf.sprintf "alarms raised (%d)" (List.length alarms))
    true
    (List.length alarms > 3);
  (* All alarms are after the attack started. *)
  List.iter
    (fun r -> Alcotest.(check bool) "post-attack" true (r.Chi.end_time > 10.0))
    alarms

let test_chi_attack23_queue_conditioned () =
  (* Attacks 2/3: drop only when the queue is nearly full — crafted to
     look like congestion; χ still sees the residual headroom. *)
  let run frac =
    let chi, _, _ =
      run_chi ~behavior:(Adversary.after 10.0 (Adversary.drop_when_queue_above frac)) ()
    in
    List.length (Chi.alarms chi)
  in
  Alcotest.(check bool) "90% full caught" true (run 0.90 > 0);
  Alcotest.(check bool) "95% full caught" true (run 0.95 > 0)

let test_chi_attack4_syn () =
  (* Attack 4: a victim's connection attempt is killed by dropping its
     SYNs; the queue is near-empty at those instants, so the single-loss
     test fires with high confidence. *)
  let make_traffic net =
    ignore (Tcp.connect net ~src:0 ~dst:4 ~total_bytes:5000 ~start:15.0 ())
  in
  let chi, _, _ =
    run_chi ~behavior:(Adversary.after 14.0 Adversary.drop_syn) ~make_traffic ()
  in
  let alarms = Chi.alarms chi in
  Alcotest.(check bool) "tiny attack caught" true (alarms <> []);
  let max_conf =
    List.fold_left (fun acc r -> Float.max acc r.Chi.c_single_max) 0.0 alarms
  in
  Alcotest.(check bool) (Printf.sprintf "confidence %.3f" max_conf) true (max_conf > 0.99)

let test_chi_fabrication_alarm () =
  let net, rt = setup () in
  let chi = Chi.deploy ~net ~rt ~router:3 ~next:4 ~config:chi_config () in
  ignore (Flow.cbr net ~src:0 ~dst:4 ~rate_pps:50.0 ~size:500 ~start:0.0 ~stop:20.0);
  let sim = Net.sim net in
  Sim.schedule sim ~delay:10.0 (fun () ->
      let bogus = Packet.make ~sim ~src:1 ~dst:4 ~flow:77 ~size:300 Packet.Udp in
      Router.fabricate (Net.router net 3) ~next:4 bogus);
  Net.run ~until:20.0 net;
  Alcotest.(check bool) "fabrication alarmed" true
    (List.exists (fun r -> r.Chi.fabricated > 0 && r.Chi.alarm) (Chi.reports chi))

let test_chi_static_threshold_comparison () =
  (* §6.4.3: a static threshold must either false-positive on congestion
     or miss the queue-conditioned attack; χ does neither. *)
  let collect behavior =
    let chi, _, _ = run_chi ~behavior () in
    List.filter (fun r -> not r.Chi.learning) (Chi.reports chi)
  in
  let benign = collect Router.honest in
  let attacked = collect (Adversary.after 10.0 (Adversary.drop_when_queue_above 0.90)) in
  let rounds_of reports attack =
    List.map
      (fun r ->
        (r.Chi.arrivals, List.length r.Chi.losses, attack && r.Chi.end_time > 10.0))
      reports
  in
  let rounds = rounds_of benign false @ rounds_of attacked true in
  (* Pick the best possible static threshold and show it still errs. *)
  let best_errors =
    List.fold_left
      (fun acc rate ->
        let t = Threshold.create ~loss_rate:rate in
        let _, fp, fn, _ = Threshold.confusion t ~rounds in
        min acc (fp + fn))
      max_int
      [ 0.0; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2 ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "best static threshold still errs (%d)" best_errors)
    true (best_errors > 0);
  (* χ on the same data: no false positives, attack rounds caught. *)
  let chi_benign, _, _ = run_chi () in
  Alcotest.(check int) "chi clean" 0 (List.length (Chi.alarms chi_benign))

(* --- Protocol χ, RED --- *)

let red_params =
  { Red.default_params with Red.min_th = 15000.0; max_th = 45000.0; max_p = 0.1 }

let run_chi_red ?(behavior = Router.honest) ?(duration = 40.0) () =
  let g = simple_topology () in
  let net = Net.create ~seed:11 ~queue:(Net.Red red_params) ~jitter_bound:200e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let config = { Chi_red.default_config with Chi_red.tau = 1.0 } in
  let chi = Chi_red.deploy ~net ~rt ~router:3 ~next:4 ~params:red_params ~config () in
  List.iter (fun src -> ignore (Tcp.connect net ~src ~dst:4 ())) [ 0; 1; 2 ];
  Router.set_behavior (Net.router net 3) behavior;
  Net.run ~until:duration net;
  chi

let test_chi_red_no_attack_no_alarm () =
  let chi = run_chi_red () in
  let post = List.filter (fun r -> not r.Chi_red.learning) (Chi_red.reports chi) in
  let red_drops = List.fold_left (fun acc r -> acc + List.length r.Chi_red.losses) 0 post in
  Alcotest.(check bool) (Printf.sprintf "red dropped (%d)" red_drops) true (red_drops > 5);
  Alcotest.(check int) "no false alarm" 0 (List.length (Chi_red.alarms chi))

let test_chi_red_avg_conditioned_attack () =
  (* §6.5.3 attack 1: drop the victim flows whenever the average queue is
     high — far more drops than RED's expectation. *)
  let chi =
    run_chi_red
      ~behavior:(Adversary.after 10.0 (Adversary.drop_when_red_avg_above 20000.0)) ()
  in
  Alcotest.(check bool) "caught" true (Chi_red.alarms chi <> [])

let test_chi_red_syn_attack_certain () =
  (* §6.5.3 attack 5: SYN drops while the EWMA is below min_th are
     impossible for RED — individually certain. *)
  let g = simple_topology () in
  let net = Net.create ~seed:11 ~queue:(Net.Red red_params) ~jitter_bound:200e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let config = { Chi_red.default_config with Chi_red.tau = 1.0 } in
  let chi = Chi_red.deploy ~net ~rt ~router:3 ~next:4 ~params:red_params ~config () in
  ignore (Flow.cbr net ~src:0 ~dst:4 ~rate_pps:20.0 ~size:500 ~start:0.0 ~stop:40.0);
  ignore (Tcp.connect net ~src:1 ~dst:4 ~total_bytes:4000 ~start:15.0 ());
  Router.set_behavior (Net.router net 3) (Adversary.after 14.0 Adversary.drop_syn);
  Net.run ~until:40.0 net;
  let certain =
    List.exists
      (fun r -> List.exists (fun l -> l.Chi_red.certain) r.Chi_red.losses)
      (Chi_red.alarms chi)
  in
  Alcotest.(check bool) "certain malicious drop" true certain

(* --- Replica (the §2.3 ideal detector and its nondeterminism caveat) --- *)

let replica_run ~jitter_bound ~attack ~rate_pps () =
  let g = simple_topology () in
  let net = Net.create ~seed:11 ~queue:(Net.Droptail 64000) ~jitter_bound g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let replica = Replica.deploy ~net ~rt ~router:3 ~next:4 () in
  let malicious = ref 0 in
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with Router.Malicious_drop _ -> incr malicious | _ -> ());
  ignore (Flow.cbr net ~src:0 ~dst:4 ~rate_pps ~size:1000 ~start:0.0 ~stop:10.0);
  ignore (Flow.cbr net ~src:1 ~dst:4 ~rate_pps ~size:1000 ~start:0.003 ~stop:10.0);
  if attack then
    Router.set_behavior (Net.router net 3)
      (Adversary.after 3.0 (Adversary.drop_fraction ~seed:4 0.1));
  Net.run net;
  (Replica.finish replica, !malicious)

let test_replica_exact_when_deterministic () =
  (* With a deterministic forwarding plane and no congestion the replica
     is the ideal detector: it accuses exactly the maliciously dropped
     packets. *)
  let report, malicious =
    replica_run ~jitter_bound:0.0 ~attack:true ~rate_pps:400.0 ()
  in
  Alcotest.(check bool) "attack happened" true (malicious > 100);
  Alcotest.(check int) "accusations = malicious drops" malicious
    (List.length report.Replica.accused);
  Alcotest.(check int) "no congestion to explain" 0 report.Replica.predicted_congestive

let test_replica_quiet_when_benign_deterministic () =
  let report, _ = replica_run ~jitter_bound:0.0 ~attack:false ~rate_pps:400.0 () in
  Alcotest.(check (list int64)) "no accusations" [] report.Replica.accused

let test_replica_detects_under_congestion () =
  (* Under congestion the compromised router's queue itself diverges
     from the replica's (its drops empty the real queue), so per-packet
     attribution degrades — but the output discrepancy, which is what
     §2.3's detector alarms on, remains large. *)
  let report, malicious =
    replica_run ~jitter_bound:0.0 ~attack:true ~rate_pps:900.0 ()
  in
  Alcotest.(check bool) "attack happened" true (malicious > 500);
  Alcotest.(check bool) "large discrepancy" true
    (List.length report.Replica.accused > malicious / 3);
  Alcotest.(check bool) "congestion also present" true
    (report.Replica.predicted_congestive > 0)

let test_replica_breaks_under_nondeterminism () =
  (* §2.3's caveat: jitter the replica cannot observe makes it diverge
     and frame honest congestion drops. *)
  let report, _ = replica_run ~jitter_bound:300e-6 ~attack:false ~rate_pps:900.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "false accusations appear (%d)" (List.length report.Replica.accused))
    true
    (report.Replica.accused <> [])

(* --- Response + Fatih --- *)

let test_response_timers () =
  let g = Topology.Generate.ring ~n:5 in
  let net = Net.create g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let resp = Response.create ~net () in
  let sim = Net.sim net in
  Sim.schedule sim ~delay:1.0 (fun () -> Response.suspect resp [ 0; 1 ]);
  Sim.schedule sim ~delay:2.0 (fun () -> Response.suspect resp [ 2; 3 ]);
  Sim.schedule sim ~delay:7.0 (fun () -> Response.suspect resp [ 3; 4 ]);
  Net.run ~until:30.0 net;
  match Response.updates resp with
  | [ u1; u2 ] ->
      (* First install: 1.0 + 5 s delay; the suspicion at 2.0 rides along. *)
      Alcotest.(check (float 1e-6)) "first update" 6.0 u1.Response.time;
      Alcotest.(check int) "two segments" 2 (List.length u1.Response.forbidden);
      (* Second: delay says 12, hold says 16. *)
      Alcotest.(check (float 1e-6)) "hold enforced" 16.0 u2.Response.time;
      Alcotest.(check int) "three segments" 3 (List.length u2.Response.forbidden)
  | us -> Alcotest.failf "expected 2 updates, got %d" (List.length us)

let test_fatih_detects_and_reroutes () =
  (* Miniature Fig 5.7 on a ring: router 2 starts dropping transit
     traffic; the 3-segments around it are detected within one round and
     excised after the OSPF timers. *)
  let g = Topology.Generate.ring ~n:6 in
  let net = Net.create ~seed:3 ~jitter_bound:100e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let fatih = Fatih.deploy ~net ~rt () in
  (* Steady CBR through the ring, several flows crossing router 2. *)
  List.iter
    (fun (src, dst) ->
      ignore (Flow.cbr net ~src ~dst ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:60.0))
    [ (0, 4); (4, 0); (1, 3); (3, 1); (0, 3) ];
  Router.set_behavior (Net.router net 2) (Adversary.after 20.0 (Adversary.drop_fraction ~seed:7 0.5));
  Net.run ~until:60.0 net;
  let detections = Fatih.detections fatih in
  Alcotest.(check bool) "detected" true (detections <> []);
  (* Detection happened within one validation round of the attack. *)
  let first = List.hd detections in
  Alcotest.(check bool)
    (Printf.sprintf "timely (%.1fs)" first.Fatih.time)
    true
    (first.Fatih.time >= 20.0 && first.Fatih.time <= 30.0);
  (* Every suspected segment contains the compromised router (accuracy). *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "accurate" true (List.mem 2 d.Fatih.segment))
    detections;
  (* A routing update followed. *)
  Alcotest.(check bool) "rerouted" true (Response.updates (Fatih.response fatih) <> [])

let test_fatih_quiet_without_attack () =
  let g = Topology.Generate.ring ~n:6 in
  let net = Net.create ~seed:3 ~jitter_bound:100e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let fatih = Fatih.deploy ~net ~rt () in
  List.iter
    (fun (src, dst) ->
      ignore (Flow.cbr net ~src ~dst ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:40.0))
    [ (0, 4); (4, 0); (1, 3) ];
  Net.run ~until:40.0 net;
  Alcotest.(check int) "no detections" 0 (List.length (Fatih.detections fatih));
  Alcotest.(check int) "no updates" 0 (List.length (Response.updates (Fatih.response fatih)))

let test_fatih_excises_failed_link () =
  (* Fail-stop is a degenerate Byzantine fault: a dead link shows up as
     100% loss on the segments crossing it and gets excised by the same
     machinery. *)
  let g = Topology.Generate.ring ~n:6 in
  let net = Net.create ~seed:3 ~jitter_bound:100e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let fatih = Fatih.deploy ~net ~rt () in
  List.iter
    (fun (src, dst) ->
      ignore (Flow.cbr net ~src ~dst ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:60.0))
    [ (0, 3); (1, 4); (0, 2) ];
  Sim.schedule (Net.sim net) ~delay:20.0 (fun () -> Net.fail_link net ~src:2 ~dst:3);
  Net.run ~until:60.0 net;
  let detections = Fatih.detections fatih in
  Alcotest.(check bool) "failure detected" true (detections <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool) "segment crosses the dead link" true
        (let rec crosses = function
           | 2 :: 3 :: _ -> true
           | _ :: rest -> crosses rest
           | [] -> false
         in
         crosses d.Fatih.segment))
    detections;
  Alcotest.(check bool) "rerouted" true (Response.updates (Fatih.response fatih) <> [])

let fatih_delay_run ~policy ~thresholds () =
  let g = Topology.Generate.ring ~n:6 in
  let net = Net.create ~seed:3 ~jitter_bound:0.0 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let config = { Fatih.default_config with Fatih.policy; thresholds } in
  let fatih = Fatih.deploy ~net ~rt ~config () in
  List.iter
    (fun (src, dst) ->
      ignore (Flow.cbr net ~src ~dst ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:40.0))
    [ (0, 4); (4, 0); (1, 3) ];
  (* Router 2 delays 30% of transit packets by 300 ms: nothing is lost,
     but order and timeliness are violated. *)
  Router.set_behavior (Net.router net 2)
    (Adversary.after 10.0 (Adversary.delay_fraction ~seed:5 ~delay:0.3 0.3));
  Net.run ~until:40.0 net;
  Fatih.detections fatih

let test_fatih_timeliness_policy_catches_delayer () =
  let thresholds =
    { (Validation.lenient ()) with Validation.max_delay = 0.2; max_reordered = 50 }
  in
  let detections = fatih_delay_run ~policy:Summary.Timeliness ~thresholds () in
  Alcotest.(check bool) "delayer detected" true (detections <> []);
  List.iter
    (fun (d : Fatih.detection) ->
      Alcotest.(check bool) "accurate" true (List.mem 2 d.Fatih.segment);
      Alcotest.(check bool) "delay measured" true (d.Fatih.max_delay > 0.2))
    detections

let test_fatih_order_policy_catches_reordering () =
  let thresholds =
    { (Validation.lenient ()) with Validation.max_reordered = 5 }
  in
  let detections = fatih_delay_run ~policy:Summary.Order ~thresholds () in
  Alcotest.(check bool) "reordering detected" true
    (List.exists (fun (d : Fatih.detection) -> d.Fatih.reordered > 5) detections)

let test_fatih_content_policy_blind_to_delay () =
  (* The same attack under the Content policy: every packet eventually
     arrives, so apart from round-boundary stragglers (absorbed by a 5%
     loss budget) conservation of content holds and nothing is suspected
     — the §2.4.1 policy hierarchy at packet level. *)
  let detections =
    fatih_delay_run ~policy:Summary.Content
      ~thresholds:(Validation.lenient ~max_loss_fraction:0.05 ()) ()
  in
  Alcotest.(check int) "blind" 0 (List.length detections)

let test_fatih_reconcile_exchange () =
  (* Appendix A inside the protocol: reconciliation ships orders of
     magnitude fewer words while the detections are identical. *)
  let run exchange =
    let g = Topology.Generate.ring ~n:6 in
    let net = Net.create ~seed:3 ~jitter_bound:100e-6 g in
    let rt = Rt.compute g in
    Net.use_routing net rt;
    let config = { Fatih.default_config with Fatih.exchange } in
    let fatih = Fatih.deploy ~net ~rt ~config () in
    List.iter
      (fun (src, dst) ->
        ignore (Flow.cbr net ~src ~dst ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:40.0))
      [ (0, 4); (4, 0); (1, 3) ];
    Router.set_behavior (Net.router net 2)
      (Adversary.after 20.0 (Adversary.drop_fraction ~seed:7 0.02));
    Net.run ~until:40.0 net;
    (Fatih.words_exchanged fatih,
     List.map (fun (d : Fatih.detection) -> d.Fatih.segment) (Fatih.detections fatih))
  in
  let full_words, full_detections = run Fatih.Full_sets in
  let recon_words, recon_detections = run Fatih.Reconcile in
  Alcotest.(check (list (list int))) "identical detections" full_detections
    recon_detections;
  Alcotest.(check bool)
    (Printf.sprintf "reconcile %d << full %d" recon_words full_words)
    true
    (recon_words * 10 < full_words)

let test_fatih_detects_modification () =
  let g = Topology.Generate.ring ~n:6 in
  let net = Net.create ~seed:3 ~jitter_bound:100e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let fatih = Fatih.deploy ~net ~rt () in
  List.iter
    (fun (src, dst) ->
      ignore (Flow.cbr net ~src ~dst ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:40.0))
    [ (0, 4); (4, 0) ];
  Router.set_behavior (Net.router net 5)
    (Adversary.after 10.0 (Adversary.modify_fraction ~seed:9 0.3));
  Net.run ~until:40.0 net;
  let detections = Fatih.detections fatih in
  Alcotest.(check bool) "modification detected" true (detections <> []);
  List.iter
    (fun d -> Alcotest.(check bool) "accurate" true (List.mem 5 d.Fatih.segment))
    detections


(* --- Pi2 live (packet-level §5.1) --- *)

let pi2_ring () =
  let g = Topology.Generate.ring ~n:6 in
  let net = Net.create ~seed:3 ~jitter_bound:100e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let pi2 = Pi2_live.deploy ~net ~rt () in
  List.iter
    (fun (src, dst) ->
      ignore (Flow.cbr net ~src ~dst ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:60.0))
    [ (0, 4); (4, 0); (1, 3); (3, 1); (0, 3) ];
  (net, pi2)

let test_pi2_live_quiet () =
  let net, pi2 = pi2_ring () in
  Net.run ~until:40.0 net;
  Alcotest.(check int) "no detections" 0 (List.length (Pi2_live.detections pi2))

let test_pi2_live_precision_2 () =
  let net, pi2 = pi2_ring () in
  Router.set_behavior (Net.router net 2)
    (Adversary.after 15.0 (Adversary.drop_fraction ~seed:7 0.5));
  Net.run ~until:40.0 net;
  let pairs = Pi2_live.suspected_pairs pi2 in
  Alcotest.(check bool) "detected" true (pairs <> []);
  (* Precision 2: every suspected pair contains the compromised router. *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "pair (%d,%d) accurate" a b)
        true (a = 2 || b = 2))
    pairs

let test_pi2_live_catches_liar () =
  (* A protocol-faulty router that under-reports — erases half the
     fingerprints from the summary it submits to consensus — without
     touching any traffic.  TV fails on a pair adjacent to it. *)
  let net, pi2 = pi2_ring () in
  Pi2_live.set_misreport pi2 ~router:2 (fun ~segment:_ ~pos:_ s ->
      List.iteri (fun i fp -> if i mod 2 = 0 then Summary.remove s fp)
        (Summary.fingerprints s);
      s);
  Net.run ~until:40.0 net;
  let pairs = Pi2_live.suspected_pairs pi2 in
  Alcotest.(check bool) "liar detected" true (pairs <> []);
  List.iter
    (fun (a, b) -> Alcotest.(check bool) "accurate" true (a = 2 || b = 2))
    pairs

(* --- chi victim identification --- *)

let test_chi_identifies_victim_flows () =
  let net, rt = setup () in
  let chi = Chi.deploy ~net ~rt ~router:3 ~next:4 ~config:chi_config () in
  ignore (Tcp.connect net ~src:0 ~dst:4 ());
  ignore (Tcp.connect net ~src:1 ~dst:4 ());
  let victim = Tcp.connect net ~src:2 ~dst:4 () in
  Router.set_behavior (Net.router net 3)
    (Adversary.after 10.0
       (Adversary.on_flows [ Tcp.flow_id victim ] (Adversary.drop_fraction ~seed:3 0.3)));
  Net.run ~until:30.0 net;
  let named =
    List.concat_map (fun (r : Chi.report) -> r.Chi.victims) (Chi.alarms chi)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "exactly the victim flow" [ Tcp.flow_id victim ] named

let () =
  Alcotest.run "chi"
    [ ( "qmon",
        [ Alcotest.test_case "sees all" `Quick test_qmon_sees_all_traffic;
          Alcotest.test_case "direction filter" `Quick test_qmon_ignores_other_directions;
          Alcotest.test_case "horizon" `Quick test_qmon_horizon_buffers;
          Alcotest.test_case "fabrication" `Quick test_qmon_detects_fabrication ] );
      ( "chi",
        [ Alcotest.test_case "no attack" `Slow test_chi_no_attack_no_alarm;
          Alcotest.test_case "calibration" `Slow test_chi_calibration;
          Alcotest.test_case "attack 1: 20% drops" `Slow test_chi_attack1_fraction_drops;
          Alcotest.test_case "attacks 2/3: queue-conditioned" `Slow
            test_chi_attack23_queue_conditioned;
          Alcotest.test_case "attack 4: syn" `Slow test_chi_attack4_syn;
          Alcotest.test_case "fabrication" `Slow test_chi_fabrication_alarm;
          Alcotest.test_case "vs static threshold" `Slow test_chi_static_threshold_comparison
        ] );
      ( "chi-red",
        [ Alcotest.test_case "no attack" `Slow test_chi_red_no_attack_no_alarm;
          Alcotest.test_case "avg-conditioned" `Slow test_chi_red_avg_conditioned_attack;
          Alcotest.test_case "syn certain" `Slow test_chi_red_syn_attack_certain ] );
      ( "replica",
        [ Alcotest.test_case "exact when deterministic" `Quick
            test_replica_exact_when_deterministic;
          Alcotest.test_case "quiet benign" `Quick test_replica_quiet_when_benign_deterministic;
          Alcotest.test_case "congested detection" `Quick test_replica_detects_under_congestion;
          Alcotest.test_case "nondeterminism caveat" `Quick
            test_replica_breaks_under_nondeterminism ] );
      ( "response",
        [ Alcotest.test_case "timers" `Quick test_response_timers ] );
      ( "pi2-live",
        [ Alcotest.test_case "quiet" `Slow test_pi2_live_quiet;
          Alcotest.test_case "precision 2" `Slow test_pi2_live_precision_2;
          Alcotest.test_case "liar" `Slow test_pi2_live_catches_liar;
          Alcotest.test_case "victim flows" `Slow test_chi_identifies_victim_flows ] );
      ( "fatih",
        [ Alcotest.test_case "detects and reroutes" `Slow test_fatih_detects_and_reroutes;
          Alcotest.test_case "quiet" `Slow test_fatih_quiet_without_attack;
          Alcotest.test_case "fail-stop link" `Slow test_fatih_excises_failed_link;
          Alcotest.test_case "timeliness policy" `Slow test_fatih_timeliness_policy_catches_delayer;
          Alcotest.test_case "order policy" `Slow test_fatih_order_policy_catches_reordering;
          Alcotest.test_case "content blind to delay" `Slow test_fatih_content_policy_blind_to_delay;
          Alcotest.test_case "reconcile exchange" `Slow test_fatih_reconcile_exchange;
          Alcotest.test_case "modification" `Slow test_fatih_detects_modification ] ) ]
