(* Tests for the Dolev-Strong signed Byzantine broadcast (the consensus
   primitive Protocol Π2's summary exchange rests on, §5.1) and the
   network-wide χ fleet (the per-interface architecture of Fig 2.3). *)

open Core
open Netsim

let keyring n = Crypto_sim.Keyring.create ~n ()

(* --- Dolev-Strong --- *)

let all_correct _ = Consensus.Correct

let check_agreement outcome =
  match outcome.Consensus.decisions with
  | [] -> Alcotest.fail "no correct party decided"
  | (_, v) :: rest ->
      List.iter
        (fun (p, v') ->
          Alcotest.(check int64) (Printf.sprintf "party %d agrees" p) v v')
        rest;
      v

let test_consensus_all_correct () =
  let outcome =
    Consensus.broadcast ~keyring:(keyring 5) ~parties:5 ~f:1 ~sender:0 ~value:42L
      ~behavior:all_correct
  in
  Alcotest.(check int64) "validity" 42L (check_agreement outcome);
  Alcotest.(check int) "all decided" 5 (List.length outcome.Consensus.decisions);
  Alcotest.(check int) "f+1 rounds" 2 outcome.Consensus.rounds_used

let test_consensus_silent_sender () =
  let behavior p = if p = 0 then Consensus.Silent else Consensus.Correct in
  let outcome =
    Consensus.broadcast ~keyring:(keyring 5) ~parties:5 ~f:1 ~sender:0 ~value:42L ~behavior
  in
  Alcotest.(check int64) "default decided" Consensus.default_value (check_agreement outcome);
  Alcotest.(check int) "correct parties decided" 4 (List.length outcome.Consensus.decisions)

let test_consensus_equivocating_sender () =
  (* The sender signs two values; with f = 1 and 2 rounds, relaying
     exposes both to everyone: all correct parties extract both values
     and agree on the default. *)
  let behavior p = if p = 0 then Consensus.Equivocate (1L, 2L) else Consensus.Correct in
  let outcome =
    Consensus.broadcast ~keyring:(keyring 6) ~parties:6 ~f:1 ~sender:0 ~value:0L ~behavior
  in
  Alcotest.(check int64) "agreement on default" Consensus.default_value
    (check_agreement outcome)

let test_consensus_silent_relay () =
  (* A silent relay cannot prevent delivery: the correct sender reached
     everyone directly. *)
  let behavior p = if p = 3 then Consensus.Silent else Consensus.Correct in
  let outcome =
    Consensus.broadcast ~keyring:(keyring 5) ~parties:5 ~f:1 ~sender:0 ~value:7L ~behavior
  in
  Alcotest.(check int64) "validity" 7L (check_agreement outcome)

let test_consensus_validation () =
  Alcotest.(check bool) "bad f" true
    (try
       ignore
         (Consensus.broadcast ~keyring:(keyring 3) ~parties:3 ~f:3 ~sender:0 ~value:1L
            ~behavior:all_correct);
       false
     with Invalid_argument _ -> true)

let prop_consensus_agreement =
  (* Random Byzantine subsets of size <= f: agreement always holds, and
     validity when the sender is correct. *)
  QCheck.Test.make ~name:"dolev-strong agreement+validity" ~count:60
    QCheck.(
      quad (int_range 3 7) (int_range 1 3) (int_bound 6) (int_bound 1000))
    (fun (parties, f, sender_raw, seed) ->
      QCheck.assume (f < parties);
      let sender = sender_raw mod parties in
      let rng = Random.State.make [| seed |] in
      (* Pick up to f Byzantine parties with random behaviours. *)
      let byz = Hashtbl.create 4 in
      let count = Random.State.int rng (f + 1) in
      while Hashtbl.length byz < count do
        let p = Random.State.int rng parties in
        let b =
          if Random.State.bool rng then Consensus.Silent
          else Consensus.Equivocate (11L, 22L)
        in
        Hashtbl.replace byz p b
      done;
      let behavior p =
        Option.value ~default:Consensus.Correct (Hashtbl.find_opt byz p)
      in
      let outcome =
        Consensus.broadcast ~keyring:(keyring parties) ~parties ~f ~sender ~value:99L
          ~behavior
      in
      match outcome.Consensus.decisions with
      | [] -> Hashtbl.length byz = parties (* no correct party at all *)
      | (_, v) :: rest ->
          List.for_all (fun (_, v') -> Int64.equal v v') rest
          && (Hashtbl.mem byz sender || Int64.equal v 99L))

(* --- χ fleet --- *)

let fleet_scenario ~attack () =
  let g = Topology.Generate.ring ~n:5 in
  let net = Net.create ~seed:9 ~jitter_bound:150e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  let config = { Chi.default_config with Chi.tau = 1.0; learning_rounds = 3 } in
  let fleet = Chi_fleet.deploy ~net ~rt ~config () in
  List.iter
    (fun (src, dst) ->
      ignore (Flow.cbr net ~src ~dst ~rate_pps:80.0 ~size:500 ~start:0.0 ~stop:40.0))
    [ (0, 2); (2, 0); (1, 3); (3, 1); (4, 2); (0, 3) ];
  if attack then
    Router.set_behavior (Net.router net 1)
      (Adversary.after 15.0 (Adversary.drop_fraction ~seed:4 0.4));
  Net.run ~until:40.0 net;
  fleet

let test_fleet_monitors_every_link () =
  let fleet = fleet_scenario ~attack:false () in
  Alcotest.(check int) "all 10 directed links" 10 (List.length (Chi_fleet.monitors fleet))

let test_fleet_quiet () =
  let fleet = fleet_scenario ~attack:false () in
  Alcotest.(check (list int)) "nobody suspected" [] (Chi_fleet.suspected_routers fleet)

let test_fleet_localizes_attacker () =
  let fleet = fleet_scenario ~attack:true () in
  Alcotest.(check (list int)) "exactly the attacker" [ 1 ]
    (Chi_fleet.suspected_routers fleet);
  List.iter
    (fun s ->
      Alcotest.(check int) "owner" 1 s.Chi_fleet.router;
      Alcotest.(check bool) "post-attack" true (s.Chi_fleet.first_alarm > 15.0))
    (Chi_fleet.suspects fleet)

let test_fleet_reports_accessible () =
  let fleet = fleet_scenario ~attack:false () in
  let reports = Chi_fleet.reports_for fleet ~router:0 ~next:1 in
  Alcotest.(check bool) "rounds recorded" true (List.length reports > 10)

let test_fleet_response_recovers_victim () =
  (* The full loop: chi detects the compromised interfaces, the response
     engine excises them, traffic routes around, and the victim's
     delivery recovers. *)
  let g = Topology.Generate.ring ~n:5 in
  let net = Net.create ~seed:9 ~jitter_bound:150e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  let resp = Core.Response.create ~net () in
  let config = { Chi.default_config with Chi.tau = 1.0; learning_rounds = 3 } in
  let fleet = Chi_fleet.deploy ~net ~rt ~config ~response:resp () in
  (* Victim flow 0 -> 2 whose shortest path crosses the attacker 1. *)
  let victim = Flow.cbr net ~src:0 ~dst:2 ~rate_pps:80.0 ~size:500 ~start:0.0 ~stop:80.0 in
  let meter = Meter.flow_throughput net ~node:2 ~flow:(Flow.flow_id victim) ~bucket:5.0 in
  List.iter
    (fun (s, d) ->
      ignore (Flow.cbr net ~src:s ~dst:d ~rate_pps:60.0 ~size:500 ~start:0.0 ~stop:80.0))
    [ (2, 0); (1, 3); (3, 1); (4, 2) ];
  Router.set_behavior (Net.router net 1)
    (Core.Adversary.after 20.0 (Core.Adversary.drop_fraction ~seed:4 0.6));
  Net.run ~until:80.0 net;
  Alcotest.(check (list int)) "attacker localized" [ 1 ]
    (Chi_fleet.suspected_routers fleet);
  Alcotest.(check bool) "routing updated" true (Core.Response.updates resp <> []);
  (* Victim delivery: healthy before, collapsed under attack, healthy
     again after the excision. *)
  let rate at =
    List.fold_left
      (fun acc (bin_end, r) -> if Float.abs (bin_end -. at) < 2.6 then r else acc)
      0.0 (Meter.series meter)
  in
  let before = rate 15.0 and during = rate 25.0 and after = rate 70.0 in
  Alcotest.(check bool)
    (Printf.sprintf "collapse then recovery (%.0f / %.0f / %.0f B/s)" before during after)
    true
    (during < 0.7 *. before && after > 0.9 *. before)

let () =
  Alcotest.run "consensus"
    [ ( "dolev-strong",
        [ Alcotest.test_case "all correct" `Quick test_consensus_all_correct;
          Alcotest.test_case "silent sender" `Quick test_consensus_silent_sender;
          Alcotest.test_case "equivocation" `Quick test_consensus_equivocating_sender;
          Alcotest.test_case "silent relay" `Quick test_consensus_silent_relay;
          Alcotest.test_case "validation" `Quick test_consensus_validation;
          QCheck_alcotest.to_alcotest prop_consensus_agreement ] );
      ( "chi-fleet",
        [ Alcotest.test_case "covers links" `Slow test_fleet_monitors_every_link;
          Alcotest.test_case "quiet" `Slow test_fleet_quiet;
          Alcotest.test_case "localizes" `Slow test_fleet_localizes_attacker;
          Alcotest.test_case "reports" `Slow test_fleet_reports_accessible;
          Alcotest.test_case "response recovers victim" `Slow
            test_fleet_response_recovers_victim ] ) ]
