(* Tests for the core detection building blocks: summaries, the TV
   predicate, the failure-detector spec, the static-threshold baseline,
   and the WATCHERS protocol (including its §3.1 consorting flaw). *)

open Core
module Gen = Topology.Generate
module Rt = Topology.Routing

(* --- Summary --- *)

let obs s fp = Summary.observe s ~fp ~size:100 ~time:0.0

let test_summary_flow () =
  let s = Summary.create Summary.Flow in
  obs s 1L;
  obs s 2L;
  Alcotest.(check int) "packets" 2 (Summary.packets s);
  Alcotest.(check int) "bytes" 200 (Summary.bytes s);
  Alcotest.(check bool) "no identity" false (Summary.mem s 1L);
  Alcotest.(check int) "2 words" 2 (Summary.state_words s)

let test_summary_content () =
  let s = Summary.create Summary.Content in
  obs s 1L;
  obs s 2L;
  Alcotest.(check bool) "mem" true (Summary.mem s 1L);
  Alcotest.(check bool) "not mem" false (Summary.mem s 3L);
  Alcotest.(check int) "fps" 2 (List.length (Summary.fingerprints s));
  Alcotest.(check bool) "order unavailable" true
    (try
       ignore (Summary.sequence s);
       false
     with Invalid_argument _ -> true)

let test_summary_order_and_time () =
  let s = Summary.create Summary.Timeliness in
  Summary.observe s ~fp:10L ~size:50 ~time:1.0;
  Summary.observe s ~fp:20L ~size:50 ~time:2.0;
  Alcotest.(check (array int64)) "sequence" [| 10L; 20L |] (Summary.sequence s);
  Alcotest.(check (option (float 1e-9))) "time" (Some 2.0) (Summary.time_of s 20L)

let test_summary_remove_copy () =
  let s = Summary.create Summary.Content in
  obs s 1L;
  obs s 2L;
  let c = Summary.copy s in
  Summary.remove c 1L;
  Alcotest.(check bool) "copy lost it" false (Summary.mem c 1L);
  Alcotest.(check bool) "original keeps it" true (Summary.mem s 1L);
  Alcotest.(check int) "copy count" 1 (Summary.packets c)

let test_summary_state_words_ranking () =
  let mk p =
    let s = Summary.create p in
    for i = 1 to 10 do
      obs s (Int64.of_int i)
    done;
    Summary.state_words s
  in
  let flow = mk Summary.Flow
  and content = mk Summary.Content
  and time = mk Summary.Timeliness in
  Alcotest.(check bool) "flow cheapest" true (flow < content && content < time)

(* --- Validation --- *)

let summary_of fps =
  let s = Summary.create Summary.Content in
  List.iter (obs s) fps;
  s

let test_tv_equal_ok () =
  let v = Validation.tv ~sent:(summary_of [ 1L; 2L ]) ~received:(summary_of [ 2L; 1L ]) () in
  Alcotest.(check bool) "ok" true v.Validation.ok

let test_tv_detects_loss () =
  let v = Validation.tv ~sent:(summary_of [ 1L; 2L; 3L ]) ~received:(summary_of [ 1L ]) () in
  Alcotest.(check bool) "fails" false v.Validation.ok;
  Alcotest.(check int) "missing" 2 (List.length v.Validation.missing)

let test_tv_detects_fabrication () =
  let v = Validation.tv ~sent:(summary_of [ 1L ]) ~received:(summary_of [ 1L; 9L ]) () in
  Alcotest.(check bool) "fails" false v.Validation.ok;
  Alcotest.(check (list int64)) "fabricated" [ 9L ] v.Validation.fabricated

let test_tv_modification_is_loss_plus_fabrication () =
  (* A modified packet disappears under its old fingerprint and appears
     under a new one (§2.4.1 conservation of content). *)
  let v = Validation.tv ~sent:(summary_of [ 1L; 2L ]) ~received:(summary_of [ 1L; 99L ]) () in
  Alcotest.(check bool) "fails" false v.Validation.ok;
  Alcotest.(check (list int64)) "missing" [ 2L ] v.Validation.missing;
  Alcotest.(check (list int64)) "fabricated" [ 99L ] v.Validation.fabricated

let test_tv_threshold_tolerates_loss () =
  let sent = summary_of (List.init 100 (fun i -> Int64.of_int i)) in
  let received = summary_of (List.init 99 (fun i -> Int64.of_int i)) in
  let lenient = Validation.lenient () in
  let v = Validation.tv ~thresholds:lenient ~sent ~received () in
  Alcotest.(check bool) "1% within 2% budget" true v.Validation.ok;
  let v2 = Validation.tv ~sent ~received () in
  Alcotest.(check bool) "strict rejects" false v2.Validation.ok

let test_tv_flow_policy () =
  let s = Summary.create Summary.Flow and r = Summary.create Summary.Flow in
  for i = 1 to 10 do
    obs s (Int64.of_int i)
  done;
  for i = 1 to 8 do
    obs r (Int64.of_int i)
  done;
  let v = Validation.tv ~sent:s ~received:r () in
  Alcotest.(check bool) "counter mismatch" false v.Validation.ok;
  Alcotest.(check bool) "policy mismatch rejected" true
    (try
       ignore (Validation.tv ~sent:s ~received:(Summary.create Summary.Content) ());
       false
     with Invalid_argument _ -> true)

let test_tv_order () =
  let mk fps =
    let s = Summary.create Summary.Order in
    List.iter (obs s) fps;
    s
  in
  let v = Validation.tv ~sent:(mk [ 1L; 2L; 3L ]) ~received:(mk [ 3L; 2L; 1L ]) () in
  Alcotest.(check bool) "reorder detected" false v.Validation.ok;
  Alcotest.(check int) "reordered = |S| - LCS" 2 v.Validation.reordered;
  let v2 = Validation.tv ~sent:(mk [ 1L; 2L; 3L ]) ~received:(mk [ 1L; 2L; 3L ]) () in
  Alcotest.(check bool) "in order ok" true v2.Validation.ok

let test_tv_order_ignores_losses () =
  (* Reordering is measured over common packets only. *)
  let mk fps =
    let s = Summary.create Summary.Order in
    List.iter (obs s) fps;
    s
  in
  let thresholds = { (Validation.lenient ~max_loss_fraction:0.5 ()) with
                     Validation.max_reordered = 0 } in
  let v =
    Validation.tv ~thresholds ~sent:(mk [ 1L; 2L; 3L ]) ~received:(mk [ 1L; 3L ]) ()
  in
  Alcotest.(check int) "no reordering" 0 v.Validation.reordered;
  Alcotest.(check bool) "loss within budget" true v.Validation.ok

let test_tv_timeliness () =
  let mk times =
    let s = Summary.create Summary.Timeliness in
    List.iteri (fun i tm -> Summary.observe s ~fp:(Int64.of_int i) ~size:10 ~time:tm) times;
    s
  in
  let thresholds = { Validation.strict with Validation.max_delay = 0.5 } in
  let v = Validation.tv ~thresholds ~sent:(mk [ 0.0; 0.0 ]) ~received:(mk [ 0.1; 0.9 ]) () in
  Alcotest.(check bool) "delay over budget" false v.Validation.ok;
  Alcotest.(check (float 1e-9)) "max delay" 0.9 v.Validation.max_delay_seen

let test_lcs () =
  Alcotest.(check int) "identical" 3 (Validation.lcs_length [| 1L; 2L; 3L |] [| 1L; 2L; 3L |]);
  Alcotest.(check int) "reversed" 1 (Validation.lcs_length [| 1L; 2L; 3L |] [| 3L; 2L; 1L |]);
  Alcotest.(check int) "empty" 0 (Validation.lcs_length [||] [| 1L |]);
  Alcotest.(check int) "interleaved" 2 (Validation.lcs_length [| 1L; 2L; 3L |] [| 2L; 4L; 3L |])

(* --- Spec --- *)

let test_spec_accuracy () =
  let faulty r = r = 3 in
  let ok = [ { Spec.segment = [ 2; 3 ]; round = 0; by = 0 } ] in
  Alcotest.(check bool) "accurate" true (Spec.accurate ~faulty ~a:2 ok = Ok ());
  let bad = [ { Spec.segment = [ 1; 2 ]; round = 0; by = 0 } ] in
  Alcotest.(check bool) "inaccurate flagged" true (Spec.accurate ~faulty ~a:2 bad <> Ok ());
  let long = [ { Spec.segment = [ 1; 2; 3 ]; round = 0; by = 0 } ] in
  Alcotest.(check bool) "precision bound" true (Spec.accurate ~faulty ~a:2 long <> Ok ())

let test_spec_fault_cluster () =
  let g = Gen.line ~n:6 in
  let faulty r = r = 2 || r = 3 in
  let cluster = List.sort compare (Spec.fault_cluster g ~faulty 2) in
  Alcotest.(check (list int)) "cluster" [ 2; 3 ] cluster;
  Alcotest.(check (list int)) "correct router has none" []
    (Spec.fault_cluster g ~faulty 0)

let test_spec_completeness () =
  let g = Gen.line ~n:5 in
  let faulty r = r = 2 in
  let suspicions =
    List.map (fun by -> { Spec.segment = [ 1; 2 ]; round = 0; by }) [ 0; 1; 3; 4 ]
  in
  Alcotest.(check bool) "complete" true
    (Spec.complete ~graph:g ~faulty ~traffic_faulty:[ 2 ] ~correct_routers:[ 0; 1; 3; 4 ]
       suspicions
    = Ok ());
  Alcotest.(check bool) "incomplete flagged" true
    (Spec.complete ~graph:g ~faulty ~traffic_faulty:[ 2 ] ~correct_routers:[ 0; 1; 3; 4 ]
       (List.tl suspicions)
    <> Ok ())

(* --- Threshold baseline --- *)

let test_threshold_judgement () =
  let d = Threshold.create ~loss_rate:0.05 in
  Alcotest.(check bool) "under" false (Threshold.judge d ~sent:100 ~lost:5).Threshold.alarm;
  Alcotest.(check bool) "over" true (Threshold.judge d ~sent:100 ~lost:6).Threshold.alarm;
  Alcotest.(check bool) "empty round" false (Threshold.judge d ~sent:0 ~lost:0).Threshold.alarm

let test_threshold_confusion () =
  let d = Threshold.create ~loss_rate:0.05 in
  let rounds =
    [ (100, 10, true);   (* caught attack *)
      (100, 2, true);    (* subtle attack slips under *)
      (100, 8, false);   (* congestion blamed *)
      (100, 1, false) ]  (* quiet round *)
  in
  let tp, fp, fn, tn = Threshold.confusion d ~rounds in
  Alcotest.(check (list int)) "confusion" [ 1; 1; 1; 1 ] [ tp; fp; fn; tn ]

let test_threshold_validation () =
  Alcotest.check_raises "range" (Invalid_argument "Threshold.create: loss_rate outside [0,1]")
    (fun () -> ignore (Threshold.create ~loss_rate:1.5))

(* --- WATCHERS --- *)

let honest_lies _ = `Honest
let no_drops _ ~next:_ = false
let drops_from router x ~next:_ = x = router

let test_watchers_clean_network () =
  let rt = Rt.compute (Gen.line ~n:5) in
  let c = Watchers.collect ~rt ~drops:no_drops ~lies:honest_lies () in
  Alcotest.(check int) "no detections" 0 (List.length (Watchers.detect c))

let test_watchers_honest_dropper_fails_cof () =
  (* A dropper with honest counters violates conservation of flow. *)
  let rt = Rt.compute (Gen.line ~n:5) in
  let c = Watchers.collect ~rt ~drops:(drops_from 2) ~lies:honest_lies () in
  let detections = Watchers.detect c in
  Alcotest.(check bool) "router 2 caught" true
    (List.mem (Watchers.Bad_router 2) detections)

let test_watchers_lying_dropper_fails_validation () =
  (* A dropper that inflates its sent counters disagrees with its honest
     downstream neighbour. *)
  let rt = Rt.compute (Gen.line ~n:5) in
  let lies r = if r = 2 then `Inflate_sent 3 else `Honest in
  let c = Watchers.collect ~rt ~drops:(fun r ~next -> r = 2 && next = 3) ~lies () in
  let detections = Watchers.detect c in
  Alcotest.(check bool) "link 2-3 flagged" true
    (List.mem (Watchers.Bad_link (2, 3)) detections)

let test_watchers_consorting_flaw () =
  (* §3.1: c (=2) drops and inflates; d (=3) keeps honest counters but
     stays silent.  Original WATCHERS detects nothing. *)
  let rt = Rt.compute (Gen.line ~n:6) in
  let lies r = if r = 2 then `Inflate_sent 3 else if r = 3 then `Match_upstream 2 else `Honest in
  let c = Watchers.collect ~rt ~drops:(fun r ~next -> r = 2 && next = 3) ~lies () in
  let original = Watchers.detect ~improved:false c in
  let improved = Watchers.detect ~improved:true c in
  (* With d corroborating c's inflated counter, validation passes on
     (2,3), but then d's conservation of flow fails: in claims 100%,
     out is the dropped truth. *)
  Alcotest.(check bool) "collusion shifts blame to d's CoF" true
    (List.mem (Watchers.Bad_router 3) original || original = []);
  ignore improved

let test_watchers_silent_pair_flaw_and_fix () =
  (* The exact flaw scenario: c inflates, d honest-but-silent.  The link
     counters disagree, both ends stay silent; original = blind,
     improved = bystanders detect the link. *)
  let rt = Rt.compute (Gen.line ~n:6) in
  let lies r = if r = 2 then `Inflate_sent 3 else if r = 3 then `Silent else `Honest in
  let c = Watchers.collect ~rt ~drops:(fun r ~next -> r = 2 && next = 3) ~lies () in
  let original = Watchers.detect ~improved:false c in
  let improved = Watchers.detect ~improved:true c in
  Alcotest.(check bool) "original detects nothing at all" true (original = []);
  Alcotest.(check bool) "improved catches the link" true
    (List.mem (Watchers.Bad_link (2, 3)) improved)

let test_watchers_cof_threshold () =
  let rt = Rt.compute (Gen.line ~n:5) in
  let c = Watchers.collect ~rt ~drops:(drops_from 2) ~lies:honest_lies () in
  (* A huge slack hides the CoF failure (the §6.1.1 threshold problem). *)
  let detections = Watchers.detect ~threshold:1_000_000 c in
  Alcotest.(check bool) "threshold masks" false
    (List.mem (Watchers.Bad_router 2) detections)

let test_watchers_counters_scale () =
  let g = Gen.ebone_like () in
  let counters = Watchers.counters_per_router g in
  (* 7 * degree * n; mean degree 3.70, n = 87: mean ~2253. *)
  let mean =
    float_of_int (Array.fold_left ( + ) 0 counters) /. float_of_int (Array.length counters)
  in
  Alcotest.(check bool) (Printf.sprintf "mean %.0f in range" mean) true
    (mean > 1500.0 && mean < 3500.0)

let () =
  Alcotest.run "core"
    [ ( "summary",
        [ Alcotest.test_case "flow" `Quick test_summary_flow;
          Alcotest.test_case "content" `Quick test_summary_content;
          Alcotest.test_case "order/time" `Quick test_summary_order_and_time;
          Alcotest.test_case "remove/copy" `Quick test_summary_remove_copy;
          Alcotest.test_case "state ranking" `Quick test_summary_state_words_ranking ] );
      ( "validation",
        [ Alcotest.test_case "equal ok" `Quick test_tv_equal_ok;
          Alcotest.test_case "loss" `Quick test_tv_detects_loss;
          Alcotest.test_case "fabrication" `Quick test_tv_detects_fabrication;
          Alcotest.test_case "modification" `Quick test_tv_modification_is_loss_plus_fabrication;
          Alcotest.test_case "threshold" `Quick test_tv_threshold_tolerates_loss;
          Alcotest.test_case "flow policy" `Quick test_tv_flow_policy;
          Alcotest.test_case "order" `Quick test_tv_order;
          Alcotest.test_case "order vs loss" `Quick test_tv_order_ignores_losses;
          Alcotest.test_case "timeliness" `Quick test_tv_timeliness;
          Alcotest.test_case "lcs" `Quick test_lcs ] );
      ( "spec",
        [ Alcotest.test_case "accuracy" `Quick test_spec_accuracy;
          Alcotest.test_case "fault cluster" `Quick test_spec_fault_cluster;
          Alcotest.test_case "completeness" `Quick test_spec_completeness ] );
      ( "threshold",
        [ Alcotest.test_case "judgement" `Quick test_threshold_judgement;
          Alcotest.test_case "confusion" `Quick test_threshold_confusion;
          Alcotest.test_case "validation" `Quick test_threshold_validation ] );
      ( "watchers",
        [ Alcotest.test_case "clean" `Quick test_watchers_clean_network;
          Alcotest.test_case "honest dropper" `Quick test_watchers_honest_dropper_fails_cof;
          Alcotest.test_case "lying dropper" `Quick test_watchers_lying_dropper_fails_validation;
          Alcotest.test_case "consorting" `Quick test_watchers_consorting_flaw;
          Alcotest.test_case "flaw and fix" `Quick test_watchers_silent_pair_flaw_and_fix;
          Alcotest.test_case "cof threshold" `Quick test_watchers_cof_threshold;
          Alcotest.test_case "counter scale" `Quick test_watchers_counters_scale ] ) ]
