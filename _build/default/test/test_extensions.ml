(* Tests for the §7.4 issues made executable (ECMP multipath,
   TTL-invariant fingerprints, fragmentation) and stealth probing
   (§3.8). *)

open Core
open Netsim
module G = Topology.Graph
module Rt = Topology.Routing
module Ecmp = Topology.Ecmp

(* A diamond with two equal-cost branches between 1 and 4:
   0 -> 1 -> {2 | 3} -> 4 -> 5. *)
let diamond () =
  let g = G.create ~n:6 in
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 1;
  G.add_duplex g ~bw:1.25e6 ~delay:0.002 1 2;
  G.add_duplex g ~bw:1.25e6 ~delay:0.002 1 3;
  G.add_duplex g ~bw:1.25e6 ~delay:0.002 2 4;
  G.add_duplex g ~bw:1.25e6 ~delay:0.002 3 4;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 4 5;
  g

(* --- ECMP --- *)

let test_ecmp_candidates () =
  let e = Ecmp.compute (diamond ()) in
  Alcotest.(check (list int)) "two candidates" [ 2; 3 ] (Ecmp.candidates e 1 ~dst:5);
  Alcotest.(check (list int)) "single candidate" [ 1 ] (Ecmp.candidates e 0 ~dst:5);
  Alcotest.(check (list int)) "at destination" [] (Ecmp.candidates e 5 ~dst:5);
  Alcotest.(check int) "fanout" 2 (Ecmp.max_fanout e)

let test_ecmp_deterministic_and_splitting () =
  let e = Ecmp.compute (diamond ()) in
  let via flow = Option.get (Ecmp.next_hop e 1 ~dst:5 ~flow) in
  (* Deterministic per flow... *)
  for flow = 0 to 50 do
    Alcotest.(check int) "stable" (via flow) (via flow)
  done;
  (* ...and both branches are used across flows. *)
  let twos = List.length (List.filter (fun f -> via f = 2) (List.init 200 Fun.id)) in
  Alcotest.(check bool) (Printf.sprintf "split (%d/200 via 2)" twos) true
    (twos > 40 && twos < 160)

let test_ecmp_paths_valid () =
  let g = diamond () in
  let e = Ecmp.compute g in
  for flow = 0 to 20 do
    match Ecmp.path e ~src:0 ~dst:5 ~flow with
    | None -> Alcotest.fail "reachable"
    | Some p ->
        let rec adjacent = function
          | a :: (b :: _ as rest) ->
              if G.link g a b = None then Alcotest.fail "non-link hop";
              adjacent rest
          | _ -> ()
        in
        adjacent p;
        Alcotest.(check int) "length" 5 (List.length p)
  done

let test_ecmp_forwarding_matches_prediction () =
  (* Packets of each flow must traverse exactly the predicted branch. *)
  let g = diamond () in
  let e = Ecmp.compute g in
  let net = Net.create ~jitter_bound:0.0 g in
  Net.use_ecmp net e;
  let seen = Hashtbl.create 16 in
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with
      | Iface.Transmit_start pkt when ev.Net.router = 1 ->
          Hashtbl.replace seen pkt.Packet.flow ev.Net.next
      | _ -> ());
  let flows =
    List.map
      (fun _ -> Flow.cbr net ~src:0 ~dst:5 ~rate_pps:20.0 ~size:400 ~start:0.0 ~stop:1.0)
      (List.init 8 Fun.id)
  in
  Net.run net;
  List.iter
    (fun f ->
      let flow = Flow.flow_id f in
      let predicted = Option.get (Ecmp.next_hop e 1 ~dst:5 ~flow) in
      Alcotest.(check int)
        (Printf.sprintf "flow %d branch" flow)
        predicted
        (Option.value ~default:(-1) (Hashtbl.find_opt seen flow)))
    flows

let run_chi_on_ecmp ~predict_kind =
  let g = diamond () in
  let e = Ecmp.compute g in
  let rt = Rt.compute g in
  let net = Net.create ~seed:5 ~jitter_bound:100e-6 g in
  Net.use_ecmp net e;
  let predict =
    match predict_kind with
    | `Ecmp_aware -> Qmon.predict_of_ecmp e ~router:1
    | `Naive -> Qmon.predict_of_routing rt ~router:1
  in
  let config = { Chi.default_config with Chi.tau = 1.0; learning_rounds = 3 } in
  (* Monitor the queue on branch 1 -> 2. *)
  let chi = Chi.deploy ~net ~rt ~router:1 ~next:2 ~config ~predict () in
  List.iter
    (fun _ -> ignore (Flow.cbr net ~src:0 ~dst:5 ~rate_pps:120.0 ~size:400 ~start:0.0 ~stop:20.0))
    (List.init 10 Fun.id);
  Net.run ~until:20.0 net;
  Chi.alarms chi

let test_chi_under_ecmp_aware () =
  Alcotest.(check int) "ecmp-aware prediction: clean" 0
    (List.length (run_chi_on_ecmp ~predict_kind:`Ecmp_aware))

let test_chi_under_ecmp_naive () =
  (* §7.4.1's warning: predicting a single shortest path in an ECMP
     network misclassifies every flow hashed to the other branch. *)
  Alcotest.(check bool) "naive prediction: false alarms" true
    (run_chi_on_ecmp ~predict_kind:`Naive <> [])

(* --- TTL (§7.4.2) --- *)

let test_fingerprint_ttl_invariant () =
  let sim = Sim.create () in
  let key = Crypto_sim.Siphash.key_of_string "ttl" in
  let pkt = Packet.make ~sim ~src:0 ~dst:1 ~flow:0 ~size:100 Packet.Udp in
  let before = Packet.fingerprint key pkt in
  pkt.Packet.ttl <- pkt.Packet.ttl - 3;
  Alcotest.(check int64) "hop-invariant" before (Packet.fingerprint key pkt);
  pkt.Packet.payload <- 42L;
  Alcotest.(check bool) "payload-sensitive" true
    (not (Int64.equal before (Packet.fingerprint key pkt)))

(* --- Fragmentation (§7.4.4) --- *)

let test_fragmentation_mechanics () =
  let g = Topology.Generate.line ~n:3 in
  let net = Net.create ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  Router.set_mtu (Net.router net 1) (Some 500);
  let delivered = ref [] in
  Net.attach_app net ~node:2 (fun pkt -> delivered := pkt :: !delivered);
  Net.originate net (Packet.make ~sim:(Net.sim net) ~src:0 ~dst:2 ~flow:7 ~size:1400 Packet.Udp);
  Net.run net;
  Alcotest.(check int) "three fragments" 3 (List.length !delivered);
  Alcotest.(check int) "bytes conserved" 1400
    (List.fold_left (fun acc p -> acc + p.Packet.size) 0 !delivered)

let test_fragmentation_breaks_validation () =
  (* The §7.4.4 caveat, executable: a fragmenting router makes honest
     traffic fail conservation of content — every original fingerprint
     disappears and unknown fragment fingerprints appear. *)
  let g = Topology.Generate.line ~n:4 in
  let rt = Rt.compute g in
  let net = Net.create ~seed:3 ~jitter_bound:100e-6 g in
  Net.use_routing net rt;
  Router.set_mtu (Net.router net 1) (Some 500);
  let config = { Chi.default_config with Chi.tau = 1.0; learning_rounds = 2 } in
  let chi = Chi.deploy ~net ~rt ~router:1 ~next:2 ~config () in
  ignore (Flow.cbr net ~src:0 ~dst:3 ~rate_pps:50.0 ~size:1400 ~start:0.0 ~stop:10.0);
  Net.run ~until:10.0 net;
  let alarms = Chi.alarms chi in
  Alcotest.(check bool) "false alarms from fragmentation" true (alarms <> []);
  Alcotest.(check bool) "fabrication observed" true
    (List.exists (fun r -> r.Chi.fabricated > 0) alarms)

(* --- Stealth probing (§3.8) --- *)

let stealth_net () =
  let g = Topology.Generate.line ~n:4 in
  let net = Net.create ~seed:7 ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  net

let test_stealth_clean_path () =
  let net = stealth_net () in
  let key = Crypto_sim.Siphash.key_of_string "tunnel" in
  let p = Stealth.start ~net ~src:0 ~dst:3 ~flow:99 ~key ~start:0.0 ~stop:10.0 () in
  Net.run net;
  Alcotest.(check int) "all answered" (Stealth.sent p) (Stealth.answered p);
  Alcotest.(check bool) "available" true (Stealth.available p ~threshold:0.01)

let test_stealth_sees_flow_attack () =
  (* The attacker drops the tunnelled flow's packets; it cannot spare the
     probes because nothing distinguishes them. *)
  let net = stealth_net () in
  let key = Crypto_sim.Siphash.key_of_string "tunnel" in
  ignore (Flow.cbr net ~src:0 ~dst:3 ~rate_pps:50.0 ~size:1000 ~start:0.0 ~stop:10.0);
  Router.set_behavior (Net.router net 1)
    (Adversary.on_flows [ 99 ] (Adversary.drop_fraction ~seed:3 0.5));
  let p =
    Stealth.start ~net ~src:0 ~dst:3 ~flow:99 ~key ~interval:0.1 ~start:0.0 ~stop:10.0 ()
  in
  Net.run net;
  let rate = Stealth.loss_rate p in
  Alcotest.(check bool)
    (Printf.sprintf "probe loss %.2f tracks the 50%% data loss" rate)
    true
    (rate > 0.3 && rate < 0.9);
  Alcotest.(check bool) "unavailable" false (Stealth.available p ~threshold:0.05)

let test_naive_probing_evaded () =
  (* Contrast: recognizable Ping probes are spared by a discriminating
     attacker while the data dies — naive active probing reports a
     healthy path. *)
  let net = stealth_net () in
  let data = Flow.cbr net ~src:0 ~dst:3 ~rate_pps:50.0 ~size:1000 ~start:0.0 ~stop:10.0 in
  let delivered = Flow.delivered_counter net ~node:3 ~flow:(Flow.flow_id data) in
  Router.set_behavior (Net.router net 1) (fun ctx pkt ->
      match (ctx.Router.prev, pkt.Packet.proto) with
      | Some _, Packet.Udp -> Router.Drop
      | _ -> Router.Forward);
  let ping = Ping.start net ~src:0 ~dst:3 ~interval:0.1 ~start:0.0 ~stop:10.0 () in
  Net.run net;
  Alcotest.(check int) "pings unharmed" 0 (Ping.lost ping);
  Alcotest.(check int) "data annihilated" 0 (delivered ())

let setup_ext () =
  let g = G.create ~n:5 in
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 1 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 2 3;
  G.add_duplex g ~bw:1.25e6 ~delay:0.005 3 4;
  let net = Net.create ~seed:11 ~queue:(Net.Droptail 64000) ~jitter_bound:200e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  (net, rt)

(* --- Multicast (§7.4.3) --- *)

let multicast_net () =
  (* Star: source 0 -> hub 1 -> leaves 2,3,4. *)
  let g = G.create ~n:5 in
  G.add_duplex g 0 1;
  G.add_duplex g 1 2;
  G.add_duplex g 1 3;
  G.add_duplex g 1 4;
  let net = Net.create ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  let group = 77 in
  Net.add_multicast_route net ~router:0 ~group ~next_hops:[ 1 ] ~local:false;
  Net.add_multicast_route net ~router:1 ~group ~next_hops:[ 2; 3; 4 ] ~local:false;
  List.iter
    (fun leaf -> Net.add_multicast_route net ~router:leaf ~group ~next_hops:[] ~local:true)
    [ 2; 3; 4 ];
  (net, group)

let test_multicast_delivery () =
  let net, group = multicast_net () in
  let key = Crypto_sim.Siphash.key_of_string "mc" in
  let got = Array.make 5 [] in
  List.iter
    (fun leaf -> Net.attach_app net ~node:leaf (fun pkt -> got.(leaf) <- pkt :: got.(leaf)))
    [ 2; 3; 4 ];
  let pkt = Packet.make ~sim:(Net.sim net) ~src:0 ~dst:group ~flow:1 ~size:300 Packet.Udp in
  let fp = Packet.fingerprint key pkt in
  Net.originate net pkt;
  Net.run net;
  List.iter
    (fun leaf ->
      match got.(leaf) with
      | [ p ] ->
          Alcotest.(check int64)
            (Printf.sprintf "leaf %d same fingerprint" leaf)
            fp (Packet.fingerprint key p)
      | l -> Alcotest.failf "leaf %d got %d copies" leaf (List.length l))
    [ 2; 3; 4 ]

let test_multicast_breaks_naive_cof () =
  (* One packet in, three out: naive per-router conservation of flow
     reports a negative deficit at the duplicating hub — the §7.4.3
     accounting caveat. *)
  let net, group = multicast_net () in
  let flow = Core.Netflow.attach ~net () in
  for _ = 1 to 10 do
    Net.originate net
      (Packet.make ~sim:(Net.sim net) ~src:0 ~dst:group ~flow:1 ~size:300 Packet.Udp)
  done;
  Net.run net;
  Alcotest.(check int) "hub deficit = in - 3x out" (10 - 30)
    (Core.Netflow.conservation_deficit flow ~router:1)

let test_multicast_branch_pruning_attack () =
  (* A compromised hub silently prunes one branch; the other leaves keep
     receiving, so end-to-end checks at them see nothing. *)
  let net, group = multicast_net () in
  let got = Array.make 5 0 in
  List.iter
    (fun leaf -> Net.attach_app net ~node:leaf (fun _ -> got.(leaf) <- got.(leaf) + 1))
    [ 2; 3; 4 ];
  Router.set_behavior (Net.router net 1) (fun ctx _ ->
      if ctx.Router.next_hop = 3 then Router.Drop else Router.Forward);
  for _ = 1 to 10 do
    Net.originate net
      (Packet.make ~sim:(Net.sim net) ~src:0 ~dst:group ~flow:1 ~size:300 Packet.Udp)
  done;
  Net.run net;
  Alcotest.(check int) "leaf 2 fine" 10 got.(2);
  Alcotest.(check int) "leaf 3 starved" 0 got.(3);
  Alcotest.(check int) "leaf 4 fine" 10 got.(4)

(* --- Corruption (§4.2.1) --- *)

let test_corruption_drops_in_flight () =
  let g = Topology.Generate.line ~n:2 in
  let net = Net.create ~seed:8 ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  Net.set_link_corruption net ~src:0 ~dst:1 0.2;
  let corrupted = ref 0 and delivered = ref 0 in
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with Iface.Drop_corrupted _ -> incr corrupted | _ -> ());
  Net.attach_app net ~node:1 (fun _ -> incr delivered);
  let f = Flow.cbr net ~src:0 ~dst:1 ~rate_pps:100.0 ~size:400 ~start:0.0 ~stop:10.0 in
  Net.run net;
  Alcotest.(check int) "conservation" (Flow.sent f) (!corrupted + !delivered);
  let rate = float_of_int !corrupted /. float_of_int (Flow.sent f) in
  Alcotest.(check bool) (Printf.sprintf "rate %.2f near 0.2" rate) true
    (rate > 0.12 && rate < 0.28)

let test_min_suspicious_tolerates_corruption () =
  (* The ablation-5 dial as a unit test: one corrupted upstream link,
     min_suspicious 3, no attack: chi stays quiet. *)
  let net, rt = setup_ext () in
  Net.set_link_corruption net ~src:0 ~dst:3 1e-3;
  let config =
    { Chi.default_config with Chi.tau = 1.0; learning_rounds = 4; min_suspicious = 3 }
  in
  let chi = Chi.deploy ~net ~rt ~router:3 ~next:4 ~config () in
  List.iter (fun src -> ignore (Tcp.connect net ~src ~dst:4 ())) [ 0; 1; 2 ];
  Net.run ~until:30.0 net;
  Alcotest.(check int) "quiet despite corruption" 0 (List.length (Chi.alarms chi))

(* --- Conservation of order at packet level --- *)

let test_order_policy_sees_delay_attack () =
  (* A delaying router reorders packets without losing any: conservation
     of content passes, conservation of order fails (§2.4.1). *)
  let g = Topology.Generate.line ~n:3 in
  let net = Net.create ~seed:2 ~jitter_bound:0.0 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let key = Crypto_sim.Siphash.key_of_string "order" in
  let sent = Core.Summary.create Core.Summary.Order in
  let received = Core.Summary.create Core.Summary.Order in
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with
      | Iface.Delivered pkt when ev.Net.router = 0 && ev.Net.next = 1 ->
          Core.Summary.observe sent ~fp:(Packet.fingerprint key pkt)
            ~size:pkt.Packet.size ~time:ev.Net.time
      | Iface.Delivered pkt when ev.Net.router = 1 && ev.Net.next = 2 ->
          Core.Summary.observe received ~fp:(Packet.fingerprint key pkt)
            ~size:pkt.Packet.size ~time:ev.Net.time
      | _ -> ());
  Router.set_behavior (Net.router net 1)
    (Adversary.delay_fraction ~seed:3 ~delay:0.5 0.3);
  ignore (Flow.cbr net ~src:0 ~dst:2 ~rate_pps:40.0 ~size:300 ~start:0.0 ~stop:5.0);
  Net.run net;
  let v = Core.Validation.tv ~sent ~received () in
  Alcotest.(check (list int64)) "nothing lost" [] v.Core.Validation.missing;
  Alcotest.(check bool) "reordering detected" true (v.Core.Validation.reordered > 0)

let () =
  Alcotest.run "extensions"
    [ ( "ecmp",
        [ Alcotest.test_case "candidates" `Quick test_ecmp_candidates;
          Alcotest.test_case "deterministic split" `Quick test_ecmp_deterministic_and_splitting;
          Alcotest.test_case "paths valid" `Quick test_ecmp_paths_valid;
          Alcotest.test_case "forwarding matches prediction" `Quick
            test_ecmp_forwarding_matches_prediction;
          Alcotest.test_case "chi ecmp-aware" `Slow test_chi_under_ecmp_aware;
          Alcotest.test_case "chi naive prediction" `Slow test_chi_under_ecmp_naive ] );
      ( "ttl",
        [ Alcotest.test_case "fingerprint invariance" `Quick test_fingerprint_ttl_invariant ]
      );
      ( "fragmentation",
        [ Alcotest.test_case "mechanics" `Quick test_fragmentation_mechanics;
          Alcotest.test_case "breaks validation" `Quick test_fragmentation_breaks_validation
        ] );
      ( "multicast",
        [ Alcotest.test_case "delivery" `Quick test_multicast_delivery;
          Alcotest.test_case "naive CoF breaks" `Quick test_multicast_breaks_naive_cof;
          Alcotest.test_case "branch pruning" `Quick test_multicast_branch_pruning_attack ]
      );
      ( "corruption",
        [ Alcotest.test_case "in-flight drops" `Quick test_corruption_drops_in_flight;
          Alcotest.test_case "min_suspicious" `Slow test_min_suspicious_tolerates_corruption
        ] );
      ( "order",
        [ Alcotest.test_case "delay attack" `Quick test_order_policy_sees_delay_attack ] );
      ( "stealth",
        [ Alcotest.test_case "clean path" `Quick test_stealth_clean_path;
          Alcotest.test_case "flow attack seen" `Quick test_stealth_sees_flow_attack;
          Alcotest.test_case "naive probing evaded" `Quick test_naive_probing_evaded ] ) ]
