(* Packet-level baselines: NetFlow counters, WATCHERS-live (threshold
   weakness included), Perlman multipath robustness, and the §7.2 state
   accounting. *)

open Core
open Netsim
module G = Topology.Graph
module Rt = Topology.Routing

(* --- Netflow --- *)

let test_netflow_counts () =
  let g = Topology.Generate.line ~n:4 in
  let net = Net.create ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  let flow = Netflow.attach ~net () in
  let f = Flow.cbr net ~src:0 ~dst:3 ~rate_pps:50.0 ~size:400 ~start:0.0 ~stop:2.0 in
  Net.run net;
  let n = Flow.sent f in
  Alcotest.(check int) "router 1 received from 0" n
    (Netflow.received flow ~router:1 ~from_:0 ~dst:3);
  Alcotest.(check int) "router 1 sent to 2" n (Netflow.sent flow ~router:1 ~to_:2 ~dst:3);
  Alcotest.(check int) "originated at 0" n (Netflow.originated flow ~router:0 ~dst:3);
  Alcotest.(check int) "consumed at 3" n (Netflow.consumed flow ~router:3);
  Alcotest.(check int) "no deficit at 1" 0 (Netflow.conservation_deficit flow ~router:1);
  Alcotest.(check int) "no deficit at 2" 0 (Netflow.conservation_deficit flow ~router:2)

let test_netflow_deficit_counts_drops () =
  let g = Topology.Generate.line ~n:4 in
  let net = Net.create ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  let flow = Netflow.attach ~net () in
  let malicious = ref 0 in
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with Router.Malicious_drop _ -> incr malicious | _ -> ());
  Router.set_behavior (Net.router net 1) (Adversary.drop_fraction ~seed:3 0.3);
  ignore (Flow.cbr net ~src:0 ~dst:3 ~rate_pps:50.0 ~size:400 ~start:0.0 ~stop:2.0);
  Net.run net;
  Alcotest.(check int) "deficit equals the drops" !malicious
    (Netflow.conservation_deficit flow ~router:1)

(* --- Watchers live --- *)

let watchers_net ?(attack = None) ?(congested = false) () =
  let g = Topology.Generate.ring ~n:5 in
  let net = Net.create ~seed:4 ~jitter_bound:100e-6 g in
  Net.use_routing net (Rt.compute g);
  let w = Watchers_live.deploy ~net ~tau:2.0 () in
  List.iter
    (fun (s, d) ->
      ignore (Flow.cbr net ~src:s ~dst:d ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:40.0))
    [ (0, 2); (2, 0); (1, 3); (3, 1) ];
  if congested then
    (* Overload one link so congestion drops pollute the deficit. *)
    ignore (Flow.cbr net ~src:0 ~dst:2 ~rate_pps:4000.0 ~size:1000 ~start:10.0 ~stop:40.0);
  (match attack with
  | Some (router, fraction) ->
      Router.set_behavior (Net.router net router)
        (Adversary.after 10.0 (Adversary.drop_fraction ~seed:5 fraction))
  | None -> ());
  Net.run ~until:40.0 net;
  w

let test_watchers_live_quiet () =
  let w = watchers_net () in
  Alcotest.(check (list int)) "no suspects" [] (Watchers_live.suspected_routers w)

let test_watchers_live_detects () =
  let w = watchers_net ~attack:(Some (1, 0.5)) () in
  Alcotest.(check (list int)) "attacker suspected" [ 1 ]
    (Watchers_live.suspected_routers w)

let test_watchers_live_congestion_false_positive () =
  (* The §6.1.1 weakness, live: congestion drops at the bottleneck push
     an honest router's deficit over the threshold. *)
  let w = watchers_net ~congested:true () in
  Alcotest.(check bool) "honest router accused under congestion" true
    (Watchers_live.suspected_routers w <> [])

let test_watchers_live_subthreshold_attack_hides () =
  (* An attacker dropping a trickle stays under the 25-packet round
     budget. *)
  let w = watchers_net ~attack:(Some (1, 0.02)) () in
  Alcotest.(check (list int)) "hidden" [] (Watchers_live.suspected_routers w)

(* --- Perlman live --- *)

let ring_net () =
  let g = Topology.Generate.ring ~n:6 in
  let net = Net.create ~seed:2 ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  net

let test_perlman_live_paths_disjoint () =
  let net = ring_net () in
  let p = Perlman_live.create ~net ~src:0 ~dst:3 ~f:1 in
  match Perlman_live.paths p with
  | [ a; b ] ->
      let interior l = List.filter (fun v -> v <> 0 && v <> 3) l in
      let shared =
        List.filter (fun v -> List.mem v (interior b)) (interior a)
      in
      Alcotest.(check (list int)) "disjoint" [] shared
  | ps -> Alcotest.failf "expected 2 paths, got %d" (List.length ps)

let test_perlman_live_survives_one_fault () =
  let net = ring_net () in
  let p = Perlman_live.create ~net ~src:0 ~dst:3 ~f:1 in
  (* Router 1 annihilates everything it forwards. *)
  Router.set_behavior (Net.router net 1) Adversary.drop_all;
  let sim = Net.sim net in
  for i = 0 to 19 do
    Sim.schedule sim ~delay:(0.1 *. float_of_int i) (fun () ->
        Perlman_live.send p ~size:500)
  done;
  Net.run net;
  Alcotest.(check int) "every message delivered" (Perlman_live.sent p)
    (Perlman_live.delivered p);
  (* Half the copies died with router 1. *)
  Alcotest.(check int) "only one copy per message" (Perlman_live.sent p)
    (Perlman_live.copies_received p)

let test_perlman_live_overwhelmed () =
  (* Faults on both disjoint paths beat f = 1 (robustness is not
     detection: nothing is even suspected). *)
  let net = ring_net () in
  let p = Perlman_live.create ~net ~src:0 ~dst:3 ~f:1 in
  Router.set_behavior (Net.router net 1) Adversary.drop_all;
  Router.set_behavior (Net.router net 5) Adversary.drop_all;
  Perlman_live.send p ~size:500;
  Net.run net;
  Alcotest.(check int) "nothing delivered" 0 (Perlman_live.delivered p)

let test_perlman_live_needs_diversity () =
  let g = Topology.Generate.line ~n:4 in
  let net = Net.create g in
  Net.use_routing net (Rt.compute g);
  Alcotest.(check bool) "raises without diversity" true
    (try
       ignore (Perlman_live.create ~net ~src:0 ~dst:3 ~f:1);
       false
     with Invalid_argument _ -> true)

let test_pin_flow_path () =
  let net = ring_net () in
  (* Pin a flow the long way round and check the hops taken. *)
  Net.pin_flow_path net ~flow:4242 ~path:[ 0; 5; 4; 3 ];
  let hops = ref [] in
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with
      | Iface.Transmit_start pkt when pkt.Packet.flow = 4242 ->
          hops := ev.Net.router :: !hops
      | _ -> ());
  Net.originate net
    (Packet.make ~sim:(Net.sim net) ~src:0 ~dst:3 ~flow:4242 ~size:100 Packet.Udp);
  Net.run net;
  Alcotest.(check (list int)) "pinned route" [ 0; 5; 4 ] (List.rev !hops)

(* --- State size accounting --- *)

let test_summary_bytes_ranking () =
  let b p = State_size.summary_bytes ~policy:p ~packets_per_round:1000 in
  Alcotest.(check int) "flow constant" 16 (b Summary.Flow);
  Alcotest.(check int) "content" (8 * 1002) (b Summary.Content);
  Alcotest.(check int) "timed doubles" (8 * 2002) (b Summary.Timeliness);
  Alcotest.(check bool) "ordering" true
    (b Summary.Flow < b Summary.Content && b Summary.Content < b Summary.Timeliness)

let test_protocol_bytes_consistency () =
  let rt = Rt.compute (Topology.Generate.ebone_like ()) in
  let pi2 =
    State_size.pi2_router_bytes ~rt ~k:2 ~policy:Summary.Flow ~pps_per_segment:100.0
      ~tau:5.0
  in
  let watchers = State_size.watchers_router_bytes (Rt.graph rt) in
  let mean a = Array.fold_left ( + ) 0 a / Array.length a in
  (* Under conservation of flow, both are counter-sized; WATCHERS is per
     destination and dwarfs Π2. *)
  Alcotest.(check bool) "watchers heavier" true (mean watchers > mean pi2);
  (* Under conservation of content the summaries dominate. *)
  let pi2_content =
    State_size.pi2_router_bytes ~rt ~k:2 ~policy:Summary.Content ~pps_per_segment:100.0
      ~tau:5.0
  in
  Alcotest.(check bool) "content >> flow" true (mean pi2_content > 100 * mean pi2)

let () =
  Alcotest.run "live-baselines"
    [ ( "netflow",
        [ Alcotest.test_case "counts" `Quick test_netflow_counts;
          Alcotest.test_case "deficit" `Quick test_netflow_deficit_counts_drops ] );
      ( "watchers-live",
        [ Alcotest.test_case "quiet" `Quick test_watchers_live_quiet;
          Alcotest.test_case "detects" `Quick test_watchers_live_detects;
          Alcotest.test_case "congestion FP" `Quick test_watchers_live_congestion_false_positive;
          Alcotest.test_case "subthreshold hides" `Quick
            test_watchers_live_subthreshold_attack_hides ] );
      ( "perlman-live",
        [ Alcotest.test_case "disjoint" `Quick test_perlman_live_paths_disjoint;
          Alcotest.test_case "survives f" `Quick test_perlman_live_survives_one_fault;
          Alcotest.test_case "overwhelmed" `Quick test_perlman_live_overwhelmed;
          Alcotest.test_case "needs diversity" `Quick test_perlman_live_needs_diversity;
          Alcotest.test_case "pin path" `Quick test_pin_flow_path ] );
      ( "state-size",
        [ Alcotest.test_case "summary bytes" `Quick test_summary_bytes_ranking;
          Alcotest.test_case "protocol bytes" `Quick test_protocol_bytes_consistency ] ) ]
