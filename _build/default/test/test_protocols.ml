(* Tests for Protocol Π2 and Protocol Πk+2 over the abstract round
   engine, including the Appendix B accuracy/completeness properties as
   randomized property tests. *)

open Core
module Gen = Topology.Generate
module Rt = Topology.Routing


(* --- Rounds engine --- *)

let test_observe_clean () =
  let rt = Rt.compute (Gen.line ~n:4) in
  let segments = Pi2.family rt ~k:1 in
  let obs =
    Rounds.observe ~rt ~segments ~adversary:(Rounds.passive []) ~packets_per_path:5
      ~round:0 ()
  in
  Alcotest.(check int) "no drops" 0 (List.length obs.Rounds.dropped_by);
  List.iter
    (fun (_, summaries) ->
      let first = Summary.packets summaries.(0) in
      Array.iter
        (fun s -> Alcotest.(check int) "conserved" first (Summary.packets s))
        summaries)
    obs.Rounds.truth

let test_observe_dropper () =
  let rt = Rt.compute (Gen.line ~n:4) in
  let segments = Pi2.family rt ~k:1 in
  let adversary = Rounds.dropper [ 1 ] in
  let obs = Rounds.observe ~rt ~segments ~adversary ~packets_per_path:5 ~round:0 () in
  (match obs.Rounds.dropped_by with
  | [ (1, n) ] -> Alcotest.(check bool) "router 1 dropped" true (n > 0)
  | _ -> Alcotest.fail "expected drops only at router 1");
  (* The 0-1-2 segment must show the loss between positions 0 and 1. *)
  let _, summaries = List.find (fun (s, _) -> s = [ 0; 1; 2 ]) obs.Rounds.truth in
  Alcotest.(check bool) "loss visible" true
    (Summary.packets summaries.(1) < Summary.packets summaries.(0))

let test_observe_partial_dropper () =
  let rt = Rt.compute (Gen.line ~n:4) in
  let segments = Pi2.family rt ~k:1 in
  let adversary = Rounds.dropper ~fraction:0.5 ~seed:3 [ 1 ] in
  let obs = Rounds.observe ~rt ~segments ~adversary ~packets_per_path:200 ~round:0 () in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 obs.Rounds.dropped_by in
  (* Router 1 transits 4 directed paths with 200 packets each. *)
  Alcotest.(check bool) (Printf.sprintf "about half dropped (%d)" total) true
    (total > 250 && total < 550)

let test_adjacent_fault_bound () =
  let rt = Rt.compute (Gen.line ~n:6) in
  Alcotest.(check int) "no faults" 0 (Rounds.adjacent_fault_bound ~rt ~faulty:[]);
  Alcotest.(check int) "single" 1 (Rounds.adjacent_fault_bound ~rt ~faulty:[ 2 ]);
  Alcotest.(check int) "adjacent pair" 2 (Rounds.adjacent_fault_bound ~rt ~faulty:[ 2; 3 ]);
  Alcotest.(check int) "separated" 1 (Rounds.adjacent_fault_bound ~rt ~faulty:[ 1; 4 ])

(* --- Π2 --- *)

let test_pi2_clean_no_suspicion () =
  let rt = Rt.compute (Gen.ring ~n:6) in
  let segs = Pi2.detect_round ~rt ~k:1 ~adversary:(Rounds.passive []) ~round:0 () in
  Alcotest.(check int) "silent" 0 (List.length segs)

let test_pi2_detects_dropper_with_precision_2 () =
  let rt = Rt.compute (Gen.line ~n:5) in
  let segs = Pi2.detect_round ~rt ~k:1 ~adversary:(Rounds.dropper [ 2 ]) ~round:0 () in
  Alcotest.(check bool) "something suspected" true (segs <> []);
  List.iter
    (fun s ->
      Alcotest.(check int) "precision 2" 2 (List.length s);
      Alcotest.(check bool) "contains the dropper" true (List.mem 2 s))
    segs

let test_pi2_detects_modifier () =
  let rt = Rt.compute (Gen.line ~n:5) in
  let segs = Pi2.detect_round ~rt ~k:1 ~adversary:(Rounds.modifier [ 3 ]) ~round:0 () in
  Alcotest.(check bool) "detected" true (List.exists (List.mem 3) segs)

let test_pi2_hider_still_caught () =
  (* A dropper that misreports (echoes upstream) shifts the blame pair
     downstream but is still inside every suspected segment. *)
  let rt = Rt.compute (Gen.line ~n:5) in
  let adversary = Rounds.hider (Rounds.dropper [ 2 ]) in
  let segs = Pi2.detect_round ~rt ~k:1 ~adversary ~round:0 () in
  Alcotest.(check bool) "still detected" true (segs <> []);
  List.iter
    (fun s -> Alcotest.(check bool) "accurate" true (List.mem 2 s))
    segs

let test_pi2_adjacent_pair_k2 () =
  let rt = Rt.compute (Gen.line ~n:6) in
  let adversary = Rounds.hider (Rounds.dropper [ 2; 3 ]) in
  let segs = Pi2.detect_round ~rt ~k:2 ~adversary ~round:0 () in
  Alcotest.(check bool) "detected" true (segs <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "accurate (contains 2 or 3)" true
        (List.mem 2 s || List.mem 3 s))
    segs

let test_pi2_full_detect_properties () =
  let g = Gen.line ~n:5 in
  let rt = Rt.compute g in
  let adversary = Rounds.dropper [ 2 ] in
  let suspicions = Pi2.detect ~rt ~k:1 ~adversary ~rounds:2 () in
  let faulty r = r = 2 in
  Alcotest.(check bool) "2-accurate" true
    (Spec.accurate ~faulty ~a:2 suspicions = Ok ());
  Alcotest.(check bool) "complete" true
    (Spec.complete ~graph:g ~faulty ~traffic_faulty:[ 2 ]
       ~correct_routers:(Rounds.correct_routers g ~faulty:[ 2 ])
       suspicions
    = Ok ());
  Alcotest.(check int) "precision" 2 (Spec.precision suspicions)

let test_pi2_state_counters () =
  let rt = Rt.compute (Gen.line ~n:5) in
  let counters = Pi2.state_counters rt ~k:1 in
  Alcotest.(check int) "middle router" 6 counters.(2);
  Alcotest.(check int) "edge router" 2 counters.(0)

(* --- Πk+2 --- *)

let test_pik2_clean_no_suspicion () =
  let rt = Rt.compute (Gen.ring ~n:6) in
  let segs = Pik2.detect_round ~rt ~k:1 ~adversary:(Rounds.passive []) ~round:0 () in
  Alcotest.(check int) "silent" 0 (List.length segs)

let test_pik2_detects_dropper () =
  let rt = Rt.compute (Gen.line ~n:5) in
  let segs = Pik2.detect_round ~rt ~k:1 ~adversary:(Rounds.dropper [ 2 ]) ~round:0 () in
  Alcotest.(check bool) "detected" true (segs <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "length <= 3" true (List.length s <= 3);
      Alcotest.(check bool) "contains dropper" true (List.mem 2 s))
    segs

let test_pik2_blocked_exchange_is_suspected () =
  let rt = Rt.compute (Gen.line ~n:5) in
  let adversary =
    { (Rounds.passive [ 2 ]) with Rounds.blocks_exchange = (fun r -> r = 2) }
  in
  let segs = Pik2.detect_round ~rt ~k:1 ~adversary ~round:0 () in
  Alcotest.(check bool) "timeout detected" true (List.exists (List.mem 2) segs)

let test_pik2_faulty_end_cannot_hide_globally () =
  (* k = 2, faulty pair {2,3}: segment ⟨1,2,3⟩ has faulty end 3 which
     echoes to hide, but ⟨1,2,3,4⟩ has correct ends 1,4 and exposes the
     drops. *)
  let g = Gen.line ~n:6 in
  let rt = Rt.compute g in
  let adversary = Rounds.hider (Rounds.dropper [ 2; 3 ]) in
  let suspicions = Pik2.detect ~rt ~k:2 ~adversary ~rounds:1 () in
  let faulty r = r = 2 || r = 3 in
  Alcotest.(check bool) "caught" true (suspicions <> []);
  Alcotest.(check bool) "(k+2)-accurate" true
    (Spec.accurate ~faulty ~a:4 suspicions = Ok ());
  Alcotest.(check bool) "complete" true
    (Spec.complete ~graph:g ~faulty ~traffic_faulty:[ 2; 3 ]
       ~correct_routers:(Rounds.correct_routers g ~faulty:[ 2; 3 ])
       suspicions
    = Ok ())

let test_pik2_sampling_still_detects_full_drop () =
  let rt = Rt.compute (Gen.line ~n:5) in
  let sampling =
    Crypto_sim.Sampling.create
      ~key:(Crypto_sim.Siphash.key_of_string "pik2-test") ~fraction:0.5
  in
  let segs =
    Pik2.detect_round ~rt ~k:1 ~adversary:(Rounds.dropper [ 2 ]) ~sampling
      ~packets_per_path:100 ~round:0 ()
  in
  Alcotest.(check bool) "detected from samples" true (List.exists (List.mem 2) segs)

let test_pik2_state_cheaper_than_pi2 () =
  (* §5.1.1/§5.2.1: both protocols keep far less state than WATCHERS, and
     Πk+2's worst-case per-router segment count stays near N while Π2's
     explodes with k (Figs 5.2 vs 5.4). *)
  let rt = Rt.compute (Gen.ebone_like ()) in
  let mean a =
    float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int (Array.length a)
  in
  let maxi a = Array.fold_left max 0 a in
  let pi2_max = maxi (Pi2.state_counters rt ~k:6) in
  let pik2_max = maxi (Pik2.state_counters rt ~k:6) in
  Alcotest.(check bool)
    (Printf.sprintf "pi2 max %d explodes vs pik2 max %d" pi2_max pik2_max)
    true
    (pi2_max > 2 * pik2_max);
  let pi2 = mean (Pi2.state_counters rt ~k:2) in
  let pik2 = mean (Pik2.state_counters rt ~k:2) in
  let watchers = mean (Watchers.counters_per_router (Rt.graph rt)) in
  Alcotest.(check bool)
    (Printf.sprintf "pik2 %.0f and pi2 %.0f << watchers %.0f" pik2 pi2 watchers)
    true
    (pik2 < watchers /. 4.0 && pi2 < watchers /. 4.0)

(* --- Appendix B property tests --- *)

(* Random scenario: an ISP-like topology, a faulty set respecting
   AdjacentFault(k), a dropper (optionally hiding). *)
let scenario_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 8 16 in
      let* seed = int_bound 10_000 in
      let* f1 = int_range 1 (n - 2) in
      let* hide = bool in
      return (n, seed, f1, hide))

let run_protocol ~detect (n, seed, f1, hide) =
  let g = Gen.ispish ~seed ~n ~duplex_links:(2 * n) ~max_degree:n () in
  let rt = Rt.compute g in
  let base = Rounds.dropper ~seed [ f1 ] in
  let adversary = if hide then Rounds.hider base else base in
  let k = max 1 (Rounds.adjacent_fault_bound ~rt ~faulty:[ f1 ]) in
  let suspicions = detect ~rt ~k ~adversary in
  (g, rt, k, suspicions)

let prop_pi2_accuracy =
  QCheck.Test.make ~name:"pi2 accuracy (B.2)" ~count:25 scenario_gen (fun sc ->
      let _, _, _, suspicions =
        run_protocol sc ~detect:(fun ~rt ~k ~adversary ->
            Pi2.detect ~rt ~k ~adversary ~rounds:1 ())
      in
      let _, _, f1, _ = sc in
      Spec.accurate ~faulty:(fun r -> r = f1) ~a:2 suspicions = Ok ())

let prop_pi2_completeness =
  QCheck.Test.make ~name:"pi2 completeness (B.2)" ~count:25 scenario_gen (fun sc ->
      let g, rt, _, suspicions =
        run_protocol sc ~detect:(fun ~rt ~k ~adversary ->
            Pi2.detect ~rt ~k ~adversary ~rounds:1 ())
      in
      let _, _, f1, _ = sc in
      (* Only meaningful when the faulty router actually transits traffic. *)
      let transits =
        List.exists
          (fun p -> match p with _ :: rest -> List.mem f1 (List.filteri (fun i _ -> i < List.length rest - 1) rest) | [] -> false)
          (Rt.all_routed_paths rt)
      in
      (not transits)
      || Spec.complete ~graph:g ~faulty:(fun r -> r = f1) ~traffic_faulty:[ f1 ]
           ~correct_routers:(Rounds.correct_routers g ~faulty:[ f1 ])
           suspicions
         = Ok ())

let prop_pik2_accuracy =
  QCheck.Test.make ~name:"pik2 accuracy (B.3)" ~count:25 scenario_gen (fun sc ->
      let _, _, k, suspicions =
        run_protocol sc ~detect:(fun ~rt ~k ~adversary ->
            Pik2.detect ~rt ~k ~adversary ~rounds:1 ())
      in
      let _, _, f1, _ = sc in
      Spec.accurate ~faulty:(fun r -> r = f1) ~a:(k + 2) suspicions = Ok ())

let prop_pik2_completeness =
  QCheck.Test.make ~name:"pik2 completeness (B.3)" ~count:25 scenario_gen (fun sc ->
      let g, rt, _, suspicions =
        run_protocol sc ~detect:(fun ~rt ~k ~adversary ->
            Pik2.detect ~rt ~k ~adversary ~rounds:1 ())
      in
      let _, _, f1, _ = sc in
      let transits =
        List.exists
          (fun p ->
            match p with
            | _ :: rest ->
                List.mem f1 (List.filteri (fun i _ -> i < List.length rest - 1) rest)
            | [] -> false)
          (Rt.all_routed_paths rt)
      in
      (not transits)
      || Spec.complete ~graph:g ~faulty:(fun r -> r = f1) ~traffic_faulty:[ f1 ]
           ~correct_routers:(Rounds.correct_routers g ~faulty:[ f1 ])
           suspicions
         = Ok ())

let prop_pik2_adjacent_pair =
  (* Adjacent faulty pairs with hiding + exchange blocking: Πk+2 with
     k = 2 stays accurate and complete (B.3's harder case). *)
  QCheck.Test.make ~name:"pik2 adjacent colluders (B.3)" ~count:15
    QCheck.(pair (int_range 10 16) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Gen.ispish ~seed ~n ~duplex_links:(2 * n) ~max_degree:n () in
      let rt = Rt.compute g in
      (* Pick an adjacent pair that transits traffic. *)
      let pair =
        List.find_map
          (fun p ->
            match p with
            | _ :: a :: b :: _ :: _ -> Some (a, b)
            | _ -> None)
          (Rt.all_routed_paths rt)
      in
      match pair with
      | None -> true
      | Some (a, b) ->
          let faulty = [ a; b ] in
          let k = max 2 (Rounds.adjacent_fault_bound ~rt ~faulty) in
          if k > 3 then true (* exotic clustering; out of scope for this property *)
          else begin
            let adversary =
              { (Rounds.hider (Rounds.dropper ~seed faulty)) with
                Rounds.blocks_exchange = (fun r -> r = a) }
            in
            let suspicions = Pik2.detect ~rt ~k ~adversary ~rounds:1 () in
            let is_faulty r = List.mem r faulty in
            Spec.accurate ~faulty:is_faulty ~a:(k + 2) suspicions = Ok ()
            && Spec.complete ~graph:g ~faulty:is_faulty ~traffic_faulty:faulty
                 ~correct_routers:(Rounds.correct_routers g ~faulty)
                 suspicions
               = Ok ()
          end)

let prop_pi2_protocol_faulty_only =
  (* A router that lies about its summaries without touching traffic:
     Π2's suspicions still contain it (accuracy), and no correct pair is
     ever framed. *)
  QCheck.Test.make ~name:"pi2 liar-only accuracy" ~count:20
    QCheck.(pair (int_range 8 14) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Gen.ispish ~seed ~n ~duplex_links:(2 * n) ~max_degree:n () in
      let rt = Rt.compute g in
      let liar = 1 + (seed mod (n - 2)) in
      let adversary =
        { (Rounds.passive [ liar ]) with
          Rounds.misreport =
            (fun ~router ~pos ~truth ->
              if router = liar then begin
                (* Under-report: erase half the fingerprints. *)
                let s = Summary.copy truth.(pos) in
                List.iteri
                  (fun i fp -> if i mod 2 = 0 then Summary.remove s fp)
                  (Summary.fingerprints s);
                s
              end
              else truth.(pos)) }
      in
      let segs = Pi2.detect_round ~rt ~k:1 ~adversary ~round:0 () in
      List.for_all (List.mem liar) segs)

let prop_no_false_positives =
  (* Accuracy in the absence of any fault: neither protocol ever suspects
     anything. *)
  QCheck.Test.make ~name:"no faults, no suspicions" ~count:20
    QCheck.(pair (int_range 8 14) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Gen.ispish ~seed ~n ~duplex_links:(2 * n) ~max_degree:n () in
      let rt = Rt.compute g in
      Pi2.detect_round ~rt ~k:1 ~adversary:(Rounds.passive []) ~round:0 () = []
      && Pik2.detect_round ~rt ~k:1 ~adversary:(Rounds.passive []) ~round:0 () = [])

let () =
  Alcotest.run "protocols"
    [ ( "rounds",
        [ Alcotest.test_case "clean observation" `Quick test_observe_clean;
          Alcotest.test_case "dropper" `Quick test_observe_dropper;
          Alcotest.test_case "partial dropper" `Quick test_observe_partial_dropper;
          Alcotest.test_case "adjacent fault bound" `Quick test_adjacent_fault_bound ] );
      ( "pi2",
        [ Alcotest.test_case "clean" `Quick test_pi2_clean_no_suspicion;
          Alcotest.test_case "dropper precision 2" `Quick test_pi2_detects_dropper_with_precision_2;
          Alcotest.test_case "modifier" `Quick test_pi2_detects_modifier;
          Alcotest.test_case "hider" `Quick test_pi2_hider_still_caught;
          Alcotest.test_case "adjacent pair" `Quick test_pi2_adjacent_pair_k2;
          Alcotest.test_case "spec properties" `Quick test_pi2_full_detect_properties;
          Alcotest.test_case "state counters" `Quick test_pi2_state_counters ] );
      ( "pik2",
        [ Alcotest.test_case "clean" `Quick test_pik2_clean_no_suspicion;
          Alcotest.test_case "dropper" `Quick test_pik2_detects_dropper;
          Alcotest.test_case "blocked exchange" `Quick test_pik2_blocked_exchange_is_suspected;
          Alcotest.test_case "faulty end" `Quick test_pik2_faulty_end_cannot_hide_globally;
          Alcotest.test_case "sampling" `Quick test_pik2_sampling_still_detects_full_drop;
          Alcotest.test_case "state comparison" `Quick test_pik2_state_cheaper_than_pi2 ] );
      ( "appendix-b",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pi2_accuracy; prop_pi2_completeness; prop_pik2_accuracy;
            prop_pik2_completeness; prop_pik2_adjacent_pair;
            prop_pi2_protocol_faulty_only; prop_no_false_positives ] ) ]
