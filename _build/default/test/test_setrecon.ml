(* Tests for the setrecon substrate: GF(p) arithmetic, polynomials,
   Cantor-Zassenhaus root finding, the Appendix A reconciliation
   algorithm, and Bloom filters. *)

open Setrecon

let rng () = Random.State.make [| 1234 |]

(* --- Gfp --- *)

let test_gfp_basics () =
  Alcotest.(check int) "add wraps" 0 (Gfp.add (Gfp.p - 1) 1);
  Alcotest.(check int) "sub wraps" (Gfp.p - 1) (Gfp.sub 0 1);
  Alcotest.(check int) "neg" (Gfp.p - 5) (Gfp.neg 5);
  Alcotest.(check int) "neg zero" 0 (Gfp.neg 0);
  Alcotest.(check int) "of_int negative" (Gfp.p - 3) (Gfp.of_int (-3))

let test_gfp_inverse () =
  let st = rng () in
  for _ = 1 to 200 do
    let a = 1 + Random.State.full_int st (Gfp.p - 1) in
    Alcotest.(check int) "a * inv a = 1" 1 (Gfp.mul a (Gfp.inv a))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Gfp.inv 0))

let test_gfp_pow () =
  Alcotest.(check int) "a^0" 1 (Gfp.pow 12345 0);
  Alcotest.(check int) "a^1" 12345 (Gfp.pow 12345 1);
  Alcotest.(check int) "a^2" (Gfp.mul 12345 12345) (Gfp.pow 12345 2);
  (* Fermat: a^(p-1) = 1. *)
  Alcotest.(check int) "fermat" 1 (Gfp.pow 987654321 (Gfp.p - 1))

let test_gfp_of_int64 () =
  let x = Gfp.of_int64 Int64.max_int in
  Alcotest.(check bool) "in range" true (x >= 0 && x < Gfp.p);
  Alcotest.(check bool) "negative mapped" true
    (let y = Gfp.of_int64 (-42L) in
     y >= 0 && y < Gfp.p)

(* --- Poly --- *)

let test_poly_normalize () =
  Alcotest.(check int) "trailing zeros dropped" 1 (Poly.degree (Poly.of_coeffs [ 1; 2; 0; 0 ]));
  Alcotest.(check bool) "zero poly" true (Poly.is_zero (Poly.of_coeffs [ 0; 0 ]));
  Alcotest.(check int) "zero degree" (-1) (Poly.degree Poly.zero)

let test_poly_arith () =
  let a = Poly.of_coeffs [ 1; 2; 3 ] in
  let b = Poly.of_coeffs [ 5; 1 ] in
  Alcotest.(check bool) "add" true (Poly.equal (Poly.add a b) (Poly.of_coeffs [ 6; 3; 3 ]));
  Alcotest.(check bool) "sub roundtrip" true (Poly.equal (Poly.sub (Poly.add a b) b) a);
  (* (x+2)(x+3) = x^2 + 5x + 6 *)
  let prod = Poly.mul (Poly.of_coeffs [ 2; 1 ]) (Poly.of_coeffs [ 3; 1 ]) in
  Alcotest.(check bool) "mul" true (Poly.equal prod (Poly.of_coeffs [ 6; 5; 1 ]))

let test_poly_divmod () =
  let a = Poly.of_coeffs [ 7; 0; 2; 1 ] in
  let b = Poly.of_coeffs [ 1; 1 ] in
  let q, r = Poly.divmod a b in
  Alcotest.(check bool) "a = q*b + r" true (Poly.equal a (Poly.add (Poly.mul q b) r));
  Alcotest.(check bool) "deg r < deg b" true (Poly.degree r < Poly.degree b);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Poly.divmod a Poly.zero))

let test_poly_eval_roots () =
  let f = Poly.from_roots [ 3; 17; 100000 ] in
  Alcotest.(check int) "degree" 3 (Poly.degree f);
  Alcotest.(check int) "root 3" 0 (Poly.eval f 3);
  Alcotest.(check int) "root 17" 0 (Poly.eval f 17);
  Alcotest.(check int) "root 100000" 0 (Poly.eval f 100000);
  Alcotest.(check bool) "non-root" true (Poly.eval f 4 <> 0);
  Alcotest.(check int) "monic" 1 (Poly.leading f)

let test_poly_gcd () =
  let a = Poly.from_roots [ 1; 2; 3 ] in
  let b = Poly.from_roots [ 2; 3; 4 ] in
  let g = Poly.gcd a b in
  Alcotest.(check bool) "gcd = (x-2)(x-3)" true (Poly.equal g (Poly.from_roots [ 2; 3 ]))

let test_poly_pow_mod () =
  let modulus = Poly.from_roots [ 5; 9 ] in
  (* x^(p) mod f should evaluate at root r to r^p = r (Fermat). *)
  let xp = Poly.pow_mod (Poly.of_coeffs [ 0; 1 ]) Gfp.p ~modulus in
  Alcotest.(check int) "at 5" 5 (Poly.eval xp 5);
  Alcotest.(check int) "at 9" 9 (Poly.eval xp 9)

let test_poly_roots_small () =
  let roots = [ 2; 7; 11; 500; 123456 ] in
  let f = Poly.from_roots roots in
  match Poly.roots ~rng:(rng ()) f with
  | None -> Alcotest.fail "expected roots"
  | Some rs -> Alcotest.(check (list int)) "all roots found" roots rs

let test_poly_roots_constant () =
  match Poly.roots ~rng:(rng ()) Poly.one with
  | Some [] -> ()
  | _ -> Alcotest.fail "constant poly has no roots"

let test_poly_roots_rejects_irreducible () =
  (* x^2 + 1 is irreducible over GF(p) when p = 3 mod 4 (2^31-1 is). *)
  let f = Poly.of_coeffs [ 1; 0; 1 ] in
  match Poly.roots ~rng:(rng ()) f with
  | None -> ()
  | Some _ -> Alcotest.fail "irreducible quadratic must be rejected"

let test_poly_roots_rejects_repeated () =
  (* (x-4)^2 has a repeated factor; reconciliation polynomials never do,
     so the signal is None. *)
  let f = Poly.mul (Poly.from_roots [ 4 ]) (Poly.from_roots [ 4 ]) in
  match Poly.roots ~rng:(rng ()) f with
  | None -> ()
  | Some _ -> Alcotest.fail "repeated root must be rejected"

let test_poly_roots_large_set () =
  let st = rng () in
  let roots =
    List.sort_uniq compare (List.init 60 (fun _ -> Random.State.int st 1000000))
  in
  let f = Poly.from_roots roots in
  match Poly.roots ~rng:st f with
  | None -> Alcotest.fail "expected roots"
  | Some rs -> Alcotest.(check (list int)) "all recovered" roots rs

(* --- Linalg --- *)

let test_linalg_identity () =
  let m = [| [| 1; 0 |]; [| 0; 1 |] |] in
  match Linalg.solve m [| 5; 7 |] with
  | Some x -> Alcotest.(check (array int)) "solution" [| 5; 7 |] x
  | None -> Alcotest.fail "solvable"

let test_linalg_solves () =
  (* 2x + y = 12, x + y = 7  =>  x = 5, y = 2 *)
  let m = [| [| 2; 1 |]; [| 1; 1 |] |] in
  match Linalg.solve m [| 12; 7 |] with
  | Some x ->
      Alcotest.(check int) "x" 5 x.(0);
      Alcotest.(check int) "y" 2 x.(1)
  | None -> Alcotest.fail "solvable"

let test_linalg_inconsistent () =
  let m = [| [| 1; 1 |]; [| 1; 1 |] |] in
  match Linalg.solve m [| 1; 2 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "inconsistent system must be rejected"

let test_linalg_underdetermined () =
  (* One equation, two unknowns: free var set to 0. *)
  let m = [| [| 1; 1 |] |] in
  match Linalg.solve m [| 9 |] with
  | Some x -> Alcotest.(check int) "x + y" 9 (Gfp.add x.(0) x.(1))
  | None -> Alcotest.fail "solvable"

let test_linalg_does_not_mutate () =
  let m = [| [| 2; 1 |]; [| 1; 1 |] |] in
  let rhs = [| 12; 7 |] in
  ignore (Linalg.solve m rhs);
  Alcotest.(check (array int)) "matrix untouched" [| 2; 1 |] m.(0);
  Alcotest.(check (array int)) "rhs untouched" [| 12; 7 |] rhs

(* --- Reconcile --- *)

let check_diff ~a ~b ~expect_ab ~expect_ba =
  match Reconcile.diff ~rng:(rng ()) ~a ~b () with
  | None -> Alcotest.fail "reconciliation failed"
  | Some r ->
      Alcotest.(check (list int)) "a - b" (List.sort compare expect_ab) r.Reconcile.a_minus_b;
      Alcotest.(check (list int)) "b - a" (List.sort compare expect_ba) r.Reconcile.b_minus_a

let test_reconcile_disjoint_small () =
  check_diff ~a:[| 1; 2; 3 |] ~b:[| 4; 5 |] ~expect_ab:[ 1; 2; 3 ] ~expect_ba:[ 4; 5 ]

let test_reconcile_identical () =
  check_diff ~a:[| 10; 20; 30 |] ~b:[| 30; 10; 20 |] ~expect_ab:[] ~expect_ba:[]

let test_reconcile_subset () =
  check_diff ~a:[| 1; 2; 3; 4; 5 |] ~b:[| 2; 4 |] ~expect_ab:[ 1; 3; 5 ] ~expect_ba:[];
  check_diff ~a:[| 2; 4 |] ~b:[| 1; 2; 3; 4; 5 |] ~expect_ab:[] ~expect_ba:[ 1; 3; 5 ]

let test_reconcile_empty_sides () =
  check_diff ~a:[||] ~b:[| 7; 8 |] ~expect_ab:[] ~expect_ba:[ 7; 8 ];
  check_diff ~a:[| 7 |] ~b:[||] ~expect_ab:[ 7 ] ~expect_ba:[];
  check_diff ~a:[||] ~b:[||] ~expect_ab:[] ~expect_ba:[]

let test_reconcile_large_overlap () =
  (* 500 shared elements, small difference: cost must stay proportional to
     the difference, not the sets. *)
  let st = rng () in
  let shared = Array.init 500 (fun i -> (i * 4099) + 17) in
  let only_a = [| 999983; 999979 |] in
  let only_b = [| 888887; 888873; 888811 |] in
  ignore st;
  let a = Array.append shared only_a in
  let b = Array.append shared only_b in
  (match Reconcile.diff ~rng:(rng ()) ~a ~b () with
  | None -> Alcotest.fail "reconciliation failed"
  | Some r ->
      Alcotest.(check (list int)) "a-b" (List.sort compare (Array.to_list only_a))
        r.Reconcile.a_minus_b;
      Alcotest.(check (list int)) "b-a" (List.sort compare (Array.to_list only_b))
        r.Reconcile.b_minus_a;
      Alcotest.(check bool) "communication sublinear" true (r.Reconcile.evals_used < 100))

let test_reconcile_with_bound_exact () =
  let a = [| 1; 2; 3; 50; 60 |] and b = [| 1; 2; 3; 70 |] in
  match Reconcile.diff_with_bound ~rng:(rng ()) ~bound:3 ~a ~b () with
  | None -> Alcotest.fail "bound 3 suffices"
  | Some r ->
      Alcotest.(check (list int)) "a-b" [ 50; 60 ] r.Reconcile.a_minus_b;
      Alcotest.(check (list int)) "b-a" [ 70 ] r.Reconcile.b_minus_a

let test_reconcile_bound_too_small () =
  (* 10 differing elements, bound 4: must be detected and refused. *)
  let a = Array.init 10 (fun i -> (i * 7919) + 1) in
  let b = [| 2 |] in
  match Reconcile.diff_with_bound ~rng:(rng ()) ~bound:4 ~a ~b () with
  | None -> ()
  | Some _ -> Alcotest.fail "undersized bound must fail verification"

let test_reconcile_doubling_recovers () =
  (* A balanced difference (|d| small) so the initial bound of 8 genuinely
     undershoots and the doubling loop must engage. *)
  let shared = Array.init 10 (fun i -> 500000 + i) in
  let a = Array.append shared (Array.init 20 (fun i -> (i * 104729) + 1)) in
  let b = Array.append shared (Array.init 18 (fun i -> (i * 999983) + 2)) in
  match Reconcile.diff ~rng:(rng ()) ~a ~b () with
  | None -> Alcotest.fail "doubling should reach the needed bound"
  | Some r ->
      Alcotest.(check int) "a-b size" 20 (List.length r.Reconcile.a_minus_b);
      Alcotest.(check int) "b-a size" 18 (List.length r.Reconcile.b_minus_a);
      Alcotest.(check bool) "took multiple attempts" true (r.Reconcile.attempts > 1)

let test_reconcile_universe_guard () =
  Alcotest.(check bool) "rejects out-of-universe" true
    (try
       ignore (Reconcile.diff ~a:[| Gfp.p - 1 |] ~b:[||] ());
       false
     with Invalid_argument _ -> true)

let test_element_of_fingerprint_range () =
  List.iter
    (fun fp ->
      let e = Reconcile.element_of_fingerprint fp in
      Alcotest.(check bool) "in universe" true (e >= 0 && e < Reconcile.universe_size))
    [ 0L; 1L; Int64.max_int; Int64.min_int; -1L; 0xdeadbeef12345678L ]

let test_char_evals () =
  let elements = [| 2; 5 |] in
  let points = [| 10; 11 |] in
  let evals = Reconcile.char_evals ~elements ~points in
  (* (10-2)(10-5) = 40; (11-2)(11-5) = 54 *)
  Alcotest.(check (array int)) "evals" [| 40; 54 |] evals

let prop_reconcile_random =
  QCheck.Test.make ~name:"reconcile random sets" ~count:30
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 25) (int_bound 1000000))
        (list_of_size Gen.(int_range 0 25) (int_bound 1000000)))
    (fun (la, lb) ->
      let a = Array.of_list (List.sort_uniq compare la) in
      let b = Array.of_list (List.sort_uniq compare lb) in
      let module S = Set.Make (Int) in
      let sa = S.of_list (Array.to_list a) and sb = S.of_list (Array.to_list b) in
      match Reconcile.diff ~rng:(rng ()) ~a ~b () with
      | None -> false
      | Some r ->
          r.Reconcile.a_minus_b = S.elements (S.diff sa sb)
          && r.Reconcile.b_minus_a = S.elements (S.diff sb sa))

(* --- Bloom --- *)

let test_bloom_membership () =
  let f = Bloom.create ~bits:4096 () in
  let members = List.init 100 (fun i -> Int64.of_int ((i * 37) + 5)) in
  List.iter (Bloom.add f) members;
  List.iter
    (fun fp -> Alcotest.(check bool) "no false negative" true (Bloom.mem f fp))
    members

let test_bloom_false_positive_rate () =
  let f = Bloom.create ~bits:8192 ~hashes:4 () in
  for i = 0 to 499 do
    Bloom.add f (Int64.of_int (i * 13))
  done;
  let fps = ref 0 in
  let probes = 5000 in
  for i = 0 to probes - 1 do
    if Bloom.mem f (Int64.of_int (1000000 + (i * 7))) then incr fps
  done;
  let rate = float_of_int !fps /. float_of_int probes in
  Alcotest.(check bool) (Printf.sprintf "fp rate %.4f < 0.15" rate) true (rate < 0.15)

let test_bloom_cardinality () =
  let f = Bloom.create ~bits:16384 ~hashes:4 () in
  for i = 0 to 299 do
    Bloom.add f (Int64.of_int (i * 101))
  done;
  let est = Bloom.cardinality_estimate f in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.1f near 300" est)
    true
    (Float.abs (est -. 300.0) < 30.0)

let test_bloom_symmetric_difference () =
  let fa = Bloom.create ~bits:16384 ~hashes:4 () in
  let fb = Bloom.create ~bits:16384 ~hashes:4 () in
  (* 200 shared, 30 only in A, 20 only in B. *)
  for i = 0 to 199 do
    Bloom.add fa (Int64.of_int i);
    Bloom.add fb (Int64.of_int i)
  done;
  for i = 0 to 29 do
    Bloom.add fa (Int64.of_int (10000 + i))
  done;
  for i = 0 to 19 do
    Bloom.add fb (Int64.of_int (20000 + i))
  done;
  let est = Bloom.symmetric_difference_estimate ~na:230 ~nb:220 fa fb in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.1f near 50" est)
    true
    (Float.abs (est -. 50.0) < 15.0)

let test_bloom_shape_mismatch () =
  let fa = Bloom.create ~bits:64 () and fb = Bloom.create ~bits:128 () in
  Alcotest.check_raises "shape" (Invalid_argument "Bloom.union_estimate: filters have different shapes")
    (fun () -> ignore (Bloom.union_estimate fa fb))

let test_bloom_invalid () =
  Alcotest.check_raises "bits" (Invalid_argument "Bloom.create: bits must be positive")
    (fun () -> ignore (Bloom.create ~bits:0 ()))

let () =
  Alcotest.run "setrecon"
    [ ( "gfp",
        [ Alcotest.test_case "basics" `Quick test_gfp_basics;
          Alcotest.test_case "inverse" `Quick test_gfp_inverse;
          Alcotest.test_case "pow" `Quick test_gfp_pow;
          Alcotest.test_case "of_int64" `Quick test_gfp_of_int64 ] );
      ( "poly",
        [ Alcotest.test_case "normalize" `Quick test_poly_normalize;
          Alcotest.test_case "arith" `Quick test_poly_arith;
          Alcotest.test_case "divmod" `Quick test_poly_divmod;
          Alcotest.test_case "eval/from_roots" `Quick test_poly_eval_roots;
          Alcotest.test_case "gcd" `Quick test_poly_gcd;
          Alcotest.test_case "pow_mod" `Quick test_poly_pow_mod;
          Alcotest.test_case "roots small" `Quick test_poly_roots_small;
          Alcotest.test_case "roots constant" `Quick test_poly_roots_constant;
          Alcotest.test_case "rejects irreducible" `Quick test_poly_roots_rejects_irreducible;
          Alcotest.test_case "rejects repeated" `Quick test_poly_roots_rejects_repeated;
          Alcotest.test_case "roots large" `Slow test_poly_roots_large_set ] );
      ( "linalg",
        [ Alcotest.test_case "identity" `Quick test_linalg_identity;
          Alcotest.test_case "solves" `Quick test_linalg_solves;
          Alcotest.test_case "inconsistent" `Quick test_linalg_inconsistent;
          Alcotest.test_case "underdetermined" `Quick test_linalg_underdetermined;
          Alcotest.test_case "no mutation" `Quick test_linalg_does_not_mutate ] );
      ( "reconcile",
        [ Alcotest.test_case "disjoint" `Quick test_reconcile_disjoint_small;
          Alcotest.test_case "identical" `Quick test_reconcile_identical;
          Alcotest.test_case "subset" `Quick test_reconcile_subset;
          Alcotest.test_case "empty sides" `Quick test_reconcile_empty_sides;
          Alcotest.test_case "large overlap" `Quick test_reconcile_large_overlap;
          Alcotest.test_case "explicit bound" `Quick test_reconcile_with_bound_exact;
          Alcotest.test_case "bound too small" `Quick test_reconcile_bound_too_small;
          Alcotest.test_case "doubling" `Quick test_reconcile_doubling_recovers;
          Alcotest.test_case "universe guard" `Quick test_reconcile_universe_guard;
          Alcotest.test_case "fingerprint mapping" `Quick test_element_of_fingerprint_range;
          Alcotest.test_case "char evals" `Quick test_char_evals;
          QCheck_alcotest.to_alcotest prop_reconcile_random ] );
      ( "bloom",
        [ Alcotest.test_case "membership" `Quick test_bloom_membership;
          Alcotest.test_case "false positives" `Quick test_bloom_false_positive_rate;
          Alcotest.test_case "cardinality" `Quick test_bloom_cardinality;
          Alcotest.test_case "symmetric difference" `Quick test_bloom_symmetric_difference;
          Alcotest.test_case "shape mismatch" `Quick test_bloom_shape_mismatch;
          Alcotest.test_case "invalid" `Quick test_bloom_invalid ] ) ]
