(* Tests for the mrstats substrate: erf/normal, descriptive statistics,
   Welford accumulation, Z-tests, histograms and variate generation. *)

open Mrstats

let feq ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-6) name expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" name expected actual

(* --- erf / normal --- *)

let test_erf_reference () =
  (* Reference values from standard tables. *)
  check_float ~eps:1e-6 "erf 0" 0.0 (Erf.erf 0.0);
  check_float ~eps:1e-6 "erf 1" 0.8427007929 (Erf.erf 1.0);
  check_float ~eps:1e-6 "erf 2" 0.9953222650 (Erf.erf 2.0);
  check_float ~eps:1e-6 "erf -1" (-0.8427007929) (Erf.erf (-1.0));
  check_float ~eps:1e-6 "erfc 0.5" 0.4795001222 (Erf.erfc 0.5)

let test_erf_odd () =
  List.iter
    (fun x -> check_float ~eps:1e-7 "erf odd" (-.Erf.erf x) (Erf.erf (-.x)))
    [ 0.1; 0.7; 1.3; 2.9; 4.2 ]

let test_normal_cdf () =
  check_float ~eps:1e-6 "cdf 0" 0.5 (Erf.normal_cdf 0.0);
  check_float ~eps:1e-5 "cdf 1.96" 0.9750021 (Erf.normal_cdf 1.96);
  check_float ~eps:1e-5 "cdf -1.645" 0.0499849 (Erf.normal_cdf (-1.645));
  check_float ~eps:1e-6 "cdf mu sigma" 0.5 (Erf.normal_cdf ~mu:42.0 ~sigma:7.0 42.0);
  check_float ~eps:1e-5 "cdf shifted"
    (Erf.normal_cdf 1.0)
    (Erf.normal_cdf ~mu:10.0 ~sigma:2.0 12.0)

let test_normal_pdf () =
  check_float ~eps:1e-9 "pdf 0" 0.3989422804014327 (Erf.normal_pdf 0.0);
  check_float ~eps:1e-9 "pdf symmetric" (Erf.normal_pdf 1.3) (Erf.normal_pdf (-1.3))

let test_quantile_roundtrip () =
  List.iter
    (fun pct ->
      let x = Erf.normal_quantile pct in
      check_float ~eps:1e-7 (Printf.sprintf "quantile roundtrip %.4f" pct) pct
        (Erf.normal_cdf x))
    [ 0.001; 0.01; 0.05; 0.25; 0.5; 0.75; 0.95; 0.99; 0.999 ]

let test_quantile_known () =
  check_float ~eps:1e-4 "q 0.975" 1.959964 (Erf.normal_quantile 0.975);
  check_float ~eps:1e-4 "q 0.5" 0.0 (Erf.normal_quantile 0.5);
  check_float ~eps:1e-4 "q 0.05" (-1.644854) (Erf.normal_quantile 0.05)

let test_quantile_domain () =
  Alcotest.check_raises "p=0 rejected"
    (Invalid_argument "Erf.normal_quantile: p must lie strictly between 0 and 1")
    (fun () -> ignore (Erf.normal_quantile 0.0))

(* --- descriptive --- *)

let test_mean_median () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Descriptive.mean xs);
  check_float "median even" 2.5 (Descriptive.median xs);
  check_float "median odd" 3.0 (Descriptive.median [| 5.0; 1.0; 3.0 |])

let test_variance () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  (* Known sample: population variance 4, sample variance 32/7. *)
  check_float ~eps:1e-9 "variance" (32.0 /. 7.0) (Descriptive.variance xs);
  check_float "variance singleton" 0.0 (Descriptive.variance [| 42.0 |])

let test_percentile () =
  let xs = Array.init 101 float_of_int in
  check_float "p0" 0.0 (Descriptive.percentile xs 0.0);
  check_float "p100" 100.0 (Descriptive.percentile xs 100.0);
  check_float "p50" 50.0 (Descriptive.percentile xs 50.0);
  check_float "p25" 25.0 (Descriptive.percentile xs 25.0)

let test_percentile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Descriptive.median xs);
  Alcotest.(check (list (float 0.0))) "unchanged" [ 3.0; 1.0; 2.0 ] (Array.to_list xs)

let test_min_max () =
  let lo, hi = Descriptive.min_max [| 3.0; -1.0; 7.5; 0.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.5 hi

let test_empty_rejected () =
  Alcotest.check_raises "mean empty" (Invalid_argument "Descriptive.mean: empty sample")
    (fun () -> ignore (Descriptive.mean [||]))

let test_moments_normalish () =
  (* A symmetric sample has ~zero skewness. *)
  let xs = [| -2.0; -1.0; 0.0; 1.0; 2.0 |] in
  check_float ~eps:1e-9 "skew symmetric" 0.0 (Descriptive.skewness xs);
  (* Uniform-ish flat sample has negative excess kurtosis. *)
  Alcotest.(check bool) "kurtosis flat < 0" true (Descriptive.kurtosis_excess xs < 0.0)

(* --- Welford --- *)

let test_welford_matches_batch () =
  let xs = [| 1.5; 2.5; 3.5; 10.0; -4.0; 0.25 |] in
  let w = Welford.create () in
  Array.iter (Welford.add w) xs;
  check_float ~eps:1e-9 "count" (float_of_int (Array.length xs))
    (float_of_int (Welford.count w));
  check_float ~eps:1e-9 "mean" (Descriptive.mean xs) (Welford.mean w);
  check_float ~eps:1e-9 "variance" (Descriptive.variance xs) (Welford.variance w)

let test_welford_merge () =
  let xs = Array.init 50 (fun i -> sin (float_of_int i)) in
  let ys = Array.init 70 (fun i -> cos (float_of_int i) *. 3.0) in
  let wa = Welford.create () and wb = Welford.create () in
  Array.iter (Welford.add wa) xs;
  Array.iter (Welford.add wb) ys;
  let merged = Welford.merge wa wb in
  let all = Array.append xs ys in
  check_float ~eps:1e-9 "merged mean" (Descriptive.mean all) (Welford.mean merged);
  check_float ~eps:1e-9 "merged var" (Descriptive.variance all) (Welford.variance merged)

let test_welford_reset () =
  let w = Welford.create () in
  Welford.add w 5.0;
  Welford.reset w;
  Alcotest.(check int) "count after reset" 0 (Welford.count w);
  check_float "mean after reset" 0.0 (Welford.mean w)

(* --- Z tests --- *)

let test_one_sided_upper () =
  (* sample_mean = mu: confidence 0.5. *)
  check_float ~eps:1e-6 "at mu" 0.5
    (Ztest.one_sided_upper ~sample_mean:10.0 ~mu:10.0 ~sigma:2.0 ~n:16);
  (* z = (11-10)/(2/4) = 2 -> Phi(2). *)
  check_float ~eps:1e-6 "z=2" (Erf.normal_cdf 2.0)
    (Ztest.one_sided_upper ~sample_mean:11.0 ~mu:10.0 ~sigma:2.0 ~n:16)

let test_combined_loss_confidence_monotone () =
  (* More headroom in the queue at drop time = higher confidence of malice. *)
  let conf qpred =
    Ztest.combined_loss_confidence ~qlimit:64000.0 ~mean_qpred:qpred ~mean_ps:1000.0
      ~mu:0.0 ~sigma:500.0 ~n:10
  in
  Alcotest.(check bool) "half-full > nearly-full" true (conf 30000.0 > conf 62000.0);
  Alcotest.(check bool) "nearly-full low confidence" true (conf 62990.0 < 0.6);
  Alcotest.(check bool) "half-full certain" true (conf 30000.0 > 0.999)

let test_poisson_binomial () =
  (* All-zero drop probabilities: any observed drop is impossible for RED. *)
  check_float "impossible" 0.0
    (Ztest.poisson_binomial_upper_tail ~probs:[| 0.0; 0.0; 0.0 |] ~observed:2);
  (* observed = 0 always has probability 1. *)
  check_float "trivial" 1.0 (Ztest.poisson_binomial_upper_tail ~probs:[| 0.3 |] ~observed:0);
  (* Symmetric case: 100 trials at p=0.5, observing >= 50 has prob ~0.5. *)
  let probs = Array.make 100 0.5 in
  let tail = Ztest.poisson_binomial_upper_tail ~probs ~observed:50 in
  Alcotest.(check bool) "median tail" true (tail > 0.4 && tail < 0.6);
  (* Observing far beyond the mean is vanishingly likely. *)
  Alcotest.(check bool) "extreme tail" true
    (Ztest.poisson_binomial_upper_tail ~probs ~observed:90 < 1e-6)

(* --- histogram --- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -3.0; 10.0; 11.0 ];
  Alcotest.(check int) "count" 7 (Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  let counts = Histogram.bin_counts h in
  Alcotest.(check int) "bin0" 1 counts.(0);
  Alcotest.(check int) "bin1" 2 counts.(1);
  Alcotest.(check int) "bin9" 1 counts.(9);
  check_float "center" 0.5 (Histogram.bin_center h 0)

let test_histogram_render () =
  let h = Histogram.create ~lo:0.0 ~hi:4.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.1; 0.2; 1.1 ];
  let s = Histogram.render h in
  Alcotest.(check bool) "has bars" true (String.length s > 0);
  let s2 = Histogram.render_with_normal h ~mu:1.0 ~sigma:1.0 in
  Alcotest.(check bool) "normal fit shown" true
    (String.length s2 > 0
    && String.length s2 > String.length s)

let test_histogram_invalid () =
  Alcotest.check_raises "bins" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0))

(* --- variates --- *)

let rng () = Random.State.make [| 42 |]

let test_uniform_range () =
  let st = rng () in
  for _ = 1 to 1000 do
    let x = Variate.uniform st ~lo:2.0 ~hi:3.0 in
    if x < 2.0 || x >= 3.0 then Alcotest.fail "uniform out of range"
  done

let test_exponential_mean () =
  let st = rng () in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Variate.exponential st ~rate:4.0) in
  check_float ~eps:0.01 "mean 1/rate" 0.25 (Descriptive.mean xs)

let test_normal_moments () =
  let st = rng () in
  let xs = Array.init 20000 (fun _ -> Variate.normal st ~mu:5.0 ~sigma:2.0) in
  check_float ~eps:0.05 "mean" 5.0 (Descriptive.mean xs);
  check_float ~eps:0.05 "std" 2.0 (Descriptive.stddev xs)

let test_poisson_mean () =
  let st = rng () in
  let xs = Array.init 20000 (fun _ -> float_of_int (Variate.poisson st ~lambda:3.5)) in
  check_float ~eps:0.05 "mean small lambda" 3.5 (Descriptive.mean xs);
  let ys = Array.init 5000 (fun _ -> float_of_int (Variate.poisson st ~lambda:100.0)) in
  check_float ~eps:1.0 "mean large lambda" 100.0 (Descriptive.mean ys)

let test_pareto_tail () =
  let st = rng () in
  for _ = 1 to 1000 do
    if Variate.pareto st ~shape:1.5 ~scale:2.0 < 2.0 then
      Alcotest.fail "pareto below scale"
  done

let test_bernoulli_frequency () =
  let st = rng () in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Variate.bernoulli st ~p:0.3 then incr hits
  done;
  check_float ~eps:0.02 "frequency" 0.3 (float_of_int !hits /. float_of_int n)

let test_shuffle_permutes () =
  let st = rng () in
  let a = Array.init 100 Fun.id in
  Variate.shuffle st a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 Fun.id) sorted

(* property tests *)

let prop_erf_bounded =
  QCheck.Test.make ~name:"erf bounded by 1" ~count:500
    QCheck.(float_range (-50.0) 50.0)
    (fun x ->
      let y = Erf.erf x in
      y >= -1.0 && y <= 1.0)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"normal cdf monotone" ~count:500
    QCheck.(pair (float_range (-10.0) 10.0) (float_range 0.0001 5.0))
    (fun (x, dx) -> Erf.normal_cdf (x +. dx) >= Erf.normal_cdf x)

let prop_welford_matches =
  QCheck.Test.make ~name:"welford = batch" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let arr = Array.of_list xs in
      let w = Welford.create () in
      Array.iter (Welford.add w) arr;
      feq ~eps:1e-6 (Descriptive.mean arr) (Welford.mean w)
      && feq ~eps:1e-5 (Descriptive.variance arr) (Welford.variance w))

let prop_median_between =
  QCheck.Test.make ~name:"median within min..max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-1e6) 1e6))
    (fun xs ->
      let arr = Array.of_list xs in
      let lo, hi = Descriptive.min_max arr in
      let m = Descriptive.median arr in
      m >= lo && m <= hi)

let () =
  Alcotest.run "mrstats"
    [ ( "erf",
        [ Alcotest.test_case "reference values" `Quick test_erf_reference;
          Alcotest.test_case "odd function" `Quick test_erf_odd;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "normal pdf" `Quick test_normal_pdf;
          Alcotest.test_case "quantile roundtrip" `Quick test_quantile_roundtrip;
          Alcotest.test_case "quantile known" `Quick test_quantile_known;
          Alcotest.test_case "quantile domain" `Quick test_quantile_domain ] );
      ( "descriptive",
        [ Alcotest.test_case "mean median" `Quick test_mean_median;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "no mutation" `Quick test_percentile_does_not_mutate;
          Alcotest.test_case "min max" `Quick test_min_max;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "moments" `Quick test_moments_normalish ] );
      ( "welford",
        [ Alcotest.test_case "matches batch" `Quick test_welford_matches_batch;
          Alcotest.test_case "merge" `Quick test_welford_merge;
          Alcotest.test_case "reset" `Quick test_welford_reset ] );
      ( "ztest",
        [ Alcotest.test_case "one sided upper" `Quick test_one_sided_upper;
          Alcotest.test_case "combined loss monotone" `Quick
            test_combined_loss_confidence_monotone;
          Alcotest.test_case "poisson binomial" `Quick test_poisson_binomial ] );
      ( "histogram",
        [ Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "render" `Quick test_histogram_render;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid ] );
      ( "variate",
        [ Alcotest.test_case "uniform range" `Quick test_uniform_range;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          Alcotest.test_case "pareto tail" `Quick test_pareto_tail;
          Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_erf_bounded; prop_cdf_monotone; prop_welford_matches; prop_median_between ]
      ) ]
