(* Tests for the topology substrate: graphs, deterministic routing,
   path-segment enumeration, policy (response) routing, generators,
   Abilene, and disjoint paths. *)

open Topology

let seg = Alcotest.(list int)

(* --- Graph --- *)

let test_graph_basics () =
  let g = Graph.create ~n:4 in
  Graph.add_duplex g 0 1;
  Graph.add_link g ~cost:3 1 2;
  Alcotest.(check int) "size" 4 (Graph.size g);
  Alcotest.(check int) "links" 3 (Graph.link_count g);
  Alcotest.(check int) "duplex" 1 (Graph.duplex_link_count g);
  Alcotest.(check (list int)) "neighbors" [ 0; 2 ] (Graph.out_neighbors g 1);
  (match Graph.link g 1 2 with
  | Some l -> Alcotest.(check int) "cost" 3 l.Graph.cost
  | None -> Alcotest.fail "link 1->2 must exist");
  Alcotest.(check bool) "no reverse" true (Graph.link g 2 1 = None)

let test_graph_replace () =
  let g = Graph.create ~n:2 in
  Graph.add_link g ~cost:1 0 1;
  Graph.add_link g ~cost:9 0 1;
  Alcotest.(check int) "still one link" 1 (Graph.link_count g);
  Alcotest.(check int) "cost replaced" 9 (Graph.link_exn g 0 1).Graph.cost

let test_graph_validation () =
  let g = Graph.create ~n:2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_link: self-loop")
    (fun () -> Graph.add_link g 0 0);
  Alcotest.check_raises "bad cost" (Invalid_argument "Graph.add_link: cost must be positive")
    (fun () -> Graph.add_link g ~cost:0 0 1);
  Alcotest.check_raises "range" (Invalid_argument "Graph.add_link: node 5 outside [0,2)")
    (fun () -> Graph.add_link g 5 1)

let test_graph_connectivity () =
  let g = Generate.line ~n:5 in
  Alcotest.(check bool) "line connected" true (Graph.is_connected g);
  Graph.remove_link g 2 3;
  Alcotest.(check bool) "one direction cut" false (Graph.is_connected g)

let test_graph_copy_independent () =
  let g = Generate.line ~n:3 in
  let g2 = Graph.copy g in
  Graph.remove_link g2 0 1;
  Alcotest.(check bool) "original keeps link" true (Graph.link g 0 1 <> None);
  Alcotest.(check bool) "copy lost link" true (Graph.link g2 0 1 = None)

(* --- Dijkstra / Routing --- *)

let test_dijkstra_line () =
  let g = Generate.line ~n:5 in
  let d = Dijkstra.distances g ~src:0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] d

let test_dijkstra_unreachable () =
  let g = Graph.create ~n:3 in
  Graph.add_duplex g 0 1;
  let d = Dijkstra.distances g ~src:0 in
  Alcotest.(check int) "isolated" Dijkstra.unreachable d.(2)

let test_dijkstra_respects_costs () =
  (* 0-1-2 with costs 1+1 vs direct 0-2 with cost 5. *)
  let g = Graph.create ~n:3 in
  Graph.add_duplex g ~cost:1 0 1;
  Graph.add_duplex g ~cost:1 1 2;
  Graph.add_duplex g ~cost:5 0 2;
  let d = Dijkstra.distances g ~src:0 in
  Alcotest.(check int) "via middle" 2 d.(2)

let test_routing_path () =
  let g = Generate.line ~n:4 in
  let rt = Routing.compute g in
  (match Routing.path rt ~src:0 ~dst:3 with
  | Some p -> Alcotest.check seg "path" [ 0; 1; 2; 3 ] p
  | None -> Alcotest.fail "reachable");
  Alcotest.(check (option int)) "cost" (Some 3) (Routing.cost rt 0 3);
  Alcotest.(check bool) "self path" true (Routing.path rt ~src:2 ~dst:2 = Some [ 2 ])

let test_routing_deterministic_tiebreak () =
  (* Diamond 0-{1,2}-3 with equal costs: the lower-id neighbor wins. *)
  let g = Graph.create ~n:4 in
  Graph.add_duplex g 0 1;
  Graph.add_duplex g 0 2;
  Graph.add_duplex g 1 3;
  Graph.add_duplex g 2 3;
  let rt = Routing.compute g in
  Alcotest.(check (option int)) "next hop" (Some 1) (Routing.next_hop rt 0 ~dst:3);
  match Routing.path rt ~src:0 ~dst:3 with
  | Some p -> Alcotest.check seg "path via 1" [ 0; 1; 3 ] p
  | None -> Alcotest.fail "reachable"

let test_routing_loop_free_everywhere () =
  let g = Generate.ispish ~seed:3 ~n:60 ~duplex_links:120 ~max_degree:12 () in
  let rt = Routing.compute g in
  List.iter
    (fun p ->
      let sorted = List.sort_uniq compare p in
      if List.length sorted <> List.length p then Alcotest.fail "routed path revisits a node")
    (Routing.all_routed_paths rt)

let test_all_routed_paths_count () =
  let g = Generate.line ~n:4 in
  let rt = Routing.compute g in
  Alcotest.(check int) "ordered pairs" 12 (List.length (Routing.all_routed_paths rt))

let test_path_delay () =
  let g = Graph.create ~n:3 in
  Graph.add_duplex g ~delay:0.004 0 1;
  Graph.add_duplex g ~delay:0.006 1 2;
  let rt = Routing.compute g in
  Alcotest.(check (float 1e-9)) "delay sum" 0.010 (Routing.path_delay rt [ 0; 1; 2 ])

(* --- Segments --- *)

let test_windows () =
  Alcotest.(check (list (list int))) "w2" [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]
    (Segments.windows [ 1; 2; 3; 4 ] 2);
  Alcotest.(check (list (list int))) "w4" [ [ 1; 2; 3; 4 ] ] (Segments.windows [ 1; 2; 3; 4 ] 4);
  Alcotest.(check (list (list int))) "too wide" [] (Segments.windows [ 1; 2 ] 3)

let test_pi2_family_line () =
  (* Line of 5, k = 1: 3-segments of routed paths = all consecutive triples
     in both directions. *)
  let rt = Routing.compute (Generate.line ~n:5) in
  let fam = Segments.pi2_family rt ~k:1 in
  Alcotest.(check int) "count" 6 (List.length fam);
  Alcotest.(check bool) "contains 0-1-2" true (List.mem [ 0; 1; 2 ] fam);
  Alcotest.(check bool) "contains 2-1-0" true (List.mem [ 2; 1; 0 ] fam)

let test_pi2_family_short_paths () =
  (* Line of 3, k = 3 (x = 5 > path length): whole 3-paths are monitored. *)
  let rt = Routing.compute (Generate.line ~n:3) in
  let fam = Segments.pi2_family rt ~k:3 in
  Alcotest.(check int) "both directions" 2 (List.length fam);
  Alcotest.(check bool) "whole path" true (List.mem [ 0; 1; 2 ] fam)

let test_pik2_family_line () =
  (* Line of 5, k = 2: x in {3,4}. 3-segments: 6; 4-segments: 4. *)
  let rt = Routing.compute (Generate.line ~n:5) in
  let fam = Segments.pik2_family rt ~k:2 in
  Alcotest.(check int) "count" 10 (List.length fam)

let test_pi2_pr_membership () =
  let rt = Routing.compute (Generate.line ~n:5) in
  let pr = Segments.pi2_pr rt ~k:1 in
  (* Router 2 is inside 0-1-2,1-2-3,2-3-4 and their reverses: 6 segments. *)
  Alcotest.(check int) "middle router" 6 (List.length pr.(2));
  (* Router 0 only belongs to 0-1-2 / 2-1-0. *)
  Alcotest.(check int) "edge router" 2 (List.length pr.(0))

let test_pik2_pr_ends_only () =
  let rt = Routing.compute (Generate.line ~n:5) in
  let pr = Segments.pik2_pr rt ~k:1 in
  (* k = 1: only 3-segments; router 2 is an end of 2-3-4, 4-3-2, 2-1-0, 0-1-2. *)
  Alcotest.(check int) "router 2 ends" 4 (List.length pr.(2));
  List.iter
    (fun s ->
      match s with
      | first :: rest ->
          let last = List.nth rest (List.length rest - 1) in
          if first <> 2 && last <> 2 then Alcotest.fail "segment without r as end"
      | [] -> Alcotest.fail "empty segment")
    pr.(2)

let test_pr_stats () =
  let rt = Routing.compute (Generate.line ~n:5) in
  let mx, mean, med = Segments.pr_stats (Segments.pi2_pr rt ~k:1) in
  Alcotest.(check (float 1e-9)) "max" 6.0 mx;
  Alcotest.(check bool) "mean <= max" true (mean <= mx);
  Alcotest.(check bool) "median <= max" true (med <= mx)

let test_pik2_smaller_than_pi2 () =
  (* The dissertation's headline overhead comparison: per-router state for
     Πk+2 is far below Π2 on ISP-like graphs. *)
  let g = Generate.ebone_like () in
  let rt = Routing.compute g in
  let _, mean_pi2, _ = Segments.pr_stats (Segments.pi2_pr rt ~k:2) in
  let _, mean_pik2, _ = Segments.pr_stats (Segments.pik2_pr rt ~k:2) in
  Alcotest.(check bool)
    (Printf.sprintf "pi2 %.1f > pik2 %.1f" mean_pi2 mean_pik2)
    true (mean_pi2 > mean_pik2)

(* --- Policy --- *)

let test_policy_no_forbidden_matches_routing () =
  let g = Generate.grid ~rows:3 ~cols:3 in
  let rt = Routing.compute g in
  let pol = Policy.compute g ~forbidden:[] in
  for s = 0 to 8 do
    for d = 0 to 8 do
      if s <> d then begin
        let a = Routing.path rt ~src:s ~dst:d and b = Policy.path pol ~src:s ~dst:d in
        match (a, b) with
        | Some pa, Some pb ->
            Alcotest.(check int)
              (Printf.sprintf "same cost %d->%d" s d)
              (List.length pa) (List.length pb)
        | _ -> Alcotest.fail "both should be reachable"
      end
    done
  done

let test_policy_link_removal () =
  let g = Generate.ring ~n:5 in
  let pol = Policy.compute g ~forbidden:[ [ 0; 1 ] ] in
  match Policy.path pol ~src:0 ~dst:1 with
  | Some p ->
      Alcotest.check seg "goes the long way" [ 0; 4; 3; 2; 1 ] p
  | None -> Alcotest.fail "still reachable"

let test_policy_forbidden_transition () =
  (* Grid: ban the transition 0->1->2 along the top row; 0->2 must detour
     but 1->2 alone stays direct. *)
  let g = Generate.grid ~rows:2 ~cols:3 in
  (* ids: 0 1 2 / 3 4 5 *)
  let pol = Policy.compute g ~forbidden:[ [ 0; 1; 2 ] ] in
  (match Policy.path pol ~src:0 ~dst:2 with
  | Some p ->
      Alcotest.(check bool) "avoids banned window" false (Policy.is_forbidden_path pol p);
      Alcotest.(check bool) "longer than direct" true (List.length p > 3)
  | None -> Alcotest.fail "reachable");
  match Policy.path pol ~src:1 ~dst:2 with
  | Some p -> Alcotest.check seg "direct hop unaffected" [ 1; 2 ] p
  | None -> Alcotest.fail "reachable"

let test_policy_long_segment_conservative () =
  let g = Generate.grid ~rows:3 ~cols:3 in
  (* A 4-segment bans its two interior transitions. *)
  let pol = Policy.compute g ~forbidden:[ [ 0; 1; 2; 5 ] ] in
  Alcotest.(check int) "two banned transitions" 2
    (List.length (Policy.forbidden_transitions pol))

let test_policy_unreachable_when_cut () =
  let g = Generate.line ~n:3 in
  let pol = Policy.compute g ~forbidden:[ [ 0; 1 ]; [ 1; 0 ] ] in
  Alcotest.(check bool) "cut" true (Policy.path pol ~src:0 ~dst:2 = None)

let test_policy_rejects_bogus_segment () =
  let g = Generate.line ~n:4 in
  Alcotest.(check bool) "non-adjacent rejected" true
    (try
       ignore (Policy.compute g ~forbidden:[ [ 0; 2 ] ]);
       false
     with Invalid_argument _ -> true)

let test_policy_paths_loop_free () =
  let g = Generate.grid ~rows:3 ~cols:4 in
  let pol = Policy.compute g ~forbidden:[ [ 0; 1; 2 ]; [ 5; 6 ]; [ 4; 5; 9 ] ] in
  for s = 0 to 11 do
    for d = 0 to 11 do
      if s <> d then begin
        match Policy.path pol ~src:s ~dst:d with
        | None -> ()
        | Some p ->
            if List.length p > 100 then Alcotest.fail "absurdly long path";
            Alcotest.(check bool)
              (Printf.sprintf "clean %d->%d" s d)
              false (Policy.is_forbidden_path pol p)
      end
    done
  done

(* --- Generate --- *)

let test_generate_line_ring_grid () =
  Alcotest.(check int) "line links" 8 (Graph.link_count (Generate.line ~n:5));
  Alcotest.(check int) "ring links" 10 (Graph.link_count (Generate.ring ~n:5));
  Alcotest.(check int) "grid links" 14 (Graph.link_count (Generate.grid ~rows:2 ~cols:3));
  Alcotest.(check bool) "grid connected" true (Graph.is_connected (Generate.grid ~rows:4 ~cols:4))

let check_ispish g ~n ~links ~cap =
  Alcotest.(check int) "nodes" n (Graph.size g);
  Alcotest.(check int) "duplex links" links (Graph.duplex_link_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  let degs = Graph.degrees g in
  Array.iter (fun d -> if d > cap then Alcotest.failf "degree %d over cap %d" d cap) degs

let test_generate_sprintlink_shape () =
  check_ispish (Generate.sprintlink_like ()) ~n:315 ~links:972 ~cap:45

let test_generate_ebone_shape () = check_ispish (Generate.ebone_like ()) ~n:87 ~links:161 ~cap:11

let test_generate_deterministic () =
  let a = Generate.ispish ~seed:5 ~n:30 ~duplex_links:60 ~max_degree:10 () in
  let b = Generate.ispish ~seed:5 ~n:30 ~duplex_links:60 ~max_degree:10 () in
  Alcotest.(check (list (pair int int))) "same links"
    (List.sort compare (List.map (fun (l : Graph.link) -> (l.Graph.src, l.Graph.dst)) (Graph.links a)))
    (List.sort compare (List.map (fun (l : Graph.link) -> (l.Graph.src, l.Graph.dst)) (Graph.links b)))

let test_generate_waxman () =
  let g = Generate.waxman ~seed:3 ~n:40 () in
  Alcotest.(check int) "nodes" 40 (Graph.size g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Beyond the spanning chain, geometric links exist. *)
  Alcotest.(check bool) "denser than a chain" true (Graph.duplex_link_count g > 39);
  (* Deterministic per seed. *)
  let h = Generate.waxman ~seed:3 ~n:40 () in
  Alcotest.(check int) "deterministic" (Graph.link_count g) (Graph.link_count h)

let test_generate_infeasible () =
  Alcotest.(check bool) "too few links rejected" true
    (try
       ignore (Generate.ispish ~n:10 ~duplex_links:5 ~max_degree:4 ());
       false
     with Invalid_argument _ -> true)

(* --- Abilene --- *)

let test_abilene_shape () =
  let g = Abilene.graph () in
  Alcotest.(check int) "pops" 11 (Graph.size g);
  Alcotest.(check int) "duplex links" 14 (Graph.duplex_link_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_abilene_primary_path () =
  let rt = Routing.compute (Abilene.graph ()) in
  match Routing.path rt ~src:(Abilene.id Abilene.New_york) ~dst:(Abilene.id Abilene.Sunnyvale) with
  | Some p -> Alcotest.check seg "primary" Abilene.primary_ny_sun p
  | None -> Alcotest.fail "reachable"

let test_abilene_latencies () =
  let rt = Routing.compute (Abilene.graph ()) in
  Alcotest.(check (float 1e-9)) "primary 25ms" 0.025 (Routing.path_delay rt Abilene.primary_ny_sun);
  Alcotest.(check (float 1e-9)) "detour 28ms" 0.028 (Routing.path_delay rt Abilene.detour_ny_sun)

let test_abilene_detour_after_excision () =
  (* Excise the three suspected 3-segments around Kansas City (both
     directions): NY -> Sunnyvale must switch to the southern path. *)
  let g = Abilene.graph () in
  let kc = Abilene.id Abilene.Kansas_city in
  let den = Abilene.id Abilene.Denver
  and ind = Abilene.id Abilene.Indianapolis
  and hou = Abilene.id Abilene.Houston in
  let forbidden =
    List.concat_map
      (fun (a, b) -> [ [ a; kc; b ]; [ b; kc; a ] ])
      [ (den, ind); (den, hou); (hou, ind) ]
  in
  let pol = Policy.compute g ~forbidden in
  match Policy.path pol ~src:(Abilene.id Abilene.New_york) ~dst:(Abilene.id Abilene.Sunnyvale) with
  | Some p -> Alcotest.check seg "detour" Abilene.detour_ny_sun p
  | None -> Alcotest.fail "reachable"

let test_abilene_names () =
  Alcotest.(check string) "Kan" "Kan" (Abilene.name (Abilene.id Abilene.Kansas_city));
  Alcotest.(check string) "New" "New" (Abilene.name (Abilene.id Abilene.New_york))

(* --- Disjoint --- *)

let test_disjoint_ring () =
  let g = Generate.ring ~n:6 in
  let paths = Disjoint.max_disjoint_paths g ~src:0 ~dst:3 in
  Alcotest.(check int) "two disjoint paths" 2 (List.length paths);
  (* Intermediate nodes must not repeat across paths. *)
  let interior p = List.filter (fun v -> v <> 0 && v <> 3) p in
  let all = List.concat_map interior paths in
  Alcotest.(check int) "no shared interior" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_disjoint_line () =
  let g = Generate.line ~n:4 in
  Alcotest.(check int) "line connectivity 1" 1 (Disjoint.connectivity g ~src:0 ~dst:3)

let test_disjoint_grid () =
  let g = Generate.grid ~rows:3 ~cols:3 in
  (* Corner-to-corner connectivity of a 3x3 grid is 2. *)
  Alcotest.(check int) "grid corners" 2 (Disjoint.connectivity g ~src:0 ~dst:8)

let test_disjoint_unreachable () =
  let g = Graph.create ~n:3 in
  Graph.add_duplex g 0 1;
  Alcotest.(check int) "unreachable" 0 (Disjoint.connectivity g ~src:0 ~dst:2)

let test_disjoint_paths_valid () =
  let g = Generate.grid ~rows:3 ~cols:3 in
  List.iter
    (fun p ->
      let rec adjacent = function
        | a :: (b :: _ as rest) ->
            if Graph.link g a b = None then Alcotest.fail "path uses non-link";
            adjacent rest
        | _ -> ()
      in
      adjacent p)
    (Disjoint.max_disjoint_paths g ~src:0 ~dst:8)

(* --- properties --- *)

let topo_gen =
  QCheck.make
    QCheck.Gen.(
      map2
        (fun n seed -> (6 + n, seed))
        (int_bound 20) (int_bound 1000))

let prop_routing_paths_consistent =
  (* Hop-by-hop: the path from any intermediate router to the destination
     is the corresponding suffix — the predictability property. *)
  QCheck.Test.make ~name:"suffix consistency" ~count:25 topo_gen (fun (n, seed) ->
      let g = Generate.ispish ~seed ~n ~duplex_links:(2 * n) ~max_degree:n () in
      let rt = Routing.compute g in
      List.for_all
        (fun p ->
          match p with
          | _ :: (mid :: _ as suffix) when List.length suffix >= 1 ->
              let dst = List.nth p (List.length p - 1) in
              Routing.path rt ~src:mid ~dst = Some suffix
          | _ -> true)
        (Routing.all_routed_paths rt))

let prop_segments_are_subpaths =
  QCheck.Test.make ~name:"pi2 segments lie on routed paths" ~count:15 topo_gen
    (fun (n, seed) ->
      let g = Generate.ispish ~seed ~n ~duplex_links:(2 * n) ~max_degree:n () in
      let rt = Routing.compute g in
      let fam = Segments.pi2_family rt ~k:2 in
      List.for_all
        (fun s ->
          let rec adjacent = function
            | a :: (b :: _ as rest) -> Graph.link g a b <> None && adjacent rest
            | _ -> true
          in
          List.length s >= 3 && adjacent s)
        fam)

let prop_policy_avoids_forbidden =
  QCheck.Test.make ~name:"policy paths never traverse forbidden windows" ~count:15
    topo_gen (fun (n, seed) ->
      let g = Generate.ispish ~seed ~n ~duplex_links:(2 * n) ~max_degree:n () in
      let rt = Routing.compute g in
      (* Forbid the middle 3-window of the longest routed path. *)
      let longest =
        List.fold_left
          (fun acc p -> if List.length p > List.length acc then p else acc)
          [] (Routing.all_routed_paths rt)
      in
      if List.length longest < 3 then true
      else begin
        let window = List.filteri (fun i _ -> i < 3) longest in
        let pol = Policy.compute g ~forbidden:[ window ] in
        List.for_all
          (fun (s : int) ->
            List.for_all
              (fun d ->
                if s = d then true
                else begin
                  match Policy.path pol ~src:s ~dst:d with
                  | None -> true
                  | Some p -> not (Policy.is_forbidden_path pol p)
                end)
              (List.init n Fun.id))
          (List.init n Fun.id)
      end)

let () =
  Alcotest.run "topology"
    [ ( "graph",
        [ Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "replace" `Quick test_graph_replace;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
          Alcotest.test_case "copy" `Quick test_graph_copy_independent ] );
      ( "routing",
        [ Alcotest.test_case "dijkstra line" `Quick test_dijkstra_line;
          Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "dijkstra costs" `Quick test_dijkstra_respects_costs;
          Alcotest.test_case "path" `Quick test_routing_path;
          Alcotest.test_case "tie break" `Quick test_routing_deterministic_tiebreak;
          Alcotest.test_case "loop free" `Quick test_routing_loop_free_everywhere;
          Alcotest.test_case "all paths count" `Quick test_all_routed_paths_count;
          Alcotest.test_case "path delay" `Quick test_path_delay ] );
      ( "segments",
        [ Alcotest.test_case "windows" `Quick test_windows;
          Alcotest.test_case "pi2 family line" `Quick test_pi2_family_line;
          Alcotest.test_case "pi2 short paths" `Quick test_pi2_family_short_paths;
          Alcotest.test_case "pik2 family line" `Quick test_pik2_family_line;
          Alcotest.test_case "pi2 pr membership" `Quick test_pi2_pr_membership;
          Alcotest.test_case "pik2 ends only" `Quick test_pik2_pr_ends_only;
          Alcotest.test_case "pr stats" `Quick test_pr_stats;
          Alcotest.test_case "pik2 < pi2 state" `Slow test_pik2_smaller_than_pi2 ] );
      ( "policy",
        [ Alcotest.test_case "matches routing" `Quick test_policy_no_forbidden_matches_routing;
          Alcotest.test_case "link removal" `Quick test_policy_link_removal;
          Alcotest.test_case "forbidden transition" `Quick test_policy_forbidden_transition;
          Alcotest.test_case "long segment" `Quick test_policy_long_segment_conservative;
          Alcotest.test_case "unreachable" `Quick test_policy_unreachable_when_cut;
          Alcotest.test_case "bogus segment" `Quick test_policy_rejects_bogus_segment;
          Alcotest.test_case "loop free" `Quick test_policy_paths_loop_free ] );
      ( "generate",
        [ Alcotest.test_case "line ring grid" `Quick test_generate_line_ring_grid;
          Alcotest.test_case "sprintlink shape" `Slow test_generate_sprintlink_shape;
          Alcotest.test_case "ebone shape" `Quick test_generate_ebone_shape;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "waxman" `Quick test_generate_waxman;
          Alcotest.test_case "infeasible" `Quick test_generate_infeasible ] );
      ( "abilene",
        [ Alcotest.test_case "shape" `Quick test_abilene_shape;
          Alcotest.test_case "primary path" `Quick test_abilene_primary_path;
          Alcotest.test_case "latencies" `Quick test_abilene_latencies;
          Alcotest.test_case "detour" `Quick test_abilene_detour_after_excision;
          Alcotest.test_case "names" `Quick test_abilene_names ] );
      ( "disjoint",
        [ Alcotest.test_case "ring" `Quick test_disjoint_ring;
          Alcotest.test_case "line" `Quick test_disjoint_line;
          Alcotest.test_case "grid" `Quick test_disjoint_grid;
          Alcotest.test_case "unreachable" `Quick test_disjoint_unreachable;
          Alcotest.test_case "valid paths" `Quick test_disjoint_paths_valid ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_routing_paths_consistent; prop_segments_are_subpaths;
            prop_policy_avoids_forbidden ] ) ]
