(* The benchmark / reproduction harness.

   Running this executable regenerates every table and figure of the
   dissertation's evaluation (see DESIGN.md's per-experiment index),
   reports Bechamel microbenchmarks for the per-packet costs of
   Chapter 7 (fingerprint computation, traffic validation, set
   reconciliation), and writes the JSON artifacts:

   - BENCH_telemetry.json — every gauge the stdout tables show;
   - BENCH_parallel.json  — serial vs parallel experiment-suite wall
     clock (honestly marked "skipped" on a 1-domain host), with
     Gc.quick_stat deltas for both passes;
   - BENCH_hotpath.json   — before/after ns-per-op for the lib/crypto
     and event-loop hot-path kernels, measured against the in-process
     reference implementation and against the numbers recorded by the
     previous PR;
   - BENCH_alloc.json     — words allocated per simulation event on the
     reference scenario, pooling off/on, against the seed's numbers;
   - BENCH_faults.json / BENCH_shard.json — fault-injection overhead
     and sharded-engine scaling (the latter with per-mode GC deltas and
     the 2-domain mailbox micro-benchmark).

   [main.exe --smoke] runs every microbenchmark with a tiny quota and
   skips the reproduction and the JSON writes — except BENCH_alloc.json,
   which smoke writes too so the writer itself stays covered; the
   @bench-smoke dune alias uses it to keep the harness compiling and
   running under `dune runtest`. *)

module Exp = Experiments.Exp
module Registry = Experiments.Registry
module Pool = Experiments.Pool

(* Gc.quick_stat delta across a thunk: the BENCH artifacts record these
   counters alongside wall clock so an allocation regression shows up
   in a file diff exactly the way a throughput regression does. *)
type gc_delta = {
  gd_minor_words : float;
  gd_promoted_words : float;
  gd_major_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
}

let with_gc_delta f =
  let s0 = Gc.quick_stat () in
  (* [quick_stat] counters settle at collection boundaries; the minor
     allocation pointer is read exactly so short runs measure true. *)
  let mw0 = Gc.minor_words () in
  let r = f () in
  let mw1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  ( r,
    { gd_minor_words = mw1 -. mw0;
      gd_promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
      gd_major_words = s1.Gc.major_words -. s0.Gc.major_words;
      gd_minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
      gd_major_collections = s1.Gc.major_collections - s0.Gc.major_collections
    } )

let gc_json d =
  let open Telemetry.Export in
  Assoc
    [ ("minor_words", Float d.gd_minor_words);
      ("promoted_words", Float d.gd_promoted_words);
      ("major_words", Float d.gd_major_words);
      ("minor_collections", Int d.gd_minor_collections);
      ("major_collections", Int d.gd_major_collections) ]

(* Evaluate the whole registry serially (timed), then render — the same
   list mrdetect and the odoc index use, not a private copy. *)
let reproduction () =
  print_endline "Detecting Malicious Routers - evaluation reproduction";
  print_endline "======================================================";
  let t0 = Unix.gettimeofday () in
  let results, gc = with_gc_delta (fun () -> Registry.eval_all ~jobs:1 ()) in
  let serial = Unix.gettimeofday () -. t0 in
  List.iter Exp.render results;
  (results, serial, gc)

(* Serial vs parallel wall clock for the experiment suite.  The
   parallel pass uses the machine's recommended domain count and checks
   that its merged JSON document is byte-identical to the serial one.
   On a host where the recommended count is 1 a "parallel" rerun would
   only measure run-to-run noise and report a meaningless ~1.0x, so the
   comparison is recorded as skipped instead. *)
let parallel_comparison ~serial ~serial_gc serial_results =
  print_endline "";
  print_endline "Experiment suite: serial vs parallel (Domain pool)";
  print_endline "==================================================";
  let recommended = Domain.recommended_domain_count () in
  let jobs = Pool.default_jobs () in
  let registry = Telemetry.Metrics.create () in
  let set name help v =
    Telemetry.Metrics.set
      (Telemetry.Metrics.gauge registry name ~help ~labels:[ ("suite", "registry") ])
      v
  in
  set "experiments_serial_seconds" "wall clock, jobs=1" serial;
  set "experiments_domains_recommended" "Domain.recommended_domain_count"
    (float_of_int recommended);
  let parallel_gc = ref None in
  let status =
    if jobs <= 1 then begin
      Printf.printf "  serial (1 domain)      %8.2f s\n" serial;
      Printf.printf
        "  parallel pass          skipped (recommended domain count is %d;\n\
        \                         a rerun would measure noise, not parallelism)\n"
        recommended;
      "skipped-single-domain"
    end
    else begin
      let t0 = Unix.gettimeofday () in
      let parallel_results, pgc =
        with_gc_delta (fun () -> Registry.eval_all ~jobs ())
      in
      parallel_gc := Some pgc;
      let parallel = Unix.gettimeofday () -. t0 in
      let doc results =
        Telemetry.Export.to_string (Registry.json_document results)
      in
      if doc parallel_results <> doc serial_results then
        failwith "parallel evaluation diverged from the serial results";
      let speedup = serial /. parallel in
      Printf.printf "  serial (1 domain)      %8.2f s\n" serial;
      Printf.printf "  parallel (%d domains)  %8.2f s\n" jobs parallel;
      Printf.printf "  speedup                %8.2fx  (results byte-identical)\n"
        speedup;
      set "experiments_parallel_seconds" "wall clock, jobs=recommended" parallel;
      set "experiments_parallel_jobs" "domains used by the parallel pass"
        (float_of_int jobs);
      set "experiments_parallel_speedup" "serial / parallel wall clock" speedup;
      "measured"
    end
  in
  Telemetry.Export.write_file "BENCH_parallel.json"
    (Telemetry.Export.Assoc
       [ ("schema", Telemetry.Export.String "mrdetect-bench-parallel-v3");
         ("status", Telemetry.Export.String status);
         ("domains_recommended", Telemetry.Export.Int recommended);
         ( "gc",
           Telemetry.Export.Assoc
             [ ("serial", gc_json serial_gc);
               ( "parallel",
                 match !parallel_gc with
                 | Some d -> gc_json d
                 | None -> Telemetry.Export.Null ) ] );
         ("metrics", Telemetry.Export.json_of_registry registry) ]);
  print_endline "\nparallel benchmark metrics written to BENCH_parallel.json"

(* --- microbenchmarks (§7.1 computing fingerprints, Appendix A) --- *)

open Bechamel
open Toolkit

(* Tiny quota for --smoke so the whole harness runs in about a second
   under `dune runtest`; the numbers are meaningless, the point is that
   every benchmark thunk executes. *)
let bench_cfg ~smoke =
  if smoke then Benchmark.cfg ~limit:50 ~quota:(Time.millisecond 5.0) ()
  else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()

let packet_bytes n = String.init n (fun i -> Char.chr ((i * 7) land 0xff))

let bench_fingerprints =
  let key = Crypto_sim.Siphash.key_of_string "bench" in
  let small = packet_bytes 40 and full = packet_bytes 1500 in
  [ Test.make ~name:"siphash-40B" (Staged.stage (fun () -> Crypto_sim.Siphash.hash key small));
    Test.make ~name:"siphash-1500B" (Staged.stage (fun () -> Crypto_sim.Siphash.hash key full));
    Test.make ~name:"fnv-1500B" (Staged.stage (fun () -> Crypto_sim.Fnv.hash_string full)) ]

let bench_tv =
  let mk n offset =
    let s = Core.Summary.create Core.Summary.Content in
    for i = 0 to n - 1 do
      Core.Summary.observe s ~fp:(Int64.of_int (i + offset)) ~size:1000 ~time:0.0
    done;
    s
  in
  let sent = mk 1000 0 and received = mk 995 0 in
  [ Test.make ~name:"tv-content-1000pkts"
      (Staged.stage (fun () ->
           ignore
             (Core.Validation.tv
                ~thresholds:(Core.Validation.lenient ())
                ~sent ~received ()))) ]

let bench_reconcile =
  let shared = Array.init 512 (fun i -> (i * 211) + 5) in
  let mk_pair diff =
    let a = Array.append shared (Array.init diff (fun i -> 900_000 + i)) in
    let b = Array.append shared (Array.init diff (fun i -> 800_000 + i)) in
    (a, b)
  in
  let a8, b8 = mk_pair 8 in
  let a32, b32 = mk_pair 32 in
  let rng = Random.State.make [| 3 |] in
  [ Test.make ~name:"reconcile-diff16"
      (Staged.stage (fun () -> ignore (Setrecon.Reconcile.diff ~rng ~a:a8 ~b:b8 ())));
    Test.make ~name:"reconcile-diff64"
      (Staged.stage (fun () -> ignore (Setrecon.Reconcile.diff ~rng ~a:a32 ~b:b32 ())));
    Test.make ~name:"bloom-add+query"
      (Staged.stage
         (let f = Setrecon.Bloom.create ~bits:8192 () in
          fun () ->
            Setrecon.Bloom.add f 123456789L;
            ignore (Setrecon.Bloom.mem f 987654321L))) ]

let bench_routing =
  let g = Topology.Generate.ebone_like () in
  let rt = Topology.Routing.compute g in
  [ Test.make ~name:"link-state-tables-ebone"
      (Staged.stage (fun () -> ignore (Topology.Routing.compute g)));
    Test.make ~name:"pik2-family-ebone-k1"
      (Staged.stage (fun () -> ignore (Topology.Segments.pik2_family rt ~k:1)));
    Test.make ~name:"policy-tables-1-exclusion"
      (Staged.stage
         (let seg =
            match Topology.Routing.all_routed_paths rt with
            | p :: _ when List.length p >= 3 -> List.filteri (fun i _ -> i < 3) p
            | _ -> [ 0; 1 ]
          in
          fun () -> ignore (Topology.Policy.compute g ~forbidden:[ seg ]))) ]

let bench_crypto_heavy =
  let msg = packet_bytes 1500 in
  let keyring = Crypto_sim.Keyring.create ~n:5 () in
  let hk = Crypto_sim.Sha256.hmac_key ~key:"k" in
  [ Test.make ~name:"sha256-1500B"
      (Staged.stage (fun () -> ignore (Crypto_sim.Sha256.digest msg)));
    (* The per-packet HMAC path: midstates precomputed once per key
       (as Keyring caches them), one pass over the payload per call. *)
    Test.make ~name:"hmac-sha256-1500B"
      (Staged.stage (fun () -> ignore (Crypto_sim.Sha256.hmac_with hk msg)));
    (* Key expansion on every call, for comparison with the row above. *)
    Test.make ~name:"hmac-sha256-keyexp-1500B"
      (Staged.stage (fun () -> ignore (Crypto_sim.Sha256.hmac ~key:"k" msg)));
    Test.make ~name:"keyring-mac64-1500B"
      (Staged.stage (fun () -> ignore (Crypto_sim.Keyring.mac64 keyring 0 1 msg)));
    Test.make ~name:"dolev-strong-5-parties"
      (Staged.stage (fun () ->
           ignore
             (Core.Consensus.broadcast ~keyring ~parties:5 ~f:1 ~sender:0 ~value:7L
                ~behavior:(fun _ -> Core.Consensus.Correct)))) ]

let all_tests =
  Test.make_grouped ~name:"costs"
    (bench_fingerprints @ bench_tv @ bench_reconcile @ bench_routing
    @ bench_crypto_heavy)

let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]

let run_benchmarks ~smoke registry =
  print_endline "";
  print_endline "Microbenchmarks (Ch. 7 per-packet and per-round costs)";
  print_endline "======================================================";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = bench_cfg ~smoke in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          Printf.printf "  %-32s %12.1f ns/op\n" name ns;
          Telemetry.Metrics.set
            (Telemetry.Metrics.gauge registry "bench_ns_per_op"
               ~help:"microbenchmark cost" ~labels:[ ("name", name) ])
            ns
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort compare rows)

let simulator_performance ~smoke registry =
  (* A reference scenario to gauge engine throughput. *)
  print_endline "";
  print_endline "Simulator performance (reference scenario)";
  print_endline "==========================================";
  let horizon = if smoke then 0.5 else 30.0 in
  let g = Topology.Generate.ring ~n:8 in
  let net = Netsim.Net.create ~seed:1 ~jitter_bound:100e-6 g in
  Netsim.Net.use_routing net (Topology.Routing.compute g);
  List.iter
    (fun (s, d) ->
      ignore
        (Netsim.Flow.cbr net ~src:s ~dst:d ~rate_pps:200.0 ~size:500 ~start:0.0
           ~stop:horizon))
    [ (0, 4); (4, 0); (1, 5); (5, 1); (2, 6); (6, 2) ];
  ignore (Netsim.Tcp.connect net ~src:0 ~dst:3 ());
  let t0 = Unix.gettimeofday () in
  Netsim.Net.run ~until:horizon net;
  let wall = Unix.gettimeofday () -. t0 in
  let events = Netsim.Sim.events_processed (Netsim.Net.sim net) in
  Printf.printf "  %d events in %.2f s wall = %.1fk events/s (%.1f s simulated)\n"
    events wall
    (float_of_int events /. wall /. 1000.0)
    horizon;
  let set name help v =
    Telemetry.Metrics.set
      (Telemetry.Metrics.gauge registry name ~help
         ~labels:[ ("scenario", "ring8-reference") ])
      v
  in
  set "sim_events_processed" "events in the reference scenario" (float_of_int events);
  set "sim_wall_seconds" "wall clock for the reference scenario" wall;
  set "sim_events_per_second" "engine throughput" (float_of_int events /. wall);
  float_of_int events /. wall

(* Throughput cost of observability on the same reference scenario:
   no probe at all, a probe without a tracer (counters + journal), and a
   probe bridging into a span collector at two sample rates.  The
   honest-overhead rule: if full-rate tracing costs more than 5% of
   simulator throughput, say so here and in BENCH_telemetry.json rather
   than hiding it in an average. *)
let tracing_overhead ~smoke registry =
  print_endline "";
  print_endline "Tracing overhead (ring8 reference scenario)";
  print_endline "===========================================";
  let horizon = if smoke then 0.5 else 20.0 in
  let run_mode probe =
    let g = Topology.Generate.ring ~n:8 in
    let net = Netsim.Net.create ~seed:1 ~jitter_bound:100e-6 g in
    Netsim.Net.set_probe net probe;
    Netsim.Net.use_routing net (Topology.Routing.compute g);
    List.iter
      (fun (s, d) ->
        ignore
          (Netsim.Flow.cbr net ~src:s ~dst:d ~rate_pps:200.0 ~size:500 ~start:0.0
             ~stop:horizon))
      [ (0, 4); (4, 0); (1, 5); (5, 1); (2, 6); (6, 2) ];
    ignore (Netsim.Tcp.connect net ~src:0 ~dst:3 ());
    let t0 = Unix.gettimeofday () in
    Netsim.Net.run ~until:horizon net;
    let wall = Unix.gettimeofday () -. t0 in
    float_of_int (Netsim.Sim.events_processed (Netsim.Net.sim net)) /. wall
  in
  let mode name mk =
    (* Best of a few runs per mode: on a shared vCPU neighbor load only
       ever deflates a throughput reading. *)
    let reps = if smoke then 1 else 3 in
    let best = ref 0.0 in
    for _ = 1 to reps do
      let eps = run_mode (mk ()) in
      if eps > !best then best := eps
    done;
    (name, !best)
  in
  let rows =
    [ mode "off" (fun () -> None);
      mode "probe" (fun () -> Some (Netsim.Probe.create ~journal_capacity:4096 ()));
      mode "trace-0.1" (fun () ->
          Some
            (Netsim.Probe.create ~journal_capacity:4096
               ~tracer:(Telemetry.Span.create ~sample:0.1 ())
               ()));
      mode "trace-1.0" (fun () ->
          Some
            (Netsim.Probe.create ~journal_capacity:4096
               ~tracer:(Telemetry.Span.create ~sample:1.0 ())
               ())) ]
  in
  let baseline = List.assoc "off" rows in
  let overhead eps =
    if baseline > 0.0 then (1.0 -. (eps /. baseline)) *. 100.0 else 0.0
  in
  List.iter
    (fun (name, eps) ->
      Printf.printf "  %-12s %10.0f events/s  %+6.1f%% vs off\n" name eps
        (overhead eps);
      let set g help v =
        Telemetry.Metrics.set
          (Telemetry.Metrics.gauge registry g ~help
             ~labels:[ ("scenario", "ring8-reference"); ("mode", name) ])
          v
      in
      set "tracing_events_per_second" "engine throughput by tracing mode" eps;
      set "tracing_overhead_percent" "throughput cost vs tracing off" (overhead eps))
    rows;
  let full_overhead = overhead (List.assoc "trace-1.0" rows) in
  if full_overhead > 5.0 then
    Printf.printf
      "  note: full-rate tracing costs %.1f%% of simulator throughput (>5%%); \
       prefer --trace-sample below 1.0 for long runs\n"
      full_overhead

(* Throughput cost of fault injection on the same reference scenario:
   the probe alone, the probe plus a small fixed schedule (one flap, one
   crash/restart), and the probe plus a default-budget chaos plan.  The
   injector's per-event cost is zero — faults are ordinary scheduled
   events — so what this measures is the simulation actually getting
   harder: rerouting around downed links, retransmits, journal traffic.
   Writes BENCH_faults.json (skipped on --smoke). *)
(* One timed run of the fault-overhead reference scenario: events/s on
   ring8 with an optional schedule applied.  Top-level because the
   regression gate ({!check_gate}) re-measures the exact workload the
   recording pass committed to BENCH_faults.json. *)
let faults_reference_run ~horizon schedule =
  let g = Topology.Generate.ring ~n:8 in
  let probe = Netsim.Probe.create ~journal_capacity:4096 () in
  let net = Netsim.Net.create ~seed:1 ~jitter_bound:100e-6 g in
  Netsim.Net.set_probe net (Some probe);
  Netsim.Net.use_routing net (Topology.Routing.compute g);
  (match schedule with
  | Some s -> ignore (Faults.Injector.apply ~probe ~net s)
  | None -> ());
  List.iter
    (fun (s, d) ->
      ignore
        (Netsim.Flow.cbr net ~src:s ~dst:d ~rate_pps:200.0 ~size:500 ~start:0.0
           ~stop:horizon))
    [ (0, 4); (4, 0); (1, 5); (5, 1); (2, 6); (6, 2) ];
  ignore (Netsim.Tcp.connect net ~src:0 ~dst:3 ());
  let t0 = Unix.gettimeofday () in
  Netsim.Net.run ~until:horizon net;
  let wall = Unix.gettimeofday () -. t0 in
  float_of_int (Netsim.Sim.events_processed (Netsim.Net.sim net)) /. wall

let faults_reference_chaos ~horizon budget =
  Faults.Chaos.generate ~seed:11 ~graph:(Topology.Generate.ring ~n:8)
    ~duration:horizon ~budget ()

let fault_overhead ~smoke registry =
  print_endline "";
  print_endline "Fault-injection overhead (ring8 reference scenario)";
  print_endline "===================================================";
  let horizon = if smoke then 0.5 else 20.0 in
  let run_mode schedule = faults_reference_run ~horizon schedule in
  let fixed =
    let open Faults.Schedule in
    { seed = 1;
      actions =
        [ Link_down { src = 1; dst = 2; at = 0.2 *. horizon };
          Link_up { src = 1; dst = 2; at = 0.5 *. horizon };
          Crash { router = 6; at = 0.4 *. horizon };
          Restart { router = 6; at = 0.7 *. horizon } ] }
  in
  let chaos = faults_reference_chaos ~horizon Faults.Chaos.default_budget in
  let byz = faults_reference_chaos ~horizon Faults.Chaos.byzantine_budget in
  let mode name schedule =
    let reps = if smoke then 1 else 3 in
    let best = ref 0.0 in
    for _ = 1 to reps do
      let eps = run_mode schedule in
      if eps > !best then best := eps
    done;
    (name, !best)
  in
  let rows =
    [ mode "off" None; mode "schedule" (Some fixed); mode "chaos" (Some chaos);
      mode "byz" (Some byz) ]
  in
  let baseline = List.assoc "off" rows in
  let overhead eps =
    if baseline > 0.0 then (1.0 -. (eps /. baseline)) *. 100.0 else 0.0
  in
  List.iter
    (fun (name, eps) ->
      Printf.printf "  %-12s %10.0f events/s  %+6.1f%% vs off\n" name eps
        (overhead eps);
      let set g help v =
        Telemetry.Metrics.set
          (Telemetry.Metrics.gauge registry g ~help
             ~labels:[ ("scenario", "ring8-reference"); ("mode", name) ])
          v
      in
      set "fault_events_per_second" "engine throughput by fault mode" eps;
      set "fault_overhead_percent" "throughput cost vs faults off" (overhead eps))
    rows;
  if not smoke then begin
    let open Telemetry.Export in
    write_file "BENCH_faults.json"
      (Assoc
         [ ("schema", String "mrdetect-bench-faults-v1");
           ( "method",
             String
               "best events/s of 3 runs per mode on the ring8 reference \
                scenario; 'schedule' is one link flap plus one crash/restart, \
                'chaos' a default-budget generated plan, 'byz' a \
                byzantine-budget one (protocol-faulty roles armed)" );
           ( "modes",
             List
               (List.map
                  (fun (name, eps) ->
                    Assoc
                      [ ("mode", String name);
                        ("events_per_second", Float eps);
                        ("overhead_percent", Float (overhead eps)) ])
                  rows) ) ]);
    print_endline "\nfault-injection overhead written to BENCH_faults.json"
  end

(* --- allocation regression (BENCH_alloc.json) ----------------------- *)

(* Per-event allocation recorded by the seed's bench run on the same
   ring8 reference scenario, before the zero-allocation work (flat
   event heap, ring queues, packet pooling, slim telemetry path).
   Kept as literals so the reduction column survives later rewrites. *)
let recorded_seed_minor_words_per_event = 62.97
let recorded_seed_promoted_words_per_event = 1.1772
let recorded_seed_events_per_second = 3984214.25394

(* Words allocated per simulation event, pooling off and on, against
   the numbers the seed recorded.  Allocation counters come from a
   single pass (they are a deterministic count, not a timing); the
   wall clock takes the minimum over a few repeat runs — the same
   estimator as the hot-path harness, since on a shared vCPU neighbor
   load only ever inflates a reading.  Unlike the other artifacts this
   one is written on --smoke too (with the [smoke] flag set and
   meaningless numbers) so the @bench-smoke alias exercises the writer
   end to end. *)
let reference_alloc_run ~horizon ~pooling () =
  let g = Topology.Generate.ring ~n:8 in
  let net = Netsim.Net.create ~seed:1 ~jitter_bound:100e-6 ~pooling g in
  Netsim.Net.use_routing net (Topology.Routing.compute g);
  List.iter
    (fun (s, d) ->
      ignore
        (Netsim.Flow.cbr net ~src:s ~dst:d ~rate_pps:200.0 ~size:500
           ~start:0.0 ~stop:horizon))
    [ (0, 4); (4, 0); (1, 5); (5, 1); (2, 6); (6, 2) ];
  ignore (Netsim.Tcp.connect net ~src:0 ~dst:3 ());
  (* Settle setup garbage so the delta measures the event loop. *)
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let (), gc = with_gc_delta (fun () -> Netsim.Net.run ~until:horizon net) in
  let wall = Unix.gettimeofday () -. t0 in
  (Netsim.Net.events_processed net, wall, gc, Netsim.Net.pool_stats net)

let allocation ~smoke registry =
  print_endline "";
  print_endline "Allocation (ring8 reference scenario, words per event)";
  print_endline "======================================================";
  let horizon = if smoke then 0.5 else 30.0 in
  let reps = if smoke then 1 else 3 in
  let one_run ~pooling = reference_alloc_run ~horizon ~pooling () in
  let run_mode ~pooling =
    let events, wall, gc, pool = one_run ~pooling in
    let best = ref wall in
    for _ = 2 to reps do
      let _, w, _, _ = one_run ~pooling in
      if w < !best then best := w
    done;
    (events, !best, gc, pool)
  in
  let rows =
    [ ("unpooled", false, run_mode ~pooling:false);
      ("pooled", true, run_mode ~pooling:true) ]
  in
  let per events w = w /. float_of_int (max 1 events) in
  let row_json = ref [] in
  List.iter
    (fun (name, pooling, (events, wall, gc, pool)) ->
      let minor = per events gc.gd_minor_words in
      let promoted = per events gc.gd_promoted_words in
      let eps = float_of_int events /. wall in
      Printf.printf
        "  %-9s %8.2f minor w/ev  %7.4f promoted w/ev  %9.0f events/s%s\n"
        name minor promoted eps
        (if pooling then
           Printf.sprintf "  (recycled %d of %d packets)"
             pool.Netsim.Pool.recycled
             (pool.Netsim.Pool.recycled + pool.Netsim.Pool.fresh)
         else "");
      let set g help v =
        Telemetry.Metrics.set
          (Telemetry.Metrics.gauge registry g ~help
             ~labels:[ ("scenario", "ring8-reference"); ("mode", name) ])
          v
      in
      set "alloc_minor_words_per_event" "minor-heap words per event" minor;
      set "alloc_promoted_words_per_event" "promoted words per event" promoted;
      set "alloc_events_per_second" "throughput, best of repeat runs" eps;
      let open Telemetry.Export in
      row_json :=
        Assoc
          [ ("mode", String name);
            ("pooling", Bool pooling);
            ("events", Int events);
            ("wall_seconds", Float wall);
            ("events_per_second", Float eps);
            ("minor_words_per_event", Float minor);
            ("promoted_words_per_event", Float promoted);
            ( "reduction_vs_seed_percent",
              Float
                ((1.0 -. (minor /. recorded_seed_minor_words_per_event))
                *. 100.0) );
            ( "pool",
              Assoc
                [ ("fresh", Int pool.Netsim.Pool.fresh);
                  ("recycled", Int pool.Netsim.Pool.recycled);
                  ("released", Int pool.Netsim.Pool.released);
                  ("available", Int pool.Netsim.Pool.available) ] );
            ("gc", gc_json gc) ]
        :: !row_json)
    rows;
  Printf.printf
    "  %-9s %8.2f minor w/ev  %7.4f promoted w/ev  %9.0f events/s  \
     (recorded at seed)\n"
    "seed" recorded_seed_minor_words_per_event
    recorded_seed_promoted_words_per_event recorded_seed_events_per_second;
  (let _, _, (events, _, gc, _) = List.nth rows 1 in
   Printf.printf "  pooled minor-allocation reduction vs seed: %.1f%%\n"
     ((1.0 -. (per events gc.gd_minor_words /. recorded_seed_minor_words_per_event))
     *. 100.0));
  let open Telemetry.Export in
  write_file "BENCH_alloc.json"
    (Assoc
       [ ("schema", String "mrdetect-bench-alloc-v1");
         ( "method",
           String
             "Gc.quick_stat delta over the 30 s ring8 reference scenario \
              (6 crossing CBR flows + 1 TCP connection) after a full major \
              collection; words-per-event divides by Sim events processed; \
              wall clock is the minimum over 3 runs" );
         ("smoke", Bool smoke);
         ("scenario", String "ring8-reference");
         ( "recorded_seed",
           Assoc
             [ ( "minor_words_per_event",
                 Float recorded_seed_minor_words_per_event );
               ( "promoted_words_per_event",
                 Float recorded_seed_promoted_words_per_event );
               ("events_per_second", Float recorded_seed_events_per_second)
             ] );
         ("modes", List (List.rev !row_json)) ]);
  print_endline "\nallocation regression written to BENCH_alloc.json"

(* --- hot-path before/after regression harness (BENCH_hotpath.json) --- *)

(* ns-per-op recorded by the previous PR's bench run (the values in
   BENCH_telemetry.json at the time this harness was written); kept as
   literals so the speedup-versus-recorded column survives later
   telemetry rewrites. *)
let recorded_pr2 =
  [ ("sha256-1500B", 24261.8062269);
    ("hmac-sha256-1500B", 27758.7809007);
    ("siphash-1500B", 18023.3601006);
    ("siphash-40B", 763.922337726);
    ("fnv-1500B", 5611.93684059) ]

let recorded_pr2_events_per_second = 3369518.42992

(* Minimum ns/op over many short timed batches.  On a shared vCPU the
   measurement error is dominated by neighbor load, which only ever
   inflates a reading, so the minimum over short batches estimates the
   uncontended cost — a long averaging window (OLS over half a second)
   instead bakes the noise in.  The same estimator is applied to the
   reference kernels and the optimized ones, so the ratios are fair. *)
let measure_min ~batches f =
  (* Calibrate the batch size to roughly 0.3 ms per batch. *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 8 do f () done;
  let per_call = (Unix.gettimeofday () -. t0) /. 8.0 in
  let per_batch = max 1 (int_of_float (0.0003 /. Float.max per_call 1e-9)) in
  let best = ref infinity in
  for _ = 1 to batches do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to per_batch do f () done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int per_batch in
    if ns < !best then best := ns
  done;
  !best

(* (name, before thunk or None, after thunk); the before thunk is the
   in-process reference implementation where one exists.  Shared by the
   recording pass ({!hotpath}) and the regression gate ({!check_gate}). *)
let hotpath_kernels () =
  let msg = packet_bytes 1500 in
  let small = packet_bytes 40 in
  let sip_key = Crypto_sim.Siphash.key_of_string "bench" in
  let hk = Crypto_sim.Sha256.hmac_key ~key:"k" in
  [ ( "sha256-1500B",
      Some (fun () -> ignore (Crypto_sim.Sha256_ref.digest msg)),
      fun () -> ignore (Crypto_sim.Sha256.digest msg) );
    ( "hmac-sha256-1500B",
      Some (fun () -> ignore (Crypto_sim.Sha256_ref.hmac ~key:"k" msg)),
      fun () -> ignore (Crypto_sim.Sha256.hmac_with hk msg) );
    ( "siphash-1500B",
      None,
      fun () -> ignore (Crypto_sim.Siphash.hash sip_key msg) );
    ( "siphash-40B",
      None,
      fun () -> ignore (Crypto_sim.Siphash.hash sip_key small) );
    ("fnv-1500B", None, fun () -> ignore (Crypto_sim.Fnv.hash_string msg)) ]

let hotpath ~smoke ~sim_events_per_second =
  print_endline "";
  print_endline "Hot-path kernels: before/after (BENCH_hotpath.json)";
  print_endline "===================================================";
  let batches = if smoke then 5 else 400 in
  let kernels = hotpath_kernels () in
  let rows =
    List.map
      (fun (name, before, after) ->
        let after_ns = measure_min ~batches after in
        let before_ns = Option.map (fun f -> measure_min ~batches f) before in
        let recorded = List.assoc_opt name recorded_pr2 in
        (name, before_ns, after_ns, recorded))
      kernels
  in
  let open Telemetry.Export in
  let kernel_json (name, before_ns, after_ns, recorded) =
    let ratio b = if after_ns > 0.0 then b /. after_ns else 0.0 in
    Assoc
      ([ ("name", String name); ("measured_ns_per_op", Float after_ns) ]
      @ (match before_ns with
        | Some b ->
            [ ("baseline_ns_per_op", Float b);
              ("baseline_source", String "in-process-reference");
              ("speedup_vs_baseline", Float (ratio b)) ]
        | None -> [])
      @
      match recorded with
      | Some r ->
          [ ("recorded_pr2_ns_per_op", Float r);
            ("speedup_vs_recorded", Float (ratio r)) ]
      | None -> [])
  in
  List.iter
    (fun (name, before_ns, after_ns, recorded) ->
      let show tag = function
        | Some b when after_ns > 0.0 ->
            Printf.sprintf "  %s %9.1f ns (%.2fx)" tag b (b /. after_ns)
        | _ -> ""
      in
      Printf.printf "  %-24s %9.1f ns/op%s%s\n" name after_ns
        (show "ref" before_ns)
        (show "pr2" recorded))
    rows;
  let sim_speedup =
    if sim_events_per_second > 0.0 then
      sim_events_per_second /. recorded_pr2_events_per_second
    else 0.0
  in
  Printf.printf "  %-24s %9.0f events/s (%.2fx vs recorded)\n"
    "sim-ring8-reference" sim_events_per_second sim_speedup;
  if not smoke then begin
    write_file "BENCH_hotpath.json"
      (Assoc
         [ ("schema", String "mrdetect-bench-hotpath-v1");
           ( "method",
             String
               "min ns/op over 400 short timed batches (~0.3ms each); the \
                minimum estimates the uncontended cost on a shared vCPU; \
                the same estimator is applied to reference and optimized \
                kernels" );
           ("kernels", List (List.map kernel_json rows));
           ( "simulator",
             Assoc
               [ ("scenario", String "ring8-reference");
                 ("events_per_second", Float sim_events_per_second);
                 ( "recorded_pr2_events_per_second",
                   Float recorded_pr2_events_per_second );
                 ("speedup_vs_recorded", Float sim_speedup) ] ) ]);
    print_endline "\nhot-path before/after written to BENCH_hotpath.json"
  end

(* --- sharded-engine scaling (BENCH_shard.json) ---------------------- *)

(* Sustained push/drain throughput of the cross-shard mailbox with a
   real producer domain: the producer pushes [n] messages while this
   domain live-drains the ring, then the spill is settled once the
   producer has quiesced.  The padding between [head] and [tail] in
   {!Netsim.Mailbox} keeps the two atomics off one cache line; this row
   is the regression guard for that layout. *)
let mailbox_throughput ~smoke =
  let n = if smoke then 10_000 else 500_000 in
  let run () =
    let mb = Netsim.Mailbox.create ~capacity:4096 in
    let finished = Atomic.make false in
    let received = ref 0 in
    let t0 = Unix.gettimeofday () in
    let producer =
      Domain.spawn (fun () ->
          for i = 1 to n do
            Netsim.Mailbox.push mb i
          done;
          Atomic.set finished true)
    in
    while not (Atomic.get finished) do
      Netsim.Mailbox.drain_ring mb (fun _ -> incr received)
    done;
    Domain.join producer;
    Netsim.Mailbox.drain mb (fun _ -> incr received);
    let wall = Unix.gettimeofday () -. t0 in
    if !received <> n then failwith "mailbox micro-bench lost messages";
    float_of_int n /. wall
  in
  let reps = if smoke then 1 else 3 in
  let best = ref 0.0 in
  for _ = 1 to reps do
    let v = run () in
    if v > !best then best := v
  done;
  (n, !best)

(* Wall clock of the same 64-router grid scenario under the classic
   single-heap engine and the sharded engine at K = 1, 2, 4.  Speedups
   are quoted against the sharded K = 1 run (same engine family, same
   event set — the classic engine runs a different event decomposition,
   so its row is context, not a baseline).  The K = 1 row against the
   classic row is the engine's synchronization overhead — the
   zero-allocation work holds it under 1.3x on this host.  The scenario
   is heavy enough (32 crossing CBR flows) that shard heaps stay busy
   between barriers. *)
let shard_scaling ~smoke registry =
  print_endline "";
  print_endline "Sharded-engine scaling (grid8x8, 32 flows)";
  print_endline "==========================================";
  let horizon = if smoke then 0.3 else 10.0 in
  let g = Topology.Generate.grid ~rows:8 ~cols:8 in
  let n = Topology.Graph.size g in
  let run_shards k =
    let net =
      Netsim.Net.create ~seed:1 ~jitter_bound:100e-6
        ?shards:(if k = 0 then None else Some k)
        g
    in
    Netsim.Net.use_routing net (Topology.Routing.compute g);
    for i = 0 to 31 do
      ignore
        (Netsim.Flow.cbr net ~src:i ~dst:(n - 1 - i) ~rate_pps:120.0 ~size:500
           ~start:0.0 ~stop:horizon)
    done;
    let t0 = Unix.gettimeofday () in
    Netsim.Net.run ~until:horizon net;
    let wall = Unix.gettimeofday () -. t0 in
    (wall, Netsim.Net.events_processed net)
  in
  let reps = if smoke then 1 else 3 in
  let best k =
    let wall = ref infinity and events = ref 0 in
    let (), gc =
      (* The delta spans all reps of the mode — per-rep allocation is
         identical, so dividing by [reps] recovers one run. *)
      with_gc_delta (fun () ->
          for _ = 1 to reps do
            let w, e = run_shards k in
            if w < !wall then begin wall := w; events := e end
          done)
    in
    (k, !wall, !events, gc)
  in
  let rows = List.map best [ 0; 1; 2; 4 ] in
  let wall_of p =
    match List.find_opt (fun (k, _, _, _) -> k = p) rows with
    | Some (_, w, _, _) -> w
    | None -> 0.0
  in
  let wall_k1 = wall_of 1 and wall_classic = wall_of 0 in
  List.iter
    (fun (k, wall, events, _gc) ->
      let name = if k = 0 then "classic" else Printf.sprintf "shards=%d" k in
      let speedup = if k > 0 && wall > 0.0 then wall_k1 /. wall else 0.0 in
      Printf.printf "  %-10s %7.3f s wall  %9.0f events/s%s\n" name wall
        (float_of_int events /. wall)
        (if k > 0 then Printf.sprintf "  %.2fx vs shards=1" speedup else "");
      let set gname help v =
        Telemetry.Metrics.set
          (Telemetry.Metrics.gauge registry gname ~help
             ~labels:[ ("scenario", "grid8x8"); ("mode", name) ])
          v
      in
      set "shard_wall_seconds" "wall clock of the grid8x8 scaling scenario" wall;
      set "shard_events_per_second" "engine throughput by shard count"
        (float_of_int events /. wall))
    rows;
  if wall_classic > 0.0 then
    Printf.printf "  shards=1 overhead vs classic: %.2fx\n"
      (wall_k1 /. wall_classic);
  let mb_n, mb_eps = mailbox_throughput ~smoke in
  Printf.printf "  mailbox SPSC (2 domains) %9.0f msgs/s  (%d messages)\n"
    mb_eps mb_n;
  Telemetry.Metrics.set
    (Telemetry.Metrics.gauge registry "mailbox_msgs_per_second"
       ~help:"2-domain SPSC mailbox push/drain throughput"
       ~labels:[ ("bench", "mailbox-spsc") ])
    mb_eps;
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  (host offers %d recommended domain(s))\n" cores;
  if not smoke then begin
    let open Telemetry.Export in
    write_file "BENCH_shard.json"
      (Assoc
         [ ("schema", String "mrdetect-bench-shard-v2");
           ( "method",
             String
               "best wall clock of 3 runs of a 10 s grid8x8 scenario (64 \
                routers, 32 crossing CBR flows); speedup is against the \
                sharded K=1 run, which executes the identical event set; \
                gc counters are the Gc.quick_stat delta across all 3 runs \
                of the mode" );
           ("recommended_domain_count", Int cores);
           ( "mailbox_spsc",
             Assoc
               [ ("messages", Int mb_n);
                 ("msgs_per_second", Float mb_eps) ] );
           ( "note",
             String
               (if cores <= 1 then
                  "measured on a single-core host: every shard domain \
                   timeshares one CPU, so parallel speedup is not \
                   attainable here and the numbers below record the \
                   engine's synchronization overhead honestly rather than \
                   a simulated gain; on a multi-core host the same harness \
                   measures real scaling"
                else "measured with real domain parallelism") );
           ( "modes",
             List
               (List.map
                  (fun (k, wall, events, gc) ->
                    Assoc
                      [ ("shards", Int k);
                        ( "engine",
                          String (if k = 0 then "classic" else "sharded") );
                        ("wall_seconds", Float wall);
                        ( "events_per_second",
                          Float (float_of_int events /. wall) );
                        ( "speedup_vs_shards1",
                          if k > 0 && wall > 0.0 then Float (wall_k1 /. wall)
                          else Null );
                        ( "overhead_vs_classic",
                          if k > 0 && wall_classic > 0.0 then
                            Float (wall /. wall_classic)
                          else Null );
                        ("gc", gc_json gc) ])
                  rows) ) ]);
    print_endline "\nsharded-engine scaling written to BENCH_shard.json"
  end

(* Machine-readable trajectory: every run rewrites BENCH_telemetry.json
   with the same numbers the stdout table shows, so per-PR performance
   diffs are a file diff, not a transcript scrape. *)
let write_json registry path =
  Telemetry.Export.write_file path
    (Telemetry.Export.Assoc
       [ ("schema", Telemetry.Export.String "mrdetect-bench-v1");
         ("metrics", Telemetry.Export.json_of_registry registry) ]);
  Printf.printf "\nbenchmark metrics written to %s\n" path

(* --- regression gate (`bench --check`) ------------------------------- *)

(* Re-measure the cheap reference numbers and compare them against the
   committed BENCH_*.json baselines through one-sided tolerance bands
   (Experiments.Benchgate).  The ring8 reference scenario simulates its
   full 30 s horizon even under --smoke — that is ~0.2 s of wall clock,
   so the gate always measures the same workload the baselines recorded;
   --smoke only trims the kernel batch count.

   [handicap] degrades every fresh measurement by a factor (latency and
   allocation multiplied, throughput divided) so the failure path of the
   gate itself is testable without a real regression. *)
let check_gate ~smoke ~handicap ~baseline_dir =
  let module G = Experiments.Benchgate in
  print_endline "Bench regression gate (--check)";
  print_endline "===============================";
  if handicap <> 1.0 then
    Printf.printf "  synthetic handicap: %.2fx applied to fresh measurements\n"
      handicap;
  let load name =
    match G.load_json (Filename.concat baseline_dir name) with
    | Ok doc -> doc
    | Error msg ->
        Printf.eprintf "bench --check: cannot load baseline %s: %s\n" name msg;
        exit 2
  in
  let alloc_doc = load "BENCH_alloc.json" in
  let hotpath_doc = load "BENCH_hotpath.json" in
  let faults_doc = load "BENCH_faults.json" in
  let baseline doc path =
    match G.float_at doc path with
    | Some v -> v
    | None ->
        Printf.eprintf "bench --check: baseline missing %s\n"
          (String.concat "." path);
        exit 2
  in
  let verdicts = ref [] in
  let push v = verdicts := v :: !verdicts in
  (* Allocation + throughput: min over a few repetitions of the exact
     recording scenario.  Words-per-event is near-deterministic, so its
     band is tight; wall clock gets the wide shared-vCPU band. *)
  let reps = if smoke then 2 else 3 in
  List.iter
    (fun mode ->
      let pooling = mode = "pooled" in
      let words = ref infinity and eps = ref 0.0 in
      for _ = 1 to reps do
        let events, wall, gc, _ = reference_alloc_run ~horizon:30.0 ~pooling () in
        let w = gc.gd_minor_words /. float_of_int (max 1 events) in
        if w < !words then words := w;
        let e = float_of_int events /. wall in
        if e > !eps then eps := e
      done;
      let row =
        match G.find_by alloc_doc ~field:"modes" ~key:"mode" ~value:mode with
        | Some row -> row
        | None ->
            Printf.eprintf "bench --check: BENCH_alloc.json has no mode %S\n"
              mode;
            exit 2
      in
      push
        (G.judge
           (G.band ~slack:1.0 ~direction:G.Lower_better ~limit:1.25
              (Printf.sprintf "alloc.%s.minor_words_per_event" mode))
           ~baseline:(baseline row [ "minor_words_per_event" ])
           ~measured:(!words *. handicap));
      push
        (G.judge
           (G.band ~direction:G.Higher_better ~limit:1.6
              (Printf.sprintf "alloc.%s.events_per_second" mode))
           ~baseline:(baseline row [ "events_per_second" ])
           ~measured:(!eps /. handicap)))
    [ "unpooled"; "pooled" ];
  (* Hot-path kernels: the same min-estimator the recording pass uses. *)
  let batches = if smoke then 60 else 400 in
  List.iter
    (fun (name, _before, after) ->
      let row =
        match G.find_by hotpath_doc ~field:"kernels" ~key:"name" ~value:name with
        | Some row -> row
        | None ->
            Printf.eprintf "bench --check: BENCH_hotpath.json has no kernel %S\n"
              name;
            exit 2
      in
      push
        (G.judge
           (G.band ~slack:50.0 ~direction:G.Lower_better ~limit:1.8
              (Printf.sprintf "hotpath.%s.ns_per_op" name))
           ~baseline:(baseline row [ "measured_ns_per_op" ])
           ~measured:(measure_min ~batches after *. handicap)))
    (hotpath_kernels ());
  (* Fault-injection throughput: re-run the exact 20 s reference
     scenario the recording pass measured, faults off and under the
     default-budget chaos plan.  Wall-clock throughput on a shared vCPU
     gets the same wide band as the allocation scenario's events/s. *)
  List.iter
    (fun (mode, schedule) ->
      let row =
        match G.find_by faults_doc ~field:"modes" ~key:"mode" ~value:mode with
        | Some row -> row
        | None ->
            Printf.eprintf "bench --check: BENCH_faults.json has no mode %S\n"
              mode;
            exit 2
      in
      let eps = ref 0.0 in
      for _ = 1 to reps do
        let e = faults_reference_run ~horizon:20.0 schedule in
        if e > !eps then eps := e
      done;
      push
        (G.judge
           (G.band ~direction:G.Higher_better ~limit:1.6
              (Printf.sprintf "faults.%s.events_per_second" mode))
           ~baseline:(baseline row [ "events_per_second" ])
           ~measured:(!eps /. handicap)))
    [ ("off", None);
      ("chaos",
       Some (faults_reference_chaos ~horizon:20.0 Faults.Chaos.default_budget))
    ];
  let verdicts = List.rev !verdicts in
  List.iter (fun v -> print_endline (G.render v)) verdicts;
  let ok = G.all_ok verdicts in
  print_endline (if ok then "\nbench --check: ok" else "\nbench --check: REGRESSION");
  ok

let () =
  let argv = Sys.argv in
  let smoke = Array.exists (( = ) "--smoke") argv in
  let flag_value name default parse =
    let v = ref default in
    Array.iteri
      (fun i a -> if a = name && i + 1 < Array.length argv then v := parse argv.(i + 1))
      argv;
    !v
  in
  if Array.exists (( = ) "--check") argv then begin
    let handicap = flag_value "--check-handicap" 1.0 float_of_string in
    let baseline_dir = flag_value "--baseline" "." Fun.id in
    exit (if check_gate ~smoke ~handicap ~baseline_dir then 0 else 1)
  end;
  let registry = Telemetry.Metrics.create () in
  if smoke then begin
    (* Compile-and-run check for the whole harness: tiny quotas, a short
       simulation horizon, no reproduction pass and no JSON rewrites. *)
    let eps = simulator_performance ~smoke registry in
    tracing_overhead ~smoke registry;
    fault_overhead ~smoke registry;
    allocation ~smoke registry;
    shard_scaling ~smoke registry;
    run_benchmarks ~smoke registry;
    hotpath ~smoke ~sim_events_per_second:eps
  end
  else begin
    let results, serial, serial_gc = reproduction () in
    parallel_comparison ~serial ~serial_gc results;
    let eps = simulator_performance ~smoke registry in
    tracing_overhead ~smoke registry;
    fault_overhead ~smoke registry;
    allocation ~smoke registry;
    shard_scaling ~smoke registry;
    run_benchmarks ~smoke registry;
    hotpath ~smoke ~sim_events_per_second:eps;
    write_json registry "BENCH_telemetry.json"
  end
