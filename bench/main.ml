(* The benchmark / reproduction harness.

   Running this executable regenerates every table and figure of the
   dissertation's evaluation (see DESIGN.md's per-experiment index) and
   then reports Bechamel microbenchmarks for the per-packet costs of
   Chapter 7 (fingerprint computation, traffic validation, set
   reconciliation). *)

module Exp = Experiments.Exp
module Registry = Experiments.Registry
module Pool = Experiments.Pool

(* Evaluate the whole registry serially (timed), then render — the same
   list mrdetect and the odoc index use, not a private copy. *)
let reproduction () =
  print_endline "Detecting Malicious Routers - evaluation reproduction";
  print_endline "======================================================";
  let t0 = Unix.gettimeofday () in
  let results = Registry.eval_all ~jobs:1 () in
  let serial = Unix.gettimeofday () -. t0 in
  List.iter Exp.render results;
  (results, serial)

(* Serial vs parallel wall clock for the experiment suite.  The
   parallel pass uses the machine's recommended domain count, checks
   that its merged JSON document is byte-identical to the serial one,
   and records both timings in BENCH_parallel.json.  On a 1-core host
   the recommended count is 1, so the "parallel" pass degrades to a
   second serial run and the speedup is honestly ~1.0. *)
let parallel_comparison ~serial serial_results =
  print_endline "";
  print_endline "Experiment suite: serial vs parallel (Domain pool)";
  print_endline "==================================================";
  let jobs = Pool.default_jobs () in
  let t0 = Unix.gettimeofday () in
  let parallel_results = Registry.eval_all ~jobs () in
  let parallel = Unix.gettimeofday () -. t0 in
  let doc results = Telemetry.Export.to_string (Registry.json_document results) in
  if doc parallel_results <> doc serial_results then
    failwith "parallel evaluation diverged from the serial results";
  let speedup = serial /. parallel in
  Printf.printf "  serial (1 domain)      %8.2f s\n" serial;
  Printf.printf "  parallel (%d domain%s)  %8.2f s\n" jobs
    (if jobs = 1 then " " else "s")
    parallel;
  Printf.printf "  speedup                %8.2fx  (results byte-identical)\n" speedup;
  let registry = Telemetry.Metrics.create () in
  let set name help v =
    Telemetry.Metrics.set
      (Telemetry.Metrics.gauge registry name ~help ~labels:[ ("suite", "registry") ])
      v
  in
  set "experiments_serial_seconds" "wall clock, jobs=1" serial;
  set "experiments_parallel_seconds" "wall clock, jobs=recommended" parallel;
  set "experiments_parallel_jobs" "domains used by the parallel pass"
    (float_of_int jobs);
  set "experiments_parallel_speedup" "serial / parallel wall clock" speedup;
  Telemetry.Export.write_file "BENCH_parallel.json"
    (Telemetry.Export.Assoc
       [ ("schema", Telemetry.Export.String "mrdetect-bench-parallel-v1");
         ("metrics", Telemetry.Export.json_of_registry registry) ]);
  print_endline "\nparallel benchmark metrics written to BENCH_parallel.json"

(* --- microbenchmarks (§7.1 computing fingerprints, Appendix A) --- *)

open Bechamel
open Toolkit

let packet_bytes n = String.init n (fun i -> Char.chr ((i * 7) land 0xff))

let bench_fingerprints =
  let key = Crypto_sim.Siphash.key_of_string "bench" in
  let small = packet_bytes 40 and full = packet_bytes 1500 in
  [ Test.make ~name:"siphash-40B" (Staged.stage (fun () -> Crypto_sim.Siphash.hash key small));
    Test.make ~name:"siphash-1500B" (Staged.stage (fun () -> Crypto_sim.Siphash.hash key full));
    Test.make ~name:"fnv-1500B" (Staged.stage (fun () -> Crypto_sim.Fnv.hash_string full)) ]

let bench_tv =
  let mk n offset =
    let s = Core.Summary.create Core.Summary.Content in
    for i = 0 to n - 1 do
      Core.Summary.observe s ~fp:(Int64.of_int (i + offset)) ~size:1000 ~time:0.0
    done;
    s
  in
  let sent = mk 1000 0 and received = mk 995 0 in
  [ Test.make ~name:"tv-content-1000pkts"
      (Staged.stage (fun () ->
           ignore
             (Core.Validation.tv
                ~thresholds:(Core.Validation.lenient ())
                ~sent ~received ()))) ]

let bench_reconcile =
  let shared = Array.init 512 (fun i -> (i * 211) + 5) in
  let mk_pair diff =
    let a = Array.append shared (Array.init diff (fun i -> 900_000 + i)) in
    let b = Array.append shared (Array.init diff (fun i -> 800_000 + i)) in
    (a, b)
  in
  let a8, b8 = mk_pair 8 in
  let a32, b32 = mk_pair 32 in
  let rng = Random.State.make [| 3 |] in
  [ Test.make ~name:"reconcile-diff16"
      (Staged.stage (fun () -> ignore (Setrecon.Reconcile.diff ~rng ~a:a8 ~b:b8 ())));
    Test.make ~name:"reconcile-diff64"
      (Staged.stage (fun () -> ignore (Setrecon.Reconcile.diff ~rng ~a:a32 ~b:b32 ())));
    Test.make ~name:"bloom-add+query"
      (Staged.stage
         (let f = Setrecon.Bloom.create ~bits:8192 () in
          fun () ->
            Setrecon.Bloom.add f 123456789L;
            ignore (Setrecon.Bloom.mem f 987654321L))) ]

let bench_routing =
  let g = Topology.Generate.ebone_like () in
  let rt = Topology.Routing.compute g in
  [ Test.make ~name:"link-state-tables-ebone"
      (Staged.stage (fun () -> ignore (Topology.Routing.compute g)));
    Test.make ~name:"pik2-family-ebone-k1"
      (Staged.stage (fun () -> ignore (Topology.Segments.pik2_family rt ~k:1)));
    Test.make ~name:"policy-tables-1-exclusion"
      (Staged.stage
         (let seg =
            match Topology.Routing.all_routed_paths rt with
            | p :: _ when List.length p >= 3 -> List.filteri (fun i _ -> i < 3) p
            | _ -> [ 0; 1 ]
          in
          fun () -> ignore (Topology.Policy.compute g ~forbidden:[ seg ]))) ]

let bench_crypto_heavy =
  let msg = packet_bytes 1500 in
  let keyring = Crypto_sim.Keyring.create ~n:5 () in
  [ Test.make ~name:"sha256-1500B"
      (Staged.stage (fun () -> ignore (Crypto_sim.Sha256.digest msg)));
    Test.make ~name:"hmac-sha256-1500B"
      (Staged.stage (fun () -> ignore (Crypto_sim.Sha256.hmac ~key:"k" msg)));
    Test.make ~name:"dolev-strong-5-parties"
      (Staged.stage (fun () ->
           ignore
             (Core.Consensus.broadcast ~keyring ~parties:5 ~f:1 ~sender:0 ~value:7L
                ~behavior:(fun _ -> Core.Consensus.Correct)))) ]

let all_tests =
  Test.make_grouped ~name:"costs"
    (bench_fingerprints @ bench_tv @ bench_reconcile @ bench_routing
    @ bench_crypto_heavy)

let run_benchmarks registry =
  print_endline "";
  print_endline "Microbenchmarks (Ch. 7 per-packet and per-round costs)";
  print_endline "======================================================";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          Printf.printf "  %-32s %12.1f ns/op\n" name ns;
          Telemetry.Metrics.set
            (Telemetry.Metrics.gauge registry "bench_ns_per_op"
               ~help:"microbenchmark cost" ~labels:[ ("name", name) ])
            ns
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort compare rows)

let simulator_performance registry =
  (* A reference scenario to gauge engine throughput. *)
  print_endline "";
  print_endline "Simulator performance (reference scenario)";
  print_endline "==========================================";
  let g = Topology.Generate.ring ~n:8 in
  let net = Netsim.Net.create ~seed:1 ~jitter_bound:100e-6 g in
  Netsim.Net.use_routing net (Topology.Routing.compute g);
  List.iter
    (fun (s, d) ->
      ignore
        (Netsim.Flow.cbr net ~src:s ~dst:d ~rate_pps:200.0 ~size:500 ~start:0.0
           ~stop:30.0))
    [ (0, 4); (4, 0); (1, 5); (5, 1); (2, 6); (6, 2) ];
  ignore (Netsim.Tcp.connect net ~src:0 ~dst:3 ());
  let t0 = Unix.gettimeofday () in
  Netsim.Net.run ~until:30.0 net;
  let wall = Unix.gettimeofday () -. t0 in
  let events = Netsim.Sim.events_processed (Netsim.Net.sim net) in
  Printf.printf "  %d events in %.2f s wall = %.1fk events/s (30 s simulated)
" events
    wall
    (float_of_int events /. wall /. 1000.0);
  let set name help v =
    Telemetry.Metrics.set
      (Telemetry.Metrics.gauge registry name ~help
         ~labels:[ ("scenario", "ring8-reference") ])
      v
  in
  set "sim_events_processed" "events in the reference scenario" (float_of_int events);
  set "sim_wall_seconds" "wall clock for the reference scenario" wall;
  set "sim_events_per_second" "engine throughput" (float_of_int events /. wall)

(* Machine-readable trajectory: every run rewrites BENCH_telemetry.json
   with the same numbers the stdout table shows, so per-PR performance
   diffs are a file diff, not a transcript scrape. *)
let write_json registry path =
  Telemetry.Export.write_file path
    (Telemetry.Export.Assoc
       [ ("schema", Telemetry.Export.String "mrdetect-bench-v1");
         ("metrics", Telemetry.Export.json_of_registry registry) ]);
  Printf.printf "\nbenchmark metrics written to %s\n" path

let () =
  let registry = Telemetry.Metrics.create () in
  let results, serial = reproduction () in
  parallel_comparison ~serial results;
  simulator_performance registry;
  run_benchmarks registry;
  write_json registry "BENCH_telemetry.json"
