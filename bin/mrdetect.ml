(* mrdetect: command-line driver for the reproduction experiments.

   Every subcommand regenerates one table/figure of the dissertation's
   evaluation; the set of experiments, their descriptions and their
   cost classes all come from Experiments.Registry (the same list
   bench/main.exe and the odoc index use).  `all` runs the whole set —
   optionally on a pool of domains (--jobs) and merged into one JSON
   document (--json). *)

open Cmdliner
module Exp = Experiments.Exp
module Registry = Experiments.Registry
module Pool = Experiments.Pool

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"evaluate experiments on N domains (results and output are \
                 identical for every N; 0 selects the machine's recommended \
                 domain count)")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"merge every experiment's structured result into FILE as one \
                 mrdetect-experiments-v1 JSON document")

let resolve_jobs n = if n = 0 then Pool.default_jobs () else max 1 n

let run_entries ~jobs ~json entries =
  let results = Registry.eval_all ~jobs:(resolve_jobs jobs) ~entries () in
  List.iter Exp.render results;
  match json with
  | None -> `Ok ()
  | Some path -> (
      try
        Telemetry.Export.write_file path (Registry.json_document results);
        Printf.printf "\nstructured results written to %s\n" path;
        `Ok ()
      with Sys_error msg -> `Error (false, "cannot write JSON file: " ^ msg))

let all_cmd =
  let run jobs json = run_entries ~jobs ~json Registry.all in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every reproduction experiment")
    Term.(ret (const run $ jobs_arg $ json_arg))

let quick_cmd =
  let run jobs json = run_entries ~jobs ~json Registry.quick in
  Cmd.v
    (Cmd.info "quick"
       ~doc:"Run the sub-second experiments (the registry's Quick cost class; \
             this is what the @quick dune alias executes)")
    Term.(ret (const run $ jobs_arg $ json_arg))

let ablations_cmd =
  (* The ablations are themselves five independent sweeps, so --jobs
     parallelizes inside the experiment rather than across the registry. *)
  let run jobs json =
    let result = Experiments.Ablations.eval ~jobs:(resolve_jobs jobs) () in
    Exp.render result;
    match json with
    | None -> `Ok ()
    | Some path -> (
        try
          Telemetry.Export.write_file path (Registry.json_document [ result ]);
          Printf.printf "\nstructured results written to %s\n" path;
          `Ok ()
        with Sys_error msg -> `Error (false, "cannot write JSON file: " ^ msg))
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Design-choice ablations: jitter, tau, sampling, clock skew")
    Term.(ret (const run $ jobs_arg $ json_arg))

let simulate_cmd =
  let topo =
    Arg.(value & opt string "ring"
         & info [ "topology" ] ~docv:"TOPO" ~doc:"line | ring | grid | abilene")
  in
  let protocol =
    let names =
      Core.Detectors.register_all ();
      String.concat " | " (Core.Detector.names ())
    in
    Arg.(value & opt string "fatih" & info [ "protocol" ] ~docv:"P" ~doc:names)
  in
  let attack =
    Arg.(value & opt string "drop-fraction"
         & info [ "attack" ] ~docv:"A" ~doc:"none | drop-all | drop-fraction | syn | queue")
  in
  let fraction =
    Arg.(value & opt float 0.2
         & info [ "fraction" ] ~docv:"F" ~doc:"drop fraction / queue trigger")
  in
  let attacker =
    Arg.(value & opt int 2 & info [ "attacker" ] ~docv:"R" ~doc:"compromised router id")
  in
  let duration =
    Arg.(value & opt float 60.0 & info [ "duration" ] ~docv:"S" ~doc:"seconds simulated")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"rng seed") in
  let flows = Arg.(value & opt int 8 & info [ "flows" ] ~docv:"N" ~doc:"CBR flows") in
  let trace =
    Arg.(value & opt int 0
         & info [ "trace" ] ~docv:"N" ~doc:"dump the last N events at the attacker")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"write run metrics (counters, detection latency, profiling) to \
                   FILE as JSON; a .prom/.txt suffix selects Prometheus text")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"write the typed event journal (link/router/verdict records) to \
                   FILE as JSONL")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"write a Chrome trace-event JSON file (per-hop packet spans, \
                   detector round spans, verdict provenance); load it in \
                   Perfetto or query it with $(b,mrdetect trace explain)")
  in
  let trace_sample =
    Arg.(value & opt float 1.0
         & info [ "trace-sample" ] ~docv:"RATE"
             ~doc:"fraction of injected packets to trace, in [0,1] \
                   (deterministic per seed; verdicts and round spans are \
                   always recorded)")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"FILE"
             ~doc:"inject the benign fault plan in FILE (link flaps, crashes, \
                   lossy control channels, clock skew; see the Robustness \
                   section of the README for the schedule syntax) and score \
                   every verdict against ground truth")
  in
  let shards =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"K"
             ~doc:"partition the router graph into K shards and run the \
                   conservative-parallel engine (one domain per shard); 0 \
                   runs the classic single-heap engine.  Output is \
                   byte-identical for every K >= 1")
  in
  let run topology protocol attack fraction attacker duration seed flows trace
      metrics journal trace_out trace_sample faults shards =
    match
      Experiments.Simulate.Config.of_cmdline ~topology ~protocol ~attack ~fraction
        ~attacker ~duration ~seed ~flows ~trace ~metrics ~journal ~trace_out
        ~trace_sample ~faults ~shards
    with
    | Error msg -> `Error (false, msg)
    | Ok config -> (
        try
          Experiments.Simulate.run config;
          `Ok ()
        with
        | Sys_error msg -> `Error (false, "cannot write output file: " ^ msg)
        | Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a custom attack/detector scenario")
    Term.(ret (const run $ topo $ protocol $ attack $ fraction $ attacker $ duration
               $ seed $ flows $ trace $ metrics $ journal $ trace_out
               $ trace_sample $ faults $ shards))

let chaos_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"rng seed") in
  let trials =
    Arg.(value & opt int 6
         & info [ "trials" ] ~docv:"N"
             ~doc:"seeded chaos trials to run (benign/attacked alternating)")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"short deterministic run (10 s, at most 2 trials) for CI; \
                   this is what the @chaos-smoke dune alias executes")
  in
  let shards =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"K"
             ~doc:"run each trial on the K-shard conservative-parallel \
                   engine (0 = classic single heap)")
  in
  let byzantine =
    Arg.(value & flag
         & info [ "byzantine" ]
             ~doc:"sweep the byzantine chaos budget: the benign churn plus \
                   up to two protocol-faulty roles (framer, equivocator, \
                   mute, staller) per trial, with the hardened detectors' \
                   framing metrics reported")
  in
  let run seed trials jobs smoke byzantine shards json =
    try
      Experiments.Fig_robustness.chaos_run ~seed ~trials
        ~jobs:(resolve_jobs jobs) ~smoke ~byzantine ~shards ?json ();
      `Ok ()
    with
    | Sys_error msg -> `Error (false, "cannot write output file: " ^ msg)
    | Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Sweep seeded random benign faults (within a budget) over the \
             ring8 scenario and score fatih against the ground-truth oracle; \
             output is byte-identical for a given --seed across --jobs values")
    Term.(ret (const run $ seed $ trials $ jobs_arg $ smoke $ byzantine $ shards
               $ json_arg))

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"a trace file written by --trace-out")
  in
  let explain file =
    match
      let ( let* ) = Result.bind in
      let* text =
        try
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> Ok (really_input_string ic (in_channel_length ic)))
        with Sys_error msg -> Error msg
      in
      let* doc = Telemetry.Export.of_string (String.trim text) in
      Telemetry.Trace_export.explain doc
    with
    | Ok report ->
        print_string report;
        `Ok ()
    | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
  in
  let explain_cmd =
    Cmd.v
      (Cmd.info "explain"
         ~doc:"Print every verdict's evidence chain (why was each router \
               blamed?) from a recorded trace")
      Term.(ret (const explain $ file))
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Inspect Chrome trace-event files written by \
                            $(b,simulate --trace-out)")
    [ explain_cmd ]

let report_cmd =
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"METRICS"
             ~doc:"an mrdetect-metrics-v1 JSON file written by \
                   $(b,simulate --metrics)")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"write the report to FILE instead of stdout")
  in
  let as_json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"emit the normalized mrdetect-report-v1 JSON document \
                   instead of HTML (engine-independent: byte-identical for \
                   every --shards K >= 1 of the same scenario)")
  in
  let run file out as_json =
    match Experiments.Report.load file with
    | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
    | Ok report -> (
        let render () =
          if as_json then Telemetry.Export.to_string report ^ "\n"
          else
            match Experiments.Report.html report with
            | Ok html -> html
            | Error msg -> failwith msg
        in
        match render () with
        | exception Failure msg -> `Error (false, msg)
        | text -> (
            match out with
            | None ->
                print_string text;
                `Ok ()
            | Some path -> (
                try
                  let oc = open_out path in
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () -> output_string oc text);
                  Printf.printf "report written to %s\n" path;
                  `Ok ()
                with Sys_error msg ->
                  `Error (false, "cannot write report: " ^ msg))))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a simulate --metrics document as a self-contained HTML \
             dashboard (inline SVG sparklines and histograms) or, with \
             --json, as the engine-independent mrdetect-report-v1 document")
    Term.(ret (const run $ file $ out $ as_json))

let top_cmd =
  let topo =
    Arg.(value & opt string "ring"
         & info [ "topology" ] ~docv:"TOPO" ~doc:"line | ring | grid | abilene")
  in
  let protocol =
    Arg.(value & opt string "fatih" & info [ "protocol" ] ~docv:"P" ~doc:"detector")
  in
  let attack =
    Arg.(value & opt string "drop-fraction"
         & info [ "attack" ] ~docv:"A" ~doc:"none | drop-all | drop-fraction | syn | queue")
  in
  let fraction =
    Arg.(value & opt float 0.2
         & info [ "fraction" ] ~docv:"F" ~doc:"drop fraction / queue trigger")
  in
  let attacker =
    Arg.(value & opt int 2 & info [ "attacker" ] ~docv:"R" ~doc:"compromised router id")
  in
  let duration =
    Arg.(value & opt float 60.0 & info [ "duration" ] ~docv:"S" ~doc:"seconds simulated")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"rng seed") in
  let flows = Arg.(value & opt int 8 & info [ "flows" ] ~docv:"N" ~doc:"CBR flows") in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"FILE" ~doc:"inject the benign fault plan in FILE")
  in
  let shards =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"K"
             ~doc:"run the K-shard conservative-parallel engine (0 = classic)")
  in
  let refresh =
    Arg.(value & opt float 0.5
         & info [ "refresh" ] ~docv:"S"
             ~doc:"sim seconds between dashboard refreshes (classic engine; \
                   the sharded engine refreshes at its epoch barriers)")
  in
  let run topology protocol attack fraction attacker duration seed flows faults
      shards refresh =
    match
      Experiments.Simulate.Config.of_cmdline ~topology ~protocol ~attack ~fraction
        ~attacker ~duration ~seed ~flows ~trace:0 ~metrics:None ~journal:None
        ~trace_out:None ~trace_sample:1.0 ~faults ~shards
    with
    | Error msg -> `Error (false, msg)
    | Ok config -> (
        if not (refresh > 0.0) then `Error (false, "refresh must be positive")
        else
          let interactive = Unix.isatty Unix.stdout in
          let last = ref "" in
          let draw ~now net =
            match Netsim.Net.stats net with
            | None -> ()
            | Some st ->
                let frame = Experiments.Live.render ~now ~duration st in
                if interactive then begin
                  (* Home + clear-to-end repaint: no flicker, no history spam. *)
                  print_string "\x1b[H\x1b[2J";
                  print_string frame;
                  flush stdout
                end
                else last := frame
          in
          try
            Experiments.Simulate.run ~on_progress:draw ~progress_interval:refresh
              config;
            if not interactive then begin
              print_newline ();
              print_string !last
            end;
            `Ok ()
          with
          | Sys_error msg -> `Error (false, msg)
          | Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Run a scenario with a live terminal dashboard (headline rates, \
             latency quantiles, per-router queue depths) fed by the always-on \
             stats collectors; on a non-TTY only the final frame is printed")
    Term.(ret (const run $ topo $ protocol $ attack $ fraction $ attacker
               $ duration $ seed $ flows $ faults $ shards $ refresh))

let subcommand (e : Exp.entry) =
  let run () = Exp.render (e.eval ()) in
  Cmd.v (Cmd.info e.id ~doc:e.doc) Term.(const run $ const ())

let () =
  let info =
    Cmd.info "mrdetect" ~version:"1.0.0"
      ~doc:"Reproduction driver for 'Detecting Malicious Routers'"
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let registry_cmds =
    (* ablations has a dedicated command with --jobs. *)
    List.filter_map
      (fun (e : Exp.entry) -> if e.id = "ablations" then None else Some (subcommand e))
      Registry.all
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          (all_cmd :: quick_cmd :: ablations_cmd :: simulate_cmd :: chaos_cmd
           :: trace_cmd :: report_cmd :: top_cmd :: registry_cmds)))
