(* mrdetect: command-line driver for the reproduction experiments.

   Each subcommand regenerates one table/figure of the dissertation's
   evaluation (see DESIGN.md for the experiment index); `all` runs the
   whole set, which is what `dune exec bench/main.exe` also does before
   its microbenchmarks. *)

open Cmdliner

let experiments =
  [ ("pr", "Figures 5.2/5.4: per-router |Pr| vs k", Experiments.Fig_pr.run);
    ("state", "Tables 5.1/7.2: counter state, WATCHERS vs Pi2 vs Pik+2",
     Experiments.Tab_state.run);
    ("fatih", "Figure 5.7: Fatih timeline on Abilene", Experiments.Fig_fatih.run);
    ("confidence", "Figure 6.2: single-loss confidence curve",
     Experiments.Fig_confidence.run);
    ("qerror", "Figure 6.3: queue prediction error distribution",
     Experiments.Fig_qerror.run);
    ("droptail", "Figures 6.5-6.9: Protocol chi, drop-tail attacks",
     Experiments.Fig_droptail.run);
    ("threshold", "Section 6.4.3: chi vs static threshold", Experiments.Tab_threshold.run);
    ("red", "Figures 6.11-6.16: Protocol chi with RED", Experiments.Fig_red.run);
    ("reconcile", "Appendix A: set reconciliation vs Bloom", Experiments.Tab_reconcile.run);
    ("baselines", "Ch. 3 literature baselines: Herzberg/SecTrace/properties",
     Experiments.Tab_baselines.run);
    ("models", "Section 6.1.2: analytic congestion models vs measurement",
     Experiments.Tab_models.run);
    ("ablations", "Design-choice ablations: jitter, tau, sampling, clock skew",
     Experiments.Ablations.run);
    ("comm", "Section 7.2: summary exchange cost by mechanism", Experiments.Tab_comm.run);
    ("latency", "Detection latency vs attack intensity", Experiments.Tab_latency.run);
    ("fleet", "Network-wide chi localization trials (Fig 2.3)", Experiments.Fig_fleet.run);
    ("watchers", "WATCHERS-live vs chi at packet level", Experiments.Tab_watchers.run)
  ]

let simulate_cmd =
  let topo =
    Arg.(value & opt string "ring"
         & info [ "topology" ] ~docv:"TOPO" ~doc:"line | ring | grid | abilene")
  in
  let protocol =
    Arg.(value & opt string "fatih" & info [ "protocol" ] ~docv:"P" ~doc:"chi | fatih")
  in
  let attack =
    Arg.(value & opt string "drop-fraction"
         & info [ "attack" ] ~docv:"A" ~doc:"none | drop-all | drop-fraction | syn | queue")
  in
  let fraction =
    Arg.(value & opt float 0.2
         & info [ "fraction" ] ~docv:"F" ~doc:"drop fraction / queue trigger")
  in
  let attacker =
    Arg.(value & opt int 2 & info [ "attacker" ] ~docv:"R" ~doc:"compromised router id")
  in
  let duration =
    Arg.(value & opt float 60.0 & info [ "duration" ] ~docv:"S" ~doc:"seconds simulated")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"rng seed") in
  let flows = Arg.(value & opt int 8 & info [ "flows" ] ~docv:"N" ~doc:"CBR flows") in
  let trace =
    Arg.(value & opt int 0
         & info [ "trace" ] ~docv:"N" ~doc:"dump the last N events at the attacker")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"write run metrics (counters, detection latency, profiling) to \
                   FILE as JSON; a .prom/.txt suffix selects Prometheus text")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"write the typed event journal (link/router/verdict records) to \
                   FILE as JSONL")
  in
  let run topo protocol attack fraction attacker duration seed flows trace metrics
      journal =
    let fail msg = `Error (false, msg) in
    match Experiments.Simulate.topo_of_string topo with
    | Error e -> fail e
    | Ok topo -> (
        match Experiments.Simulate.attack_of_string attack ~fraction with
        | Error e -> fail e
        | Ok attack -> (
            match protocol with
            | "chi" | "fatih" -> (
                let protocol = if protocol = "chi" then `Chi else `Fatih in
                try
                  Experiments.Simulate.run ~topo ~protocol ~attack ~attacker ~duration
                    ~seed ~flows ~trace ?metrics ?journal ();
                  `Ok ()
                with Sys_error msg -> fail ("cannot write output file: " ^ msg))
            | p -> fail (Printf.sprintf "unknown protocol %S (chi|fatih)" p)))
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a custom attack/detector scenario")
    Term.(ret (const run $ topo $ protocol $ attack $ fraction $ attacker $ duration
               $ seed $ flows $ trace $ metrics $ journal))

let subcommand (name, doc, run) =
  Cmd.v (Cmd.info name ~doc) Term.(const run $ const ())

let all_cmd =
  let run () = List.iter (fun (_, _, run) -> run ()) experiments in
  Cmd.v (Cmd.info "all" ~doc:"Run every reproduction experiment") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "mrdetect" ~version:"1.0.0"
      ~doc:"Reproduction driver for 'Detecting Malicious Routers'"
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          (all_cmd :: simulate_cmd :: List.map subcommand experiments)))
