(* Generates doc/index.mld.  The experiment index is produced from
   Experiments.Registry so the documentation can never drift from the
   list mrdetect and bench/main.exe actually run. *)

let preamble =
  {|{0 Detecting Malicious Routers}

An OCaml reproduction of Mızrak, Marzullo and Savage's line of work on
detecting compromised routers by validating their packet-forwarding
behaviour (PODC 2004 brief announcement; UCSD dissertation, 2007).

{1 Reading guide}

The protocols answer three questions; each maps to a module family:

{ul
{- {e What traffic state do routers keep?}  {!Core.Summary} implements
   the four conservation policies (flow / content / order / timeliness)
   and {!Core.Validation} the TV predicate over them.}
{- {e Who validates whom?}  {!Core.Pi2} (every router of every monitored
   path-segment, consensus-backed — see {!Core.Consensus} for the signed
   Dolev–Strong broadcast it stands on, and {!Core.Pi2_live} for the
   packet-level deployment), {!Core.Pik2} (segment ends only — deployed
   as {!Core.Fatih}), {!Core.Chi_fleet} (every output interface).}
{- {e Is a missing packet malice or congestion?}  {!Core.Chi} replays
   the suspect queue from the neighbours' traffic information;
   {!Core.Chi_red} does the same for RED's probabilistic dropping.}}

Every live protocol is also a first-class module behind the
{!Core.Detector} registry ({!Core.Detectors} installs the built-ins:
chi, fatih, pik2, pi2, watchers, perlman), which is how
[mrdetect simulate --protocol NAME] resolves detectors — the scenario
driver has no per-protocol code.

The baselines the dissertation reviews are all executable:
{!Core.Watchers} / {!Core.Watchers_live} (conservation of flow, with the
consorting flaw and its fix), {!Core.Herzberg}, {!Core.Perlman} /
{!Core.Perlman_live}, {!Core.Sectrace} (with the AWERBUCH binary-search
variant and the framing attack), {!Core.Sats}, {!Core.Stealth}, and
{!Core.Threshold}.

{1 Substrates}

{ul
{- [Netsim] — discrete-event packet simulator: {!Netsim.Net},
   {!Netsim.Tcp}, {!Netsim.Red}, {!Netsim.Router} (with adversarial
   forwarding hooks), {!Netsim.Tracer}, {!Netsim.Meter}.  Two engines
   drive it: the classic single-heap {!Netsim.Sim} loop, and
   {!Netsim.Shard} — a conservative-synchronization parallel engine
   (one domain per graph partition, cross-shard packets through
   {!Netsim.Mailbox} rings, observations merged at epoch barriers)
   whose output is byte-identical for every shard count.
   [mrdetect simulate --shards K] selects it.}
{- [Topology] — {!Topology.Routing} (deterministic link state),
   {!Topology.Ecmp}, {!Topology.Policy} (segment excision),
   {!Topology.Segments} (Pr enumeration), {!Topology.Abilene},
   {!Topology.Generate}.}
{- [Setrecon] — Appendix A set reconciliation ({!Setrecon.Reconcile})
   over {!Setrecon.Gfp}/{!Setrecon.Poly}, plus {!Setrecon.Bloom}.}
{- [Crypto_sim] — {!Crypto_sim.Siphash} fingerprints,
   {!Crypto_sim.Sha256}, {!Crypto_sim.Keyring} (simulated key
   distribution), {!Crypto_sim.Sampling} (secret hash ranges).}
{- [Mrstats] — {!Mrstats.Erf}, {!Mrstats.Ztest}, {!Mrstats.Welford},
   {!Mrstats.Histogram}, {!Mrstats.Variate}.}
{- [Telemetry] — {!Telemetry.Metrics} (labeled counters, gauges,
   log-bucketed histograms), {!Telemetry.Journal} (bounded typed event
   ring), {!Telemetry.Export} (JSON and Prometheus text),
   {!Telemetry.Profile} (wall-clock phase timing), {!Telemetry.Span}
   (causal packet traces, detector round spans, verdict provenance and
   the flight recorder) with {!Telemetry.Trace_export} (Chrome
   trace-event JSON for Perfetto, plus the evidence-chain renderer
   behind [mrdetect trace explain]).  The always-on time-series layer
   sits beside these: {!Telemetry.Timeseries} (fixed-capacity
   downsampling rings) and {!Telemetry.Hist} (mergeable HDR-style
   log-bucketed histograms) feed {!Netsim.Stats}, whose per-shard
   collectors merge exactly at epoch barriers — byte-identical output
   for every [--shards K >= 1] — and surface as [mrdetect report]
   (self-contained HTML dashboard or [mrdetect-report-v1] JSON),
   [mrdetect top] (live terminal view) and
   {!Experiments.Benchgate}-backed [bench --check] regression gating.
   {!Netsim.Probe} wires these into the simulator's event stream and
   the detectors' verdicts;
   [mrdetect simulate --metrics FILE --journal FILE --trace-out FILE]
   exposes them on the command line (JSON summary with
   packet-conservation counters and detection latency; JSONL event
   journal; Chrome trace).  With none of the flags, no probe is
   attached and the forwarding plane is unchanged.  The README's
   "Observability" section — and its "Time series and reports"
   subsection — is the walkthrough.}
{- [Faults] — deterministic fault injection and the robustness oracle:
   {!Faults.Schedule} (declarative seed-deterministic fault plans with
   a textual s-expression form), {!Faults.Injector} (applies a plan to
   a live run through the probe hooks), {!Faults.Chaos} (seeded random
   schedules under a budget) and {!Faults.Oracle} (scores a run's
   verdict stream against ground truth: precision, recall,
   false-accusation rate, detection latency with mergeable
   p50/p95/p99 quantiles over every true alarm, and the alpha-accuracy
   counters: [alpha_violations], [framed_honest] and the framing /
   forgery / equivocation tallies — the [mrdetect-robustness-v1] JSON
   document).  {!Core.Byz} models the protocol-faulty adversaries the
   [byz-*] schedule forms arm (framing, equivocation, muting,
   stalling) and the origin-MAC screening that makes forged summary
   entries rejectable by construction; {!Core.Ctrl} is the lossy
   control-plane channel the summary exchanges ride — its retry budget
   is what lets a round degrade instead of accuse, and its peer faults
   are how mutes and stallers bite.
   [mrdetect simulate --faults FILE], [mrdetect chaos --seed S]
   (add [--byzantine] to sweep the byzantine budget) and
   [mrdetect byzantine] expose the machinery on the command line.
   The README's "Robustness" section — and its "threat matrix"
   subsection — is the walkthrough.}}

{1 Experiment index}

Every experiment is an [Experiments.Exp.entry] in
[Experiments.Registry.all] — a typed [eval : unit -> Exp.result] whose
structured tables back the rendered output, the merged [--json]
document and the golden tests alike.  This list is generated from that
registry:
|}

let postamble =
  {|
{1 Reproduction}

Run [dune exec bench/main.exe] (or [mrdetect all]) to regenerate every
table and figure; [mrdetect all --jobs N] evaluates the suite on a pool
of N domains with byte-identical output, and [--json FILE] merges the
structured results into one JSON document.  The bench driver also
writes the machine-readable performance artifacts — BENCH.json,
BENCH_parallel.json, BENCH_telemetry.json, BENCH_faults.json,
BENCH_shard.json and BENCH_alloc.json (the allocation-regression
harness: steady-state minor/promoted words per event on the ring8
reference scenario, unpooled vs pooled, with [Gc.quick_stat] deltas
and {!Netsim.Pool} recycling counters; the [@alloc] test alias pins
the same budget deterministically).  DESIGN.md in the repository
root maps each experiment to its module and EXPERIMENTS.md records
paper-vs-measured outcomes.
|}

let cost = function
  | Experiments.Exp.Quick -> "quick"
  | Experiments.Exp.Moderate -> "moderate"
  | Experiments.Exp.Heavy -> "heavy"

let () =
  print_string preamble;
  print_string "\n{ul\n";
  List.iter
    (fun (e : Experiments.Exp.entry) ->
      Printf.printf "{- [mrdetect %s] — %s ({e %s})}\n" e.id e.doc (cost e.cost))
    Experiments.Registry.all;
  print_string "}\n";
  print_string postamble
