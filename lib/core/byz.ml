type role =
  | Framer of { victim : int; extras : int }
  | Equivocator
  | Mute of { from : float }
  | Staller of { margin : float }

type stats = {
  framing_attempts : int;
  forgeries_rejected : int;
  forgeries_accepted : int;
  equivocations : int;
  disputes : int;
  mute_refusals : int;
}

type t = {
  keyring : Crypto_sim.Keyring.t;
  key : Crypto_sim.Siphash.key;  (* derives fabricated fingerprints *)
  roles : (int, role) Hashtbl.t;
  hardened : bool;
  mutable framing_attempts : int;
  mutable forgeries_rejected : int;
  mutable forgeries_accepted : int;
  mutable equivocations : int;
  mutable disputes : int;
  mutable mute_refusals : int;
}

let create ?(hardened = true) ~seed ~n ~roles () =
  let check_router what r =
    if r < 0 || r >= n then
      invalid_arg (Printf.sprintf "Byz.create: %s %d outside [0,%d)" what r n)
  in
  let tbl = Hashtbl.create (max 4 (List.length roles)) in
  List.iter
    (fun (r, role) ->
      check_router "router" r;
      (match role with
      | Framer { victim; extras } ->
          check_router "victim" victim;
          if victim = r then
            invalid_arg "Byz.create: a framer cannot frame itself";
          if extras < 1 then
            invalid_arg "Byz.create: extras must be positive"
      | Staller { margin } ->
          if not (Float.is_finite margin) || margin < 0.0 || margin >= 1.0 then
            invalid_arg
              (Printf.sprintf "Byz.create: stall margin %g outside [0,1)" margin)
      | Mute { from } ->
          if not (Float.is_finite from) || from < 0.0 then
            invalid_arg "Byz.create: mute start must be non-negative"
      | Equivocator -> ());
      Hashtbl.replace tbl r role)
    roles;
  { keyring = Crypto_sim.Keyring.create ~seed:(Printf.sprintf "byz-%d" seed) ~n ();
    key = Crypto_sim.Siphash.key_of_ints (Int64.of_int seed) 0xb12aL;
    roles = tbl; hardened;
    framing_attempts = 0; forgeries_rejected = 0; forgeries_accepted = 0;
    equivocations = 0; disputes = 0; mute_refusals = 0 }

let routers t =
  List.sort compare (Hashtbl.fold (fun r _ acc -> r :: acc) t.roles [])

let role t r = Hashtbl.find_opt t.roles r
let is_byzantine t r = Hashtbl.mem t.roles r
let hardened t = t.hardened

let mute_active t ~router ~now =
  match role t router with Some (Mute { from }) -> now >= from | _ -> false

let stall_margin t ~router =
  match role t router with Some (Staller { margin }) -> Some margin | _ -> None

(* --- claims ----------------------------------------------------------- *)

type extra = { fp : int64; origin : int; tag : Crypto_sim.Keyring.signature }

(* Fabricated fingerprints are a pure function of (claimant, victim,
   round, index): replay-deterministic, shard-count independent. *)
let fabricated_fp t ~claimant ~victim ~round ~i =
  Crypto_sim.Siphash.hash_int64s t.key
    [ Int64.of_int claimant; Int64.of_int victim; Int64.of_int round;
      Int64.of_int i ]

(* Which real fingerprints a liar prunes: a deterministic keyed choice
   so equivocation and under-reporting replay identically. *)
let prune_choice t ~claimant ~peer ~round fps =
  match fps with
  | [] -> None
  | _ ->
      let n = List.length fps in
      let h =
        Crypto_sim.Siphash.hash_int64s t.key
          [ 0x7072756eL; Int64.of_int claimant; Int64.of_int peer;
            Int64.of_int round ]
      in
      Some (List.nth fps (Int64.to_int (Int64.rem (Int64.logand h Int64.max_int)
                                          (Int64.of_int n))))

let interior = function [ _; m; _ ] -> Some m | _ -> None

let summary_claim t ~claimant ~peer ~segment ~round truth =
  match role t claimant with
  | None | Some (Mute _) | Some (Staller _) -> (truth, [])
  | Some Equivocator -> (
      (* Prune one peer-keyed fingerprint: different peers receive
         different summaries for the same round, so their digests
         disagree and the cross-check catches it. *)
      match prune_choice t ~claimant ~peer ~round (Summary.fingerprints truth) with
      | None -> (truth, [])
      | Some fp ->
          let c = Summary.copy truth in
          Summary.remove c fp;
          (c, []))
  | Some (Framer { victim; extras }) -> (
      match (interior segment, segment) with
      | Some m, [ a; _; _ ] when m = victim && claimant = a ->
          (* Inflating the traffic sent *into* the victim: fabricated
             entries the victim never saw, so the comparison shows them
             as "dropped by the interior".  The claimant cannot sign as
             anyone else, so the origin tags are forged under its own
             key and fail verification against the claimed origin. *)
          t.framing_attempts <- t.framing_attempts + 1;
          let mk i =
            let fp = fabricated_fp t ~claimant ~victim ~round ~i in
            let origin = if victim = 0 then 1 else 0 in
            { fp; origin; tag = Crypto_sim.Keyring.forge_attempt }
          in
          (truth, List.init extras mk)
      | Some m, [ _; _; b ] when m = victim && claimant = b ->
          (* Under-reporting the traffic received *out of* the victim:
             real fingerprints deterministically pruned from the claim,
             so the victim appears to have swallowed them.  No forgery
             to reject here — the corroboration quorum has to catch it
             from the interior router's own forwarded-claim instead. *)
          t.framing_attempts <- t.framing_attempts + 1;
          let c = Summary.copy truth in
          let rec prune k =
            if k > 0 then
              match
                prune_choice t ~claimant ~peer:(peer + k) ~round
                  (Summary.fingerprints c)
              with
              | None -> ()
              | Some fp ->
                  Summary.remove c fp;
                  prune (k - 1)
          in
          prune extras;
          (c, [])
      | _ -> (truth, []))

let sign_extra t ~origin ~fp =
  { fp; origin; tag = Crypto_sim.Keyring.sign_words t.keyring ~signer:origin [ fp ] }

let screen t ?probe ?(time = 0.0) ~claimant ~summary ~extras () =
  let rejected = ref 0 in
  List.iter
    (fun e ->
      let genuine =
        Crypto_sim.Keyring.verify_words t.keyring ~signer:e.origin [ e.fp ] e.tag
      in
      if genuine || not t.hardened then begin
        if genuine then ()
        else t.forgeries_accepted <- t.forgeries_accepted + 1;
        Summary.observe summary ~fp:e.fp ~size:0 ~time
      end
      else begin
        incr rejected;
        t.forgeries_rejected <- t.forgeries_rejected + 1;
        match probe with
        | None -> ()
        | Some probe ->
            Netsim.Probe.record_fault probe ~time ~kind:"forgery_rejected"
              ~routers:[ claimant; e.origin ]
              ~detail:(Printf.sprintf "fp=%Lx bad origin MAC" e.fp)
              ()
      end)
    extras;
  !rejected

let digest s =
  List.fold_left
    (fun acc fp -> Int64.logxor acc (Int64.mul fp 0x9e3779b97f4a7c15L))
    (Int64.of_int (Summary.packets s))
    (Summary.fingerprints s)

let note_dispute t = t.disputes <- t.disputes + 1
let note_equivocation t = t.equivocations <- t.equivocations + 1
let note_mute_refusal t = t.mute_refusals <- t.mute_refusals + 1

let stats t =
  { framing_attempts = t.framing_attempts;
    forgeries_rejected = t.forgeries_rejected;
    forgeries_accepted = t.forgeries_accepted;
    equivocations = t.equivocations;
    disputes = t.disputes;
    mute_refusals = t.mute_refusals }
