(** Protocol-faulty (Byzantine) control-plane adversaries (§2.2, App. B/C).

    A traffic-faulty router drops or modifies packets; a {e
    protocol-faulty} one lies {e inside the detection protocol itself}.
    This module models the four control-plane attacks the dissertation's
    α-accuracy proof must survive, as deterministic transformations on
    the summaries a router submits each validation round:

    - {b framing}: a segment terminal inflates its sent-summary with
      fabricated fingerprints so the honest interior router appears to
      have dropped them;
    - {b equivocation}: a router reports different summaries to
      different peers in the same round;
    - {b muting}: a router refuses participation from some instant on,
      exhausting its peers' {!Ctrl} retry budgets;
    - {b stalling}: a router acknowledges just under the timeout,
      consuming nearly the whole retry budget without ever tripping it.

    Everything is a pure function of (seed, router, peer, round), so a
    run with a Byzantine plan is replay-deterministic and byte-identical
    across shard counts, exactly like the benign fault machinery.

    {b Unforgeability is by construction}: claimed summary additions
    must carry the {e origin router's} signature over the fingerprint
    (the per-packet origin MAC of §2.1.5), and adversary code can only
    sign through the {!Crypto_sim.Keyring} under its own id.  A hardened
    verifier therefore rejects every fabricated entry; the [hardened
    = false] mode turns verification off to measure what framing does to
    an unhardened detector. *)

type role =
  | Framer of { victim : int; extras : int }
      (** inflate summaries about [victim]'s segments with [extras]
          fabricated fingerprints per round, and under-report received
          traffic through [victim] by the same count *)
  | Equivocator
      (** submit a peer-dependent summary: one fingerprint pruned for
          one peer and not the other *)
  | Mute of { from : float }
      (** refuse all control-plane participation from time [from] *)
  | Staller of { margin : float }
      (** delay every ack to [margin] of the peer's total retry budget,
          in [0,1) — just under the timeout *)

type stats = {
  framing_attempts : int;
      (** rounds in which a framer submitted fabricated entries *)
  forgeries_rejected : int;
      (** fabricated summary entries whose origin MAC failed *)
  forgeries_accepted : int;
      (** fabricated entries folded into a summary (unhardened mode
          only; always 0 when hardened) *)
  equivocations : int;  (** cross-peer digest mismatches detected *)
  disputes : int;
      (** threshold-crossing rounds that went to corroboration instead
          of alarming directly *)
  mute_refusals : int;  (** corroboration requests a mute router ignored *)
}

type t

val create :
  ?hardened:bool -> seed:int -> n:int -> roles:(int * role) list -> unit -> t
(** A Byzantine plan over routers [0 .. n-1].  [roles] assigns at most
    one role per router (later entries win).  [hardened] (default
    [true]) controls whether verifiers check origin MACs; the [false]
    mode exists only to measure the unhardened baseline.  Raises
    [Invalid_argument] on an out-of-range router or victim, a
    non-positive [extras], or a [margin] outside [0,1). *)

val routers : t -> int list
(** Routers with a Byzantine role, ascending — the oracle's
    protocol-faulty ground truth. *)

val role : t -> int -> role option
val is_byzantine : t -> int -> bool
val hardened : t -> bool

val mute_active : t -> router:int -> now:float -> bool
(** True when [router] has a [Mute] role whose [from] has passed. *)

val stall_margin : t -> router:int -> float option

(** {1 Claims}

    A {e claim} is what a router tells a peer its round summary was:
    the summary itself plus any {e extras} — fingerprints it asserts
    beyond what it provably observed, each carrying an origin id and an
    origin-MAC tag. *)

type extra = {
  fp : int64;
  origin : int;   (** the router the claimant says sourced the packet *)
  tag : Crypto_sim.Keyring.signature;  (** origin's MAC over [fp] *)
}

val summary_claim :
  t ->
  claimant:int ->
  peer:int ->
  segment:int list ->
  round:int ->
  Summary.t ->
  Summary.t * extra list
(** What [claimant] reports to [peer] about [segment] this round.
    Honest claimants return the truth unchanged with no extras.  A
    framer whose victim lies on [segment] returns the truth plus
    [extras] fabricated entries (tags it cannot validly produce) when
    reporting traffic {e into} the victim, and a copy with fingerprints
    pruned when reporting traffic {e out of} it.  An equivocator
    returns a copy with one peer-dependent fingerprint pruned.  The
    truthful summary is never mutated. *)

val sign_extra : t -> origin:int -> fp:int64 -> extra
(** A {e legitimately} signed extra (the origin really vouches for the
    fingerprint) — used by tests to pin that screening accepts genuine
    tags and rejects only forgeries. *)

val screen :
  t ->
  ?probe:Netsim.Probe.t ->
  ?time:float ->
  claimant:int ->
  summary:Summary.t ->
  extras:extra list ->
  unit ->
  int
(** Verify each extra's tag against its claimed origin.  Entries that
    verify are folded into [summary]; forgeries are dropped, counted in
    {!stats}, and — with [probe] — journaled as a ["forgery_rejected"]
    fault record and traced on the "faults" track.  Returns the number
    rejected.  With [hardened = false] every extra is folded in and
    counted as accepted. *)

val digest : Summary.t -> int64
(** Order-independent fingerprint-set digest — what peers compare to
    detect equivocation without shipping whole summaries twice. *)

val note_dispute : t -> unit
val note_equivocation : t -> unit
val note_mute_refusal : t -> unit
(** Detector-side bookkeeping hooks feeding {!stats}. *)

val stats : t -> stats
