type config = {
  tau : float;
  slack : float;
  th_single : float;
  th_combined : float;
  learning_rounds : int;
  sigma_floor : float;
  min_suspicious : int;
}

let default_config =
  { tau = 2.0; slack = 0.3; th_single = 0.99; th_combined = 0.99; learning_rounds = 5;
    sigma_floor = 40.0; min_suspicious = 1 }

type loss = {
  fp : int64;
  size : int;
  flow : int;
  time : float;
  qpred : float;
  confidence : float;
}

type report = {
  round : int;
  start_time : float;
  end_time : float;
  arrivals : int;
  departures : int;
  losses : loss list;
  fabricated : int;
  predicted_congestive : int;
  c_single_max : float;
  c_combined : float option;
  victims : int list;  (* flows with individually-malicious losses *)
  alarm : bool;
  learning : bool;
}

type t = {
  qmon : Qmon.t;
  config : config;
  qlimit : float;
  router : int;
  next : int;
  probe : Netsim.Probe.t option;
  ctrl : Ctrl.t option;
  retry : Ctrl.retry option;
  error : Mrstats.Welford.t;
  mutable error_samples_rev : float list;
  mutable error_sample_count : int;
  mutable qpred : float;
  mutable carry_d : Qmon.entry list;   (* departures past the horizon *)
  mutable round : int;
  mutable reports_rev : report list;
  (* Graceful degradation under a faulty control plane: rounds whose
     departure report never arrived (alarm suppressed, never an
     accusation) and the consecutive-refusal streak that eventually
     judges the reporter fail-stop. *)
  mutable rounds_degraded : int;
  mutable mute_streak : int;
  mutable failstopped : bool;
}

let mu_sigma t =
  let sigma = Float.max t.config.sigma_floor (Mrstats.Welford.stddev t.error) in
  (Mrstats.Welford.mean t.error, sigma)

let c_single t ~qpred ~size =
  let mu, sigma = mu_sigma t in
  (* Fig 6.2: the loss is malicious iff there was room in the queue, i.e.
     X = q_act - q_pred satisfies X + q_pred + ps <= q_limit. *)
  Mrstats.Erf.normal_cdf ~mu ~sigma (t.qlimit -. qpred -. float_of_int size)

type replay_event =
  | Arrive of Qmon.entry
  | Depart of Qmon.entry

let process_round t (data : Qmon.round_data) ~horizon ~learning =
  let departed = Hashtbl.create (List.length data.Qmon.departures * 2) in
  List.iter (fun (e : Qmon.entry) -> Hashtbl.replace departed e.Qmon.fp ())
    data.Qmon.departures;
  let occ_of = Hashtbl.create 16 in
  List.iter (fun (fp, occ) -> Hashtbl.replace occ_of fp occ) data.Qmon.occupancy_samples;
  (* Departures beyond the horizon belong to the next replay so that
     q_pred carries the backlog across round boundaries. *)
  let now_d, later_d =
    List.partition (fun (e : Qmon.entry) -> e.Qmon.time <= horizon) data.Qmon.departures
  in
  let events =
    List.merge
      (fun a b ->
        let time = function Arrive e | Depart e -> e.Qmon.time in
        compare (time a) (time b))
      (List.map (fun e -> Arrive e) data.Qmon.arrivals)
      (List.map (fun e -> Depart e) (List.merge Qmon.(fun a b -> compare a.time b.time)
                                       t.carry_d now_d))
  in
  t.carry_d <- later_d;
  let losses = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Depart e -> t.qpred <- Float.max 0.0 (t.qpred -. float_of_int e.Qmon.size)
      | Arrive e ->
          if Hashtbl.mem departed e.Qmon.fp then begin
            (* Admitted: calibrate the prediction error if the trusted
               occupancy sample is available. *)
            (match Hashtbl.find_opt occ_of e.Qmon.fp with
            | Some occ when learning ->
                let err = float_of_int occ -. t.qpred in
                Mrstats.Welford.add t.error err;
                if t.error_sample_count < 100_000 then begin
                  t.error_sample_count <- t.error_sample_count + 1;
                  t.error_samples_rev <- err :: t.error_samples_rev
                end
            | _ -> ());
            t.qpred <- t.qpred +. float_of_int e.Qmon.size
          end
          else begin
            let confidence = c_single t ~qpred:t.qpred ~size:e.Qmon.size in
            losses :=
              { fp = e.Qmon.fp; size = e.Qmon.size; flow = e.Qmon.flow;
                time = e.Qmon.time; qpred = t.qpred; confidence }
              :: !losses
          end)
    events;
  List.rev !losses

let evaluate t ~losses ~fabricated ~learning =
  let n = List.length losses in
  let c_single_max = List.fold_left (fun acc l -> Float.max acc l.confidence) 0.0 losses in
  let suspicious_n =
    List.length (List.filter (fun l -> l.confidence >= t.config.th_single) losses)
  in
  let c_combined =
    if n < 2 then None
    else begin
      let mu, sigma = mu_sigma t in
      let mean f = List.fold_left (fun acc l -> acc +. f l) 0.0 losses /. float_of_int n in
      Some
        (Mrstats.Ztest.combined_loss_confidence ~qlimit:t.qlimit
           ~mean_qpred:(mean (fun l -> l.qpred))
           ~mean_ps:(mean (fun l -> float_of_int l.size))
           ~mu ~sigma ~n)
    end
  in
  let alarm =
    (not learning)
    && (fabricated > 0
       || suspicious_n >= t.config.min_suspicious
       || match c_combined with Some c -> c >= t.config.th_combined | None -> false)
  in
  (c_single_max, c_combined, alarm)

let run_round t ~start_time ~end_time ~learning ~degraded =
  let horizon = end_time -. t.config.slack in
  let data = Qmon.drain t.qmon ~horizon in
  let losses = process_round t data ~horizon ~learning in
  let fabricated = List.length data.Qmon.fabricated in
  let c_single_max, c_combined, alarm = evaluate t ~losses ~fabricated ~learning in
  (* A round whose departure report never arrived has no trustworthy
     replay: suppress the alarm rather than accuse on partial data. *)
  let alarm = alarm && not degraded in
  let predicted_congestive =
    List.length (List.filter (fun l -> l.confidence < t.config.th_single) losses)
  in
  let victims =
    (* Name a flow only on repeated individually-malicious losses within
       the round: one borderline packet is not an attribution. *)
    let counts = Hashtbl.create 8 in
    List.iter
      (fun l ->
        if l.confidence >= t.config.th_single then
          Hashtbl.replace counts l.flow
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts l.flow)))
      losses;
    List.sort compare
      (Hashtbl.fold (fun flow c acc -> if c >= 2 then flow :: acc else acc) counts [])
  in
  let report =
    { round = t.round; start_time; end_time;
      arrivals = List.length data.Qmon.arrivals;
      departures = List.length data.Qmon.departures;
      losses; fabricated; predicted_congestive; c_single_max; c_combined; victims;
      alarm; learning }
  in
  t.round <- t.round + 1;
  t.reports_rev <- report :: t.reports_rev;
  match t.probe with
  | None -> ()
  | Some probe ->
      let track = Printf.sprintf "chi r%d" t.router in
      let round_span =
        Netsim.Probe.trace_span probe ~track
          ~name:(Printf.sprintf "chi round %d" report.round)
          ~cat:"round" ~start:start_time ~finish:end_time ~routers:[ t.router ]
          ~args:
            [ ("arrivals", Telemetry.Export.Int report.arrivals);
              ("departures", Telemetry.Export.Int report.departures);
              ("losses", Telemetry.Export.Int (List.length losses));
              ("fabricated", Telemetry.Export.Int fabricated);
              ("learning", Telemetry.Export.Bool learning) ]
          ()
      in
      if not learning then begin
        (* Evidence: the individually-suspicious losses this verdict
           rests on, plus the round span itself. *)
        let loss_evidence =
          List.filter_map
            (fun l ->
              if l.confidence >= t.config.th_single then
                Netsim.Probe.trace_instant probe ~track ~name:"suspicious-loss"
                  ~cat:"evidence" ~time:l.time ~routers:[ t.router ]
                  ~args:
                    [ ("flow", Telemetry.Export.Int l.flow);
                      ("size", Telemetry.Export.Int l.size);
                      ("qpred", Telemetry.Export.Float l.qpred);
                      ("confidence", Telemetry.Export.Float l.confidence) ]
                  ()
              else None)
            losses
        in
        Netsim.Probe.record_verdict probe ~time:end_time ~detector:"chi"
          ~subject:t.router ~suspects:victims ~confidence:c_single_max ~alarm
          ~detail:
            (Printf.sprintf "round=%d losses=%d fabricated=%d" report.round
               (List.length losses) fabricated)
          ~evidence:(Option.to_list round_span @ loss_evidence)
          ()
      end

let mute_rounds = 3

let deploy ~net ~rt ~router ~next ?(config = default_config)
    ?(key = Crypto_sim.Siphash.key_of_string "chi-monitor") ?predict ?skew ?probe
    ?ctrl ?retry () =
  let predict =
    match predict with Some p -> p | None -> Qmon.predict_of_routing rt ~router
  in
  let qmon = Qmon.attach ~net ~predict ~key ?skew ~router ~next () in
  let qlimit =
    match Netsim.Net.iface net ~src:router ~dst:next with
    | Some iface -> float_of_int (Netsim.Iface.queue_limit iface)
    | None -> invalid_arg "Chi.deploy: no such link"
  in
  let t =
    { qmon; config; qlimit; router; next; probe; ctrl; retry;
      error = Mrstats.Welford.create ();
      error_samples_rev = []; error_sample_count = 0; qpred = 0.0; carry_d = [];
      round = 0; reports_rev = [];
      rounds_degraded = 0; mute_streak = 0; failstopped = false }
  in
  Qmon.set_calibrating qmon true;
  let sim = Netsim.Net.sim net in
  let rec tick start_time () =
    let end_time = Netsim.Sim.now sim in
    let learning = t.round < config.learning_rounds in
    (* The downstream neighbour's departure report rides the (possibly
       faulty) control plane: an exhausted retry budget degrades the
       round instead of wedging it, and a persistently mute reporter is
       judged fail-stop — never accused of the drops χ cannot check. *)
    let degraded =
      match t.ctrl with
      | None -> false
      | Some ch -> (
          let tag = (((t.router * 8191) + t.next) * 8191) + t.round in
          match
            Ctrl.send ch ?retry:t.retry ~now:end_time ~src:t.next ~dst:t.router
              ~tag ()
          with
          | Ctrl.Delivered _ ->
              t.mute_streak <- 0;
              false
          | Ctrl.Timed_out _ ->
              t.rounds_degraded <- t.rounds_degraded + 1;
              t.mute_streak <- t.mute_streak + 1;
              true)
    in
    run_round t ~start_time ~end_time ~learning ~degraded;
    if t.mute_streak >= mute_rounds && not t.failstopped then begin
      t.failstopped <- true;
      match t.probe with
      | None -> ()
      | Some probe ->
          Netsim.Probe.record_verdict probe ~time:end_time ~detector:"chi"
            ~subject:t.next
            ~suspects:[ t.router; t.next ]
            ~alarm:false
            ~detail:
              (Printf.sprintf
                 "fail-stop: departure reports refused %d consecutive rounds \
                  — excised, not accused"
                 mute_rounds)
            ()
    end;
    if t.round >= config.learning_rounds then Qmon.set_calibrating qmon false;
    Netsim.Sim.schedule sim ~delay:config.tau (tick end_time)
  in
  Netsim.Sim.schedule sim ~delay:config.tau (tick 0.0);
  t

let set_predict t p = Qmon.set_predict t.qmon p

let reports t = List.rev t.reports_rev
let alarms t = List.filter (fun r -> r.alarm) (reports t)
let rounds_degraded t = t.rounds_degraded

let error_samples t = List.rev t.error_samples_rev
