(** Protocol χ for drop-tail queues (§6.2): detecting malicious packet
    losses by predicting congestion.

    Per validation round the detector replays the monitored queue from
    the neighbours' traffic information (S and D of {!Qmon}): packets
    seen entering but never leaving were dropped, and the replayed queue
    state at the drop instant tells congestion from malice.  Because
    processing jitter makes the prediction inexact, the decision is
    statistical: the error X = q_act − q_pred is calibrated during a
    learning period and the two tests of §6.2.1 are applied —

    - single-loss: c_single = P(X <= qlimit − q_pred(ts) − ps), Fig 6.2;
    - combined: a Z-test over all of a round's losses.

    An alarm means "these losses cannot be explained by congestion". *)

type config = {
  tau : float;              (** validation round length, seconds *)
  slack : float;            (** in-flight guard before round end, seconds *)
  th_single : float;        (** single-loss confidence threshold *)
  th_combined : float;      (** combined-test confidence threshold *)
  learning_rounds : int;    (** calibration rounds before detection starts *)
  sigma_floor : float;      (** lower bound on the calibrated sigma, bytes *)
  min_suspicious : int;
      (** individually-malicious losses needed in a round before the
          single-loss test alarms: 1 assumes clean links; raise it to
          tolerate a bit-error floor (§4.2.1) at the cost of letting a
          one-packet-per-round attacker hide (see ablation 5) *)
}

val default_config : config
(** tau 2 s, slack 0.3 s, thresholds 0.99 / 0.99, 5 learning rounds,
    sigma floor 40 bytes, min_suspicious 1. *)

type loss = {
  fp : int64;
  size : int;
  flow : int;
  time : float;
  qpred : float;            (** replayed queue occupancy at the loss *)
  confidence : float;       (** c_single: probability the loss was malicious *)
}

type report = {
  round : int;
  start_time : float;
  end_time : float;
  arrivals : int;
  departures : int;
  losses : loss list;
  fabricated : int;
  predicted_congestive : int;  (** losses with c_single below threshold *)
  c_single_max : float;
  c_combined : float option;   (** combined test (needs >= 2 losses) *)
  victims : int list;
      (** flows with two or more individually-malicious losses in the
          round — the attack's likely targets *)
  alarm : bool;
  learning : bool;             (** true while calibrating — never alarms *)
}

type t

val deploy :
  net:Netsim.Net.t ->
  rt:Topology.Routing.t ->
  router:int ->
  next:int ->
  ?config:config ->
  ?key:Crypto_sim.Siphash.key ->
  ?predict:(Netsim.Packet.t -> int option) ->
  ?skew:(reporter:int -> float) ->
  ?probe:Netsim.Probe.t ->
  ?ctrl:Ctrl.t ->
  ?retry:Ctrl.retry ->
  unit ->
  t
(** Install the monitor on queue ⟨router → next⟩ and schedule validation
    rounds every [tau] seconds.  [predict] overrides the neighbours'
    forwarding prediction (defaults to single-shortest-path from [rt];
    pass {!Qmon.predict_of_ecmp} when the network runs ECMP, §7.4.1).
    With [probe], every post-learning round's verdict (suspect flows,
    max single-loss confidence, alarm) is journaled as a typed
    {!Netsim.Probe.verdict}.

    With [ctrl], the downstream neighbour's per-round departure report
    rides that lossy control-plane channel under [retry]: a timed-out
    report {e degrades} the round — χ has no trustworthy replay, so the
    alarm is suppressed rather than raised on partial data — and three
    consecutive refusals (a protocol-faulty mute reporter) judge the
    reporter {b fail-stop} with a non-alarming verdict.  χ never
    convicts a router for silence. *)

val reports : t -> report list
(** All completed round reports, oldest first. *)

val alarms : t -> report list
(** The alarming rounds only. *)

val rounds_degraded : t -> int
(** Rounds whose departure report exhausted its [ctrl] retry budget
    (alarm suppressed, never an accusation). *)

val set_predict : t -> (Netsim.Packet.t -> int option) -> unit
(** Swap the monitor's forwarding prediction (call after a routing
    change; see {!Chi_fleet} with a response engine). *)

val mu_sigma : t -> float * float
(** The calibrated error distribution. *)

val error_samples : t -> float list
(** The raw calibration samples of X = q_act − q_pred (capped at 100k) —
    the data behind the Fig 6.3 normality check. *)
