type link_faults = {
  loss : float;
  duplicate : float;
  reorder : float;
  reorder_delay : float;
}

let clean = { loss = 0.0; duplicate = 0.0; reorder = 0.0; reorder_delay = 0.0 }

type retry = { max_attempts : int; base_timeout : float; backoff : float }

let default_retry = { max_attempts = 4; base_timeout = 0.25; backoff = 2.0 }

type outcome =
  | Delivered of { attempts : int; duplicated : bool; extra_delay : float }
  | Timed_out of { attempts : int; waited : float }

type stats = {
  sends : int;
  attempts : int;
  losses : int;
  duplicates : int;
  reorders : int;
  timeouts : int;
  mutes : int;
  stalls : int;
}

type peer_fault = { mute_from : float option; stall_margin : float option }

let no_peer_fault = { mute_from = None; stall_margin = None }

type t = {
  key : Crypto_sim.Siphash.key;
  default : link_faults;
  per_link : (int * int, link_faults) Hashtbl.t;
  peer_faults : (int, peer_fault) Hashtbl.t;
  mutable sends : int;
  mutable attempts : int;
  mutable losses : int;
  mutable duplicates : int;
  mutable reorders : int;
  mutable timeouts : int;
  mutable mutes : int;
  mutable stalls : int;
  mutable observer : (attempts:int -> ok:bool -> unit) option;
}

let check_faults f =
  let prob name p =
    if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Ctrl: %s probability %g outside [0,1]" name p)
  in
  prob "loss" f.loss;
  prob "duplicate" f.duplicate;
  prob "reorder" f.reorder;
  if not (Float.is_finite f.reorder_delay) || f.reorder_delay < 0.0 then
    invalid_arg "Ctrl: negative reorder delay"

let create ?(seed = 1) ?(default = clean) ?(links = []) () =
  check_faults default;
  let per_link = Hashtbl.create (max 4 (List.length links)) in
  List.iter
    (fun (lk, f) ->
      check_faults f;
      Hashtbl.replace per_link lk f)
    links;
  { key = Crypto_sim.Siphash.key_of_ints (Int64.of_int seed) 0xc791L;
    default; per_link; peer_faults = Hashtbl.create 4;
    sends = 0; attempts = 0; losses = 0; duplicates = 0; reorders = 0;
    timeouts = 0; mutes = 0; stalls = 0; observer = None }

let reliable () = create ()

let faults_for t ~src ~dst =
  match Hashtbl.find_opt t.per_link (src, dst) with
  | Some f -> f
  | None -> t.default

let set_peer_fault t ~router pf =
  (match pf.stall_margin with
  | Some m when (not (Float.is_finite m)) || m < 0.0 || m >= 1.0 ->
      invalid_arg (Printf.sprintf "Ctrl: stall margin %g outside [0,1)" m)
  | _ -> ());
  (match pf.mute_from with
  | Some f when (not (Float.is_finite f)) || f < 0.0 ->
      invalid_arg "Ctrl: mute start must be non-negative"
  | _ -> ());
  if pf = no_peer_fault then Hashtbl.remove t.peer_faults router
  else Hashtbl.replace t.peer_faults router pf

let peer_fault t ~router =
  Option.value (Hashtbl.find_opt t.peer_faults router) ~default:no_peer_fault

(* The full wait a sender endures before giving up: the sum of the
   exponentially backed-off per-attempt timeouts. *)
let budget_wait retry =
  let rec go i timeout acc =
    if i > retry.max_attempts then acc else go (i + 1) (timeout *. retry.backoff) (acc +. timeout)
  in
  go 1 retry.base_timeout 0.0

(* One coin per (src, dst, tag, attempt, purpose): replay-deterministic
   and independent of call order, exactly like Adversary.coin. *)
let coin t ~src ~dst ~tag ~attempt ~purpose =
  let h =
    Crypto_sim.Siphash.hash_int64s t.key
      [ Int64.of_int src; Int64.of_int dst; Int64.of_int tag;
        Int64.of_int attempt; Int64.of_int purpose ]
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9.007199254740992e15

let send t ?(retry = default_retry) ?(now = 0.0) ~src ~dst ~tag () =
  if retry.max_attempts < 1 then invalid_arg "Ctrl.send: max_attempts must be >= 1";
  if not (retry.base_timeout > 0.0) then
    invalid_arg "Ctrl.send: base_timeout must be positive";
  if not (retry.backoff >= 1.0) then invalid_arg "Ctrl.send: backoff below 1";
  t.sends <- t.sends + 1;
  let f = faults_for t ~src ~dst in
  (* A muted endpoint refuses participation outright: every attempt
     goes unanswered, the sender burns its whole retry budget and the
     exchange times out deterministically — no coins involved, so the
     surrounding sends' coin streams are unperturbed. *)
  let muted r =
    match (peer_fault t ~router:r).mute_from with
    | Some from -> now >= from
    | None -> false
  in
  let stalled r = (peer_fault t ~router:r).stall_margin in
  let rec go attempt waited timeout =
    t.attempts <- t.attempts + 1;
    if coin t ~src ~dst ~tag ~attempt ~purpose:0 < f.loss then begin
      t.losses <- t.losses + 1;
      if attempt >= retry.max_attempts then begin
        t.timeouts <- t.timeouts + 1;
        Timed_out { attempts = attempt; waited = waited +. timeout }
      end
      else go (attempt + 1) (waited +. timeout) (timeout *. retry.backoff)
    end
    else begin
      let duplicated = coin t ~src ~dst ~tag ~attempt ~purpose:1 < f.duplicate in
      if duplicated then t.duplicates <- t.duplicates + 1;
      let reordered = coin t ~src ~dst ~tag ~attempt ~purpose:2 < f.reorder in
      if reordered then t.reorders <- t.reorders + 1;
      Delivered
        { attempts = attempt; duplicated;
          extra_delay = waited +. (if reordered then f.reorder_delay else 0.0) }
    end
  in
  let outcome =
    if muted src || muted dst then begin
      t.mutes <- t.mutes + 1;
      t.attempts <- t.attempts + retry.max_attempts;
      t.losses <- t.losses + retry.max_attempts;
      t.timeouts <- t.timeouts + 1;
      Timed_out { attempts = retry.max_attempts; waited = budget_wait retry }
    end
    else
      match go 1 0.0 retry.base_timeout with
      | Delivered d as delivered -> (
          (* A staller acknowledges just under the timeout: the message
             gets through, but only after [margin] of the sender's whole
             retry budget has been consumed. *)
          match
            match stalled src with Some m -> Some m | None -> stalled dst
          with
          | Some margin ->
              t.stalls <- t.stalls + 1;
              Delivered
                { d with
                  extra_delay =
                    Float.max d.extra_delay (margin *. budget_wait retry) }
          | None -> delivered)
      | timed_out -> timed_out
  in
  (match t.observer with
  | None -> ()
  | Some f ->
      let attempts, ok =
        match outcome with
        | Delivered { attempts; _ } -> (attempts, true)
        | Timed_out { attempts; _ } -> (attempts, false)
      in
      f ~attempts ~ok);
  outcome

let set_observer t f = t.observer <- f

let stats t =
  { sends = t.sends; attempts = t.attempts; losses = t.losses;
    duplicates = t.duplicates; reorders = t.reorders; timeouts = t.timeouts;
    mutes = t.mutes; stalls = t.stalls }
