type link_faults = {
  loss : float;
  duplicate : float;
  reorder : float;
  reorder_delay : float;
}

let clean = { loss = 0.0; duplicate = 0.0; reorder = 0.0; reorder_delay = 0.0 }

type retry = { max_attempts : int; base_timeout : float; backoff : float }

let default_retry = { max_attempts = 4; base_timeout = 0.25; backoff = 2.0 }

type outcome =
  | Delivered of { attempts : int; duplicated : bool; extra_delay : float }
  | Timed_out of { attempts : int; waited : float }

type stats = {
  sends : int;
  attempts : int;
  losses : int;
  duplicates : int;
  reorders : int;
  timeouts : int;
}

type t = {
  key : Crypto_sim.Siphash.key;
  default : link_faults;
  per_link : (int * int, link_faults) Hashtbl.t;
  mutable sends : int;
  mutable attempts : int;
  mutable losses : int;
  mutable duplicates : int;
  mutable reorders : int;
  mutable timeouts : int;
  mutable observer : (attempts:int -> ok:bool -> unit) option;
}

let check_faults f =
  let prob name p =
    if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Ctrl: %s probability %g outside [0,1]" name p)
  in
  prob "loss" f.loss;
  prob "duplicate" f.duplicate;
  prob "reorder" f.reorder;
  if not (Float.is_finite f.reorder_delay) || f.reorder_delay < 0.0 then
    invalid_arg "Ctrl: negative reorder delay"

let create ?(seed = 1) ?(default = clean) ?(links = []) () =
  check_faults default;
  let per_link = Hashtbl.create (max 4 (List.length links)) in
  List.iter
    (fun (lk, f) ->
      check_faults f;
      Hashtbl.replace per_link lk f)
    links;
  { key = Crypto_sim.Siphash.key_of_ints (Int64.of_int seed) 0xc791L;
    default; per_link;
    sends = 0; attempts = 0; losses = 0; duplicates = 0; reorders = 0;
    timeouts = 0; observer = None }

let reliable () = create ()

let faults_for t ~src ~dst =
  match Hashtbl.find_opt t.per_link (src, dst) with
  | Some f -> f
  | None -> t.default

(* One coin per (src, dst, tag, attempt, purpose): replay-deterministic
   and independent of call order, exactly like Adversary.coin. *)
let coin t ~src ~dst ~tag ~attempt ~purpose =
  let h =
    Crypto_sim.Siphash.hash_int64s t.key
      [ Int64.of_int src; Int64.of_int dst; Int64.of_int tag;
        Int64.of_int attempt; Int64.of_int purpose ]
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9.007199254740992e15

let send t ?(retry = default_retry) ~src ~dst ~tag () =
  if retry.max_attempts < 1 then invalid_arg "Ctrl.send: max_attempts must be >= 1";
  if not (retry.base_timeout > 0.0) then
    invalid_arg "Ctrl.send: base_timeout must be positive";
  if not (retry.backoff >= 1.0) then invalid_arg "Ctrl.send: backoff below 1";
  t.sends <- t.sends + 1;
  let f = faults_for t ~src ~dst in
  let rec go attempt waited timeout =
    t.attempts <- t.attempts + 1;
    if coin t ~src ~dst ~tag ~attempt ~purpose:0 < f.loss then begin
      t.losses <- t.losses + 1;
      if attempt >= retry.max_attempts then begin
        t.timeouts <- t.timeouts + 1;
        Timed_out { attempts = attempt; waited = waited +. timeout }
      end
      else go (attempt + 1) (waited +. timeout) (timeout *. retry.backoff)
    end
    else begin
      let duplicated = coin t ~src ~dst ~tag ~attempt ~purpose:1 < f.duplicate in
      if duplicated then t.duplicates <- t.duplicates + 1;
      let reordered = coin t ~src ~dst ~tag ~attempt ~purpose:2 < f.reorder in
      if reordered then t.reorders <- t.reorders + 1;
      Delivered
        { attempts = attempt; duplicated;
          extra_delay = waited +. (if reordered then f.reorder_delay else 0.0) }
    end
  in
  let outcome = go 1 0.0 retry.base_timeout in
  (match t.observer with
  | None -> ()
  | Some f ->
      let attempts, ok =
        match outcome with
        | Delivered { attempts; _ } -> (attempts, true)
        | Timed_out { attempts; _ } -> (attempts, false)
      in
      f ~attempts ~ok);
  outcome

let set_observer t f = t.observer <- f

let stats t =
  { sends = t.sends; attempts = t.attempts; losses = t.losses;
    duplicates = t.duplicates; reorders = t.reorders; timeouts = t.timeouts }
