(** A lossy control-plane channel with bounded retry.

    The detection protocols exchange summaries, consensus messages and
    verdicts over the same unreliable network they monitor (Amir et
    al.'s authenticated adversarial routing makes the same point: a
    detector that assumes a clean control plane wedges on the first
    lost message).  This module models that channel at the round
    abstraction level: a send either arrives, possibly duplicated or
    reordered, or is lost, and the sender retries with exponential
    backoff up to a bound.

    Outcomes are {e replay-deterministic}: each (src, dst, tag,
    attempt) tuple is hashed with a seeded SipHash coin, so the same
    schedule of sends produces the same outcomes whatever order the
    calls interleave in — the property the chaos sweeps and the
    jobs-determinism guarantee rest on. *)

type link_faults = {
  loss : float;           (** per-attempt loss probability, in [0,1] *)
  duplicate : float;      (** probability a delivered message is duplicated *)
  reorder : float;        (** probability a delivered message is held back *)
  reorder_delay : float;  (** how long a reordered message is held, seconds *)
}

val clean : link_faults
(** No loss, no duplication, no reordering. *)

type retry = {
  max_attempts : int;   (** total transmissions, >= 1 *)
  base_timeout : float; (** seconds before the first retransmission, > 0 *)
  backoff : float;      (** multiplier per further attempt, >= 1 *)
}

val default_retry : retry
(** 4 attempts, 0.25 s base timeout, doubling.

    {b Budget-exhaustion semantics.}  Attempt [i] (1-based) waits
    [base_timeout *. backoff ** (i - 1)] seconds before the next
    retransmission; under the defaults the backoff sequence is exactly
    0.25 s, 0.5 s, 1 s, 2 s.  When every attempt is lost the sender
    gives up after [max_attempts] transmissions having waited the full
    geometric sum — [Timed_out { attempts = max_attempts; waited }]
    with [waited = base_timeout *. (backoff^max_attempts - 1) /.
    (backoff - 1)], i.e. exactly 3.75 s under the defaults.  Exhaustion
    is a {e degradation} signal, never a verdict: the protocols riding
    the channel carry their round state over (fatih, pi2) and only
    after several {e consecutive} exhausted rounds judge the
    unreachable peer fail-stop — excised from routing, recorded
    non-alarming — mirroring the dissertation's §4.2.1 benign-failure
    rule that silence is never treated as malice. *)

type outcome =
  | Delivered of {
      attempts : int;      (** transmissions used, 1 = first try *)
      duplicated : bool;
      extra_delay : float; (** backoff waits plus any reordering hold *)
    }
  | Timed_out of { attempts : int; waited : float }
      (** every attempt was lost; the round must degrade, not wedge *)

type stats = {
  sends : int;       (** messages offered to the channel *)
  attempts : int;    (** transmissions including retries *)
  losses : int;      (** transmissions lost in flight *)
  duplicates : int;
  reorders : int;
  timeouts : int;    (** sends that exhausted their attempts *)
  mutes : int;       (** sends refused outright by a muted endpoint *)
  stalls : int;      (** deliveries a stalling endpoint delayed *)
}

type peer_fault = {
  mute_from : float option;
      (** refuse all participation from this instant on: every send
          touching the router burns its whole retry budget and times
          out (protocol-faulty muting, exhausting peers' budgets) *)
  stall_margin : float option;
      (** acknowledge just under the timeout: deliveries succeed but
          consume this fraction (in [0,1)) of the sender's total
          backoff budget as extra delay *)
}

val no_peer_fault : peer_fault

type t

val reliable : unit -> t
(** A channel that delivers every message on the first attempt. *)

val create :
  ?seed:int ->
  ?default:link_faults ->
  ?links:((int * int) * link_faults) list ->
  unit ->
  t
(** A channel with [default] faults on every (src, dst) pair except
    those overridden in [links].  Raises [Invalid_argument] on a
    probability outside [0,1] or a negative reorder delay. *)

val faults_for : t -> src:int -> dst:int -> link_faults

val set_peer_fault : t -> router:int -> peer_fault -> unit
(** Install (or, with {!no_peer_fault}, clear) a router's
    protocol-faulty behaviour on the channel.  Raises
    [Invalid_argument] on a stall margin outside [0,1) or a negative
    mute start. *)

val peer_fault : t -> router:int -> peer_fault

val send :
  t -> ?retry:retry -> ?now:float -> src:int -> dst:int -> tag:int -> unit ->
  outcome
(** Attempt to move one control message from [src] to [dst].  [tag]
    must be unique per logical message (round number folded with the
    segment identity) — it keys the deterministic coins.  [now]
    (default 0) is the sender's clock, consulted only by [mute_from]
    peer faults.  A send touching a muted endpoint times out after the
    full retry budget without flipping any coins, so surrounding sends
    see exactly the coin stream they would have seen anyway.  Raises
    [Invalid_argument] on a non-positive [max_attempts] or
    [base_timeout], or a [backoff] below 1. *)

val stats : t -> stats
(** Cumulative channel statistics since creation. *)

val set_observer : t -> (attempts:int -> ok:bool -> unit) option -> unit
(** Install (or clear) a per-send observer, invoked after every {!send}
    with the transmissions used and whether the message got through.
    The telemetry layer hangs its retry histogram here; observation
    never perturbs the channel's deterministic coins. *)
