(** A lossy control-plane channel with bounded retry.

    The detection protocols exchange summaries, consensus messages and
    verdicts over the same unreliable network they monitor (Amir et
    al.'s authenticated adversarial routing makes the same point: a
    detector that assumes a clean control plane wedges on the first
    lost message).  This module models that channel at the round
    abstraction level: a send either arrives, possibly duplicated or
    reordered, or is lost, and the sender retries with exponential
    backoff up to a bound.

    Outcomes are {e replay-deterministic}: each (src, dst, tag,
    attempt) tuple is hashed with a seeded SipHash coin, so the same
    schedule of sends produces the same outcomes whatever order the
    calls interleave in — the property the chaos sweeps and the
    jobs-determinism guarantee rest on. *)

type link_faults = {
  loss : float;           (** per-attempt loss probability, in [0,1] *)
  duplicate : float;      (** probability a delivered message is duplicated *)
  reorder : float;        (** probability a delivered message is held back *)
  reorder_delay : float;  (** how long a reordered message is held, seconds *)
}

val clean : link_faults
(** No loss, no duplication, no reordering. *)

type retry = {
  max_attempts : int;   (** total transmissions, >= 1 *)
  base_timeout : float; (** seconds before the first retransmission, > 0 *)
  backoff : float;      (** multiplier per further attempt, >= 1 *)
}

val default_retry : retry
(** 4 attempts, 0.25 s base timeout, doubling. *)

type outcome =
  | Delivered of {
      attempts : int;      (** transmissions used, 1 = first try *)
      duplicated : bool;
      extra_delay : float; (** backoff waits plus any reordering hold *)
    }
  | Timed_out of { attempts : int; waited : float }
      (** every attempt was lost; the round must degrade, not wedge *)

type stats = {
  sends : int;       (** messages offered to the channel *)
  attempts : int;    (** transmissions including retries *)
  losses : int;      (** transmissions lost in flight *)
  duplicates : int;
  reorders : int;
  timeouts : int;    (** sends that exhausted their attempts *)
}

type t

val reliable : unit -> t
(** A channel that delivers every message on the first attempt. *)

val create :
  ?seed:int ->
  ?default:link_faults ->
  ?links:((int * int) * link_faults) list ->
  unit ->
  t
(** A channel with [default] faults on every (src, dst) pair except
    those overridden in [links].  Raises [Invalid_argument] on a
    probability outside [0,1] or a negative reorder delay. *)

val faults_for : t -> src:int -> dst:int -> link_faults

val send : t -> ?retry:retry -> src:int -> dst:int -> tag:int -> unit -> outcome
(** Attempt to move one control message from [src] to [dst].  [tag]
    must be unique per logical message (round number folded with the
    segment identity) — it keys the deterministic coins.  Raises
    [Invalid_argument] on a non-positive [max_attempts] or
    [base_timeout], or a [backoff] below 1. *)

val stats : t -> stats
(** Cumulative channel statistics since creation. *)

val set_observer : t -> (attempts:int -> ok:bool -> unit) option -> unit
(** Install (or clear) a per-send observer, invoked after every {!send}
    with the transmissions used and whether the message got through.
    The telemetry layer hangs its retry histogram here; observation
    never perturbs the channel's deterministic coins. *)
