type env = {
  net : Netsim.Net.t;
  rt : Topology.Routing.t;
  graph : Topology.Graph.t;
  probe : Netsim.Probe.t option;
  ctrl : Ctrl.t option;
  retry : Ctrl.retry option;
  byz : Byz.t option;
  skew : (reporter:int -> float) option;
  attacker : int option;
  duration : float;
  seed : int;
}

type verdict = {
  time : float;
  suspects : int list;
  detail : string;
}

module type S = sig
  type t

  val name : string
  val doc : string
  val init : env -> t
  val on_round : t -> now:float -> unit
  val on_ctrl : t -> now:float -> src:int -> dst:int -> up:bool -> unit
  val verdicts : t -> verdict list
  val report : t -> unit
end

type detector = (module S)

type instance = Instance : (module S with type t = 'a) * 'a -> instance

let registry : (string, detector) Hashtbl.t = Hashtbl.create 8

let register (module M : S) = Hashtbl.replace registry M.name (module M : S)
let find name = Hashtbl.find_opt registry name

let names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

let doc_of (module M : S) = M.doc
let name_of (module M : S) = M.name

let init (module M : S) env = Instance ((module M), M.init env)
let instance_name (Instance ((module M), _)) = M.name
let on_round (Instance ((module M), t)) ~now = M.on_round t ~now
let on_ctrl (Instance ((module M), t)) ~now ~src ~dst ~up =
  M.on_ctrl t ~now ~src ~dst ~up
let verdicts (Instance ((module M), t)) = M.verdicts t
let report (Instance ((module M), t)) = M.report t
