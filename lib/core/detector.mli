(** A uniform interface over the live detection protocols.

    The experiment harness used to hard-code one [match] per protocol;
    every protocol is now a first-class module implementing {!S},
    registered by name in a global table.  The harness looks a detector
    up by its command-line spelling, [init]s it against the scenario
    environment, and drives it through the four hooks — so adding a
    protocol is one module plus one {!register} call, with no harness
    edits.

    The hooks mirror how the paper's protocols consume a network:
    [init] deploys the monitor (subscribing to whatever events it
    needs), [on_round] fires at engine epoch barriers (the sharded
    engine's quantum — classic runs never call it, live protocols
    self-schedule their τ rounds), [on_ctrl] reports administrative
    link-state changes (benign failures a detector must excuse rather
    than accuse, §4.2), and [verdicts]/[report] expose what the detector
    concluded. *)

type env = {
  net : Netsim.Net.t;
  rt : Topology.Routing.t;
  graph : Topology.Graph.t;
  probe : Netsim.Probe.t option;    (** journal verdicts through this *)
  ctrl : Ctrl.t option;             (** lossy control-plane channel, if faulted *)
  retry : Ctrl.retry option;        (** retry budget for [ctrl] *)
  byz : Byz.t option;
      (** Byzantine control-plane plan: protocols that understand
          claims harden themselves against it (screen origin MACs,
          corroborate before alarming) and run validation on what the
          scripted liars actually submit *)
  skew : (reporter:int -> float) option;
      (** per-reporter clock skew (fault injection) *)
  attacker : int option;
      (** scenario ground truth: the compromised router, when the
          detector needs a deployment site (χ monitors one queue) *)
  duration : float;                 (** seconds the scenario will run *)
  seed : int;
}

(** A generic accusation: who a protocol suspects, and when.  Each
    adapter maps its protocol-specific detection record onto this. *)
type verdict = {
  time : float;
  suspects : int list;              (** routers accused (possibly a segment) *)
  detail : string;                  (** protocol-specific one-liner *)
}

module type S = sig
  type t

  val name : string
  (** Registry key and command-line spelling. *)

  val doc : string
  (** One-line description for [--help] and error messages. *)

  val init : env -> t
  (** Deploy against the scenario.  Runs before the simulation starts;
      raises [Invalid_argument] when the environment cannot host the
      protocol (e.g. χ without an attacker to monitor). *)

  val on_round : t -> now:float -> unit
  (** Epoch barrier of the sharded engine.  Live protocols that schedule
      their own validation rounds ignore it. *)

  val on_ctrl : t -> now:float -> src:int -> dst:int -> up:bool -> unit
  (** An administrative link-state change ({!Netsim.Net.fail_link} and
      friends) became visible. *)

  val verdicts : t -> verdict list
  (** Accusations so far, oldest first. *)

  val report : t -> unit
  (** Print the end-of-run summary on stdout. *)
end

type detector = (module S)

type instance
(** A running detector: a module paired with its state. *)

val register : detector -> unit
(** Add (or replace) a detector under its [name]. *)

val find : string -> detector option

val names : unit -> string list
(** Registered names, sorted. *)

val doc_of : detector -> string
val name_of : detector -> string

val init : detector -> env -> instance
val instance_name : instance -> string
val on_round : instance -> now:float -> unit
val on_ctrl : instance -> now:float -> src:int -> dst:int -> up:bool -> unit
val verdicts : instance -> verdict list
val report : instance -> unit
