(* Adapters from the live protocol deployments to {!Detector.S}.

   The chi and fatih report blocks are verbatim what the experiment
   harness used to print from its per-protocol [match] — golden tests
   compare that output byte-for-byte. *)

let segment_interior = function
  | [] | [ _ ] | [ _; _ ] -> []
  | seg -> List.filteri (fun i _ -> i > 0 && i < List.length seg - 1) seg

module Chi_adapter = struct
  type t = { attacker : int; next : int; chi : Chi.t }

  let name = "chi"
  let doc = "Protocol chi: queue replay on the attacker's busiest output queue (6.2)"

  let init (env : Detector.env) =
    (* Monitor the attacker's busiest output queue; TCP through it
       creates the congestion ambiguity χ resolves. *)
    let attacker =
      match env.Detector.attacker with
      | Some a -> a
      | None -> invalid_arg "chi: the scenario names no attacker router to monitor"
    in
    let next =
      match Topology.Graph.out_neighbors env.Detector.graph attacker with
      | n :: _ -> n
      | [] -> invalid_arg "chi: attacker has no interface"
    in
    (* Ensure monitored-queue traffic exists: a TCP through it. *)
    let upstreams =
      List.filter (fun v -> v <> next)
        (Topology.Graph.out_neighbors env.Detector.graph attacker)
    in
    (match upstreams with
    | u :: _ -> ignore (Netsim.Tcp.connect env.Detector.net ~src:u ~dst:next ())
    | [] -> ());
    let config = { Chi.default_config with Chi.tau = 2.0 } in
    let chi =
      Chi.deploy ~net:env.Detector.net ~rt:env.Detector.rt ~router:attacker ~next
        ~config ?probe:env.Detector.probe ?skew:env.Detector.skew
        ?ctrl:env.Detector.ctrl ?retry:env.Detector.retry ()
    in
    { attacker; next; chi }

  let on_round _ ~now:_ = ()
  let on_ctrl _ ~now:_ ~src:_ ~dst:_ ~up:_ = ()

  let verdicts t =
    List.map
      (fun (r : Chi.report) ->
        { Detector.time = r.Chi.end_time;
          suspects = [ t.attacker ];
          detail =
            Printf.sprintf "%d losses, c_single %.3f" (List.length r.Chi.losses)
              r.Chi.c_single_max })
      (Chi.alarms t.chi)

  let report t =
    Printf.printf "chi on queue <%d -> %d>: %d rounds, %d alarms\n" t.attacker t.next
      (List.length (Chi.reports t.chi))
      (List.length (Chi.alarms t.chi));
    List.iter
      (fun (r : Chi.report) ->
        if r.Chi.alarm then
          Printf.printf "  %.0f s  %d losses, c_single %.3f\n" r.Chi.end_time
            (List.length r.Chi.losses)
            r.Chi.c_single_max)
      (Chi.reports t.chi)
end

module Fatih_adapter = struct
  type t = Fatih.t

  let name = "fatih"
  let doc = "Fatih: the Pi k+2 (k=1) segment-monitoring prototype with response (5.3)"

  let init (env : Detector.env) =
    Fatih.deploy ~net:env.Detector.net ~rt:env.Detector.rt ?probe:env.Detector.probe
      ?ctrl:env.Detector.ctrl ?retry:env.Detector.retry ?byz:env.Detector.byz ()

  let on_round _ ~now:_ = ()
  let on_ctrl _ ~now:_ ~src:_ ~dst:_ ~up:_ = ()

  let verdicts t =
    List.map
      (fun (d : Fatih.detection) ->
        { Detector.time = d.Fatih.time;
          suspects = segment_interior d.Fatih.segment;
          detail = Printf.sprintf "%d/%d missing" d.Fatih.missing d.Fatih.sent })
      (Fatih.detections t)

  let report t =
    let ds = Fatih.detections t in
    Printf.printf "fatih: %d detections\n" (List.length ds);
    if Fatih.rounds_degraded t > 0 || Fatih.rounds_excused t > 0 then
      Printf.printf
        "fatih: %d segment-rounds degraded (exchange timeout), %d excused \
         (benign link failure)\n"
        (Fatih.rounds_degraded t) (Fatih.rounds_excused t);
    List.iter
      (fun (d : Fatih.detection) ->
        Printf.printf "  %.1f s  <%s>  %d/%d missing\n" d.Fatih.time
          (String.concat "," (List.map string_of_int d.Fatih.segment))
          d.Fatih.missing d.Fatih.sent)
      ds;
    List.iter
      (fun (u : Response.event) ->
        Printf.printf "  %.1f s  routing update (%d segments excised)\n"
          u.Response.time
          (List.length u.Response.forbidden))
      (Response.updates (Fatih.response t))
end

(* Πk+2 under its paper name.  The live k = 1 deployment IS the Fatih
   prototype; registering the spelling keeps the abstract protocol
   (pik2.ml, round-level) and its packet-level instance findable under
   one registry. *)
module Pik2_adapter = struct
  include Fatih_adapter

  let name = "pik2"
  let doc = "Pi k+2 (5.2) by its paper name: the same live deployment as fatih"
end

module Pi2_adapter = struct
  type t = Pi2_live.t

  let name = "pi2"
  let doc = "Protocol Pi 2 by simulated consensus: precision-2 suspicion (5.1)"

  let init (env : Detector.env) =
    Pi2_live.deploy ~net:env.Detector.net ~rt:env.Detector.rt
      ?probe:env.Detector.probe ?ctrl:env.Detector.ctrl ?retry:env.Detector.retry
      ?byz:env.Detector.byz ()

  let on_round _ ~now:_ = ()
  let on_ctrl _ ~now:_ ~src:_ ~dst:_ ~up:_ = ()

  let verdicts t =
    List.map
      (fun (d : Pi2_live.detection) ->
        let a, b = d.Pi2_live.pair in
        { Detector.time = d.Pi2_live.time;
          suspects = [ a; b ];
          detail =
            Printf.sprintf "%d missing, %d fabricated" d.Pi2_live.missing
              d.Pi2_live.fabricated })
      (Pi2_live.detections t)

  let report t =
    let ds = Pi2_live.detections t in
    Printf.printf "pi2: %d detections, %d suspected pairs\n" (List.length ds)
      (List.length (Pi2_live.suspected_pairs t));
    List.iter
      (fun (d : Pi2_live.detection) ->
        let a, b = d.Pi2_live.pair in
        Printf.printf "  %.1f s  pair <%d,%d>  %d missing, %d fabricated\n"
          d.Pi2_live.time a b d.Pi2_live.missing d.Pi2_live.fabricated)
      ds
end

module Watchers_adapter = struct
  type t = Watchers_live.t

  let name = "watchers"
  let doc = "WATCHERS conservation-of-flow validation over NetFlow counters (3.1)"

  let init (env : Detector.env) =
    Watchers_live.deploy ~net:env.Detector.net ?probe:env.Detector.probe ()

  let on_round _ ~now:_ = ()
  let on_ctrl _ ~now:_ ~src:_ ~dst:_ ~up:_ = ()

  let verdicts t =
    List.filter_map
      (fun (v : Watchers_live.verdict) ->
        match v.Watchers_live.suspected with
        | [] -> None
        | suspects ->
            Some
              { Detector.time = v.Watchers_live.time;
                suspects;
                detail = Printf.sprintf "round %d transit deficit" v.Watchers_live.round })
      (Watchers_live.verdicts t)

  let report t =
    Printf.printf "watchers: %d rounds, %d suspected routers\n"
      (List.length (Watchers_live.verdicts t))
      (List.length (Watchers_live.suspected_routers t));
    List.iter
      (fun (v : Watchers_live.verdict) ->
        if v.Watchers_live.suspected <> [] then
          Printf.printf "  %.1f s  suspected <%s>\n" v.Watchers_live.time
            (String.concat ","
               (List.map string_of_int v.Watchers_live.suspected)))
      (Watchers_live.verdicts t)
end

module Perlman_adapter = struct
  type t = Perlman_live.t

  let name = "perlman"
  let doc = "Perlman robust delivery over f+1 disjoint paths: no detection (3.7)"

  let init (env : Detector.env) =
    let n = Topology.Graph.size env.Detector.graph in
    let p = Perlman_live.create ~net:env.Detector.net ~src:0 ~dst:(n / 2) ~f:1 in
    (* Periodic logical messages for the whole run; robustness is judged
       by sent vs delivered, not by any verdict. *)
    let sim = Netsim.Net.sim env.Detector.net in
    let period = 0.25 in
    let t = ref period in
    while !t < env.Detector.duration do
      let at = !t in
      Netsim.Sim.schedule_at sim ~time:at (fun () -> Perlman_live.send p ~size:500);
      t := !t +. period
    done;
    p

  let on_round _ ~now:_ = ()
  let on_ctrl _ ~now:_ ~src:_ ~dst:_ ~up:_ = ()
  let verdicts _ = []

  let report t =
    Printf.printf "perlman: %d sent, %d delivered, %d copies over %d disjoint paths\n"
      (Perlman_live.sent t) (Perlman_live.delivered t)
      (Perlman_live.copies_received t)
      (List.length (Perlman_live.paths t))
end

let chi : Detector.detector = (module Chi_adapter)
let fatih : Detector.detector = (module Fatih_adapter)
let pik2 : Detector.detector = (module Pik2_adapter)
let pi2 : Detector.detector = (module Pi2_adapter)
let watchers : Detector.detector = (module Watchers_adapter)
let perlman : Detector.detector = (module Perlman_adapter)

let register_all () =
  (* [Hashtbl.replace] underneath: safe to call from every entry point. *)
  List.iter Detector.register [ chi; fatih; pik2; pi2; watchers; perlman ]
