(** The built-in {!Detector} instances.

    One adapter per live protocol, each wrapping its deployment behind
    {!Detector.S}:

    - ["chi"] — Protocol χ on the attacker's first output queue, with a
      TCP connection through it so congestion ambiguity exists (§6.2);
    - ["fatih"] — the Fatih Πk+2 (k = 1) prototype with response (§5.3);
    - ["pik2"] — Πk+2 by its paper name: the same live deployment as
      ["fatih"], registered under the protocol's §5.2 spelling;
    - ["pi2"] — Protocol Π2 by simulated consensus (§5.1);
    - ["watchers"] — WATCHERS conservation-of-flow validation (§3.1);
    - ["perlman"] — Perlman's robust f+1 disjoint-path delivery (§3.7):
      no detection, the robustness baseline.

    [register_all] installs them into the {!Detector} registry;
    idempotent, call it from any entry point that resolves detectors by
    name. *)

val chi : Detector.detector
val fatih : Detector.detector
val pik2 : Detector.detector
val pi2 : Detector.detector
val watchers : Detector.detector
val perlman : Detector.detector

val register_all : unit -> unit
