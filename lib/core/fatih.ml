type exchange = Full_sets | Reconcile

type config = {
  tau : float;
  thresholds : Validation.thresholds;
  min_packets : int;
  policy : Summary.policy;
  exchange : exchange;
  response : Response.config;
}

let default_config =
  { tau = 5.0; thresholds = Validation.lenient (); min_packets = 20;
    policy = Summary.Content; exchange = Full_sets;
    response = Response.default_config }

type detection = {
  time : float;
  segment : Topology.Graph.node list;
  detected_by : Topology.Graph.node * Topology.Graph.node;
  missing : int;
  fabricated : int;
  reordered : int;
  max_delay : float;
  sent : int;
}

type seg_state = {
  mutable sent : Summary.t;
  mutable received : Summary.t;
  (* Last round's sent summary: a packet "received without being sent"
     this round is benign if it was announced last round (it was simply
     in flight across the round boundary). *)
  mutable prev_sent : Summary.t;
  (* A segment edge dropped packets with its link down this round: the
     failure is locally observable (link-state flood), so the terminals
     excuse the round instead of accusing the interior router. *)
  mutable excused : bool;
}

type t = {
  config : config;
  response : Response.t;
  segs : (Topology.Graph.node list, seg_state) Hashtbl.t;
  mutable detections_rev : detection list;
  (* Time of the last routing installation: validation windows that
     overlap it see in-flight packets attributed under two different
     table generations, so only windows that started strictly after it
     are judged. *)
  mutable last_policy_change : float;
  (* §5.3.2 component overhead: fingerprints computed and summary words
     exchanged across all monitored segments. *)
  mutable fingerprints_observed : int;
  mutable words_exchanged : int;
  mutable round : int;
  (* Graceful degradation bookkeeping: segment-rounds skipped because
     the summary exchange timed out (state carried to the next round)
     and segment-rounds excused for an observable benign link failure. *)
  mutable rounds_degraded : int;
  mutable rounds_excused : int;
}

let detections t = List.rev t.detections_rev
let response t = t.response
let monitored_segments t = Hashtbl.fold (fun seg _ acc -> seg :: acc) t.segs []

let fresh_state policy =
  { sent = Summary.create policy;
    received = Summary.create policy;
    prev_sent = Summary.create policy;
    excused = false }

let reset_state policy st =
  st.prev_sent <- st.sent;
  st.sent <- Summary.create policy;
  st.received <- Summary.create policy;
  st.excused <- false

let deploy ~net ~rt ?(config = default_config)
    ?(key = Crypto_sim.Siphash.key_of_string "fatih") ?probe ?ctrl ?retry () =
  let t =
    { config; response = Response.create ~net ~config:config.response ?probe ();
      segs = Hashtbl.create 256; detections_rev = []; last_policy_change = neg_infinity;
      fingerprints_observed = 0; words_exchanged = 0; round = 0;
      rounds_degraded = 0; rounds_excused = 0 }
  in
  List.iter
    (fun seg ->
      if List.length seg = 3 && not (Hashtbl.mem t.segs seg) then
        Hashtbl.add t.segs seg (fresh_state config.policy))
    (Topology.Segments.pik2_family rt ~k:1);
  (* Predicted path per (src, dst): how a terminal router decides which
     monitored segments a packet belongs to (§4.1 predictability).  After
     a routing update the coordinator re-derives the predictions from the
     freshly installed tables (§5.3.1). *)
  let path_cache = Hashtbl.create 256 in
  let path_fn =
    ref (fun src dst -> Topology.Routing.path rt ~src ~dst)
  in
  let predicted src dst =
    match Hashtbl.find_opt path_cache (src, dst) with
    | Some p -> p
    | None ->
        let p = Option.map Array.of_list (!path_fn src dst) in
        Hashtbl.add path_cache (src, dst) p;
        p
  in
  Response.set_on_update t.response (fun pol ->
      t.last_policy_change <- Netsim.Sim.now (Netsim.Net.sim net);
      Hashtbl.reset path_cache;
      path_fn := (fun src dst -> Topology.Policy.path pol ~src ~dst);
      (* Discard mid-round state collected under the old tables. *)
      Hashtbl.iter
        (fun _ st ->
          st.sent <- Summary.create config.policy;
          st.received <- Summary.create config.policy;
          st.prev_sent <- Summary.create config.policy;
          st.excused <- false)
        t.segs);
  (* Which monitored segments a directed link belongs to, for excusing
     rounds on observable link failures. *)
  let edge_index = Hashtbl.create 256 in
  let index_edge e seg =
    Hashtbl.replace edge_index e
      (seg :: Option.value (Hashtbl.find_opt edge_index e) ~default:[])
  in
  Hashtbl.iter
    (fun seg _ ->
      match seg with
      | [ a; b; c ] ->
          index_edge (a, b) seg;
          index_edge (b, c) seg
      | _ -> ())
    t.segs;
  Netsim.Net.subscribe_iface net (fun ev ->
      match ev.Netsim.Net.kind with
      | Netsim.Iface.Delivered pkt -> (
          let u = ev.Netsim.Net.router and v = ev.Netsim.Net.next in
          match predicted pkt.Netsim.Packet.src pkt.Netsim.Packet.dst with
          | None -> ()
          | Some p ->
              let len = Array.length p in
              let fp = Netsim.Packet.fingerprint key pkt in
              let observed = ref 0 in
              let observe state_of seg =
                match Hashtbl.find_opt t.segs seg with
                | Some st ->
                    t.fingerprints_observed <- t.fingerprints_observed + 1;
                    incr observed;
                    Summary.observe (state_of st) ~fp ~size:pkt.Netsim.Packet.size
                      ~time:ev.Netsim.Net.time
                | None -> ()
              in
              for i = 0 to len - 2 do
                if p.(i) = u && p.(i + 1) = v then begin
                  (* Link (u,v) opens the 3-segment ⟨u,v,p(i+2)⟩: terminal
                     router u records what it sent into it. *)
                  if i + 2 < len then
                    observe (fun st -> st.sent) [ u; v; p.(i + 2) ];
                  (* Link (u,v) closes ⟨p(i-1),u,v⟩: terminal router v
                     records what came out. *)
                  if i >= 1 then observe (fun st -> st.received) [ p.(i - 1); u; v ]
                end
              done;
              (* One MAC-compute instant per traced hop, however many
                 segment summaries the fingerprint landed in. *)
              if !observed > 0 && pkt.Netsim.Packet.trace <> 0 then
                Option.iter
                  (fun probe ->
                    ignore
                      (Netsim.Probe.trace_instant probe ~track:"fatih"
                         ~name:"fingerprint" ~cat:"mac" ~time:ev.Netsim.Net.time
                         ~routers:[ u; v ]
                         ~args:
                           [ ("pkt", Telemetry.Export.Int pkt.Netsim.Packet.uid);
                             ("summaries", Telemetry.Export.Int !observed) ]
                         ()))
                  probe)
      | Netsim.Iface.Drop_link_down _ -> (
          match
            Hashtbl.find_opt edge_index (ev.Netsim.Net.router, ev.Netsim.Net.next)
          with
          | Some segs ->
              List.iter
                (fun seg ->
                  match Hashtbl.find_opt t.segs seg with
                  | Some st -> st.excused <- true
                  | None -> ())
                segs
          | None -> ())
      | _ -> ());
  let sim = Netsim.Net.sim net in
  let rec tick () =
    let now = Netsim.Sim.now sim in
    let judged = ref 0 in
    let detected = ref 0 in
    Hashtbl.iter
      (fun seg st ->
        let eligible =
          now -. config.tau > t.last_policy_change +. 1e-9
          && Summary.packets st.sent >= config.min_packets
        in
        (* A segment edge still down at judgment time is an announced
           fail-stop: the round is judged normally so the dead segment
           is detected and excised from routing, but the verdict is not
           an accusation — the link-state flood already told everyone. *)
        let link_failed =
          match seg with
          | [ a; m; b ] ->
              let down ~src ~dst =
                match Netsim.Net.iface net ~src ~dst with
                | Some i -> not (Netsim.Iface.is_up i)
                | None -> false
              in
              down ~src:a ~dst:m || down ~src:m ~dst:b
          | _ -> false
        in
        let excused = st.excused && not link_failed in
        (* An observable benign link failure on a segment edge — already
           healed by judgment time — excuses the whole round: the
           terminals learn of the flap from the link-state flood, so the
           missing packets are not evidence against the interior
           router. *)
        if eligible && excused then begin
          t.rounds_excused <- t.rounds_excused + 1;
          match probe with
          | Some probe ->
              ignore
                (Netsim.Probe.trace_instant probe ~track:"fatih"
                   ~name:"benign-excuse" ~cat:"degraded" ~time:now ~routers:seg
                   ())
          | None -> ()
        end;
        (* The summary exchange rides the lossy control plane: an
           exhausted retry budget degrades the round — the summaries
           carry over and the comparison happens next round over the
           union — rather than wedging the round or accusing anyone. *)
        let exchange =
          if (not eligible) || excused then `Skip
          else
            match ctrl with
            | None -> `Ok 1
            | Some ch -> (
                let a, b =
                  match seg with [ a; _; b ] -> (a, b) | _ -> assert false
                in
                let tag =
                  List.fold_left (fun acc r -> (acc * 8191) + r + 1) t.round seg
                in
                match Ctrl.send ch ?retry ~src:a ~dst:b ~tag () with
                | Ctrl.Delivered { attempts; _ } -> `Ok attempts
                | Ctrl.Timed_out { attempts; waited } ->
                    `Degraded (attempts, waited))
        in
        (match exchange with
        | `Skip -> ()
        | `Degraded (attempts, waited) -> (
            t.rounds_degraded <- t.rounds_degraded + 1;
            match probe with
            | Some probe ->
                ignore
                  (Netsim.Probe.trace_instant probe ~track:"fatih"
                     ~name:"exchange-timeout" ~cat:"degraded" ~time:now
                     ~routers:seg
                     ~args:
                       [ ("attempts", Telemetry.Export.Int attempts);
                         ("waited", Telemetry.Export.Float waited) ]
                     ())
            | None -> ())
        | `Ok attempts ->
          incr judged;
          (* Retransmissions ship the summary again. *)
          if attempts > 1 then
            t.words_exchanged <-
              t.words_exchanged + ((attempts - 1) * Summary.state_words st.sent);
          (* The terminal routers ship this round's summaries for
             comparison — the dispatch is part of a verdict's evidence. *)
          let dispatch =
            match probe with
            | None -> None
            | Some probe ->
                Netsim.Probe.trace_instant probe ~track:"fatih"
                  ~name:"summary-dispatch" ~cat:"summary" ~time:now ~routers:seg
                  ~args:
                    [ ("sent", Telemetry.Export.Int (Summary.packets st.sent));
                      ("received",
                       Telemetry.Export.Int (Summary.packets st.received)) ]
                  ()
          in
          let v =
            Validation.tv ~thresholds:config.thresholds ~sent:st.sent
              ~received:st.received ()
          in
          (* Boundary filter: ignore "fabricated" packets announced in the
             previous round. *)
          let fabricated =
            List.filter
              (fun fp -> not (Summary.mem st.prev_sent fp))
              v.Validation.fabricated
          in
          let sent_n = Summary.packets st.sent in
          let loss_bad =
            float_of_int (List.length v.Validation.missing)
            > config.thresholds.Validation.max_loss_fraction *. float_of_int sent_n
          in
          let fab_bad =
            List.length fabricated > config.thresholds.Validation.max_fabricated
          in
          let order_bad =
            v.Validation.reordered > config.thresholds.Validation.max_reordered
          in
          let delay_bad =
            v.Validation.max_delay_seen > config.thresholds.Validation.max_delay
          in
          if loss_bad || fab_bad || order_bad || delay_bad then begin
            incr detected;
            let ends =
              match seg with [ a; _; b ] -> (a, b) | _ -> assert false
            in
            t.detections_rev <-
              { time = now; segment = seg; detected_by = ends;
                missing = List.length v.Validation.missing;
                fabricated = List.length fabricated;
                reordered = v.Validation.reordered;
                max_delay = v.Validation.max_delay_seen; sent = sent_n }
              :: t.detections_rev;
            (match probe with
            | Some probe ->
                let mismatch =
                  Netsim.Probe.trace_instant probe ~track:"fatih"
                    ~name:"summary-mismatch" ~cat:"evidence" ~time:now
                    ~routers:seg
                    ~args:
                      [ ("missing", Telemetry.Export.Int
                           (List.length v.Validation.missing));
                        ("fabricated", Telemetry.Export.Int
                           (List.length fabricated));
                        ("reordered", Telemetry.Export.Int
                           v.Validation.reordered);
                        ("max_delay", Telemetry.Export.Float
                           v.Validation.max_delay_seen);
                        ("sent", Telemetry.Export.Int sent_n) ]
                    ()
                in
                (* The accused is the segment's interior router: the two
                   ends are the detecting terminals. *)
                Netsim.Probe.record_verdict probe ~time:now ~detector:"fatih"
                  ?subject:(match seg with [ _; m; _ ] -> Some m | _ -> None)
                  ~suspects:seg ~alarm:(not link_failed)
                  ~detail:
                    (Printf.sprintf "missing=%d/%d fabricated=%d%s"
                       (List.length v.Validation.missing) sent_n
                       (List.length fabricated)
                       (if link_failed then " link-failure" else ""))
                  ~evidence:(Option.to_list dispatch @ Option.to_list mismatch)
                  ()
            | None -> ());
            Response.suspect t.response seg
          end);
        (match config.exchange with
        | Full_sets ->
            t.words_exchanged <-
              t.words_exchanged + Summary.state_words st.sent
              + Summary.state_words st.received
        | Reconcile ->
            (* Appendix A in the loop: each end ships characteristic-
               polynomial evaluations instead of its fingerprint set; the
               cost is O(losses), falling back to the full set when the
               difference overwhelms the bound. *)
            if Summary.packets st.sent >= config.min_packets then begin
              let elements s =
                Array.of_list
                  (List.map Setrecon.Reconcile.element_of_fingerprint
                     (Summary.fingerprints s))
              in
              match
                Setrecon.Reconcile.diff ~max_bound:512 ~a:(elements st.sent)
                  ~b:(elements st.received) ()
              with
              | Some r ->
                  t.words_exchanged <-
                    t.words_exchanged + (2 * r.Setrecon.Reconcile.evals_used) + 4
              | None ->
                  t.words_exchanged <-
                    t.words_exchanged + Summary.state_words st.sent
                    + Summary.state_words st.received
            end);
        match exchange with
        | `Degraded _ -> () (* carry state: compare the union next round *)
        | `Skip | `Ok _ -> reset_state config.policy st)
      t.segs;
    (match probe with
    | Some probe ->
        ignore
          (Netsim.Probe.trace_span probe ~track:"fatih"
             ~name:(Printf.sprintf "fatih round %d" t.round)
             ~cat:"round"
             ~start:(Float.max 0.0 (now -. config.tau))
             ~finish:now
             ~args:
               [ ("segments", Telemetry.Export.Int (Hashtbl.length t.segs));
                 ("judged", Telemetry.Export.Int !judged);
                 ("detections", Telemetry.Export.Int !detected) ]
             ())
    | None -> ());
    t.round <- t.round + 1;
    Netsim.Sim.schedule sim ~delay:config.tau tick
  in
  Netsim.Sim.schedule sim ~delay:config.tau tick;
  t

let fingerprints_observed t = t.fingerprints_observed
let words_exchanged t = t.words_exchanged
let rounds_degraded t = t.rounds_degraded
let rounds_excused t = t.rounds_excused
