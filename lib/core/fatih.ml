type exchange = Full_sets | Reconcile

type config = {
  tau : float;
  thresholds : Validation.thresholds;
  min_packets : int;
  policy : Summary.policy;
  exchange : exchange;
  response : Response.config;
  mute_rounds : int;
}

let default_config =
  { tau = 5.0; thresholds = Validation.lenient (); min_packets = 20;
    policy = Summary.Content; exchange = Full_sets;
    response = Response.default_config; mute_rounds = 3 }

type detection = {
  time : float;
  segment : Topology.Graph.node list;
  detected_by : Topology.Graph.node * Topology.Graph.node;
  missing : int;
  fabricated : int;
  reordered : int;
  max_delay : float;
  sent : int;
}

type seg_state = {
  mutable sent : Summary.t;
  mutable received : Summary.t;
  (* Last round's sent summary: a packet "received without being sent"
     this round is benign if it was announced last round (it was simply
     in flight across the round boundary). *)
  mutable prev_sent : Summary.t;
  (* A segment edge dropped packets with its link down this round: the
     failure is locally observable (link-state flood), so the terminals
     excuse the round instead of accusing the interior router. *)
  mutable excused : bool;
  (* The interior router's own forwarded-traffic summary — the third
     claim of the corroboration quorum, collected only when a Byzantine
     plan is armed. *)
  mutable mid : Summary.t;
  (* Consecutive summary-exchange timeouts / interior-heartbeat
     timeouts: either streak reaching [mute_rounds] judges the silent
     party fail-stop — excised from routing, never accused. *)
  mutable degraded_streak : int;
  mutable mute_streak : int;
  mutable failstopped : bool;
}

type t = {
  config : config;
  response : Response.t;
  segs : (Topology.Graph.node list, seg_state) Hashtbl.t;
  mutable detections_rev : detection list;
  (* Time of the last routing installation: validation windows that
     overlap it see in-flight packets attributed under two different
     table generations, so only windows that started strictly after it
     are judged. *)
  mutable last_policy_change : float;
  (* §5.3.2 component overhead: fingerprints computed and summary words
     exchanged across all monitored segments. *)
  mutable fingerprints_observed : int;
  mutable words_exchanged : int;
  mutable round : int;
  (* Graceful degradation bookkeeping: segment-rounds skipped because
     the summary exchange timed out (state carried to the next round)
     and segment-rounds excused for an observable benign link failure. *)
  mutable rounds_degraded : int;
  mutable rounds_excused : int;
}

let detections t = List.rev t.detections_rev
let response t = t.response
let monitored_segments t = Hashtbl.fold (fun seg _ acc -> seg :: acc) t.segs []

let fresh_state policy =
  { sent = Summary.create policy;
    received = Summary.create policy;
    prev_sent = Summary.create policy;
    excused = false;
    mid = Summary.create policy;
    degraded_streak = 0; mute_streak = 0; failstopped = false }

let reset_state policy st =
  st.prev_sent <- st.sent;
  st.sent <- Summary.create policy;
  st.received <- Summary.create policy;
  st.mid <- Summary.create policy;
  st.excused <- false

let deploy ~net ~rt ?(config = default_config)
    ?(key = Crypto_sim.Siphash.key_of_string "fatih") ?probe ?ctrl ?retry ?byz
    () =
  let t =
    { config; response = Response.create ~net ~config:config.response ?probe ();
      segs = Hashtbl.create 256; detections_rev = []; last_policy_change = neg_infinity;
      fingerprints_observed = 0; words_exchanged = 0; round = 0;
      rounds_degraded = 0; rounds_excused = 0 }
  in
  List.iter
    (fun seg ->
      if List.length seg = 3 && not (Hashtbl.mem t.segs seg) then
        Hashtbl.add t.segs seg (fresh_state config.policy))
    (Topology.Segments.pik2_family rt ~k:1);
  (* Predicted path per (src, dst): how a terminal router decides which
     monitored segments a packet belongs to (§4.1 predictability).  After
     a routing update the coordinator re-derives the predictions from the
     freshly installed tables (§5.3.1). *)
  let path_cache = Hashtbl.create 256 in
  let path_fn =
    ref (fun src dst -> Topology.Routing.path rt ~src ~dst)
  in
  let predicted src dst =
    match Hashtbl.find_opt path_cache (src, dst) with
    | Some p -> p
    | None ->
        let p = Option.map Array.of_list (!path_fn src dst) in
        Hashtbl.add path_cache (src, dst) p;
        p
  in
  Response.set_on_update t.response (fun pol ->
      t.last_policy_change <- Netsim.Sim.now (Netsim.Net.sim net);
      Hashtbl.reset path_cache;
      path_fn := (fun src dst -> Topology.Policy.path pol ~src ~dst);
      (* Discard mid-round state collected under the old tables. *)
      Hashtbl.iter
        (fun _ st ->
          st.sent <- Summary.create config.policy;
          st.received <- Summary.create config.policy;
          st.prev_sent <- Summary.create config.policy;
          st.mid <- Summary.create config.policy;
          st.excused <- false)
        t.segs);
  (* Which monitored segments a directed link belongs to, for excusing
     rounds on observable link failures. *)
  let edge_index = Hashtbl.create 256 in
  let index_edge e seg =
    Hashtbl.replace edge_index e
      (seg :: Option.value (Hashtbl.find_opt edge_index e) ~default:[])
  in
  Hashtbl.iter
    (fun seg _ ->
      match seg with
      | [ a; b; c ] ->
          index_edge (a, b) seg;
          index_edge (b, c) seg
      | _ -> ())
    t.segs;
  Netsim.Net.subscribe_iface net (fun ev ->
      match ev.Netsim.Net.kind with
      | Netsim.Iface.Delivered pkt -> (
          let u = ev.Netsim.Net.router and v = ev.Netsim.Net.next in
          match predicted pkt.Netsim.Packet.src pkt.Netsim.Packet.dst with
          | None -> ()
          | Some p ->
              let len = Array.length p in
              let fp = Netsim.Packet.fingerprint key pkt in
              let observed = ref 0 in
              let observe state_of seg =
                match Hashtbl.find_opt t.segs seg with
                | Some st ->
                    t.fingerprints_observed <- t.fingerprints_observed + 1;
                    incr observed;
                    Summary.observe (state_of st) ~fp ~size:pkt.Netsim.Packet.size
                      ~time:ev.Netsim.Net.time
                | None -> ()
              in
              for i = 0 to len - 2 do
                if p.(i) = u && p.(i + 1) = v then begin
                  (* Link (u,v) opens the 3-segment ⟨u,v,p(i+2)⟩: terminal
                     router u records what it sent into it. *)
                  if i + 2 < len then
                    observe (fun st -> st.sent) [ u; v; p.(i + 2) ];
                  (* Link (u,v) closes ⟨p(i-1),u,v⟩: terminal router v
                     records what came out. *)
                  if i >= 1 then begin
                    observe (fun st -> st.received) [ p.(i - 1); u; v ];
                    (* With a Byzantine plan armed, the interior router u
                       also fingerprints its own egress: the third claim
                       the corroboration quorum compares against the
                       terminals' stories. *)
                    if byz <> None then
                      observe (fun st -> st.mid) [ p.(i - 1); u; v ]
                  end
                end
              done;
              (* One MAC-compute instant per traced hop, however many
                 segment summaries the fingerprint landed in. *)
              if !observed > 0 && pkt.Netsim.Packet.trace <> 0 then
                Option.iter
                  (fun probe ->
                    ignore
                      (Netsim.Probe.trace_instant probe ~track:"fatih"
                         ~name:"fingerprint" ~cat:"mac" ~time:ev.Netsim.Net.time
                         ~routers:[ u; v ]
                         ~args:
                           [ ("pkt", Telemetry.Export.Int pkt.Netsim.Packet.uid);
                             ("summaries", Telemetry.Export.Int !observed) ]
                         ()))
                  probe)
      | Netsim.Iface.Drop_link_down _ -> (
          match
            Hashtbl.find_opt edge_index (ev.Netsim.Net.router, ev.Netsim.Net.next)
          with
          | Some segs ->
              List.iter
                (fun seg ->
                  match Hashtbl.find_opt t.segs seg with
                  | Some st -> st.excused <- true
                  | None -> ())
                segs
          | None -> ())
      | _ -> ());
  let sim = Netsim.Net.sim net in
  let rec tick () =
    let now = Netsim.Sim.now sim in
    let judged = ref 0 in
    let detected = ref 0 in
    Hashtbl.iter
      (fun seg st ->
        let eligible =
          now -. config.tau > t.last_policy_change +. 1e-9
          && Summary.packets st.sent >= config.min_packets
        in
        (* A segment edge still down at judgment time is an announced
           fail-stop: the round is judged normally so the dead segment
           is detected and excised from routing, but the verdict is not
           an accusation — the link-state flood already told everyone. *)
        let link_failed =
          match seg with
          | [ a; m; b ] ->
              let down ~src ~dst =
                match Netsim.Net.iface net ~src ~dst with
                | Some i -> not (Netsim.Iface.is_up i)
                | None -> false
              in
              down ~src:a ~dst:m || down ~src:m ~dst:b
          | _ -> false
        in
        let excused = st.excused && not link_failed in
        (* An observable benign link failure on a segment edge — already
           healed by judgment time — excuses the whole round: the
           terminals learn of the flap from the link-state flood, so the
           missing packets are not evidence against the interior
           router. *)
        if eligible && excused then begin
          t.rounds_excused <- t.rounds_excused + 1;
          match probe with
          | Some probe ->
              ignore
                (Netsim.Probe.trace_instant probe ~track:"fatih"
                   ~name:"benign-excuse" ~cat:"degraded" ~time:now ~routers:seg
                   ())
          | None -> ()
        end;
        (* The summary exchange rides the lossy control plane: an
           exhausted retry budget degrades the round — the summaries
           carry over and the comparison happens next round over the
           union — rather than wedging the round or accusing anyone. *)
        let exchange =
          if (not eligible) || excused then `Skip
          else
            match ctrl with
            | None -> `Ok 1
            | Some ch -> (
                let a, b =
                  match seg with [ a; _; b ] -> (a, b) | _ -> assert false
                in
                let tag =
                  List.fold_left (fun acc r -> (acc * 8191) + r + 1) t.round seg
                in
                match Ctrl.send ch ?retry ~now ~src:a ~dst:b ~tag () with
                | Ctrl.Delivered { attempts; _ } -> `Ok attempts
                | Ctrl.Timed_out { attempts; waited } ->
                    `Degraded (attempts, waited))
        in
        (* Interior-participation heartbeat: with a Byzantine plan armed
           the terminals expect the interior router to answer on the
           control plane every judged round.  A refusal leaves the round
           uncorroborated (degraded, not accusatory); a persistent
           streak is judged fail-stop below. *)
        let m_reachable =
          match (byz, ctrl, exchange) with
          | Some bz, Some ch, `Ok _ when Byz.hardened bz -> (
              let a, m =
                match seg with [ a; m; _ ] -> (a, m) | _ -> assert false
              in
              let tag =
                List.fold_left (fun acc r -> (acc * 8191) + r + 1) t.round seg
                lxor 0x68e31da4
              in
              match Ctrl.send ch ?retry ~now ~src:m ~dst:a ~tag () with
              | Ctrl.Delivered _ ->
                  st.mute_streak <- 0;
                  true
              | Ctrl.Timed_out _ ->
                  st.mute_streak <- st.mute_streak + 1;
                  false)
          | _ -> true
        in
        (match exchange with
        | `Ok _ -> st.degraded_streak <- 0
        | `Degraded _ -> st.degraded_streak <- st.degraded_streak + 1
        | `Skip -> ());
        (* Persistent silence is fail-stop, not malice: after
           [mute_rounds] consecutive refusals the segment is excised
           from routing with a non-alarming verdict — the α-accuracy
           bar forbids convicting a router for being unreachable. *)
        (if (match byz with Some bz -> Byz.hardened bz | None -> false)
            && not st.failstopped
            && (st.degraded_streak >= config.mute_rounds
               || st.mute_streak >= config.mute_rounds) then begin
           st.failstopped <- true;
           let mute = st.mute_streak >= config.mute_rounds in
           (match probe with
           | Some probe ->
               Netsim.Probe.record_verdict probe ~time:now ~detector:"fatih"
                 ?subject:
                   (if mute then
                      match seg with [ _; m; _ ] -> Some m | _ -> None
                    else None)
                 ~suspects:seg ~alarm:false
                 ~detail:
                   (Printf.sprintf
                      "fail-stop: %s %d consecutive rounds — excised, not accused"
                      (if mute then "interior heartbeat refused"
                       else "summary exchange timed out")
                      config.mute_rounds)
                 ()
           | None -> ());
           Response.suspect t.response seg
         end);
        (match exchange with
        | `Skip -> ()
        | `Degraded (attempts, waited) -> (
            t.rounds_degraded <- t.rounds_degraded + 1;
            match probe with
            | Some probe ->
                ignore
                  (Netsim.Probe.trace_instant probe ~track:"fatih"
                     ~name:"exchange-timeout" ~cat:"degraded" ~time:now
                     ~routers:seg
                     ~args:
                       [ ("attempts", Telemetry.Export.Int attempts);
                         ("waited", Telemetry.Export.Float waited) ]
                     ())
            | None -> ())
        | `Ok attempts ->
          incr judged;
          (* Retransmissions ship the summary again. *)
          if attempts > 1 then
            t.words_exchanged <-
              t.words_exchanged + ((attempts - 1) * Summary.state_words st.sent);
          (* The terminal routers ship this round's summaries for
             comparison — the dispatch is part of a verdict's evidence. *)
          let dispatch =
            match probe with
            | None -> None
            | Some probe ->
                Netsim.Probe.trace_instant probe ~track:"fatih"
                  ~name:"summary-dispatch" ~cat:"summary" ~time:now ~routers:seg
                  ~args:
                    [ ("sent", Telemetry.Export.Int (Summary.packets st.sent));
                      ("received",
                       Telemetry.Export.Int (Summary.packets st.received)) ]
                  ()
          in
          let a_end, m_int, b_end =
            match seg with [ a; m; b ] -> (a, m, b) | _ -> assert false
          in
          (* With a Byzantine plan armed, validation runs on what the
             terminals *claim* — their summaries plus any asserted
             extras, each screened against its origin MAC first.  A
             hardened verifier therefore never even sees a forged
             entry; the unhardened baseline folds them in and measures
             the damage. *)
          let s_claim, r_claim =
            match byz with
            | None -> (st.sent, st.received)
            | Some bz ->
                let claim ~claimant ~peer truth =
                  let cl, extras =
                    Byz.summary_claim bz ~claimant ~peer ~segment:seg
                      ~round:t.round truth
                  in
                  match extras with
                  | [] -> cl
                  | extras ->
                      let c = if cl == truth then Summary.copy cl else cl in
                      ignore
                        (Byz.screen bz ?probe ~time:now ~claimant ~summary:c
                           ~extras ());
                      c
                in
                ( claim ~claimant:a_end ~peer:b_end st.sent,
                  claim ~claimant:b_end ~peer:a_end st.received )
          in
          let v =
            Validation.tv ~thresholds:config.thresholds ~sent:s_claim
              ~received:r_claim ()
          in
          (* Boundary filter: ignore "fabricated" packets announced in the
             previous round. *)
          let fabricated =
            List.filter
              (fun fp -> not (Summary.mem st.prev_sent fp))
              v.Validation.fabricated
          in
          let sent_n = Summary.packets s_claim in
          let loss_bad =
            float_of_int (List.length v.Validation.missing)
            > config.thresholds.Validation.max_loss_fraction *. float_of_int sent_n
          in
          let fab_bad =
            List.length fabricated > config.thresholds.Validation.max_fabricated
          in
          let order_bad =
            v.Validation.reordered > config.thresholds.Validation.max_reordered
          in
          let delay_bad =
            v.Validation.max_delay_seen > config.thresholds.Validation.max_delay
          in
          let verdict ?subject ?(evidence = Option.to_list dispatch)
              ~suspects ~alarm ~detail () =
            match probe with
            | None -> ()
            | Some probe ->
                Netsim.Probe.record_verdict probe ~time:now ~detector:"fatih"
                  ?subject ~suspects ~alarm ~detail ~evidence ()
          in
          let counts =
            Printf.sprintf "missing=%d/%d fabricated=%d"
              (List.length v.Validation.missing) sent_n
              (List.length fabricated)
          in
          (* The interior router's own forwarded-claim, requested over
             the control plane each judged round when the hardened
             protocol is armed: the third leg of the corroboration
             quorum, and the surface on which an equivocating interior
             is caught. *)
          let interior_claims =
            match byz with
            | Some bz when Byz.hardened bz && m_reachable && not st.failstopped
              ->
                let m_to_a, _ =
                  Byz.summary_claim bz ~claimant:m_int ~peer:a_end ~segment:seg
                    ~round:t.round st.mid
                in
                let m_to_b, _ =
                  Byz.summary_claim bz ~claimant:m_int ~peer:b_end ~segment:seg
                    ~round:t.round st.mid
                in
                Some (bz, m_to_a, m_to_b)
            | _ -> None
          in
          let equivocated =
            match interior_claims with
            | Some (bz, m_to_a, m_to_b)
              when Byz.digest m_to_a <> Byz.digest m_to_b ->
                (* The interior told each terminal a different story
                   about the same round: only a faulty router
                   equivocates, so this conviction is α-safe — and it
                   needs no threshold trigger, because lying on the
                   control plane leaves the data plane clean. *)
                Byz.note_equivocation bz;
                verdict ~subject:m_int ~suspects:seg ~alarm:true
                  ~detail:
                    (counts
                    ^ Printf.sprintf
                        " equivocation: digests to %d and %d disagree" a_end
                        b_end)
                  ();
                Response.suspect t.response seg;
                true
            | _ -> false
          in
          if (not equivocated) && (loss_bad || fab_bad || order_bad || delay_bad)
          then begin
            incr detected;
            let ends =
              match seg with [ a; _; b ] -> (a, b) | _ -> assert false
            in
            t.detections_rev <-
              { time = now; segment = seg; detected_by = ends;
                missing = List.length v.Validation.missing;
                fabricated = List.length fabricated;
                reordered = v.Validation.reordered;
                max_delay = v.Validation.max_delay_seen; sent = sent_n }
              :: t.detections_rev;
            let mismatch_ev =
              match probe with
              | None -> None
              | Some probe ->
                  Netsim.Probe.trace_instant probe ~track:"fatih"
                    ~name:"summary-mismatch" ~cat:"evidence" ~time:now
                    ~routers:seg
                    ~args:
                      [ ("missing", Telemetry.Export.Int
                           (List.length v.Validation.missing));
                        ("fabricated", Telemetry.Export.Int
                           (List.length fabricated));
                        ("reordered", Telemetry.Export.Int
                           v.Validation.reordered);
                        ("max_delay", Telemetry.Export.Float
                           v.Validation.max_delay_seen);
                        ("sent", Telemetry.Export.Int sent_n) ]
                    ()
            in
            let verdict ?subject ~suspects ~alarm ~detail () =
              verdict ?subject
                ~evidence:
                  (Option.to_list dispatch @ Option.to_list mismatch_ev)
                ~suspects ~alarm ~detail ()
            in
            (match byz with
            | None ->
                (* The accused is the segment's interior router: the two
                   ends are the detecting terminals. *)
                verdict
                  ?subject:(match seg with [ _; m; _ ] -> Some m | _ -> None)
                  ~suspects:seg ~alarm:(not link_failed)
                  ~detail:
                    (counts ^ if link_failed then " link-failure" else "")
                  ();
                Response.suspect t.response seg
            | Some _ when link_failed ->
                verdict ~subject:m_int ~suspects:seg ~alarm:false
                  ~detail:(counts ^ " link-failure") ();
                Response.suspect t.response seg
            | Some bz when not (Byz.hardened bz) ->
                (* The unhardened baseline folds the forged claims in
                   and judges them exactly like the classic protocol:
                   the interior router is convicted by name on its
                   terminals' say-so — the framing damage the hardened
                   path exists to prevent. *)
                Byz.note_dispute bz;
                verdict ~subject:m_int ~suspects:seg ~alarm:true
                  ~detail:counts ();
                Response.suspect t.response seg
            | Some bz ->
                (* Participants disagree: corroborate before alarming.
                   The interior router's own forwarded-claim is the
                   third leg of a conservation quorum — whichever half
                   of the segment the three stories cannot account for
                   names a pair that provably contains a faulty router,
                   so no honest router is ever convicted alone. *)
                Byz.note_dispute bz;
                (match interior_claims with
                | None ->
                    if not m_reachable then begin
                      Byz.note_mute_refusal bz;
                      verdict ~suspects:seg ~alarm:false
                        ~detail:
                          (counts
                          ^ " uncorroborated: interior refused the heartbeat \
                             — degraded, not accusing")
                        ()
                    end
                    else
                      verdict ~suspects:seg ~alarm:false
                        ~detail:
                          (counts
                          ^ " uncorroborated mismatch — degraded, not \
                             accusing")
                        ()
                | Some (_, m_to_a, m_to_b) ->
                    let half_bad ~sent ~received =
                      let hv =
                        Validation.tv ~thresholds:config.thresholds ~sent
                          ~received ()
                      in
                      let fab =
                        List.filter
                          (fun fp -> not (Summary.mem st.prev_sent fp))
                          hv.Validation.fabricated
                      in
                      float_of_int (List.length hv.Validation.missing)
                      > config.thresholds.Validation.max_loss_fraction
                        *. float_of_int (Summary.packets sent)
                      || List.length fab
                         > config.thresholds.Validation.max_fabricated
                    in
                    let bad_am = half_bad ~sent:s_claim ~received:m_to_a in
                    let bad_mb = half_bad ~sent:m_to_b ~received:r_claim in
                    match (bad_am, bad_mb) with
                    | true, false ->
                        verdict ~suspects:[ a_end; m_int ] ~alarm:true
                          ~detail:
                            (counts
                            ^ Printf.sprintf
                                " corroborated: conservation broken between \
                                 %d and %d" a_end m_int)
                          ();
                        Response.suspect t.response seg
                    | false, true ->
                        verdict ~suspects:[ m_int; b_end ] ~alarm:true
                          ~detail:
                            (counts
                            ^ Printf.sprintf
                                " corroborated: conservation broken between \
                                 %d and %d" m_int b_end)
                          ();
                        Response.suspect t.response seg
                    | true, true ->
                        verdict ~suspects:seg ~alarm:true
                          ~detail:
                            (counts
                            ^ " corroborated: interior consistent with \
                               neither terminal")
                          ();
                        Response.suspect t.response seg
                    | false, false ->
                        (* Neither half of the segment individually
                           exceeds the thresholds: the disagreement does
                           not survive corroboration, so degrade
                           gracefully instead of accusing. *)
                        verdict ~suspects:seg ~alarm:false
                          ~detail:
                            (counts
                            ^ " uncorroborated mismatch — degraded, not \
                               accusing")
                          ()))
          end);
        (match config.exchange with
        | Full_sets ->
            t.words_exchanged <-
              t.words_exchanged + Summary.state_words st.sent
              + Summary.state_words st.received
        | Reconcile ->
            (* Appendix A in the loop: each end ships characteristic-
               polynomial evaluations instead of its fingerprint set; the
               cost is O(losses), falling back to the full set when the
               difference overwhelms the bound. *)
            if Summary.packets st.sent >= config.min_packets then begin
              let elements s =
                Array.of_list
                  (List.map Setrecon.Reconcile.element_of_fingerprint
                     (Summary.fingerprints s))
              in
              match
                Setrecon.Reconcile.diff ~max_bound:512 ~a:(elements st.sent)
                  ~b:(elements st.received) ()
              with
              | Some r ->
                  t.words_exchanged <-
                    t.words_exchanged + (2 * r.Setrecon.Reconcile.evals_used) + 4
              | None ->
                  t.words_exchanged <-
                    t.words_exchanged + Summary.state_words st.sent
                    + Summary.state_words st.received
            end);
        match exchange with
        | `Degraded _ -> () (* carry state: compare the union next round *)
        | `Skip | `Ok _ -> reset_state config.policy st)
      t.segs;
    (match probe with
    | Some probe ->
        ignore
          (Netsim.Probe.trace_span probe ~track:"fatih"
             ~name:(Printf.sprintf "fatih round %d" t.round)
             ~cat:"round"
             ~start:(Float.max 0.0 (now -. config.tau))
             ~finish:now
             ~args:
               [ ("segments", Telemetry.Export.Int (Hashtbl.length t.segs));
                 ("judged", Telemetry.Export.Int !judged);
                 ("detections", Telemetry.Export.Int !detected) ]
             ())
    | None -> ());
    t.round <- t.round + 1;
    Netsim.Sim.schedule sim ~delay:config.tau tick
  in
  Netsim.Sim.schedule sim ~delay:config.tau tick;
  t

let fingerprints_observed t = t.fingerprints_observed
let words_exchanged t = t.words_exchanged
let rounds_degraded t = t.rounds_degraded
let rounds_excused t = t.rounds_excused
