(** Fatih (§5.3): the packet-level Πk+2 prototype with response.

    Deploys Protocol Πk+2 with k = 1 over a simulated network: every
    3-path-segment of the routed paths is monitored by its two terminal
    routers, which collect conservation-of-content summaries per τ = 5 s
    round and validate them.  A failed validation raises an alert that
    feeds the {!Response} engine, reproducing the Fig 5.7 timeline
    (attack → detection within one round → rerouting after the OSPF
    timers). *)

type exchange =
  | Full_sets  (** each end ships its whole fingerprint summary *)
  | Reconcile  (** Appendix A set reconciliation: O(difference) words *)

type config = {
  tau : float;                         (** validation round, 5 s *)
  thresholds : Validation.thresholds;  (** TV tolerance *)
  min_packets : int;                   (** ignore segments with less traffic *)
  policy : Summary.policy;
      (** the conservation policy of the summaries: [Content] (default)
          catches loss/modification/fabrication; [Order] additionally
          reordering; [Timeliness] additionally delaying (§2.4.1) *)
  exchange : exchange;
      (** how segment ends compare summaries; affects
          {!words_exchanged}, not detections *)
  response : Response.config;
  mute_rounds : int;
      (** consecutive exchange timeouts (or interior-heartbeat
          refusals, with a Byzantine plan armed) after which the silent
          party is judged fail-stop: excised from routing with a
          non-alarming verdict, never accused *)
}

val default_config : config
(** tau 5 s, 2% loss tolerance, min 20 packets, Content policy,
    full-set exchange, default OSPF timers, fail-stop after 3 mute
    rounds. *)

type detection = {
  time : float;
  segment : Topology.Graph.node list;
  detected_by : Topology.Graph.node * Topology.Graph.node;  (** terminal routers *)
  missing : int;
  fabricated : int;
  reordered : int;     (** order violations (Order/Timeliness policies) *)
  max_delay : float;   (** worst per-packet transit delay (Timeliness) *)
  sent : int;
}

type t

val deploy :
  net:Netsim.Net.t ->
  rt:Topology.Routing.t ->
  ?config:config ->
  ?key:Crypto_sim.Siphash.key ->
  ?probe:Netsim.Probe.t ->
  ?ctrl:Ctrl.t ->
  ?retry:Ctrl.retry ->
  ?byz:Byz.t ->
  unit ->
  t
(** Start monitoring every 3-segment of the current routed paths.  The
    network must still be using plain routing from [rt] at deploy time;
    after detections the engine installs policy routing itself.  With
    [probe], each detection is journaled as a typed
    {!Netsim.Probe.verdict} accusing the segment's interior router.

    With [ctrl], every per-segment summary exchange rides that lossy
    control-plane channel under [retry] (default {!Ctrl.default_retry}):
    a timed-out exchange {e degrades} the round — the summaries carry
    over and are compared next round — instead of wedging it or
    producing an accusation.  Rounds in which a segment edge visibly
    dropped packets with its link down are likewise excused rather than
    judged.

    With [byz], the protocol hardens itself against control-plane lies
    (and validation runs on what the terminals {e claim}, so framing
    and equivocation actually reach the verifier):

    - claimed summary extras are screened against their origin MACs —
      a forged entry is rejected, counted, and journaled as a
      ["forgery_rejected"] fault before validation ever sees it;
    - a threshold-crossing round is {e corroborated} before alarming:
      the interior router's own forwarded-claim splits the segment into
      two conservation halves, and the verdict names the half — a
      {e pair} of routers that provably contains a faulty one — or the
      interior alone when its claims to the two terminals disagree
      (equivocation);
    - a disagreement that no half of the segment corroborates degrades
      the round with a non-alarming verdict instead of accusing;
    - [mute_rounds] consecutive exchange timeouts or refused interior
      heartbeats judge the silent router {b fail-stop}: the segment is
      excised via the response engine under a non-alarming verdict.

    Every hardening decision is a pure function of (plan seed, segment,
    round), so Byzantine runs stay replay-deterministic and
    byte-identical across shard counts. *)

val detections : t -> detection list
(** All alerts raised, oldest first. *)

val response : t -> Response.t
(** The response engine (for its update timeline). *)

val monitored_segments : t -> Topology.Graph.node list list

val fingerprints_observed : t -> int
(** Total fingerprint computations across all segment summaries — the
    §5.3.2 per-packet monitoring overhead. *)

val words_exchanged : t -> int
(** Total 64-bit words of summary state shipped between segment ends
    over all validation rounds (full-set exchange; see `mrdetect comm`
    for the reconciliation alternative).  Retransmissions over a lossy
    [ctrl] channel count each attempt. *)

val rounds_degraded : t -> int
(** Segment-rounds whose summary exchange exhausted its retry budget
    and carried state over instead of judging. *)

val rounds_excused : t -> int
(** Segment-rounds skipped because a segment edge observably failed
    (benign link-down losses are not evidence of malice). *)
