let family rt ~k = Topology.Segments.pi2_family rt ~k
let pr rt ~k = Topology.Segments.pi2_pr rt ~k

let pairwise_suspicions ~adversary ~thresholds (seg, truth) =
  let nodes = Array.of_list seg in
  let reported =
    Array.mapi (fun pos r -> adversary.Rounds.misreport ~router:r ~pos ~truth) nodes
  in
  let out = ref [] in
  for i = 0 to Array.length nodes - 2 do
    let v = Validation.tv ~thresholds ~sent:reported.(i) ~received:reported.(i + 1) () in
    if not v.Validation.ok then out := [ nodes.(i); nodes.(i + 1) ] :: !out
  done;
  !out

(* The consensus exchange between the segment's terminals rides the
   lossy control plane: a timed-out exchange skips the segment this
   round (benign degradation, no accusation) instead of wedging. *)
let exchange_ok ctrl retry ~round seg =
  match ctrl with
  | None -> true
  | Some ch -> (
      let nodes = Array.of_list seg in
      let a = nodes.(0) and b = nodes.(Array.length nodes - 1) in
      let tag = List.fold_left (fun acc r -> (acc * 8191) + r + 1) round seg in
      match Ctrl.send ch ?retry ~src:a ~dst:b ~tag () with
      | Ctrl.Delivered _ -> true
      | Ctrl.Timed_out _ -> false)

let detect_round ~rt ~k ~adversary ?(thresholds = Validation.strict) ?packets_per_path
    ?ctrl ?retry ~round () =
  let segments = family rt ~k in
  let obs = Rounds.observe ~rt ~segments ~adversary ?packets_per_path ~round () in
  let suspicions =
    List.concat_map
      (fun ((seg, _) as truth) ->
        if exchange_ok ctrl retry ~round seg then
          pairwise_suspicions ~adversary ~thresholds truth
        else [])
      obs.Rounds.truth
  in
  List.sort_uniq compare suspicions

let detect ~rt ~k ~adversary ?thresholds ?packets_per_path ?ctrl ?retry ?probe
    ~rounds () =
  let g = Topology.Routing.graph rt in
  let correct = Rounds.correct_routers g ~faulty:adversary.Rounds.faulty in
  List.concat_map
    (fun round ->
      let segs =
        detect_round ~rt ~k ~adversary ?thresholds ?packets_per_path ?ctrl ?retry
          ~round ()
      in
      (match probe with
      | Some probe ->
          (* The offline rounds have no simulation clock; the round index
             stands in for time. *)
          let time = float_of_int round in
          let round_span =
            Netsim.Probe.trace_span probe ~track:"pi2"
              ~name:(Printf.sprintf "pi2 round %d" round)
              ~cat:"round" ~start:time ~finish:(time +. 1.0)
              ~args:
                [ ("segments_suspected",
                   Telemetry.Export.Int (List.length segs)) ]
              ()
          in
          let evidence =
            List.filter_map
              (fun seg ->
                Netsim.Probe.trace_instant probe ~track:"pi2" ~name:"tv-fail"
                  ~cat:"evidence" ~time ~routers:seg
                  ~args:
                    [ ("segment",
                       Telemetry.Export.List
                         (List.map (fun r -> Telemetry.Export.Int r) seg)) ]
                  ())
              segs
          in
          Netsim.Probe.record_verdict probe ~time ~detector:"pi2"
            ~suspects:(List.sort_uniq compare (List.concat segs))
            ~alarm:(segs <> [])
            ~detail:(Printf.sprintf "round=%d segments=%d" round (List.length segs))
            ~evidence:(Option.to_list round_span @ evidence)
            ()
      | None -> ());
      List.concat_map
        (fun seg ->
          List.map (fun by -> { Spec.segment = seg; round; by }) correct)
        segs)
    (List.init rounds Fun.id)

let state_counters rt ~k = Array.map List.length (pr rt ~k)
