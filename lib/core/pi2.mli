(** Protocol Π2 (§5.1): complete, accurate, precision 2.

    Every router monitors the (k+2)-path-segments it belongs to (plus
    whole shorter paths).  Each round the routers of a segment reach
    consensus on their signed traffic summaries and every correct router
    evaluates TV pairwise along the segment: a failed pair ⟨ri, ri+1⟩ is
    suspected by all correct routers (strong completeness, Appendix B.2). *)

val family : Topology.Routing.t -> k:int -> Topology.Graph.node list list
(** The segments monitored network-wide (delegates to
    {!Topology.Segments.pi2_family}). *)

val pr : Topology.Routing.t -> k:int -> Topology.Graph.node list list array
(** Per-router Pr (the Fig 5.2 quantity). *)

val detect_round :
  rt:Topology.Routing.t ->
  k:int ->
  adversary:Rounds.adversary ->
  ?thresholds:Validation.thresholds ->
  ?packets_per_path:int ->
  ?ctrl:Ctrl.t ->
  ?retry:Ctrl.retry ->
  round:int ->
  unit ->
  Topology.Graph.node list list
(** Run one synchronous round: generate traffic, collect (possibly
    misreported) summaries, evaluate TV pairwise under consensus, and
    return the suspected 2-path-segments.  Every correct router ends the
    round holding exactly this set (the consensus + reliable broadcast of
    Fig 5.1).  With [ctrl], each segment's terminal exchange rides that
    lossy control-plane channel under [retry]: an exhausted retry budget
    skips the segment this round — benign degradation, never an
    accusation. *)

val detect :
  rt:Topology.Routing.t ->
  k:int ->
  adversary:Rounds.adversary ->
  ?thresholds:Validation.thresholds ->
  ?packets_per_path:int ->
  ?ctrl:Ctrl.t ->
  ?retry:Ctrl.retry ->
  ?probe:Netsim.Probe.t ->
  rounds:int ->
  unit ->
  Spec.suspicion list
(** Run several rounds and expand the suspicions to every correct router
    (for checking the Appendix B properties).  With [probe], each
    round's verdict is journaled as a typed {!Netsim.Probe.verdict}
    (these rounds are synchronous and clockless, so the round index
    stands in for the verdict time). *)

val state_counters : Topology.Routing.t -> k:int -> int array
(** Per-router counter state under the conservation-of-flow summary: one
    counter per monitored segment (§5.1.1). *)
