type detection = {
  time : float;
  pair : Topology.Graph.node * Topology.Graph.node;
  segment : Topology.Graph.node list;
  missing : int;
  fabricated : int;
}

(* For a 3-segment <a, x, b>:
   - s01 is the traffic a forwarded into the segment (link a -> x);
   - s12 is the traffic x forwarded onward (link x -> b), which is also
     what b truthfully reports having received.
   The three consensus submissions are a's view of s01 and x's and b's
   views of s12; misreporting routers substitute their own. *)
type seg_state = {
  mutable s01 : Summary.t;
  mutable s12 : Summary.t;
  mutable prev_s01 : Summary.t;
  mutable prev_s12 : Summary.t;
  (* Graceful degradation under a faulty control plane: consecutive
     rounds in which the interior's consensus submission never arrived,
     and whether the segment has been written off as fail-stop. *)
  mutable mute_streak : int;
  mutable failstopped : bool;
  (* A segment edge dropped packets with its link down this round: the
     flap is announced by the link-state flood, so the missing packets
     are not evidence against either adjacent pair. *)
  mutable excused : bool;
}

type misreport = segment:Topology.Graph.node list -> pos:int -> Summary.t -> Summary.t

type t = {
  thresholds : Validation.thresholds;
  min_packets : int;
  segs : (Topology.Graph.node list, seg_state) Hashtbl.t;
  misreports : (Topology.Graph.node, misreport) Hashtbl.t;
  probe : Netsim.Probe.t option;
  ctrl : Ctrl.t option;
  retry : Ctrl.retry option;
  byz : Byz.t option;
  mutable detections_rev : detection list;
  mutable rounds_degraded : int;
  mutable rounds_excused : int;
  mutable round : int;
}

let mute_rounds = 3

let detections t = List.rev t.detections_rev

let suspected_pairs t =
  List.sort_uniq compare (List.map (fun d -> d.pair) (detections t))

let rounds_degraded t = t.rounds_degraded
let rounds_excused t = t.rounds_excused

let set_misreport t ~router f = Hashtbl.replace t.misreports router f

let fresh () = Summary.create Summary.Content

let deploy ~net ~rt ?(tau = 5.0) ?(thresholds = Validation.lenient ())
    ?(min_packets = 20) ?(key = Crypto_sim.Siphash.key_of_string "pi2-live")
    ?probe ?ctrl ?retry ?byz () =
  let t =
    { thresholds; min_packets; segs = Hashtbl.create 256;
      misreports = Hashtbl.create 4; probe; ctrl; retry; byz;
      detections_rev = []; rounds_degraded = 0; rounds_excused = 0; round = 0 }
  in
  List.iter
    (fun seg ->
      if List.length seg = 3 && not (Hashtbl.mem t.segs seg) then
        Hashtbl.add t.segs seg
          { s01 = fresh (); s12 = fresh (); prev_s01 = fresh ();
            prev_s12 = fresh (); mute_streak = 0; failstopped = false;
            excused = false })
    (Topology.Segments.pik2_family rt ~k:1);
  let edge_index = Hashtbl.create 256 in
  Hashtbl.iter
    (fun seg _ ->
      match seg with
      | [ a; x; b ] ->
          List.iter
            (fun edge ->
              let segs =
                Option.value (Hashtbl.find_opt edge_index edge) ~default:[]
              in
              Hashtbl.replace edge_index edge (seg :: segs))
            [ (a, x); (x, b) ]
      | _ -> ())
    t.segs;
  let path_cache = Hashtbl.create 256 in
  let predicted src dst =
    match Hashtbl.find_opt path_cache (src, dst) with
    | Some p -> p
    | None ->
        let p = Option.map Array.of_list (Topology.Routing.path rt ~src ~dst) in
        Hashtbl.add path_cache (src, dst) p;
        p
  in
  Netsim.Net.subscribe_iface net (fun ev ->
      match ev.Netsim.Net.kind with
      | Netsim.Iface.Delivered pkt -> (
          let u = ev.Netsim.Net.router and v = ev.Netsim.Net.next in
          match predicted pkt.Netsim.Packet.src pkt.Netsim.Packet.dst with
          | None -> ()
          | Some p ->
              let len = Array.length p in
              let fp = Netsim.Packet.fingerprint key pkt in
              let observe field seg =
                match Hashtbl.find_opt t.segs seg with
                | Some st ->
                    Summary.observe (field st) ~fp ~size:pkt.Netsim.Packet.size
                      ~time:ev.Netsim.Net.time
                | None -> ()
              in
              for i = 0 to len - 2 do
                if p.(i) = u && p.(i + 1) = v then begin
                  if i + 2 < len then observe (fun st -> st.s01) [ u; v; p.(i + 2) ];
                  if i >= 1 then observe (fun st -> st.s12) [ p.(i - 1); u; v ]
                end
              done)
      | Netsim.Iface.Drop_link_down _ -> (
          match
            Hashtbl.find_opt edge_index (ev.Netsim.Net.router, ev.Netsim.Net.next)
          with
          | Some segs ->
              List.iter
                (fun seg ->
                  match Hashtbl.find_opt t.segs seg with
                  | Some st -> st.excused <- true
                  | None -> ())
                segs
          | None -> ())
      | _ -> ());
  let sim = Netsim.Net.sim net in
  let report seg ~pos ~router truth =
    match Hashtbl.find_opt t.misreports router with
    | Some f -> f ~segment:seg ~pos (Summary.copy truth)
    | None -> truth
  in
  (* What a router actually submits to consensus: its Byzantine claim
     (extras screened against their origin MACs — consensus submissions
     are signed, so a forged entry is unforgeable by construction), then
     any scripted traffic-level misreport on top.  Consensus broadcasts
     one signed summary per router, so equivocation is structurally
     impossible here: the claim is keyed on a single pseudo-peer. *)
  let submit ~now seg ~pos ~router truth =
    let claimed =
      match byz with
      | None -> truth
      | Some bz -> (
          let cl, extras =
            Byz.summary_claim bz ~claimant:router ~peer:(-1) ~segment:seg
              ~round:t.round truth
          in
          match extras with
          | [] -> cl
          | extras ->
              let c = if cl == truth then Summary.copy cl else cl in
              ignore
                (Byz.screen bz ?probe ~time:now ~claimant:router ~summary:c
                   ~extras ());
              c)
    in
    report seg ~pos ~router claimed
  in
  let rec tick () =
    let now = Netsim.Sim.now sim in
    Hashtbl.iter
      (fun seg st ->
        (* An observable benign link failure on a segment edge — seen as
           drops this round, or still open at judgment time — excuses
           the whole round: the link-state flood already announced it,
           so conservation gaps are not evidence against either pair. *)
        let link_failed =
          match seg with
          | [ a; x; b ] ->
              let down ~src ~dst =
                match Netsim.Net.iface net ~src ~dst with
                | Some i -> not (Netsim.Iface.is_up i)
                | None -> false
              in
              down ~src:a ~dst:x || down ~src:x ~dst:b
          | _ -> false
        in
        (match seg with
        | [ _; _; _ ]
          when Summary.packets st.s01 >= t.min_packets && not st.failstopped
               && (st.excused || link_failed) ->
            t.rounds_excused <- t.rounds_excused + 1
        | [ a; x; b ]
          when Summary.packets st.s01 >= t.min_packets && not st.failstopped ->
            (* The interior's consensus submission rides the (possibly
               faulty) control plane: a refusal degrades the round —
               only x's own story is missing, and silence is never
               evidence of malice. *)
            let x_submitted =
              match ctrl with
              | None -> true
              | Some ch -> (
                  let tag =
                    (List.fold_left (fun acc r -> (acc * 8191) + r + 1) t.round
                       seg)
                    lxor 0x2b7e1516
                  in
                  match Ctrl.send ch ?retry ~now ~src:x ~dst:b ~tag () with
                  | Ctrl.Delivered _ ->
                      st.mute_streak <- 0;
                      true
                  | Ctrl.Timed_out _ ->
                      t.rounds_degraded <- t.rounds_degraded + 1;
                      st.mute_streak <- st.mute_streak + 1;
                      false)
            in
            if not x_submitted then begin
              (match byz with Some bz -> Byz.note_mute_refusal bz | None -> ());
              if st.mute_streak >= mute_rounds then begin
                st.failstopped <- true;
                match probe with
                | None -> ()
                | Some probe ->
                    Netsim.Probe.record_verdict probe ~time:now ~detector:"pi2"
                      ~subject:x ~suspects:seg ~alarm:false
                      ~detail:
                        (Printf.sprintf
                           "fail-stop: consensus submission refused %d \
                            consecutive rounds — excised, not accused"
                           mute_rounds)
                      ()
              end
            end
            else begin
              let r0 = submit ~now seg ~pos:0 ~router:a st.s01 in
              let r1 = submit ~now seg ~pos:1 ~router:x st.s12 in
              let r2 = submit ~now seg ~pos:2 ~router:b st.s12 in
              let judge ~pair ~sent ~received ~prev =
                let v = Validation.tv ~thresholds:t.thresholds ~sent ~received () in
                let fabricated =
                  List.filter (fun fp -> not (Summary.mem prev fp)) v.Validation.fabricated
                in
                let loss_bad =
                  float_of_int (List.length v.Validation.missing)
                  > t.thresholds.Validation.max_loss_fraction
                    *. float_of_int (Summary.packets sent)
                in
                if loss_bad || List.length fabricated > t.thresholds.Validation.max_fabricated
                then begin
                  t.detections_rev <-
                    { time = now; pair; segment = seg;
                      missing = List.length v.Validation.missing;
                      fabricated = List.length fabricated }
                    :: t.detections_rev;
                  (* Precision 2 is α-safe by construction: a failing
                     adjacent pair always contains the router whose
                     submission broke conservation. *)
                  match probe with
                  | None -> ()
                  | Some probe ->
                      let pa, pb = pair in
                      Netsim.Probe.record_verdict probe ~time:now
                        ~detector:"pi2" ~suspects:[ pa; pb ] ~alarm:true
                        ~detail:
                          (Printf.sprintf "missing=%d fabricated=%d"
                             (List.length v.Validation.missing)
                             (List.length fabricated))
                        ()
                end
              in
              judge ~pair:(a, x) ~sent:r0 ~received:r1 ~prev:st.prev_s01;
              judge ~pair:(x, b) ~sent:r1 ~received:r2 ~prev:st.prev_s12
            end
        | _ -> ());
        st.prev_s01 <- st.s01;
        st.prev_s12 <- st.s12;
        st.s01 <- fresh ();
        st.s12 <- fresh ();
        st.excused <- false)
      t.segs;
    t.round <- t.round + 1;
    Netsim.Sim.schedule sim ~delay:tau tick
  in
  Netsim.Sim.schedule sim ~delay:tau tick;
  t
