(** Protocol Π2 at packet level (§5.1 on the simulator).

    Every router of every monitored 3-path-segment collects a summary of
    the traffic it forwarded along the segment; each round the summaries
    are exchanged by (simulated) consensus — signed, so a protocol-faulty
    router can lie about its own summary but cannot forge another's —
    and every correct router evaluates TV pairwise.  A failing adjacent
    pair is suspected by all correct routers: precision 2, against the
    k = 1 adversary the Fatih deployment targets.

    The consensus layer is modelled as reliable delivery of
    per-router-signed summaries (the abstraction of Fig 5.1); a
    misreporting router substitutes its own summary through
    [set_misreport]. *)

type detection = {
  time : float;
  pair : Topology.Graph.node * Topology.Graph.node;
      (** the suspected 2-path-segment *)
  segment : Topology.Graph.node list;  (** the monitored segment it came from *)
  missing : int;
  fabricated : int;
}

type t

val deploy :
  net:Netsim.Net.t ->
  rt:Topology.Routing.t ->
  ?tau:float ->
  ?thresholds:Validation.thresholds ->
  ?min_packets:int ->
  ?key:Crypto_sim.Siphash.key ->
  ?probe:Netsim.Probe.t ->
  ?ctrl:Ctrl.t ->
  ?retry:Ctrl.retry ->
  ?byz:Byz.t ->
  unit ->
  t
(** Monitor every 3-segment of the routed paths with per-position
    summaries, validating every [tau] seconds (default 5 s, 2% loss
    tolerance, 20-packet minimum).

    With [probe], every failing pair is journaled as an alarming
    {!Netsim.Probe.verdict} suspecting exactly that pair — precision 2
    is α-safe by construction, because a failing adjacent pair always
    contains the router whose submission broke conservation.

    With [ctrl], the interior router's consensus submission rides that
    lossy channel under [retry]: a timed-out submission {e degrades}
    the round (nothing is judged on a missing story), and three
    consecutive refusals judge the interior {b fail-stop} — a
    non-alarming verdict and no further judgment of the segment.

    With [byz], each submission is the router's {e claim}
    ({!Byz.summary_claim}), with asserted extras screened against their
    origin MACs before validation — consensus submissions are signed,
    so a hardened run rejects every forged entry.  Consensus broadcasts
    one signed summary per router, which makes equivocation
    structurally impossible here: the claim is keyed on a single
    pseudo-peer. *)

val set_misreport :
  t ->
  router:Topology.Graph.node ->
  (segment:Topology.Graph.node list -> pos:int -> Summary.t -> Summary.t) ->
  unit
(** Make a router protocol-faulty: the function rewrites the summary it
    submits to consensus for each segment (receives the truthful one). *)

val detections : t -> detection list
(** All suspected 2-path-segments, oldest first, deduplicated per
    round. *)

val suspected_pairs : t -> (Topology.Graph.node * Topology.Graph.node) list
(** Distinct pairs suspected so far. *)

val rounds_degraded : t -> int
(** Segment-rounds skipped because the interior's consensus submission
    exhausted its [ctrl] retry budget. *)

val rounds_excused : t -> int
(** Segment-rounds skipped because a segment edge observably failed —
    packets dropped on a downed link during the round, or the link
    still down at judgment time.  The link-state flood already
    announced the failure, so the conservation gap it opens is not
    evidence against either adjacent pair — excusing it is what keeps
    α-accuracy intact under benign churn. *)
