let family rt ~k = Topology.Segments.pik2_family rt ~k
let pr rt ~k = Topology.Segments.pik2_pr rt ~k

let filter_summary sampling s =
  match sampling with
  | None -> s
  | Some sampler ->
      let out = Summary.create (Summary.policy s) in
      List.iter
        (fun fp ->
          if Crypto_sim.Sampling.selects sampler fp then
            Summary.observe out ~fp ~size:1 ~time:0.0)
        (Summary.fingerprints s);
      out

let detect_round ~rt ~k ~adversary ?(thresholds = Validation.strict) ?sampling
    ?packets_per_path ?ctrl ?retry ~round () =
  let segments = family rt ~k in
  let obs = Rounds.observe ~rt ~segments ~adversary ?packets_per_path ~round () in
  let is_faulty r = List.mem r adversary.Rounds.faulty in
  let suspicions =
    List.filter_map
      (fun (seg, truth) ->
        let nodes = Array.of_list seg in
        let last = Array.length nodes - 1 in
        let a = nodes.(0) and b = nodes.(last) in
        if is_faulty a && is_faulty b then None
        else begin
          (* The summaries travel through the segment itself; any router
             of the segment can block the exchange, which is itself a
             detectable failure (Fig 5.3's timeout µ). *)
          let blocked = Array.exists adversary.Rounds.blocks_exchange nodes in
          if blocked then Some seg
          else if
            (* Benign control-plane loss that exhausts the retry budget
               skips the segment this round — the ends cannot tell loss
               from silence after one window, so they degrade rather
               than accuse (the persistent adversarial block above is
               what repeated authenticated timeouts punish). *)
            match ctrl with
            | None -> false
            | Some ch -> (
                let tag =
                  List.fold_left (fun acc r -> (acc * 8191) + r + 1) round seg
                in
                match Ctrl.send ch ?retry ~src:a ~dst:b ~tag () with
                | Ctrl.Delivered _ -> false
                | Ctrl.Timed_out _ -> true)
          then None
          else begin
            let report pos r =
              filter_summary sampling (adversary.Rounds.misreport ~router:r ~pos ~truth)
            in
            let v =
              Validation.tv ~thresholds ~sent:(report 0 a) ~received:(report last b) ()
            in
            if v.Validation.ok then None else Some seg
          end
        end)
      obs.Rounds.truth
  in
  List.sort_uniq compare suspicions

let detect ~rt ~k ~adversary ?thresholds ?packets_per_path ?ctrl ?retry ?probe
    ~rounds () =
  let g = Topology.Routing.graph rt in
  let correct = Rounds.correct_routers g ~faulty:adversary.Rounds.faulty in
  List.concat_map
    (fun round ->
      let segs =
        detect_round ~rt ~k ~adversary ?thresholds ?packets_per_path ?ctrl ?retry
          ~round ()
      in
      (match probe with
      | Some probe ->
          (* Clockless synchronous rounds, as in {!Pi2.detect}: the round
             index stands in for time. *)
          let time = float_of_int round in
          let round_span =
            Netsim.Probe.trace_span probe ~track:"pik2"
              ~name:(Printf.sprintf "pik2 round %d" round)
              ~cat:"round" ~start:time ~finish:(time +. 1.0)
              ~args:
                [ ("segments_suspected",
                   Telemetry.Export.Int (List.length segs)) ]
              ()
          in
          let evidence =
            List.filter_map
              (fun seg ->
                Netsim.Probe.trace_instant probe ~track:"pik2"
                  ~name:"exchange-fail" ~cat:"evidence" ~time ~routers:seg
                  ~args:
                    [ ("segment",
                       Telemetry.Export.List
                         (List.map (fun r -> Telemetry.Export.Int r) seg)) ]
                  ())
              segs
          in
          Netsim.Probe.record_verdict probe ~time ~detector:"pik2"
            ~suspects:(List.sort_uniq compare (List.concat segs))
            ~alarm:(segs <> [])
            ~detail:(Printf.sprintf "round=%d segments=%d" round (List.length segs))
            ~evidence:(Option.to_list round_span @ evidence)
            ()
      | None -> ());
      List.concat_map
        (fun seg ->
          List.map (fun by -> { Spec.segment = seg; round; by }) correct)
        segs)
    (List.init rounds Fun.id)

let state_counters rt ~k = Array.map (fun segs -> 2 * List.length segs) (pr rt ~k)
