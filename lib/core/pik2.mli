(** Protocol Πk+2 (§5.2): complete, accurate, precision k+2.

    Only the two end routers of each monitored x-segment (3 <= x <= k+2)
    collect and exchange summaries, through the segment itself, within a
    timeout.  A failed exchange or a failed TV makes both correct ends
    suspect the whole segment and announce it by reliable broadcast —
    far cheaper than Π2 (no consensus, Pr bounded by N) at the price of
    precision k+2 (Appendix B.3). *)

val family : Topology.Routing.t -> k:int -> Topology.Graph.node list list
val pr : Topology.Routing.t -> k:int -> Topology.Graph.node list list array

val detect_round :
  rt:Topology.Routing.t ->
  k:int ->
  adversary:Rounds.adversary ->
  ?thresholds:Validation.thresholds ->
  ?sampling:Crypto_sim.Sampling.t ->
  ?packets_per_path:int ->
  ?ctrl:Ctrl.t ->
  ?retry:Ctrl.retry ->
  round:int ->
  unit ->
  Topology.Graph.node list list
(** One synchronous round; returns the suspected segments (each of length
    <= k+2).  [sampling] restricts validation to a keyed hash-range
    subsample — the §5.2.1 overhead reduction, sound because
    intermediate routers cannot tell which packets are sampled.  With
    [ctrl], the end-to-end summary exchange rides that lossy channel
    under [retry]: a benignly timed-out exchange skips the segment
    (degradation, not accusation), while an adversarial
    [blocks_exchange] is still suspected. *)

val detect :
  rt:Topology.Routing.t ->
  k:int ->
  adversary:Rounds.adversary ->
  ?thresholds:Validation.thresholds ->
  ?packets_per_path:int ->
  ?ctrl:Ctrl.t ->
  ?retry:Ctrl.retry ->
  ?probe:Netsim.Probe.t ->
  rounds:int ->
  unit ->
  Spec.suspicion list
(** Multi-round run expanded per correct router, as in {!Pi2.detect}.
    With [probe], each round records a verdict (and, when tracing, a
    round span plus per-segment exchange-failure evidence). *)

val state_counters : Topology.Routing.t -> k:int -> int array
(** Per-router counters under conservation of flow: two per monitored
    segment, one per direction (§5.2.1). *)
