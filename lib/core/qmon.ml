type entry = { fp : int64; size : int; flow : int; time : float }

type t = {
  router : int;
  next : int;
  mutable predict : Netsim.Packet.t -> int option;
  mutable pending_s : entry list;          (* newest first *)
  mutable pending_d : entry list;          (* newest first *)
  s_fps : (int64, unit) Hashtbl.t;         (* every announced arrival fp *)
  (* Arrivals the monitored interface itself discarded because the link
     was down: the failure is locally observable (the neighbours see the
     link-state flood), so these are excused, never "unexplainable". *)
  benign_fps : (int64, unit) Hashtbl.t;
  mutable benign_excused : int;
  occ_samples : (int64, int) Hashtbl.t;    (* calibration *)
  mutable calibrating : bool;
}

let router t = t.router
let next t = t.next
let benign_excused t = t.benign_excused
let set_predict t p = t.predict <- p
let set_calibrating t v = t.calibrating <- v

let predict_of_routing rt ~router pkt =
  if pkt.Netsim.Packet.dst = router then None
  else Topology.Routing.next_hop rt router ~dst:pkt.Netsim.Packet.dst

let predict_of_ecmp ecmp ~router pkt =
  if pkt.Netsim.Packet.dst = router then None
  else
    Topology.Ecmp.next_hop ecmp router ~dst:pkt.Netsim.Packet.dst
      ~flow:pkt.Netsim.Packet.flow

let attach ~net ~predict ~key ?(skew = fun ~reporter:_ -> 0.0) ~router ~next () =
  (match Netsim.Net.iface net ~src:router ~dst:next with
  | Some _ -> ()
  | None -> invalid_arg "Qmon.attach: no such link");
  let t =
    { router; next; predict; pending_s = []; pending_d = []; s_fps = Hashtbl.create 256;
      benign_fps = Hashtbl.create 16; benign_excused = 0;
      occ_samples = Hashtbl.create 64; calibrating = false }
  in
  let monitored_iface = Netsim.Net.iface net ~src:router ~dst:next in
  Netsim.Net.subscribe_iface net (fun ev ->
      match ev.Netsim.Net.kind with
      | Netsim.Iface.Delivered pkt
        when ev.Netsim.Net.next = router && pkt.Netsim.Packet.dst <> router ->
          (* An upstream neighbour watched this packet reach r; it enters
             Q iff r's (predictable) forwarding decision for it is
             [next]. *)
          if t.predict pkt = Some next then begin
            let fp = Netsim.Packet.fingerprint key pkt in
            Hashtbl.replace t.s_fps fp ();
            t.pending_s <-
              { fp; size = pkt.Netsim.Packet.size; flow = pkt.Netsim.Packet.flow;
                time = ev.Netsim.Net.time +. skew ~reporter:ev.Netsim.Net.router }
              :: t.pending_s
          end
      | Netsim.Iface.Transmit_start pkt
        when ev.Netsim.Net.router = router && ev.Netsim.Net.next = next ->
          (* rd infers the dequeue instant from its own arrival time. *)
          let fp = Netsim.Packet.fingerprint key pkt in
          t.pending_d <-
            { fp; size = pkt.Netsim.Packet.size; flow = pkt.Netsim.Packet.flow;
              time = ev.Netsim.Net.time }
            :: t.pending_d
      | Netsim.Iface.Enqueued pkt
        when ev.Netsim.Net.router = router && ev.Netsim.Net.next = next
             && pkt.Netsim.Packet.src = router ->
          (* Traffic the monitored router originates also occupies Q; the
             router announces it itself and is trusted for its own
             traffic (§2.1.4 fate sharing), so these entries keep the
             replayed occupancy honest. *)
          let fp = Netsim.Packet.fingerprint key pkt in
          Hashtbl.replace t.s_fps fp ();
          t.pending_s <-
            { fp; size = pkt.Netsim.Packet.size; flow = pkt.Netsim.Packet.flow;
              time = ev.Netsim.Net.time }
            :: t.pending_s
      | Netsim.Iface.Drop_link_down pkt
        when ev.Netsim.Net.router = router && ev.Netsim.Net.next = next ->
          Hashtbl.replace t.benign_fps (Netsim.Packet.fingerprint key pkt) ()
      | Netsim.Iface.Enqueued pkt
        when t.calibrating && ev.Netsim.Net.router = router && ev.Netsim.Net.next = next
        -> (
          match monitored_iface with
          | Some iface ->
              let fp = Netsim.Packet.fingerprint key pkt in
              Hashtbl.replace t.occ_samples fp
                (Netsim.Iface.occupancy iface - pkt.Netsim.Packet.size)
          | None -> ())
      | _ -> ());
  t

type round_data = {
  arrivals : entry list;
  departures : entry list;
  fabricated : int64 list;
  occupancy_samples : (int64 * int) list;
}

let by_time a b = compare (a.time, a.fp) (b.time, b.fp)

let drain t ~horizon =
  let ready_all, rest_s = List.partition (fun e -> e.time <= horizon) t.pending_s in
  (* Excuse announced arrivals the monitored interface discarded while
     its link was down — those packets never entered Q. *)
  let benign, ready_s =
    List.partition (fun e -> Hashtbl.mem t.benign_fps e.fp) ready_all
  in
  List.iter
    (fun e ->
      Hashtbl.remove t.benign_fps e.fp;
      Hashtbl.remove t.s_fps e.fp;
      t.benign_excused <- t.benign_excused + 1)
    benign;
  let ready_fps = Hashtbl.create (List.length ready_s * 2) in
  List.iter (fun e -> Hashtbl.replace ready_fps e.fp ()) ready_s;
  let matched_d, other_d =
    List.partition (fun e -> Hashtbl.mem ready_fps e.fp) t.pending_d
  in
  (* A departure at or before the horizon whose fingerprint was never
     announced by any upstream neighbour cannot be honest traffic: the
     router fabricated it. *)
  let fabricated_d, keep_d =
    List.partition
      (fun e -> e.time <= horizon && not (Hashtbl.mem t.s_fps e.fp))
      other_d
  in
  t.pending_s <- rest_s;
  t.pending_d <- keep_d;
  (* Matched fingerprints will never be referenced again. *)
  List.iter (fun e -> Hashtbl.remove t.s_fps e.fp) ready_s;
  let occupancy_samples =
    List.filter_map
      (fun e ->
        match Hashtbl.find_opt t.occ_samples e.fp with
        | Some occ ->
            Hashtbl.remove t.occ_samples e.fp;
            Some (e.fp, occ)
        | None -> None)
      ready_s
  in
  { arrivals = List.sort by_time ready_s;
    departures = List.sort by_time matched_d;
    fabricated = List.map (fun e -> e.fp) fabricated_d;
    occupancy_samples }
