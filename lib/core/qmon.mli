(** Traffic-information collection for Protocol χ (§6.2.1).

    Protocol χ validates one output queue Q of a router r, associated
    with the link ⟨r, rd⟩ (Fig 6.1).  The information used never comes
    from r itself:

    - S, the arrivals into Q, is assembled by the upstream neighbours
      rs1..rsn: each knows exactly when a packet it transmitted reaches r
      (its own dequeue time + serialization + propagation) and can
      predict from the shared routing state that r will forward it
      through Q; the traffic r originates itself is announced by r and
      trusted (§2.1.4 fate sharing — r lying about its own traffic can
      only fabricate congestion against itself, not frame a neighbour);
    - D, the departures, is assembled by rd: arrival time at rd minus
      serialization and propagation gives the instant the packet left Q.

    The monitor additionally supports a calibration phase (the learning
    period for the queue-error distribution): during it, the true queue
    occupancy at enqueue instants is sampled — the one piece of
    information that requires the router's cooperation before it is
    distrusted. *)

type entry = {
  fp : int64;
  size : int;
  flow : int;     (** flow identifier from the packet header *)
  time : float;   (** entry into / exit from Q *)
}

type t

val attach :
  net:Netsim.Net.t ->
  predict:(Netsim.Packet.t -> int option) ->
  key:Crypto_sim.Siphash.key ->
  ?skew:(reporter:int -> float) ->
  router:int ->
  next:int ->
  unit ->
  t
(** Monitor the queue of [router]'s interface toward [next].  [predict]
    is the neighbours' model of [router]'s forwarding decision for a
    packet (plain link-state: {!predict_of_routing}; under equal-cost
    multipath: {!predict_of_ecmp} — §7.4.1).  [skew] models imperfect
    clock synchronization (§7.3): each upstream reporter's timestamps
    are offset by [skew ~reporter] seconds (default none) — small skews
    are absorbed by χ's calibrated error, large ones break it (see the
    ablation).  Raises [Invalid_argument] if that link does not
    exist. *)

val predict_of_routing :
  Topology.Routing.t -> router:int -> Netsim.Packet.t -> int option
(** Single-shortest-path prediction. *)

val predict_of_ecmp :
  Topology.Ecmp.t -> router:int -> Netsim.Packet.t -> int option
(** Flow-hash multipath prediction. *)

val router : t -> int
val next : t -> int

val set_predict : t -> (Netsim.Packet.t -> int option) -> unit
(** Swap the forwarding prediction (after a routing change the
    neighbours re-derive it from the new tables). *)

val set_calibrating : t -> bool -> unit
(** Toggle collection of true-occupancy samples. *)

val benign_excused : t -> int
(** Announced arrivals excused because the monitored interface dropped
    them with the link down — a locally observable benign failure the
    neighbours learn from the link-state flood, so χ must not read the
    disappearance as malice. *)

type round_data = {
  arrivals : entry list;        (** S, time-ordered, up to the horizon *)
  departures : entry list;      (** D, time-ordered (complete for S) *)
  fabricated : int64 list;
      (** departures never announced upstream (traffic the router
          originates itself is exempt — §2.1.4 fate sharing) *)
  occupancy_samples : (int64 * int) list;
      (** calibration: fp -> true queue bytes just before its enqueue *)
}

val drain : t -> horizon:float -> round_data
(** Consume every arrival with [time <= horizon] together with all
    matching departures; later arrivals stay buffered for the next
    round.  [horizon] must leave enough slack for queued packets to
    drain (the caller uses round end minus a guard interval). *)
