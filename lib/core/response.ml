type config = { ospf_delay : float; ospf_hold : float }

let default_config = { ospf_delay = 5.0; ospf_hold = 10.0 }

type event = {
  time : float;
  forbidden : Topology.Graph.node list list;
}

type t = {
  net : Netsim.Net.t;
  config : config;
  probe : Netsim.Probe.t option;
  mutable suspected : Topology.Graph.node list list;
  mutable pending : bool;           (* a recomputation is scheduled *)
  mutable last_update : float;      (* time of the latest installation *)
  mutable updates_rev : event list;
  mutable on_update : Topology.Policy.t -> unit;
}

let create ~net ?(config = default_config) ?probe () =
  { net; config; probe; suspected = []; pending = false;
    last_update = neg_infinity; updates_rev = []; on_update = (fun _ -> ()) }

let install t =
  t.pending <- false;
  let now = Netsim.Sim.now (Netsim.Net.sim t.net) in
  t.last_update <- now;
  let pol = Topology.Policy.compute (Netsim.Net.graph t.net) ~forbidden:t.suspected in
  Netsim.Net.use_policy t.net pol;
  t.updates_rev <- { time = now; forbidden = t.suspected } :: t.updates_rev;
  (match t.probe with
  | Some probe ->
      ignore
        (Netsim.Probe.trace_instant probe ~track:"response" ~name:"routing-update"
           ~cat:"response" ~time:now
           ~routers:(List.sort_uniq compare (List.concat t.suspected))
           ~args:
             [ ("segments_excised",
                Telemetry.Export.Int (List.length t.suspected)) ]
           ())
  | None -> ());
  t.on_update pol

let schedule t =
  if not t.pending then begin
    t.pending <- true;
    let sim = Netsim.Net.sim t.net in
    let now = Netsim.Sim.now sim in
    (* Delay timer, pushed out by the hold-down from the last install. *)
    let at =
      Float.max (now +. t.config.ospf_delay) (t.last_update +. t.config.ospf_hold)
    in
    Netsim.Sim.schedule_at sim ~time:at (fun () -> install t)
  end

let suspect t segment =
  if not (List.mem segment t.suspected) then begin
    t.suspected <- segment :: t.suspected;
    schedule t
  end

let suspected t = t.suspected
let updates t = List.rev t.updates_rev

let set_on_update t f = t.on_update <- f
