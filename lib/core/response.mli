(** The response engine (§2.4.3, §5.3.1): excise suspected path-segments
    from the routing fabric.

    On an alert the link-state machinery recomputes forwarding after the
    OSPF delay timer, and consecutive recomputations are separated by the
    OSPF hold timer (5 s and 10 s in Zebra, the values Fig 5.7's timeline
    exhibits).  Recomputation installs policy routing that avoids every
    suspected segment while leaving the suspected routers usable on their
    unsuspected paths. *)

type config = {
  ospf_delay : float;  (** alert -> recomputation *)
  ospf_hold : float;   (** minimum spacing between recomputations *)
}

val default_config : config
(** 5 s delay, 10 s hold. *)

type event = {
  time : float;
  forbidden : Topology.Graph.node list list;  (** segments excised so far *)
}

type t

val create : net:Netsim.Net.t -> ?config:config -> ?probe:Netsim.Probe.t -> unit -> t
(** Pass [probe] to record a "routing-update" trace instant (listing the
    excised segments' routers) at each installation. *)

val suspect : t -> Topology.Graph.node list -> unit
(** Feed a suspected path-segment (idempotent); schedules a routing
    recomputation respecting the delay/hold timers. *)

val set_on_update : t -> (Topology.Policy.t -> unit) -> unit
(** Callback invoked after each routing installation with the policy just
    installed (Fatih uses it to re-derive its path predictions, as the
    coordinator does on topology change, §5.3.1). *)

val suspected : t -> Topology.Graph.node list list
val updates : t -> event list
(** Routing-table installations, oldest first. *)
