type verdict = {
  round : int;
  time : float;
  deficits : (int * int) list;
  suspected : int list;
}

type t = {
  threshold : int;
  n : int;
  flow : Netflow.t;
  (* Deficit carried from previous rounds (counters are cumulative; per
     round we difference them). *)
  mutable last_deficit : int array;
  mutable round : int;
  mutable verdicts_rev : verdict list;
}

let deploy ~net ?(tau = 5.0) ?(threshold = 25) ?probe () =
  let n = Topology.Graph.size (Netsim.Net.graph net) in
  let t =
    { threshold; n; flow = Netflow.attach ~net (); last_deficit = Array.make n 0;
      round = 0; verdicts_rev = [] }
  in
  let sim = Netsim.Net.sim net in
  let rec tick () =
    let deficits =
      List.filter_map
        (fun r ->
          let total = Netflow.conservation_deficit t.flow ~router:r in
          let this_round = total - t.last_deficit.(r) in
          t.last_deficit.(r) <- total;
          if this_round <> 0 then Some (r, this_round) else None)
        (List.init t.n Fun.id)
    in
    let suspected = List.filter_map
        (fun (r, d) -> if d > t.threshold then Some r else None) deficits
    in
    let now = Netsim.Sim.now sim in
    t.verdicts_rev <-
      { round = t.round; time = now; deficits; suspected } :: t.verdicts_rev;
    (match probe with
    | Some probe ->
        Netsim.Probe.record_verdict probe ~time:now ~detector:"watchers"
          ~suspects:suspected
          ~alarm:(suspected <> [])
          ~detail:
            (Printf.sprintf "round=%d routers_with_deficit=%d" t.round
               (List.length deficits))
          ()
    | None -> ());
    t.round <- t.round + 1;
    Netsim.Sim.schedule sim ~delay:tau tick
  in
  Netsim.Sim.schedule sim ~delay:tau tick;
  t

let verdicts t = List.rev t.verdicts_rev

let suspected_routers t =
  List.sort_uniq compare (List.concat_map (fun v -> v.suspected) (verdicts t))
