(** WATCHERS at packet level: conservation-of-flow validation over
    NetFlow-style counters collected from the simulator (§3.1 on the
    wire).

    Every router's neighbours count what they handed it and what it
    handed them; per validation round the snapshots are "flooded" and
    each router's conservation of flow is tested against a packet
    threshold — including the threshold's §6.1.1 weakness: it must
    absorb both in-flight packets at the round boundary and congestive
    losses, so a sub-threshold attacker hides. *)

type verdict = {
  round : int;
  time : float;
  deficits : (int * int) list;   (** (router, transit deficit) this round *)
  suspected : int list;          (** deficit above the threshold *)
}

type t

val deploy :
  net:Netsim.Net.t ->
  ?tau:float ->
  ?threshold:int ->
  ?probe:Netsim.Probe.t ->
  unit ->
  t
(** Validate every router's conservation of flow each [tau] seconds
    (default 5 s) with the given per-round deficit [threshold]
    (default 25 packets).  With [probe], every round verdict is
    journaled as a typed {!Netsim.Probe.verdict}. *)

val verdicts : t -> verdict list
(** Per-round outcomes, oldest first. *)

val suspected_routers : t -> int list
(** Routers suspected in at least one round. *)
