let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let step acc byte =
  Int64.mul (Int64.logxor acc (Int64.of_int byte)) prime

let hash_string s =
  let acc = ref offset_basis in
  for i = 0 to String.length s - 1 do
    acc := step !acc (Char.code (String.unsafe_get s i))
  done;
  !acc

let hash_int64 x =
  let acc = ref offset_basis in
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * i)) 0xffL) in
    acc := step !acc byte
  done;
  !acc

let combine acc x =
  let acc = ref acc in
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * i)) 0xffL) in
    acc := step !acc byte
  done;
  !acc
