#!/usr/bin/env python3
"""Emit the fully unrolled SHA-256 compression function in sha256.ml.

The round loop is unrolled with the FIPS 180-4 round constants as
integer literals, so the native compiler keeps the whole state in
registers or spill slots: no ref cells, no tail-call argument spills,
no safepoint polls and no repeated loads of a constant table inside
the hot path.

All arithmetic is emitted as Int64 operations.  The native compiler's
local unboxing pass keeps every let-bound Int64 whose uses are all
Int64 primitives in an untagged machine register, which beats tagged
[int] arithmetic on this kernel: logical shifts need no low-bit
retagging afterwards (`or $1`), building the dual-lane form is a plain
`shl`+`or` with no tag-adjustment constant, and round constants under
2^31 fold straight into `lea` displacements.  Nothing is boxed because
no Int64 value escapes the function.

Techniques (all measured on the repo's bench harness):
  - Rotated variable naming: round t binds fresh [a_t]/[e_t] and refers
    to earlier rounds' bindings directly, so the 8-way state rotation
    costs zero moves instead of a parallel rename.
  - Dual-lane rotations: [x lor (x lsl 32)] duplicates a 32-bit word
    into both halves of the 64-bit word, after which every 32-bit
    rotation is a single [lsr].
  - Duals built from the unmasked round sum: [raw lsl 32] sheds the
    carry garbage by itself, so the [land mask] runs in parallel with
    the shift instead of in front of it, keeping the critical
    t1 -> e -> Sigma1 -> t1 recurrence shorter.
  - Factored sigmas off the critical path: ror a ^ ror b ^ ror c with
    a<b<c equals ror a (x ^ ror (b-a) x ^ ror (c-a) x), saving one
    shift.  Sigma1 sits on the critical recurrence, so it keeps the
    unfactored form whose three shifts issue in parallel.
  - Deferred masking: additions only carry upward, so sigma/ch/maj
    terms stay unmasked; only rotation *inputs* and the final state
    words are cut back to 32 bits.  The mask is bound through
    [Sys.opaque_identity] so it lives in a register instead of being
    re-materialised at every use.
  - The message block is read with eight 64-bit big-endian loads, the
    whole 64-entry message schedule lives in let-bound locals (the
    function needs no scratch array), and each schedule word's dual is
    built once and shared between its sigma0 and sigma1 consumers.

Regenerate with `python3 gen_sha256_compress.py > compress.inc.ml` and
splice the output into sha256.ml if the round structure ever changes.
"""

K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]


def paren(e):
    return e if e.replace("_", "").isalnum() else f"({e})"


def add(*terms):
    acc = terms[0]
    for t in terms[1:]:
        acc = f"Int64.add {paren(acc)} {paren(t)}"
    return acc


def xor(a, b):
    return f"Int64.logxor {paren(a)} {paren(b)}"


def and_(a, b):
    return f"Int64.logand {paren(a)} {paren(b)}"


def or_(a, b):
    return f"Int64.logor {paren(a)} {paren(b)}"


def shr(a, n):
    return f"Int64.shift_right_logical {paren(a)} {n}"


def shl(a, n):
    return f"Int64.shift_left {paren(a)} {n}"


def dual(x):
    return or_(x, shl(x, 32))


print("""(* One compression pass over the 64 bytes at [b.(off .. off+63)],
   updating [h] in place.  Fully unrolled straight-line code generated
   by gen_sha256_compress.py — see that file for the rationale; in
   short, every let-bound Int64 here stays in an untagged register
   (the compiler's local unboxing), so this is plain 64-bit machine
   arithmetic with none of the tagged-[int] shift/mask overhead. *)
let compress h b off =
  let m = Int64.of_int (Sys.opaque_identity mask32) in""")

# Message block: eight 64-bit big-endian loads -> sixteen 32-bit words.
for i in range(8):
    print(f"  let v{i} = Bytes.get_int64_be b (off + {8 * i}) in")
    print(f"  let w{2 * i} = {shr(f'v{i}', 32)} in")
    print(f"  let w{2 * i + 1} = {and_(f'v{i}', 'm')} in")

print("""  (* Message-schedule words w16..w63 are emitted interleaved, each
     just before the round that first consumes it; each word's
     dual-lane form d_i is built once and shared by both sigmas that
     read it.  64 rounds with rotated naming: at round t the working
     state is a = A.(t-1) .. d = A.(t-4), e = E.(t-1) .. h = E.(t-4). *)
  let sa = Int64.of_int (Array.unsafe_get h 0) in
  let sb = Int64.of_int (Array.unsafe_get h 1) in
  let sc = Int64.of_int (Array.unsafe_get h 2) in
  let sd = Int64.of_int (Array.unsafe_get h 3) in
  let se = Int64.of_int (Array.unsafe_get h 4) in
  let sf = Int64.of_int (Array.unsafe_get h 5) in
  let sg = Int64.of_int (Array.unsafe_get h 6) in
  let sh = Int64.of_int (Array.unsafe_get h 7) in""")

emitted_duals = set()


def ensure_dual(j):
    if j not in emitted_duals:
        emitted_duals.add(j)
        print(f"  let d{j} = {dual(f'w{j}')} in")


def emit_schedule(t):
    x, y = f"w{t - 15}", f"w{t - 2}"
    ensure_dual(t - 15)
    ensure_dual(t - 2)
    s0 = xor(shr(xor(f"d{t - 15}", shr(f"d{t - 15}", 11)), 7), shr(x, 3))
    s1 = xor(shr(xor(f"d{t - 2}", shr(f"d{t - 2}", 2)), 17), shr(y, 10))
    print(f"  let w{t} =")
    print(f"    {and_(add(f'w{t - 16}', s0, f'w{t - 7}', s1), 'm')}")
    print("  in")


def aname(t):
    return ["sd", "sc", "sb", "sa"][t + 4] if t < 0 else f"a{t}"


def ename(t):
    return ["sh", "sg", "sf", "se"][t + 4] if t < 0 else f"e{t}"


for t in range(64):
    ap, bp, cp, dp = aname(t - 1), aname(t - 2), aname(t - 3), aname(t - 4)
    ep, fp, gp, hp = ename(t - 1), ename(t - 2), ename(t - 3), ename(t - 4)
    if t >= 16:
        emit_schedule(t)
    print(f"  (* round {t} *)")
    if t == 0:
        print(f"  let ed{t} = {dual(ep)} in")
        print(f"  let ad{t} = {dual(ap)} in")
    else:
        print(f"  let ed{t} = {or_(ep, shl(f'er{t - 1}', 32))} in")
        print(f"  let ad{t} = {or_(ap, shl(f'ar{t - 1}', 32))} in")
    ch = xor(gp, and_(ep, xor(fp, gp)))
    s1 = xor(xor(shr(f"ed{t}", 6), shr(f"ed{t}", 11)), shr(f"ed{t}", 25))
    print(f"  let t1_{t} =")
    print(f"    {add(hp, ch, f'0x{K[t]:08x}L', f'w{t}', s1)}")
    print("  in")
    s0 = shr(xor(xor(f"ad{t}", shr(f"ad{t}", 11)), shr(f"ad{t}", 20)), 2)
    maj = xor(and_(ap, xor(bp, cp)), and_(bp, cp))
    print(f"  let t2_{t} = {add(s0, maj)} in")
    print(f"  let er{t} = {add(dp, f't1_{t}')} in")
    print(f"  let e{t} = {and_(f'er{t}', 'm')} in")
    print(f"  let ar{t} = {add(f't1_{t}', f't2_{t}')} in")
    print(f"  let a{t} = {and_(f'ar{t}', 'm')} in")

names = [aname(63), aname(62), aname(61), aname(60),
         ename(63), ename(62), ename(61), ename(60)]
for i, nm in enumerate(names):
    sep = "" if i == 7 else ";"
    upd = and_(add(f"Int64.of_int (Array.unsafe_get h {i})", nm), "m")
    print(f"  Array.unsafe_set h {i} (Int64.to_int ({upd})){sep}")
