type t = {
  n : int;
  seed : string;
  sign_keys : Siphash.key array;
  (* Lazily derived per-pair state, so per-packet operations never
     re-run string formatting + FNV key expansion: *)
  pair_cache : (int, Siphash.key) Hashtbl.t;       (* lo * n + hi *)
  mac_cache : (int, Sha256.hmac_key) Hashtbl.t;    (* ipad/opad midstates *)
  monitor : Siphash.key;
}

type signature = int64

let create ?(seed = "detecting-malicious-routers") ~n () =
  if n <= 0 then invalid_arg "Keyring.create: n must be positive";
  { n;
    seed;
    sign_keys =
      Array.init n (fun id ->
          Siphash.key_of_string (Printf.sprintf "%s|sign|%d" seed id));
    pair_cache = Hashtbl.create 64;
    mac_cache = Hashtbl.create 64;
    monitor = Siphash.key_of_string (seed ^ "|monitor") }

let size t = t.n

let check_id t id name =
  if id < 0 || id >= t.n then
    invalid_arg (Printf.sprintf "Keyring.%s: router id %d outside [0,%d)" name id t.n)

let pairwise t a b =
  check_id t a "pairwise";
  check_id t b "pairwise";
  let lo = min a b and hi = max a b in
  let slot = (lo * t.n) + hi in
  match Hashtbl.find_opt t.pair_cache slot with
  | Some k -> k
  | None ->
      let k = Siphash.key_of_string (Printf.sprintf "%s|pair|%d|%d" t.seed lo hi) in
      Hashtbl.add t.pair_cache slot k;
      k

let monitoring_key t = t.monitor

let signing_key t id =
  check_id t id "signing_key";
  Array.unsafe_get t.sign_keys id

let sign t ~signer msg = Siphash.hash (signing_key t signer) msg
let verify t ~signer msg tag = Int64.equal (sign t ~signer msg) tag
let sign_words t ~signer words = Siphash.hash_int64s (signing_key t signer) words
let verify_words t ~signer words tag = Int64.equal (sign_words t ~signer words) tag

let mac_key t a b =
  check_id t a "mac";
  check_id t b "mac";
  let lo = min a b and hi = max a b in
  let slot = (lo * t.n) + hi in
  match Hashtbl.find_opt t.mac_cache slot with
  | Some hk -> hk
  | None ->
      let hk = Sha256.hmac_key ~key:(Printf.sprintf "%s|mac|%d|%d" t.seed lo hi) in
      Hashtbl.add t.mac_cache slot hk;
      hk

let mac t a b msg = Sha256.hmac_with (mac_key t a b) msg
let mac64 t a b msg = Sha256.hmac64 (mac_key t a b) msg

let verify_mac t a b msg tag = String.equal (mac t a b msg) tag

let forge_attempt = 0xdeadbeefdeadbeefL
