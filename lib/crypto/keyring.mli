(** Simulated key distribution (§2.1.5).

    The protocols assume "the administrative ability to assign and
    distribute shared keys or a public key infrastructure".  Inside the
    simulation boundary we model that infrastructure directly: a keyring
    deterministically derives (a) a pairwise symmetric key for every pair
    of routers and (b) a per-router signing key, and exposes sign/verify
    operations.  Unforgeability holds by construction because adversary
    code in this codebase can only produce signatures through [sign] with
    its own router id — the same abstract guarantee a real PKI provides
    to the protocol layer. *)

type t

type signature = private int64
(** An authentication tag binding a message to a signer id. *)

val create : ?seed:string -> n:int -> unit -> t
(** Keyring for routers with ids [0 .. n-1].  The [seed] makes key
    material deterministic for reproducible runs. *)

val size : t -> int
(** Number of routers the ring was created for. *)

val pairwise : t -> int -> int -> Siphash.key
(** Symmetric key shared by two routers; order-independent
    ([pairwise t a b = pairwise t b a]). Raises [Invalid_argument] on
    out-of-range ids.  Derived keys are cached, so repeated lookups on
    the packet path cost a hash-table probe, not key expansion. *)

val monitoring_key : t -> Siphash.key
(** A network-wide key for fingerprint computation where the dissertation
    uses a shared secret among the routers of a monitored region. *)

val sign : t -> signer:int -> string -> signature
(** Produce the signature of [signer] over a message. *)

val verify : t -> signer:int -> string -> signature -> bool
(** Check a signature against the claimed signer. *)

val sign_words : t -> signer:int -> int64 list -> signature
(** Like {!sign} but over a word list (packet summaries). *)

val verify_words : t -> signer:int -> int64 list -> signature -> bool

val mac : t -> int -> int -> string -> string
(** [mac t a b msg] is the 32-byte HMAC-SHA-256 tag over [msg] under the
    pairwise key of routers [a] and [b] (order-independent).  The
    ipad/opad midstates are expanded once per pair and cached, so the
    per-packet cost is one compression pass over the payload. *)

val mac64 : t -> int -> int -> string -> int64
(** First 8 bytes of {!mac} as a big-endian int64 — the truncated
    per-packet MAC form, computed without allocating the full tag. *)

val verify_mac : t -> int -> int -> string -> string -> bool
(** Check a {!mac} tag. *)

val forge_attempt : signature
(** A constant bogus tag, handy for tests exercising the reject path. *)
