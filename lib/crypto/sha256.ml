(* FIPS 180-4 SHA-256 on native 63-bit ints.

   The hot path of every traffic-validation protocol is "hash a packet",
   so this module is written for throughput: 32-bit words live in native
   [int]s (no boxed [Int32] arithmetic, which allocates on every add and
   rotate), block words are loaded eight bytes at a time with [Bytes.get_int64_be], and the
   streaming [init]/[update]/[final] interface hashes a message in place
   — the only copy ever made is the tail of the message into the 64-byte
   block buffer.  HMAC precomputes the ipad/opad midstates per key
   ({!hmac_key}) so a cached per-packet MAC costs one compression pass
   over the payload plus the fixed finalization blocks. *)

let mask32 = 0xffff_ffff

let iv =
  [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
     0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]

(* One compression pass over the 64 bytes at [b.(off .. off+63)],
   updating [h] in place.  Fully unrolled straight-line code generated
   by gen_sha256_compress.py — see that file for the rationale; in
   short, every let-bound Int64 here stays in an untagged register
   (the compiler's local unboxing), so this is plain 64-bit machine
   arithmetic with none of the tagged-[int] shift/mask overhead. *)
let compress h b off =
  let m = Int64.of_int (Sys.opaque_identity mask32) in
  let v0 = Bytes.get_int64_be b (off + 0) in
  let w0 = Int64.shift_right_logical v0 32 in
  let w1 = Int64.logand v0 m in
  let v1 = Bytes.get_int64_be b (off + 8) in
  let w2 = Int64.shift_right_logical v1 32 in
  let w3 = Int64.logand v1 m in
  let v2 = Bytes.get_int64_be b (off + 16) in
  let w4 = Int64.shift_right_logical v2 32 in
  let w5 = Int64.logand v2 m in
  let v3 = Bytes.get_int64_be b (off + 24) in
  let w6 = Int64.shift_right_logical v3 32 in
  let w7 = Int64.logand v3 m in
  let v4 = Bytes.get_int64_be b (off + 32) in
  let w8 = Int64.shift_right_logical v4 32 in
  let w9 = Int64.logand v4 m in
  let v5 = Bytes.get_int64_be b (off + 40) in
  let w10 = Int64.shift_right_logical v5 32 in
  let w11 = Int64.logand v5 m in
  let v6 = Bytes.get_int64_be b (off + 48) in
  let w12 = Int64.shift_right_logical v6 32 in
  let w13 = Int64.logand v6 m in
  let v7 = Bytes.get_int64_be b (off + 56) in
  let w14 = Int64.shift_right_logical v7 32 in
  let w15 = Int64.logand v7 m in
  (* Message-schedule words w16..w63 are emitted interleaved, each
     just before the round that first consumes it; each word's
     dual-lane form d_i is built once and shared by both sigmas that
     read it.  64 rounds with rotated naming: at round t the working
     state is a = A.(t-1) .. d = A.(t-4), e = E.(t-1) .. h = E.(t-4). *)
  let sa = Int64.of_int (Array.unsafe_get h 0) in
  let sb = Int64.of_int (Array.unsafe_get h 1) in
  let sc = Int64.of_int (Array.unsafe_get h 2) in
  let sd = Int64.of_int (Array.unsafe_get h 3) in
  let se = Int64.of_int (Array.unsafe_get h 4) in
  let sf = Int64.of_int (Array.unsafe_get h 5) in
  let sg = Int64.of_int (Array.unsafe_get h 6) in
  let sh = Int64.of_int (Array.unsafe_get h 7) in
  (* round 0 *)
  let ed0 = Int64.logor se (Int64.shift_left se 32) in
  let ad0 = Int64.logor sa (Int64.shift_left sa 32) in
  let t1_0 =
    Int64.add (Int64.add (Int64.add (Int64.add sh (Int64.logxor sg (Int64.logand se (Int64.logxor sf sg)))) 0x428a2f98L) w0) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed0 6) (Int64.shift_right_logical ed0 11)) (Int64.shift_right_logical ed0 25))
  in
  let t2_0 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad0 (Int64.shift_right_logical ad0 11)) (Int64.shift_right_logical ad0 20)) 2) (Int64.logxor (Int64.logand sa (Int64.logxor sb sc)) (Int64.logand sb sc)) in
  let er0 = Int64.add sd t1_0 in
  let e0 = Int64.logand er0 m in
  let ar0 = Int64.add t1_0 t2_0 in
  let a0 = Int64.logand ar0 m in
  (* round 1 *)
  let ed1 = Int64.logor e0 (Int64.shift_left er0 32) in
  let ad1 = Int64.logor a0 (Int64.shift_left ar0 32) in
  let t1_1 =
    Int64.add (Int64.add (Int64.add (Int64.add sg (Int64.logxor sf (Int64.logand e0 (Int64.logxor se sf)))) 0x71374491L) w1) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed1 6) (Int64.shift_right_logical ed1 11)) (Int64.shift_right_logical ed1 25))
  in
  let t2_1 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad1 (Int64.shift_right_logical ad1 11)) (Int64.shift_right_logical ad1 20)) 2) (Int64.logxor (Int64.logand a0 (Int64.logxor sa sb)) (Int64.logand sa sb)) in
  let er1 = Int64.add sc t1_1 in
  let e1 = Int64.logand er1 m in
  let ar1 = Int64.add t1_1 t2_1 in
  let a1 = Int64.logand ar1 m in
  (* round 2 *)
  let ed2 = Int64.logor e1 (Int64.shift_left er1 32) in
  let ad2 = Int64.logor a1 (Int64.shift_left ar1 32) in
  let t1_2 =
    Int64.add (Int64.add (Int64.add (Int64.add sf (Int64.logxor se (Int64.logand e1 (Int64.logxor e0 se)))) 0xb5c0fbcfL) w2) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed2 6) (Int64.shift_right_logical ed2 11)) (Int64.shift_right_logical ed2 25))
  in
  let t2_2 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad2 (Int64.shift_right_logical ad2 11)) (Int64.shift_right_logical ad2 20)) 2) (Int64.logxor (Int64.logand a1 (Int64.logxor a0 sa)) (Int64.logand a0 sa)) in
  let er2 = Int64.add sb t1_2 in
  let e2 = Int64.logand er2 m in
  let ar2 = Int64.add t1_2 t2_2 in
  let a2 = Int64.logand ar2 m in
  (* round 3 *)
  let ed3 = Int64.logor e2 (Int64.shift_left er2 32) in
  let ad3 = Int64.logor a2 (Int64.shift_left ar2 32) in
  let t1_3 =
    Int64.add (Int64.add (Int64.add (Int64.add se (Int64.logxor e0 (Int64.logand e2 (Int64.logxor e1 e0)))) 0xe9b5dba5L) w3) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed3 6) (Int64.shift_right_logical ed3 11)) (Int64.shift_right_logical ed3 25))
  in
  let t2_3 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad3 (Int64.shift_right_logical ad3 11)) (Int64.shift_right_logical ad3 20)) 2) (Int64.logxor (Int64.logand a2 (Int64.logxor a1 a0)) (Int64.logand a1 a0)) in
  let er3 = Int64.add sa t1_3 in
  let e3 = Int64.logand er3 m in
  let ar3 = Int64.add t1_3 t2_3 in
  let a3 = Int64.logand ar3 m in
  (* round 4 *)
  let ed4 = Int64.logor e3 (Int64.shift_left er3 32) in
  let ad4 = Int64.logor a3 (Int64.shift_left ar3 32) in
  let t1_4 =
    Int64.add (Int64.add (Int64.add (Int64.add e0 (Int64.logxor e1 (Int64.logand e3 (Int64.logxor e2 e1)))) 0x3956c25bL) w4) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed4 6) (Int64.shift_right_logical ed4 11)) (Int64.shift_right_logical ed4 25))
  in
  let t2_4 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad4 (Int64.shift_right_logical ad4 11)) (Int64.shift_right_logical ad4 20)) 2) (Int64.logxor (Int64.logand a3 (Int64.logxor a2 a1)) (Int64.logand a2 a1)) in
  let er4 = Int64.add a0 t1_4 in
  let e4 = Int64.logand er4 m in
  let ar4 = Int64.add t1_4 t2_4 in
  let a4 = Int64.logand ar4 m in
  (* round 5 *)
  let ed5 = Int64.logor e4 (Int64.shift_left er4 32) in
  let ad5 = Int64.logor a4 (Int64.shift_left ar4 32) in
  let t1_5 =
    Int64.add (Int64.add (Int64.add (Int64.add e1 (Int64.logxor e2 (Int64.logand e4 (Int64.logxor e3 e2)))) 0x59f111f1L) w5) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed5 6) (Int64.shift_right_logical ed5 11)) (Int64.shift_right_logical ed5 25))
  in
  let t2_5 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad5 (Int64.shift_right_logical ad5 11)) (Int64.shift_right_logical ad5 20)) 2) (Int64.logxor (Int64.logand a4 (Int64.logxor a3 a2)) (Int64.logand a3 a2)) in
  let er5 = Int64.add a1 t1_5 in
  let e5 = Int64.logand er5 m in
  let ar5 = Int64.add t1_5 t2_5 in
  let a5 = Int64.logand ar5 m in
  (* round 6 *)
  let ed6 = Int64.logor e5 (Int64.shift_left er5 32) in
  let ad6 = Int64.logor a5 (Int64.shift_left ar5 32) in
  let t1_6 =
    Int64.add (Int64.add (Int64.add (Int64.add e2 (Int64.logxor e3 (Int64.logand e5 (Int64.logxor e4 e3)))) 0x923f82a4L) w6) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed6 6) (Int64.shift_right_logical ed6 11)) (Int64.shift_right_logical ed6 25))
  in
  let t2_6 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad6 (Int64.shift_right_logical ad6 11)) (Int64.shift_right_logical ad6 20)) 2) (Int64.logxor (Int64.logand a5 (Int64.logxor a4 a3)) (Int64.logand a4 a3)) in
  let er6 = Int64.add a2 t1_6 in
  let e6 = Int64.logand er6 m in
  let ar6 = Int64.add t1_6 t2_6 in
  let a6 = Int64.logand ar6 m in
  (* round 7 *)
  let ed7 = Int64.logor e6 (Int64.shift_left er6 32) in
  let ad7 = Int64.logor a6 (Int64.shift_left ar6 32) in
  let t1_7 =
    Int64.add (Int64.add (Int64.add (Int64.add e3 (Int64.logxor e4 (Int64.logand e6 (Int64.logxor e5 e4)))) 0xab1c5ed5L) w7) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed7 6) (Int64.shift_right_logical ed7 11)) (Int64.shift_right_logical ed7 25))
  in
  let t2_7 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad7 (Int64.shift_right_logical ad7 11)) (Int64.shift_right_logical ad7 20)) 2) (Int64.logxor (Int64.logand a6 (Int64.logxor a5 a4)) (Int64.logand a5 a4)) in
  let er7 = Int64.add a3 t1_7 in
  let e7 = Int64.logand er7 m in
  let ar7 = Int64.add t1_7 t2_7 in
  let a7 = Int64.logand ar7 m in
  (* round 8 *)
  let ed8 = Int64.logor e7 (Int64.shift_left er7 32) in
  let ad8 = Int64.logor a7 (Int64.shift_left ar7 32) in
  let t1_8 =
    Int64.add (Int64.add (Int64.add (Int64.add e4 (Int64.logxor e5 (Int64.logand e7 (Int64.logxor e6 e5)))) 0xd807aa98L) w8) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed8 6) (Int64.shift_right_logical ed8 11)) (Int64.shift_right_logical ed8 25))
  in
  let t2_8 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad8 (Int64.shift_right_logical ad8 11)) (Int64.shift_right_logical ad8 20)) 2) (Int64.logxor (Int64.logand a7 (Int64.logxor a6 a5)) (Int64.logand a6 a5)) in
  let er8 = Int64.add a4 t1_8 in
  let e8 = Int64.logand er8 m in
  let ar8 = Int64.add t1_8 t2_8 in
  let a8 = Int64.logand ar8 m in
  (* round 9 *)
  let ed9 = Int64.logor e8 (Int64.shift_left er8 32) in
  let ad9 = Int64.logor a8 (Int64.shift_left ar8 32) in
  let t1_9 =
    Int64.add (Int64.add (Int64.add (Int64.add e5 (Int64.logxor e6 (Int64.logand e8 (Int64.logxor e7 e6)))) 0x12835b01L) w9) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed9 6) (Int64.shift_right_logical ed9 11)) (Int64.shift_right_logical ed9 25))
  in
  let t2_9 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad9 (Int64.shift_right_logical ad9 11)) (Int64.shift_right_logical ad9 20)) 2) (Int64.logxor (Int64.logand a8 (Int64.logxor a7 a6)) (Int64.logand a7 a6)) in
  let er9 = Int64.add a5 t1_9 in
  let e9 = Int64.logand er9 m in
  let ar9 = Int64.add t1_9 t2_9 in
  let a9 = Int64.logand ar9 m in
  (* round 10 *)
  let ed10 = Int64.logor e9 (Int64.shift_left er9 32) in
  let ad10 = Int64.logor a9 (Int64.shift_left ar9 32) in
  let t1_10 =
    Int64.add (Int64.add (Int64.add (Int64.add e6 (Int64.logxor e7 (Int64.logand e9 (Int64.logxor e8 e7)))) 0x243185beL) w10) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed10 6) (Int64.shift_right_logical ed10 11)) (Int64.shift_right_logical ed10 25))
  in
  let t2_10 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad10 (Int64.shift_right_logical ad10 11)) (Int64.shift_right_logical ad10 20)) 2) (Int64.logxor (Int64.logand a9 (Int64.logxor a8 a7)) (Int64.logand a8 a7)) in
  let er10 = Int64.add a6 t1_10 in
  let e10 = Int64.logand er10 m in
  let ar10 = Int64.add t1_10 t2_10 in
  let a10 = Int64.logand ar10 m in
  (* round 11 *)
  let ed11 = Int64.logor e10 (Int64.shift_left er10 32) in
  let ad11 = Int64.logor a10 (Int64.shift_left ar10 32) in
  let t1_11 =
    Int64.add (Int64.add (Int64.add (Int64.add e7 (Int64.logxor e8 (Int64.logand e10 (Int64.logxor e9 e8)))) 0x550c7dc3L) w11) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed11 6) (Int64.shift_right_logical ed11 11)) (Int64.shift_right_logical ed11 25))
  in
  let t2_11 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad11 (Int64.shift_right_logical ad11 11)) (Int64.shift_right_logical ad11 20)) 2) (Int64.logxor (Int64.logand a10 (Int64.logxor a9 a8)) (Int64.logand a9 a8)) in
  let er11 = Int64.add a7 t1_11 in
  let e11 = Int64.logand er11 m in
  let ar11 = Int64.add t1_11 t2_11 in
  let a11 = Int64.logand ar11 m in
  (* round 12 *)
  let ed12 = Int64.logor e11 (Int64.shift_left er11 32) in
  let ad12 = Int64.logor a11 (Int64.shift_left ar11 32) in
  let t1_12 =
    Int64.add (Int64.add (Int64.add (Int64.add e8 (Int64.logxor e9 (Int64.logand e11 (Int64.logxor e10 e9)))) 0x72be5d74L) w12) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed12 6) (Int64.shift_right_logical ed12 11)) (Int64.shift_right_logical ed12 25))
  in
  let t2_12 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad12 (Int64.shift_right_logical ad12 11)) (Int64.shift_right_logical ad12 20)) 2) (Int64.logxor (Int64.logand a11 (Int64.logxor a10 a9)) (Int64.logand a10 a9)) in
  let er12 = Int64.add a8 t1_12 in
  let e12 = Int64.logand er12 m in
  let ar12 = Int64.add t1_12 t2_12 in
  let a12 = Int64.logand ar12 m in
  (* round 13 *)
  let ed13 = Int64.logor e12 (Int64.shift_left er12 32) in
  let ad13 = Int64.logor a12 (Int64.shift_left ar12 32) in
  let t1_13 =
    Int64.add (Int64.add (Int64.add (Int64.add e9 (Int64.logxor e10 (Int64.logand e12 (Int64.logxor e11 e10)))) 0x80deb1feL) w13) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed13 6) (Int64.shift_right_logical ed13 11)) (Int64.shift_right_logical ed13 25))
  in
  let t2_13 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad13 (Int64.shift_right_logical ad13 11)) (Int64.shift_right_logical ad13 20)) 2) (Int64.logxor (Int64.logand a12 (Int64.logxor a11 a10)) (Int64.logand a11 a10)) in
  let er13 = Int64.add a9 t1_13 in
  let e13 = Int64.logand er13 m in
  let ar13 = Int64.add t1_13 t2_13 in
  let a13 = Int64.logand ar13 m in
  (* round 14 *)
  let ed14 = Int64.logor e13 (Int64.shift_left er13 32) in
  let ad14 = Int64.logor a13 (Int64.shift_left ar13 32) in
  let t1_14 =
    Int64.add (Int64.add (Int64.add (Int64.add e10 (Int64.logxor e11 (Int64.logand e13 (Int64.logxor e12 e11)))) 0x9bdc06a7L) w14) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed14 6) (Int64.shift_right_logical ed14 11)) (Int64.shift_right_logical ed14 25))
  in
  let t2_14 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad14 (Int64.shift_right_logical ad14 11)) (Int64.shift_right_logical ad14 20)) 2) (Int64.logxor (Int64.logand a13 (Int64.logxor a12 a11)) (Int64.logand a12 a11)) in
  let er14 = Int64.add a10 t1_14 in
  let e14 = Int64.logand er14 m in
  let ar14 = Int64.add t1_14 t2_14 in
  let a14 = Int64.logand ar14 m in
  (* round 15 *)
  let ed15 = Int64.logor e14 (Int64.shift_left er14 32) in
  let ad15 = Int64.logor a14 (Int64.shift_left ar14 32) in
  let t1_15 =
    Int64.add (Int64.add (Int64.add (Int64.add e11 (Int64.logxor e12 (Int64.logand e14 (Int64.logxor e13 e12)))) 0xc19bf174L) w15) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed15 6) (Int64.shift_right_logical ed15 11)) (Int64.shift_right_logical ed15 25))
  in
  let t2_15 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad15 (Int64.shift_right_logical ad15 11)) (Int64.shift_right_logical ad15 20)) 2) (Int64.logxor (Int64.logand a14 (Int64.logxor a13 a12)) (Int64.logand a13 a12)) in
  let er15 = Int64.add a11 t1_15 in
  let e15 = Int64.logand er15 m in
  let ar15 = Int64.add t1_15 t2_15 in
  let a15 = Int64.logand ar15 m in
  let d1 = Int64.logor w1 (Int64.shift_left w1 32) in
  let d14 = Int64.logor w14 (Int64.shift_left w14 32) in
  let w16 =
    Int64.logand (Int64.add (Int64.add (Int64.add w0 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d1 (Int64.shift_right_logical d1 11)) 7) (Int64.shift_right_logical w1 3))) w9) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d14 (Int64.shift_right_logical d14 2)) 17) (Int64.shift_right_logical w14 10))) m
  in
  (* round 16 *)
  let ed16 = Int64.logor e15 (Int64.shift_left er15 32) in
  let ad16 = Int64.logor a15 (Int64.shift_left ar15 32) in
  let t1_16 =
    Int64.add (Int64.add (Int64.add (Int64.add e12 (Int64.logxor e13 (Int64.logand e15 (Int64.logxor e14 e13)))) 0xe49b69c1L) w16) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed16 6) (Int64.shift_right_logical ed16 11)) (Int64.shift_right_logical ed16 25))
  in
  let t2_16 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad16 (Int64.shift_right_logical ad16 11)) (Int64.shift_right_logical ad16 20)) 2) (Int64.logxor (Int64.logand a15 (Int64.logxor a14 a13)) (Int64.logand a14 a13)) in
  let er16 = Int64.add a12 t1_16 in
  let e16 = Int64.logand er16 m in
  let ar16 = Int64.add t1_16 t2_16 in
  let a16 = Int64.logand ar16 m in
  let d2 = Int64.logor w2 (Int64.shift_left w2 32) in
  let d15 = Int64.logor w15 (Int64.shift_left w15 32) in
  let w17 =
    Int64.logand (Int64.add (Int64.add (Int64.add w1 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d2 (Int64.shift_right_logical d2 11)) 7) (Int64.shift_right_logical w2 3))) w10) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d15 (Int64.shift_right_logical d15 2)) 17) (Int64.shift_right_logical w15 10))) m
  in
  (* round 17 *)
  let ed17 = Int64.logor e16 (Int64.shift_left er16 32) in
  let ad17 = Int64.logor a16 (Int64.shift_left ar16 32) in
  let t1_17 =
    Int64.add (Int64.add (Int64.add (Int64.add e13 (Int64.logxor e14 (Int64.logand e16 (Int64.logxor e15 e14)))) 0xefbe4786L) w17) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed17 6) (Int64.shift_right_logical ed17 11)) (Int64.shift_right_logical ed17 25))
  in
  let t2_17 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad17 (Int64.shift_right_logical ad17 11)) (Int64.shift_right_logical ad17 20)) 2) (Int64.logxor (Int64.logand a16 (Int64.logxor a15 a14)) (Int64.logand a15 a14)) in
  let er17 = Int64.add a13 t1_17 in
  let e17 = Int64.logand er17 m in
  let ar17 = Int64.add t1_17 t2_17 in
  let a17 = Int64.logand ar17 m in
  let d3 = Int64.logor w3 (Int64.shift_left w3 32) in
  let d16 = Int64.logor w16 (Int64.shift_left w16 32) in
  let w18 =
    Int64.logand (Int64.add (Int64.add (Int64.add w2 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d3 (Int64.shift_right_logical d3 11)) 7) (Int64.shift_right_logical w3 3))) w11) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d16 (Int64.shift_right_logical d16 2)) 17) (Int64.shift_right_logical w16 10))) m
  in
  (* round 18 *)
  let ed18 = Int64.logor e17 (Int64.shift_left er17 32) in
  let ad18 = Int64.logor a17 (Int64.shift_left ar17 32) in
  let t1_18 =
    Int64.add (Int64.add (Int64.add (Int64.add e14 (Int64.logxor e15 (Int64.logand e17 (Int64.logxor e16 e15)))) 0x0fc19dc6L) w18) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed18 6) (Int64.shift_right_logical ed18 11)) (Int64.shift_right_logical ed18 25))
  in
  let t2_18 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad18 (Int64.shift_right_logical ad18 11)) (Int64.shift_right_logical ad18 20)) 2) (Int64.logxor (Int64.logand a17 (Int64.logxor a16 a15)) (Int64.logand a16 a15)) in
  let er18 = Int64.add a14 t1_18 in
  let e18 = Int64.logand er18 m in
  let ar18 = Int64.add t1_18 t2_18 in
  let a18 = Int64.logand ar18 m in
  let d4 = Int64.logor w4 (Int64.shift_left w4 32) in
  let d17 = Int64.logor w17 (Int64.shift_left w17 32) in
  let w19 =
    Int64.logand (Int64.add (Int64.add (Int64.add w3 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d4 (Int64.shift_right_logical d4 11)) 7) (Int64.shift_right_logical w4 3))) w12) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d17 (Int64.shift_right_logical d17 2)) 17) (Int64.shift_right_logical w17 10))) m
  in
  (* round 19 *)
  let ed19 = Int64.logor e18 (Int64.shift_left er18 32) in
  let ad19 = Int64.logor a18 (Int64.shift_left ar18 32) in
  let t1_19 =
    Int64.add (Int64.add (Int64.add (Int64.add e15 (Int64.logxor e16 (Int64.logand e18 (Int64.logxor e17 e16)))) 0x240ca1ccL) w19) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed19 6) (Int64.shift_right_logical ed19 11)) (Int64.shift_right_logical ed19 25))
  in
  let t2_19 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad19 (Int64.shift_right_logical ad19 11)) (Int64.shift_right_logical ad19 20)) 2) (Int64.logxor (Int64.logand a18 (Int64.logxor a17 a16)) (Int64.logand a17 a16)) in
  let er19 = Int64.add a15 t1_19 in
  let e19 = Int64.logand er19 m in
  let ar19 = Int64.add t1_19 t2_19 in
  let a19 = Int64.logand ar19 m in
  let d5 = Int64.logor w5 (Int64.shift_left w5 32) in
  let d18 = Int64.logor w18 (Int64.shift_left w18 32) in
  let w20 =
    Int64.logand (Int64.add (Int64.add (Int64.add w4 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d5 (Int64.shift_right_logical d5 11)) 7) (Int64.shift_right_logical w5 3))) w13) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d18 (Int64.shift_right_logical d18 2)) 17) (Int64.shift_right_logical w18 10))) m
  in
  (* round 20 *)
  let ed20 = Int64.logor e19 (Int64.shift_left er19 32) in
  let ad20 = Int64.logor a19 (Int64.shift_left ar19 32) in
  let t1_20 =
    Int64.add (Int64.add (Int64.add (Int64.add e16 (Int64.logxor e17 (Int64.logand e19 (Int64.logxor e18 e17)))) 0x2de92c6fL) w20) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed20 6) (Int64.shift_right_logical ed20 11)) (Int64.shift_right_logical ed20 25))
  in
  let t2_20 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad20 (Int64.shift_right_logical ad20 11)) (Int64.shift_right_logical ad20 20)) 2) (Int64.logxor (Int64.logand a19 (Int64.logxor a18 a17)) (Int64.logand a18 a17)) in
  let er20 = Int64.add a16 t1_20 in
  let e20 = Int64.logand er20 m in
  let ar20 = Int64.add t1_20 t2_20 in
  let a20 = Int64.logand ar20 m in
  let d6 = Int64.logor w6 (Int64.shift_left w6 32) in
  let d19 = Int64.logor w19 (Int64.shift_left w19 32) in
  let w21 =
    Int64.logand (Int64.add (Int64.add (Int64.add w5 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d6 (Int64.shift_right_logical d6 11)) 7) (Int64.shift_right_logical w6 3))) w14) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d19 (Int64.shift_right_logical d19 2)) 17) (Int64.shift_right_logical w19 10))) m
  in
  (* round 21 *)
  let ed21 = Int64.logor e20 (Int64.shift_left er20 32) in
  let ad21 = Int64.logor a20 (Int64.shift_left ar20 32) in
  let t1_21 =
    Int64.add (Int64.add (Int64.add (Int64.add e17 (Int64.logxor e18 (Int64.logand e20 (Int64.logxor e19 e18)))) 0x4a7484aaL) w21) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed21 6) (Int64.shift_right_logical ed21 11)) (Int64.shift_right_logical ed21 25))
  in
  let t2_21 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad21 (Int64.shift_right_logical ad21 11)) (Int64.shift_right_logical ad21 20)) 2) (Int64.logxor (Int64.logand a20 (Int64.logxor a19 a18)) (Int64.logand a19 a18)) in
  let er21 = Int64.add a17 t1_21 in
  let e21 = Int64.logand er21 m in
  let ar21 = Int64.add t1_21 t2_21 in
  let a21 = Int64.logand ar21 m in
  let d7 = Int64.logor w7 (Int64.shift_left w7 32) in
  let d20 = Int64.logor w20 (Int64.shift_left w20 32) in
  let w22 =
    Int64.logand (Int64.add (Int64.add (Int64.add w6 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d7 (Int64.shift_right_logical d7 11)) 7) (Int64.shift_right_logical w7 3))) w15) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d20 (Int64.shift_right_logical d20 2)) 17) (Int64.shift_right_logical w20 10))) m
  in
  (* round 22 *)
  let ed22 = Int64.logor e21 (Int64.shift_left er21 32) in
  let ad22 = Int64.logor a21 (Int64.shift_left ar21 32) in
  let t1_22 =
    Int64.add (Int64.add (Int64.add (Int64.add e18 (Int64.logxor e19 (Int64.logand e21 (Int64.logxor e20 e19)))) 0x5cb0a9dcL) w22) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed22 6) (Int64.shift_right_logical ed22 11)) (Int64.shift_right_logical ed22 25))
  in
  let t2_22 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad22 (Int64.shift_right_logical ad22 11)) (Int64.shift_right_logical ad22 20)) 2) (Int64.logxor (Int64.logand a21 (Int64.logxor a20 a19)) (Int64.logand a20 a19)) in
  let er22 = Int64.add a18 t1_22 in
  let e22 = Int64.logand er22 m in
  let ar22 = Int64.add t1_22 t2_22 in
  let a22 = Int64.logand ar22 m in
  let d8 = Int64.logor w8 (Int64.shift_left w8 32) in
  let d21 = Int64.logor w21 (Int64.shift_left w21 32) in
  let w23 =
    Int64.logand (Int64.add (Int64.add (Int64.add w7 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d8 (Int64.shift_right_logical d8 11)) 7) (Int64.shift_right_logical w8 3))) w16) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d21 (Int64.shift_right_logical d21 2)) 17) (Int64.shift_right_logical w21 10))) m
  in
  (* round 23 *)
  let ed23 = Int64.logor e22 (Int64.shift_left er22 32) in
  let ad23 = Int64.logor a22 (Int64.shift_left ar22 32) in
  let t1_23 =
    Int64.add (Int64.add (Int64.add (Int64.add e19 (Int64.logxor e20 (Int64.logand e22 (Int64.logxor e21 e20)))) 0x76f988daL) w23) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed23 6) (Int64.shift_right_logical ed23 11)) (Int64.shift_right_logical ed23 25))
  in
  let t2_23 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad23 (Int64.shift_right_logical ad23 11)) (Int64.shift_right_logical ad23 20)) 2) (Int64.logxor (Int64.logand a22 (Int64.logxor a21 a20)) (Int64.logand a21 a20)) in
  let er23 = Int64.add a19 t1_23 in
  let e23 = Int64.logand er23 m in
  let ar23 = Int64.add t1_23 t2_23 in
  let a23 = Int64.logand ar23 m in
  let d9 = Int64.logor w9 (Int64.shift_left w9 32) in
  let d22 = Int64.logor w22 (Int64.shift_left w22 32) in
  let w24 =
    Int64.logand (Int64.add (Int64.add (Int64.add w8 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d9 (Int64.shift_right_logical d9 11)) 7) (Int64.shift_right_logical w9 3))) w17) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d22 (Int64.shift_right_logical d22 2)) 17) (Int64.shift_right_logical w22 10))) m
  in
  (* round 24 *)
  let ed24 = Int64.logor e23 (Int64.shift_left er23 32) in
  let ad24 = Int64.logor a23 (Int64.shift_left ar23 32) in
  let t1_24 =
    Int64.add (Int64.add (Int64.add (Int64.add e20 (Int64.logxor e21 (Int64.logand e23 (Int64.logxor e22 e21)))) 0x983e5152L) w24) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed24 6) (Int64.shift_right_logical ed24 11)) (Int64.shift_right_logical ed24 25))
  in
  let t2_24 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad24 (Int64.shift_right_logical ad24 11)) (Int64.shift_right_logical ad24 20)) 2) (Int64.logxor (Int64.logand a23 (Int64.logxor a22 a21)) (Int64.logand a22 a21)) in
  let er24 = Int64.add a20 t1_24 in
  let e24 = Int64.logand er24 m in
  let ar24 = Int64.add t1_24 t2_24 in
  let a24 = Int64.logand ar24 m in
  let d10 = Int64.logor w10 (Int64.shift_left w10 32) in
  let d23 = Int64.logor w23 (Int64.shift_left w23 32) in
  let w25 =
    Int64.logand (Int64.add (Int64.add (Int64.add w9 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d10 (Int64.shift_right_logical d10 11)) 7) (Int64.shift_right_logical w10 3))) w18) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d23 (Int64.shift_right_logical d23 2)) 17) (Int64.shift_right_logical w23 10))) m
  in
  (* round 25 *)
  let ed25 = Int64.logor e24 (Int64.shift_left er24 32) in
  let ad25 = Int64.logor a24 (Int64.shift_left ar24 32) in
  let t1_25 =
    Int64.add (Int64.add (Int64.add (Int64.add e21 (Int64.logxor e22 (Int64.logand e24 (Int64.logxor e23 e22)))) 0xa831c66dL) w25) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed25 6) (Int64.shift_right_logical ed25 11)) (Int64.shift_right_logical ed25 25))
  in
  let t2_25 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad25 (Int64.shift_right_logical ad25 11)) (Int64.shift_right_logical ad25 20)) 2) (Int64.logxor (Int64.logand a24 (Int64.logxor a23 a22)) (Int64.logand a23 a22)) in
  let er25 = Int64.add a21 t1_25 in
  let e25 = Int64.logand er25 m in
  let ar25 = Int64.add t1_25 t2_25 in
  let a25 = Int64.logand ar25 m in
  let d11 = Int64.logor w11 (Int64.shift_left w11 32) in
  let d24 = Int64.logor w24 (Int64.shift_left w24 32) in
  let w26 =
    Int64.logand (Int64.add (Int64.add (Int64.add w10 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d11 (Int64.shift_right_logical d11 11)) 7) (Int64.shift_right_logical w11 3))) w19) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d24 (Int64.shift_right_logical d24 2)) 17) (Int64.shift_right_logical w24 10))) m
  in
  (* round 26 *)
  let ed26 = Int64.logor e25 (Int64.shift_left er25 32) in
  let ad26 = Int64.logor a25 (Int64.shift_left ar25 32) in
  let t1_26 =
    Int64.add (Int64.add (Int64.add (Int64.add e22 (Int64.logxor e23 (Int64.logand e25 (Int64.logxor e24 e23)))) 0xb00327c8L) w26) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed26 6) (Int64.shift_right_logical ed26 11)) (Int64.shift_right_logical ed26 25))
  in
  let t2_26 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad26 (Int64.shift_right_logical ad26 11)) (Int64.shift_right_logical ad26 20)) 2) (Int64.logxor (Int64.logand a25 (Int64.logxor a24 a23)) (Int64.logand a24 a23)) in
  let er26 = Int64.add a22 t1_26 in
  let e26 = Int64.logand er26 m in
  let ar26 = Int64.add t1_26 t2_26 in
  let a26 = Int64.logand ar26 m in
  let d12 = Int64.logor w12 (Int64.shift_left w12 32) in
  let d25 = Int64.logor w25 (Int64.shift_left w25 32) in
  let w27 =
    Int64.logand (Int64.add (Int64.add (Int64.add w11 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d12 (Int64.shift_right_logical d12 11)) 7) (Int64.shift_right_logical w12 3))) w20) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d25 (Int64.shift_right_logical d25 2)) 17) (Int64.shift_right_logical w25 10))) m
  in
  (* round 27 *)
  let ed27 = Int64.logor e26 (Int64.shift_left er26 32) in
  let ad27 = Int64.logor a26 (Int64.shift_left ar26 32) in
  let t1_27 =
    Int64.add (Int64.add (Int64.add (Int64.add e23 (Int64.logxor e24 (Int64.logand e26 (Int64.logxor e25 e24)))) 0xbf597fc7L) w27) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed27 6) (Int64.shift_right_logical ed27 11)) (Int64.shift_right_logical ed27 25))
  in
  let t2_27 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad27 (Int64.shift_right_logical ad27 11)) (Int64.shift_right_logical ad27 20)) 2) (Int64.logxor (Int64.logand a26 (Int64.logxor a25 a24)) (Int64.logand a25 a24)) in
  let er27 = Int64.add a23 t1_27 in
  let e27 = Int64.logand er27 m in
  let ar27 = Int64.add t1_27 t2_27 in
  let a27 = Int64.logand ar27 m in
  let d13 = Int64.logor w13 (Int64.shift_left w13 32) in
  let d26 = Int64.logor w26 (Int64.shift_left w26 32) in
  let w28 =
    Int64.logand (Int64.add (Int64.add (Int64.add w12 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d13 (Int64.shift_right_logical d13 11)) 7) (Int64.shift_right_logical w13 3))) w21) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d26 (Int64.shift_right_logical d26 2)) 17) (Int64.shift_right_logical w26 10))) m
  in
  (* round 28 *)
  let ed28 = Int64.logor e27 (Int64.shift_left er27 32) in
  let ad28 = Int64.logor a27 (Int64.shift_left ar27 32) in
  let t1_28 =
    Int64.add (Int64.add (Int64.add (Int64.add e24 (Int64.logxor e25 (Int64.logand e27 (Int64.logxor e26 e25)))) 0xc6e00bf3L) w28) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed28 6) (Int64.shift_right_logical ed28 11)) (Int64.shift_right_logical ed28 25))
  in
  let t2_28 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad28 (Int64.shift_right_logical ad28 11)) (Int64.shift_right_logical ad28 20)) 2) (Int64.logxor (Int64.logand a27 (Int64.logxor a26 a25)) (Int64.logand a26 a25)) in
  let er28 = Int64.add a24 t1_28 in
  let e28 = Int64.logand er28 m in
  let ar28 = Int64.add t1_28 t2_28 in
  let a28 = Int64.logand ar28 m in
  let d27 = Int64.logor w27 (Int64.shift_left w27 32) in
  let w29 =
    Int64.logand (Int64.add (Int64.add (Int64.add w13 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d14 (Int64.shift_right_logical d14 11)) 7) (Int64.shift_right_logical w14 3))) w22) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d27 (Int64.shift_right_logical d27 2)) 17) (Int64.shift_right_logical w27 10))) m
  in
  (* round 29 *)
  let ed29 = Int64.logor e28 (Int64.shift_left er28 32) in
  let ad29 = Int64.logor a28 (Int64.shift_left ar28 32) in
  let t1_29 =
    Int64.add (Int64.add (Int64.add (Int64.add e25 (Int64.logxor e26 (Int64.logand e28 (Int64.logxor e27 e26)))) 0xd5a79147L) w29) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed29 6) (Int64.shift_right_logical ed29 11)) (Int64.shift_right_logical ed29 25))
  in
  let t2_29 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad29 (Int64.shift_right_logical ad29 11)) (Int64.shift_right_logical ad29 20)) 2) (Int64.logxor (Int64.logand a28 (Int64.logxor a27 a26)) (Int64.logand a27 a26)) in
  let er29 = Int64.add a25 t1_29 in
  let e29 = Int64.logand er29 m in
  let ar29 = Int64.add t1_29 t2_29 in
  let a29 = Int64.logand ar29 m in
  let d28 = Int64.logor w28 (Int64.shift_left w28 32) in
  let w30 =
    Int64.logand (Int64.add (Int64.add (Int64.add w14 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d15 (Int64.shift_right_logical d15 11)) 7) (Int64.shift_right_logical w15 3))) w23) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d28 (Int64.shift_right_logical d28 2)) 17) (Int64.shift_right_logical w28 10))) m
  in
  (* round 30 *)
  let ed30 = Int64.logor e29 (Int64.shift_left er29 32) in
  let ad30 = Int64.logor a29 (Int64.shift_left ar29 32) in
  let t1_30 =
    Int64.add (Int64.add (Int64.add (Int64.add e26 (Int64.logxor e27 (Int64.logand e29 (Int64.logxor e28 e27)))) 0x06ca6351L) w30) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed30 6) (Int64.shift_right_logical ed30 11)) (Int64.shift_right_logical ed30 25))
  in
  let t2_30 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad30 (Int64.shift_right_logical ad30 11)) (Int64.shift_right_logical ad30 20)) 2) (Int64.logxor (Int64.logand a29 (Int64.logxor a28 a27)) (Int64.logand a28 a27)) in
  let er30 = Int64.add a26 t1_30 in
  let e30 = Int64.logand er30 m in
  let ar30 = Int64.add t1_30 t2_30 in
  let a30 = Int64.logand ar30 m in
  let d29 = Int64.logor w29 (Int64.shift_left w29 32) in
  let w31 =
    Int64.logand (Int64.add (Int64.add (Int64.add w15 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d16 (Int64.shift_right_logical d16 11)) 7) (Int64.shift_right_logical w16 3))) w24) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d29 (Int64.shift_right_logical d29 2)) 17) (Int64.shift_right_logical w29 10))) m
  in
  (* round 31 *)
  let ed31 = Int64.logor e30 (Int64.shift_left er30 32) in
  let ad31 = Int64.logor a30 (Int64.shift_left ar30 32) in
  let t1_31 =
    Int64.add (Int64.add (Int64.add (Int64.add e27 (Int64.logxor e28 (Int64.logand e30 (Int64.logxor e29 e28)))) 0x14292967L) w31) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed31 6) (Int64.shift_right_logical ed31 11)) (Int64.shift_right_logical ed31 25))
  in
  let t2_31 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad31 (Int64.shift_right_logical ad31 11)) (Int64.shift_right_logical ad31 20)) 2) (Int64.logxor (Int64.logand a30 (Int64.logxor a29 a28)) (Int64.logand a29 a28)) in
  let er31 = Int64.add a27 t1_31 in
  let e31 = Int64.logand er31 m in
  let ar31 = Int64.add t1_31 t2_31 in
  let a31 = Int64.logand ar31 m in
  let d30 = Int64.logor w30 (Int64.shift_left w30 32) in
  let w32 =
    Int64.logand (Int64.add (Int64.add (Int64.add w16 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d17 (Int64.shift_right_logical d17 11)) 7) (Int64.shift_right_logical w17 3))) w25) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d30 (Int64.shift_right_logical d30 2)) 17) (Int64.shift_right_logical w30 10))) m
  in
  (* round 32 *)
  let ed32 = Int64.logor e31 (Int64.shift_left er31 32) in
  let ad32 = Int64.logor a31 (Int64.shift_left ar31 32) in
  let t1_32 =
    Int64.add (Int64.add (Int64.add (Int64.add e28 (Int64.logxor e29 (Int64.logand e31 (Int64.logxor e30 e29)))) 0x27b70a85L) w32) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed32 6) (Int64.shift_right_logical ed32 11)) (Int64.shift_right_logical ed32 25))
  in
  let t2_32 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad32 (Int64.shift_right_logical ad32 11)) (Int64.shift_right_logical ad32 20)) 2) (Int64.logxor (Int64.logand a31 (Int64.logxor a30 a29)) (Int64.logand a30 a29)) in
  let er32 = Int64.add a28 t1_32 in
  let e32 = Int64.logand er32 m in
  let ar32 = Int64.add t1_32 t2_32 in
  let a32 = Int64.logand ar32 m in
  let d31 = Int64.logor w31 (Int64.shift_left w31 32) in
  let w33 =
    Int64.logand (Int64.add (Int64.add (Int64.add w17 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d18 (Int64.shift_right_logical d18 11)) 7) (Int64.shift_right_logical w18 3))) w26) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d31 (Int64.shift_right_logical d31 2)) 17) (Int64.shift_right_logical w31 10))) m
  in
  (* round 33 *)
  let ed33 = Int64.logor e32 (Int64.shift_left er32 32) in
  let ad33 = Int64.logor a32 (Int64.shift_left ar32 32) in
  let t1_33 =
    Int64.add (Int64.add (Int64.add (Int64.add e29 (Int64.logxor e30 (Int64.logand e32 (Int64.logxor e31 e30)))) 0x2e1b2138L) w33) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed33 6) (Int64.shift_right_logical ed33 11)) (Int64.shift_right_logical ed33 25))
  in
  let t2_33 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad33 (Int64.shift_right_logical ad33 11)) (Int64.shift_right_logical ad33 20)) 2) (Int64.logxor (Int64.logand a32 (Int64.logxor a31 a30)) (Int64.logand a31 a30)) in
  let er33 = Int64.add a29 t1_33 in
  let e33 = Int64.logand er33 m in
  let ar33 = Int64.add t1_33 t2_33 in
  let a33 = Int64.logand ar33 m in
  let d32 = Int64.logor w32 (Int64.shift_left w32 32) in
  let w34 =
    Int64.logand (Int64.add (Int64.add (Int64.add w18 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d19 (Int64.shift_right_logical d19 11)) 7) (Int64.shift_right_logical w19 3))) w27) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d32 (Int64.shift_right_logical d32 2)) 17) (Int64.shift_right_logical w32 10))) m
  in
  (* round 34 *)
  let ed34 = Int64.logor e33 (Int64.shift_left er33 32) in
  let ad34 = Int64.logor a33 (Int64.shift_left ar33 32) in
  let t1_34 =
    Int64.add (Int64.add (Int64.add (Int64.add e30 (Int64.logxor e31 (Int64.logand e33 (Int64.logxor e32 e31)))) 0x4d2c6dfcL) w34) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed34 6) (Int64.shift_right_logical ed34 11)) (Int64.shift_right_logical ed34 25))
  in
  let t2_34 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad34 (Int64.shift_right_logical ad34 11)) (Int64.shift_right_logical ad34 20)) 2) (Int64.logxor (Int64.logand a33 (Int64.logxor a32 a31)) (Int64.logand a32 a31)) in
  let er34 = Int64.add a30 t1_34 in
  let e34 = Int64.logand er34 m in
  let ar34 = Int64.add t1_34 t2_34 in
  let a34 = Int64.logand ar34 m in
  let d33 = Int64.logor w33 (Int64.shift_left w33 32) in
  let w35 =
    Int64.logand (Int64.add (Int64.add (Int64.add w19 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d20 (Int64.shift_right_logical d20 11)) 7) (Int64.shift_right_logical w20 3))) w28) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d33 (Int64.shift_right_logical d33 2)) 17) (Int64.shift_right_logical w33 10))) m
  in
  (* round 35 *)
  let ed35 = Int64.logor e34 (Int64.shift_left er34 32) in
  let ad35 = Int64.logor a34 (Int64.shift_left ar34 32) in
  let t1_35 =
    Int64.add (Int64.add (Int64.add (Int64.add e31 (Int64.logxor e32 (Int64.logand e34 (Int64.logxor e33 e32)))) 0x53380d13L) w35) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed35 6) (Int64.shift_right_logical ed35 11)) (Int64.shift_right_logical ed35 25))
  in
  let t2_35 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad35 (Int64.shift_right_logical ad35 11)) (Int64.shift_right_logical ad35 20)) 2) (Int64.logxor (Int64.logand a34 (Int64.logxor a33 a32)) (Int64.logand a33 a32)) in
  let er35 = Int64.add a31 t1_35 in
  let e35 = Int64.logand er35 m in
  let ar35 = Int64.add t1_35 t2_35 in
  let a35 = Int64.logand ar35 m in
  let d34 = Int64.logor w34 (Int64.shift_left w34 32) in
  let w36 =
    Int64.logand (Int64.add (Int64.add (Int64.add w20 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d21 (Int64.shift_right_logical d21 11)) 7) (Int64.shift_right_logical w21 3))) w29) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d34 (Int64.shift_right_logical d34 2)) 17) (Int64.shift_right_logical w34 10))) m
  in
  (* round 36 *)
  let ed36 = Int64.logor e35 (Int64.shift_left er35 32) in
  let ad36 = Int64.logor a35 (Int64.shift_left ar35 32) in
  let t1_36 =
    Int64.add (Int64.add (Int64.add (Int64.add e32 (Int64.logxor e33 (Int64.logand e35 (Int64.logxor e34 e33)))) 0x650a7354L) w36) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed36 6) (Int64.shift_right_logical ed36 11)) (Int64.shift_right_logical ed36 25))
  in
  let t2_36 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad36 (Int64.shift_right_logical ad36 11)) (Int64.shift_right_logical ad36 20)) 2) (Int64.logxor (Int64.logand a35 (Int64.logxor a34 a33)) (Int64.logand a34 a33)) in
  let er36 = Int64.add a32 t1_36 in
  let e36 = Int64.logand er36 m in
  let ar36 = Int64.add t1_36 t2_36 in
  let a36 = Int64.logand ar36 m in
  let d35 = Int64.logor w35 (Int64.shift_left w35 32) in
  let w37 =
    Int64.logand (Int64.add (Int64.add (Int64.add w21 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d22 (Int64.shift_right_logical d22 11)) 7) (Int64.shift_right_logical w22 3))) w30) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d35 (Int64.shift_right_logical d35 2)) 17) (Int64.shift_right_logical w35 10))) m
  in
  (* round 37 *)
  let ed37 = Int64.logor e36 (Int64.shift_left er36 32) in
  let ad37 = Int64.logor a36 (Int64.shift_left ar36 32) in
  let t1_37 =
    Int64.add (Int64.add (Int64.add (Int64.add e33 (Int64.logxor e34 (Int64.logand e36 (Int64.logxor e35 e34)))) 0x766a0abbL) w37) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed37 6) (Int64.shift_right_logical ed37 11)) (Int64.shift_right_logical ed37 25))
  in
  let t2_37 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad37 (Int64.shift_right_logical ad37 11)) (Int64.shift_right_logical ad37 20)) 2) (Int64.logxor (Int64.logand a36 (Int64.logxor a35 a34)) (Int64.logand a35 a34)) in
  let er37 = Int64.add a33 t1_37 in
  let e37 = Int64.logand er37 m in
  let ar37 = Int64.add t1_37 t2_37 in
  let a37 = Int64.logand ar37 m in
  let d36 = Int64.logor w36 (Int64.shift_left w36 32) in
  let w38 =
    Int64.logand (Int64.add (Int64.add (Int64.add w22 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d23 (Int64.shift_right_logical d23 11)) 7) (Int64.shift_right_logical w23 3))) w31) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d36 (Int64.shift_right_logical d36 2)) 17) (Int64.shift_right_logical w36 10))) m
  in
  (* round 38 *)
  let ed38 = Int64.logor e37 (Int64.shift_left er37 32) in
  let ad38 = Int64.logor a37 (Int64.shift_left ar37 32) in
  let t1_38 =
    Int64.add (Int64.add (Int64.add (Int64.add e34 (Int64.logxor e35 (Int64.logand e37 (Int64.logxor e36 e35)))) 0x81c2c92eL) w38) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed38 6) (Int64.shift_right_logical ed38 11)) (Int64.shift_right_logical ed38 25))
  in
  let t2_38 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad38 (Int64.shift_right_logical ad38 11)) (Int64.shift_right_logical ad38 20)) 2) (Int64.logxor (Int64.logand a37 (Int64.logxor a36 a35)) (Int64.logand a36 a35)) in
  let er38 = Int64.add a34 t1_38 in
  let e38 = Int64.logand er38 m in
  let ar38 = Int64.add t1_38 t2_38 in
  let a38 = Int64.logand ar38 m in
  let d37 = Int64.logor w37 (Int64.shift_left w37 32) in
  let w39 =
    Int64.logand (Int64.add (Int64.add (Int64.add w23 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d24 (Int64.shift_right_logical d24 11)) 7) (Int64.shift_right_logical w24 3))) w32) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d37 (Int64.shift_right_logical d37 2)) 17) (Int64.shift_right_logical w37 10))) m
  in
  (* round 39 *)
  let ed39 = Int64.logor e38 (Int64.shift_left er38 32) in
  let ad39 = Int64.logor a38 (Int64.shift_left ar38 32) in
  let t1_39 =
    Int64.add (Int64.add (Int64.add (Int64.add e35 (Int64.logxor e36 (Int64.logand e38 (Int64.logxor e37 e36)))) 0x92722c85L) w39) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed39 6) (Int64.shift_right_logical ed39 11)) (Int64.shift_right_logical ed39 25))
  in
  let t2_39 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad39 (Int64.shift_right_logical ad39 11)) (Int64.shift_right_logical ad39 20)) 2) (Int64.logxor (Int64.logand a38 (Int64.logxor a37 a36)) (Int64.logand a37 a36)) in
  let er39 = Int64.add a35 t1_39 in
  let e39 = Int64.logand er39 m in
  let ar39 = Int64.add t1_39 t2_39 in
  let a39 = Int64.logand ar39 m in
  let d38 = Int64.logor w38 (Int64.shift_left w38 32) in
  let w40 =
    Int64.logand (Int64.add (Int64.add (Int64.add w24 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d25 (Int64.shift_right_logical d25 11)) 7) (Int64.shift_right_logical w25 3))) w33) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d38 (Int64.shift_right_logical d38 2)) 17) (Int64.shift_right_logical w38 10))) m
  in
  (* round 40 *)
  let ed40 = Int64.logor e39 (Int64.shift_left er39 32) in
  let ad40 = Int64.logor a39 (Int64.shift_left ar39 32) in
  let t1_40 =
    Int64.add (Int64.add (Int64.add (Int64.add e36 (Int64.logxor e37 (Int64.logand e39 (Int64.logxor e38 e37)))) 0xa2bfe8a1L) w40) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed40 6) (Int64.shift_right_logical ed40 11)) (Int64.shift_right_logical ed40 25))
  in
  let t2_40 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad40 (Int64.shift_right_logical ad40 11)) (Int64.shift_right_logical ad40 20)) 2) (Int64.logxor (Int64.logand a39 (Int64.logxor a38 a37)) (Int64.logand a38 a37)) in
  let er40 = Int64.add a36 t1_40 in
  let e40 = Int64.logand er40 m in
  let ar40 = Int64.add t1_40 t2_40 in
  let a40 = Int64.logand ar40 m in
  let d39 = Int64.logor w39 (Int64.shift_left w39 32) in
  let w41 =
    Int64.logand (Int64.add (Int64.add (Int64.add w25 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d26 (Int64.shift_right_logical d26 11)) 7) (Int64.shift_right_logical w26 3))) w34) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d39 (Int64.shift_right_logical d39 2)) 17) (Int64.shift_right_logical w39 10))) m
  in
  (* round 41 *)
  let ed41 = Int64.logor e40 (Int64.shift_left er40 32) in
  let ad41 = Int64.logor a40 (Int64.shift_left ar40 32) in
  let t1_41 =
    Int64.add (Int64.add (Int64.add (Int64.add e37 (Int64.logxor e38 (Int64.logand e40 (Int64.logxor e39 e38)))) 0xa81a664bL) w41) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed41 6) (Int64.shift_right_logical ed41 11)) (Int64.shift_right_logical ed41 25))
  in
  let t2_41 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad41 (Int64.shift_right_logical ad41 11)) (Int64.shift_right_logical ad41 20)) 2) (Int64.logxor (Int64.logand a40 (Int64.logxor a39 a38)) (Int64.logand a39 a38)) in
  let er41 = Int64.add a37 t1_41 in
  let e41 = Int64.logand er41 m in
  let ar41 = Int64.add t1_41 t2_41 in
  let a41 = Int64.logand ar41 m in
  let d40 = Int64.logor w40 (Int64.shift_left w40 32) in
  let w42 =
    Int64.logand (Int64.add (Int64.add (Int64.add w26 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d27 (Int64.shift_right_logical d27 11)) 7) (Int64.shift_right_logical w27 3))) w35) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d40 (Int64.shift_right_logical d40 2)) 17) (Int64.shift_right_logical w40 10))) m
  in
  (* round 42 *)
  let ed42 = Int64.logor e41 (Int64.shift_left er41 32) in
  let ad42 = Int64.logor a41 (Int64.shift_left ar41 32) in
  let t1_42 =
    Int64.add (Int64.add (Int64.add (Int64.add e38 (Int64.logxor e39 (Int64.logand e41 (Int64.logxor e40 e39)))) 0xc24b8b70L) w42) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed42 6) (Int64.shift_right_logical ed42 11)) (Int64.shift_right_logical ed42 25))
  in
  let t2_42 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad42 (Int64.shift_right_logical ad42 11)) (Int64.shift_right_logical ad42 20)) 2) (Int64.logxor (Int64.logand a41 (Int64.logxor a40 a39)) (Int64.logand a40 a39)) in
  let er42 = Int64.add a38 t1_42 in
  let e42 = Int64.logand er42 m in
  let ar42 = Int64.add t1_42 t2_42 in
  let a42 = Int64.logand ar42 m in
  let d41 = Int64.logor w41 (Int64.shift_left w41 32) in
  let w43 =
    Int64.logand (Int64.add (Int64.add (Int64.add w27 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d28 (Int64.shift_right_logical d28 11)) 7) (Int64.shift_right_logical w28 3))) w36) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d41 (Int64.shift_right_logical d41 2)) 17) (Int64.shift_right_logical w41 10))) m
  in
  (* round 43 *)
  let ed43 = Int64.logor e42 (Int64.shift_left er42 32) in
  let ad43 = Int64.logor a42 (Int64.shift_left ar42 32) in
  let t1_43 =
    Int64.add (Int64.add (Int64.add (Int64.add e39 (Int64.logxor e40 (Int64.logand e42 (Int64.logxor e41 e40)))) 0xc76c51a3L) w43) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed43 6) (Int64.shift_right_logical ed43 11)) (Int64.shift_right_logical ed43 25))
  in
  let t2_43 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad43 (Int64.shift_right_logical ad43 11)) (Int64.shift_right_logical ad43 20)) 2) (Int64.logxor (Int64.logand a42 (Int64.logxor a41 a40)) (Int64.logand a41 a40)) in
  let er43 = Int64.add a39 t1_43 in
  let e43 = Int64.logand er43 m in
  let ar43 = Int64.add t1_43 t2_43 in
  let a43 = Int64.logand ar43 m in
  let d42 = Int64.logor w42 (Int64.shift_left w42 32) in
  let w44 =
    Int64.logand (Int64.add (Int64.add (Int64.add w28 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d29 (Int64.shift_right_logical d29 11)) 7) (Int64.shift_right_logical w29 3))) w37) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d42 (Int64.shift_right_logical d42 2)) 17) (Int64.shift_right_logical w42 10))) m
  in
  (* round 44 *)
  let ed44 = Int64.logor e43 (Int64.shift_left er43 32) in
  let ad44 = Int64.logor a43 (Int64.shift_left ar43 32) in
  let t1_44 =
    Int64.add (Int64.add (Int64.add (Int64.add e40 (Int64.logxor e41 (Int64.logand e43 (Int64.logxor e42 e41)))) 0xd192e819L) w44) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed44 6) (Int64.shift_right_logical ed44 11)) (Int64.shift_right_logical ed44 25))
  in
  let t2_44 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad44 (Int64.shift_right_logical ad44 11)) (Int64.shift_right_logical ad44 20)) 2) (Int64.logxor (Int64.logand a43 (Int64.logxor a42 a41)) (Int64.logand a42 a41)) in
  let er44 = Int64.add a40 t1_44 in
  let e44 = Int64.logand er44 m in
  let ar44 = Int64.add t1_44 t2_44 in
  let a44 = Int64.logand ar44 m in
  let d43 = Int64.logor w43 (Int64.shift_left w43 32) in
  let w45 =
    Int64.logand (Int64.add (Int64.add (Int64.add w29 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d30 (Int64.shift_right_logical d30 11)) 7) (Int64.shift_right_logical w30 3))) w38) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d43 (Int64.shift_right_logical d43 2)) 17) (Int64.shift_right_logical w43 10))) m
  in
  (* round 45 *)
  let ed45 = Int64.logor e44 (Int64.shift_left er44 32) in
  let ad45 = Int64.logor a44 (Int64.shift_left ar44 32) in
  let t1_45 =
    Int64.add (Int64.add (Int64.add (Int64.add e41 (Int64.logxor e42 (Int64.logand e44 (Int64.logxor e43 e42)))) 0xd6990624L) w45) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed45 6) (Int64.shift_right_logical ed45 11)) (Int64.shift_right_logical ed45 25))
  in
  let t2_45 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad45 (Int64.shift_right_logical ad45 11)) (Int64.shift_right_logical ad45 20)) 2) (Int64.logxor (Int64.logand a44 (Int64.logxor a43 a42)) (Int64.logand a43 a42)) in
  let er45 = Int64.add a41 t1_45 in
  let e45 = Int64.logand er45 m in
  let ar45 = Int64.add t1_45 t2_45 in
  let a45 = Int64.logand ar45 m in
  let d44 = Int64.logor w44 (Int64.shift_left w44 32) in
  let w46 =
    Int64.logand (Int64.add (Int64.add (Int64.add w30 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d31 (Int64.shift_right_logical d31 11)) 7) (Int64.shift_right_logical w31 3))) w39) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d44 (Int64.shift_right_logical d44 2)) 17) (Int64.shift_right_logical w44 10))) m
  in
  (* round 46 *)
  let ed46 = Int64.logor e45 (Int64.shift_left er45 32) in
  let ad46 = Int64.logor a45 (Int64.shift_left ar45 32) in
  let t1_46 =
    Int64.add (Int64.add (Int64.add (Int64.add e42 (Int64.logxor e43 (Int64.logand e45 (Int64.logxor e44 e43)))) 0xf40e3585L) w46) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed46 6) (Int64.shift_right_logical ed46 11)) (Int64.shift_right_logical ed46 25))
  in
  let t2_46 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad46 (Int64.shift_right_logical ad46 11)) (Int64.shift_right_logical ad46 20)) 2) (Int64.logxor (Int64.logand a45 (Int64.logxor a44 a43)) (Int64.logand a44 a43)) in
  let er46 = Int64.add a42 t1_46 in
  let e46 = Int64.logand er46 m in
  let ar46 = Int64.add t1_46 t2_46 in
  let a46 = Int64.logand ar46 m in
  let d45 = Int64.logor w45 (Int64.shift_left w45 32) in
  let w47 =
    Int64.logand (Int64.add (Int64.add (Int64.add w31 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d32 (Int64.shift_right_logical d32 11)) 7) (Int64.shift_right_logical w32 3))) w40) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d45 (Int64.shift_right_logical d45 2)) 17) (Int64.shift_right_logical w45 10))) m
  in
  (* round 47 *)
  let ed47 = Int64.logor e46 (Int64.shift_left er46 32) in
  let ad47 = Int64.logor a46 (Int64.shift_left ar46 32) in
  let t1_47 =
    Int64.add (Int64.add (Int64.add (Int64.add e43 (Int64.logxor e44 (Int64.logand e46 (Int64.logxor e45 e44)))) 0x106aa070L) w47) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed47 6) (Int64.shift_right_logical ed47 11)) (Int64.shift_right_logical ed47 25))
  in
  let t2_47 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad47 (Int64.shift_right_logical ad47 11)) (Int64.shift_right_logical ad47 20)) 2) (Int64.logxor (Int64.logand a46 (Int64.logxor a45 a44)) (Int64.logand a45 a44)) in
  let er47 = Int64.add a43 t1_47 in
  let e47 = Int64.logand er47 m in
  let ar47 = Int64.add t1_47 t2_47 in
  let a47 = Int64.logand ar47 m in
  let d46 = Int64.logor w46 (Int64.shift_left w46 32) in
  let w48 =
    Int64.logand (Int64.add (Int64.add (Int64.add w32 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d33 (Int64.shift_right_logical d33 11)) 7) (Int64.shift_right_logical w33 3))) w41) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d46 (Int64.shift_right_logical d46 2)) 17) (Int64.shift_right_logical w46 10))) m
  in
  (* round 48 *)
  let ed48 = Int64.logor e47 (Int64.shift_left er47 32) in
  let ad48 = Int64.logor a47 (Int64.shift_left ar47 32) in
  let t1_48 =
    Int64.add (Int64.add (Int64.add (Int64.add e44 (Int64.logxor e45 (Int64.logand e47 (Int64.logxor e46 e45)))) 0x19a4c116L) w48) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed48 6) (Int64.shift_right_logical ed48 11)) (Int64.shift_right_logical ed48 25))
  in
  let t2_48 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad48 (Int64.shift_right_logical ad48 11)) (Int64.shift_right_logical ad48 20)) 2) (Int64.logxor (Int64.logand a47 (Int64.logxor a46 a45)) (Int64.logand a46 a45)) in
  let er48 = Int64.add a44 t1_48 in
  let e48 = Int64.logand er48 m in
  let ar48 = Int64.add t1_48 t2_48 in
  let a48 = Int64.logand ar48 m in
  let d47 = Int64.logor w47 (Int64.shift_left w47 32) in
  let w49 =
    Int64.logand (Int64.add (Int64.add (Int64.add w33 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d34 (Int64.shift_right_logical d34 11)) 7) (Int64.shift_right_logical w34 3))) w42) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d47 (Int64.shift_right_logical d47 2)) 17) (Int64.shift_right_logical w47 10))) m
  in
  (* round 49 *)
  let ed49 = Int64.logor e48 (Int64.shift_left er48 32) in
  let ad49 = Int64.logor a48 (Int64.shift_left ar48 32) in
  let t1_49 =
    Int64.add (Int64.add (Int64.add (Int64.add e45 (Int64.logxor e46 (Int64.logand e48 (Int64.logxor e47 e46)))) 0x1e376c08L) w49) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed49 6) (Int64.shift_right_logical ed49 11)) (Int64.shift_right_logical ed49 25))
  in
  let t2_49 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad49 (Int64.shift_right_logical ad49 11)) (Int64.shift_right_logical ad49 20)) 2) (Int64.logxor (Int64.logand a48 (Int64.logxor a47 a46)) (Int64.logand a47 a46)) in
  let er49 = Int64.add a45 t1_49 in
  let e49 = Int64.logand er49 m in
  let ar49 = Int64.add t1_49 t2_49 in
  let a49 = Int64.logand ar49 m in
  let d48 = Int64.logor w48 (Int64.shift_left w48 32) in
  let w50 =
    Int64.logand (Int64.add (Int64.add (Int64.add w34 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d35 (Int64.shift_right_logical d35 11)) 7) (Int64.shift_right_logical w35 3))) w43) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d48 (Int64.shift_right_logical d48 2)) 17) (Int64.shift_right_logical w48 10))) m
  in
  (* round 50 *)
  let ed50 = Int64.logor e49 (Int64.shift_left er49 32) in
  let ad50 = Int64.logor a49 (Int64.shift_left ar49 32) in
  let t1_50 =
    Int64.add (Int64.add (Int64.add (Int64.add e46 (Int64.logxor e47 (Int64.logand e49 (Int64.logxor e48 e47)))) 0x2748774cL) w50) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed50 6) (Int64.shift_right_logical ed50 11)) (Int64.shift_right_logical ed50 25))
  in
  let t2_50 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad50 (Int64.shift_right_logical ad50 11)) (Int64.shift_right_logical ad50 20)) 2) (Int64.logxor (Int64.logand a49 (Int64.logxor a48 a47)) (Int64.logand a48 a47)) in
  let er50 = Int64.add a46 t1_50 in
  let e50 = Int64.logand er50 m in
  let ar50 = Int64.add t1_50 t2_50 in
  let a50 = Int64.logand ar50 m in
  let d49 = Int64.logor w49 (Int64.shift_left w49 32) in
  let w51 =
    Int64.logand (Int64.add (Int64.add (Int64.add w35 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d36 (Int64.shift_right_logical d36 11)) 7) (Int64.shift_right_logical w36 3))) w44) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d49 (Int64.shift_right_logical d49 2)) 17) (Int64.shift_right_logical w49 10))) m
  in
  (* round 51 *)
  let ed51 = Int64.logor e50 (Int64.shift_left er50 32) in
  let ad51 = Int64.logor a50 (Int64.shift_left ar50 32) in
  let t1_51 =
    Int64.add (Int64.add (Int64.add (Int64.add e47 (Int64.logxor e48 (Int64.logand e50 (Int64.logxor e49 e48)))) 0x34b0bcb5L) w51) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed51 6) (Int64.shift_right_logical ed51 11)) (Int64.shift_right_logical ed51 25))
  in
  let t2_51 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad51 (Int64.shift_right_logical ad51 11)) (Int64.shift_right_logical ad51 20)) 2) (Int64.logxor (Int64.logand a50 (Int64.logxor a49 a48)) (Int64.logand a49 a48)) in
  let er51 = Int64.add a47 t1_51 in
  let e51 = Int64.logand er51 m in
  let ar51 = Int64.add t1_51 t2_51 in
  let a51 = Int64.logand ar51 m in
  let d50 = Int64.logor w50 (Int64.shift_left w50 32) in
  let w52 =
    Int64.logand (Int64.add (Int64.add (Int64.add w36 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d37 (Int64.shift_right_logical d37 11)) 7) (Int64.shift_right_logical w37 3))) w45) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d50 (Int64.shift_right_logical d50 2)) 17) (Int64.shift_right_logical w50 10))) m
  in
  (* round 52 *)
  let ed52 = Int64.logor e51 (Int64.shift_left er51 32) in
  let ad52 = Int64.logor a51 (Int64.shift_left ar51 32) in
  let t1_52 =
    Int64.add (Int64.add (Int64.add (Int64.add e48 (Int64.logxor e49 (Int64.logand e51 (Int64.logxor e50 e49)))) 0x391c0cb3L) w52) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed52 6) (Int64.shift_right_logical ed52 11)) (Int64.shift_right_logical ed52 25))
  in
  let t2_52 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad52 (Int64.shift_right_logical ad52 11)) (Int64.shift_right_logical ad52 20)) 2) (Int64.logxor (Int64.logand a51 (Int64.logxor a50 a49)) (Int64.logand a50 a49)) in
  let er52 = Int64.add a48 t1_52 in
  let e52 = Int64.logand er52 m in
  let ar52 = Int64.add t1_52 t2_52 in
  let a52 = Int64.logand ar52 m in
  let d51 = Int64.logor w51 (Int64.shift_left w51 32) in
  let w53 =
    Int64.logand (Int64.add (Int64.add (Int64.add w37 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d38 (Int64.shift_right_logical d38 11)) 7) (Int64.shift_right_logical w38 3))) w46) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d51 (Int64.shift_right_logical d51 2)) 17) (Int64.shift_right_logical w51 10))) m
  in
  (* round 53 *)
  let ed53 = Int64.logor e52 (Int64.shift_left er52 32) in
  let ad53 = Int64.logor a52 (Int64.shift_left ar52 32) in
  let t1_53 =
    Int64.add (Int64.add (Int64.add (Int64.add e49 (Int64.logxor e50 (Int64.logand e52 (Int64.logxor e51 e50)))) 0x4ed8aa4aL) w53) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed53 6) (Int64.shift_right_logical ed53 11)) (Int64.shift_right_logical ed53 25))
  in
  let t2_53 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad53 (Int64.shift_right_logical ad53 11)) (Int64.shift_right_logical ad53 20)) 2) (Int64.logxor (Int64.logand a52 (Int64.logxor a51 a50)) (Int64.logand a51 a50)) in
  let er53 = Int64.add a49 t1_53 in
  let e53 = Int64.logand er53 m in
  let ar53 = Int64.add t1_53 t2_53 in
  let a53 = Int64.logand ar53 m in
  let d52 = Int64.logor w52 (Int64.shift_left w52 32) in
  let w54 =
    Int64.logand (Int64.add (Int64.add (Int64.add w38 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d39 (Int64.shift_right_logical d39 11)) 7) (Int64.shift_right_logical w39 3))) w47) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d52 (Int64.shift_right_logical d52 2)) 17) (Int64.shift_right_logical w52 10))) m
  in
  (* round 54 *)
  let ed54 = Int64.logor e53 (Int64.shift_left er53 32) in
  let ad54 = Int64.logor a53 (Int64.shift_left ar53 32) in
  let t1_54 =
    Int64.add (Int64.add (Int64.add (Int64.add e50 (Int64.logxor e51 (Int64.logand e53 (Int64.logxor e52 e51)))) 0x5b9cca4fL) w54) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed54 6) (Int64.shift_right_logical ed54 11)) (Int64.shift_right_logical ed54 25))
  in
  let t2_54 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad54 (Int64.shift_right_logical ad54 11)) (Int64.shift_right_logical ad54 20)) 2) (Int64.logxor (Int64.logand a53 (Int64.logxor a52 a51)) (Int64.logand a52 a51)) in
  let er54 = Int64.add a50 t1_54 in
  let e54 = Int64.logand er54 m in
  let ar54 = Int64.add t1_54 t2_54 in
  let a54 = Int64.logand ar54 m in
  let d53 = Int64.logor w53 (Int64.shift_left w53 32) in
  let w55 =
    Int64.logand (Int64.add (Int64.add (Int64.add w39 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d40 (Int64.shift_right_logical d40 11)) 7) (Int64.shift_right_logical w40 3))) w48) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d53 (Int64.shift_right_logical d53 2)) 17) (Int64.shift_right_logical w53 10))) m
  in
  (* round 55 *)
  let ed55 = Int64.logor e54 (Int64.shift_left er54 32) in
  let ad55 = Int64.logor a54 (Int64.shift_left ar54 32) in
  let t1_55 =
    Int64.add (Int64.add (Int64.add (Int64.add e51 (Int64.logxor e52 (Int64.logand e54 (Int64.logxor e53 e52)))) 0x682e6ff3L) w55) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed55 6) (Int64.shift_right_logical ed55 11)) (Int64.shift_right_logical ed55 25))
  in
  let t2_55 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad55 (Int64.shift_right_logical ad55 11)) (Int64.shift_right_logical ad55 20)) 2) (Int64.logxor (Int64.logand a54 (Int64.logxor a53 a52)) (Int64.logand a53 a52)) in
  let er55 = Int64.add a51 t1_55 in
  let e55 = Int64.logand er55 m in
  let ar55 = Int64.add t1_55 t2_55 in
  let a55 = Int64.logand ar55 m in
  let d54 = Int64.logor w54 (Int64.shift_left w54 32) in
  let w56 =
    Int64.logand (Int64.add (Int64.add (Int64.add w40 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d41 (Int64.shift_right_logical d41 11)) 7) (Int64.shift_right_logical w41 3))) w49) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d54 (Int64.shift_right_logical d54 2)) 17) (Int64.shift_right_logical w54 10))) m
  in
  (* round 56 *)
  let ed56 = Int64.logor e55 (Int64.shift_left er55 32) in
  let ad56 = Int64.logor a55 (Int64.shift_left ar55 32) in
  let t1_56 =
    Int64.add (Int64.add (Int64.add (Int64.add e52 (Int64.logxor e53 (Int64.logand e55 (Int64.logxor e54 e53)))) 0x748f82eeL) w56) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed56 6) (Int64.shift_right_logical ed56 11)) (Int64.shift_right_logical ed56 25))
  in
  let t2_56 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad56 (Int64.shift_right_logical ad56 11)) (Int64.shift_right_logical ad56 20)) 2) (Int64.logxor (Int64.logand a55 (Int64.logxor a54 a53)) (Int64.logand a54 a53)) in
  let er56 = Int64.add a52 t1_56 in
  let e56 = Int64.logand er56 m in
  let ar56 = Int64.add t1_56 t2_56 in
  let a56 = Int64.logand ar56 m in
  let d55 = Int64.logor w55 (Int64.shift_left w55 32) in
  let w57 =
    Int64.logand (Int64.add (Int64.add (Int64.add w41 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d42 (Int64.shift_right_logical d42 11)) 7) (Int64.shift_right_logical w42 3))) w50) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d55 (Int64.shift_right_logical d55 2)) 17) (Int64.shift_right_logical w55 10))) m
  in
  (* round 57 *)
  let ed57 = Int64.logor e56 (Int64.shift_left er56 32) in
  let ad57 = Int64.logor a56 (Int64.shift_left ar56 32) in
  let t1_57 =
    Int64.add (Int64.add (Int64.add (Int64.add e53 (Int64.logxor e54 (Int64.logand e56 (Int64.logxor e55 e54)))) 0x78a5636fL) w57) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed57 6) (Int64.shift_right_logical ed57 11)) (Int64.shift_right_logical ed57 25))
  in
  let t2_57 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad57 (Int64.shift_right_logical ad57 11)) (Int64.shift_right_logical ad57 20)) 2) (Int64.logxor (Int64.logand a56 (Int64.logxor a55 a54)) (Int64.logand a55 a54)) in
  let er57 = Int64.add a53 t1_57 in
  let e57 = Int64.logand er57 m in
  let ar57 = Int64.add t1_57 t2_57 in
  let a57 = Int64.logand ar57 m in
  let d56 = Int64.logor w56 (Int64.shift_left w56 32) in
  let w58 =
    Int64.logand (Int64.add (Int64.add (Int64.add w42 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d43 (Int64.shift_right_logical d43 11)) 7) (Int64.shift_right_logical w43 3))) w51) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d56 (Int64.shift_right_logical d56 2)) 17) (Int64.shift_right_logical w56 10))) m
  in
  (* round 58 *)
  let ed58 = Int64.logor e57 (Int64.shift_left er57 32) in
  let ad58 = Int64.logor a57 (Int64.shift_left ar57 32) in
  let t1_58 =
    Int64.add (Int64.add (Int64.add (Int64.add e54 (Int64.logxor e55 (Int64.logand e57 (Int64.logxor e56 e55)))) 0x84c87814L) w58) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed58 6) (Int64.shift_right_logical ed58 11)) (Int64.shift_right_logical ed58 25))
  in
  let t2_58 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad58 (Int64.shift_right_logical ad58 11)) (Int64.shift_right_logical ad58 20)) 2) (Int64.logxor (Int64.logand a57 (Int64.logxor a56 a55)) (Int64.logand a56 a55)) in
  let er58 = Int64.add a54 t1_58 in
  let e58 = Int64.logand er58 m in
  let ar58 = Int64.add t1_58 t2_58 in
  let a58 = Int64.logand ar58 m in
  let d57 = Int64.logor w57 (Int64.shift_left w57 32) in
  let w59 =
    Int64.logand (Int64.add (Int64.add (Int64.add w43 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d44 (Int64.shift_right_logical d44 11)) 7) (Int64.shift_right_logical w44 3))) w52) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d57 (Int64.shift_right_logical d57 2)) 17) (Int64.shift_right_logical w57 10))) m
  in
  (* round 59 *)
  let ed59 = Int64.logor e58 (Int64.shift_left er58 32) in
  let ad59 = Int64.logor a58 (Int64.shift_left ar58 32) in
  let t1_59 =
    Int64.add (Int64.add (Int64.add (Int64.add e55 (Int64.logxor e56 (Int64.logand e58 (Int64.logxor e57 e56)))) 0x8cc70208L) w59) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed59 6) (Int64.shift_right_logical ed59 11)) (Int64.shift_right_logical ed59 25))
  in
  let t2_59 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad59 (Int64.shift_right_logical ad59 11)) (Int64.shift_right_logical ad59 20)) 2) (Int64.logxor (Int64.logand a58 (Int64.logxor a57 a56)) (Int64.logand a57 a56)) in
  let er59 = Int64.add a55 t1_59 in
  let e59 = Int64.logand er59 m in
  let ar59 = Int64.add t1_59 t2_59 in
  let a59 = Int64.logand ar59 m in
  let d58 = Int64.logor w58 (Int64.shift_left w58 32) in
  let w60 =
    Int64.logand (Int64.add (Int64.add (Int64.add w44 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d45 (Int64.shift_right_logical d45 11)) 7) (Int64.shift_right_logical w45 3))) w53) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d58 (Int64.shift_right_logical d58 2)) 17) (Int64.shift_right_logical w58 10))) m
  in
  (* round 60 *)
  let ed60 = Int64.logor e59 (Int64.shift_left er59 32) in
  let ad60 = Int64.logor a59 (Int64.shift_left ar59 32) in
  let t1_60 =
    Int64.add (Int64.add (Int64.add (Int64.add e56 (Int64.logxor e57 (Int64.logand e59 (Int64.logxor e58 e57)))) 0x90befffaL) w60) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed60 6) (Int64.shift_right_logical ed60 11)) (Int64.shift_right_logical ed60 25))
  in
  let t2_60 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad60 (Int64.shift_right_logical ad60 11)) (Int64.shift_right_logical ad60 20)) 2) (Int64.logxor (Int64.logand a59 (Int64.logxor a58 a57)) (Int64.logand a58 a57)) in
  let er60 = Int64.add a56 t1_60 in
  let e60 = Int64.logand er60 m in
  let ar60 = Int64.add t1_60 t2_60 in
  let a60 = Int64.logand ar60 m in
  let d59 = Int64.logor w59 (Int64.shift_left w59 32) in
  let w61 =
    Int64.logand (Int64.add (Int64.add (Int64.add w45 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d46 (Int64.shift_right_logical d46 11)) 7) (Int64.shift_right_logical w46 3))) w54) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d59 (Int64.shift_right_logical d59 2)) 17) (Int64.shift_right_logical w59 10))) m
  in
  (* round 61 *)
  let ed61 = Int64.logor e60 (Int64.shift_left er60 32) in
  let ad61 = Int64.logor a60 (Int64.shift_left ar60 32) in
  let t1_61 =
    Int64.add (Int64.add (Int64.add (Int64.add e57 (Int64.logxor e58 (Int64.logand e60 (Int64.logxor e59 e58)))) 0xa4506cebL) w61) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed61 6) (Int64.shift_right_logical ed61 11)) (Int64.shift_right_logical ed61 25))
  in
  let t2_61 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad61 (Int64.shift_right_logical ad61 11)) (Int64.shift_right_logical ad61 20)) 2) (Int64.logxor (Int64.logand a60 (Int64.logxor a59 a58)) (Int64.logand a59 a58)) in
  let er61 = Int64.add a57 t1_61 in
  let e61 = Int64.logand er61 m in
  let ar61 = Int64.add t1_61 t2_61 in
  let a61 = Int64.logand ar61 m in
  let d60 = Int64.logor w60 (Int64.shift_left w60 32) in
  let w62 =
    Int64.logand (Int64.add (Int64.add (Int64.add w46 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d47 (Int64.shift_right_logical d47 11)) 7) (Int64.shift_right_logical w47 3))) w55) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d60 (Int64.shift_right_logical d60 2)) 17) (Int64.shift_right_logical w60 10))) m
  in
  (* round 62 *)
  let ed62 = Int64.logor e61 (Int64.shift_left er61 32) in
  let ad62 = Int64.logor a61 (Int64.shift_left ar61 32) in
  let t1_62 =
    Int64.add (Int64.add (Int64.add (Int64.add e58 (Int64.logxor e59 (Int64.logand e61 (Int64.logxor e60 e59)))) 0xbef9a3f7L) w62) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed62 6) (Int64.shift_right_logical ed62 11)) (Int64.shift_right_logical ed62 25))
  in
  let t2_62 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad62 (Int64.shift_right_logical ad62 11)) (Int64.shift_right_logical ad62 20)) 2) (Int64.logxor (Int64.logand a61 (Int64.logxor a60 a59)) (Int64.logand a60 a59)) in
  let er62 = Int64.add a58 t1_62 in
  let e62 = Int64.logand er62 m in
  let ar62 = Int64.add t1_62 t2_62 in
  let a62 = Int64.logand ar62 m in
  let d61 = Int64.logor w61 (Int64.shift_left w61 32) in
  let w63 =
    Int64.logand (Int64.add (Int64.add (Int64.add w47 (Int64.logxor (Int64.shift_right_logical (Int64.logxor d48 (Int64.shift_right_logical d48 11)) 7) (Int64.shift_right_logical w48 3))) w56) (Int64.logxor (Int64.shift_right_logical (Int64.logxor d61 (Int64.shift_right_logical d61 2)) 17) (Int64.shift_right_logical w61 10))) m
  in
  (* round 63 *)
  let ed63 = Int64.logor e62 (Int64.shift_left er62 32) in
  let ad63 = Int64.logor a62 (Int64.shift_left ar62 32) in
  let t1_63 =
    Int64.add (Int64.add (Int64.add (Int64.add e59 (Int64.logxor e60 (Int64.logand e62 (Int64.logxor e61 e60)))) 0xc67178f2L) w63) (Int64.logxor (Int64.logxor (Int64.shift_right_logical ed63 6) (Int64.shift_right_logical ed63 11)) (Int64.shift_right_logical ed63 25))
  in
  let t2_63 = Int64.add (Int64.shift_right_logical (Int64.logxor (Int64.logxor ad63 (Int64.shift_right_logical ad63 11)) (Int64.shift_right_logical ad63 20)) 2) (Int64.logxor (Int64.logand a62 (Int64.logxor a61 a60)) (Int64.logand a61 a60)) in
  let er63 = Int64.add a59 t1_63 in
  let e63 = Int64.logand er63 m in
  let ar63 = Int64.add t1_63 t2_63 in
  let a63 = Int64.logand ar63 m in
  Array.unsafe_set h 0 (Int64.to_int (Int64.logand (Int64.add (Int64.of_int (Array.unsafe_get h 0)) a63) m));
  Array.unsafe_set h 1 (Int64.to_int (Int64.logand (Int64.add (Int64.of_int (Array.unsafe_get h 1)) a62) m));
  Array.unsafe_set h 2 (Int64.to_int (Int64.logand (Int64.add (Int64.of_int (Array.unsafe_get h 2)) a61) m));
  Array.unsafe_set h 3 (Int64.to_int (Int64.logand (Int64.add (Int64.of_int (Array.unsafe_get h 3)) a60) m));
  Array.unsafe_set h 4 (Int64.to_int (Int64.logand (Int64.add (Int64.of_int (Array.unsafe_get h 4)) e63) m));
  Array.unsafe_set h 5 (Int64.to_int (Int64.logand (Int64.add (Int64.of_int (Array.unsafe_get h 5)) e62) m));
  Array.unsafe_set h 6 (Int64.to_int (Int64.logand (Int64.add (Int64.of_int (Array.unsafe_get h 6)) e61) m));
  Array.unsafe_set h 7 (Int64.to_int (Int64.logand (Int64.add (Int64.of_int (Array.unsafe_get h 7)) e60) m))

type ctx = {
  h : int array;        (* 8 chaining words, each in [0, 2^32) *)
  buf : Bytes.t;        (* 64-byte partial-block buffer *)
  mutable buf_len : int;
  mutable total : int;  (* message bytes absorbed so far *)
}

let init () =
  { h = Array.copy iv; buf = Bytes.create 64; buf_len = 0; total = 0 }

(* Resume from an HMAC midstate: one ipad/opad block already absorbed. *)
let of_midstate h =
  { h = Array.copy h; buf = Bytes.create 64; buf_len = 0; total = 64 }

let update ?(off = 0) ?len ctx s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Sha256.update: out-of-range substring";
  ctx.total <- ctx.total + len;
  (* Read-only view; never written through. *)
  let b = Bytes.unsafe_of_string s in
  let pos = ref off and rem = ref len in
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) !rem in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    rem := !rem - take;
    if ctx.buf_len = 64 then begin
      compress ctx.h ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !rem >= 64 do
    compress ctx.h b !pos;
    pos := !pos + 64;
    rem := !rem - 64
  done;
  if !rem > 0 then begin
    Bytes.blit b !pos ctx.buf 0 !rem;
    ctx.buf_len <- !rem
  end

(* Apply the 10*...len padding and the final compression(s) in the block
   buffer; afterwards [ctx.h] holds the digest words. *)
let finish ctx =
  Bytes.set ctx.buf ctx.buf_len '\x80';
  let l = ctx.buf_len + 1 in
  if l > 56 then begin
    Bytes.fill ctx.buf l (64 - l) '\000';
    compress ctx.h ctx.buf 0;
    Bytes.fill ctx.buf 0 56 '\000'
  end
  else Bytes.fill ctx.buf l (56 - l) '\000';
  Bytes.set_int64_be ctx.buf 56 (Int64.of_int (8 * ctx.total));
  compress ctx.h ctx.buf 0;
  ctx.buf_len <- 0

let final ctx =
  finish ctx;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (4 * i) (Int32.of_int ctx.h.(i))
  done;
  Bytes.unsafe_to_string out

let final64 ctx =
  finish ctx;
  Int64.logor
    (Int64.shift_left (Int64.of_int ctx.h.(0)) 32)
    (Int64.of_int ctx.h.(1))

let digest message =
  let ctx = init () in
  update ctx message;
  final ctx

let to_hex s =
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let digest_hex message = to_hex (digest message)

let digest64 message =
  let ctx = init () in
  update ctx message;
  final64 ctx

let block_size = 64

(* --- HMAC (RFC 2104) --- *)

type hmac_key = { inner : int array; outer : int array }

let hmac_key ~key =
  let key = if String.length key > block_size then digest key else key in
  let midstate pad =
    let block = Bytes.make block_size (Char.chr pad) in
    String.iteri (fun i c -> Bytes.set block i (Char.chr (Char.code c lxor pad))) key;
    let h = Array.copy iv in
    compress h block 0;
    h
  in
  { inner = midstate 0x36; outer = midstate 0x5c }

let hmac_with hk message =
  let ctx = of_midstate hk.inner in
  update ctx message;
  let inner = final ctx in
  let ctx = of_midstate hk.outer in
  update ctx inner;
  final ctx

let hmac64 hk message =
  let ctx = of_midstate hk.inner in
  update ctx message;
  let inner = final ctx in
  let ctx = of_midstate hk.outer in
  update ctx inner;
  final64 ctx

let hmac ~key message = hmac_with (hmac_key ~key) message
let hmac_hex ~key message = to_hex (hmac ~key message)
