(** SHA-256 (FIPS 180-4) and HMAC-SHA-256 (RFC 2104), tuned for the
    per-packet hot path.

    §2.1.5 lists one-way hash functions (MD5, SHA-1) and MACs (HMAC) as
    the cryptographic toolbox of the detection protocols.  SipHash
    ({!Siphash}) is the fast per-packet fingerprint; this module provides
    the collision-resistant hash used where 64 bits are not enough — key
    derivation, summary digests for signatures, and the HMAC
    construction.

    The implementation works on native 63-bit [int]s (no boxed [Int32]
    arithmetic) and exposes a streaming {!init}/{!update}/{!final}
    interface, so large messages are hashed without a padded copy and
    HMAC keys can be expanded once into reusable ipad/opad midstates
    ({!hmac_key}). *)

(** {1 One-shot} *)

val digest : string -> string
(** Raw 32-byte SHA-256 digest. *)

val digest_hex : string -> string
(** Lowercase hex rendering of {!digest} (64 characters). *)

val digest64 : string -> int64
(** The first 8 digest bytes as a big-endian int64 — a convenient
    truncated form for summary digests. *)

val block_size : int
(** The SHA-256 block size in bytes (64). *)

(** {1 Streaming} *)

type ctx
(** An in-progress hash.  Not thread-safe; one ctx per digest. *)

val init : unit -> ctx
(** Fresh context (empty message). *)

val update : ?off:int -> ?len:int -> ctx -> string -> unit
(** Absorb [len] bytes of [s] starting at [off] (default: all of [s]).
    The only copying is of sub-block tails into the 64-byte block
    buffer.  Raises [Invalid_argument] on an out-of-range substring. *)

val final : ctx -> string
(** Pad, run the last compression and return the 32-byte digest.  The
    context must not be reused afterwards. *)

val final64 : ctx -> int64
(** Like {!final} but returns only the first 8 digest bytes (big-endian)
    without allocating the digest string. *)

(** {1 HMAC} *)

type hmac_key
(** A key expanded into its ipad/opad compression midstates.  Expanding
    once and reusing drops the per-message HMAC cost to one compression
    pass over the payload plus the fixed finalization blocks —
    {!Keyring} caches these per router pair. *)

val hmac_key : key:string -> hmac_key
(** Expand a key (of any length; keys longer than {!block_size} are
    hashed first, per RFC 2104). *)

val hmac_with : hmac_key -> string -> string
(** Raw 32-byte HMAC-SHA-256 tag under a precomputed key. *)

val hmac64 : hmac_key -> string -> int64
(** First 8 tag bytes as a big-endian int64 — the truncated per-packet
    MAC used by the traffic-validation protocols. *)

val hmac : key:string -> string -> string
(** One-shot [hmac_with (hmac_key ~key)]. *)

val hmac_hex : key:string -> string -> string
