(** The pre-rewrite Int32 SHA-256, kept as a correctness oracle for the
    optimized {!Sha256} and as the in-process "before" measurement for
    the BENCH_hotpath.json before/after comparison.  Same digest and
    HMAC semantics as {!Sha256}, an order of magnitude fewer tricks. *)

val digest : string -> string
(** 32-byte binary digest. *)

val digest_hex : string -> string

val digest64 : string -> int64
(** First 8 digest bytes as a big-endian [int64]. *)

val hmac : key:string -> string -> string
(** RFC 2104 HMAC-SHA-256, expanding [key] on every call. *)

val hmac_hex : key:string -> string -> string

val block_size : int
