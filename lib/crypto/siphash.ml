type key = { k0 : int64; k1 : int64 }

let key_of_ints k0 k1 = { k0; k1 }

let key_of_string s =
  let h0 = Fnv.hash_string s in
  let h1 = Fnv.hash_string (s ^ "\x01siphash-key-expansion") in
  { k0 = h0; k1 = h1 }

type state = { mutable v0 : int64; mutable v1 : int64; mutable v2 : int64; mutable v3 : int64 }

let rotl x b = Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

let sipround st =
  st.v0 <- Int64.add st.v0 st.v1;
  st.v1 <- rotl st.v1 13;
  st.v1 <- Int64.logxor st.v1 st.v0;
  st.v0 <- rotl st.v0 32;
  st.v2 <- Int64.add st.v2 st.v3;
  st.v3 <- rotl st.v3 16;
  st.v3 <- Int64.logxor st.v3 st.v2;
  st.v0 <- Int64.add st.v0 st.v3;
  st.v3 <- rotl st.v3 21;
  st.v3 <- Int64.logxor st.v3 st.v0;
  st.v2 <- Int64.add st.v2 st.v1;
  st.v1 <- rotl st.v1 17;
  st.v1 <- Int64.logxor st.v1 st.v2;
  st.v2 <- rotl st.v2 32

let init key =
  { v0 = Int64.logxor key.k0 0x736f6d6570736575L;
    v1 = Int64.logxor key.k1 0x646f72616e646f6dL;
    v2 = Int64.logxor key.k0 0x6c7967656e657261L;
    v3 = Int64.logxor key.k1 0x7465646279746573L }

let compress st m =
  st.v3 <- Int64.logxor st.v3 m;
  sipround st;
  sipround st;
  st.v0 <- Int64.logxor st.v0 m

let finalize st =
  st.v2 <- Int64.logxor st.v2 0xffL;
  sipround st;
  sipround st;
  sipround st;
  sipround st;
  Int64.logxor (Int64.logxor st.v0 st.v1) (Int64.logxor st.v2 st.v3)

let word_le s off len =
  (* Little-endian load of up to 7 tail bytes starting at [off]; full
     words go through [String.get_int64_le] (one load, no per-byte
     Int64 traffic). *)
  let w = ref 0L in
  for i = len - 1 downto 0 do
    w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int (Char.code s.[off + i]))
  done;
  !w

let hash key s =
  let st = init key in
  let len = String.length s in
  let full = len / 8 in
  for i = 0 to full - 1 do
    compress st (String.get_int64_le s (8 * i))
  done;
  let rem = len - (8 * full) in
  let last =
    Int64.logor (word_le s (8 * full) rem)
      (Int64.shift_left (Int64.of_int (len land 0xff)) 56)
  in
  compress st last;
  finalize st

let hash_int64s key words =
  let st = init key in
  let n = List.length words in
  List.iter (fun w -> compress st w) words;
  (* Trailing length block, mirroring the byte-string padding rule. *)
  compress st (Int64.shift_left (Int64.of_int ((8 * n) land 0xff)) 56);
  finalize st
