(* Ablations over the design choices DESIGN.md calls out:

   1. processing-jitter magnitude vs χ's calibrated sigma and detection
      quality (how much forwarding-plane noise the statistics absorb);
   2. validation round length τ vs detection latency (state vs latency);
   3. Πk+2 hash-range sampling fraction vs per-round detection
      probability and summary size (the §5.2.1 overhead knob);
   4. clock skew vs χ sensitivity (§7.3);
   5. link corruption vs χ false alarms (§4.2.1).

   Each ablation is an independent simulation sweep, so [eval ?jobs]
   fans the five parts out over a {!Pool} of domains. *)

open Core

let alarms_of run =
  List.filter (fun (r : Chi.report) -> r.Chi.alarm) run.Scenario.reports

let false_alarms_of run =
  List.filter
    (fun (r : Chi.report) -> r.Chi.end_time <= run.Scenario.attack_start)
    (alarms_of run)

let jitter_ablation () =
  let rows =
    List.map
      (fun jitter_bound ->
        let run =
          Scenario.run_droptail ~jitter_bound
            ~attack:(fun victims ->
              Some (Adversary.on_flows victims (Adversary.drop_when_queue_above 0.90)))
            ()
        in
        let alarms = alarms_of run in
        let latency =
          match alarms with
          | first :: _ ->
              Exp.float ~decimals:1 (first.Chi.end_time -. run.Scenario.attack_start)
          | [] -> Exp.text "-"
        in
        [ Exp.float ~decimals:0 (jitter_bound *. 1e6);
          Exp.int (List.length alarms);
          Exp.int (List.length (false_alarms_of run));
          latency ])
      [ 0.0; 100e-6; 300e-6; 1e-3; 3e-3 ]
  in
  Exp.section "Ablation 1: processing jitter vs chi calibration"
    [ Exp.table ~header:[ "jitter (us)"; "alarms"; "false"; "latency (s)" ] rows;
      Exp.Note
        ( "finding",
          "once per-packet jitter approaches the packet serialization time (~800 us here)      the error distribution grows tails the normal fit underestimates and false      alarms appear — chi depends on the paper's small-forwarding-jitter assumption"
        ) ]

let tau_ablation () =
  let rows =
    List.map
      (fun tau ->
        let run =
          Scenario.run_droptail ~tau
            ~attack:(fun victims ->
              Some (Adversary.on_flows victims (Adversary.drop_fraction ~seed:5 0.2)))
            ()
        in
        let alarms = alarms_of run in
        let latency =
          match alarms with
          | first :: _ ->
              Exp.float ~decimals:1 (first.Chi.end_time -. run.Scenario.attack_start)
          | [] -> Exp.text "-"
        in
        [ Exp.float ~decimals:1 tau;
          Exp.int (List.length alarms);
          Exp.int (List.length (false_alarms_of run));
          latency ])
      [ 0.5; 1.0; 2.0; 5.0 ]
  in
  Exp.section "Ablation 2: validation round length tau vs detection latency"
    [ Exp.table ~header:[ "tau (s)"; "alarms"; "false"; "latency (s)" ] rows;
      Exp.Note
        ( "finding",
          "sub-second rounds leave too few samples per round for the combined test      (occasional false alarm) while tau = 5 s only delays detection to the next      boundary — tau ~ 2 s balances latency and robustness"
        ) ]

let sampling_ablation () =
  let rt = Topology.Routing.compute (Topology.Generate.line ~n:6) in
  let rounds = 20 in
  let rows =
    List.map
      (fun fraction ->
        let sampling =
          if fraction >= 1.0 then None
          else
            Some
              (Crypto_sim.Sampling.create
                 ~key:(Crypto_sim.Siphash.key_of_string "ablation") ~fraction)
        in
        let detected = ref 0 in
        for round = 0 to rounds - 1 do
          let adversary = Rounds.dropper ~fraction:0.05 ~seed:round [ 2 ] in
          let segs =
            Pik2.detect_round ~rt ~k:1 ~adversary ?sampling ~packets_per_path:200 ~round ()
          in
          if List.exists (List.mem 2) segs then incr detected
        done;
        [ Exp.float ~decimals:2 fraction;
          Exp.int !detected;
          Exp.int rounds;
          Exp.floatf "%.0f fps/seg" (fraction *. 200.0) ])
      [ 1.0; 0.5; 0.2; 0.05 ]
  in
  Exp.section "Ablation 3: Pik+2 sampling fraction vs detection probability"
    [ Exp.table ~header:[ "fraction"; "det. rounds"; "of"; "summary state" ] rows;
      Exp.Note
        ( "finding",
          "a 5% secret hash-range sample still catches a 5% dropper in almost every      round at 1/20th the summary state — the 5.2.1 overhead knob is cheap"
        ) ]

let skew_ablation () =
  (* §7.3: clock desynchronization gets folded into the calibrated error,
     so it costs sensitivity rather than soundness.  One upstream
     neighbour's clock runs fast by the offset; the attacker drops the
     victims whenever the queue is 90% full. *)
  let rows =
    List.map
      (fun skew_s ->
        let g = Scenario.topology () in
        let net = Netsim.Net.create ~seed:21 ~queue:(Netsim.Net.Droptail 64000)
            ~jitter_bound:200e-6 g in
        let rt = Topology.Routing.compute g in
        Netsim.Net.use_routing net rt;
        let config = { Chi.default_config with Chi.tau = 2.0; learning_rounds = 4 } in
        let chi =
          Chi.deploy ~net ~rt ~router:3 ~next:4 ~config
            ~skew:(fun ~reporter -> if reporter = 0 then skew_s else 0.0)
            ()
        in
        ignore (Netsim.Tcp.connect net ~src:0 ~dst:4 ());
        ignore (Netsim.Tcp.connect net ~src:1 ~dst:4 ());
        let victim = Netsim.Tcp.connect net ~src:2 ~dst:4 () in
        Netsim.Router.set_behavior (Netsim.Net.router net 3)
          (Adversary.after 20.0
             (Adversary.on_flows [ Netsim.Tcp.flow_id victim ]
                (Adversary.drop_when_queue_above 0.90)));
        Netsim.Net.run ~until:60.0 net;
        let alarms = Chi.alarms chi in
        let false_alarms =
          List.filter (fun (r : Chi.report) -> r.Chi.end_time <= 20.0) alarms
        in
        let _, sigma = Chi.mu_sigma chi in
        [ Exp.float ~decimals:1 (skew_s *. 1000.0);
          Exp.float ~decimals:0 sigma;
          Exp.int (List.length alarms);
          Exp.int (List.length false_alarms) ])
      [ 0.0; 0.001; 0.005; 0.020; 0.100 ]
  in
  Exp.section "Ablation 4: clock skew vs chi sensitivity (queue-conditioned attack)"
    [ Exp.table ~header:[ "skew (ms)"; "sigma (B)"; "alarms"; "false" ] rows;
      Exp.Note
        ( "finding",
          "skew inflates the calibrated sigma (241 B clean, tens of kB at 100 ms), which      keeps chi sound (no false alarms) but erodes its power: the near-full-queue      attack needs headroom resolution finer than sigma, so detection degrades as      skew approaches the queue drain time — NTP-grade synchronization (7.3) keeps      the protocol sharp"
        ) ]

let corruption_ablation () =
  (* §4.2.1: benign interface errors lose packets on the wire; to chi
     they look like drops with headroom.  Sweep the bit-error floor and
     the min_suspicious dial on an attack-free run. *)
  let rows =
    List.concat_map
      (fun ber ->
        List.map
          (fun min_suspicious ->
            let g = Scenario.topology () in
            let net = Netsim.Net.create ~seed:21 ~queue:(Netsim.Net.Droptail 64000)
                ~jitter_bound:200e-6 g in
            let rt = Topology.Routing.compute g in
            Netsim.Net.use_routing net rt;
            Netsim.Net.set_link_corruption net ~src:0 ~dst:3 ber;
            let corrupted = ref 0 in
            Netsim.Net.subscribe_iface net (fun ev ->
                match ev.Netsim.Net.kind with
                | Netsim.Iface.Drop_corrupted _ -> incr corrupted
                | _ -> ());
            let config =
              { Chi.default_config with Chi.tau = 2.0; min_suspicious } in
            let chi = Chi.deploy ~net ~rt ~router:3 ~next:4 ~config () in
            List.iter (fun src -> ignore (Netsim.Tcp.connect net ~src ~dst:4 ()))
              [ 0; 1; 2 ];
            Netsim.Net.run ~until:60.0 net;
            [ Exp.floatf "%.0e" ber; Exp.int min_suspicious;
              Exp.int (List.length (Chi.alarms chi));
              Exp.int !corrupted ])
          [ 1; 3 ])
      [ 0.0; 1e-4; 1e-3 ]
  in
  Exp.section "Ablation 5: link corruption vs chi false alarms (no attack)"
    [ Exp.table ~header:[ "corrupt p"; "min_susp"; "false alarms"; "corrupted" ] rows;
      Exp.Note
        ( "finding",
          "a corrupting upstream link makes honest losses look malicious (they vanish      before the queue with headroom); raising min_suspicious buys tolerance at the      price of letting a one-packet-per-round attacker hide — the paper's clean-link      assumption is load-bearing"
        ) ]

let parts =
  [ jitter_ablation; tau_ablation; sampling_ablation; skew_ablation;
    corruption_ablation ]

let eval ?(jobs = 1) () =
  { Exp.id = "ablations"; sections = Pool.map ~jobs (fun part -> part ()) parts }

let render = Exp.render
let run () = render (eval ())
