(* The bench regression gate (`bench --check`).

   Pure band arithmetic plus the JSON spelunking needed to pull baseline
   numbers out of the recorded BENCH_*.json artifacts; the measuring
   itself stays in bench/main.ml.  Kept as a library so the band logic
   is unit-testable without running a single benchmark.

   Wall-clock numbers on a shared vCPU are noisy in one direction per
   metric kind (contention deflates throughput and inflates latency), so
   bands are asymmetric by design: a metric only fails in its
   regression direction, and each band carries both a multiplicative
   limit and an absolute slack so near-zero baselines (pooled
   words-per-event) don't turn measurement dust into failures. *)

type direction = Higher_better | Lower_better

type band = {
  metric : string;
  direction : direction;
  limit : float; (* > 1: allowed degradation factor *)
  slack : float; (* absolute headroom in the metric's own unit *)
}

type verdict = {
  metric : string;
  direction : direction;
  baseline : float;
  measured : float;
  limit : float;
  threshold : float; (* the value the measurement must not cross *)
  ok : bool;
}

let band ?(slack = 0.0) ~direction ~limit metric =
  if not (limit > 1.0) then invalid_arg "Benchgate.band: limit must exceed 1";
  if slack < 0.0 then invalid_arg "Benchgate.band: negative slack";
  { metric; direction; limit; slack }

let judge (b : band) ~baseline ~measured =
  let threshold, ok =
    match b.direction with
    | Lower_better ->
        let t = (baseline *. b.limit) +. b.slack in
        (t, measured <= t)
    | Higher_better ->
        let t = Float.max 0.0 ((baseline /. b.limit) -. b.slack) in
        (t, measured >= t)
  in
  { metric = b.metric; direction = b.direction; baseline; measured;
    limit = b.limit; threshold; ok }

let all_ok = List.for_all (fun v -> v.ok)

let render v =
  let arrow = match v.direction with Higher_better -> ">=" | Lower_better -> "<=" in
  Printf.sprintf "  %-44s %12.4g vs %12.4g baseline  (need %s %.4g)  %s" v.metric
    v.measured v.baseline arrow v.threshold
    (if v.ok then "ok" else "REGRESSION")

(* --- baseline extraction ---------------------------------------------- *)

module J = Telemetry.Export

let load_json path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match J.of_string (String.trim text) with
      | Ok doc -> Ok doc
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* Walk an object path, e.g. ["simulator"; "events_per_second"]. *)
let rec float_at doc = function
  | [] -> J.to_float doc
  | key :: rest -> Option.bind (J.member key doc) (fun v -> float_at v rest)

(* Find the element of a JSON list whose [key] field is [value] — how
   the BENCH artifacts key their per-mode / per-kernel rows. *)
let find_by doc ~field ~key ~value =
  match Option.bind (J.member field doc) J.to_list_opt with
  | None -> None
  | Some rows ->
      List.find_opt
        (fun row ->
          match Option.bind (J.member key row) J.to_string_opt with
          | Some s -> s = value
          | None -> false)
        rows
