(** The bench regression gate behind [bench --check].

    Band arithmetic and baseline-file spelunking for comparing fresh
    benchmark measurements against the recorded BENCH_*.json artifacts.
    Bands are one-sided: a throughput metric only fails low, a latency
    or allocation metric only fails high — on a shared vCPU the noise
    direction is known per metric kind, so a symmetric band would either
    miss regressions or flag neighbors' load.  Each band carries a
    multiplicative [limit] plus an absolute [slack] so near-zero
    baselines don't amplify measurement dust into failures. *)

type direction = Higher_better | Lower_better

type band = private {
  metric : string;
  direction : direction;
  limit : float;
  slack : float;
}

type verdict = {
  metric : string;
  direction : direction;
  baseline : float;
  measured : float;
  limit : float;
  threshold : float;  (** the boundary value implied by the band *)
  ok : bool;
}

val band : ?slack:float -> direction:direction -> limit:float -> string -> band
(** A tolerance band: [Lower_better] passes while
    [measured <= baseline * limit + slack]; [Higher_better] while
    [measured >= baseline / limit - slack].  Raises [Invalid_argument]
    on a limit not exceeding 1 or a negative slack. *)

val judge : band -> baseline:float -> measured:float -> verdict

val all_ok : verdict list -> bool

val render : verdict -> string
(** One aligned report line, ending in [ok] or [REGRESSION]. *)

val load_json : string -> (Telemetry.Export.json, string) result

val float_at : Telemetry.Export.json -> string list -> float option
(** Walk an object path ([["simulator"; "events_per_second"]]). *)

val find_by :
  Telemetry.Export.json ->
  field:string ->
  key:string ->
  value:string ->
  Telemetry.Export.json option
(** In [doc.field] (a list), the row whose [key] member is the string
    [value] — how the BENCH artifacts key per-mode/per-kernel rows. *)
