type value = Int of int | Float of float | Text of string

type cell = { show : string; value : value }

let int i = { show = string_of_int i; value = Int i }
let float ?(decimals = 1) x = { show = Printf.sprintf "%.*f" decimals x; value = Float x }
let floatf fmt x = { show = Printf.sprintf fmt x; value = Float x }
let text s = { show = s; value = Text s }

let number c =
  match c.value with
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Text _ -> None

type table = { header : string list; rows : cell list list }

type item = Table of table | Note of string * string | Raw of string

type section = { title : string; items : item list }

let section title items = { title; items }
let table ~header rows = Table { header; rows }

type result = { id : string; sections : section list }

(* --- rendering --------------------------------------------------------- *)

let render_item = function
  | Table t ->
      Util.row t.header;
      List.iter (fun cells -> Util.row (List.map (fun c -> c.show) cells)) t.rows
  | Note (k, v) -> Util.kv k v
  | Raw s -> print_string s

let render_section s =
  Util.banner s.title;
  List.iter render_item s.items

let render r = List.iter render_section r.sections

(* --- JSON export ------------------------------------------------------- *)

let json_of_value = function
  | Int i -> Telemetry.Export.Int i
  | Float f -> Telemetry.Export.Float f
  | Text s -> Telemetry.Export.String s

let json_of_cell c =
  let open Telemetry.Export in
  Assoc [ ("show", String c.show); ("value", json_of_value c.value) ]

let json_of_item =
  let open Telemetry.Export in
  function
  | Table t ->
      Assoc
        [ ("kind", String "table");
          ("header", List (List.map (fun h -> String h) t.header));
          ("rows",
           List (List.map (fun cells -> List (List.map json_of_cell cells)) t.rows)) ]
  | Note (k, v) ->
      Assoc [ ("kind", String "note"); ("key", String k); ("value", String v) ]
  | Raw s -> Assoc [ ("kind", String "raw"); ("text", String s) ]

let json_of_section s =
  let open Telemetry.Export in
  Assoc
    [ ("title", String s.title); ("items", List (List.map json_of_item s.items)) ]

let json_of_result r =
  let open Telemetry.Export in
  Assoc
    [ ("id", String r.id);
      ("sections", List (List.map json_of_section r.sections)) ]

(* --- lookups ----------------------------------------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let find_section r ~prefix =
  List.find_opt (fun s -> starts_with ~prefix s.title) r.sections

let first_table s =
  List.find_map (function Table t -> Some t | _ -> None) s.items

let column t name =
  let rec index i = function
    | [] -> None
    | h :: _ when h = name -> Some i
    | _ :: tl -> index (i + 1) tl
  in
  match index 0 t.header with
  | None -> []
  | Some i -> List.filter_map (fun cells -> List.nth_opt cells i) t.rows

(* --- registry entries --------------------------------------------------- *)

type cost = Quick | Moderate | Heavy

type entry = { id : string; doc : string; cost : cost; eval : unit -> result }
