(** The typed experiment API.

    Every experiment module exposes [eval : unit -> Exp.result] — the
    pure computation, returning the tables, key/value findings and
    freeform blocks the paper artifact consists of — and renders it
    with {!render} (the classic [Util] table output).  Because the
    result is plain data, it can be checked by tests, exported as one
    {!Telemetry.Export} JSON document, compared across runs, and
    computed on a worker domain ({!Pool}) with the rendering done
    serially afterwards.

    A {!cell} carries both the semantic value (for assertions and
    JSON) and the display string (so rendering reproduces the exact
    table formatting the figure used). *)

type value = Int of int | Float of float | Text of string

type cell = { show : string;  (** what the table prints *)
              value : value   (** what tests and JSON consume *) }

val int : int -> cell
val float : ?decimals:int -> float -> cell
(** [float x] renders with [%.*f] (default 1 decimal). *)

val floatf : (float -> string, unit, string) format -> float -> cell
(** Custom display format over a float value, e.g. [floatf "%.2e"]. *)

val text : string -> cell

val number : cell -> float option
(** The cell's value as a float ([Int] widened, [Text] -> [None]). *)

type table = { header : string list; rows : cell list list }

type item =
  | Table of table
  | Note of string * string  (** a [Util.kv] line *)
  | Raw of string            (** printed verbatim (histograms, preambles) *)

type section = { title : string; items : item list }

val section : string -> item list -> section
val table : header:string list -> cell list list -> item

type result = { id : string; sections : section list }

(** {1 Rendering} *)

val render : result -> unit
(** Print every section: banner, then items in order (tables via
    [Util.row], notes via [Util.kv], raw blocks verbatim). *)

(** {1 JSON export} *)

val json_of_result : result -> Telemetry.Export.json

(** {1 Lookups (for tests and tooling)} *)

val find_section : result -> prefix:string -> section option
(** First section whose title starts with [prefix]. *)

val first_table : section -> table option

val column : table -> string -> cell list
(** Cells of the named header column ([] if absent). *)

(** {1 The registry entry} *)

type cost =
  | Quick     (** sub-second: safe for every [dune runtest] *)
  | Moderate  (** a few seconds *)
  | Heavy     (** tens of seconds: long simulations *)

type entry = {
  id : string;            (** CLI subcommand name *)
  doc : string;           (** one-line description *)
  cost : cost;
  eval : unit -> result;
}
