(* Figure 6.2: the confidence value of the single packet loss test.

   c_single = P(X <= qlimit - qpred - ps) for the calibrated error
   X ~ N(mu, sigma): plotted against the predicted queue occupancy at the
   loss instant.  Near-full queue -> the loss is explainable as
   congestion (low confidence); any headroom -> malicious. *)

let eval () =
  let qlimit = 64000.0 and ps = 1000 in
  let mu = 0.0 and sigma = 800.0 in
  let rows =
    List.map
      (fun qpred ->
        let headroom = qlimit -. qpred -. float_of_int ps in
        let c = Mrstats.Erf.normal_cdf ~mu ~sigma headroom in
        [ Exp.float ~decimals:0 qpred; Exp.float ~decimals:0 headroom;
          Exp.float ~decimals:6 c ])
      [ 0.0; 16000.0; 32000.0; 48000.0; 56000.0; 60000.0; 61000.0; 62000.0; 62500.0;
        63000.0; 63500.0; 64000.0 ]
  in
  { Exp.id = "confidence";
    sections =
      [ Exp.section "Figure 6.2: confidence value for the single packet loss test"
          [ Exp.Raw
              (Printf.sprintf "  qlimit = %.0f B, packet = %d B, X ~ N(%.0f, %.0f^2)\n"
                 qlimit ps mu sigma);
            Exp.table ~header:[ "qpred (B)"; "headroom"; "c_single" ] rows ] ] }

let render = Exp.render
let run () = render (eval ())
