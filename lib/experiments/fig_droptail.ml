(* Figures 6.5-6.9: Protocol χ on the Emulab-style drop-tail bottleneck.

   Fig 6.5 no attack; Fig 6.6 attack 1 (drop 20% of the selected flows);
   Fig 6.7 attack 2 (drop the selected flows when the queue is 90% full);
   Fig 6.8 attack 3 (95% full); Fig 6.9 attack 4 (drop the victim's SYN
   packets). *)

let no_attack () =
  Scenario.droptail_section ~title:"Figure 6.5: no attack (drop-tail)"
    (Scenario.run_droptail ~attack:(fun _ -> None) ())

let attack1 () =
  Scenario.droptail_section
    ~title:"Figure 6.6: attack 1 - drop 20% of the selected flows"
    (Scenario.run_droptail
       ~attack:(fun victims ->
         Some (Core.Adversary.on_flows victims (Core.Adversary.drop_fraction ~seed:5 0.2)))
       ())

let attack2 () =
  Scenario.droptail_section
    ~title:"Figure 6.7: attack 2 - drop the selected flows when the queue is 90% full"
    (Scenario.run_droptail
       ~attack:(fun victims ->
         Some (Core.Adversary.on_flows victims (Core.Adversary.drop_when_queue_above 0.90)))
       ())

let attack3 () =
  Scenario.droptail_section
    ~title:"Figure 6.8: attack 3 - drop the selected flows when the queue is 95% full"
    (Scenario.run_droptail
       ~attack:(fun victims ->
         Some (Core.Adversary.on_flows victims (Core.Adversary.drop_when_queue_above 0.95)))
       ())

let attack4 () =
  Scenario.droptail_section
    ~title:"Figure 6.9: attack 4 - drop the victim's SYN packets"
    (Scenario.run_droptail ~victim_connections:true
       ~attack:(fun _ -> Some Core.Adversary.drop_syn)
       ())

let eval () =
  { Exp.id = "droptail";
    sections = [ no_attack (); attack1 (); attack2 (); attack3 (); attack4 () ] }

let render = Exp.render
let run () = render (eval ())
