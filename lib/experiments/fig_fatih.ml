(* Figure 5.7: Fatih in progress on the Abilene topology.

   The timeline of the dissertation's experiment: a stable network,
   round-trip measurements between New York and Sunnyvale (~50 ms over
   the Kansas City path), the Kansas City router compromised at ~117 s to
   drop 20% of its transit traffic, detection by the terminal routers of
   the monitored 3-segments within one 5 s validation round, and
   rerouting through the southern path (~56 ms) after the OSPF delay/hold
   timers. *)

open Netsim
module Ab = Topology.Abilene

type outcome = {
  detections : Core.Fatih.detection list;
  updates : Core.Response.event list;
  fingerprints : int;
  words : int;
  rtt_before : float;        (* mean RTT in [60, attack) *)
  rtt_after : float;         (* mean RTT after the last routing update *)
  pings_lost : int;
  attack_time : float;
}

let attack_time = 117.0
let duration = 200.0

let simulate ?(exchange = Core.Fatih.Full_sets) () =
  let g = Ab.graph () in
  let net = Net.create ~seed:42 ~jitter_bound:100e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  let config = { Core.Fatih.default_config with Core.Fatih.exchange } in
  let fatih = Core.Fatih.deploy ~net ~rt ~config () in
  (* Inter-PoP background traffic crossing the backbone. *)
  let pairs =
    [ (Ab.New_york, Ab.Sunnyvale); (Ab.Sunnyvale, Ab.New_york);
      (Ab.Chicago, Ab.Los_angeles); (Ab.Los_angeles, Ab.Chicago);
      (Ab.Washington_dc, Ab.Seattle); (Ab.Seattle, Ab.Washington_dc);
      (Ab.Atlanta, Ab.Denver); (Ab.Denver, Ab.Atlanta);
      (Ab.Indianapolis, Ab.Houston); (Ab.Houston, Ab.Indianapolis) ]
  in
  List.iter
    (fun (a, b) ->
      ignore
        (Flow.cbr net ~src:(Ab.id a) ~dst:(Ab.id b) ~rate_pps:100.0 ~size:600
           ~start:0.0 ~stop:duration))
    pairs;
  let ping =
    Ping.start net ~src:(Ab.id Ab.New_york) ~dst:(Ab.id Ab.Sunnyvale) ~interval:1.0
      ~start:1.0 ~stop:(duration -. 2.0) ()
  in
  (* The compromise: Kansas City drops 20% of transit packets. *)
  Router.set_behavior
    (Net.router net (Ab.id Ab.Kansas_city))
    (Core.Adversary.after attack_time (Core.Adversary.drop_fraction ~seed:13 0.2));
  Net.run ~until:duration net;
  let updates = Core.Response.updates (Core.Fatih.response fatih) in
  let last_update =
    List.fold_left (fun acc (u : Core.Response.event) -> Float.max acc u.Core.Response.time)
      0.0 updates
  in
  let mean_rtt lo hi =
    let xs =
      List.filter_map
        (fun (t, rtt) -> if t >= lo && t < hi then Some rtt else None)
        (Ping.samples ping)
    in
    if xs = [] then nan
    else List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  { detections = Core.Fatih.detections fatih;
    updates;
    fingerprints = Core.Fatih.fingerprints_observed fatih;
    words = Core.Fatih.words_exchanged fatih;
    rtt_before = mean_rtt 60.0 attack_time;
    rtt_after = mean_rtt (last_update +. 2.0) duration;
    pings_lost = Ping.lost ping;
    attack_time }

let seg_names seg = String.concat "-" (List.map Ab.name seg)

let eval () =
  let o = simulate () in
  let reconciled = simulate ~exchange:Core.Fatih.Reconcile () in
  let items =
    (Exp.Note
       ( "attack (drop 20% of transit)",
         Printf.sprintf "t = %.0f s at %s" o.attack_time
           (Ab.name (Ab.id Ab.Kansas_city)) )
     :: List.map
          (fun (d : Core.Fatih.detection) ->
            let a, b = d.Core.Fatih.detected_by in
            Exp.Note
              ( Printf.sprintf "detection t = %.1f s" d.Core.Fatih.time,
                Printf.sprintf "segment %s by %s/%s (%d/%d packets missing)"
                  (seg_names d.Core.Fatih.segment) (Ab.name a) (Ab.name b)
                  d.Core.Fatih.missing d.Core.Fatih.sent ))
          o.detections)
    @ List.map
        (fun (u : Core.Response.event) ->
          Exp.Note
            ( Printf.sprintf "routing update t = %.1f s" u.Core.Response.time,
              Printf.sprintf "%d path-segments excised"
                (List.length u.Core.Response.forbidden) ))
        o.updates
    @ [ Exp.Note
          ( "NY-Sunnyvale RTT before attack",
            Printf.sprintf "%.1f ms" (o.rtt_before *. 1000.0) );
        Exp.Note
          ( "NY-Sunnyvale RTT after reroute",
            Printf.sprintf "%.1f ms" (o.rtt_after *. 1000.0) );
        Exp.Note ("probe packets lost to the attack", string_of_int o.pings_lost);
        Exp.Note
          ( "monitoring overhead",
            Printf.sprintf
              "%d fingerprints computed; %d words of summaries exchanged (%.1f kB/s)"
              o.fingerprints o.words
              (float_of_int o.words *. 8.0 /. duration /. 1000.0) );
        Exp.Note
          ( "with Appendix A reconciliation",
            Printf.sprintf
              "%d words exchanged (%.1f kB/s) for the same detections (%d vs %d)"
              reconciled.words
              (float_of_int reconciled.words *. 8.0 /. duration /. 1000.0)
              (List.length reconciled.detections) (List.length o.detections) );
        Exp.Note ("paper reference", "RTT 50 ms -> 56 ms; detection within tau = 5 s")
      ]
  in
  { Exp.id = "fatih";
    sections =
      [ Exp.section
          "Figure 5.7: Fatih in progress (Abilene, Kansas City compromised)" items ]
  }

let render = Exp.render
let run () = render (eval ())
