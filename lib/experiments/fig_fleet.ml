(* Network-wide localization trials: the per-interface architecture
   (Fig 2.3) evaluated quantitatively.

   On an ISP-like topology with a CBR mesh, a randomly chosen router is
   compromised per trial; a χ monitor runs on every directed link.  The
   table reports, per trial, which routers the fleet accused and how
   fast — localization accuracy (should always name exactly the
   attacker) and the absence of false accusations. *)

open Netsim

let trial ~seed ~attacker =
  let g = Topology.Generate.ispish ~seed:5 ~n:12 ~duplex_links:20 ~max_degree:6 () in
  let net = Net.create ~seed ~jitter_bound:150e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  let config = { Core.Chi.default_config with Core.Chi.tau = 1.0; learning_rounds = 3 } in
  let fleet = Core.Chi_fleet.deploy ~net ~rt ~config () in
  let malicious = ref 0 in
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with Router.Malicious_drop _ -> incr malicious | _ -> ());
  (* Flows chosen so the attacker actually carries transit (preferential
     topologies concentrate transit on hubs), plus random background. *)
  let n = Topology.Graph.size g in
  let transit_pairs =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun d ->
            if s = d then None
            else begin
              match Topology.Routing.path rt ~src:s ~dst:d with
              | Some p when List.mem attacker p && List.hd p <> attacker
                            && List.nth p (List.length p - 1) <> attacker ->
                  Some (s, d)
              | _ -> None
            end)
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let chosen = List.filteri (fun i _ -> i < 8) transit_pairs in
  List.iter
    (fun (s, d) ->
      ignore (Flow.cbr net ~src:s ~dst:d ~rate_pps:60.0 ~size:500 ~start:0.0 ~stop:40.0))
    chosen;
  let rng = Random.State.make [| seed; 0xf1ee7 |] in
  for _ = 1 to 8 do
    let s = Random.State.int rng n and d = Random.State.int rng n in
    if s <> d then
      ignore (Flow.cbr net ~src:s ~dst:d ~rate_pps:60.0 ~size:500 ~start:0.0 ~stop:40.0)
  done;
  Router.set_behavior (Net.router net attacker)
    (Core.Adversary.after 15.0 (Core.Adversary.drop_fraction ~seed 0.4));
  Net.run ~until:40.0 net;
  let suspects = Core.Chi_fleet.suspected_routers fleet in
  let latency =
    match Core.Chi_fleet.suspects fleet with
    | s :: _ -> Exp.float ~decimals:1 (s.Core.Chi_fleet.first_alarm -. 15.0)
    | [] -> Exp.text "-"
  in
  (suspects, latency, !malicious, List.length chosen)

let eval () =
  let correct = ref 0 and total = ref 0 and leaves = ref 0 in
  let rows =
    List.mapi
      (fun i attacker ->
        incr total;
        let suspects, latency, malicious, _ = trial ~seed:(100 + i) ~attacker in
        let verdict =
          match suspects with
          | [ r ] when r = attacker ->
              incr correct;
              "exact"
          | [] ->
              if malicious = 0 then begin
                incr leaves;
                "leaf: no transit (fate-sharing, 2.1.4)"
              end
              else "MISSED"
          | _ -> "imprecise"
        in
        [ Exp.int (i + 1); Exp.int attacker; Exp.int malicious;
          Exp.text ("[" ^ String.concat ";" (List.map string_of_int suspects) ^ "]");
          latency; Exp.text verdict ])
      [ 1; 3; 5; 7; 9; 11 ]
  in
  { Exp.id = "fleet";
    sections =
      [ Exp.section "Network-wide chi (Fig 2.3 architecture): localization trials"
          [ Exp.table
              ~header:[ "trial"; "attacker"; "mal drops"; "accused"; "latency (s)";
                        "verdict" ]
              rows;
            Exp.Note
              ( "summary",
                Printf.sprintf
                  "%d/%d transit-carrying attackers localized exactly; %d leaf routers had no         transit to attack (a compromised access router can only hurt its own hosts,         which no routing remedy helps — 2.1.4)"
                  !correct (!total - !leaves) !leaves ) ] ] }

let render = Exp.render
let run () = render (eval ())
