type series = {
  k : int;
  max_pr : float;
  mean_pr : float;
  median_pr : float;
}

let topology_of = function
  | `Sprintlink -> Topology.Generate.sprintlink_like ()
  | `Ebone -> Topology.Generate.ebone_like ()

let name_of = function `Sprintlink -> "Sprintlink-like (315/972)" | `Ebone -> "EBONE-like (87/161)"

let sweep_rt ~protocol ~rt ~ks () =
  List.map
    (fun k ->
      let pr =
        match protocol with
        | `Pi2 -> Core.Pi2.pr rt ~k
        | `Pik2 -> Core.Pik2.pr rt ~k
      in
      let max_pr, mean_pr, median_pr = Topology.Segments.pr_stats pr in
      { k; max_pr; mean_pr; median_pr })
    ks

let sweep ~protocol ~topology ?(ks = [ 1; 2; 3; 4; 5; 6; 7; 8 ]) () =
  sweep_rt ~protocol ~rt:(Topology.Routing.compute (topology_of topology)) ~ks ()

let figure ~title ~protocol ~topology ~rt =
  Exp.section
    (Printf.sprintf "%s - %s" title (name_of topology))
    [ Exp.table
        ~header:[ "k"; "max |Pr|"; "avg |Pr|"; "med |Pr|" ]
        (List.map
           (fun s ->
             [ Exp.int s.k; Exp.float s.max_pr; Exp.float s.mean_pr;
               Exp.float s.median_pr ])
           (sweep_rt ~protocol ~rt ~ks:[ 1; 2; 3; 4; 5; 6; 7; 8 ] ())) ]

let eval () =
  (* One routing computation per topology, shared by both protocols. *)
  let sprintlink = Topology.Routing.compute (topology_of `Sprintlink) in
  let ebone = Topology.Routing.compute (topology_of `Ebone) in
  { Exp.id = "pr";
    sections =
      [ figure ~title:"Figure 5.2: Protocol Pi2, segments monitored per router"
          ~protocol:`Pi2 ~topology:`Sprintlink ~rt:sprintlink;
        figure ~title:"Figure 5.2 (EBONE): Protocol Pi2" ~protocol:`Pi2
          ~topology:`Ebone ~rt:ebone;
        figure ~title:"Figure 5.4: Protocol Pik+2, segments monitored per router"
          ~protocol:`Pik2 ~topology:`Sprintlink ~rt:sprintlink;
        figure ~title:"Figure 5.4 (EBONE): Protocol Pik+2" ~protocol:`Pik2
          ~topology:`Ebone ~rt:ebone ] }

let render = Exp.render
let run () = render (eval ())
