(** Figures 5.2 and 5.4: the number of path-segments |Pr| an individual
    router monitors under Π2 and Πk+2, as a function of the
    AdjacentFault(k) bound, on Sprintlink-like and EBONE-like
    topologies. *)

type series = {
  k : int;
  max_pr : float;
  mean_pr : float;
  median_pr : float;
}

val sweep :
  protocol:[ `Pi2 | `Pik2 ] ->
  topology:[ `Sprintlink | `Ebone ] ->
  ?ks:int list ->
  unit ->
  series list
(** Compute the three Fig 5.2/5.4 curves (default k = 1..8). *)

val eval : unit -> Exp.result
(** Four sections (Π2/Πk+2 × Sprintlink/EBONE), each one table with
    columns [k], [max |Pr|], [avg |Pr|], [med |Pr|]. *)

val render : Exp.result -> unit

val run : unit -> unit
(** [render (eval ())]: print both figures for both topologies. *)
