(* Figure 6.3: the queue prediction error q_act - q_pred is normally
   distributed (the NS-simulation validation of §6.4.1).

   We run the Fig 6.4 bottleneck under TCP congestion with per-packet
   processing jitter, calibrate χ for many rounds, and show the sampled
   error distribution with its moments against a fitted normal. *)

open Netsim
module G = Topology.Graph

let collect () =
  let g = G.create ~n:5 in
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 1 3;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 2 3;
  G.add_duplex g ~bw:1.25e6 ~delay:0.005 3 4;
  let net = Net.create ~seed:7 ~jitter_bound:2e-3 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  (* Calibrate for the whole run: every round is a learning round. *)
  let config = { Core.Chi.default_config with Core.Chi.tau = 1.0; learning_rounds = 1000 } in
  let chi = Core.Chi.deploy ~net ~rt ~router:3 ~next:4 ~config () in
  (* A heterogeneous mix (three MSSes plus two UDP sizes) so prediction
     errors take many values rather than multiples of one packet size. *)
  List.iter
    (fun (src, mss) -> ignore (Tcp.connect net ~src ~dst:4 ~mss ()))
    [ (0, 1460); (1, 960); (2, 536) ];
  ignore (Flow.poisson net ~src:0 ~dst:4 ~rate_pps:60.0 ~size:300 ~start:0.0 ~stop:60.0);
  ignore (Flow.poisson net ~src:1 ~dst:4 ~rate_pps:40.0 ~size:700 ~start:0.0 ~stop:60.0);
  Net.run ~until:60.0 net;
  Core.Chi.error_samples chi

let eval () =
  let samples = Array.of_list (collect ()) in
  let mu = Mrstats.Descriptive.mean samples in
  let sigma = Mrstats.Descriptive.stddev samples in
  let h =
    Mrstats.Histogram.create ~lo:(mu -. (4.0 *. sigma)) ~hi:(mu +. (4.0 *. sigma)) ~bins:17
  in
  Array.iter (Mrstats.Histogram.add h) samples;
  { Exp.id = "qerror";
    sections =
      [ Exp.section
          "Figure 6.3: distribution of the queue prediction error (NS-style run)"
          [ Exp.Note ("samples", string_of_int (Array.length samples));
            Exp.Note ("mean (B)", Printf.sprintf "%.1f" mu);
            Exp.Note ("std dev (B)", Printf.sprintf "%.1f" sigma);
            Exp.Note
              ("skewness", Printf.sprintf "%.3f" (Mrstats.Descriptive.skewness samples));
            Exp.Note
              ( "excess kurtosis",
                Printf.sprintf "%.3f" (Mrstats.Descriptive.kurtosis_excess samples) );
            Exp.Raw (Mrstats.Histogram.render_with_normal ~width:40 h ~mu ~sigma) ] ]
  }

let render = Exp.render
let run () = render (eval ())
