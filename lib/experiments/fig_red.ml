(* Figures 6.11-6.16: Protocol χ with RED queues (§6.5.3).

   Fig 6.11 no attack; 6.12 drop the selected flows when the average
   queue exceeds 45 kB; 6.13 when it exceeds 54 kB; 6.14 drop 10% of the
   selected flows above 45 kB; 6.15 drop 5%; 6.16 SYN targeting. *)

let no_attack () =
  Scenario.red_section ~title:"Figure 6.11: no attack (RED)"
    (Scenario.run_red ~attack:(fun _ -> None) ())

let avg_attack ~title ~avg () =
  Scenario.red_section ~title
    (Scenario.run_red
       ~attack:(fun victims ->
         Some
           (Core.Adversary.on_flows victims (Core.Adversary.drop_when_red_avg_above avg)))
       ())

let fraction_attack ?duration ~title ~fraction ~avg () =
  Scenario.red_section ~title
    (Scenario.run_red ?duration
       ~attack:(fun victims ->
         Some
           (Core.Adversary.on_flows victims
              (Core.Adversary.drop_fraction_when_red_avg_above ~seed:5 ~fraction ~avg ())))
       ())

let syn_attack () =
  Scenario.red_section
    ~title:"Figure 6.16: attack 5 - drop the victim's SYN packets (RED)"
    (Scenario.run_red ~victim_connections:true
       ~attack:(fun _ -> Some Core.Adversary.drop_syn)
       ())

let eval () =
  { Exp.id = "red";
    sections =
      [ no_attack ();
        avg_attack
          ~title:"Figure 6.12: attack 1 - drop the selected flows when avg queue > 45000 B"
          ~avg:45000.0 ();
        avg_attack
          ~title:"Figure 6.13: attack 2 - drop the selected flows when avg queue > 54000 B"
          ~avg:54000.0 ();
        fraction_attack
          ~title:"Figure 6.14: attack 3 - drop 10% of the selected flows when avg > 45000 B"
          ~fraction:0.10 ~avg:45000.0 ();
        (* The 5% drip needs a longer horizon before its per-flow excess
           clears the Bonferroni-corrected significance bar (see
           EXPERIMENTS.md). *)
        fraction_attack ~duration:400.0
          ~title:"Figure 6.15: attack 4 - drop 5% of the selected flows when avg > 45000 B"
          ~fraction:0.05 ~avg:45000.0 ();
        syn_attack () ] }

let render = Exp.render
let run () = render (eval ())
