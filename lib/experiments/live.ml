(* mrdetect top: a terminal dashboard over the always-on Stats
   collectors, rendered from whatever the simulation has recorded so
   far.  Pure string building — the driver decides how to paint it
   (ANSI repaint on a TTY, a single final frame otherwise). *)

module Stats = Netsim.Stats
module Ts = Telemetry.Timeseries
module Hist = Telemetry.Hist

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

(* Unicode block sparkline over the last [width] buckets. *)
let spark ?(width = 48) values =
  let n = Array.length values in
  let first = max 0 (n - width) in
  let vmax = Array.fold_left max 1 values in
  let buf = Buffer.create (4 * width) in
  for i = first to n - 1 do
    let level = values.(i) * (Array.length blocks - 1) / vmax in
    Buffer.add_string buf blocks.(level)
  done;
  Buffer.contents buf

let series_counts ts = Array.init (Ts.used ts) (Ts.bucket_count ts)

(* Mean rate over the trailing second of recorded buckets. *)
let recent_rate ts =
  let used = Ts.used ts in
  if used = 0 then 0.0
  else begin
    let res = Ts.resolution ts in
    let window = max 1 (int_of_float (Float.round (1.0 /. res))) in
    let first = max 0 (used - window) in
    let n = ref 0 in
    for i = first to used - 1 do
      n := !n + Ts.bucket_count ts i
    done;
    float_of_int !n /. (float_of_int (used - first) *. res)
  end

let ms v = Printf.sprintf "%.1f ms" (v *. 1e3)

let render ~now ~duration st =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "mrdetect top — %.1f / %.1f sim s" now duration;
  line "";
  let series =
    [ ("injected", Stats.injected st); ("delivered", Stats.delivered st);
      ("dropped", Stats.dropped st); ("malice", Stats.malice st);
      ("alarms", Stats.alarms st) ]
  in
  List.iter
    (fun (name, ts) ->
      line "  %-9s %8d  %7.1f/s  %s" name (Ts.total_count ts) (recent_rate ts)
        (spark (series_counts ts)))
    series;
  line "";
  let lat = Stats.delivery_latency st in
  if Hist.count lat > 0 then
    line "  latency   p50 %s  p95 %s  p99 %s  (%d delivered)" (ms (Hist.p50 lat))
      (ms (Hist.p95 lat)) (ms (Hist.p99 lat)) (Hist.count lat);
  List.iter
    (fun (proto, h) ->
      line "  round %-8s p50 %s  p95 %s  (%d rounds)" proto (ms (Hist.p50 h))
        (ms (Hist.p95 h)) (Hist.count h))
    (Stats.round_durations st);
  List.iter
    (fun (det, h) ->
      line "  detect %-7s p50 %.1f s  (%d alarms past attack start)" det
        (Hist.p50 h) (Hist.count h))
    (Stats.detection_latencies st);
  if Stats.ctrl_sends st > 0 then
    line "  ctrl      %d sends, %d timeouts, attempts p95 %.0f"
      (Stats.ctrl_sends st) (Stats.ctrl_timeouts st)
      (Hist.p95 (Stats.ctrl_attempts_hist st));
  line "";
  line "  queue depth (per-bucket mean)";
  for r = 0 to Stats.routers st - 1 do
    let ts = Stats.queue_depth st r in
    let means =
      Array.init (Ts.used ts) (fun i ->
          let c = Ts.bucket_count ts i in
          if c = 0 then 0
          else int_of_float (Float.round (Ts.bucket_sum ts i /. float_of_int c)))
    in
    line "  r%-2d %s" r (spark means)
  done;
  Buffer.contents buf
