(** `mrdetect top`: terminal dashboard over the always-on
    {!Netsim.Stats} collectors.

    {!render} builds one frame — headline series with Unicode-block
    sparklines and trailing rates, latency/round/detection quantiles,
    control-channel counters, per-router queue depths.  The driver
    repaints it in place on a TTY and prints only the final frame
    otherwise. *)

val render : now:float -> duration:float -> Netsim.Stats.t -> string
