let default_jobs () = Domain.recommended_domain_count ()

(* Identical serial/parallel results require that a task never sees PRNG
   state leaked from whichever task happened to run before it on the
   same domain, so each task starts from a state derived only from its
   own index.  Experiments seed their own Random.State values anyway;
   this guards the global generator. *)
let run_task f xs i =
  Random.set_state (Random.State.make [| 0x6d7264; i |]);
  f xs.(i)

let map ~jobs f tasks =
  let xs = Array.of_list tasks in
  let n = Array.length xs in
  let results = Array.make n None in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      results.(i) <- Some (try Ok (run_task f xs i) with e -> Error e)
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (run_task f xs i) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains
  end;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
       results)
