(** A small OCaml 5 domain pool for embarrassingly parallel experiment
    evaluation.

    Tasks are pulled from a shared atomic work queue by [jobs] domains
    (the calling domain participates, so [jobs] is the total
    parallelism).  Results always come back in input order, and before
    each task runs the global PRNG of the executing domain is reset to
    a deterministic per-task state — so [map ~jobs:4] returns exactly
    the value [map ~jobs:1] does, bit for bit, whatever the
    interleaving.  With [jobs <= 1] (the serial fallback that
    single-core hosts get by default) no domain is spawned at all. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: 1 on a single-core machine,
    which makes the serial path the default there. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] evaluates [f] over [xs] on [min jobs (length xs)]
    domains and returns the results in the order of [xs].  If any task
    raises, the first exception (in input order) is re-raised after all
    domains have drained. *)
