open Exp

let all =
  [ { id = "pr"; doc = "Figures 5.2/5.4: per-router |Pr| vs k"; cost = Heavy;
      eval = Fig_pr.eval };
    { id = "state"; doc = "Tables 5.1/7.2: counter state, WATCHERS vs Pi2 vs Pik+2";
      cost = Moderate; eval = Tab_state.eval };
    { id = "fatih"; doc = "Figure 5.7: Fatih timeline on Abilene"; cost = Heavy;
      eval = Fig_fatih.eval };
    { id = "confidence"; doc = "Figure 6.2: single-loss confidence curve";
      cost = Quick; eval = Fig_confidence.eval };
    { id = "qerror"; doc = "Figure 6.3: queue prediction error distribution";
      cost = Moderate; eval = Fig_qerror.eval };
    { id = "droptail"; doc = "Figures 6.5-6.9: Protocol chi, drop-tail attacks";
      cost = Moderate; eval = Fig_droptail.eval };
    { id = "threshold"; doc = "Section 6.4.3: chi vs static threshold";
      cost = Moderate; eval = Tab_threshold.eval };
    { id = "red"; doc = "Figures 6.11-6.16: Protocol chi with RED"; cost = Heavy;
      eval = Fig_red.eval };
    { id = "reconcile"; doc = "Appendix A: set reconciliation vs Bloom";
      cost = Quick; eval = Tab_reconcile.eval };
    { id = "baselines";
      doc = "Ch. 3 literature baselines: Herzberg/SecTrace/properties";
      cost = Quick; eval = Tab_baselines.eval };
    { id = "models";
      doc = "Section 6.1.2: analytic congestion models vs measurement";
      cost = Moderate; eval = Tab_models.eval };
    { id = "ablations";
      doc = "Design-choice ablations: jitter, tau, sampling, clock skew";
      cost = Heavy; eval = (fun () -> Ablations.eval ()) };
    { id = "comm"; doc = "Section 7.2: summary exchange cost by mechanism";
      cost = Moderate; eval = Tab_comm.eval };
    { id = "latency"; doc = "Detection latency vs attack intensity"; cost = Heavy;
      eval = Tab_latency.eval };
    { id = "fleet"; doc = "Network-wide chi localization trials (Fig 2.3)";
      cost = Moderate; eval = Fig_fleet.eval };
    { id = "watchers"; doc = "WATCHERS-live vs chi at packet level"; cost = Quick;
      eval = Tab_watchers.eval };
    { id = "robustness";
      doc = "False-accusation rate vs benign control-plane loss (fatih)";
      cost = Moderate; eval = Fig_robustness.eval_robustness };
    { id = "churn";
      doc = "Detection latency and accuracy vs benign churn (fatih)";
      cost = Moderate; eval = Fig_robustness.eval_churn };
    { id = "byzantine";
      doc = "Framing resistance vs protocol-faulty adversaries (fatih)";
      cost = Moderate; eval = Fig_robustness.eval_byzantine } ]

let quick = List.filter (fun e -> e.cost = Quick) all

let find id = List.find_opt (fun e -> e.id = id) all

let eval_all ?(jobs = 1) ?(entries = all) () =
  Pool.map ~jobs (fun e -> e.eval ()) entries

let json_document results =
  let open Telemetry.Export in
  Assoc
    [ ("schema", String "mrdetect-experiments-v1");
      ("results", List (List.map Exp.json_of_result results)) ]
