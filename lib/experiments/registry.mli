(** The single source of truth for the experiment suite.

    [bin/mrdetect.ml] (subcommands, [all], [quick]), [bench/main.ml]
    (the reproduction pass and the serial-vs-parallel benchmark) and
    [doc/gen_index.ml] (the odoc experiment index) all consume this
    list instead of keeping their own copies. *)

val all : Exp.entry list
(** Every experiment, in the dissertation's presentation order. *)

val quick : Exp.entry list
(** The sub-second subset ([Exp.Quick]) behind the [@quick] dune
    alias. *)

val find : string -> Exp.entry option

val eval_all :
  ?jobs:int -> ?entries:Exp.entry list -> unit -> Exp.result list
(** Evaluate [entries] (default {!all}) on a {!Pool} of [jobs] domains
    (default 1 — the serial path).  Results come back in registry
    order whatever the parallelism, and are bit-identical across
    [jobs] values. *)

val json_document : Exp.result list -> Telemetry.Export.json
(** The merged [mrdetect-experiments-v1] document: deterministic in
    the result list alone, so a [--jobs 4] run writes byte-identical
    JSON to a [--jobs 1] run. *)
