(* mrdetect report: turn an mrdetect-metrics-v1 document into the
   engine-independent mrdetect-report-v1 form, and render that as a
   self-contained HTML dashboard (inline SVG, no external assets).

   The report schema deliberately normalizes away everything that is
   allowed to differ between the classic and sharded engines or between
   machines: the [engine] self-profiling section, the wall-clock
   [phases], and the [scenario.shards] field all vanish.  What remains —
   scenario, packet conservation, detection outcome, and the always-on
   stats collectors — is byte-identical for every shard count K >= 1 of
   the same scenario (and stable run-to-run for K = 0), which is what
   the report-determinism golden test pins. *)

module J = Telemetry.Export

let schema = "mrdetect-report-v1"

(* --- normalization ---------------------------------------------------- *)

let of_metrics doc =
  match J.member "schema" doc with
  | Some (J.String "mrdetect-metrics-v1") -> (
      let field name =
        match J.member name doc with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "metrics document has no %S section" name)
      in
      let ( let* ) = Result.bind in
      let* scenario = field "scenario" in
      let* conservation = field "conservation" in
      let* detection = field "detection" in
      let* stats = field "stats" in
      if stats = J.Null then
        Error "metrics document has no stats section (re-run with --metrics)"
      else
        let scenario =
          match scenario with
          | J.Assoc kvs ->
              J.Assoc (List.filter (fun (k, _) -> k <> "shards") kvs)
          | other -> other
        in
        Ok
          (J.Assoc
             [ ("schema", J.String schema);
               ("scenario", scenario);
               ("conservation", conservation);
               ("detection", detection);
               ("stats", stats) ]))
  | Some (J.String other) ->
      Error (Printf.sprintf "expected an mrdetect-metrics-v1 document, got %S" other)
  | _ -> Error "not an mrdetect metrics document (no schema field)"

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match J.of_string (String.trim text) with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok doc -> of_metrics doc)

(* --- HTML rendering --------------------------------------------------- *)

let escape_html s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let ints_of_json j =
  match J.to_list_opt j with
  | None -> []
  | Some xs -> List.filter_map J.to_int xs

let floats_of_json j =
  match J.to_list_opt j with
  | None -> []
  | Some xs -> List.filter_map J.to_float xs

(* A sparkline: per-bucket counts as an SVG polyline, y scaled to the
   series max.  Values and geometry print with %g, so the markup is
   deterministic for identical inputs. *)
let svg_sparkline ?(width = 360) ?(height = 48) counts =
  let n = List.length counts in
  if n = 0 then "<svg width=\"360\" height=\"48\"></svg>"
  else begin
    let vmax = List.fold_left max 1 counts in
    let pt i c =
      let x = float_of_int i *. float_of_int width /. float_of_int (max 1 (n - 1)) in
      let y =
        float_of_int height
        -. (float_of_int c /. float_of_int vmax *. float_of_int (height - 4))
        -. 2.0
      in
      Printf.sprintf "%g,%g" x y
    in
    let points = String.concat " " (List.mapi pt counts) in
    Printf.sprintf
      "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\"><polyline \
       points=\"%s\" fill=\"none\" stroke=\"#2563eb\" stroke-width=\"1.5\"/></svg>"
      width height width height points
  end

(* A histogram: one rect per bucket, height scaled to the max count,
   labelled by its upper edge. *)
let svg_hist ?(width = 360) ?(height = 72) uppers counts =
  let n = List.length counts in
  if n = 0 then "<svg width=\"360\" height=\"72\"></svg>"
  else begin
    let vmax = List.fold_left max 1 counts in
    let bw = float_of_int width /. float_of_int n in
    let rects =
      List.mapi
        (fun i c ->
          let h =
            float_of_int c /. float_of_int vmax *. float_of_int (height - 4)
          in
          let upper =
            match List.nth_opt uppers i with
            | Some u when u = Float.infinity -> "+Inf"
            | Some u -> fnum u
            | None -> ""
          in
          Printf.sprintf
            "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" \
             fill=\"#059669\"><title>le %s: %d</title></rect>"
            (float_of_int i *. bw)
            (float_of_int height -. h)
            (Float.max 1.0 (bw -. 1.0))
            h upper c)
        counts
    in
    Printf.sprintf
      "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">%s</svg>" width
      height width height
      (String.concat "" rects)
  end

let series_card j =
  let name =
    Option.value ~default:"?"
      (Option.bind (J.member "name" j) J.to_string_opt)
  in
  let res =
    Option.value ~default:0.0 (Option.bind (J.member "resolution" j) J.to_float)
  in
  let counts =
    match J.member "counts" j with Some c -> ints_of_json c | None -> []
  in
  let total = List.fold_left ( + ) 0 counts in
  Printf.sprintf
    "<div class=\"card\"><h3>%s</h3><p>%d events, %s s/bucket</p>%s</div>"
    (escape_html name) total (fnum res)
    (svg_sparkline counts)

let hist_card j =
  let name =
    Option.value ~default:"?"
      (Option.bind (J.member "name" j) J.to_string_opt)
  in
  let get_f key =
    Option.value ~default:0.0 (Option.bind (J.member key j) J.to_float)
  in
  let count = Option.value ~default:0 (Option.bind (J.member "count" j) J.to_int) in
  let counts =
    match J.member "counts" j with Some c -> ints_of_json c | None -> []
  in
  let uppers =
    match J.member "uppers" j with Some u -> floats_of_json u | None -> []
  in
  Printf.sprintf
    "<div class=\"card\"><h3>%s</h3><p>%d samples &middot; p50 %s &middot; p95 \
     %s &middot; p99 %s</p>%s</div>"
    (escape_html name) count
    (fnum (get_f "p50"))
    (fnum (get_f "p95"))
    (fnum (get_f "p99"))
    (svg_hist uppers counts)

let scenario_row (k, v) =
  let text =
    match v with
    | J.String s -> s
    | J.Int i -> string_of_int i
    | J.Float f -> fnum f
    | J.Null -> "&mdash;"
    | other -> J.to_string other
  in
  Printf.sprintf "<tr><th>%s</th><td>%s</td></tr>" (escape_html k)
    (escape_html text)

let kv_table title rows =
  Printf.sprintf "<div class=\"card\"><h3>%s</h3><table>%s</table></div>" title
    (String.concat "" rows)

let links_table stats =
  match Option.bind (J.member "links" stats) J.to_list_opt with
  | None | Some [] -> ""
  | Some links ->
      let row j =
        let g key = Option.value ~default:0 (Option.bind (J.member key j) J.to_int) in
        Printf.sprintf
          "<tr><td>%d&rarr;%d</td><td>%d</td><td>%d</td></tr>"
          (g "src") (g "dst") (g "tx") (g "drops")
      in
      Printf.sprintf
        "<div class=\"card\"><h3>links</h3><table><tr><th>link</th><th>tx</th>\
         <th>drops</th></tr>%s</table></div>"
        (String.concat "" (List.map row links))

let routers_section stats =
  match Option.bind (J.member "routers" stats) J.to_list_opt with
  | None | Some [] -> ""
  | Some routers ->
      let card j =
        let r = Option.value ~default:0 (Option.bind (J.member "router" j) J.to_int) in
        let counts, sums =
          match J.member "queue_depth" j with
          | Some q ->
              ( (match J.member "counts" q with Some c -> ints_of_json c | None -> []),
                match J.member "sums" q with Some s -> floats_of_json s | None -> [] )
          | None -> ([], [])
        in
        (* Queue depth is sampled event-weighted: plot the per-bucket
           mean depth (sum / count), rounded to an int for the sparkline. *)
        let means =
          List.map2
            (fun c s ->
              if c = 0 then 0 else int_of_float (Float.round (s /. float_of_int c)))
            counts sums
        in
        Printf.sprintf
          "<div class=\"card\"><h3>router %d queue depth</h3>%s</div>" r
          (svg_sparkline means)
      in
      String.concat "" (List.map card routers)

let html doc =
  match J.member "schema" doc with
  | Some (J.String s) when s = schema ->
      let stats = Option.value ~default:(J.Assoc []) (J.member "stats" doc) in
      let section name =
        match Option.bind (J.member name stats) J.to_list_opt with
        | Some xs -> xs
        | None -> []
      in
      let scenario_rows =
        match J.member "scenario" doc with
        | Some (J.Assoc kvs) -> List.map scenario_row kvs
        | _ -> []
      in
      let assoc_rows name =
        match J.member name doc with
        | Some (J.Assoc kvs) -> List.map scenario_row kvs
        | _ -> []
      in
      let ctrl_rows =
        match J.member "ctrl" stats with
        | Some (J.Assoc kvs) -> List.map scenario_row kvs
        | _ -> []
      in
      let body =
        String.concat "\n"
          ([ kv_table "scenario" scenario_rows;
             kv_table "conservation" (assoc_rows "conservation");
             kv_table "detection" (assoc_rows "detection");
             kv_table "control channel" ctrl_rows ]
          @ List.map series_card (section "series")
          @ List.map hist_card (section "hists")
          @ [ links_table stats; routers_section stats ])
      in
      Ok
        (Printf.sprintf
           "<!doctype html>\n\
            <html><head><meta charset=\"utf-8\"><title>mrdetect report</title>\n\
            <style>\n\
            body{font:14px system-ui,sans-serif;margin:24px;background:#f8fafc;\
            color:#0f172a}\n\
            h1{font-size:20px}\n\
            .grid{display:flex;flex-wrap:wrap;gap:12px}\n\
            .card{background:#fff;border:1px solid #e2e8f0;border-radius:8px;\
            padding:12px 16px}\n\
            .card h3{margin:0 0 4px;font-size:13px;font-weight:600}\n\
            .card p{margin:0 0 6px;color:#475569;font-size:12px}\n\
            table{border-collapse:collapse;font-size:12px}\n\
            th,td{text-align:left;padding:2px 10px 2px 0;color:#334155}\n\
            th{font-weight:600}\n\
            </style></head>\n\
            <body><h1>mrdetect report</h1>\n\
            <div class=\"grid\">\n%s\n</div></body></html>\n"
           body)
  | _ -> Error "not an mrdetect-report-v1 document"

let html_of_metrics doc = Result.bind (of_metrics doc) html
