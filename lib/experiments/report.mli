(** `mrdetect report`: the engine-independent run report.

    Consumes an [mrdetect-metrics-v1] document (written by
    [simulate --metrics]) and produces the [mrdetect-report-v1] form:
    scenario, packet conservation, detection outcome and the always-on
    {!Netsim.Stats} collectors, with every engine-specific field —
    [engine], [phases], [scenario.shards] — normalized away.  The
    result is byte-identical for every shard count [K >= 1] of the same
    scenario, the contract the report-determinism golden test pins.

    {!html} renders the report as a single self-contained HTML page:
    inline SVG sparklines for the time series, inline SVG bars for the
    histograms, no external scripts, styles or fonts. *)

val schema : string
(** ["mrdetect-report-v1"]. *)

val of_metrics : Telemetry.Export.json -> (Telemetry.Export.json, string) result
(** Normalize a metrics document into a report document.  Errors on a
    wrong schema or a missing/null [stats] section. *)

val load : string -> (Telemetry.Export.json, string) result
(** Read and normalize a metrics JSON file. *)

val html : Telemetry.Export.json -> (string, string) result
(** Render a report document as a self-contained HTML dashboard. *)

val html_of_metrics : Telemetry.Export.json -> (string, string) result
(** {!of_metrics} followed by {!html}. *)
