(* The shared Chapter 6 experiment scaffold: the Fig 6.4 simple topology
   (three sources feeding the validated bottleneck r -> rd), long-lived
   TCP through the bottleneck, an optional victim workload, and a
   compromised-router behaviour switched on mid-run. *)

open Netsim
module G = Topology.Graph

let bottleneck_router = 3
let sink = 4
let default_duration = 60.0
let default_attack_start = 20.0

let topology () =
  let g = G.create ~n:5 in
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 bottleneck_router;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 1 bottleneck_router;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 2 bottleneck_router;
  G.add_duplex g ~bw:1.25e6 ~delay:0.005 bottleneck_router sink;
  g

type ground_truth = {
  mutable malicious_drops : int;
  mutable congestion_drops : int;
  mutable red_drops : int;
}

let watch_ground_truth net =
  let gt = { malicious_drops = 0; congestion_drops = 0; red_drops = 0 } in
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with
      | Router.Malicious_drop _ -> gt.malicious_drops <- gt.malicious_drops + 1
      | _ -> ());
  Net.subscribe_iface net (fun ev ->
      if ev.Net.router = bottleneck_router && ev.Net.next = sink then begin
        match ev.Net.kind with
        | Iface.Drop_congestion _ -> gt.congestion_drops <- gt.congestion_drops + 1
        | Iface.Drop_red_early _ -> gt.red_drops <- gt.red_drops + 1
        | _ -> ()
      end);
  gt

(* Background plus victim traffic; returns the victim flow ids. *)
let offer_traffic ?(victim_connections = false) net =
  (* For the SYN-targeting scenarios the background transfers complete
     after ~30 s, leaving the lull during which the victim's retries meet
     an uncongested queue — the regime in which a SYN drop is
     inexplicable. *)
  let background_bytes = if victim_connections then Some 16_000_000 else None in
  let background =
    List.map (fun src -> Tcp.connect net ~src ~dst:sink ?total_bytes:background_bytes ())
      [ 0; 1 ]
  in
  let victim = Tcp.connect net ~src:2 ~dst:sink () in
  let victims =
    if victim_connections then begin
      (* Attack 4/5 target: fresh short connections trying to open. *)
      let extras =
        List.map
          (fun start -> Tcp.connect net ~src:2 ~dst:sink ~total_bytes:8000 ~start ())
          [ 25.0; 30.0; 35.0; 40.0; 45.0 ]
      in
      Tcp.flow_id victim :: List.map Tcp.flow_id extras
    end
    else [ Tcp.flow_id victim ]
  in
  ignore background;
  victims

type droptail_run = {
  reports : Core.Chi.report list;
  truth : ground_truth;
  attack_start : float;
  victim_flows : int list;
  victim_meters : Meter.flow_series list;
      (* per-victim delivered-bytes series, binned by tau *)
}

let run_droptail ?(seed = 21) ?(duration = default_duration)
    ?(attack_start = default_attack_start) ?(victim_connections = false)
    ?(jitter_bound = 200e-6) ?(tau = 2.0) ?probe ~attack () =
  let g = topology () in
  let net = Net.create ~seed ~queue:(Net.Droptail 64000) ~jitter_bound g in
  Net.set_probe net probe;
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  let config = { Core.Chi.default_config with Core.Chi.tau = tau; learning_rounds = 4 } in
  let chi = Core.Chi.deploy ~net ~rt ~router:bottleneck_router ~next:sink ~config () in
  let truth = watch_ground_truth net in
  let victim_flows = offer_traffic ~victim_connections net in
  let victim_meters =
    List.map (fun flow -> Meter.flow_throughput net ~node:sink ~flow ~bucket:tau)
      victim_flows
  in
  (match attack victim_flows with
  | Some behavior ->
      Router.set_behavior (Net.router net bottleneck_router)
        (Core.Adversary.after attack_start behavior)
  | None -> ());
  Net.run ~until:duration net;
  { reports = Core.Chi.reports chi; truth; attack_start; victim_flows; victim_meters }

type red_run = {
  red_reports : Core.Chi_red.report list;
  red_truth : ground_truth;
  red_attack_start : float;
}

let red_params = Red.default_params

let red_duration = 100.0

let run_red ?(seed = 21) ?(duration = red_duration)
    ?(attack_start = default_attack_start) ?(victim_connections = false) ~attack () =
  let g = topology () in
  let net = Net.create ~seed ~queue:(Net.Red red_params) ~jitter_bound:200e-6 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  let config = { Core.Chi_red.default_config with Core.Chi_red.tau = 2.0 } in
  let chi =
    Core.Chi_red.deploy ~net ~rt ~router:bottleneck_router ~next:sink ~params:red_params
      ~config ()
  in
  let truth = watch_ground_truth net in
  let victim_flows = offer_traffic ~victim_connections net in
  (* Unresponsive background load keeps the EWMA visiting the upper RED
     region, where the §6.5.3 conditioned attacks trigger. *)
  if not victim_connections then
    ignore
      (Flow.cbr net ~src:0 ~dst:sink ~rate_pps:300.0 ~size:1000 ~start:5.0
         ~stop:duration);
  (match attack victim_flows with
  | Some behavior ->
      Router.set_behavior (Net.router net bottleneck_router)
        (Core.Adversary.after attack_start behavior)
  | None -> ());
  Net.run ~until:duration net;
  { red_reports = Core.Chi_red.reports chi; red_truth = truth;
    red_attack_start = attack_start }

(* Typed figure sections (rendered by Exp.render). *)

let droptail_section ~title (run : droptail_run) =
  (* Victim goodput per round bin — what the paper's Figs 6.6-6.9 plot
     next to the detector's confidence. *)
  let victim_rate at =
    let bytes_per_s =
      List.fold_left
        (fun acc m ->
          List.fold_left
            (fun acc (bin_end, rate) ->
              if Float.abs (bin_end -. at) < 0.5 then acc +. rate else acc)
            acc (Meter.series m))
        0.0 run.victim_meters
    in
    bytes_per_s /. 1000.0
  in
  let rows =
    List.filter_map
      (fun (r : Core.Chi.report) ->
        if (not r.Core.Chi.learning) && (r.Core.Chi.losses <> [] || r.Core.Chi.alarm)
        then
          Some
            [ Exp.float ~decimals:0 r.Core.Chi.end_time;
              Exp.int r.Core.Chi.arrivals;
              Exp.int (List.length r.Core.Chi.losses);
              Exp.int r.Core.Chi.predicted_congestive;
              Exp.float ~decimals:3 r.Core.Chi.c_single_max;
              (match r.Core.Chi.c_combined with
              | Some c -> Exp.float ~decimals:3 c
              | None -> Exp.text "-");
              Exp.float ~decimals:1 (victim_rate r.Core.Chi.end_time);
              Exp.text (if r.Core.Chi.alarm then "ALARM" else "") ]
        else None)
      run.reports
  in
  let alarms = List.filter (fun r -> r.Core.Chi.alarm) run.reports in
  let false_alarms =
    List.filter (fun (r : Core.Chi.report) -> r.Core.Chi.end_time <= run.attack_start) alarms
  in
  Exp.section title
    ([ Exp.Note
         ( "ground truth",
           Printf.sprintf "%d congestion drops, %d malicious drops"
             run.truth.congestion_drops run.truth.malicious_drops );
       Exp.table
         ~header:
           [ "t (s)"; "arrivals"; "losses"; "congestive"; "c_single"; "c_comb";
             "vict kB/s"; "alarm" ]
         rows;
       Exp.Note ("alarming rounds", string_of_int (List.length alarms));
       Exp.Note ("false alarms (pre-attack)", string_of_int (List.length false_alarms))
     ]
    @
    match alarms with
    | first :: _ when run.truth.malicious_drops > 0 ->
        [ Exp.Note
            ( "detection latency",
              Printf.sprintf "%.1f s after attack start"
                (first.Core.Chi.end_time -. run.attack_start) ) ]
    | _ -> [])

let red_section ~title (run : red_run) =
  let rows =
    List.filter_map
      (fun (r : Core.Chi_red.report) ->
        if (not r.Core.Chi_red.learning)
           && (r.Core.Chi_red.losses <> [] || r.Core.Chi_red.alarm)
        then
          Some
            [ Exp.float ~decimals:0 r.Core.Chi_red.end_time;
              Exp.int r.Core.Chi_red.arrivals;
              Exp.int (List.length r.Core.Chi_red.losses);
              Exp.float ~decimals:1 r.Core.Chi_red.expected_red_drops;
              Exp.text
                (Printf.sprintf "%.1e" r.Core.Chi_red.tail_probability
                ^ "/"
                ^ Printf.sprintf "%.1e" r.Core.Chi_red.cumulative_tail);
              Exp.text (if r.Core.Chi_red.alarm then "ALARM" else "") ]
        else None)
      run.red_reports
  in
  let alarms = List.filter (fun r -> r.Core.Chi_red.alarm) run.red_reports in
  let false_alarms =
    List.filter
      (fun (r : Core.Chi_red.report) -> r.Core.Chi_red.end_time <= run.red_attack_start)
      alarms
  in
  Exp.section title
    [ Exp.Note
        ( "ground truth",
          Printf.sprintf "%d red drops, %d forced drops, %d malicious drops"
            run.red_truth.red_drops run.red_truth.congestion_drops
            run.red_truth.malicious_drops );
      Exp.table
        ~header:[ "t (s)"; "arrivals"; "losses"; "E[red]"; "tail/cum"; "alarm" ]
        rows;
      Exp.Note ("alarming rounds", string_of_int (List.length alarms));
      Exp.Note ("false alarms (pre-attack)", string_of_int (List.length false_alarms))
    ]
