open Netsim

type topo = Line | Ring | Grid | Abilene

let topo_of_string = function
  | "line" -> Ok Line
  | "ring" -> Ok Ring
  | "grid" -> Ok Grid
  | "abilene" -> Ok Abilene
  | s -> Error (Printf.sprintf "unknown topology %S (line|ring|grid|abilene)" s)

type attack =
  | No_attack
  | Drop_all
  | Drop_fraction of float
  | Drop_syn
  | Queue_conditioned of float

let attack_of_string s ~fraction =
  match s with
  | "none" -> Ok No_attack
  | "drop-all" -> Ok Drop_all
  | "drop-fraction" -> Ok (Drop_fraction fraction)
  | "syn" -> Ok Drop_syn
  | "queue" -> Ok (Queue_conditioned fraction)
  | s -> Error (Printf.sprintf "unknown attack %S (none|drop-all|drop-fraction|syn|queue)" s)

let graph_of = function
  | Line -> Topology.Generate.line ~n:6
  | Ring -> Topology.Generate.ring ~n:8
  | Grid -> Topology.Generate.grid ~rows:3 ~cols:4
  | Abilene -> Topology.Abilene.graph ()

(* --- configuration ----------------------------------------------------- *)

module Config = struct
  type t = {
    topo : topo;
    protocol : string;
    attack : attack;
    attacker : int;
    duration : float;
    seed : int;
    flows : int;
    trace : int;
    metrics : string option;
    journal : string option;
    trace_out : string option;
    trace_sample : float;
    faults : string option;
    shards : int;
  }

  let default =
    { topo = Ring; protocol = "fatih"; attack = Drop_fraction 0.2; attacker = 2;
      duration = 60.0; seed = 1; flows = 8; trace = 0; metrics = None;
      journal = None; trace_out = None; trace_sample = 1.0; faults = None;
      shards = 0 }

  let validate c =
    Core.Detectors.register_all ();
    let fraction_of = function
      | Drop_fraction f | Queue_conditioned f -> Some f
      | No_attack | Drop_all | Drop_syn -> None
    in
    if not (Float.is_finite c.duration) || c.duration <= 0.0 then
      Error (Printf.sprintf "duration must be positive (got %g s)" c.duration)
    else if c.flows < 1 then
      Error (Printf.sprintf "need at least one flow (got %d)" c.flows)
    else if c.trace < 0 then
      Error (Printf.sprintf "trace length cannot be negative (got %d)" c.trace)
    else if not (Float.is_finite c.trace_sample)
            || c.trace_sample < 0.0 || c.trace_sample > 1.0 then
      Error
        (Printf.sprintf "trace sample rate must lie in [0,1] (got %g)"
           c.trace_sample)
    else if Core.Detector.find c.protocol = None then
      Error
        (Printf.sprintf "unknown protocol %S (%s)" c.protocol
           (String.concat "|" (Core.Detector.names ())))
    else begin
      let n = Topology.Graph.size (graph_of c.topo) in
      if c.attacker < 0 || c.attacker >= n then
        Error
          (Printf.sprintf "attacker %d outside this topology's routers [0,%d)"
             c.attacker n)
      else if c.shards < 0 || c.shards > n then
        Error
          (Printf.sprintf
             "shards must lie in [0,%d] for this topology's %d routers (got %d)"
             n n c.shards)
      else begin
        match fraction_of c.attack with
        | Some f when not (Float.is_finite f) || f < 0.0 || f > 1.0 ->
            Error (Printf.sprintf "fraction must lie in [0,1] (got %g)" f)
        | _ -> Ok c
      end
    end

  let make ?(protocol = default.protocol) ?(attack = default.attack)
      ?(attacker = default.attacker) ?(duration = default.duration)
      ?(seed = default.seed) ?(flows = default.flows) ?(trace = default.trace)
      ?metrics ?journal ?trace_out ?(trace_sample = default.trace_sample) ?faults
      ?(shards = default.shards) topo =
    validate
      { topo; protocol; attack; attacker; duration; seed; flows; trace; metrics;
        journal; trace_out; trace_sample; faults; shards }

  let make_exn ?protocol ?attack ?attacker ?duration ?seed ?flows ?trace ?metrics
      ?journal ?trace_out ?trace_sample ?faults ?shards topo =
    match
      make ?protocol ?attack ?attacker ?duration ?seed ?flows ?trace ?metrics
        ?journal ?trace_out ?trace_sample ?faults ?shards topo
    with
    | Ok c -> c
    | Error msg -> invalid_arg ("Simulate.Config.make: " ^ msg)

  let of_cmdline ~topology ~protocol ~attack ~fraction ~attacker ~duration ~seed
      ~flows ~trace ~metrics ~journal ~trace_out ~trace_sample ~faults ~shards =
    let ( let* ) = Result.bind in
    let* topo = topo_of_string topology in
    let* attack = attack_of_string attack ~fraction in
    validate
      { topo; protocol; attack; attacker; duration; seed; flows; trace; metrics;
        journal; trace_out; trace_sample; faults; shards }
end

let behavior_of = function
  | No_attack -> None
  | Drop_all -> Some Core.Adversary.drop_all
  | Drop_fraction f -> Some (Core.Adversary.drop_fraction ~seed:9 f)
  | Drop_syn -> Some Core.Adversary.drop_syn
  | Queue_conditioned f -> Some (Core.Adversary.drop_when_queue_above f)

(* --- telemetry export ------------------------------------------------- *)

let scrape_per_router net probe =
  let reg = Probe.registry probe in
  let g = Net.graph net in
  for r = 0 to Topology.Graph.size g - 1 do
    let router = Net.router net r in
    let labels = [ ("router", string_of_int r) ] in
    let set name help v =
      Telemetry.Metrics.set
        (Telemetry.Metrics.gauge reg name ~help ~labels)
        (float_of_int v)
    in
    set "router_received_packets" "packets handed to the router"
      (Router.received_packets router);
    set "router_forwarded_packets" "packets the router forwarded"
      (Router.forwarded_packets router);
    set "router_delivered_packets" "packets delivered locally"
      (Router.delivered_packets router);
    let tx_p, tx_b, drops =
      List.fold_left
        (fun (p, b, d) i ->
          (p + Iface.tx_packets i, b + Iface.tx_bytes i, d + Iface.dropped_packets i))
        (0, 0, 0) (Router.ifaces router)
    in
    set "router_tx_packets" "packets serialized onto outgoing links" tx_p;
    set "router_tx_bytes" "bytes serialized onto outgoing links" tx_b;
    set "router_iface_dropped_packets" "packets its interfaces discarded" drops
  done

let summary_json ~scenario ~attack_start net probe profile =
  let open Telemetry.Export in
  let sim = Net.sim net in
  let cons = Probe.conservation probe in
  let cpu = Net.cpu_time_in_run net in
  let events = Net.events_processed net in
  let detection =
    [ ("first_alarm_time",
       match Probe.first_alarm_time probe with Some t -> Float t | None -> Null);
      ("attack_start", Float attack_start);
      ("latency_seconds",
       match Probe.first_alarm_time probe with
       | Some t when t >= attack_start -> Float (t -. attack_start)
       | Some _ | None -> Null) ]
  in
  let engine =
    [ ("events_processed", Int events);
      ("cpu_seconds_in_run", Float cpu);
      ("events_per_cpu_second",
       if cpu > 0.0 then Float (float_of_int events /. cpu) else Null);
      ("sim_seconds", Float (Sim.now sim));
      ("journal_total", Int (Telemetry.Journal.total (Probe.journal probe)));
      ("journal_dropped", Int (Telemetry.Journal.dropped (Probe.journal probe))) ]
  in
  let engine =
    match Net.shard_engine net with
    | None -> engine
    | Some sh ->
        engine
        @ [ ("shards", Int (Shard.k sh));
            ("epochs_run", Int (Shard.epochs_run sh));
            ("windows_run", Int (Shard.windows_run sh));
            ("cross_shard_messages", Int (Shard.cross_messages sh)) ]
  in
  Assoc
    [ ("schema", String "mrdetect-metrics-v1");
      ("scenario", Assoc scenario);
      ("conservation",
       Assoc
         [ ("injected", Int cons.Probe.total_injected);
           ("delivered", Int cons.Probe.total_delivered);
           ("dropped", Int cons.Probe.total_dropped);
           ("fragmented", Int cons.Probe.total_fragmented);
           ("in_flight", Int cons.Probe.in_flight) ]);
      ("detection", Assoc detection);
      ("engine", Assoc engine);
      ("phases", Telemetry.Profile.json profile);
      ("metrics", json_of_registry (Probe.registry probe));
      ("stats",
       match Net.stats net with Some st -> Stats.to_json st | None -> Null) ]

let write_metrics path doc net probe =
  (* A .prom / .txt suffix selects the Prometheus text exposition format;
     anything else gets the JSON document. *)
  if Filename.check_suffix path ".prom" || Filename.check_suffix path ".txt" then begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Telemetry.Export.prometheus_of_registry
                            (Probe.registry probe));
        match Net.stats net with
        | Some st -> output_string oc (Stats.prometheus st)
        | None -> ())
  end
  else Telemetry.Export.write_file path doc

let write_journal path probe =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Probe.write_journal probe oc)

(* --- the scenario ----------------------------------------------------- *)

let run ?on_progress ?(progress_interval = 0.5) (config : Config.t) =
  let { Config.topo; protocol; attack; attacker; duration; seed; flows; trace;
        metrics; journal; trace_out; trace_sample; faults; shards } =
    match Config.validate config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Simulate.run: " ^ msg)
  in
  let detector =
    match Core.Detector.find protocol with
    | Some d -> d
    | None -> assert false (* validate checked the registry *)
  in
  let g = graph_of topo in
  let n = Topology.Graph.size g in
  (* Load and check the benign fault plan before simulating anything. *)
  let fault_schedule =
    Option.map
      (fun path ->
        let s = Faults.Schedule.load path in
        Faults.Schedule.validate_exn ~graph:g s;
        s)
      faults
  in
  (* Fail on an unwritable export path now, not after simulating. *)
  let check_writable = function
    | None -> ()
    | Some path -> close_out (open_out path)
  in
  check_writable metrics;
  check_writable journal;
  check_writable trace_out;
  let profile = Telemetry.Profile.create () in
  let span_tracer =
    match trace_out with
    | None -> None
    | Some _ -> Some (Telemetry.Span.create ~sample:trace_sample ~seed ())
  in
  let probe =
    (* Fault injection always carries a probe: the oracle needs the
       journaled fault records and verdicts to score the run. *)
    if metrics <> None || journal <> None || Option.is_some span_tracer
       || fault_schedule <> None || on_progress <> None
    then
      Some
        (Probe.create
           ~journal_capacity:(if journal = None then 4096 else 262144)
           ?tracer:span_tracer ())
    else None
  in
  let write_trace () =
    match (trace_out, span_tracer) with
    | Some path, Some sp -> Telemetry.Trace_export.write path sp
    | _ -> ()
  in
  let attack_start = duration /. 3.0 in
  let net, rt, pairs, malicious, congestion, tracer =
    Telemetry.Profile.time profile "setup" (fun () ->
        let net = Net.create ~seed ~jitter_bound:200e-6 ~shards g in
        Net.set_probe net probe;
        (* Arm the detection-latency histograms before any traffic runs. *)
        (match Net.stats net with
        | Some st -> Stats.set_attack_start st attack_start
        | None -> ());
        let rt = Topology.Routing.compute g in
        Net.use_routing net rt;
        (* Ground truth. *)
        let malicious = ref 0 and congestion = ref 0 in
        Net.subscribe_router net (fun ev ->
            match ev.Net.kind with Router.Malicious_drop _ -> incr malicious | _ -> ());
        Net.subscribe_iface net (fun ev ->
            match ev.Net.kind with Iface.Drop_congestion _ -> incr congestion | _ -> ());
        (* Traffic: CBR between pseudo-random distinct pairs that transit
           the attacker where possible. *)
        let rng = Random.State.make [| seed; 0xf10 |] in
        let pairs = ref [] in
        let guard = ref 0 in
        while List.length !pairs < flows && !guard < 1000 do
          incr guard;
          let s = Random.State.int rng n and d = Random.State.int rng n in
          if s <> d && not (List.mem (s, d) !pairs) then pairs := (s, d) :: !pairs
        done;
        List.iter
          (fun (s, d) ->
            ignore
              (Flow.cbr net ~src:s ~dst:d ~rate_pps:80.0 ~size:500 ~start:0.0
                 ~stop:duration))
          !pairs;
        (match behavior_of attack with
        | Some b ->
            Router.set_behavior (Net.router net attacker)
              (Core.Adversary.after attack_start b)
        | None -> ());
        let tracer =
          if trace > 0 then
            Some (Tracer.attach ~net ~capacity:trace ~routers:[ attacker ] ())
          else None
        in
        (net, rt, !pairs, malicious, congestion, tracer))
  in
  let injector =
    Option.map
      (fun s ->
        Telemetry.Profile.time profile "setup" (fun () ->
            Faults.Injector.apply ?probe ~net s))
      fault_schedule
  in
  let fault_ctrl = Option.map Faults.Injector.ctrl fault_schedule in
  let fault_byz = Option.bind fault_schedule (Faults.Injector.byz ~n) in
  (* Retry telemetry: every control-plane send feeds the stats histogram. *)
  (match (fault_ctrl, Net.stats net) with
  | Some c, Some st ->
      Core.Ctrl.set_observer c
        (Some (fun ~attempts ~ok -> Stats.on_ctrl_send st ~attempts ~ok))
  | _ -> ());
  let fault_skew =
    Option.map
      (fun s ->
        let f = Faults.Injector.skew_fn s in
        fun ~reporter -> f reporter)
      fault_schedule
  in
  Printf.printf "topology: %d routers, %d links; %d flows; attack at %.0f s\n"
    n (Topology.Graph.link_count g) (List.length pairs) attack_start;
  let dump_trace () =
    match tracer with
    | Some tr ->
        Printf.printf "last %d events at router %d:\n" trace attacker;
        List.iter (fun line -> Printf.printf "  %s\n" line) (Tracer.events tr)
    | None -> ()
  in
  (* Deploy the detector through the registry: same setup profiling the
     per-protocol branches used to do inline. *)
  let env =
    { Core.Detector.net; rt; graph = g; probe; ctrl = fault_ctrl; retry = None;
      byz = fault_byz; skew = fault_skew; attacker = Some attacker; duration;
      seed }
  in
  let inst =
    Telemetry.Profile.time profile "setup" (fun () -> Core.Detector.init detector env)
  in
  Net.subscribe_link_state net (fun ~src ~dst ~up ->
      Core.Detector.on_ctrl inst ~now:(Sim.now (Net.sim net)) ~src ~dst ~up);
  let on_epoch ~now =
    Core.Detector.on_round inst ~now;
    (* Sharded engine: the epoch barrier doubles as the live-view tick. *)
    match on_progress with
    | Some f when shards > 0 -> f ~now net
    | _ -> ()
  in
  let drive () =
    match on_progress with
    | Some f when shards = 0 ->
        (* Classic engine: slice the run.  [Sim.run ~until] pops the
           same heap in the same order whatever the slicing, so output
           is byte-identical to a single-shot run. *)
        let rec go t =
          let t' = Float.min duration (t +. progress_interval) in
          Net.run ~until:t' ~on_epoch net;
          f ~now:t' net;
          if t' < duration then go t'
        in
        go 0.0
    | _ -> Net.run ~until:duration ~on_epoch net
  in
  (try Telemetry.Profile.time profile "run" drive
   with e ->
     (* Flight recorder: a crash mid-run still leaves the pinned spans
        and recent window on disk before the exception propagates. *)
     write_trace ();
     raise e);
  Telemetry.Profile.time profile "report" (fun () ->
      Printf.printf "ground truth: %d malicious drops, %d congestion drops\n"
        !malicious !congestion;
      Core.Detector.report inst;
      (match (injector, probe) with
      | Some inj, Some probe ->
          Printf.printf "faults: %d injected from plan\n"
            (Faults.Injector.injected inj);
          let malicious = if attack <> No_attack then [ attacker ] else [] in
          let byzantine =
            match fault_byz with Some bz -> Core.Byz.routers bz | None -> []
          in
          let o =
            Faults.Oracle.of_probe ~malicious ~byzantine
              ?byz_stats:(Option.map Core.Byz.stats fault_byz) ~attack_start
              probe
          in
          Printf.printf
            "oracle: %d verdicts, %d false alarms, FAR %.3f, precision %.3f, \
             recall %.3f%s\n"
            o.Faults.Oracle.verdicts o.Faults.Oracle.false_alarms
            o.Faults.Oracle.false_accusation_rate o.Faults.Oracle.precision
            o.Faults.Oracle.recall
            (match o.Faults.Oracle.detection_latency with
            | Some l -> Printf.sprintf ", latency %.1f s" l
            | None -> "");
          if byzantine <> [] then
            Printf.printf
              "byzantine: %d framing attempts, %d forgeries rejected, %d \
               framed honest, %d alpha violations\n"
              o.Faults.Oracle.framing_attempts o.Faults.Oracle.forgeries_rejected
              o.Faults.Oracle.framed_honest o.Faults.Oracle.alpha_violations
      | _ -> ());
      dump_trace ());
  match probe with
  | None -> ()
  | Some probe ->
      scrape_per_router net probe;
      let scenario =
        let open Telemetry.Export in
        [ ("topology",
           String
             (match topo with
             | Line -> "line" | Ring -> "ring" | Grid -> "grid"
             | Abilene -> "abilene"));
          ("protocol", String protocol);
          ("attack",
           String
             (match attack with
             | No_attack -> "none" | Drop_all -> "drop-all"
             | Drop_fraction _ -> "drop-fraction" | Drop_syn -> "syn"
             | Queue_conditioned _ -> "queue"));
          ("attacker", Int attacker);
          ("duration", Float duration);
          ("seed", Int seed);
          ("flows", Int flows);
          ("shards", Int shards);
          ("faults",
           match faults with Some path -> String path | None -> Null) ]
      in
      let doc = summary_json ~scenario ~attack_start net probe profile in
      (match metrics with Some path -> write_metrics path doc net probe | None -> ());
      (match journal with Some path -> write_journal path probe | None -> ());
      (match (trace_out, span_tracer) with
      | Some path, Some sp ->
          write_trace ();
          Printf.printf
            "trace: %s (%d/%d packets sampled, %d events recorded, %d pinned)\n"
            path
            (Telemetry.Span.traces_sampled sp)
            (Telemetry.Span.traces_started sp)
            (Telemetry.Span.recorded sp)
            (Telemetry.Span.pinned sp)
      | _ -> ())
