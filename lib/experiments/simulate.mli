(** Free-form scenario driver behind `mrdetect simulate`: pick a
    topology, an attack and a detector, run it, and print what the
    detector concluded next to the ground truth.

    Detectors are resolved by name through the {!Core.Detector}
    registry ({!Core.Detectors.register_all} installs the built-ins:
    chi, fatih, pik2, pi2, watchers, perlman) — the driver has no
    per-protocol code.

    With [metrics] and/or [journal] set in the configuration, the run
    carries a {!Netsim.Probe}: packet counters, per-router gauges,
    detector verdicts and run profiling come out as a JSON document (or
    Prometheus text for a [.prom]/[.txt] path), and the typed event
    journal as JSONL.  With [trace_out] set, the probe additionally
    bridges into a {!Telemetry.Span} collector and the run ends by
    writing a Chrome trace-event file (load it in Perfetto, or query it
    with [mrdetect trace explain]). *)

type topo = Line | Ring | Grid | Abilene

val topo_of_string : string -> (topo, string) result

type attack = No_attack | Drop_all | Drop_fraction of float | Drop_syn | Queue_conditioned of float

val attack_of_string : string -> fraction:float -> (attack, string) result

(** The full scenario description — one record instead of a dozen
    labeled arguments, validated before anything is simulated.  Build
    it with {!Config.make} rather than a record literal. *)
module Config : sig
  type t = {
    topo : topo;
    protocol : string;       (** detector name in the {!Core.Detector} registry *)
    attack : attack;
    attacker : int;          (** compromised router id *)
    duration : float;        (** seconds simulated *)
    seed : int;
    flows : int;             (** CBR flows between random pairs *)
    trace : int;             (** dump the last N events at the attacker *)
    metrics : string option; (** metrics/summary export path *)
    journal : string option; (** JSONL event-journal path *)
    trace_out : string option; (** Chrome trace-event export path *)
    trace_sample : float;    (** fraction of packets traced, in [0,1] *)
    faults : string option;  (** benign fault-plan file ({!Faults.Schedule}) *)
    shards : int;            (** engine shards; [0] = classic single heap *)
  }

  val default : t
  (** Ring topology, fatih, 20% drop fraction at router 2, 60 s, seed 1,
      8 flows, no trace, no exports, trace sampling at 1.0, no faults,
      classic engine. *)

  val make :
    ?protocol:string ->
    ?attack:attack ->
    ?attacker:int ->
    ?duration:float ->
    ?seed:int ->
    ?flows:int ->
    ?trace:int ->
    ?metrics:string ->
    ?journal:string ->
    ?trace_out:string ->
    ?trace_sample:float ->
    ?faults:string ->
    ?shards:int ->
    topo ->
    (t, string) result
  (** Build and {!validate} a configuration; unstated fields take the
      {!default}s. *)

  val make_exn :
    ?protocol:string ->
    ?attack:attack ->
    ?attacker:int ->
    ?duration:float ->
    ?seed:int ->
    ?flows:int ->
    ?trace:int ->
    ?metrics:string ->
    ?journal:string ->
    ?trace_out:string ->
    ?trace_sample:float ->
    ?faults:string ->
    ?shards:int ->
    topo ->
    t
  (** {!make}, raising [Invalid_argument] on rejection. *)

  val validate : t -> (t, string) result
  (** Reject non-positive duration, fewer than one flow, a negative
      trace length, a sample rate outside [0,1], a protocol name absent
      from the {!Core.Detector} registry, an attacker id outside the
      chosen topology, a shard count outside [0, routers], and a
      drop/queue fraction outside [0,1] — before any simulation state is
      built. *)

  val of_cmdline :
    topology:string ->
    protocol:string ->
    attack:string ->
    fraction:float ->
    attacker:int ->
    duration:float ->
    seed:int ->
    flows:int ->
    trace:int ->
    metrics:string option ->
    journal:string option ->
    trace_out:string option ->
    trace_sample:float ->
    faults:string option ->
    shards:int ->
    (t, string) result
  (** Parse the raw command-line spellings and {!validate} the result. *)
end

val run :
  ?on_progress:(now:float -> Netsim.Net.t -> unit) ->
  ?progress_interval:float ->
  Config.t ->
  unit
(** Build the network ([shards > 0] selects the {!Netsim.Shard}
    conservative-parallel engine), start [flows] CBR flows between
    distinct random pairs plus TCP where the detector needs congestion,
    compromise [attacker] at one third of [duration], run, and print a
    summary.

    [metrics] names a file for the metrics/summary export: JSON by
    default (schema ["mrdetect-metrics-v1"]: scenario echo, packet
    conservation, detection latency, engine self-profiling — including
    shard/epoch/window counts under the sharded engine — per-phase
    wall clock, and the full registry), Prometheus text for a
    [.prom]/[.txt] suffix.  [journal] names a JSONL file receiving the
    typed event journal (newest 262144 records).  With neither given, no
    probe is attached and the forwarding plane runs exactly as before.

    [faults] names a {!Faults.Schedule} file: the plan is validated
    against the topology, injected into the run (link flaps, crashes,
    lossy control-plane channels, clock skew), a probe is attached
    regardless of the export flags, and the report ends with the
    {!Faults.Oracle} scoring of every verdict against ground truth.
    Raises [Invalid_argument] when {!Config.validate} rejects the
    configuration, when the fault plan does not parse, or when it names
    routers or links outside the topology.

    [on_progress] is the live-view hook ([mrdetect top]): it fires every
    [progress_interval] sim seconds (default 0.5) on the classic engine
    — which is sliced into multiple [Net.run] calls, byte-identical to a
    single-shot run — and at every epoch barrier on the sharded engine.
    Passing it forces a probe (and thus the always-on {!Netsim.Stats}
    collector) even with no exports configured. *)
