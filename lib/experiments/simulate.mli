(** Free-form scenario driver behind `mrdetect simulate`: pick a
    topology, an attack and a detector, run it, and print what the
    detector concluded next to the ground truth.

    With [metrics] and/or [journal], the run carries a {!Netsim.Probe}:
    packet counters, per-router gauges, detector verdicts and run
    profiling come out as a JSON document (or Prometheus text for a
    [.prom]/[.txt] path), and the typed event journal as JSONL. *)

type topo = Line | Ring | Grid | Abilene

val topo_of_string : string -> (topo, string) result

type attack = No_attack | Drop_all | Drop_fraction of float | Drop_syn | Queue_conditioned of float

val attack_of_string : string -> fraction:float -> (attack, string) result

val run :
  topo:topo ->
  protocol:[ `Chi | `Fatih ] ->
  attack:attack ->
  attacker:int ->
  duration:float ->
  seed:int ->
  flows:int ->
  ?trace:int ->
  ?metrics:string ->
  ?journal:string ->
  unit ->
  unit
(** Build the network, start [flows] CBR flows between distinct random
    pairs plus TCP where the detector needs congestion, compromise
    [attacker] at one third of [duration], run, and print a summary.

    [metrics] names a file for the metrics/summary export: JSON by
    default (schema ["mrdetect-metrics-v1"]: scenario echo, packet
    conservation, detection latency, engine self-profiling, per-phase
    wall clock, and the full registry), Prometheus text for a
    [.prom]/[.txt] suffix.  [journal] names a JSONL file receiving the
    typed event journal (newest 262144 records).  With neither given, no
    probe is attached and the forwarding plane runs exactly as before.
    Raises [Invalid_argument] for out-of-range attacker/flows. *)
