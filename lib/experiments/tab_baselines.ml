(* The Chapter 2/3 design-space comparison, as runnable tables:

   - the Herzberg time/message trade-off (§3.3);
   - SecTrace vs AWERBUCH localization rounds (§3.5/3.6);
   - the protocol properties summary of §2.4.2 (completeness, accuracy,
     precision), each cell backed by the corresponding executable
     scenario in this repository. *)

open Core

let herzberg_tradeoff () =
  Exp.section "Baselines (3.3): Herzberg time vs message complexity"
    [ Exp.table
        ~header:[ "path m"; "variant"; "msgs/pkt"; "worst time" ]
        (List.concat_map
           (fun m ->
             List.map
               (fun (name, v) ->
                 [ Exp.int m; Exp.text name;
                   Exp.int (Herzberg.message_complexity v ~path_len:m);
                   Exp.int (Herzberg.worst_detection_time v ~path_len:m) ])
               [ ("end-to-end", Herzberg.End_to_end);
                 ("hop-by-hop", Herzberg.Hop_by_hop);
                 ("checkpoint-4", Herzberg.Checkpointed 4) ])
           [ 8; 16; 32 ]) ]

let probing_rounds () =
  Exp.section "Baselines (3.5/3.6): localization rounds, SecTrace vs AWERBUCH"
    [ Exp.table
        ~header:[ "path m"; "fault at"; "sectrace"; "awerbuch" ]
        (List.map
           (fun (m, pos) ->
             let attacker = Some (Sectrace.consistent_attacker ~position:pos) in
             let st = Sectrace.sectrace ~path_len:m ~attacker in
             let aw = Sectrace.awerbuch ~path_len:m ~attacker in
             [ Exp.int m; Exp.int pos; Exp.int st.Sectrace.rounds;
               Exp.int aw.Sectrace.rounds ])
           [ (9, 6); (17, 12); (33, 28); (65, 50) ]) ]

let properties () =
  Exp.section "Design space (2.4.2): properties of the detection protocols"
    [ Exp.table
        ~header:[ "protocol"; "complete"; "accurate"; "precision" ]
        (List.map
           (fun (name, complete, accurate, precision) ->
             [ Exp.text name; Exp.text complete; Exp.text accurate;
               Exp.text precision ])
           [ ("WATCHERS", "no (flaw)", "yes", "2");
             ("WATCHERS-fixed", "strong", "yes", "2");
             ("HERZBERG", "weak", "yes*", "2");
             ("PERLMANd", "no", "no (Fig 3.8)", "2");
             ("SecTrace", "weak", "no (Fig 3.7)", "2");
             ("AWERBUCH", "weak", "yes*", "2");
             ("SATS", "weak", "yes", "pair span");
             ("Pi2", "strong", "yes", "2");
             ("Pik+2", "strong", "yes", "k+2");
             ("chi", "strong", "yes", "2") ]);
      Exp.Note
        ("*", "accurate only against attackers that cannot time their drops to the probe schedule");
      Exp.Note
        ( "evidence",
          "each row is exercised by test/test_baselines.ml, test/test_protocols.ml or test/test_chi.ml"
        ) ]

let eval () =
  { Exp.id = "baselines";
    sections = [ herzberg_tradeoff (); probing_rounds (); properties () ] }

let render = Exp.render
let run () = render (eval ())
