(* §7.2 / Appendix A: per-round communication of a Πk+2 summary
   exchange, by mechanism.

   The two ends of a monitored path-segment must compare fingerprint
   sets.  Shipping the set costs O(N); a Bloom filter costs a fixed
   size but only estimates; Appendix A's reconciliation costs
   O(losses).  Each row runs the actual mechanisms on synthetic rounds
   (N packets, L of them lost inside the segment). *)

let eval () =
  let rng = Random.State.make [| 5 |] in
  let rows =
    List.map
      (fun (n, losses) ->
        let sent = Array.init n (fun i -> (i * 379) + 11) in
        let received = Array.sub sent 0 (n - losses) in
        let recon = Setrecon.Reconcile.diff ~rng ~a:sent ~b:received () in
        let recon_words, exact =
          match recon with
          | Some r ->
              (r.Setrecon.Reconcile.evals_used,
               List.length r.Setrecon.Reconcile.a_minus_b = losses)
          | None -> (0, false)
        in
        let bloom_bits = 65536 in
        [ Exp.int n; Exp.int losses;
          Exp.int n (* one word per fingerprint, one direction *);
          Exp.int (bloom_bits / 64);
          Exp.int recon_words;
          Exp.text (if exact then "yes" else "NO") ])
      [ (1000, 0); (1000, 5); (1000, 50); (10000, 5); (10000, 50); (10000, 500) ]
  in
  { Exp.id = "comm";
    sections =
      [ Exp.section
          "Section 7.2/Appendix A: per-round summary exchange cost (64-bit words)"
          [ Exp.table
              ~header:
                [ "packets"; "losses"; "full set"; "bloom(fix)"; "reconcile";
                  "recon exact" ]
              rows;
            Exp.Note
              ( "note",
                "bloom is constant-size but only estimates the loss count (2.4.1); \
                 reconciliation recovers the exact missing fingerprints in O(losses) words, \
                 which is what makes content validation affordable at line rate" ) ] ] }

let render = Exp.render
let run () = render (eval ())
