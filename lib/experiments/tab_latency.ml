(* Detection latency vs attack intensity: where each detector's
   sensitivity floor lies.

   Sweeps the drop fraction of a flow-targeted attack and reports how
   long after the attack each mechanism first fires: Protocol χ
   (per-loss headroom), the best static threshold, and Fatih/Πk+2
   (2%-loss content validation).  The crossover the dissertation argues
   for is visible: thresholds need the attack to beat the congestion
   floor, χ only needs a handful of headroom drops. *)

open Core

let chi_latency ~fraction =
  let run =
    Scenario.run_droptail ~duration:80.0
      ~attack:(fun victims ->
        Some (Adversary.on_flows victims (Adversary.drop_fraction ~seed:5 fraction)))
      ()
  in
  let truth = run.Scenario.truth in
  let first_alarm =
    List.find_opt (fun (r : Chi.report) -> r.Chi.alarm) run.Scenario.reports
  in
  let threshold_fires rate =
    let t = Threshold.create ~loss_rate:rate in
    let fires (r : Chi.report) =
      (not r.Chi.learning)
      && (Threshold.judge t ~sent:r.Chi.arrivals ~lost:(List.length r.Chi.losses))
           .Threshold.alarm
    in
    let pre =
      List.length
        (List.filter
           (fun (r : Chi.report) -> fires r && r.Chi.end_time <= run.Scenario.attack_start)
           run.Scenario.reports)
    in
    let post =
      List.find_opt
        (fun (r : Chi.report) -> fires r && r.Chi.end_time > run.Scenario.attack_start)
        run.Scenario.reports
    in
    (pre, post)
  in
  (run.Scenario.attack_start, truth.Scenario.malicious_drops, first_alarm,
   threshold_fires 0.02)

let fatih_latency ~fraction =
  let g = Topology.Generate.ring ~n:6 in
  let net = Netsim.Net.create ~seed:3 ~jitter_bound:100e-6 g in
  let rt = Topology.Routing.compute g in
  Netsim.Net.use_routing net rt;
  let fatih = Fatih.deploy ~net ~rt () in
  List.iter
    (fun (src, dst) ->
      ignore (Netsim.Flow.cbr net ~src ~dst ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:80.0))
    [ (0, 3); (3, 0); (1, 4); (4, 1) ];
  Netsim.Router.set_behavior (Netsim.Net.router net 2)
    (Adversary.after 20.0 (Adversary.drop_fraction ~seed:7 fraction));
  Netsim.Net.run ~until:80.0 net;
  match Fatih.detections fatih with
  | d :: _ -> Some (d.Fatih.time -. 20.0)
  | [] -> None

let eval () =
  let rows =
    List.map
      (fun fraction ->
        let attack_start, mal, chi_first, (thr_pre, thr_first) = chi_latency ~fraction in
        let fmt = function
          | Some (r : Chi.report) ->
              Exp.float ~decimals:0 (r.Chi.end_time -. attack_start)
          | None -> Exp.text "miss"
        in
        let fatih =
          match fatih_latency ~fraction with
          | Some l -> Exp.float ~decimals:0 l
          | None -> Exp.text "miss"
        in
        [ Exp.float ~decimals:2 fraction; Exp.int mal; fmt chi_first;
          fmt thr_first; Exp.int thr_pre; fatih ])
      [ 0.01; 0.02; 0.05; 0.10; 0.20; 0.50 ]
  in
  { Exp.id = "latency";
    sections =
      [ Exp.section "Detection latency vs attack intensity (s after attack start)"
          [ Exp.table
              ~header:[ "drop frac"; "mal drops"; "chi"; "thr 2%"; "thr FP(pre)"; "fatih" ]
              rows;
            Exp.Note
              ( "reading",
                "chi fires on the first round containing headroom drops at every intensity; \
                 the 2% threshold looks fast only because congestion alone already trips it \
                 (the FP(pre) column counts its pre-attack false alarms on clean rounds); \
                 Fatih needs the per-segment loss to clear its 2% budget within a 5 s round"
              ) ] ] }

let render = Exp.render
let run () = render (eval ())
