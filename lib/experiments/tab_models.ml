(* §6.1.2: why traffic modeling is not enough.

   Runs the bottleneck with n TCP flows, measures the actual loss rate
   and queue-occupancy distribution, and compares them with the two
   analytic alternatives the dissertation evaluates: the square-root TCP
   law's implied loss and Appenzeller's normal-occupancy overflow
   probability.  The table reproduces the section's conclusion: the
   models get the order of magnitude at best, nowhere near the per-drop
   precision detection needs. *)

open Netsim
module G = Topology.Graph

type measured = {
  flows : int;
  loss_rate : float;
  throughput_per_flow : float;  (* bytes/s *)
  rtt : float;
  queue_sigma : float;          (* bytes *)
}

let measure ~flows =
  let g = G.create ~n:(flows + 2) in
  let bottleneck = flows and sink = flows + 1 in
  for src = 0 to flows - 1 do
    G.add_duplex g ~bw:12.5e6 ~delay:0.001 src bottleneck
  done;
  G.add_duplex g ~bw:1.25e6 ~delay:0.020 bottleneck sink;
  let net = Net.create ~seed:3 ~jitter_bound:0.0 g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  let conns = List.init flows (fun src -> Tcp.connect net ~src ~dst:sink ()) in
  let sent = ref 0 and dropped = ref 0 in
  Net.subscribe_iface net (fun ev ->
      if ev.Net.router = bottleneck && ev.Net.next = sink then begin
        match ev.Net.kind with
        | Iface.Enqueued _ -> incr sent
        | Iface.Drop_congestion _ ->
            incr sent;
            incr dropped
        | _ -> ()
      end);
  (* Sample the queue occupancy for the sigma comparison. *)
  let iface = Option.get (Net.iface net ~src:bottleneck ~dst:sink) in
  let occ = ref [] in
  let sim = Net.sim net in
  let rec sample () =
    occ := float_of_int (Iface.occupancy iface) :: !occ;
    Sim.schedule sim ~delay:0.02 sample
  in
  Sim.schedule sim ~delay:5.0 sample;
  let duration = 60.0 in
  Net.run ~until:duration net;
  let goodput =
    List.fold_left (fun acc c -> acc +. Tcp.goodput c ~at:duration) 0.0 conns
    /. float_of_int flows
  in
  { flows;
    loss_rate = float_of_int !dropped /. float_of_int (max 1 !sent);
    throughput_per_flow = goodput;
    rtt = 0.042 +. 0.025 (* propagation + typical queueing at this buffer *);
    queue_sigma = Mrstats.Descriptive.stddev (Array.of_list !occ) }

let eval () =
  let rows =
    List.map
      (fun flows ->
        let m = measure ~flows in
        let implied =
          Core.Congestion_models.implied_loss ~rtt:m.rtt
            ~throughput:m.throughput_per_flow ~b:1 ~mss:960
        in
        let sigma_model =
          Core.Congestion_models.buffer_sigma ~tp:0.042 ~capacity:1.25e6 ~buffer:64000.0
            ~flows
        in
        let p_overflow =
          Core.Congestion_models.overflow_probability ~buffer:64000.0 ~sigma:sigma_model
        in
        [ Exp.int flows;
          Exp.float ~decimals:4 m.loss_rate;
          Exp.float ~decimals:4 implied;
          Exp.float ~decimals:0 m.queue_sigma;
          Exp.float ~decimals:0 sigma_model;
          Exp.floatf "%.2e" p_overflow ])
      [ 2; 4; 8; 16 ]
  in
  { Exp.id = "models";
    sections =
      [ Exp.section "Section 6.1.2: analytic congestion models vs measurement"
          [ Exp.table
              ~header:
                [ "flows"; "loss meas."; "loss sqrt-law"; "sigma meas.";
                  "sigma model"; "P(ovfl)" ]
              rows;
            Exp.Note
              ( "conclusion",
                "both models disagree with measurement by large factors that vary with n — \
                 usable for provisioning, not for attributing individual drops (the paper's \
                 motivation for measurement-based validation)" ) ] ] }

let render = Exp.render
let run () = render (eval ())
