(* Appendix A: set reconciliation cost.

   Communication (field elements per direction) as a function of the
   symmetric difference, for sets of 2000 fingerprints per side —
   demonstrating the O(|difference|) bound against the Bloom-filter
   alternative's fixed-size-but-approximate answer. *)

let eval () =
  let n = 2000 in
  let rng = Random.State.make [| 77 |] in
  let rows =
    List.map
      (fun diff ->
      let shared = Array.init n (fun i -> (i * 211) + 5) in
      let only_a = Array.init diff (fun i -> 1_000_000 + (i * 17)) in
      let only_b = Array.init diff (fun i -> 2_000_000 + (i * 19)) in
      let a = Array.append shared only_a in
      let b = Array.append shared only_b in
      let result = Setrecon.Reconcile.diff ~rng ~max_bound:2048 ~a ~b () in
      let evals, exact =
        match result with
        | Some r ->
            ( r.Setrecon.Reconcile.evals_used,
              List.length r.Setrecon.Reconcile.a_minus_b = diff
              && List.length r.Setrecon.Reconcile.b_minus_a = diff )
        | None -> (0, false)
      in
      (* Bloom alternative: fixed 4 KiB filters. *)
      let fa = Setrecon.Bloom.create ~bits:32768 () in
      let fb = Setrecon.Bloom.create ~bits:32768 () in
      Array.iter (fun e -> Setrecon.Bloom.add fa (Int64.of_int e)) a;
      Array.iter (fun e -> Setrecon.Bloom.add fb (Int64.of_int e)) b;
      let est =
        Setrecon.Bloom.symmetric_difference_estimate ~na:(Array.length a)
          ~nb:(Array.length b) fa fb
      in
      [ Exp.int (2 * diff); Exp.int evals;
        Exp.text (if exact then "yes" else "NO"); Exp.float ~decimals:0 est ])
      [ 0; 1; 2; 5; 10; 25; 50; 100 ]
  in
  { Exp.id = "reconcile";
    sections =
      [ Exp.section "Appendix A: set reconciliation vs Bloom filters"
          [ Exp.table
              ~header:[ "|A delta B|"; "evals sent"; "exact?"; "bloom est." ]
              rows;
            Exp.Note ("bloom filter size", "32768 bits per side, every row");
            Exp.Note
              ( "takeaway",
                "reconciliation transmits O(difference) elements and recovers the exact \
                 fingerprints; Bloom filters only estimate the count" ) ] ] }

let render = Exp.render
let run () = render (eval ())
