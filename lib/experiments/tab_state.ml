(* T5.1 / T7.2: per-router counter state, WATCHERS vs Π2 vs Πk+2
   (§5.1.1, §5.2.1, §7.2).  The dissertation's reference points on the
   measured Sprintlink map: WATCHERS ~13,605 avg / 99,225 max; Π2 (k=2)
   216 avg / 2,172 max; Πk+2 (k=2) 232 avg / 496 max. *)

let stats a =
  let n = Array.length a in
  let mean = float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int n in
  let mx = Array.fold_left max 0 a in
  (mean, mx)

let counters_section ~label g =
  let rt = Topology.Routing.compute g in
  let w_mean, w_max = stats (Core.Watchers.counters_per_router g) in
  let rows =
    [ Exp.text "WATCHERS"; Exp.text "-"; Exp.float ~decimals:0 w_mean; Exp.int w_max ]
    :: List.concat_map
         (fun k ->
           let p2_mean, p2_max = stats (Core.Pi2.state_counters rt ~k) in
           let pk_mean, pk_max = stats (Core.Pik2.state_counters rt ~k) in
           [ [ Exp.text "Pi2"; Exp.int k; Exp.float ~decimals:0 p2_mean;
               Exp.int p2_max ];
             [ Exp.text "Pik+2"; Exp.int k; Exp.float ~decimals:0 pk_mean;
               Exp.int pk_max ] ])
         [ 2; 7 ]
  in
  Exp.section
    (Printf.sprintf "Table 5.1/7.2: counter state per router - %s" label)
    [ Exp.table ~header:[ "protocol"; "k"; "avg"; "max" ] rows ]

let policy_bytes () =
  (* §7.2: state in bytes per router once the summaries themselves are
     charged, by conservation policy (EBONE-like, k = 2, 100 pps per
     monitored segment, tau = 5 s). *)
  let rt = Topology.Routing.compute (Topology.Generate.ebone_like ()) in
  let mean a = Array.fold_left ( + ) 0 a / Array.length a in
  let maxi a = Array.fold_left max 0 a in
  let rows =
    List.map
      (fun (label, policy) ->
        let pi2 =
          Core.State_size.pi2_router_bytes ~rt ~k:2 ~policy ~pps_per_segment:100.0
            ~tau:5.0
        in
        let pik2 =
          Core.State_size.pik2_router_bytes ~rt ~k:2 ~policy ~pps_per_segment:100.0
            ~tau:5.0
        in
        [ Exp.text label; Exp.int (mean pi2); Exp.int (maxi pi2);
          Exp.int (mean pik2); Exp.int (maxi pik2) ])
      [ ("flow", Core.Summary.Flow); ("content", Core.Summary.Content);
        ("order", Core.Summary.Order); ("timeliness", Core.Summary.Timeliness) ]
  in
  let w = Core.State_size.watchers_router_bytes (Topology.Routing.graph rt) in
  Exp.section "Table 7.2: per-router state by conservation policy (bytes)"
    [ Exp.table
        ~header:[ "policy"; "pi2 avg"; "pi2 max"; "pik+2 avg"; "pik+2 max" ]
        rows;
      Exp.Note
        ( "WATCHERS (flow only)",
          Printf.sprintf "%d avg / %d max bytes" (mean w) (maxi w) );
      Exp.Note
        ( "note",
          "flow-policy state is counter-sized; identity-keeping policies pay ~8 B per      packet per monitored segment per round — the 7.1 fingerprint-state tradeoff"
        ) ]

let eval () =
  { Exp.id = "state";
    sections =
      [ counters_section ~label:"Sprintlink-like (315/972)"
          (Topology.Generate.sprintlink_like ());
        counters_section ~label:"EBONE-like (87/161)"
          (Topology.Generate.ebone_like ());
        policy_bytes () ] }

let render = Exp.render
let run () = render (eval ())
