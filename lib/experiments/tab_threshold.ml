(* §6.4.3: Protocol χ vs the static threshold.

   Rounds from the benign run and from the queue-conditioned attacks are
   pooled; every static loss-rate threshold is swept over them.  The
   table shows that no threshold achieves zero false positives and zero
   false negatives simultaneously, while χ separates the same rounds
   exactly. *)

let attack_rounds run =
  List.filter_map
    (fun (r : Core.Chi.report) ->
      if r.Core.Chi.learning then None
      else begin
        let attacked = r.Core.Chi.end_time > run.Scenario.attack_start in
        Some (r.Core.Chi.arrivals, List.length r.Core.Chi.losses, attacked, r.Core.Chi.alarm)
      end)
    run.Scenario.reports

let benign_rounds run =
  List.filter_map
    (fun (r : Core.Chi.report) ->
      if r.Core.Chi.learning then None
      else Some (r.Core.Chi.arrivals, List.length r.Core.Chi.losses, false, r.Core.Chi.alarm))
    run.Scenario.reports

let eval () =
  let benign = Scenario.run_droptail ~attack:(fun _ -> None) () in
  let attacked =
    Scenario.run_droptail
      ~attack:(fun victims ->
        Some (Core.Adversary.on_flows victims (Core.Adversary.drop_when_queue_above 0.90)))
      ()
  in
  let rounds = benign_rounds benign @ attack_rounds attacked in
  let threshold_rows = List.map (fun (s, l, a, _) -> (s, l, a)) rounds in
  let sweep =
    List.map
      (fun rate ->
        let t = Core.Threshold.create ~loss_rate:rate in
        let tp, fp, fn, tn = Core.Threshold.confusion t ~rounds:threshold_rows in
        [ Exp.float ~decimals:3 rate; Exp.int tp; Exp.int fp; Exp.int fn; Exp.int tn ])
      [ 0.0; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1 ]
  in
  (* χ's own confusion on the same rounds (an attacked round counts as
     detected if χ alarmed it). *)
  let tp, fp, fn, tn =
    List.fold_left
      (fun (tp, fp, fn, tn) (_, _, attacked, alarm) ->
        match (alarm, attacked) with
        | true, true -> (tp + 1, fp, fn, tn)
        | true, false -> (tp, fp + 1, fn, tn)
        | false, true -> (tp, fp, fn + 1, tn)
        | false, false -> (tp, fp, fn, tn + 1))
      (0, 0, 0, 0) rounds
  in
  let chi_row = [ Exp.text "chi"; Exp.int tp; Exp.int fp; Exp.int fn; Exp.int tn ] in
  { Exp.id = "threshold";
    sections =
      [ Exp.section "Section 6.4.3: Protocol chi vs static threshold"
          [ Exp.table
              ~header:[ "loss thr"; "TP"; "FP"; "FN"; "TN" ]
              (sweep @ [ chi_row ]);
            Exp.Note
              ( "note",
                "attacked rounds without malicious drops (attack armed but queue below its trigger) \
                 count as attack rounds; the threshold sweep shows the FP/FN tradeoff, chi separates \
                 congestion from malice per loss" ) ] ] }

let render = Exp.render
let run () = render (eval ())
