(* WATCHERS-live vs Protocol χ at packet level.

   Three runs on the same ring: benign with a congested bottleneck,
   a blatant 50% dropper, and a 2% trickle dropper.  WATCHERS'
   conservation-of-flow threshold (25 packets/round) false-positives on
   congestion and misses the trickle; χ on the compromised queue does
   neither. *)

open Netsim
module Rt = Topology.Routing

type run_result = {
  watchers_suspects : int list;
  chi_alarms : int;
  malicious : int;
  congestion : int;
}

let run_one ~attack ~congested =
  let g = Topology.Generate.ring ~n:5 in
  let net = Net.create ~seed:4 ~jitter_bound:100e-6 g in
  let rt = Rt.compute g in
  Net.use_routing net rt;
  let w = Core.Watchers_live.deploy ~net ~tau:2.0 () in
  let chi_config = { Core.Chi.default_config with Core.Chi.tau = 2.0 } in
  (* χ watches the queue the attacker (router 1) feeds toward 2. *)
  let chi = Core.Chi.deploy ~net ~rt ~router:1 ~next:2 ~config:chi_config () in
  let malicious = ref 0 and congestion = ref 0 in
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with Router.Malicious_drop _ -> incr malicious | _ -> ());
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with Iface.Drop_congestion _ -> incr congestion | _ -> ());
  List.iter
    (fun (s, d) ->
      ignore (Flow.cbr net ~src:s ~dst:d ~rate_pps:60.0 ~size:400 ~start:0.0 ~stop:40.0))
    [ (0, 2); (2, 0); (1, 3); (3, 1) ];
  if congested then
    ignore (Flow.cbr net ~src:0 ~dst:2 ~rate_pps:4000.0 ~size:1000 ~start:10.0 ~stop:40.0);
  (match attack with
  | Some fraction ->
      Router.set_behavior (Net.router net 1)
        (Core.Adversary.after 10.0 (Core.Adversary.drop_fraction ~seed:5 fraction))
  | None -> ());
  Net.run ~until:40.0 net;
  { watchers_suspects = Core.Watchers_live.suspected_routers w;
    chi_alarms = List.length (Core.Chi.alarms chi);
    malicious = !malicious;
    congestion = !congestion }

let row_of label r =
  [ Exp.text label;
    Exp.text (Printf.sprintf "%d/%d" r.malicious r.congestion);
    Exp.text ("[" ^ String.concat ";" (List.map string_of_int r.watchers_suspects) ^ "]");
    Exp.int r.chi_alarms ]

let eval () =
  { Exp.id = "watchers";
    sections =
      [ Exp.section "WATCHERS-live vs chi (packet level)"
          [ Exp.table
              ~header:[ "scenario"; "mal/cong"; "watchers"; "chi alarms" ]
              [ row_of "benign+congested" (run_one ~attack:None ~congested:true);
                row_of "50% dropper" (run_one ~attack:(Some 0.5) ~congested:false);
                row_of "2% trickle" (run_one ~attack:(Some 0.02) ~congested:false) ];
            Exp.Note
              ( "reading",
                "WATCHERS' flow threshold accuses an honest router under congestion and stays \
                 blind to the trickle; chi's queue replay separates both cases" ) ] ] }

let render = Exp.render
let run () = render (eval ())
