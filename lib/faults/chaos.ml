type budget = {
  max_concurrent : int;
  max_crashes : int;
  max_flaps : int;
  max_msg_loss : float;
  max_skew : float;
  max_byzantine : int;
}

let default_budget =
  { max_concurrent = 4; max_crashes = 1; max_flaps = 3; max_msg_loss = 0.15;
    max_skew = 0.005; max_byzantine = 0 }

let gentle_budget =
  { max_concurrent = 2; max_crashes = 0; max_flaps = 1; max_msg_loss = 0.05;
    max_skew = 0.001; max_byzantine = 0 }

(* Benign churn from the default budget plus protocol-faulty roles: the
   adversary mix the alpha-accuracy golden tests sweep. *)
let byzantine_budget =
  { max_concurrent = 4; max_crashes = 1; max_flaps = 3; max_msg_loss = 0.15;
    max_skew = 0.005; max_byzantine = 2 }

(* Peak weighted overlap of half-open windows [s, e); a window closing
   exactly when another opens does not overlap it. *)
let max_overlap windows =
  let events =
    List.concat_map (fun (s, e, w) -> [ (s, w); (e, -w) ]) windows
  in
  let events =
    List.sort
      (fun (ta, wa) (tb, wb) ->
        if ta = tb then compare wa wb else compare ta tb)
      events
  in
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_, w) ->
        let cur = cur + w in
        (cur, max peak cur))
      (0, 0) events
  in
  peak

let uniform rng lo hi = lo +. (Random.State.float rng 1.0 *. (hi -. lo))

let generate ~seed ~graph ~duration ?(budget = default_budget) () =
  if not (duration > 0.0) then invalid_arg "Chaos.generate: duration must be positive";
  let rng = Random.State.make [| 0x63616f73; seed |] in
  let actions = ref [] in
  let push a = actions := a :: !actions in
  (* Duplex pairs, canonical (low, high) order, deterministic listing. *)
  let pairs =
    Topology.Graph.fold_links graph ~init:[] ~f:(fun acc l ->
        let src = l.Topology.Graph.src and dst = l.Topology.Graph.dst in
        if src < dst && Topology.Graph.link graph dst src <> None then
          (src, dst) :: acc
        else acc)
    |> List.rev
  in
  let n_pairs = List.length pairs in
  let windows = ref [] in
  let fits (s, e, w) = max_overlap ((s, e, w) :: !windows) <= budget.max_concurrent in
  (* A window: open somewhere in the first 60% of the run, closed by
     90% — every fault heals with slack for the detectors to settle. *)
  let draw_window rng =
    let s = uniform rng (0.1 *. duration) (0.6 *. duration) in
    let len = uniform rng (0.05 *. duration) (0.25 *. duration) in
    (s, Float.min (s +. len) (0.9 *. duration))
  in
  (* Link flaps: both directions of a duplex pair go down and come
     back, weight 2 against the concurrency ceiling. *)
  if n_pairs > 0 then
    for _ = 1 to budget.max_flaps do
      let a, b = List.nth pairs (Random.State.int rng n_pairs) in
      let s, e = draw_window rng in
      if fits (s, e, 2) then begin
        windows := (s, e, 2) :: !windows;
        push (Schedule.Link_down { src = a; dst = b; at = s });
        push (Schedule.Link_down { src = b; dst = a; at = s });
        push (Schedule.Link_up { src = a; dst = b; at = e });
        push (Schedule.Link_up { src = b; dst = a; at = e })
      end
    done;
  (* Crashes: fail-stop with a restart, at most one per router. *)
  let n = Topology.Graph.size graph in
  let crashed = Hashtbl.create 4 in
  if n > 0 then
    for _ = 1 to budget.max_crashes do
      let r = Random.State.int rng n in
      let s, e = draw_window rng in
      if (not (Hashtbl.mem crashed r)) && fits (s, e, 1) then begin
        Hashtbl.add crashed r ();
        windows := (s, e, 1) :: !windows;
        push (Schedule.Crash { router = r; at = s });
        push (Schedule.Restart { router = r; at = e })
      end
    done;
  (* Mildly lossy control-plane channels on some duplex pairs. *)
  if budget.max_msg_loss > 0.0 then
    List.iter
      (fun (a, b) ->
        if Random.State.float rng 1.0 < 0.5 then begin
          let loss = uniform rng 0.0 budget.max_msg_loss in
          push (Schedule.Msg_loss { src = a; dst = b; prob = loss });
          push (Schedule.Msg_loss { src = b; dst = a; prob = loss });
          if Random.State.float rng 1.0 < 0.3 then
            push
              (Schedule.Msg_dup
                 { src = a; dst = b; prob = uniform rng 0.0 (budget.max_msg_loss /. 3.0) });
          if Random.State.float rng 1.0 < 0.3 then
            push
              (Schedule.Msg_reorder
                 { src = a; dst = b;
                   prob = uniform rng 0.0 (budget.max_msg_loss /. 2.0);
                   delay = uniform rng 0.0 0.05 })
        end)
      pairs;
  (* Small constant clock skews on about half the routers. *)
  if budget.max_skew > 0.0 then
    for r = 0 to n - 1 do
      if Random.State.float rng 1.0 < 0.5 then
        push
          (Schedule.Clock_skew
             { router = r; skew = uniform rng (-.budget.max_skew) budget.max_skew })
    done;
  (* Protocol-faulty roles, at most one per router.  Drawn strictly
     after every benign draw so a zero [max_byzantine] budget consumes
     exactly the RNG stream it always did: schedules generated under
     the pre-Byzantine budgets stay byte-identical. *)
  let byz = Hashtbl.create 4 in
  if budget.max_byzantine > 0 && n > 0 then
    for _ = 1 to budget.max_byzantine do
      let r = Random.State.int rng n in
      let kind = Random.State.int rng 4 in
      let neighbors = Topology.Graph.out_neighbors graph r in
      if not (Hashtbl.mem byz r) then begin
        match kind with
        | 0 when neighbors <> [] ->
            let victim =
              List.nth neighbors (Random.State.int rng (List.length neighbors))
            in
            Hashtbl.add byz r ();
            push
              (Schedule.Byz_frame
                 { router = r; victim; extras = 2 + Random.State.int rng 6 })
        | 1 ->
            Hashtbl.add byz r ();
            push (Schedule.Byz_equivocate { router = r })
        | 2 ->
            Hashtbl.add byz r ();
            push
              (Schedule.Byz_mute
                 { router = r; from = uniform rng (0.2 *. duration) (0.5 *. duration) })
        | _ ->
            Hashtbl.add byz r ();
            push
              (Schedule.Byz_stall { router = r; margin = uniform rng 0.5 0.95 })
      end
    done;
  { Schedule.seed; actions = List.rev !actions }
