(** Seeded random fault generation for chaos-style sweeps.

    Draws a {!Schedule} from a topology, a run duration and a
    {!budget}: bounded link flaps, bounded fail-stop crashes with
    restarts, mildly lossy control-plane channels and small clock
    skews.  The draw is a pure function of the seed — the same
    (seed, graph, duration, budget) always yields the identical
    schedule, which is what makes [mrdetect chaos --jobs N]
    byte-identical across runs and job counts. *)

type budget = {
  max_concurrent : int;
      (** ceiling on simultaneously open outage windows (a duplex flap
          opens two directed windows, a crash one) *)
  max_crashes : int;     (** total crash/restart pairs *)
  max_flaps : int;       (** total duplex link flaps *)
  max_msg_loss : float;  (** per-channel control-plane loss cap, [0,1) *)
  max_skew : float;      (** absolute clock-skew cap, seconds *)
  max_byzantine : int;
      (** protocol-faulty role draws (framer / equivocator / mute /
          staller), at most one role per router *)
}

val default_budget : budget
(** 4 concurrent outages, 1 crash, 3 flaps, 15% message loss,
    5 ms skew, no protocol-faulty routers. *)

val gentle_budget : budget
(** No crashes, 1 flap, 5% loss, 1 ms skew, no protocol-faulty
    routers — churn mild enough that a sound detector should raise
    {e zero} false accusations. *)

val byzantine_budget : budget
(** The default benign churn {e plus} up to two protocol-faulty roles.
    The alpha-accuracy golden tests sweep this budget: even against
    framing, equivocation, muting and stalling, no honest router may
    be convicted.  Byzantine draws happen strictly after every benign
    draw, so a [max_byzantine = 0] budget generates schedules
    byte-identical to the pre-Byzantine generator. *)

val generate :
  seed:int ->
  graph:Topology.Graph.t ->
  duration:float ->
  ?budget:budget ->
  unit ->
  Schedule.t
(** A schedule honouring the budget: the result always satisfies
    [Schedule.max_concurrent_outages <= budget.max_concurrent] and
    [Schedule.crash_count <= budget.max_crashes], every fault window
    closes before [0.9 * duration], and [validate] passes against
    [graph]. *)
