type t = {
  probe : Netsim.Probe.t option;
  net : Netsim.Net.t;
  (* Down-counts per directed link: a link can be downed both by its own
     flap and by a crash of either endpoint; it comes back up only when
     every cause has been lifted. *)
  downs : (int * int, int) Hashtbl.t;
  mutable injected : int;
}

let record t ~time ~kind ~routers ~detail =
  t.injected <- t.injected + 1;
  match t.probe with
  | None -> ()
  | Some probe -> Netsim.Probe.record_fault probe ~time ~kind ~routers ~detail ()

let down t src dst =
  let c = Option.value (Hashtbl.find_opt t.downs (src, dst)) ~default:0 in
  Hashtbl.replace t.downs (src, dst) (c + 1);
  if c = 0 then Netsim.Net.fail_link t.net ~src ~dst

let up t src dst =
  match Hashtbl.find_opt t.downs (src, dst) with
  | None | Some 0 -> ()
  | Some 1 ->
      Hashtbl.replace t.downs (src, dst) 0;
      Netsim.Net.restore_link t.net ~src ~dst
  | Some c -> Hashtbl.replace t.downs (src, dst) (c - 1)

(* Every link touching the router, in both directions. *)
let router_links graph router =
  let out =
    List.map (fun n -> (router, n)) (Topology.Graph.out_neighbors graph router)
  in
  let into =
    Topology.Graph.fold_links graph ~init:[] ~f:(fun acc l ->
        if l.Topology.Graph.dst = router then (l.Topology.Graph.src, router) :: acc
        else acc)
  in
  out @ List.rev into

let fire t action =
  let time = Netsim.Sim.now (Netsim.Net.sim t.net) in
  let graph = Netsim.Net.graph t.net in
  match (action : Schedule.action) with
  | Schedule.Link_down { src; dst; _ } ->
      down t src dst;
      record t ~time ~kind:"link_down" ~routers:[ src; dst ] ~detail:""
  | Schedule.Link_up { src; dst; _ } ->
      up t src dst;
      record t ~time ~kind:"link_up" ~routers:[ src; dst ] ~detail:""
  | Schedule.Crash { router; _ } ->
      List.iter (fun (a, b) -> down t a b) (router_links graph router);
      record t ~time ~kind:"crash" ~routers:[ router ] ~detail:"fail-stop"
  | Schedule.Restart { router; _ } ->
      List.iter (fun (a, b) -> up t a b) (router_links graph router);
      record t ~time ~kind:"restart" ~routers:[ router ] ~detail:""
  | Schedule.Msg_loss _ | Schedule.Msg_dup _ | Schedule.Msg_reorder _
  | Schedule.Clock_skew _ | Schedule.Byz_frame _ | Schedule.Byz_equivocate _
  | Schedule.Byz_mute _ | Schedule.Byz_stall _ ->
      ()

let apply ?probe ~net schedule =
  Schedule.validate_exn ~graph:(Netsim.Net.graph net) schedule;
  let t = { probe; net; downs = Hashtbl.create 16; injected = 0 } in
  let sim = Netsim.Net.sim net in
  (* Channel faults and skews are static configuration: journal them
     once so the oracle and trace explain know the run was degraded. *)
  List.iter
    (fun (a : Schedule.action) ->
      match a with
      | Schedule.Msg_loss { src; dst; prob } ->
          record t ~time:0.0 ~kind:"msg_loss" ~routers:[ src; dst ]
            ~detail:(Printf.sprintf "prob=%g" prob)
      | Schedule.Msg_dup { src; dst; prob } ->
          record t ~time:0.0 ~kind:"msg_dup" ~routers:[ src; dst ]
            ~detail:(Printf.sprintf "prob=%g" prob)
      | Schedule.Msg_reorder { src; dst; prob; delay } ->
          record t ~time:0.0 ~kind:"msg_reorder" ~routers:[ src; dst ]
            ~detail:(Printf.sprintf "prob=%g delay=%g" prob delay)
      | Schedule.Clock_skew { router; skew } ->
          record t ~time:0.0 ~kind:"clock_skew" ~routers:[ router ]
            ~detail:(Printf.sprintf "skew=%g" skew)
      | Schedule.Byz_frame { router; victim; extras } ->
          record t ~time:0.0 ~kind:"byz_frame" ~routers:[ router; victim ]
            ~detail:(Printf.sprintf "extras=%d" extras)
      | Schedule.Byz_equivocate { router } ->
          record t ~time:0.0 ~kind:"byz_equivocate" ~routers:[ router ] ~detail:""
      | Schedule.Byz_mute { router; from } ->
          record t ~time:0.0 ~kind:"byz_mute" ~routers:[ router ]
            ~detail:(Printf.sprintf "from=%g" from)
      | Schedule.Byz_stall { router; margin } ->
          record t ~time:0.0 ~kind:"byz_stall" ~routers:[ router ]
            ~detail:(Printf.sprintf "margin=%g" margin)
      | _ -> ())
    schedule.Schedule.actions;
  List.iter
    (fun (a : Schedule.action) ->
      match a with
      | Schedule.Link_down { at; _ }
      | Schedule.Link_up { at; _ }
      | Schedule.Crash { at; _ }
      | Schedule.Restart { at; _ } ->
          Netsim.Sim.schedule_at sim ~time:at (fun () -> fire t a)
      | _ -> ())
    (Schedule.timed schedule);
  t

let injected t = t.injected

let ctrl (schedule : Schedule.t) =
  let faults = Hashtbl.create 8 in
  let get lk =
    Option.value (Hashtbl.find_opt faults lk) ~default:Core.Ctrl.clean
  in
  List.iter
    (fun (a : Schedule.action) ->
      match a with
      | Schedule.Msg_loss { src; dst; prob } ->
          Hashtbl.replace faults (src, dst)
            { (get (src, dst)) with Core.Ctrl.loss = prob }
      | Schedule.Msg_dup { src; dst; prob } ->
          Hashtbl.replace faults (src, dst)
            { (get (src, dst)) with Core.Ctrl.duplicate = prob }
      | Schedule.Msg_reorder { src; dst; prob; delay } ->
          Hashtbl.replace faults (src, dst)
            { (get (src, dst)) with
              Core.Ctrl.reorder = prob;
              Core.Ctrl.reorder_delay = delay }
      | _ -> ())
    schedule.Schedule.actions;
  let links =
    List.sort compare (Hashtbl.fold (fun lk f acc -> (lk, f) :: acc) faults [])
  in
  let t = Core.Ctrl.create ~seed:schedule.Schedule.seed ~links () in
  (* Protocol-faulty peers: muting and stalling live on the channel
     itself — a muted router exhausts every peer's retry budget, a
     staller consumes it without tripping it. *)
  List.iter
    (fun (a : Schedule.action) ->
      match a with
      | Schedule.Byz_mute { router; from } ->
          Core.Ctrl.set_peer_fault t ~router
            { (Core.Ctrl.peer_fault t ~router) with Core.Ctrl.mute_from = Some from }
      | Schedule.Byz_stall { router; margin } ->
          Core.Ctrl.set_peer_fault t ~router
            { (Core.Ctrl.peer_fault t ~router) with
              Core.Ctrl.stall_margin = Some margin }
      | _ -> ())
    schedule.Schedule.actions;
  t

let byz ?hardened ~n (schedule : Schedule.t) =
  let roles =
    List.filter_map
      (fun (a : Schedule.action) ->
        match a with
        | Schedule.Byz_frame { router; victim; extras } ->
            Some (router, Core.Byz.Framer { victim; extras })
        | Schedule.Byz_equivocate { router } -> Some (router, Core.Byz.Equivocator)
        | Schedule.Byz_mute { router; from } -> Some (router, Core.Byz.Mute { from })
        | Schedule.Byz_stall { router; margin } ->
            Some (router, Core.Byz.Staller { margin })
        | _ -> None)
      schedule.Schedule.actions
  in
  match roles with
  | [] -> None
  | roles ->
      Some (Core.Byz.create ?hardened ~seed:schedule.Schedule.seed ~n ~roles ())

let skew_fn (schedule : Schedule.t) =
  let skews = Hashtbl.create 8 in
  List.iter
    (fun (a : Schedule.action) ->
      match a with
      | Schedule.Clock_skew { router; skew } -> Hashtbl.replace skews router skew
      | _ -> ())
    schedule.Schedule.actions;
  fun router -> Option.value (Hashtbl.find_opt skews router) ~default:0.0
