(** Applies a {!Schedule} against a live [Netsim] run.

    The injector follows the [Probe] bridging pattern: it schedules the
    plan's timed actions on the run's simulation clock, flips the
    affected interfaces through the public [Net] surface (so the
    forwarding plane reports the losses as ordinary benign
    [Drop_link_down] events), and emits every injected fault as a
    telemetry journal record and a trace instant on the "faults" track —
    churn shows up in [mrdetect trace explain] right next to the
    verdicts it might have confused.

    A crash is fail-stop: every link out of {e and into} the router goes
    down, so its neighbours see exactly what the dissertation's §4.2.1
    benign-failure model prescribes — silence, not malice. *)

type t

val apply : ?probe:Netsim.Probe.t -> net:Netsim.Net.t -> Schedule.t -> t
(** Validate the schedule against the network's topology (raising
    [Invalid_argument] on a mismatch) and arm every timed action on the
    simulation clock.  Channel faults and clock skews are journaled
    once, at time 0, as configuration-style fault records.  Call before
    [Net.run]. *)

val injected : t -> int
(** Fault records emitted so far (grows as timed actions fire). *)

val ctrl : Schedule.t -> Core.Ctrl.t
(** The lossy control-plane channel the schedule describes: per-link
    loss/duplication/reordering probabilities keyed by the schedule
    seed, plus any protocol-faulty peer behaviour ([byz-mute] routers
    refuse participation, [byz-stall] routers hold acks just under the
    timeout).  Deterministic: the same schedule always yields a channel
    making the same coin flips. *)

val byz : ?hardened:bool -> n:int -> Schedule.t -> Core.Byz.t option
(** The Byzantine adversary layer the schedule's [byz-*] actions
    describe, over routers [0 .. n-1], keyed by the schedule seed —
    [None] when the schedule scripts no protocol-faulty role.  Plug the
    result into [Fatih.deploy ~byz] / [Pi2_live.deploy ~byz] and score
    the run with the oracle's [byzantine] ground truth.  [hardened]
    (default true) controls whether the detectors verify origin MACs on
    claimed summary entries. *)

val skew_fn : Schedule.t -> int -> float
(** Per-router clock skew lookup (0 for routers without a
    [clock-skew] entry) — plugs straight into [Chi.deploy ~skew] /
    [Qmon.attach ~skew]. *)
