type outcome = {
  verdicts : int;
  alarms : int;
  true_alarms : int;
  false_alarms : int;
  detected : int list;
  falsely_accused : int list;
  precision : float;
  recall : float;
  false_accusation_rate : float;
  detection_latency : float option;
  latency_hist : Telemetry.Hist.t;
  faults_injected : int;
  byzantine : int list;
  framing_attempts : int;
  forgeries_rejected : int;
  forgeries_accepted : int;
  equivocations_detected : int;
  mute_refusals : int;
  framed_honest : int;
  alpha_violations : int;
}

(* Same geometry as {!Netsim.Stats}' detection-latency histogram, so
   oracle quantiles and the always-on stats layer bucket identically. *)
let latency_hist_create () = Telemetry.Hist.create ~buckets:20 ~min_exp:(-4) ()

let implicated (v : Netsim.Probe.verdict) =
  match v.Netsim.Probe.subject with
  | Some s -> [ s ]
  | None -> v.Netsim.Probe.suspects

let score ~malicious ?(byzantine = []) ?(attack_start = 0.0)
    ?(faults_injected = 0) ?byz_stats verdicts =
  (* α-accuracy ground truth: a router is faulty if it is either
     traffic-faulty (drops/modifies packets) or protocol-faulty (lies
     inside the detection protocol).  An alarm implicating neither kind
     is an α-accuracy violation. *)
  let is_faulty r = List.mem r malicious || List.mem r byzantine in
  let n_verdicts = List.length verdicts in
  let alarms = List.filter (fun (v : Netsim.Probe.verdict) -> v.alarm) verdicts in
  let detected = ref [] in
  let falsely_accused = ref [] in
  let true_alarms = ref 0 in
  let false_alarms = ref 0 in
  let framed_honest = ref 0 in
  let first_true = ref None in
  let latency_hist = latency_hist_create () in
  List.iter
    (fun (v : Netsim.Probe.verdict) ->
      let accused = implicated v in
      let hits = List.filter is_faulty accused in
      (* A conviction-by-name of an honest router: the framing failure
         mode, counted even when the suspect list happens to also hold
         a faulty router. *)
      (match v.Netsim.Probe.subject with
      | Some s when not (is_faulty s) -> incr framed_honest
      | _ -> ());
      if hits <> [] then begin
        incr true_alarms;
        Telemetry.Hist.record latency_hist (v.Netsim.Probe.time -. attack_start);
        List.iter
          (fun r -> if not (List.mem r !detected) then detected := r :: !detected)
          hits;
        match !first_true with
        | Some t when t <= v.Netsim.Probe.time -> ()
        | _ -> first_true := Some v.Netsim.Probe.time
      end
      else begin
        incr false_alarms;
        List.iter
          (fun r ->
            if not (List.mem r !falsely_accused) then
              falsely_accused := r :: !falsely_accused)
          accused
      end)
    alarms;
  let n_alarms = List.length alarms in
  let n_malicious = List.length (List.sort_uniq compare malicious) in
  let recall_hits =
    List.length (List.filter (fun r -> List.mem r malicious) !detected)
  in
  { verdicts = n_verdicts;
    alarms = n_alarms;
    true_alarms = !true_alarms;
    false_alarms = !false_alarms;
    detected = List.sort compare !detected;
    falsely_accused = List.sort compare !falsely_accused;
    precision =
      (if n_alarms = 0 then 1.0
       else float_of_int !true_alarms /. float_of_int n_alarms);
    recall =
      (if n_malicious = 0 then 1.0
       else float_of_int recall_hits /. float_of_int n_malicious);
    false_accusation_rate =
      (if n_verdicts = 0 then 0.0
       else float_of_int !false_alarms /. float_of_int n_verdicts);
    detection_latency = Option.map (fun t -> t -. attack_start) !first_true;
    latency_hist;
    faults_injected;
    byzantine = List.sort_uniq compare byzantine;
    framing_attempts =
      (match byz_stats with
      | Some (s : Core.Byz.stats) -> s.Core.Byz.framing_attempts
      | None -> 0);
    forgeries_rejected =
      (match byz_stats with
      | Some s -> s.Core.Byz.forgeries_rejected
      | None -> 0);
    forgeries_accepted =
      (match byz_stats with
      | Some s -> s.Core.Byz.forgeries_accepted
      | None -> 0);
    equivocations_detected =
      (match byz_stats with Some s -> s.Core.Byz.equivocations | None -> 0);
    mute_refusals =
      (match byz_stats with Some s -> s.Core.Byz.mute_refusals | None -> 0);
    framed_honest = !framed_honest;
    (* An alarming verdict that implicates no faulty router at all:
       exactly the event the α-accuracy bar forbids. *)
    alpha_violations = !false_alarms }

let verdicts_of_probe = Netsim.Probe.verdicts

let of_probe ~malicious ?byzantine ?attack_start ?byz_stats probe =
  score ~malicious ?byzantine ?attack_start ?byz_stats
    ~faults_injected:(Netsim.Probe.faults_recorded probe)
    (verdicts_of_probe probe)

(* Quantiles over every true alarm's latency (not just the first):
   bucket upper bounds from the mergeable histogram, so the numbers are
   deterministic and identical however per-trial outcomes are merged. *)
let latency_quantiles_json h =
  let open Telemetry.Export in
  if Telemetry.Hist.count h = 0 then Null
  else
    Assoc
      [ ("count", Int (Telemetry.Hist.count h));
        ("mean", Float (Telemetry.Hist.mean h));
        ("p50", Float (Telemetry.Hist.p50 h));
        ("p95", Float (Telemetry.Hist.p95 h));
        ("p99", Float (Telemetry.Hist.p99 h)) ]

let json_of_outcome o =
  let open Telemetry.Export in
  Assoc
    [ ("verdicts", Int o.verdicts);
      ("alarms", Int o.alarms);
      ("true_alarms", Int o.true_alarms);
      ("false_alarms", Int o.false_alarms);
      ("detected", List (List.map (fun r -> Int r) o.detected));
      ("falsely_accused", List (List.map (fun r -> Int r) o.falsely_accused));
      ("precision", Float o.precision);
      ("recall", Float o.recall);
      ("false_accusation_rate", Float o.false_accusation_rate);
      ( "detection_latency",
        match o.detection_latency with Some l -> Float l | None -> Null );
      ("detection_latency_quantiles", latency_quantiles_json o.latency_hist);
      ("faults_injected", Int o.faults_injected);
      ("byzantine", List (List.map (fun r -> Int r) o.byzantine));
      ("framing_attempts", Int o.framing_attempts);
      ("forgeries_rejected", Int o.forgeries_rejected);
      ("forgeries_accepted", Int o.forgeries_accepted);
      ("equivocations_detected", Int o.equivocations_detected);
      ("mute_refusals", Int o.mute_refusals);
      ("framed_honest", Int o.framed_honest);
      ("alpha_violations", Int o.alpha_violations) ]

let json_report ?label o =
  let open Telemetry.Export in
  Assoc
    ([ ("schema", String "mrdetect-robustness-v1") ]
    @ (match label with Some l -> [ ("label", String l) ] | None -> [])
    @ [ ("report", json_of_outcome o) ])

let merge_json outcomes =
  let open Telemetry.Export in
  let fold f init = List.fold_left f init outcomes in
  let worst_precision = fold (fun acc o -> Float.min acc o.precision) 1.0 in
  let worst_recall = fold (fun acc o -> Float.min acc o.recall) 1.0 in
  let worst_far = fold (fun acc o -> Float.max acc o.false_accusation_rate) 0.0 in
  let total_false = fold (fun acc o -> acc + o.false_alarms) 0 in
  let total_framing = fold (fun acc o -> acc + o.framing_attempts) 0 in
  let total_rejected = fold (fun acc o -> acc + o.forgeries_rejected) 0 in
  let total_framed = fold (fun acc o -> acc + o.framed_honest) 0 in
  let total_alpha = fold (fun acc o -> acc + o.alpha_violations) 0 in
  (* Exact integer merge of the per-run histograms: the aggregate
     quantiles are byte-identical whatever order the runs arrive in. *)
  let merged_latency = latency_hist_create () in
  List.iter
    (fun o -> Telemetry.Hist.merge_into ~into:merged_latency o.latency_hist)
    outcomes;
  Assoc
    [ ("schema", String "mrdetect-robustness-v1");
      ("runs", List (List.map json_of_outcome outcomes));
      ( "aggregate",
        Assoc
          [ ("worst_precision", Float worst_precision);
            ("worst_recall", Float worst_recall);
            ("worst_false_accusation_rate", Float worst_far);
            ("total_false_alarms", Int total_false);
            ("total_framing_attempts", Int total_framing);
            ("total_forgeries_rejected", Int total_rejected);
            ("total_framed_honest", Int total_framed);
            ("total_alpha_violations", Int total_alpha);
            ( "detection_latency_quantiles",
              latency_quantiles_json merged_latency ) ] ) ]
