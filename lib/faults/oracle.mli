(** Ground truth for robustness runs.

    The oracle knows two things the detectors do not: which routers the
    adversary script actually controls, and which anomalies were
    injected-benign churn from a {!Schedule}.  Scoring a run's verdict
    stream against that ground truth yields the robustness metrics the
    chaos sweeps report:

    - {b precision} — alarming verdicts that implicate at least one
      truly malicious router, over all alarming verdicts (1 when the
      run never alarms);
    - {b recall} — truly malicious routers implicated by at least one
      alarm, over all malicious routers (1 when none exist);
    - {b false-accusation rate} — alarming verdicts that implicate
      {e only} benign routers, over all verdicts rendered (0 when no
      verdicts are rendered) — the paper's headline failure mode, a
      merely unlucky router treated as a traffic-faulty one;
    - {b detection latency} — time from [attack_start] to the first
      alarm implicating a malicious router, [None] if never.

    An alarming verdict implicates its [subject] when it has one (chi's
    monitored router, fatih's segment interior) and its [suspects]
    otherwise. *)

type outcome = {
  verdicts : int;          (** all verdicts rendered, alarming or not *)
  alarms : int;
  true_alarms : int;       (** alarms implicating >= 1 malicious router *)
  false_alarms : int;      (** alarms implicating only benign routers *)
  detected : int list;     (** malicious routers implicated, ascending *)
  falsely_accused : int list; (** benign routers implicated, ascending *)
  precision : float;
  recall : float;
  false_accusation_rate : float;
  detection_latency : float option;
  latency_hist : Telemetry.Hist.t;
      (** latency of {e every} true alarm (not just the first), in a
          mergeable histogram bucketed like {!Netsim.Stats}' detection
          hist — the source of the report's
          [detection_latency_quantiles] (count/mean/p50/p95/p99, [null]
          when no true alarm fired) and, merged exactly across runs, of
          the same field under [aggregate] in {!merge_json}. *)
  faults_injected : int;   (** benign fault records in the run *)
  byzantine : int list;    (** protocol-faulty ground truth, ascending *)
  framing_attempts : int;  (** rounds a framer submitted forged entries *)
  forgeries_rejected : int;   (** forged entries killed by origin MACs *)
  forgeries_accepted : int;   (** forged entries folded in (unhardened) *)
  equivocations_detected : int;
  mute_refusals : int;
  framed_honest : int;
      (** alarming verdicts convicting an honest router {e by name}
          ([subject] set to a non-faulty router) — the framing failure
          mode the hardened protocols must hold at zero *)
  alpha_violations : int;
      (** alarming verdicts implicating {e no} faulty router at all —
          the event α-accuracy forbids (with no Byzantine ground truth
          this coincides with [false_alarms]) *)
}

val score :
  malicious:int list ->
  ?byzantine:int list ->
  ?attack_start:float ->
  ?faults_injected:int ->
  ?byz_stats:Core.Byz.stats ->
  Netsim.Probe.verdict list ->
  outcome
(** Score a verdict stream.  [attack_start] (default 0) anchors the
    detection latency; [faults_injected] is carried through to the
    report.  [byzantine] (default none) extends the faulty ground truth
    to protocol-faulty routers: a true alarm may implicate either kind,
    while [recall] keeps its traffic-faulty denominator (stallers and
    equivocators need not be {e detected}, only never-framed-by).
    [byz_stats] carries the adversary-side counters (framing attempts,
    forgeries rejected/accepted, equivocations, mute refusals) into the
    report. *)

val of_probe :
  malicious:int list ->
  ?byzantine:int list ->
  ?attack_start:float ->
  ?byz_stats:Core.Byz.stats ->
  Netsim.Probe.t ->
  outcome
(** Score a finished run straight from its probe: verdicts and the
    injected-fault count come from the probe's full-run retention
    ([Probe.verdicts] / [Probe.faults_recorded]), not the bounded
    journal, so heavy link traffic cannot evict an early verdict from
    the scoring. *)

val verdicts_of_probe : Netsim.Probe.t -> Netsim.Probe.verdict list
(** Every verdict the run recorded, oldest first. *)

val json_report : ?label:string -> outcome -> Telemetry.Export.json
(** The [mrdetect-robustness-v1] report document. *)

val merge_json : outcome list -> Telemetry.Export.json
(** A [mrdetect-robustness-v1] document whose [runs] array holds one
    report per outcome, plus aggregate worst-case metrics. *)
