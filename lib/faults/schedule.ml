type action =
  | Link_down of { src : int; dst : int; at : float }
  | Link_up of { src : int; dst : int; at : float }
  | Crash of { router : int; at : float }
  | Restart of { router : int; at : float }
  | Msg_loss of { src : int; dst : int; prob : float }
  | Msg_dup of { src : int; dst : int; prob : float }
  | Msg_reorder of { src : int; dst : int; prob : float; delay : float }
  | Clock_skew of { router : int; skew : float }

type t = { seed : int; actions : action list }

let empty = { seed = 1; actions = [] }

(* --- printing --- *)

(* Shortest decimal that parses back to the same float, so
   [of_string (to_string t) = Ok t] holds exactly. *)
let fstr f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let action_to_string = function
  | Link_down { src; dst; at } ->
      Printf.sprintf "(link-down %d %d at %s)" src dst (fstr at)
  | Link_up { src; dst; at } ->
      Printf.sprintf "(link-up %d %d at %s)" src dst (fstr at)
  | Crash { router; at } -> Printf.sprintf "(crash %d at %s)" router (fstr at)
  | Restart { router; at } ->
      Printf.sprintf "(restart %d at %s)" router (fstr at)
  | Msg_loss { src; dst; prob } ->
      Printf.sprintf "(msg-loss %d %d prob %s)" src dst (fstr prob)
  | Msg_dup { src; dst; prob } ->
      Printf.sprintf "(msg-dup %d %d prob %s)" src dst (fstr prob)
  | Msg_reorder { src; dst; prob; delay } ->
      Printf.sprintf "(msg-reorder %d %d prob %s delay %s)" src dst (fstr prob)
        (fstr delay)
  | Clock_skew { router; skew } ->
      Printf.sprintf "(clock-skew %d skew %s)" router (fstr skew)

let to_string t =
  String.concat "\n"
    ((Printf.sprintf "(seed %d)" t.seed :: List.map action_to_string t.actions)
    @ [ "" ])

(* --- parsing --- *)

type token = Lp of int | Rp of int | Atom of int * string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '#' -> while !i < n && s.[!i] <> '\n' do incr i done
    | '(' ->
        toks := Lp !line :: !toks;
        incr i
    | ')' ->
        toks := Rp !line :: !toks;
        incr i
    | _ ->
        let start = !i in
        while
          !i < n
          && not
               (match s.[!i] with
               | ' ' | '\t' | '\r' | '\n' | '(' | ')' | '#' -> true
               | _ -> false)
        do
          incr i
        done;
        toks := Atom (!line, String.sub s start (!i - start)) :: !toks);
  done;
  List.rev !toks

exception Parse of string

let fail line fmt =
  Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "line %d: %s" line m))) fmt

let int_atom line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: expected an integer, got %S" what s

let float_atom line what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: expected a number, got %S" what s

let keyword line form expected s =
  if s <> expected then fail line "%s: expected %S, got %S" form expected s

(* One form = a flat list of atoms between parens (nesting rejected). *)
let parse_form line atoms =
  match atoms with
  | [] -> fail line "empty form"
  | head :: args -> (
      let arity want =
        if List.length args <> want then
          fail line "%s: expected %d arguments, got %d" head want
            (List.length args)
      in
      match (head, args) with
      | "seed", [ s ] -> `Seed (int_atom line "seed" s)
      | "seed", _ ->
          arity 1;
          assert false
      | "link-down", [ a; b; at_kw; t ] ->
          keyword line head "at" at_kw;
          `Action
            (Link_down
               { src = int_atom line "src" a; dst = int_atom line "dst" b;
                 at = float_atom line "time" t })
      | "link-up", [ a; b; at_kw; t ] ->
          keyword line head "at" at_kw;
          `Action
            (Link_up
               { src = int_atom line "src" a; dst = int_atom line "dst" b;
                 at = float_atom line "time" t })
      | "crash", [ r; at_kw; t ] ->
          keyword line head "at" at_kw;
          `Action
            (Crash { router = int_atom line "router" r; at = float_atom line "time" t })
      | "restart", [ r; at_kw; t ] ->
          keyword line head "at" at_kw;
          `Action
            (Restart
               { router = int_atom line "router" r; at = float_atom line "time" t })
      | "msg-loss", [ a; b; p_kw; p ] ->
          keyword line head "prob" p_kw;
          `Action
            (Msg_loss
               { src = int_atom line "src" a; dst = int_atom line "dst" b;
                 prob = float_atom line "prob" p })
      | "msg-dup", [ a; b; p_kw; p ] ->
          keyword line head "prob" p_kw;
          `Action
            (Msg_dup
               { src = int_atom line "src" a; dst = int_atom line "dst" b;
                 prob = float_atom line "prob" p })
      | "msg-reorder", [ a; b; p_kw; p; d_kw; d ] ->
          keyword line head "prob" p_kw;
          keyword line head "delay" d_kw;
          `Action
            (Msg_reorder
               { src = int_atom line "src" a; dst = int_atom line "dst" b;
                 prob = float_atom line "prob" p;
                 delay = float_atom line "delay" d })
      | "clock-skew", [ r; s_kw; s ] ->
          keyword line head "skew" s_kw;
          `Action
            (Clock_skew
               { router = int_atom line "router" r; skew = float_atom line "skew" s })
      | ( ("link-down" | "link-up" | "crash" | "restart" | "msg-loss" | "msg-dup"
          | "msg-reorder" | "clock-skew"),
          _ ) ->
          fail line "%s: wrong number of arguments" head
      | _ -> fail line "unknown fault form %S" head)

let of_string s =
  try
    let toks = tokenize s in
    let seed = ref None in
    let actions = ref [] in
    let rec forms = function
      | [] -> ()
      | Lp line :: rest ->
          let rec atoms acc = function
            | Atom (l, a) :: tl -> atoms ((l, a) :: acc) tl
            | Rp _ :: tl -> (List.rev acc, tl)
            | Lp l :: _ -> fail l "nested lists are not allowed"
            | [] -> fail line "unterminated form"
          in
          let atom_list, rest = atoms [] rest in
          (match parse_form line (List.map snd atom_list) with
          | `Seed v -> (
              match !seed with
              | None -> seed := Some v
              | Some _ -> fail line "duplicate (seed ...) form")
          | `Action a -> actions := a :: !actions);
          forms rest
      | Rp line :: _ -> fail line "unexpected ')'"
      | Atom (line, a) :: _ -> fail line "expected '(', got %S" a
    in
    forms toks;
    Ok { seed = Option.value !seed ~default:1; actions = List.rev !actions }
  with Parse m -> Error m

let load path =
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error m -> invalid_arg (Printf.sprintf "fault schedule: %s" m)
  in
  match of_string contents with
  | Ok t -> t
  | Error m -> invalid_arg (Printf.sprintf "fault schedule %s: %s" path m)

(* --- validation --- *)

let validate ~graph t =
  let n = Topology.Graph.size graph in
  let check_node what r =
    if r < 0 || r >= n then
      raise
        (Parse (Printf.sprintf "%s: router %d outside [0,%d)" what r n))
  in
  let check_link what src dst =
    check_node what src;
    check_node what dst;
    if Topology.Graph.link graph src dst = None then
      raise (Parse (Printf.sprintf "%s: no link %d->%d in topology" what src dst))
  in
  let check_time what v =
    if not (Float.is_finite v) || v < 0.0 then
      raise (Parse (Printf.sprintf "%s: time %g must be non-negative" what v))
  in
  let check_prob what p =
    if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
      raise (Parse (Printf.sprintf "%s: probability %g outside [0,1]" what p))
  in
  try
    List.iter
      (function
        | Link_down { src; dst; at } ->
            check_link "link-down" src dst;
            check_time "link-down" at
        | Link_up { src; dst; at } ->
            check_link "link-up" src dst;
            check_time "link-up" at
        | Crash { router; at } ->
            check_node "crash" router;
            check_time "crash" at
        | Restart { router; at } ->
            check_node "restart" router;
            check_time "restart" at
        | Msg_loss { src; dst; prob } ->
            check_node "msg-loss" src;
            check_node "msg-loss" dst;
            check_prob "msg-loss" prob
        | Msg_dup { src; dst; prob } ->
            check_node "msg-dup" src;
            check_node "msg-dup" dst;
            check_prob "msg-dup" prob
        | Msg_reorder { src; dst; prob; delay } ->
            check_node "msg-reorder" src;
            check_node "msg-reorder" dst;
            check_prob "msg-reorder" prob;
            if not (Float.is_finite delay) || delay < 0.0 then
              raise
                (Parse (Printf.sprintf "msg-reorder: negative delay %g" delay))
        | Clock_skew { router; skew } ->
            check_node "clock-skew" router;
            if not (Float.is_finite skew) then
              raise (Parse "clock-skew: skew must be finite"))
      t.actions;
    Ok ()
  with Parse m -> Error m

let validate_exn ~graph t =
  match validate ~graph t with
  | Ok () -> ()
  | Error m -> invalid_arg (Printf.sprintf "fault schedule: %s" m)

(* --- analysis --- *)

let action_time = function
  | Link_down { at; _ } | Link_up { at; _ } | Crash { at; _ } | Restart { at; _ }
    ->
      Some at
  | Msg_loss _ | Msg_dup _ | Msg_reorder _ | Clock_skew _ -> None

let timed t =
  List.stable_sort
    (fun a b ->
      match (action_time a, action_time b) with
      | Some ta, Some tb -> compare ta tb
      | _ -> 0)
    (List.filter (fun a -> action_time a <> None) t.actions)

(* Sweep the timed actions: +1 on each down/crash opening, -1 on the
   matching up/restart.  Unmatched closes are ignored; unmatched opens
   stay open, which is exactly what a concurrency budget must count. *)
let max_concurrent_outages t =
  let open_links = Hashtbl.create 8 in
  let open_crashes = Hashtbl.create 8 in
  let current = ref 0 in
  let peak = ref 0 in
  List.iter
    (fun a ->
      match a with
      | Link_down { src; dst; _ } ->
          if not (Hashtbl.mem open_links (src, dst)) then begin
            Hashtbl.add open_links (src, dst) ();
            incr current;
            if !current > !peak then peak := !current
          end
      | Link_up { src; dst; _ } ->
          if Hashtbl.mem open_links (src, dst) then begin
            Hashtbl.remove open_links (src, dst);
            decr current
          end
      | Crash { router; _ } ->
          if not (Hashtbl.mem open_crashes router) then begin
            Hashtbl.add open_crashes router ();
            incr current;
            if !current > !peak then peak := !current
          end
      | Restart { router; _ } ->
          if Hashtbl.mem open_crashes router then begin
            Hashtbl.remove open_crashes router;
            decr current
          end
      | _ -> ())
    (timed t);
  !peak

let crash_count t =
  List.length (List.filter (function Crash _ -> true | _ -> false) t.actions)
