type action =
  | Link_down of { src : int; dst : int; at : float }
  | Link_up of { src : int; dst : int; at : float }
  | Crash of { router : int; at : float }
  | Restart of { router : int; at : float }
  | Msg_loss of { src : int; dst : int; prob : float }
  | Msg_dup of { src : int; dst : int; prob : float }
  | Msg_reorder of { src : int; dst : int; prob : float; delay : float }
  | Clock_skew of { router : int; skew : float }
  | Byz_frame of { router : int; victim : int; extras : int }
  | Byz_equivocate of { router : int }
  | Byz_mute of { router : int; from : float }
  | Byz_stall of { router : int; margin : float }

type t = { seed : int; actions : action list }

let empty = { seed = 1; actions = [] }

(* --- printing --- *)

(* Shortest decimal that parses back to the same float, so
   [of_string (to_string t) = Ok t] holds exactly. *)
let fstr f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let action_to_string = function
  | Link_down { src; dst; at } ->
      Printf.sprintf "(link-down %d %d at %s)" src dst (fstr at)
  | Link_up { src; dst; at } ->
      Printf.sprintf "(link-up %d %d at %s)" src dst (fstr at)
  | Crash { router; at } -> Printf.sprintf "(crash %d at %s)" router (fstr at)
  | Restart { router; at } ->
      Printf.sprintf "(restart %d at %s)" router (fstr at)
  | Msg_loss { src; dst; prob } ->
      Printf.sprintf "(msg-loss %d %d prob %s)" src dst (fstr prob)
  | Msg_dup { src; dst; prob } ->
      Printf.sprintf "(msg-dup %d %d prob %s)" src dst (fstr prob)
  | Msg_reorder { src; dst; prob; delay } ->
      Printf.sprintf "(msg-reorder %d %d prob %s delay %s)" src dst (fstr prob)
        (fstr delay)
  | Clock_skew { router; skew } ->
      Printf.sprintf "(clock-skew %d skew %s)" router (fstr skew)
  | Byz_frame { router; victim; extras } ->
      Printf.sprintf "(byz-frame %d victim %d extras %d)" router victim extras
  | Byz_equivocate { router } -> Printf.sprintf "(byz-equivocate %d)" router
  | Byz_mute { router; from } ->
      Printf.sprintf "(byz-mute %d from %s)" router (fstr from)
  | Byz_stall { router; margin } ->
      Printf.sprintf "(byz-stall %d margin %s)" router (fstr margin)

let to_string t =
  String.concat "\n"
    ((Printf.sprintf "(seed %d)" t.seed :: List.map action_to_string t.actions)
    @ [ "" ])

(* --- parsing --- *)

(* Every token carries its line and 1-based starting column, so parse
   errors can point at the exact offending atom. *)
type pos = { line : int; col : int }
type token = Lp of pos | Rp of pos | Atom of pos * string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let line = ref 1 in
  let bol = ref 0 in (* index of the current line's first byte *)
  let i = ref 0 in
  let here () = { line = !line; col = !i - !bol + 1 } in
  while !i < n do
    (match s.[!i] with
    | '\n' ->
        incr line;
        incr i;
        bol := !i
    | ' ' | '\t' | '\r' -> incr i
    | '#' -> while !i < n && s.[!i] <> '\n' do incr i done
    | '(' ->
        toks := Lp (here ()) :: !toks;
        incr i
    | ')' ->
        toks := Rp (here ()) :: !toks;
        incr i
    | _ ->
        let start = !i in
        let pos = here () in
        while
          !i < n
          && not
               (match s.[!i] with
               | ' ' | '\t' | '\r' | '\n' | '(' | ')' | '#' -> true
               | _ -> false)
        do
          incr i
        done;
        toks := Atom (pos, String.sub s start (!i - start)) :: !toks);
  done;
  List.rev !toks

exception Parse of string

let fail pos fmt =
  Printf.ksprintf
    (fun m ->
      raise (Parse (Printf.sprintf "line %d, column %d: %s" pos.line pos.col m)))
    fmt

let int_atom what (pos, s) =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail pos "%s: expected an integer, got %S" what s

let float_atom what (pos, s) =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail pos "%s: expected a number, got %S" what s

let keyword form expected (pos, s) =
  if s <> expected then fail pos "%s: expected keyword %S, got %S" form expected s

(* One form = a flat list of positioned atoms between parens (nesting
   rejected).  Errors cite the offending atom and its exact position. *)
let parse_form lp_pos atoms =
  match atoms with
  | [] -> fail lp_pos "empty form"
  | ((head_pos, head) as _hd) :: args -> (
      let wrong_arity want =
        fail head_pos "%s: expected %d arguments, got %d" head want
          (List.length args)
      in
      match (head, args) with
      | "seed", [ s ] -> `Seed (int_atom "seed" s)
      | "seed", _ -> wrong_arity 1
      | "link-down", [ a; b; at_kw; tm ] ->
          keyword head "at" at_kw;
          `Action
            (Link_down
               { src = int_atom "src" a; dst = int_atom "dst" b;
                 at = float_atom "time" tm })
      | "link-up", [ a; b; at_kw; tm ] ->
          keyword head "at" at_kw;
          `Action
            (Link_up
               { src = int_atom "src" a; dst = int_atom "dst" b;
                 at = float_atom "time" tm })
      | "crash", [ r; at_kw; tm ] ->
          keyword head "at" at_kw;
          `Action
            (Crash { router = int_atom "router" r; at = float_atom "time" tm })
      | "restart", [ r; at_kw; tm ] ->
          keyword head "at" at_kw;
          `Action
            (Restart { router = int_atom "router" r; at = float_atom "time" tm })
      | "msg-loss", [ a; b; p_kw; p ] ->
          keyword head "prob" p_kw;
          `Action
            (Msg_loss
               { src = int_atom "src" a; dst = int_atom "dst" b;
                 prob = float_atom "prob" p })
      | "msg-dup", [ a; b; p_kw; p ] ->
          keyword head "prob" p_kw;
          `Action
            (Msg_dup
               { src = int_atom "src" a; dst = int_atom "dst" b;
                 prob = float_atom "prob" p })
      | "msg-reorder", [ a; b; p_kw; p; d_kw; d ] ->
          keyword head "prob" p_kw;
          keyword head "delay" d_kw;
          `Action
            (Msg_reorder
               { src = int_atom "src" a; dst = int_atom "dst" b;
                 prob = float_atom "prob" p;
                 delay = float_atom "delay" d })
      | "clock-skew", [ r; s_kw; sk ] ->
          keyword head "skew" s_kw;
          `Action
            (Clock_skew
               { router = int_atom "router" r; skew = float_atom "skew" sk })
      | "byz-frame", [ r; v_kw; v; e_kw; e ] ->
          keyword head "victim" v_kw;
          keyword head "extras" e_kw;
          `Action
            (Byz_frame
               { router = int_atom "router" r; victim = int_atom "victim" v;
                 extras = int_atom "extras" e })
      | "byz-equivocate", [ r ] ->
          `Action (Byz_equivocate { router = int_atom "router" r })
      | "byz-mute", [ r; f_kw; f ] ->
          keyword head "from" f_kw;
          `Action
            (Byz_mute { router = int_atom "router" r; from = float_atom "from" f })
      | "byz-stall", [ r; m_kw; m ] ->
          keyword head "margin" m_kw;
          `Action
            (Byz_stall
               { router = int_atom "router" r; margin = float_atom "margin" m })
      | ( ("link-down" | "link-up" | "crash" | "restart" | "msg-loss" | "msg-dup"
          | "msg-reorder" | "clock-skew" | "byz-frame" | "byz-equivocate"
          | "byz-mute" | "byz-stall"),
          _ ) ->
          fail head_pos "%s: wrong number of arguments (got %d)" head
            (List.length args)
      | _ -> fail head_pos "unknown fault form %S" head)

let of_string s =
  try
    let toks = tokenize s in
    let seed = ref None in
    let actions = ref [] in
    let rec forms = function
      | [] -> ()
      | Lp lp_pos :: rest ->
          let rec atoms acc = function
            | Atom (p, a) :: tl -> atoms ((p, a) :: acc) tl
            | Rp _ :: tl -> (List.rev acc, tl)
            | Lp p :: _ -> fail p "nested lists are not allowed"
            | [] -> fail lp_pos "unterminated form"
          in
          let atom_list, rest = atoms [] rest in
          (match parse_form lp_pos atom_list with
          | `Seed v -> (
              match !seed with
              | None -> seed := Some v
              | Some _ -> fail lp_pos "duplicate (seed ...) form")
          | `Action a -> actions := a :: !actions);
          forms rest
      | Rp pos :: _ -> fail pos "unexpected ')'"
      | Atom (pos, a) :: _ -> fail pos "expected '(', got %S" a
    in
    forms toks;
    Ok { seed = Option.value !seed ~default:1; actions = List.rev !actions }
  with Parse m -> Error m

let load path =
  let contents =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error m -> invalid_arg (Printf.sprintf "fault schedule: %s" m)
  in
  match of_string contents with
  | Ok t -> t
  | Error m -> invalid_arg (Printf.sprintf "fault schedule %s: %s" path m)

(* --- validation --- *)

let validate ~graph t =
  let n = Topology.Graph.size graph in
  let check_node what r =
    if r < 0 || r >= n then
      raise
        (Parse (Printf.sprintf "%s: router %d outside [0,%d)" what r n))
  in
  let check_link what src dst =
    check_node what src;
    check_node what dst;
    if Topology.Graph.link graph src dst = None then
      raise (Parse (Printf.sprintf "%s: no link %d->%d in topology" what src dst))
  in
  let check_time what v =
    if not (Float.is_finite v) || v < 0.0 then
      raise (Parse (Printf.sprintf "%s: time %g must be non-negative" what v))
  in
  let check_prob what p =
    if not (Float.is_finite p) || p < 0.0 || p > 1.0 then
      raise (Parse (Printf.sprintf "%s: probability %g outside [0,1]" what p))
  in
  try
    List.iter
      (function
        | Link_down { src; dst; at } ->
            check_link "link-down" src dst;
            check_time "link-down" at
        | Link_up { src; dst; at } ->
            check_link "link-up" src dst;
            check_time "link-up" at
        | Crash { router; at } ->
            check_node "crash" router;
            check_time "crash" at
        | Restart { router; at } ->
            check_node "restart" router;
            check_time "restart" at
        | Msg_loss { src; dst; prob } ->
            check_node "msg-loss" src;
            check_node "msg-loss" dst;
            check_prob "msg-loss" prob
        | Msg_dup { src; dst; prob } ->
            check_node "msg-dup" src;
            check_node "msg-dup" dst;
            check_prob "msg-dup" prob
        | Msg_reorder { src; dst; prob; delay } ->
            check_node "msg-reorder" src;
            check_node "msg-reorder" dst;
            check_prob "msg-reorder" prob;
            if not (Float.is_finite delay) || delay < 0.0 then
              raise
                (Parse (Printf.sprintf "msg-reorder: negative delay %g" delay))
        | Clock_skew { router; skew } ->
            check_node "clock-skew" router;
            if not (Float.is_finite skew) then
              raise (Parse "clock-skew: skew must be finite")
        | Byz_frame { router; victim; extras } ->
            check_node "byz-frame" router;
            check_node "byz-frame" victim;
            if victim = router then
              raise (Parse "byz-frame: a router cannot frame itself");
            if extras < 1 then
              raise
                (Parse
                   (Printf.sprintf "byz-frame: extras %d must be positive" extras))
        | Byz_equivocate { router } -> check_node "byz-equivocate" router
        | Byz_mute { router; from } ->
            check_node "byz-mute" router;
            check_time "byz-mute" from
        | Byz_stall { router; margin } ->
            check_node "byz-stall" router;
            if not (Float.is_finite margin) || margin < 0.0 || margin >= 1.0 then
              raise
                (Parse
                   (Printf.sprintf "byz-stall: margin %g outside [0,1)" margin)))
      t.actions;
    Ok ()
  with Parse m -> Error m

let validate_exn ~graph t =
  match validate ~graph t with
  | Ok () -> ()
  | Error m -> invalid_arg (Printf.sprintf "fault schedule: %s" m)

(* --- analysis --- *)

let action_time = function
  | Link_down { at; _ } | Link_up { at; _ } | Crash { at; _ } | Restart { at; _ }
    ->
      Some at
  | Msg_loss _ | Msg_dup _ | Msg_reorder _ | Clock_skew _ | Byz_frame _
  | Byz_equivocate _ | Byz_mute _ | Byz_stall _ ->
      None

let timed t =
  List.stable_sort
    (fun a b ->
      match (action_time a, action_time b) with
      | Some ta, Some tb -> compare ta tb
      | _ -> 0)
    (List.filter (fun a -> action_time a <> None) t.actions)

(* Sweep the timed actions: +1 on each down/crash opening, -1 on the
   matching up/restart.  Unmatched closes are ignored; unmatched opens
   stay open, which is exactly what a concurrency budget must count. *)
let max_concurrent_outages t =
  let open_links = Hashtbl.create 8 in
  let open_crashes = Hashtbl.create 8 in
  let current = ref 0 in
  let peak = ref 0 in
  List.iter
    (fun a ->
      match a with
      | Link_down { src; dst; _ } ->
          if not (Hashtbl.mem open_links (src, dst)) then begin
            Hashtbl.add open_links (src, dst) ();
            incr current;
            if !current > !peak then peak := !current
          end
      | Link_up { src; dst; _ } ->
          if Hashtbl.mem open_links (src, dst) then begin
            Hashtbl.remove open_links (src, dst);
            decr current
          end
      | Crash { router; _ } ->
          if not (Hashtbl.mem open_crashes router) then begin
            Hashtbl.add open_crashes router ();
            incr current;
            if !current > !peak then peak := !current
          end
      | Restart { router; _ } ->
          if Hashtbl.mem open_crashes router then begin
            Hashtbl.remove open_crashes router;
            decr current
          end
      | _ -> ())
    (timed t);
  !peak

let crash_count t =
  List.length (List.filter (function Crash _ -> true | _ -> false) t.actions)

let byzantine_routers t =
  List.sort_uniq compare
    (List.filter_map
       (function
         | Byz_frame { router; _ }
         | Byz_equivocate { router }
         | Byz_mute { router; _ }
         | Byz_stall { router; _ } ->
             Some router
         | _ -> None)
       t.actions)

let byzantine_count t = List.length (byzantine_routers t)
