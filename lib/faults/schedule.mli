(** A declarative, seed-deterministic fault plan.

    A schedule lists the {e benign} faults a run will experience —
    link failures and repairs, router crashes and restarts, lossy
    control-plane links, bounded clock skew — separated from any
    adversary script.  The split is the point: the review literature
    (Edemacu et al.) identifies benign-loss confusion as the dominant
    false-accusation source in packet-drop detectors, so the robustness
    oracle needs an unambiguous record of which anomalies were injected
    on purpose and were {e not} malice.

    Schedules have a textual s-expression form, one form per fault:

    {v
    # ring8 churn plan
    (seed 42)
    (link-down 0 1 at 3.0)
    (link-up 0 1 at 6.0)
    (crash 3 at 10.0)
    (restart 3 at 15.0)
    (msg-loss 0 1 prob 0.2)
    (msg-dup 0 1 prob 0.05)
    (msg-reorder 0 1 prob 0.1 delay 0.05)
    (clock-skew 2 skew 0.004)
    v}

    [#] starts a comment running to end of line.  Everything is
    deterministic: the seed keys the control-channel coins, and timed
    actions fire at exactly the written instants. *)

type action =
  | Link_down of { src : int; dst : int; at : float }
      (** fail the directed link at time [at] *)
  | Link_up of { src : int; dst : int; at : float }
  | Crash of { router : int; at : float }
      (** fail-stop: every link into and out of the router goes down *)
  | Restart of { router : int; at : float }
  | Msg_loss of { src : int; dst : int; prob : float }
      (** control-plane loss probability on the (src, dst) channel *)
  | Msg_dup of { src : int; dst : int; prob : float }
  | Msg_reorder of { src : int; dst : int; prob : float; delay : float }
  | Clock_skew of { router : int; skew : float }
      (** constant offset of the router's local clock, seconds *)

type t = { seed : int; actions : action list }

val empty : t
(** Seed 1, no actions. *)

val to_string : t -> string
(** Canonical textual form; [of_string] inverts it exactly. *)

val of_string : string -> (t, string) result
(** Parse the textual form.  Errors carry a line number and a
    human-readable reason. *)

val load : string -> t
(** Read and parse a schedule file.  Raises [Invalid_argument] with the
    parse error (or the system error) on failure. *)

val validate : graph:Topology.Graph.t -> t -> (unit, string) result
(** Check the schedule against a topology: nodes in range, link
    actions name existing directed links, times non-negative and
    finite, probabilities in [0,1], non-negative reorder delay and
    finite skew. *)

val validate_exn : graph:Topology.Graph.t -> t -> unit
(** Like {!validate} but raises [Invalid_argument]. *)

val timed : t -> action list
(** The link/crash actions carrying a time, sorted by time (stable for
    equal times, preserving schedule order). *)

val max_concurrent_outages : t -> int
(** The largest number of simultaneously open down/crash windows, a
    link flap and a crash each counting once.  Windows never closed by
    a matching up/restart stay open to the end.  This is what a chaos
    budget bounds. *)

val crash_count : t -> int
(** Total number of [Crash] actions. *)
