(** A declarative, seed-deterministic fault plan.

    A schedule lists the {e benign} faults a run will experience —
    link failures and repairs, router crashes and restarts, lossy
    control-plane links, bounded clock skew — separated from any
    adversary script.  The split is the point: the review literature
    (Edemacu et al.) identifies benign-loss confusion as the dominant
    false-accusation source in packet-drop detectors, so the robustness
    oracle needs an unambiguous record of which anomalies were injected
    on purpose and were {e not} malice.

    A schedule can also script {e protocol-faulty} (Byzantine)
    control-plane behaviour — routers that lie inside the detection
    protocol itself rather than merely dropping packets: framing an
    honest neighbour with forged summary entries, equivocating between
    peers, muting to exhaust retry budgets, stalling acks just under
    the timeout.  These are the §2.2 / Appendix B adversaries the
    α-accuracy guarantee must survive.

    Schedules have a textual s-expression form, one form per fault:

    {v
    # ring8 churn plan
    (seed 42)
    (link-down 0 1 at 3.0)
    (link-up 0 1 at 6.0)
    (crash 3 at 10.0)
    (restart 3 at 15.0)
    (msg-loss 0 1 prob 0.2)
    (msg-dup 0 1 prob 0.05)
    (msg-reorder 0 1 prob 0.1 delay 0.05)
    (clock-skew 2 skew 0.004)
    # protocol-faulty (Byzantine) roles
    (byz-frame 1 victim 2 extras 4)
    (byz-equivocate 5)
    (byz-mute 6 from 10)
    (byz-stall 7 margin 0.9)
    v}

    [#] starts a comment running to end of line.  Everything is
    deterministic: the seed keys the control-channel coins and the
    Byzantine claim transformations, and timed actions fire at exactly
    the written instants. *)

type action =
  | Link_down of { src : int; dst : int; at : float }
      (** fail the directed link at time [at] *)
  | Link_up of { src : int; dst : int; at : float }
  | Crash of { router : int; at : float }
      (** fail-stop: every link into and out of the router goes down *)
  | Restart of { router : int; at : float }
  | Msg_loss of { src : int; dst : int; prob : float }
      (** control-plane loss probability on the (src, dst) channel *)
  | Msg_dup of { src : int; dst : int; prob : float }
  | Msg_reorder of { src : int; dst : int; prob : float; delay : float }
  | Clock_skew of { router : int; skew : float }
      (** constant offset of the router's local clock, seconds *)
  | Byz_frame of { router : int; victim : int; extras : int }
      (** protocol-faulty: [router] forges [extras] summary entries per
          round to frame its honest neighbour [victim] *)
  | Byz_equivocate of { router : int }
      (** protocol-faulty: different summaries to different peers *)
  | Byz_mute of { router : int; from : float }
      (** protocol-faulty: refuse all control-plane participation from
          time [from], exhausting peers' retry budgets *)
  | Byz_stall of { router : int; margin : float }
      (** protocol-faulty: ack just under the timeout, consuming
          [margin] of the peer's total retry budget, in [0,1) *)

type t = { seed : int; actions : action list }

val empty : t
(** Seed 1, no actions. *)

val to_string : t -> string
(** Canonical textual form; [of_string] inverts it exactly. *)

val of_string : string -> (t, string) result
(** Parse the textual form.  Errors carry the line {e and column} of
    the offending atom plus the atom itself — ["line 2, column 14:
    time: expected a number, got \"soon\""] — never a bare failure. *)

val load : string -> t
(** Read and parse a schedule file.  Raises [Invalid_argument] with the
    parse error (or the system error) on failure. *)

val validate : graph:Topology.Graph.t -> t -> (unit, string) result
(** Check the schedule against a topology: nodes in range, link
    actions name existing directed links, times non-negative and
    finite, probabilities in [0,1], non-negative reorder delay and
    finite skew; Byzantine roles name in-range routers, a framer never
    frames itself, extras are positive and stall margins lie in
    [0,1). *)

val validate_exn : graph:Topology.Graph.t -> t -> unit
(** Like {!validate} but raises [Invalid_argument]. *)

val timed : t -> action list
(** The link/crash actions carrying a time, sorted by time (stable for
    equal times, preserving schedule order). *)

val max_concurrent_outages : t -> int
(** The largest number of simultaneously open down/crash windows, a
    link flap and a crash each counting once.  Windows never closed by
    a matching up/restart stay open to the end.  This is what a chaos
    budget bounds. *)

val crash_count : t -> int
(** Total number of [Crash] actions. *)

val byzantine_routers : t -> int list
(** Distinct routers with a protocol-faulty ([Byz_*]) role, ascending —
    the robustness oracle's protocol-faulty ground truth. *)

val byzantine_count : t -> int
