type t = { flow : int; mutable sent : int }

let flow_id t = t.flow
let sent t = t.sent

let check_args ~rate_pps ~size ~start ~stop =
  if rate_pps <= 0.0 then invalid_arg "Flow: rate must be positive";
  if size <= 0 then invalid_arg "Flow: size must be positive";
  if stop < start then invalid_arg "Flow: stop before start"

(* Ticks run on the source node's data-plane sim (its shard under the
   sharded engine), and uids come from the node's stream, so generated
   traffic is identical for any shard count. *)
let generator net ~flow ~src ~dst ~size ~start ~stop ~gap =
  let sim = Net.data_sim net ~node:src in
  let t = { flow; sent = 0 } in
  let rec tick () =
    if Sim.now sim <= stop then begin
      let pkt = Net.make_packet net ~src ~dst ~flow:t.flow ~size Packet.Udp in
      t.sent <- t.sent + 1;
      Net.originate net pkt;
      Sim.schedule sim ~delay:(gap ()) tick
    end
  in
  Sim.schedule_at sim ~time:start tick;
  t

let cbr net ~src ~dst ~rate_pps ~size ~start ~stop =
  check_args ~rate_pps ~size ~start ~stop;
  generator net ~flow:(Net.fresh_flow_id net) ~src ~dst ~size ~start ~stop
    ~gap:(fun () -> 1.0 /. rate_pps)

let poisson net ~src ~dst ~rate_pps ~size ~start ~stop =
  check_args ~rate_pps ~size ~start ~stop;
  let flow = Net.fresh_flow_id net in
  let rng = Net.flow_rng net ~flow in
  generator net ~flow ~src ~dst ~size ~start ~stop ~gap:(fun () ->
      Mrstats.Variate.exponential rng ~rate:rate_pps)

let delivered_counter net ~node ~flow =
  let count = ref 0 in
  Net.attach_app net ~node (fun pkt -> if pkt.Packet.flow = flow then incr count);
  fun () -> !count
