type kind =
  | Droptail of int
  | Red_queue of Red.params

type event =
  | Enqueued of Packet.t
  | Drop_congestion of Packet.t
  | Drop_red_early of Packet.t
  | Drop_link_down of Packet.t
  | Drop_corrupted of Packet.t
  | Transmit_start of Packet.t
  | Delivered of Packet.t

type queue = Fifo of Queue_fifo.t | Red_q of Red.t

type delivery =
  | Direct
  | Split of {
      rng : Random.State.t;
      handoff : time:float -> rank:int -> prev:int -> Packet.t -> unit;
    }

type t = {
  sim : Sim.t;
  link : Topology.Graph.link;
  queue : queue;
  delivery : delivery;
  on_event : t -> event -> unit;
  deliver : prev:int -> Packet.t -> unit;
  mutable busy : bool;
  mutable up : bool;
  mutable corruption : float;
  (* Always-on per-interface counters (the dissertation's per-router
     counter state): plain integer bumps on the hot path, scraped by the
     telemetry layer at export time. *)
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable delivered_packets : int;
  mutable dropped_packets : int;
}

let create ~sim ~link ~kind ?(delivery = Direct) ~on_event ~deliver () =
  let queue =
    match kind with
    | Droptail limit_bytes -> Fifo (Queue_fifo.create ~limit_bytes ())
    | Red_queue params ->
        (* Sharded mode gives RED its own per-interface stream so drop
           coins do not depend on the shard count. *)
        let rng =
          match delivery with Split { rng; _ } -> rng | Direct -> Sim.rng sim
        in
        Red_q (Red.create ~params ~rng ())
  in
  { sim; link; queue; delivery; on_event; deliver; busy = false; up = true;
    corruption = 0.0; tx_packets = 0; tx_bytes = 0; delivered_packets = 0;
    dropped_packets = 0 }

let owner t = t.link.Topology.Graph.src
let next_hop t = t.link.Topology.Graph.dst
let link t = t.link

let occupancy t =
  match t.queue with Fifo q -> Queue_fifo.occupancy q | Red_q q -> Red.occupancy q

let queue_limit t =
  match t.queue with
  | Fifo q -> Queue_fifo.limit q
  | Red_q q -> (Red.params q).Red.limit_bytes

let red_state t = match t.queue with Red_q q -> Some q | Fifo _ -> None

let backlog t =
  match t.queue with Fifo q -> Queue_fifo.length q | Red_q q -> Red.length q

let dequeue t =
  match t.queue with
  | Fifo q -> Queue_fifo.dequeue q
  | Red_q q -> Red.dequeue q ~now:(Sim.now t.sim)

(* Serialize the head packet; at transmission end start the next one; at
   transmission end + propagation delay the packet reaches the
   neighbour. *)
let rec kick t =
  if (not t.busy) && t.up then begin
    match dequeue t with
    | None -> ()
    | Some p ->
        t.busy <- true;
        t.tx_packets <- t.tx_packets + 1;
        t.tx_bytes <- t.tx_bytes + p.Packet.size;
        t.on_event t (Transmit_start p);
        let tx = float_of_int p.Packet.size /. t.link.Topology.Graph.bw in
        Sim.schedule t.sim ~delay:tx (fun () ->
            t.busy <- false;
            kick t);
        (match t.delivery with
        | Direct ->
            Sim.schedule t.sim ~delay:(tx +. t.link.Topology.Graph.delay) (fun () ->
                if t.corruption > 0.0
                   && Random.State.float (Sim.rng t.sim) 1.0 < t.corruption
                then begin
                  t.dropped_packets <- t.dropped_packets + 1;
                  t.on_event t (Drop_corrupted p)
                end
                else begin
                  t.delivered_packets <- t.delivered_packets + 1;
                  t.on_event t (Delivered p);
                  t.deliver ~prev:(owner t) p
                end)
        | Split { rng; handoff } ->
            (* Sharded mode: the corruption coin is drawn now, from the
               per-interface stream, and the receive step is handed off
               with a rank drawn now — everything about the arrival is
               decided at transmit-start, which is what gives the engine
               its lookahead (the arrival lies at least one link latency
               in the future).  The owner-side arrival event keeps the
               counters and the wire observation on this shard; the
               receive itself runs as its own event on the neighbour's
               shard at the same instant. *)
            let at = Sim.now t.sim +. tx +. t.link.Topology.Graph.delay in
            let corrupted =
              t.corruption > 0.0 && Random.State.float rng 1.0 < t.corruption
            in
            if corrupted then
              Sim.schedule_at t.sim ~time:at (fun () ->
                  t.dropped_packets <- t.dropped_packets + 1;
                  t.on_event t (Drop_corrupted p))
            else begin
              Sim.schedule_at t.sim ~time:at (fun () ->
                  t.delivered_packets <- t.delivered_packets + 1;
                  t.on_event t (Delivered p));
              handoff ~time:at ~rank:(Sim.fresh_rank t.sim) ~prev:(owner t) p
            end)
  end

let is_up t = t.up

let set_corruption t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Iface.set_corruption: probability outside [0,1]";
  t.corruption <- p

let set_up t up =
  t.up <- up;
  if up then kick t

let enqueue t p =
  if not t.up then begin
    t.dropped_packets <- t.dropped_packets + 1;
    t.on_event t (Drop_link_down p)
  end
  else begin
  let verdict =
    match t.queue with
    | Fifo q -> if Queue_fifo.try_enqueue q p then `Enqueued else `Forced_drop
    | Red_q q -> Red.enqueue q ~now:(Sim.now t.sim) ~link_bw:t.link.Topology.Graph.bw p
  in
  match verdict with
  | `Enqueued ->
      t.on_event t (Enqueued p);
      kick t
  | `Forced_drop ->
      t.dropped_packets <- t.dropped_packets + 1;
      t.on_event t (Drop_congestion p)
  | `Early_drop ->
      t.dropped_packets <- t.dropped_packets + 1;
      t.on_event t (Drop_red_early p)
  end

let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
let delivered_packets t = t.delivered_packets
let dropped_packets t = t.dropped_packets
