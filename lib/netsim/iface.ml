type kind =
  | Droptail of int
  | Red_queue of Red.params

type event =
  | Enqueued of Packet.t
  | Drop_congestion of Packet.t
  | Drop_red_early of Packet.t
  | Drop_link_down of Packet.t
  | Drop_corrupted of Packet.t
  | Transmit_start of Packet.t
  | Delivered of Packet.t

type queue = Fifo of Queue_fifo.t | Red_q of Red.t

type delivery =
  | Direct
  | Split of {
      rng : Random.State.t;
      handoff : time:float -> rank:int -> prev:int -> Packet.t -> unit;
    }

type t = {
  sim : Sim.t;
  link : Topology.Graph.link;
  queue : queue;
  delivery : delivery;
  on_event : t -> event -> unit;
  deliver : prev:int -> Packet.t -> unit;
  release : Packet.t -> unit;  (* return a dead packet to its pool *)
  mutable observe : bool;
  mutable busy : bool;
  mutable up : bool;
  mutable corruption : float;
  (* Always-on per-interface counters (the dissertation's per-router
     counter state): plain integer bumps on the hot path, scraped by the
     telemetry layer at export time. *)
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable delivered_packets : int;
  mutable dropped_packets : int;
}

(* Event tags for the flat heap (registered below, once the handlers'
   callees exist).  Tagged scheduling replaces the two closures the old
   hot path boxed per transmission. *)
let tag_txend = ref 0
let tag_arrive = ref 0      (* Direct-mode arrival: coin, counters, deliver *)
let tag_arrive_obs = ref 0  (* Split-mode owner-side arrival observation *)

let no_release (_ : Packet.t) = ()

let create ~sim ~link ~kind ?(delivery = Direct) ?(release = no_release)
    ~on_event ~deliver () =
  let queue =
    match kind with
    | Droptail limit_bytes -> Fifo (Queue_fifo.create ~limit_bytes ())
    | Red_queue params ->
        (* Sharded mode gives RED its own per-interface stream so drop
           coins do not depend on the shard count. *)
        let rng =
          match delivery with Split { rng; _ } -> rng | Direct -> Sim.rng sim
        in
        Red_q (Red.create ~params ~rng ())
  in
  { sim; link; queue; delivery; on_event; deliver; release; observe = true;
    busy = false; up = true;
    corruption = 0.0; tx_packets = 0; tx_bytes = 0; delivered_packets = 0;
    dropped_packets = 0 }

let owner t = t.link.Topology.Graph.src
let next_hop t = t.link.Topology.Graph.dst
let link t = t.link
let set_observe t v = t.observe <- v

let occupancy t =
  match t.queue with Fifo q -> Queue_fifo.occupancy q | Red_q q -> Red.occupancy q

let queue_limit t =
  match t.queue with
  | Fifo q -> Queue_fifo.limit q
  | Red_q q -> (Red.params q).Red.limit_bytes

let red_state t = match t.queue with Red_q q -> Some q | Fifo _ -> None

let backlog t =
  match t.queue with Fifo q -> Queue_fifo.length q | Red_q q -> Red.length q

let queue_empty t =
  match t.queue with
  | Fifo q -> Queue_fifo.is_empty q
  | Red_q q -> Red.is_empty q

(* pre: not empty *)
let dequeue_exn t =
  match t.queue with
  | Fifo q -> Queue_fifo.dequeue_exn q
  | Red_q q -> Red.dequeue_exn q ~now:(Sim.now t.sim)

(* Serialize the head packet; at transmission end start the next one; at
   transmission end + propagation delay the packet reaches the
   neighbour. *)
let kick t =
  if (not t.busy) && t.up && not (queue_empty t) then begin
    let p = dequeue_exn t in
        t.busy <- true;
        t.tx_packets <- t.tx_packets + 1;
        t.tx_bytes <- t.tx_bytes + p.Packet.size;
        if t.observe then t.on_event t (Transmit_start p);
        let tx = float_of_int p.Packet.size /. t.link.Topology.Graph.bw in
        Sim.schedule_ev t.sim ~delay:tx ~tag:!tag_txend ~i:0 (Obj.repr t)
          Sim.nil;
        (match t.delivery with
        | Direct ->
            Sim.schedule_ev t.sim ~delay:(tx +. t.link.Topology.Graph.delay)
              ~tag:!tag_arrive ~i:0 (Obj.repr t) (Obj.repr p)
        | Split { rng; handoff } ->
            (* Sharded mode: the corruption coin is drawn now, from the
               per-interface stream, and the receive step is handed off
               with a rank drawn now — everything about the arrival is
               decided at transmit-start, which is what gives the engine
               its lookahead (the arrival lies at least one link latency
               in the future).  The owner-side arrival event keeps the
               counters and the wire observation on this shard; the
               receive itself runs as its own event on the neighbour's
               shard at the same instant.  When nothing observes the
               network the owner-side event is elided entirely —
               counters are settled here at transmit-start — which is
               safe for every K at once because observation is a
               whole-network property. *)
            let at = Sim.now t.sim +. tx +. t.link.Topology.Graph.delay in
            let corrupted =
              t.corruption > 0.0 && Random.State.float rng 1.0 < t.corruption
            in
            if t.observe then begin
              Sim.schedule_ev_at t.sim ~time:at ~tag:!tag_arrive_obs
                ~i:(if corrupted then 1 else 0)
                (Obj.repr t) (Obj.repr p);
              if not corrupted then
                handoff ~time:at ~rank:(Sim.fresh_rank t.sim) ~prev:(owner t) p
            end
            else if corrupted then begin
              t.dropped_packets <- t.dropped_packets + 1;
              t.release p
            end
            else begin
              t.delivered_packets <- t.delivered_packets + 1;
              handoff ~time:at ~rank:(Sim.fresh_rank t.sim) ~prev:(owner t) p
            end)
  end

(* Direct-mode arrival: the coin comes from the simulation stream at the
   arrival instant, exactly as the classic engine always drew it. *)
let arrive_direct t p =
  if t.corruption > 0.0 && Random.State.float (Sim.rng t.sim) 1.0 < t.corruption
  then begin
    t.dropped_packets <- t.dropped_packets + 1;
    if t.observe then t.on_event t (Drop_corrupted p) else t.release p
  end
  else begin
    t.delivered_packets <- t.delivered_packets + 1;
    if t.observe then t.on_event t (Delivered p);
    t.deliver ~prev:(owner t) p
  end

(* Split-mode owner-side arrival (observed runs only): settle counters
   and report the wire event; the corruption coin was already drawn at
   transmit-start ([iarg] carries the outcome). *)
let arrive_obs t p corrupted =
  if corrupted = 1 then begin
    t.dropped_packets <- t.dropped_packets + 1;
    t.on_event t (Drop_corrupted p)
  end
  else begin
    t.delivered_packets <- t.delivered_packets + 1;
    t.on_event t (Delivered p)
  end

let () =
  tag_txend :=
    Sim.new_tag (fun _ a _ _ ->
        let t : t = Obj.obj a in
        t.busy <- false;
        kick t);
  tag_arrive :=
    Sim.new_tag (fun _ a b _ -> arrive_direct (Obj.obj a) (Obj.obj b));
  tag_arrive_obs :=
    Sim.new_tag (fun _ a b i -> arrive_obs (Obj.obj a) (Obj.obj b) i)

let is_up t = t.up

let set_corruption t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Iface.set_corruption: probability outside [0,1]";
  t.corruption <- p

let set_up t up =
  t.up <- up;
  if up then kick t

let enqueue t p =
  if not t.up then begin
    t.dropped_packets <- t.dropped_packets + 1;
    if t.observe then t.on_event t (Drop_link_down p) else t.release p
  end
  else begin
  let verdict =
    match t.queue with
    | Fifo q -> if Queue_fifo.try_enqueue q p then `Enqueued else `Forced_drop
    | Red_q q -> Red.enqueue q ~now:(Sim.now t.sim) ~link_bw:t.link.Topology.Graph.bw p
  in
  match verdict with
  | `Enqueued ->
      if t.observe then t.on_event t (Enqueued p);
      kick t
  | `Forced_drop ->
      t.dropped_packets <- t.dropped_packets + 1;
      if t.observe then t.on_event t (Drop_congestion p) else t.release p
  | `Early_drop ->
      t.dropped_packets <- t.dropped_packets + 1;
      if t.observe then t.on_event t (Drop_red_early p) else t.release p
  end

let tx_packets t = t.tx_packets
let tx_bytes t = t.tx_bytes
let delivered_packets t = t.delivered_packets
let dropped_packets t = t.dropped_packets
