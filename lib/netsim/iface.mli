(** An output interface: a queue drained onto a point-to-point link.

    Implements the §6.1.3 forwarding model: a packet is enqueued into the
    output buffer (or dropped by congestion/RED), transmitted at link
    rate, and delivered to the neighbour after the propagation delay.
    Every observable transition is reported through an event callback;
    the monitoring layer builds its traffic information from these events
    exactly as neighbours would observe them on the wire. *)

type kind =
  | Droptail of int        (** drop-tail with the given byte limit *)
  | Red_queue of Red.params

type event =
  | Enqueued of Packet.t         (** admitted to the output buffer *)
  | Drop_congestion of Packet.t  (** buffer full (drop-tail or RED forced) *)
  | Drop_red_early of Packet.t   (** RED probabilistic early drop *)
  | Drop_link_down of Packet.t   (** offered to a failed link *)
  | Drop_corrupted of Packet.t   (** damaged in flight, discarded by the
                                     receiving line card (4.2.1) *)
  | Transmit_start of Packet.t   (** left the queue, serialization begins *)
  | Delivered of Packet.t        (** arrived at the far end of the link *)

type delivery =
  | Direct
      (** Classic single-heap engine: the arrival event draws the
          corruption coin from the simulation rng and calls [deliver]
          inline. *)
  | Split of {
      rng : Random.State.t;
      handoff : time:float -> rank:int -> prev:int -> Packet.t -> unit;
    }
      (** Sharded engine: the corruption coin comes from the given
          per-interface stream and is drawn at transmit-start; intact
          packets are handed off (arrival time, deterministic event
          rank, previous hop) so the engine can schedule the receive on
          the destination router's shard.  The owner-side arrival event
          (counters + [Delivered]/[Drop_corrupted] observation) stays on
          this shard.  Deciding the arrival at transmit-start is what
          gives the shard engine its lookahead. *)

type t

val create :
  sim:Sim.t ->
  link:Topology.Graph.link ->
  kind:kind ->
  ?delivery:delivery ->
  ?release:(Packet.t -> unit) ->
  on_event:(t -> event -> unit) ->
  deliver:(prev:int -> Packet.t -> unit) ->
  unit ->
  t
(** Build the interface for a directed link.  [deliver] is invoked at the
    packet's arrival instant at [link.dst] with [prev = link.src]
    (ignored in [Split] mode, where [handoff] replaces it).  [release]
    (default: no-op) receives packets this interface kills while the
    network is unobserved — the pool-recycling hook. *)

val set_observe : t -> bool -> unit
(** Whether anything consumes this interface's events.  [true] (the
    default) reports every transition through [on_event] exactly as
    before; [false] elides event construction — and, in [Split] mode,
    the owner-side arrival event itself (counters settle at
    transmit-start) — so the steady-state hot path allocates nothing.
    Must be fixed before the run starts: flipping it mid-run changes the
    event structure.  {!Net} manages it from its probe and subscriber
    state. *)

val owner : t -> int
(** The router that owns the queue ([link.src]). *)

val next_hop : t -> int
(** The neighbour the interface feeds ([link.dst]). *)

val link : t -> Topology.Graph.link

val occupancy : t -> int
(** Bytes currently buffered. *)

val queue_limit : t -> int
(** Byte limit of the buffer. *)

val red_state : t -> Red.t option
(** The RED queue when [kind] is [Red_queue]. *)

val enqueue : t -> Packet.t -> unit
(** Submit a packet for transmission (the router's forwarding step). *)

val backlog : t -> int
(** Packets currently buffered. *)

val is_up : t -> bool

val set_up : t -> bool -> unit
(** Fail or restore the link.  While down, offered packets are dropped
    with [Drop_link_down] and buffered packets wait; restoring resumes
    transmission. *)

val set_corruption : t -> float -> unit
(** Per-packet probability of in-flight damage (checksum failure at the
    receiver); corrupted packets raise [Drop_corrupted] instead of being
    delivered.  Raises [Invalid_argument] outside [0,1]. *)

val tx_packets : t -> int
(** Packets whose serialization onto the link started (always-on
    per-interface counter, scraped by the telemetry layer). *)

val tx_bytes : t -> int
(** Bytes of those packets. *)

val delivered_packets : t -> int
(** Packets that reached the far end intact. *)

val dropped_packets : t -> int
(** Packets this interface discarded (congestion, RED, link-down or
    in-flight corruption). *)
