(* Single-producer single-consumer bounded ring with an unbounded
   producer-side overflow spill.

   The sharded engine gives each (source shard -> coordinator) edge its
   own mailbox, so exactly one domain pushes and exactly one domain
   drains.  The ring part is lock-free: the producer writes the slot
   then publishes by bumping [tail]; the consumer reads slots up to the
   observed [tail] and frees them by bumping [head].  OCaml [Atomic]
   operations are sequentially consistent, so the slot write always
   happens-before the tail publish.

   When the ring is full the producer spills into a plain list instead
   of blocking — the coordinator only drains at window barriers (where a
   mutex handshake already orders memory), so the spill list needs no
   synchronization of its own, and the engine never deadlocks on a burst
   of cross-shard traffic.  [overflowed] counts spills so benchmarks can
   tell when [capacity] is undersized. *)

type 'a t = {
  slots : 'a option array;
  capacity : int;
  head : int Atomic.t; (* next slot to read; advanced by the consumer *)
  _pad : int array; (* see [spaced_atomics] *)
  tail : int Atomic.t; (* next slot to write; advanced by the producer *)
  mutable overflow_rev : 'a list; (* producer-side spill, newest first *)
  mutable pushed : int;
  mutable overflowed : int;
}

(* [head] is written by the consumer domain, [tail] by the producer; if
   the two atomic blocks share a cache line every push invalidates the
   consumer's line and vice versa.  Allocating a cache line of padding
   between them keeps them apart; the spacer is retained in the record
   so compaction cannot close the gap. *)
let spaced_atomics () =
  let head = Atomic.make 0 in
  let pad = Array.make 8 0 in
  let tail = Atomic.make 0 in
  (head, pad, tail)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  let head, _pad, tail = spaced_atomics () in
  { slots = Array.make capacity None; capacity; head; _pad; tail;
    overflow_rev = []; pushed = 0; overflowed = 0 }

let capacity t = t.capacity
let pushed t = t.pushed
let overflowed t = t.overflowed

(* Producer side only. *)
let push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head < t.capacity then begin
    t.slots.(tail mod t.capacity) <- Some x;
    Atomic.set t.tail (tail + 1)
  end
  else begin
    t.overflow_rev <- x :: t.overflow_rev;
    t.overflowed <- t.overflowed + 1
  end;
  t.pushed <- t.pushed + 1

(* Consumer side, safe against a concurrent producer: takes only the
   ring portion, never the spill. *)
let drain_ring t f =
  let tail = Atomic.get t.tail in
  let head = ref (Atomic.get t.head) in
  while !head < tail do
    let i = !head mod t.capacity in
    (match t.slots.(i) with
    | Some x ->
        t.slots.(i) <- None;
        incr head;
        Atomic.set t.head !head;
        f x
    | None -> assert false)
  done

(* Consumer side only.  The ring portion is safe against a concurrent
   producer; the overflow portion is only drained when the producer is
   quiescent (the coordinator calls this at window barriers). *)
let drain t f =
  drain_ring t f;
  match t.overflow_rev with
  | [] -> ()
  | spill ->
      t.overflow_rev <- [];
      List.iter f (List.rev spill)

let is_empty t =
  Atomic.get t.head = Atomic.get t.tail && t.overflow_rev == []
