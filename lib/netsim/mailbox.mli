(** Single-producer single-consumer bounded lock-free ring with an
    unbounded producer-side overflow spill.

    The sharded engine ({!Shard}) gives each source shard one mailbox
    for its outbound cross-shard events; the coordinator drains all
    mailboxes at every window barrier.  The ring never blocks the
    producer: when full, messages spill into a plain list that is only
    touched once the producer is quiescent (the barrier's mutex
    handshake provides the ordering), so determinism and progress are
    preserved under bursts at the cost of allocation. *)

type 'a t

val create : capacity:int -> 'a t
(** Ring with the given (positive) slot count. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Producer side: enqueue, spilling to the overflow list when the ring
    is full.  Never blocks, never drops. *)

val drain : 'a t -> ('a -> unit) -> unit
(** Consumer side: apply [f] to every pending message in push order
    (ring first, then any overflow).  Ring entries may be drained
    concurrently with the producer; the overflow list must only be
    drained while the producer is quiescent. *)

val drain_ring : 'a t -> ('a -> unit) -> unit
(** Like {!drain} but takes only the ring portion, which is safe
    against a concurrent producer at any time.  Messages sitting in the
    overflow spill stay put.  Used by live-drain loops (and the
    mailbox micro-benchmark) that run while the producer is active. *)

val is_empty : 'a t -> bool
(** Whether no message is pending.  Only exact while the producer is
    quiescent. *)

val pushed : 'a t -> int
(** Total messages ever pushed (producer-side counter). *)

val overflowed : 'a t -> int
(** How many of those spilled past the bounded ring — a sizing
    diagnostic for benchmarks. *)
