type flow_series = {
  bucket : float;
  bins : (int, int) Hashtbl.t;  (* bin index -> bytes *)
  mutable last_bin : int;
  mutable total : int;
}

let flow_throughput net ~node ~flow ~bucket =
  if bucket <= 0.0 then invalid_arg "Meter.flow_throughput: bucket must be positive";
  let t = { bucket; bins = Hashtbl.create 64; last_bin = 0; total = 0 } in
  let sim = Net.sim net in
  Net.attach_app net ~node (fun pkt ->
      if pkt.Packet.flow = flow then begin
        let bin = int_of_float (Sim.now sim /. bucket) in
        Hashtbl.replace t.bins bin
          (pkt.Packet.size + Option.value ~default:0 (Hashtbl.find_opt t.bins bin));
        if bin > t.last_bin then t.last_bin <- bin;
        t.total <- t.total + pkt.Packet.size
      end);
  t

let series t =
  List.init (t.last_bin + 1) (fun bin ->
      let bytes = Option.value ~default:0 (Hashtbl.find_opt t.bins bin) in
      (float_of_int (bin + 1) *. t.bucket, float_of_int bytes /. t.bucket))

let total_bytes t = t.total

type queue_series = { series_journal : (float * int) Telemetry.Journal.t }

let queue_occupancy net ~router ~next ?(capacity = 262144) ~period () =
  if period <= 0.0 then invalid_arg "Meter.queue_occupancy: period must be positive";
  let iface =
    match Net.iface net ~src:router ~dst:next with
    | Some i -> i
    | None -> invalid_arg "Meter.queue_occupancy: no such link"
  in
  let t = { series_journal = Telemetry.Journal.create ~capacity () } in
  let sim = Net.sim net in
  let rec sample () =
    Telemetry.Journal.record t.series_journal (Sim.now sim, Iface.occupancy iface);
    Sim.schedule sim ~delay:period sample
  in
  Sim.schedule sim ~delay:period sample;
  t

let samples t = Telemetry.Journal.to_list t.series_journal

let occupancy_stats t =
  let xs = Array.of_list (List.map (fun (_, o) -> float_of_int o) (samples t)) in
  if Array.length xs = 0 then (0.0, 0.0)
  else (Mrstats.Descriptive.mean xs, Mrstats.Descriptive.stddev xs)
