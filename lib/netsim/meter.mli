(** Measurement taps: per-flow delivery series and queue occupancy
    sampling.

    The Chapter 6 figures plot victim-flow throughput collapsing under
    attack next to the detector's confidence; this module collects those
    series from the event stream without touching the forwarding path.
    Sampled series are stored in bounded {!Telemetry.Journal} rings, so
    a long-running measurement cannot grow without bound. *)

type flow_series

val flow_throughput :
  Net.t -> node:int -> flow:int -> bucket:float -> flow_series
(** Record the bytes of [flow] delivered at [node] into [bucket]-second
    bins. *)

val series : flow_series -> (float * float) list
(** [(bin end time, bytes/second over the bin)] in time order, including
    empty bins up to the last delivery. *)

val total_bytes : flow_series -> int

type queue_series

val queue_occupancy :
  Net.t -> router:int -> next:int -> ?capacity:int -> period:float -> unit ->
  queue_series
(** Sample the output queue every [period] seconds from t = 0 (runs for
    the lifetime of the simulation).  The series lives in a bounded
    {!Telemetry.Journal} keeping the newest [capacity] samples (default
    262144).  Raises [Invalid_argument] if the link does not exist. *)

val samples : queue_series -> (float * int) list
(** [(time, bytes)] in time order. *)

val occupancy_stats : queue_series -> float * float
(** (mean, stddev) of the sampled occupancy in bytes. *)
